// Benchmarks that regenerate every table and figure of the paper's
// evaluation (§3) plus the §2 timing analysis and the §4 design-space
// ablations. Each benchmark runs the corresponding experiment harness at
// reduced-but-representative size (the full paper-sized runs live behind
// cmd/pressim) and reports the headline metric alongside ns/op:
//
//	go test -bench=. -benchmem
package press_test

import (
	"testing"
	"time"

	"press/internal/experiments"
	"press/internal/obs"
)

// BenchmarkCounterInc measures one telemetry counter increment on the
// hot path as instrumented code writes it — lookup plus increment — for
// a live registry and for the nil (disabled) default. The disabled case
// must report 0 allocs/op: telemetry off cannot tax the simulator.
func BenchmarkCounterInc(b *testing.B) {
	b.Run("enabled", func(b *testing.B) {
		reg := obs.NewRegistry()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			reg.Counter("bench_events_total").Inc()
		}
	})
	b.Run("disabled", func(b *testing.B) {
		var reg *obs.Registry
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			reg.Counter("bench_events_total").Inc()
		}
	})
}

// BenchmarkHistogramObserve is BenchmarkCounterInc for histogram
// observations (the per-measurement latency recording).
func BenchmarkHistogramObserve(b *testing.B) {
	b.Run("enabled", func(b *testing.B) {
		reg := obs.NewRegistry()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			reg.Histogram("bench_seconds", obs.LatencyBuckets).
				ObserveDuration(time.Duration(i) * time.Microsecond)
		}
	})
	b.Run("disabled", func(b *testing.B) {
		var reg *obs.Registry
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			reg.Histogram("bench_seconds", obs.LatencyBuckets).
				ObserveDuration(time.Duration(i) * time.Microsecond)
		}
	})
}

// BenchmarkExpLoS regenerates the §3 line-of-sight preliminary check:
// passive elements move a LoS channel by < 2 dB.
func BenchmarkExpLoS(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunLoS(experiments.LoSOptions{Seed: 441, Trials: 2})
		if err != nil {
			b.Fatal(err)
		}
		last = res.PassiveMaxEffectDB
	}
	b.ReportMetric(last, "passive_effect_dB")
}

// BenchmarkExpFig4 regenerates Figure 4: per-subcarrier SNR of the two
// most different configurations per placement (paper headline: 18.6 dB
// mean change, 26 dB single-trial change).
func BenchmarkExpFig4(b *testing.B) {
	var mean, single float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig4(experiments.Fig4Options{Placements: 8, Trials: 3, BaseSeed: 438})
		if err != nil {
			b.Fatal(err)
		}
		mean, single = res.LargestMeanChangeDB, res.LargestSingleChangeDB
	}
	b.ReportMetric(mean, "mean_change_dB")
	b.ReportMetric(single, "single_change_dB")
}

// BenchmarkExpFig5 regenerates Figure 5: the null-movement CCDF
// (paper headline: shifts of up to ≈9 subcarriers).
func BenchmarkExpFig5(b *testing.B) {
	var maxMove float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig5(experiments.Fig5Options{Seed: 442, Trials: 3, NullDepthDB: 5})
		if err != nil {
			b.Fatal(err)
		}
		maxMove = float64(res.MaxMovement)
	}
	b.ReportMetric(maxMove, "max_null_move_subcarriers")
}

// BenchmarkExpFig6 regenerates Figure 6: min-SNR change CCDF and min-SNR
// distribution (paper: ≈38% of changes ≥10 dB; <9% of configs below
// 20 dB).
func BenchmarkExpFig6(b *testing.B) {
	var ge10, below20 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig6(experiments.Fig6Options{Seed: 442, Trials: 3})
		if err != nil {
			b.Fatal(err)
		}
		ge10, below20 = res.FracChangeGE10, res.FracMinBelow20
	}
	b.ReportMetric(ge10, "frac_ge10dB")
	b.ReportMetric(below20, "frac_below20dB")
}

// BenchmarkExpFig7 regenerates Figure 7: two configurations with opposite
// half-band selectivity (network harmonization).
func BenchmarkExpFig7(b *testing.B) {
	var contrast float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig7(experiments.Fig7Options{Seed: 715, MaxSeedTries: 1, MinContrastDB: 3})
		if err != nil {
			b.Fatal(err)
		}
		contrast = res.ContrastLowerDB + res.ContrastUpperDB
	}
	b.ReportMetric(contrast, "joint_contrast_dB")
}

// BenchmarkExpFig8 regenerates Figure 8: the 2×2 condition-number CDFs
// per configuration (paper headline: ≈1.5 dB best-to-worst median
// spread).
func BenchmarkExpFig8(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig8(experiments.Fig8Options{Seed: 822, Snapshots: 10, Repetitions: 1})
		if err != nil {
			b.Fatal(err)
		}
		spread = res.SpreadDB
	}
	b.ReportMetric(spread, "cond_spread_dB")
}

// BenchmarkExpCoherence regenerates the §2 coherence-time table (paper:
// ≈80 ms at 0.5 mph, ≈6 ms at 6 mph; 64-config sweep ≈5 s).
func BenchmarkExpCoherence(b *testing.B) {
	var walking float64
	for i := 0; i < b.N; i++ {
		res := experiments.RunCoherence()
		walking = res.Rows[0].CoherenceMs
	}
	b.ReportMetric(walking, "coherence_at_walk_ms")
}

// BenchmarkAblationPhases regenerates ablation A1: reflection-phase
// granularity (§4.1's "around eight phase values ... may provide
// sufficient resolution").
func BenchmarkAblationPhases(b *testing.B) {
	var gain8 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunPhaseAblation(442, []int{2, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
		gain8 = res.Rows[len(res.Rows)-1].GainDB
	}
	b.ReportMetric(gain8, "gain_at_8_phases_dB")
}

// BenchmarkAblationElements regenerates ablation A2: element count and
// directionality (§4.1).
func BenchmarkAblationElements(b *testing.B) {
	var bestGain float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunElementAblation(442, []int{1, 3})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.GainDB > bestGain {
				bestGain = row.GainDB
			}
		}
	}
	b.ReportMetric(bestGain, "best_gain_dB")
}

// BenchmarkAblationSearch regenerates ablation A3: search strategies on
// the 4⁸-configuration space (§4.2).
func BenchmarkAblationSearch(b *testing.B) {
	var greedyFrac float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSearchAblation(442, 120)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Algorithm == "greedy" {
				greedyFrac = row.FracOfExhaustive
			}
		}
	}
	b.ReportMetric(greedyFrac, "greedy_frac_of_exhaustive")
}

// BenchmarkAblationContinuous regenerates ablation A4: continuous phase
// control vs discrete banks (§4.1's continuously-variable hardware).
func BenchmarkAblationContinuous(b *testing.B) {
	var contGain float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunContinuousAblation(442, 120)
		if err != nil {
			b.Fatal(err)
		}
		contGain = res.ContinuousDB - res.BaselineDB
	}
	b.ReportMetric(contGain, "continuous_gain_dB")
}

// BenchmarkExpStaleness regenerates the sweep-staleness experiment: the
// §2 coherence-time argument as a measured regret.
func BenchmarkExpStaleness(b *testing.B) {
	var regret float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunStaleness(442, []float64{0.5})
		if err != nil {
			b.Fatal(err)
		}
		regret = res.Rows[0].RegretDB
	}
	b.ReportMetric(regret, "walking_regret_dB")
}

// BenchmarkExpMIMOScaling regenerates the §3.2.3 prediction check:
// PRESS's conditioning control grows with MIMO dimension.
func BenchmarkExpMIMOScaling(b *testing.B) {
	var spread4 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunMIMOScaling(822, []int{2, 4}, 5)
		if err != nil {
			b.Fatal(err)
		}
		spread4 = res.Rows[1].SpreadDB
	}
	b.ReportMetric(spread4, "spread_4x4_dB")
}

// BenchmarkExpFaults regenerates the §2 maintenance experiment: graceful
// degradation under element failures.
func BenchmarkExpFaults(b *testing.B) {
	var gainAt4Failed float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFaultTolerance(442)
		if err != nil {
			b.Fatal(err)
		}
		gainAt4Failed = res.Rows[len(res.Rows)-1].MeasuredGainDB
	}
	b.ReportMetric(gainAt4Failed, "gain_4_failed_dB")
}

// BenchmarkExpControlPlane regenerates the §4.2 medium comparison.
func BenchmarkExpControlPlane(b *testing.B) {
	var wiredGain float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunControlPlaneComparison(442)
		if err != nil {
			b.Fatal(err)
		}
		wiredGain = res.Rows[0].GainAtWalkDB
	}
	b.ReportMetric(wiredGain, "wired_gain_at_walk_dB")
}

// BenchmarkExpArrayScaling regenerates the §5 future-work experiment:
// larger arrays of smaller antennas.
func BenchmarkExpArrayScaling(b *testing.B) {
	var gain16 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunArrayScaling(442, []int{4, 16}, 300)
		if err != nil {
			b.Fatal(err)
		}
		gain16 = res.Rows[1].GreedyGainDB
	}
	b.ReportMetric(gain16, "gain_16_elements_dB")
}
