package press_test

import (
	"math/rand/v2"
	"testing"

	"press"
)

// demoSpace builds a small PRESS-instrumented room entirely through the
// public API — the same code path the examples use.
func demoSpace(t *testing.T, seed uint64) (*press.Space, *press.Radio, *press.Radio) {
	t.Helper()
	env := press.NewEnvironment(12, 9, 3)
	env.AddScatterers(rand.New(rand.NewPCG(seed, 1)), 10, 35)
	env.Blockers = append(env.Blockers,
		press.NewBlocker(press.V(5.6, 4.2, 0), press.V(5.9, 5.0, 2.2), 35))

	rxPos := press.V(7.25, 4.7, 1.3)
	arr := press.NewArray(
		press.NewParabolicElement(press.V(6.0, 3.2, 1.5), rxPos),
		press.NewParabolicElement(press.V(6.5, 3.2, 1.5), rxPos),
		press.NewParabolicElement(press.V(5.6, 3.4, 1.5), rxPos),
	)
	space, err := press.NewSpace(env, arr, seed)
	if err != nil {
		t.Fatal(err)
	}
	tx := &press.Radio{
		Node:       press.Node{Pos: press.V(4.75, 4.5, 1.5), Pattern: press.Omni{PeakGainDBi: 2}},
		TxPowerDBm: 15, NoiseFigureDB: 6,
	}
	rx := &press.Radio{
		Node:          press.Node{Pos: rxPos, Pattern: press.Omni{PeakGainDBi: 2}},
		NoiseFigureDB: 6,
	}
	return space, tx, rx
}

func TestPublicAPIEndToEnd(t *testing.T) {
	space, tx, rx := demoSpace(t, 11)
	if _, err := space.AddLink("ap-client", tx, rx, press.WiFi20()); err != nil {
		t.Fatal(err)
	}
	before, err := space.Measure("ap-client", 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := space.Optimize(
		[]press.Goal{{Link: "ap-client", Objective: press.MaxMinSNR{}}},
		press.OptimizeOptions{},
	)
	if err != nil {
		t.Fatal(err)
	}
	if out.PerLink["ap-client"] < before.MinSNRdB()-1 {
		t.Errorf("optimization made the link worse: %v vs %v",
			out.PerLink["ap-client"], before.MinSNRdB())
	}
}

func TestPublicAPIStatesAndNotation(t *testing.T) {
	states := press.SP4TStates()
	if len(states) != 4 {
		t.Fatalf("SP4T bank size %d", len(states))
	}
	st, err := press.ParseState("0.5π")
	if err != nil {
		t.Fatal(err)
	}
	if st.String() != "0.5π" {
		t.Errorf("round trip gave %q", st.String())
	}
	if len(press.NPhaseStates(8, true)) != 9 {
		t.Error("NPhaseStates wrong size")
	}
	if len(press.FourPhaseStates()) != 4 {
		t.Error("FourPhaseStates wrong size")
	}
}

func TestPublicAPIGrids(t *testing.T) {
	if g := press.WiFi20(); g.NumUsed() != 52 || g.CenterHz != 2.462e9 {
		t.Errorf("WiFi20 = %+v", g)
	}
	if g := press.USRP102(); g.NumUsed() != 102 {
		t.Errorf("USRP102 used = %d", g.NumUsed())
	}
	if w := press.Wavelength(2.462e9); w < 0.12 || w > 0.125 {
		t.Errorf("wavelength = %v", w)
	}
}

func TestPublicAPICoherenceBudget(t *testing.T) {
	if b := press.CoherenceBudgetAtSpeed(0.5, 2.462e9, press.PrototypeTiming); b != 1 {
		t.Errorf("prototype walking budget = %d, want 1", b)
	}
}

func TestPublicAPISearchers(t *testing.T) {
	_, tx, rx := demoSpace(t, 13)
	space, _, _ := demoSpace(t, 13)
	if _, err := space.AddLink("l", tx, rx, press.WiFi20()); err != nil {
		t.Fatal(err)
	}
	out, err := space.Optimize(
		[]press.Goal{{Link: "l", Objective: press.MaxMeanSNR{}}},
		press.OptimizeOptions{
			Searcher: press.Greedy{Rng: rand.New(rand.NewPCG(1, 2))},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if out.Evaluations == 0 || len(out.Best) != 3 {
		t.Errorf("outcome = %+v", out)
	}
}

func TestPublicAPIFaultsAndBER(t *testing.T) {
	space, tx, rx := demoSpace(t, 17)
	link, err := space.AddLink("link", tx, rx, press.WiFi20())
	if err != nil {
		t.Fatal(err)
	}
	// Healthy BER at a robust constellation.
	rep, err := link.MeasureBER(press.Config{0, 0, 0}, press.QPSK, 10000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BER > 0.01 {
		t.Errorf("QPSK BER %v on a healthy strong link", rep.BER)
	}
	// Injecting faults through the public API changes the channel.
	before, err := space.Measure("link", 0)
	if err != nil {
		t.Fatal(err)
	}
	link.Faults = press.Faults{0: {Kind: press.StuckAt, State: 2}}
	after, err := space.Measure("link", 0)
	if err != nil {
		t.Fatal(err)
	}
	var diff float64
	for k := range before.SNRdB {
		d := before.SNRdB[k] - after.SNRdB[k]
		if d < 0 {
			d = -d
		}
		diff += d
	}
	if diff == 0 {
		t.Error("fault injection had no effect on the measured channel")
	}
}

func TestPublicAPISINR(t *testing.T) {
	space, tx, rx := demoSpace(t, 19)
	if _, err := space.AddLink("sig", tx, rx, press.WiFi20()); err != nil {
		t.Fatal(err)
	}
	intfTx := &press.Radio{
		Node:       press.Node{Pos: press.V(4.75, 6.2, 1.5), Pattern: press.Omni{PeakGainDBi: 2}},
		TxPowerDBm: 15, NoiseFigureDB: 6,
	}
	if _, err := space.AddLink("intf", intfTx, rx, press.WiFi20()); err != nil {
		t.Fatal(err)
	}
	sig, err := space.Measure("sig", 0)
	if err != nil {
		t.Fatal(err)
	}
	intf, err := space.Measure("intf", 0)
	if err != nil {
		t.Fatal(err)
	}
	sinr, err := press.SINRdB(sig, []*press.CSI{intf})
	if err != nil {
		t.Fatal(err)
	}
	for k := range sinr {
		if sinr[k] > sig.SNRdB[k]+1e-9 {
			t.Fatalf("SINR above SNR at subcarrier %d", k)
		}
	}
}

func TestPublicAPIWrapperSurface(t *testing.T) {
	// Exercise the thin re-export wrappers so facade regressions
	// (signature drift, missed renames) fail loudly.
	env := press.NewEnvironment(8, 6, 3)
	tx := press.Node{Pos: press.V(2, 3, 1.5), Pattern: press.Isotropic{}}
	rx := press.Node{Pos: press.V(6, 3, 1.5), Pattern: press.Omni{PeakGainDBi: 2}}
	paths := press.TracePaths(env, tx, rx, press.Wavelength(2.462e9))
	if len(paths) == 0 {
		t.Fatal("no paths traced")
	}
	radioTX := &press.Radio{Node: tx, TxPowerDBm: 15, NoiseFigureDB: 6}
	radioRX := &press.Radio{Node: rx, NoiseFigureDB: 6}
	arr := press.NewArray(press.NewActiveElement(press.V(4, 2, 1.5), 10))
	link, err := press.NewLink(env, radioTX, radioRX, press.WiFi20(), arr, 3)
	if err != nil {
		t.Fatal(err)
	}
	csi, err := link.MeasureCSI(press.Config{0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tp := press.ThroughputMbps(link.Grid, csi.SNRdB); tp <= 0 {
		t.Errorf("throughput = %v", tp)
	}

	ml, err := press.NewMIMOLink(env, []press.Node{tx}, []press.Node{rx}, press.WiFi20(), nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := ml.TrueChannel(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := ch.Matrices[0]
	if c := press.CondNumberDB(m); c != 0 { // 1×1 matrix: always 0 dB
		t.Errorf("1x1 cond = %v", c)
	}
	if press.CapacityBpsHz(m, 10) <= 0 || press.ZFSumRateBpsHz(m, 10) <= 0 {
		t.Error("capacities not positive")
	}

	// Unit helpers.
	if press.DBToLinear(press.LinearToDB(42)) < 41.9 {
		t.Error("dB round trip broken")
	}
	if press.DBmToWatts(0) != 0.001 {
		t.Error("dBm conversion broken")
	}
	if press.ThermalNoiseWatts(20e6, 0) <= 0 {
		t.Error("noise floor broken")
	}
	if press.CoherenceTime(10) <= 0 {
		t.Error("coherence time broken")
	}
	if press.CoherenceBudget(80_000_000, press.Timing{PerMeasurement: 1_000_000}) != 80 {
		t.Error("coherence budget broken")
	}
	if press.DefaultPlacement.MinDist != 1 || press.DefaultPlacement.MaxDist != 2 {
		t.Error("default placement drifted")
	}
	if press.Off == press.Off { // NaN: must NOT be equal to itself
		t.Error("Off sentinel is not NaN")
	}
}
