// MIMO: improve 2×2 channel conditioning with PRESS — the paper's second
// application (§1 "improving Large MIMO performance", §3.2.3/Figure 8).
//
// A 2×2 transceiver pair measures its channel matrix per subcarrier for
// every PRESS configuration; the program reports the condition-number
// distribution of the best and worst configurations and what the
// difference means for zero-forcing sum rate.
//
//	go run ./examples/mimo
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"sort"

	"press"
)

func main() {
	env := press.NewEnvironment(14, 10, 3)
	env.AddScatterers(rand.New(rand.NewPCG(822, 0xa11ce)), 16, 40)
	env.Blockers = append(env.Blockers,
		press.NewBlocker(press.V(6.6, 4.7, 0), press.V(6.9, 5.5, 2.2), 35))

	lambda := press.Wavelength(2.462e9)
	omni := press.Omni{PeakGainDBi: 2}
	txAnts := []press.Node{
		{Pos: press.V(5.5, 5.0, 1.5), Pattern: omni},
		{Pos: press.V(5.5, 5.0+lambda, 1.5), Pattern: omni},
	}
	rxAnts := []press.Node{
		{Pos: press.V(8, 5.2, 1.3), Pattern: omni},
		{Pos: press.V(8, 5.2+lambda, 1.3), Pattern: omni},
	}
	// Elements co-linear with the TX pair at λ spacing (§3.2.3).
	arr := press.NewArray(
		press.NewOmniElement(press.V(5.5, 5.0+2*lambda, 1.5)),
		press.NewOmniElement(press.V(5.5, 5.0+3*lambda, 1.5)),
		press.NewOmniElement(press.V(5.5, 5.0+4*lambda, 1.5)),
	)
	ml, err := press.NewMIMOLink(env, txAnts, rxAnts, press.WiFi20(), arr, 822)
	if err != nil {
		log.Fatal(err)
	}

	type result struct {
		name   string
		median float64
		ch     *press.Channel
	}
	var results []result
	arr.EachConfig(func(idx int, c press.Config) bool {
		ch, err := ml.MeasureAveraged(c.Clone(), 50, press.PrototypeTiming, 0)
		if err != nil {
			log.Fatal(err)
		}
		prof := ch.CondProfileDB()
		sort.Float64s(prof)
		results = append(results, result{
			name:   arr.String(c),
			median: prof[len(prof)/2],
			ch:     ch,
		})
		return true
	})
	sort.Slice(results, func(i, j int) bool { return results[i].median < results[j].median })

	best, worst := results[0], results[len(results)-1]
	fmt.Printf("64 configurations measured (50 snapshots averaged each)\n")
	fmt.Printf("best conditioning:  %s, median κ = %.2f dB\n", best.name, best.median)
	fmt.Printf("worst conditioning: %s, median κ = %.2f dB\n", worst.name, worst.median)
	fmt.Printf("PRESS moves the 2×2 condition number by %.2f dB (paper: ≈1.5 dB)\n\n",
		worst.median-best.median)

	// What conditioning buys: zero-forcing spatial multiplexing rate at
	// the physical link budget. The channel matrices carry the real path
	// gains, so the SNR scale is transmit power over the noise floor.
	txPerSC := press.DBmToWatts(15) / 52 / 2 // per subcarrier, per stream
	noise := press.ThermalNoiseWatts(312.5e3, 6)
	snr := txPerSC / noise
	fmt.Printf("mean ZF sum rate:      best %.2f b/s/Hz, worst %.2f b/s/Hz\n",
		meanZF(best.ch, snr), meanZF(worst.ch, snr))
	fmt.Printf("mean Shannon capacity: best %.2f b/s/Hz, worst %.2f b/s/Hz\n",
		best.ch.MeanCapacityBpsHz(snr), worst.ch.MeanCapacityBpsHz(snr))

	fmt.Println("\ncondition-number CDF (dB):")
	fmt.Printf("%-8s  %-8s  %-8s\n", "cond", "best", "worst")
	bc, wc := cdf(best.ch), cdf(worst.ch)
	for _, x := range []float64{6, 8, 10, 12, 14, 16, 18, 20} {
		fmt.Printf("%-8.0f  %-8.2f  %-8.2f\n", x, bc(x), wc(x))
	}
}

// meanZF averages the zero-forcing sum rate across subcarriers.
func meanZF(ch *press.Channel, snr float64) float64 {
	var s float64
	for _, m := range ch.Matrices {
		s += press.ZFSumRateBpsHz(m, snr)
	}
	return s / float64(len(ch.Matrices))
}

// cdf builds an empirical CDF over the channel's condition profile.
func cdf(ch *press.Channel) func(float64) float64 {
	prof := ch.CondProfileDB()
	sort.Float64s(prof)
	return func(x float64) float64 {
		i := sort.SearchFloat64s(prof, x)
		return float64(i) / float64(len(prof))
	}
}
