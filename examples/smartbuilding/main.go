// Smartbuilding: one logical PRESS deployment spanning several wall
// segments, each with its own microcontroller agent on a UDP control
// channel, driven by a single semi-centralized controller — the §4.2
// architecture at building scale.
//
// The program brings up three agents (two elements each) on loopback UDP
// sockets, composes them into one six-element logical array, and runs a
// greedy optimization where every candidate configuration is actuated
// across all segments before being measured. It then breaks one segment's
// element mid-run and shows the closed loop adapting.
//
//	go run ./examples/smartbuilding
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"press"
)

func main() {
	// The physical deployment: a 12×9 m floor with six wall elements in
	// three segments of two.
	env := press.NewEnvironment(12, 9, 3)
	env.AddScatterers(rand.New(rand.NewPCG(99, 1)), 10, 35)
	env.Blockers = append(env.Blockers,
		press.NewBlocker(press.V(5.6, 4.2, 0), press.V(5.9, 5.0, 2.2), 35))

	client := press.V(7.25, 4.7, 1.3)
	positions := []press.Vec{
		press.V(6.0, 3.2, 1.5), press.V(6.5, 3.2, 1.5), // segment 0: south wall
		press.V(5.6, 3.4, 1.5), press.V(6.9, 3.6, 1.5), // segment 1
		press.V(6.2, 6.1, 1.5), press.V(6.8, 6.0, 1.5), // segment 2: north wall
	}
	elems := make([]*press.Element, len(positions))
	for i, pos := range positions {
		elems[i] = press.NewParabolicElement(pos, client)
	}
	arr := press.NewArray(elems...)
	space, err := press.NewSpace(env, arr, 99)
	if err != nil {
		log.Fatal(err)
	}
	ap := &press.Radio{
		Node:       press.Node{Pos: press.V(4.75, 4.5, 1.5), Pattern: press.Omni{PeakGainDBi: 2}},
		TxPowerDBm: 15, NoiseFigureDB: 6,
	}
	sta := &press.Radio{Node: press.Node{Pos: client, Pattern: press.Omni{PeakGainDBi: 2}}, NoiseFigureDB: 6}
	link, err := space.AddLink("link", ap, sta, press.WiFi20())
	if err != nil {
		log.Fatal(err)
	}

	// Control plane: one UDP agent per wall segment. Each segment owns a
	// sub-array view so validation matches its element count.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var mu sync.Mutex
	applied := make(press.Config, arr.N())
	segments := [][2]int{{0, 2}, {2, 4}, {4, 6}} // [offset, end) per agent

	controllers := make([]*press.Controller, len(segments))
	for si, seg := range segments {
		subArr := press.NewArray(elems[seg[0]:seg[1]]...)
		agent := press.NewAgent(uint32(si+1), subArr)
		off := seg[0]
		agent.OnApply = func(cfg press.Config) {
			mu.Lock()
			copy(applied[off:off+len(cfg)], cfg)
			mu.Unlock()
		}
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go func() { _ = agent.ServePacket(ctx, pc) }()

		cpc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		ctrl := press.NewController(press.NewPacketConn(cpc, pc.LocalAddr()))
		ctrl.Timeout = 200 * time.Millisecond
		pctx, pcancel := context.WithTimeout(ctx, 5*time.Second)
		if err := ctrl.Probe(pctx); err != nil {
			log.Fatal(err)
		}
		pcancel()
		controllers[si] = ctrl
		fmt.Printf("segment %d: agent %d with %d elements on %s\n",
			si, ctrl.AgentID(), ctrl.NumElements(), pc.LocalAddr())
	}
	mc, err := press.NewMultiController(controllers...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("logical array: %d elements across %d segments\n\n", mc.NumElements(), len(segments))

	// The optimization loop actuates over UDP, then measures whatever the
	// building actually applied.
	objective := press.MaxMinSNR{}
	eval := func(cfg press.Config) (float64, error) {
		actx, acancel := context.WithTimeout(ctx, 5*time.Second)
		defer acancel()
		if err := mc.SetConfig(actx, cfg); err != nil {
			return 0, err
		}
		mu.Lock()
		actuated := applied.Clone()
		mu.Unlock()
		csi, err := link.MeasureCSI(actuated, 0)
		if err != nil {
			return 0, err
		}
		return objective.Score(csi), nil
	}

	base, err := space.Measure("link", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline min SNR: %.1f dB\n", base.MinSNRdB())

	searcher := press.Greedy{Rng: rand.New(rand.NewPCG(99, 2))}
	res, err := searcher.Search(arr, eval, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimized %s over the control plane: min SNR %.1f dB (%+.1f dB) in %d actuations\n\n",
		arr.String(res.Best), res.BestScore, res.BestScore-base.MinSNRdB(), res.Evaluations)

	// A maintenance event: one element in segment 1 jams. The controller
	// is not told — it just re-optimizes against reality.
	fmt.Println("element 2 jams in state π (segment 1); re-optimizing...")
	link.Faults = press.Faults{2: {Kind: press.StuckAt, State: 2}}
	res2, err := searcher.Search(arr, eval, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-optimized %s: min SNR %.1f dB (fault absorbed by the closed loop)\n",
		arr.String(res2.Best), res2.BestScore)
}
