// Harmonization: two co-located networks share a 20 MHz band by letting
// PRESS shape each link's spectrum — the paper's third application
// (§1 "network harmonization and spatial partitioning", §3.2.2/Figure 7,
// and the Figure 2 cartoon).
//
// Two AP→client pairs operate in the same room. A joint optimization
// drives one link's channel to favour the lower half band and the
// other's the upper half, so a frequency split gives each network a
// clean half instead of a contested whole. Like the paper, the program
// rearranges the environment (tries seeds) until the channel is
// frequency selective enough to shape.
//
//	go run ./examples/harmonization
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"press"
)

// buildSpace assembles one candidate two-network room.
func buildSpace(seed uint64) (*press.Space, error) {
	env := press.NewEnvironment(12, 9, 3)
	env.AddScatterers(rand.New(rand.NewPCG(seed, 1)), 10, 35)
	// A partition blocking both links' direct paths.
	env.Blockers = append(env.Blockers,
		press.NewBlocker(press.V(5.6, 3.0, 0), press.V(5.9, 6.0, 2.5), 35))

	txA, rxA := press.V(4.75, 3.7, 1.5), press.V(7.25, 3.9, 1.3)
	txB, rxB := press.V(4.75, 5.3, 1.5), press.V(7.25, 5.5, 1.3)

	// Two elements per network, placed on the paper's 1–2 m grid around
	// each link (seed-dependent, like the paper's rearranged equipment),
	// with four reflective phases and no absorber (§3.2.2).
	rng := rand.New(rand.NewPCG(seed, 2))
	posA, err := press.DefaultPlacement.Place(rng, env.Room, txA, rxA, 2)
	if err != nil {
		return nil, err
	}
	posB, err := press.DefaultPlacement.Place(rng, env.Room, txB, rxB, 2)
	if err != nil {
		return nil, err
	}
	mkElem := func(pos press.Vec, aim press.Vec) *press.Element {
		e := press.NewParabolicElement(pos, aim)
		e.States = press.FourPhaseStates()
		return e
	}
	arr := press.NewArray(
		mkElem(posA[0], rxA), mkElem(posA[1], rxA),
		mkElem(posB[0], rxB), mkElem(posB[1], rxB),
	)
	space, err := press.NewSpace(env, arr, seed)
	if err != nil {
		return nil, err
	}
	mkRadio := func(pos press.Vec, txPower float64) *press.Radio {
		return &press.Radio{
			Node:       press.Node{Pos: pos, Pattern: press.Omni{PeakGainDBi: 2}},
			TxPowerDBm: txPower, NoiseFigureDB: 6,
		}
	}
	grid := press.USRP102()
	if _, err := space.AddLink("net-a", mkRadio(txA, 15), mkRadio(rxA, 0), grid); err != nil {
		return nil, err
	}
	if _, err := space.AddLink("net-b", mkRadio(txB, 15), mkRadio(rxB, 0), grid); err != nil {
		return nil, err
	}
	return space, nil
}

func main() {
	goals := []press.Goal{
		{Link: "net-a", Objective: press.HalfBandContrast{PreferLower: true}},
		{Link: "net-b", Objective: press.HalfBandContrast{PreferLower: false}},
	}
	// Rearrange the room (try seeds) and keep the one where PRESS most
	// improves the split over the phase-0 baseline: the reported gain
	// comes from the elements, not from lucky geometry.
	var (
		space    *press.Space
		out      *press.Outcome
		bestGain float64
	)
	for seed := uint64(700); seed < 740; seed++ {
		s, err := buildSpace(seed)
		if err != nil {
			log.Fatal(err)
		}
		baseline, err := jointScore(s, press.Config{0, 0, 0, 0})
		if err != nil {
			log.Fatal(err)
		}
		o, err := s.Optimize(goals, press.OptimizeOptions{SkipApply: true})
		if err != nil {
			log.Fatal(err)
		}
		if gain := o.BestScore - baseline; space == nil || gain > bestGain {
			space, out, bestGain = s, o, gain
			if gain >= 4 {
				break // clearly shapeable; stop searching
			}
		}
	}
	fmt.Printf("PRESS improves the joint half-band contrast by %.1f dB with %s\n",
		bestGain, space.Array.String(out.Best))

	// How much spectrum shaping the array commands per link: the spread
	// of each network's half-band contrast across all configurations.
	for _, name := range space.LinkNames() {
		lo, hi := contrastRange(space, name)
		fmt.Printf("%s: half-band contrast ranges %.1f … %.1f dB across the %d configurations\n",
			name, lo, hi, space.Array.NumConfigs())
	}
	fmt.Println()

	report := func(tag string) {
		for _, name := range space.LinkNames() {
			csi, err := space.Measure(name, 0)
			if err != nil {
				log.Fatal(err)
			}
			n := len(csi.SNRdB)
			lo, hi := mean(csi.SNRdB[:n/2]), mean(csi.SNRdB[n/2:])
			fmt.Printf("  %s %s: lower half %.1f dB, upper half %.1f dB (contrast %+.1f dB)\n",
				tag, name, lo, hi, lo-hi)
		}
	}
	fmt.Println("before (all terminated-equivalent: phase 0):")
	if err := space.Apply(press.Config{0, 0, 0, 0}); err != nil {
		log.Fatal(err)
	}
	report("before")

	fmt.Println("\nafter harmonization:")
	if err := space.Apply(out.Best); err != nil {
		log.Fatal(err)
	}
	report("after ")

	// What the split buys: each network keeps its strong half.
	csiA, _ := space.Measure("net-a", 0)
	csiB, _ := space.Measure("net-b", 0)
	n := len(csiA.SNRdB)
	grid := press.USRP102()
	fmt.Printf("\nafter split, per-network half-band throughput: A %.1f Mb/s (lower), B %.1f Mb/s (upper)\n",
		press.ThroughputMbps(grid, csiA.SNRdB[:n/2])/2,
		press.ThroughputMbps(grid, csiB.SNRdB[n/2:])/2)
}

// contrastRange sweeps every configuration and returns the smallest and
// largest lower-minus-upper half-band contrast the link can be given.
func contrastRange(s *press.Space, link string) (lo, hi float64) {
	first := true
	obj := press.HalfBandContrast{PreferLower: true}
	s.Array.EachConfig(func(_ int, c press.Config) bool {
		if err := s.Apply(c.Clone()); err != nil {
			log.Fatal(err)
		}
		csi, err := s.Measure(link, 0)
		if err != nil {
			log.Fatal(err)
		}
		v := obj.Score(csi)
		if first || v < lo {
			lo = v
		}
		if first || v > hi {
			hi = v
		}
		first = false
		return true
	})
	return lo, hi
}

// jointScore evaluates the harmonization objective for one configuration.
func jointScore(s *press.Space, cfg press.Config) (float64, error) {
	if err := s.Apply(cfg); err != nil {
		return 0, err
	}
	csiA, err := s.Measure("net-a", 0)
	if err != nil {
		return 0, err
	}
	csiB, err := s.Measure("net-b", 0)
	if err != nil {
		return 0, err
	}
	a := press.HalfBandContrast{PreferLower: true}.Score(csiA)
	b := press.HalfBandContrast{PreferLower: false}.Score(csiB)
	return a + b, nil
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
