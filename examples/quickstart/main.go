// Quickstart: build a PRESS-instrumented room, measure a Wi-Fi link
// through it, optimize the element configuration, and report the gain.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"press"
)

func main() {
	// A 12×9×3 m office with ambient scatterers and a cabinet blocking
	// the direct path between the AP and the client: a classic dead-spot
	// geometry.
	env := press.NewEnvironment(12, 9, 3)
	env.AddScatterers(rand.New(rand.NewPCG(42, 1)), 10, 35)
	env.Blockers = append(env.Blockers,
		press.NewBlocker(press.V(5.6, 4.2, 0), press.V(5.9, 5.0, 2.2), 35))

	// Three wall-mounted PRESS elements (Figure 3 of the paper: a
	// parabolic antenna behind SP4T switches selecting phase 0, π/2, π
	// or an absorptive load), aimed toward the client.
	client := press.V(7.25, 4.7, 1.3)
	arr := press.NewArray(
		press.NewParabolicElement(press.V(6.0, 3.2, 1.5), client),
		press.NewParabolicElement(press.V(6.5, 3.2, 1.5), client),
		press.NewParabolicElement(press.V(5.6, 3.4, 1.5), client),
	)
	fmt.Printf("array: %d elements, %d configurations\n", arr.N(), arr.NumConfigs())

	space, err := press.NewSpace(env, arr, 42)
	if err != nil {
		log.Fatal(err)
	}

	ap := &press.Radio{
		Node:       press.Node{Pos: press.V(4.75, 4.5, 1.5), Pattern: press.Omni{PeakGainDBi: 2}},
		TxPowerDBm: 15, NoiseFigureDB: 6,
	}
	sta := &press.Radio{
		Node:          press.Node{Pos: client, Pattern: press.Omni{PeakGainDBi: 2}},
		NoiseFigureDB: 6,
	}
	link, err := space.AddLink("ap-client", ap, sta, press.WiFi20())
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: all elements terminated — the plain room.
	before, err := space.Measure("ap-client", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: min SNR %.1f dB, mean %.1f dB, throughput %.1f Mb/s\n",
		before.MinSNRdB(), mean(before.SNRdB), press.ThroughputMbps(link.Grid, before.SNRdB))

	// Optimize the worst subcarrier (lifting the deepest null lifts the
	// whole link) over all 64 configurations.
	out, err := space.Optimize(
		[]press.Goal{{Link: "ap-client", Objective: press.MaxMinSNR{}}},
		press.OptimizeOptions{},
	)
	if err != nil {
		log.Fatal(err)
	}
	after, err := space.Measure("ap-client", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimized %s (%d measurements):\n", arr.String(out.Best), out.Evaluations)
	fmt.Printf("          min SNR %.1f dB (%+.1f dB), mean %.1f dB, throughput %.1f Mb/s\n",
		after.MinSNRdB(), after.MinSNRdB()-before.MinSNRdB(),
		mean(after.SNRdB), press.ThroughputMbps(link.Grid, after.SNRdB))

	// Per-subcarrier view of what the environment reconfiguration did.
	fmt.Println("\nsubcarrier  baseline  optimized")
	for k := 0; k < len(before.SNRdB); k += 4 {
		fmt.Printf("%-10d  %-8.1f  %-8.1f\n", k, before.SNRdB[k], after.SNRdB[k])
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
