// Controlplane: drive wall-embedded PRESS elements over a slow, lossy
// control channel — the §4.2 design point ("low-frequency, low-rate
// bands that penetrate walls well") — and watch the protocol's
// retransmission machinery keep actuation reliable.
//
//	go run ./examples/controlplane
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"press"
)

func main() {
	// Three elements behind one agent, as they would be on one wall
	// segment sharing a microcontroller.
	arr := press.NewArray(
		press.NewOmniElement(press.V(1, 1, 1.5)),
		press.NewOmniElement(press.V(2, 1, 1.5)),
		press.NewOmniElement(press.V(3, 1, 1.5)),
	)

	// A low-rate wireless control channel: 5 ms one-way latency, 20%
	// loss, 5% corruption.
	agentEnd, ctrlEnd := press.NewLossyPipe(press.LossyConfig{
		Latency:     5 * time.Millisecond,
		LossRate:    0.20,
		CorruptRate: 0.05,
		Seed:        7,
	})

	agent := press.NewAgent(11, arr)
	var mu sync.Mutex
	actuations := 0
	agent.OnApply = func(cfg press.Config) {
		mu.Lock()
		actuations++
		mu.Unlock()
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = agent.Serve(ctx, agentEnd)
	}()

	ctrl := press.NewController(ctrlEnd)
	ctrl.Timeout = 60 * time.Millisecond
	ctrl.Retries = 12

	hctx, hcancel := context.WithTimeout(ctx, 10*time.Second)
	defer hcancel()
	if err := ctrl.Handshake(hctx); err != nil {
		// The hello itself can be lost on this channel; actuation still
		// works because SetConfig retransmits.
		fmt.Println("handshake lost in the noise (continuing):", err)
	} else {
		fmt.Printf("agent %d announced %d elements\n", ctrl.AgentID(), ctrl.NumElements())
	}

	if rtt, err := ctrl.Ping(hctx); err == nil {
		fmt.Printf("control-plane RTT: %v (2×5 ms injected latency + queuing)\n", rtt)
	}

	// Walk the array through a schedule of configurations.
	schedule := []press.Config{
		{0, 0, 0}, {1, 2, 0}, {3, 3, 3}, {2, 1, 0}, {0, 3, 2},
	}
	start := time.Now()
	for i, cfg := range schedule {
		sctx, scancel := context.WithTimeout(ctx, 10*time.Second)
		err := ctrl.SetConfig(sctx, cfg)
		scancel()
		if err != nil {
			log.Fatalf("actuation %d failed: %v", i, err)
		}
		applied, err := func() (press.Config, error) {
			qctx, qcancel := context.WithTimeout(ctx, 10*time.Second)
			defer qcancel()
			return ctrl.QueryConfig(qctx)
		}()
		if err != nil {
			log.Fatalf("query %d failed: %v", i, err)
		}
		fmt.Printf("actuated %v, agent reports %v\n", cfg, applied)
	}
	elapsed := time.Since(start)

	mu.Lock()
	n := actuations
	mu.Unlock()
	fmt.Printf("\n%d actuations in %v despite 20%% loss / 5%% corruption\n", n, elapsed.Round(time.Millisecond))
	fmt.Printf("protocol stats: %d sent, %d acked, %d retries, %d timeouts\n",
		ctrl.Stats.Sent.Load(), ctrl.Stats.Acked.Load(),
		ctrl.Stats.Retries.Load(), ctrl.Stats.Timeouts.Load())

	cancel()
	agentEnd.Close()
	ctrlEnd.Close()
	<-done
}
