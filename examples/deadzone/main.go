// Deadzone: eliminate a frequency null at a Wi-Fi dead spot — the
// paper's first application (§1, "enhancing individual wireless links").
//
// The program finds the deepest null in the measured channel, asks PRESS
// to boost exactly that subcarrier, and reports how the null, the
// effective SNR, and the achievable bit rate respond. It then repeats the
// exercise while the client walks, showing the coherence-time budget in
// action.
//
//	go run ./examples/deadzone
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	"press"
)

// buildSpace assembles one candidate room; different seeds give the
// different scattering environments of the paper's placements.
func buildSpace(seed uint64) (*press.Space, *press.Link, error) {
	env := press.NewEnvironment(12, 9, 3)
	env.AddScatterers(rand.New(rand.NewPCG(seed, 1)), 10, 35)
	env.Blockers = append(env.Blockers,
		press.NewBlocker(press.V(5.6, 4.2, 0), press.V(5.9, 5.0, 2.2), 35))

	client := press.V(7.25, 4.7, 1.3)
	arr := press.NewArray(
		press.NewParabolicElement(press.V(6.0, 3.2, 1.5), client),
		press.NewParabolicElement(press.V(6.5, 3.2, 1.5), client),
		press.NewParabolicElement(press.V(5.6, 3.4, 1.5), client),
	)
	space, err := press.NewSpace(env, arr, seed)
	if err != nil {
		return nil, nil, err
	}
	ap := &press.Radio{
		Node:       press.Node{Pos: press.V(4.75, 4.5, 1.5), Pattern: press.Omni{PeakGainDBi: 2}},
		TxPowerDBm: 15, NoiseFigureDB: 6,
	}
	sta := &press.Radio{
		Node:          press.Node{Pos: client, Pattern: press.Omni{PeakGainDBi: 2}},
		NoiseFigureDB: 6,
	}
	link, err := space.AddLink("link", ap, sta, press.WiFi20())
	if err != nil {
		return nil, nil, err
	}
	return space, link, nil
}

func main() {
	// Walk candidate rooms until one exhibits a real dead subcarrier —
	// a null at least 10 dB below the median — just as the paper
	// rearranged its environment until the channel was interesting.
	var (
		space *press.Space
		link  *press.Link
		base  *press.CSI
		nullK int
	)
	for seed := uint64(442); ; seed++ {
		s, l, err := buildSpace(seed)
		if err != nil {
			log.Fatal(err)
		}
		csi, err := s.Measure("link", 0)
		if err != nil {
			log.Fatal(err)
		}
		k, snr := 0, csi.SNRdB[0]
		for i, v := range csi.SNRdB {
			if v < snr {
				k, snr = i, v
			}
		}
		if median(csi.SNRdB)-snr >= 10 {
			space, link, base, nullK = s, l, csi, k
			fmt.Printf("room seed %d: deepest null at subcarrier %d, %.1f dB (median %.1f dB)\n",
				seed, k, snr, median(csi.SNRdB))
			break
		}
		if seed > 542 {
			log.Fatal("no dead zone found in 100 rooms")
		}
	}
	nullSNR := base.SNRdB[nullK]

	// Static client: full exhaustive search, boosting that subcarrier.
	out, err := space.Optimize(
		[]press.Goal{{Link: "link", Objective: press.BoostSubcarrier{K: nullK}}},
		press.OptimizeOptions{},
	)
	if err != nil {
		log.Fatal(err)
	}
	after, err := space.Measure("link", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static client, %s: subcarrier %d now %.1f dB (%+.1f dB)\n",
		space.Array.String(out.Best), nullK, after.SNRdB[nullK], after.SNRdB[nullK]-nullSNR)
	fmt.Printf("link throughput %.1f → %.1f Mb/s\n",
		press.ThroughputMbps(link.Grid, base.SNRdB),
		press.ThroughputMbps(link.Grid, after.SNRdB))

	// Walking client: the channel only holds still for ~100 ms, so the
	// search gets a hard measurement budget (§2).
	timing := press.Timing{PerMeasurement: 2 * time.Millisecond}
	for _, mph := range []float64{0.5, 6} {
		budget := press.CoherenceBudgetAtSpeed(mph, press.DefaultCarrierHz, timing)
		rng := rand.New(rand.NewPCG(442, uint64(mph*10)))
		outM, err := space.Optimize(
			[]press.Goal{{Link: "link", Objective: press.MaxMinSNR{}}},
			press.OptimizeOptions{
				Searcher: press.Greedy{Rng: rng, Restarts: 2},
				Budget:   budget,
				Timing:   timing,
			},
		)
		switch {
		case err == nil:
			fmt.Printf("client at %.1f mph: budget %d, converged in %d measurements, min SNR %.1f dB\n",
				mph, budget, outM.Evaluations, outM.PerLink["link"])
		case errors.Is(err, press.ErrBudgetExhausted):
			fmt.Printf("client at %.1f mph: budget %d exhausted, best-effort min SNR %.1f dB\n",
				mph, budget, outM.PerLink["link"])
		default:
			log.Fatal(err)
		}
	}
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}
