package controlplane

import "testing"

func TestBothEndsCloseSafely(t *testing.T) {
	a, b := NewLossyPipe(LossyConfig{Seed: 1})
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// Idempotent too.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}
