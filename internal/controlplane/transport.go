package controlplane

import (
	"errors"
	"math/rand/v2"
	"net"
	"sync"
	"time"
)

// Conn is a message-oriented control-plane connection. Implementations
// must be safe for one concurrent sender and one concurrent receiver.
type Conn interface {
	// Send transmits one message with the given sequence number and
	// trace ID (0 = untraced).
	Send(seq uint32, trace uint64, msg Message) error
	// Recv blocks for the next message until the deadline set by
	// SetRecvDeadline (zero deadline blocks indefinitely), returning the
	// peer's sequence number and trace ID alongside the message.
	Recv() (seq uint32, trace uint64, msg Message, err error)
	// SetRecvDeadline bounds subsequent Recv calls.
	SetRecvDeadline(t time.Time) error
	// Close releases the connection; pending Recv calls fail.
	Close() error
}

// ErrClosed is returned on use of a closed connection.
var ErrClosed = errors.New("controlplane: connection closed")

// StreamConn adapts any net.Conn (TCP, unix socket, net.Pipe) into a
// framed control-plane Conn.
type StreamConn struct {
	c net.Conn

	sendMu sync.Mutex
}

// NewStreamConn wraps a net.Conn.
func NewStreamConn(c net.Conn) *StreamConn { return &StreamConn{c: c} }

// Send implements Conn.
func (s *StreamConn) Send(seq uint32, trace uint64, msg Message) error {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	return WriteFrame(s.c, seq, trace, msg)
}

// Recv implements Conn.
func (s *StreamConn) Recv() (uint32, uint64, Message, error) {
	return ReadFrame(s.c)
}

// SetRecvDeadline implements Conn.
func (s *StreamConn) SetRecvDeadline(t time.Time) error {
	return s.c.SetReadDeadline(t)
}

// Close implements Conn.
func (s *StreamConn) Close() error { return s.c.Close() }

// LossyConfig parameterizes the in-memory simulated transport: the
// low-rate wireless (or ultrasound) control channels §4.2 considers are
// slow and lossy, and the controller must be engineered against that.
type LossyConfig struct {
	// Latency is the one-way delivery delay.
	Latency time.Duration
	// LossRate is the probability of silently dropping a message.
	LossRate float64
	// CorruptRate is the probability of flipping bits in transit (the
	// receiver sees a CRC failure).
	CorruptRate float64
	// Seed drives the loss/corruption draws.
	Seed uint64
}

type lossyEnd struct {
	cfg  LossyConfig
	rng  *rand.Rand
	rmu  sync.Mutex // guards rng
	out  chan frame
	in   chan frame
	done chan struct{}

	// closeOnce is shared between both ends: closing either end tears
	// down the shared done channel exactly once.
	closeOnce *sync.Once

	dlMu     sync.Mutex
	deadline time.Time

	// Dropped counts messages this end's sends lost in transit.
	dropped int
	dmu     sync.Mutex
}

type frame struct {
	buf []byte
	at  time.Time
}

// NewLossyPipe returns the two ends of an in-memory control channel with
// injected latency, loss, and corruption. Both ends share the config but
// draw losses independently.
func NewLossyPipe(cfg LossyConfig) (Conn, Conn) {
	ab := make(chan frame, 256)
	ba := make(chan frame, 256)
	done := make(chan struct{})
	once := &sync.Once{}
	a := &lossyEnd{cfg: cfg, rng: rand.New(rand.NewPCG(cfg.Seed, 1)), out: ab, in: ba, done: done, closeOnce: once}
	b := &lossyEnd{cfg: cfg, rng: rand.New(rand.NewPCG(cfg.Seed, 2)), out: ba, in: ab, done: done, closeOnce: once}
	return a, b
}

// Send implements Conn.
func (e *lossyEnd) Send(seq uint32, trace uint64, msg Message) error {
	select {
	case <-e.done:
		return ErrClosed
	default:
	}
	buf, err := EncodeFrame(seq, trace, msg)
	if err != nil {
		return err
	}
	e.rmu.Lock()
	drop := e.rng.Float64() < e.cfg.LossRate
	corrupt := !drop && e.rng.Float64() < e.cfg.CorruptRate
	var flipAt int
	if corrupt {
		flipAt = e.rng.IntN(len(buf))
	}
	e.rmu.Unlock()

	if drop {
		e.dmu.Lock()
		e.dropped++
		e.dmu.Unlock()
		return nil // silent loss: the sender cannot know
	}
	if corrupt {
		buf = append([]byte(nil), buf...)
		buf[flipAt] ^= 0x40
	}
	select {
	case e.out <- frame{buf: buf, at: time.Now().Add(e.cfg.Latency)}:
		return nil
	case <-e.done:
		return ErrClosed
	}
}

// Recv implements Conn. Frames that fail to decode (the injected
// corruption) are dropped silently, like a PHY discarding a packet with a
// bad checksum — the pipe is datagram-like, so corruption never poisons
// subsequent frames.
func (e *lossyEnd) Recv() (uint32, uint64, Message, error) {
	for {
		e.dlMu.Lock()
		deadline := e.deadline
		e.dlMu.Unlock()

		var timeout <-chan time.Time
		var timer *time.Timer
		if !deadline.IsZero() {
			d := time.Until(deadline)
			if d <= 0 {
				return 0, 0, nil, ErrTimeout
			}
			timer = time.NewTimer(d)
			timeout = timer.C
		}
		select {
		case f := <-e.in:
			if timer != nil {
				timer.Stop()
			}
			// Honour the injected latency.
			if wait := time.Until(f.at); wait > 0 {
				time.Sleep(wait)
			}
			seq, trace, msg, err := DecodeFrame(f.buf)
			if err != nil {
				continue // corrupted in transit: drop
			}
			return seq, trace, msg, nil
		case <-timeout:
			return 0, 0, nil, ErrTimeout
		case <-e.done:
			if timer != nil {
				timer.Stop()
			}
			return 0, 0, nil, ErrClosed
		}
	}
}

// SetRecvDeadline implements Conn.
func (e *lossyEnd) SetRecvDeadline(t time.Time) error {
	e.dlMu.Lock()
	e.deadline = t
	e.dlMu.Unlock()
	return nil
}

// Close implements Conn.
func (e *lossyEnd) Close() error {
	e.closeOnce.Do(func() { close(e.done) })
	return nil
}

// Dropped reports how many of this end's sends were lost in transit.
func (e *lossyEnd) Dropped() int {
	e.dmu.Lock()
	defer e.dmu.Unlock()
	return e.dropped
}

// ErrTimeout is returned when a Recv deadline expires. It satisfies
// errors.Is against itself and reports Timeout() true like net errors.
var ErrTimeout = &timeoutError{}

type timeoutError struct{}

func (*timeoutError) Error() string   { return "controlplane: receive timeout" }
func (*timeoutError) Timeout() bool   { return true }
func (*timeoutError) Temporary() bool { return true }
