// Package controlplane implements the PRESS control plane of §2/§4.2: a
// compact binary protocol between a (semi-)centralized controller and the
// wall-embedded element agents, over any stream transport. The paper's
// requirement is low-latency actuation of many cheap elements within the
// channel coherence time, so the protocol is small (12-byte header),
// integrity-checked (CRC-32), versioned, and strictly request/response so
// a microcontroller-class agent can implement it.
//
// Wire format, big endian:
//
//	magic   uint16  0x5052 ("PR")
//	version uint8   2
//	type    uint8   message type
//	length  uint16  payload length
//	seq     uint32  sender sequence number
//	trace   uint64  trace ID (version ≥ 2; 0 = untraced)
//	payload [length]byte
//	crc32   uint32  IEEE CRC over header+payload
//
// Version 1 frames omit the trace field; the decoder accepts both, so a
// current controller interoperates with un-upgraded agents (legacy
// frames simply decode with trace 0). The trace ID rides in the header
// rather than any payload so that every message type — including acks,
// whose payload layout microcontroller agents have burned in — carries
// it uniformly under the same CRC. See DESIGN.md.
package controlplane

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Protocol constants.
const (
	Magic uint16 = 0x5052
	// VersionLegacy is the pre-trace protocol (10-byte header).
	VersionLegacy uint8 = 1
	// Version is the current protocol: the legacy header plus an 8-byte
	// trace ID for end-to-end control-plane tracing.
	Version uint8 = 2
	// MaxPayload bounds a frame's payload; element arrays are small, so
	// frames stay comfortably within one MTU.
	MaxPayload = 1024
)

// Type identifies a message type on the wire.
type Type uint8

// Message types.
const (
	TypeHello Type = iota + 1
	TypeSetConfig
	TypeAck
	TypeQuery
	TypeReport
	TypePing
	TypePong
)

// String names the type.
func (t Type) String() string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeSetConfig:
		return "set-config"
	case TypeAck:
		return "ack"
	case TypeQuery:
		return "query"
	case TypeReport:
		return "report"
	case TypePing:
		return "ping"
	case TypePong:
		return "pong"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Status codes carried in Ack messages.
const (
	StatusOK uint8 = iota
	StatusBadConfig
	StatusBusy
)

// Message is one control-plane message body. Implementations are the
// concrete message structs below.
type Message interface {
	// MsgType returns the wire type tag.
	MsgType() Type
	// appendPayload serializes the body onto b.
	appendPayload(b []byte) []byte
	// decodePayload parses the body from p.
	decodePayload(p []byte) error
}

// Hello announces an agent and its array size to the controller.
type Hello struct {
	AgentID     uint32
	NumElements uint16
}

// MsgType implements Message.
func (*Hello) MsgType() Type { return TypeHello }

func (h *Hello) appendPayload(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, h.AgentID)
	return binary.BigEndian.AppendUint16(b, h.NumElements)
}

func (h *Hello) decodePayload(p []byte) error {
	if len(p) != 6 {
		return fmt.Errorf("controlplane: hello payload %d bytes, want 6", len(p))
	}
	h.AgentID = binary.BigEndian.Uint32(p)
	h.NumElements = binary.BigEndian.Uint16(p[4:])
	return nil
}

// SetConfig actuates the array: one state index per element.
type SetConfig struct {
	States []uint8
}

// MsgType implements Message.
func (*SetConfig) MsgType() Type { return TypeSetConfig }

func (m *SetConfig) appendPayload(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.States)))
	return append(b, m.States...)
}

func (m *SetConfig) decodePayload(p []byte) error {
	if len(p) < 2 {
		return errors.New("controlplane: set-config payload too short")
	}
	n := int(binary.BigEndian.Uint16(p))
	if len(p) != 2+n {
		return fmt.Errorf("controlplane: set-config says %d states, has %d bytes", n, len(p)-2)
	}
	m.States = append([]uint8(nil), p[2:]...)
	return nil
}

// Ack acknowledges a SetConfig (or reports why it was rejected).
type Ack struct {
	// AckSeq echoes the sequence number being acknowledged.
	AckSeq uint32
	Status uint8
}

// MsgType implements Message.
func (*Ack) MsgType() Type { return TypeAck }

func (a *Ack) appendPayload(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, a.AckSeq)
	return append(b, a.Status)
}

func (a *Ack) decodePayload(p []byte) error {
	if len(p) != 5 {
		return fmt.Errorf("controlplane: ack payload %d bytes, want 5", len(p))
	}
	a.AckSeq = binary.BigEndian.Uint32(p)
	a.Status = p[4]
	return nil
}

// Query asks the agent for its current configuration.
type Query struct{}

// MsgType implements Message.
func (*Query) MsgType() Type { return TypeQuery }

func (*Query) appendPayload(b []byte) []byte { return b }

func (*Query) decodePayload(p []byte) error {
	if len(p) != 0 {
		return errors.New("controlplane: query carries no payload")
	}
	return nil
}

// Report answers a Query with the applied configuration.
type Report struct {
	States []uint8
}

// MsgType implements Message.
func (*Report) MsgType() Type { return TypeReport }

func (r *Report) appendPayload(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(r.States)))
	return append(b, r.States...)
}

func (r *Report) decodePayload(p []byte) error {
	if len(p) < 2 {
		return errors.New("controlplane: report payload too short")
	}
	n := int(binary.BigEndian.Uint16(p))
	if len(p) != 2+n {
		return fmt.Errorf("controlplane: report says %d states, has %d bytes", n, len(p)-2)
	}
	r.States = append([]uint8(nil), p[2:]...)
	return nil
}

// Ping measures control-plane round-trip time; T is an opaque timestamp
// echoed back in the Pong.
type Ping struct {
	T int64
}

// MsgType implements Message.
func (*Ping) MsgType() Type { return TypePing }

func (p *Ping) appendPayload(b []byte) []byte {
	return binary.BigEndian.AppendUint64(b, uint64(p.T))
}

func (p *Ping) decodePayload(buf []byte) error {
	if len(buf) != 8 {
		return fmt.Errorf("controlplane: ping payload %d bytes, want 8", len(buf))
	}
	p.T = int64(binary.BigEndian.Uint64(buf))
	return nil
}

// Pong echoes a Ping.
type Pong struct {
	T int64
}

// MsgType implements Message.
func (*Pong) MsgType() Type { return TypePong }

func (p *Pong) appendPayload(b []byte) []byte {
	return binary.BigEndian.AppendUint64(b, uint64(p.T))
}

func (p *Pong) decodePayload(buf []byte) error {
	if len(buf) != 8 {
		return fmt.Errorf("controlplane: pong payload %d bytes, want 8", len(buf))
	}
	p.T = int64(binary.BigEndian.Uint64(buf))
	return nil
}

// newMessage returns a fresh body struct for a wire type.
func newMessage(t Type) (Message, error) {
	switch t {
	case TypeHello:
		return &Hello{}, nil
	case TypeSetConfig:
		return &SetConfig{}, nil
	case TypeAck:
		return &Ack{}, nil
	case TypeQuery:
		return &Query{}, nil
	case TypeReport:
		return &Report{}, nil
	case TypePing:
		return &Ping{}, nil
	case TypePong:
		return &Pong{}, nil
	default:
		return nil, fmt.Errorf("controlplane: unknown message type %d", uint8(t))
	}
}
