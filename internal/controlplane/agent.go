package controlplane

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"press/internal/element"
	"press/internal/obs"
	"press/internal/obs/health"
	"press/internal/obs/scope"
)

// Agent is the element-side endpoint: it owns a PRESS array, applies
// validated SetConfig commands, and answers Query/Ping. One agent can
// serve many controller connections (e.g. a handover between
// semi-centralized controllers).
type Agent struct {
	ID    uint32
	Array *element.Array
	// OnApply, when set, is invoked after each successful actuation —
	// the hook the simulator uses to re-point the radio model, and real
	// hardware would use to drive the RF switches.
	OnApply func(cfg element.Config)
	// ActuationDelay models RF-switch settling time before the Ack.
	ActuationDelay time.Duration
	// Obs, when set, counts handled frames by type (agent_* counters).
	Obs *obs.Registry
	// Log, when set, receives a Debug record per applied configuration.
	Log *obs.Logger
	// Health, when set, is told of every successful actuation — the feed
	// behind the control_staleness_s channel-health KPI.
	Health *health.Monitor

	mu      sync.Mutex
	current element.Config
}

// NewAgent builds an agent with every element initially in state 0.
func NewAgent(id uint32, arr *element.Array) *Agent {
	return &Agent{ID: id, Array: arr, current: make(element.Config, arr.N())}
}

// AttachScope points the agent's telemetry at a session scope: frame
// counters, the structured log, and the channel-health actuation feed.
func (a *Agent) AttachScope(sc *scope.Scope) {
	a.Obs = sc.Registry()
	a.Log = sc.Logger()
	a.Health = sc.Health()
}

// Current returns a copy of the applied configuration.
func (a *Agent) Current() element.Config {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.current.Clone()
}

// Serve handles one controller connection until the context is cancelled
// or the connection fails. It sends a Hello first, then answers requests.
func (a *Agent) Serve(ctx context.Context, conn Conn) error {
	if err := conn.Send(0, 0, &Hello{AgentID: a.ID, NumElements: uint16(a.Array.N())}); err != nil {
		return fmt.Errorf("controlplane: hello: %w", err)
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Poll with a short deadline so cancellation is honoured even on
		// an idle connection.
		_ = conn.SetRecvDeadline(time.Now().Add(50 * time.Millisecond))
		seq, trace, msg, err := conn.Recv()
		if err != nil {
			var to interface{ Timeout() bool }
			if errors.As(err, &to) && to.Timeout() {
				continue
			}
			if errors.Is(err, ErrBadCRC) {
				continue // corrupted frame: drop it, stay alive
			}
			return err
		}
		if err := a.handle(conn, seq, trace, msg); err != nil {
			return err
		}
	}
}

// handle dispatches one request. The request's trace ID is echoed on
// every reply and, when the registry carries a TraceLog, the handling
// time is recorded as an "agent"-track span under the same ID — the
// agent half of the controller's send→ack pair.
func (a *Agent) handle(conn Conn, seq uint32, trace uint64, msg Message) error {
	a.Obs.Counter("agent_frames_total").Inc()
	var start time.Time
	tl := a.Obs.TraceLog()
	if tl != nil {
		start = time.Now()
	}
	span := func(name string) {
		if tl != nil {
			tl.Record("agent", name, trace, start, time.Since(start),
				map[string]any{"seq": seq, "agent_id": a.ID})
		}
	}
	switch m := msg.(type) {
	case *SetConfig:
		a.Obs.Counter("agent_setconfig_total").Inc()
		cfg := make(element.Config, len(m.States))
		for i, s := range m.States {
			cfg[i] = int(s)
		}
		if err := a.Array.Validate(cfg); err != nil {
			a.Obs.Counter("agent_rejects_total").Inc()
			err := conn.Send(seq, trace, &Ack{AckSeq: seq, Status: StatusBadConfig})
			span("controlplane/set-config")
			return err
		}
		if a.ActuationDelay > 0 {
			time.Sleep(a.ActuationDelay)
		}
		a.mu.Lock()
		a.current = cfg
		a.mu.Unlock()
		if a.OnApply != nil {
			a.OnApply(cfg.Clone())
		}
		a.Health.ObserveActuation()
		if a.Log.Enabled(obs.LevelDebug) {
			a.Log.Debug("agent: applied configuration", "seq", seq, "trace", trace, "elements", len(cfg))
		}
		err := conn.Send(seq, trace, &Ack{AckSeq: seq, Status: StatusOK})
		span("controlplane/set-config")
		return err
	case *Query:
		a.Obs.Counter("agent_queries_total").Inc()
		cur := a.Current()
		states := make([]uint8, len(cur))
		for i, s := range cur {
			states[i] = uint8(s)
		}
		err := conn.Send(seq, trace, &Report{States: states})
		span("controlplane/query")
		return err
	case *Ping:
		a.Obs.Counter("agent_pings_total").Inc()
		err := conn.Send(seq, trace, &Pong{T: m.T})
		span("controlplane/ping")
		return err
	case *Hello:
		// A Hello *request* is a discovery probe (datagram controllers
		// have no stream handshake); answer with our identity.
		a.Obs.Counter("agent_hellos_total").Inc()
		err := conn.Send(seq, trace, &Hello{AgentID: a.ID, NumElements: uint16(a.Array.N())})
		span("controlplane/probe")
		return err
	default:
		// Unknown or unexpected messages are ignored: a controller
		// restart may replay, and robustness beats strictness here.
		return nil
	}
}

// ListenAndServe accepts controller connections on l until ctx is done,
// serving each in its own goroutine. It is the agent-side entry point of
// cmd/pressctl.
func (a *Agent) ListenAndServe(ctx context.Context, l net.Listener) error {
	go func() {
		<-ctx.Done()
		l.Close()
	}()
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		c, err := l.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer c.Close()
			_ = a.Serve(ctx, NewStreamConn(c))
		}()
	}
}
