package controlplane

import (
	"context"
	"net"
	"testing"
	"time"

	"press/internal/element"
)

// startUDPAgent runs an agent on a loopback UDP socket and returns the
// agent, its address, and a cleanup handled by t.
func startUDPAgent(t *testing.T, arr *element.Array) (*Agent, net.Addr) {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	agent := NewAgent(21, arr)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = agent.ServePacket(ctx, pc)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return agent, pc.LocalAddr()
}

// dialUDPController opens a controller socket toward the agent.
func dialUDPController(t *testing.T, agentAddr net.Addr) *Controller {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pc.Close() })
	ctrl := NewController(NewPacketConn(pc, agentAddr))
	ctrl.Timeout = 500 * time.Millisecond
	return ctrl
}

func TestUDPProbeAndActuate(t *testing.T) {
	arr := testArray(3)
	agent, addr := startUDPAgent(t, arr)
	ctrl := dialUDPController(t, addr)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := ctrl.Probe(ctx); err != nil {
		t.Fatal(err)
	}
	if ctrl.AgentID() != 21 || ctrl.NumElements() != 3 {
		t.Fatalf("probe learned id=%d n=%d", ctrl.AgentID(), ctrl.NumElements())
	}
	want := element.Config{2, 0, 3}
	if err := ctrl.SetConfig(ctx, want); err != nil {
		t.Fatal(err)
	}
	if !agent.Current().Equal(want) {
		t.Errorf("agent at %v, want %v", agent.Current(), want)
	}
	got, err := ctrl.QueryConfig(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("query returned %v", got)
	}
	rtt, err := ctrl.Ping(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rtt <= 0 || rtt > time.Second {
		t.Errorf("udp rtt = %v", rtt)
	}
}

func TestUDPMultipleControllers(t *testing.T) {
	arr := testArray(2)
	agent, addr := startUDPAgent(t, arr)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 3; i++ {
		ctrl := dialUDPController(t, addr)
		if err := ctrl.Probe(ctx); err != nil {
			t.Fatalf("controller %d probe: %v", i, err)
		}
		cfg := element.Config{i % 4, (i + 2) % 4}
		if err := ctrl.SetConfig(ctx, cfg); err != nil {
			t.Fatalf("controller %d: %v", i, err)
		}
		if !agent.Current().Equal(cfg) {
			t.Fatalf("controller %d: agent at %v", i, agent.Current())
		}
	}
}

func TestUDPIgnoresStraySources(t *testing.T) {
	arr := testArray(2)
	_, addr := startUDPAgent(t, arr)
	ctrl := dialUDPController(t, addr)

	// A third socket spams the controller's port with garbage and with
	// valid-looking frames; Recv must keep waiting for the real peer.
	stray, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stray.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := ctrl.Probe(ctx); err != nil {
		t.Fatal(err)
	}
	// Find the controller's local address via a throwaway set: the
	// PacketConn wraps our own socket, so spam the agent instead and make
	// sure the agent survives garbage.
	if _, err := stray.WriteTo([]byte("garbage"), addr); err != nil {
		t.Fatal(err)
	}
	buf, _ := EncodeFrame(9, 0, &SetConfig{States: []uint8{9, 9}})
	if _, err := stray.WriteTo(buf, addr); err != nil {
		t.Fatal(err)
	}
	// The agent must still answer the legitimate controller.
	if err := ctrl.SetConfig(ctx, element.Config{1, 1}); err != nil {
		t.Fatal(err)
	}
}

func TestUDPControllerTimesOutWithoutAgent(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	// Point at a port nobody listens on.
	dead := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 1}
	ctrl := NewController(NewPacketConn(pc, dead))
	ctrl.Timeout = 50 * time.Millisecond
	ctrl.Retries = 1
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := ctrl.Probe(ctx); err == nil {
		t.Error("probe succeeded with no agent")
	}
}
