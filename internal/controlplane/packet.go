package controlplane

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"
)

// PacketConn adapts a net.PacketConn (UDP, unixgram) into a control-plane
// Conn toward one fixed peer. Datagram semantics fit the protocol
// naturally: one frame per datagram, corrupted datagrams dropped, loss
// handled by the controller's retransmission — the same behaviour the
// simulated lossy pipe models, now over a real socket.
type PacketConn struct {
	pc   net.PacketConn
	peer net.Addr
}

// NewPacketConn wraps pc, sending to and accepting replies from peer.
func NewPacketConn(pc net.PacketConn, peer net.Addr) *PacketConn {
	return &PacketConn{pc: pc, peer: peer}
}

// Send implements Conn.
func (p *PacketConn) Send(seq uint32, trace uint64, msg Message) error {
	buf, err := EncodeFrame(seq, trace, msg)
	if err != nil {
		return err
	}
	_, err = p.pc.WriteTo(buf, p.peer)
	return err
}

// Recv implements Conn. Datagrams that fail to decode, or that arrive
// from an unexpected source, are dropped silently.
func (p *PacketConn) Recv() (uint32, uint64, Message, error) {
	buf := make([]byte, headerLen+MaxPayload+4)
	for {
		n, from, err := p.pc.ReadFrom(buf)
		if err != nil {
			return 0, 0, nil, err
		}
		if from.String() != p.peer.String() {
			continue // not our agent: a stray datagram on the port
		}
		seq, trace, msg, err := DecodeFrame(buf[:n])
		if err != nil {
			continue // corrupted datagram: drop, like a PHY would
		}
		return seq, trace, msg, nil
	}
}

// SetRecvDeadline implements Conn.
func (p *PacketConn) SetRecvDeadline(t time.Time) error {
	return p.pc.SetReadDeadline(t)
}

// Close implements Conn.
func (p *PacketConn) Close() error { return p.pc.Close() }

// ServePacket serves the element-agent protocol over a datagram socket:
// each request datagram is answered to its source address, so one UDP
// socket serves any number of controllers — the natural shape for the
// low-rate broadcast-ish control channels §4.2 sketches. It announces
// itself by answering a Hello to any source whose first frame fails to
// be a known request (controllers over UDP skip the stream handshake and
// simply start with SetConfig/Query/Ping).
func (a *Agent) ServePacket(ctx context.Context, pc net.PacketConn) error {
	go func() {
		<-ctx.Done()
		pc.Close()
	}()
	buf := make([]byte, headerLen+MaxPayload+4)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		_ = pc.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		n, from, err := pc.ReadFrom(buf)
		if err != nil {
			var to interface{ Timeout() bool }
			if errors.As(err, &to) && to.Timeout() {
				continue
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		seq, trace, msg, derr := DecodeFrame(buf[:n])
		if derr != nil {
			continue // corrupted datagram
		}
		reply := replyConn{pc: pc, to: from}
		if err := a.handle(reply, seq, trace, msg); err != nil {
			return fmt.Errorf("controlplane: reply to %v: %w", from, err)
		}
	}
}

// replyConn is the one-shot Conn the datagram server hands to the shared
// request handler: Send goes back to the requester, Recv is unused.
type replyConn struct {
	pc net.PacketConn
	to net.Addr
}

func (r replyConn) Send(seq uint32, trace uint64, msg Message) error {
	buf, err := EncodeFrame(seq, trace, msg)
	if err != nil {
		return err
	}
	_, err = r.pc.WriteTo(buf, r.to)
	return err
}

func (replyConn) Recv() (uint32, uint64, Message, error) {
	return 0, 0, nil, errors.New("controlplane: replyConn cannot receive")
}

func (replyConn) SetRecvDeadline(time.Time) error { return nil }

func (replyConn) Close() error { return nil }
