package controlplane

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame hammers the wire decoder with arbitrary bytes: it must
// never panic, and anything it accepts must re-encode to the same frame
// (decode∘encode is the identity on the accepted language). Both header
// versions are in the corpus; the re-encode picks the encoder matching
// the input's declared version so the identity holds across the bump.
func FuzzDecodeFrame(f *testing.F) {
	for _, msg := range allMessages() {
		buf, err := EncodeFrame(7, 0x0102030405060708, msg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		legacy, err := EncodeFrameLegacy(7, msg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(legacy)
	}
	f.Add([]byte{})
	f.Add([]byte{0x50, 0x52, 1, 1})
	f.Add([]byte{0x50, 0x52, 2, 1})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		seq, trace, msg, err := DecodeFrame(data)
		if err != nil {
			return // rejected input: fine, as long as we did not panic
		}
		var re []byte
		if data[2] == VersionLegacy {
			if trace != 0 {
				t.Fatalf("legacy frame decoded with trace %#x", trace)
			}
			re, err = EncodeFrameLegacy(seq, msg)
		} else {
			re, err = EncodeFrame(seq, trace, msg)
		}
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not the identity:\n in %x\nout %x", data, re)
		}
	})
}

// FuzzReadFrame feeds arbitrary byte streams to the stream reader: no
// panics, no over-allocation (the MaxPayload guard), and any frame read
// must satisfy the same re-encode identity.
func FuzzReadFrame(f *testing.F) {
	var stream bytes.Buffer
	for i, msg := range allMessages() {
		_ = WriteFrame(&stream, uint32(i), uint64(i)+1, msg)
	}
	var legacyStream bytes.Buffer
	for i, msg := range allMessages() {
		buf, _ := EncodeFrameLegacy(uint32(i), msg)
		legacyStream.Write(buf)
	}
	f.Add(stream.Bytes())
	f.Add(legacyStream.Bytes())
	f.Add([]byte{0x50})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			seq, trace, msg, err := ReadFrame(r)
			if err != nil {
				return
			}
			if _, err := EncodeFrame(seq, trace, msg); err != nil {
				t.Fatalf("read frame failed to re-encode: %v", err)
			}
		}
	})
}
