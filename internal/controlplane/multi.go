package controlplane

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"press/internal/element"
)

// MultiController drives several element agents — separate wall segments,
// each with its own microcontroller and link — as one logical array. The
// global configuration is split across agents by position, actuated
// concurrently, and an actuation only counts as complete when every
// segment has acknowledged: the semi-centralized controller shape of
// §4.2.
type MultiController struct {
	parts []part
	total int
}

type part struct {
	ctrl   *Controller
	offset int
	count  int
}

// NewMultiController composes controllers whose agents have completed
// their handshake/probe (so element counts are known). The global config
// is the concatenation of the agents' arrays in the order given.
func NewMultiController(ctrls ...*Controller) (*MultiController, error) {
	if len(ctrls) == 0 {
		return nil, errors.New("controlplane: no controllers")
	}
	m := &MultiController{}
	offset := 0
	for i, c := range ctrls {
		n := c.NumElements()
		if n == 0 {
			return nil, fmt.Errorf("controlplane: controller %d has not learned its agent's array size (handshake/probe first)", i)
		}
		m.parts = append(m.parts, part{ctrl: c, offset: offset, count: n})
		offset += n
	}
	m.total = offset
	return m, nil
}

// NumElements returns the size of the combined logical array.
func (m *MultiController) NumElements() int { return m.total }

// SetConfig actuates the global configuration across all agents
// concurrently and waits for every acknowledgement. On any failure it
// reports which segment failed; partial actuation is possible (some
// segments acked, some not), mirroring reality — callers that care
// should re-issue, which is idempotent.
func (m *MultiController) SetConfig(ctx context.Context, global element.Config) error {
	if len(global) != m.total {
		return fmt.Errorf("controlplane: global config has %d states for %d elements", len(global), m.total)
	}
	var wg sync.WaitGroup
	errs := make([]error, len(m.parts))
	for i, p := range m.parts {
		wg.Add(1)
		go func(i int, p part) {
			defer wg.Done()
			slice := global[p.offset : p.offset+p.count]
			if err := p.ctrl.SetConfig(ctx, slice.Clone()); err != nil {
				errs[i] = fmt.Errorf("segment %d (agent %d): %w", i, p.ctrl.AgentID(), err)
			}
		}(i, p)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// QueryConfig assembles the global configuration from every agent.
func (m *MultiController) QueryConfig(ctx context.Context) (element.Config, error) {
	out := make(element.Config, m.total)
	var wg sync.WaitGroup
	errs := make([]error, len(m.parts))
	for i, p := range m.parts {
		wg.Add(1)
		go func(i int, p part) {
			defer wg.Done()
			cfg, err := p.ctrl.QueryConfig(ctx)
			if err != nil {
				errs[i] = fmt.Errorf("segment %d: %w", i, err)
				return
			}
			if len(cfg) != p.count {
				errs[i] = fmt.Errorf("segment %d reported %d states, want %d", i, len(cfg), p.count)
				return
			}
			copy(out[p.offset:p.offset+p.count], cfg)
		}(i, p)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return out, nil
}

// MaxPing returns the slowest segment's control round-trip — the number
// that bounds how fast the whole logical array can be actuated.
func (m *MultiController) MaxPing(ctx context.Context) (time.Duration, error) {
	var (
		mu    sync.Mutex
		worst time.Duration
	)
	var wg sync.WaitGroup
	errs := make([]error, len(m.parts))
	for i, p := range m.parts {
		wg.Add(1)
		go func(i int, p part) {
			defer wg.Done()
			rtt, err := p.ctrl.Ping(ctx)
			if err != nil {
				errs[i] = fmt.Errorf("segment %d: %w", i, err)
				return
			}
			mu.Lock()
			if rtt > worst {
				worst = rtt
			}
			mu.Unlock()
		}(i, p)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return 0, err
	}
	return worst, nil
}
