package controlplane

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"press/internal/element"
	"press/internal/obs"
)

// scrapeCounter fetches the live /metrics endpoint and returns the value
// of one counter (0 if absent).
func scrapeCounter(t *testing.T, addr, name string) int64 {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseInt(strings.TrimPrefix(line, name+" "), 10, 64)
		if err != nil {
			t.Fatalf("scrape: parse %q: %v", line, err)
		}
		return v
	}
	return 0
}

// TestLiveTelemetryEndToEnd drives a real controller↔agent session over
// TCP while an obs.Server scrapes the shared registry live: the frame
// counters must advance between scrapes, /events must deliver at least
// one sampled record, and the trace log must end up with matched
// controller/agent span pairs — the whole observability story under the
// race detector at once.
func TestLiveTelemetryEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	tl := obs.NewTraceLog()
	reg.SetTraceLog(tl)
	rec := obs.NewRecorder(reg, 5*time.Millisecond, 64)
	rec.Start()
	defer rec.Stop()
	srv := obs.NewServer(reg, rec)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr().String()

	// Agent end over a real TCP listener.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	arr := testArray(8)
	agent := NewAgent(42, arr)
	agent.Obs = reg
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = agent.ListenAndServe(ctx, ln)
	}()

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	ctrl := NewController(NewStreamConn(nc))
	ctrl.Obs = reg
	ctrl.Timeout = 500 * time.Millisecond
	if err := ctrl.Handshake(ctx); err != nil {
		t.Fatal(err)
	}

	before := scrapeCounter(t, addr, "controlplane_frames_sent_total")

	// Subscribe to /events before driving traffic so a sample containing
	// the new counts is guaranteed to arrive while we listen.
	eventsErr := make(chan error, 1)
	gotSample := make(chan obs.Sample, 1)
	go func() {
		resp, err := http.Get(fmt.Sprintf("http://%s/events", addr))
		if err != nil {
			eventsErr <- err
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var s obs.Sample
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &s); err != nil {
				eventsErr <- err
				return
			}
			if s.Counters["controlplane_frames_sent_total"] > before {
				gotSample <- s
				return
			}
		}
		eventsErr <- fmt.Errorf("events stream ended: %v", sc.Err())
	}()

	// Drive a session: configs, a query, and pings.
	for i := 0; i < 5; i++ {
		cfg := make(element.Config, arr.N())
		for j := range cfg {
			cfg[j] = (i + j) % 4
		}
		if err := ctrl.SetConfig(ctx, cfg); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ctrl.QueryConfig(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Ping(ctx); err != nil {
		t.Fatal(err)
	}

	after := scrapeCounter(t, addr, "controlplane_frames_sent_total")
	if after <= before {
		t.Errorf("frames_sent did not advance between scrapes: %d -> %d", before, after)
	}
	if v := scrapeCounter(t, addr, "agent_setconfig_total"); v < 5 {
		t.Errorf("agent_setconfig_total = %d, want >= 5", v)
	}

	select {
	case s := <-gotSample:
		if s.UnixMs == 0 {
			t.Error("sampled record has zero timestamp")
		}
	case err := <-eventsErr:
		t.Fatalf("events stream: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("no /events sample with advanced counters within 5s")
	}

	// The trace log must hold matched controller/agent pairs: same
	// nonzero trace ID on both tracks.
	spans := tl.Spans()
	byTrack := map[string]map[uint64]bool{}
	for _, sp := range spans {
		if byTrack[sp.Track] == nil {
			byTrack[sp.Track] = map[uint64]bool{}
		}
		byTrack[sp.Track][sp.TraceID] = true
	}
	matched := 0
	for id := range byTrack["controller"] {
		if id != 0 && byTrack["agent"][id] {
			matched++
		}
	}
	if matched < 5 {
		t.Errorf("only %d matched controller/agent trace pairs (spans: %d)", matched, len(spans))
	}

	cancel()
	<-serveDone
}
