package controlplane

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame-level errors.
var (
	// ErrBadMagic means the stream is not speaking this protocol.
	ErrBadMagic = errors.New("controlplane: bad magic")
	// ErrBadVersion means a protocol version we do not understand.
	ErrBadVersion = errors.New("controlplane: unsupported version")
	// ErrBadCRC means the frame was corrupted in transit.
	ErrBadCRC = errors.New("controlplane: CRC mismatch")
	// ErrTooLarge means the frame declares an oversized payload —
	// either corruption or a hostile peer; the connection should drop.
	ErrTooLarge = errors.New("controlplane: payload exceeds MaxPayload")
)

const (
	// headerLenV1 is the legacy header: magic(2) + version(1) + type(1) +
	// length(2) + seq(4).
	headerLenV1 = 10
	// headerLen is the current header: the v1 fields plus trace(8). The
	// trace ID sits in the header, not the payload, so every message type
	// carries it and the CRC (computed over header+payload) covers it.
	headerLen = headerLenV1 + 8
)

// headerLenFor returns the header length of a protocol version.
func headerLenFor(version uint8) (int, error) {
	switch version {
	case VersionLegacy:
		return headerLenV1, nil
	case Version:
		return headerLen, nil
	default:
		return 0, ErrBadVersion
	}
}

// EncodeFrame serializes seq+trace+msg into a self-contained current-
// version frame. A zero trace means "no trace" and is what legacy peers
// observe after decode.
func EncodeFrame(seq uint32, trace uint64, msg Message) ([]byte, error) {
	return encodeFrame(Version, seq, trace, msg)
}

// EncodeFrameLegacy serializes a version-1 frame (no trace field) — the
// format pre-trace agents speak. Kept for compatibility tests and for
// talking to un-upgraded peers.
func EncodeFrameLegacy(seq uint32, msg Message) ([]byte, error) {
	return encodeFrame(VersionLegacy, seq, 0, msg)
}

func encodeFrame(version uint8, seq uint32, trace uint64, msg Message) ([]byte, error) {
	payload := msg.appendPayload(nil)
	if len(payload) > MaxPayload {
		return nil, ErrTooLarge
	}
	hlen, err := headerLenFor(version)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, hlen+len(payload)+4)
	buf = binary.BigEndian.AppendUint16(buf, Magic)
	buf = append(buf, version, uint8(msg.MsgType()))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(payload)))
	buf = binary.BigEndian.AppendUint32(buf, seq)
	if version >= Version {
		buf = binary.BigEndian.AppendUint64(buf, trace)
	}
	buf = append(buf, payload...)
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf)), nil
}

// DecodeFrame parses one complete frame, verifying magic, version, length
// and CRC. Both the current and the legacy (version-1) header are
// accepted; legacy frames decode with trace 0.
func DecodeFrame(buf []byte) (seq uint32, trace uint64, msg Message, err error) {
	if len(buf) < headerLenV1+4 {
		return 0, 0, nil, fmt.Errorf("controlplane: frame truncated (%d bytes)", len(buf))
	}
	if binary.BigEndian.Uint16(buf) != Magic {
		return 0, 0, nil, ErrBadMagic
	}
	hlen, err := headerLenFor(buf[2])
	if err != nil {
		return 0, 0, nil, err
	}
	if len(buf) < hlen+4 {
		return 0, 0, nil, fmt.Errorf("controlplane: frame truncated (%d bytes)", len(buf))
	}
	plen := int(binary.BigEndian.Uint16(buf[4:]))
	if plen > MaxPayload {
		return 0, 0, nil, ErrTooLarge
	}
	if len(buf) != hlen+plen+4 {
		return 0, 0, nil, fmt.Errorf("controlplane: frame length %d does not match declared payload %d", len(buf), plen)
	}
	body := buf[:hlen+plen]
	wantCRC := binary.BigEndian.Uint32(buf[hlen+plen:])
	if crc32.ChecksumIEEE(body) != wantCRC {
		return 0, 0, nil, ErrBadCRC
	}
	m, err := newMessage(Type(buf[3]))
	if err != nil {
		return 0, 0, nil, err
	}
	if err := m.decodePayload(buf[hlen : hlen+plen]); err != nil {
		return 0, 0, nil, err
	}
	if hlen >= headerLen {
		trace = binary.BigEndian.Uint64(buf[10:])
	}
	return binary.BigEndian.Uint32(buf[6:]), trace, m, nil
}

// WriteFrame writes one current-version frame to a stream.
func WriteFrame(w io.Writer, seq uint32, trace uint64, msg Message) error {
	buf, err := EncodeFrame(seq, trace, msg)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads exactly one frame from a stream, resynchronization-free:
// a framing error poisons the stream and the caller should drop the
// connection (TCP guarantees ordering, and the in-memory transports are
// datagram-like, so partial frames only occur on a broken peer). Both
// protocol versions are accepted, so a current controller can read a
// legacy agent's stream.
func ReadFrame(r io.Reader) (seq uint32, trace uint64, msg Message, err error) {
	header := make([]byte, headerLenV1)
	if _, err := io.ReadFull(r, header); err != nil {
		return 0, 0, nil, err
	}
	if binary.BigEndian.Uint16(header) != Magic {
		return 0, 0, nil, ErrBadMagic
	}
	hlen, err := headerLenFor(header[2])
	if err != nil {
		return 0, 0, nil, err
	}
	plen := int(binary.BigEndian.Uint16(header[4:]))
	if plen > MaxPayload {
		return 0, 0, nil, ErrTooLarge
	}
	rest := make([]byte, (hlen-headerLenV1)+plen+4)
	if _, err := io.ReadFull(r, rest); err != nil {
		return 0, 0, nil, err
	}
	return DecodeFrame(append(header, rest...))
}
