package controlplane

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame-level errors.
var (
	// ErrBadMagic means the stream is not speaking this protocol.
	ErrBadMagic = errors.New("controlplane: bad magic")
	// ErrBadVersion means a protocol version we do not understand.
	ErrBadVersion = errors.New("controlplane: unsupported version")
	// ErrBadCRC means the frame was corrupted in transit.
	ErrBadCRC = errors.New("controlplane: CRC mismatch")
	// ErrTooLarge means the frame declares an oversized payload —
	// either corruption or a hostile peer; the connection should drop.
	ErrTooLarge = errors.New("controlplane: payload exceeds MaxPayload")
)

const headerLen = 10 // magic(2) + version(1) + type(1) + length(2) + seq(4)

// EncodeFrame serializes seq+msg into a self-contained frame.
func EncodeFrame(seq uint32, msg Message) ([]byte, error) {
	payload := msg.appendPayload(nil)
	if len(payload) > MaxPayload {
		return nil, ErrTooLarge
	}
	buf := make([]byte, 0, headerLen+len(payload)+4)
	buf = binary.BigEndian.AppendUint16(buf, Magic)
	buf = append(buf, Version, uint8(msg.MsgType()))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(payload)))
	buf = binary.BigEndian.AppendUint32(buf, seq)
	buf = append(buf, payload...)
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf)), nil
}

// DecodeFrame parses one complete frame, verifying magic, version, length
// and CRC. It returns the sequence number and decoded body.
func DecodeFrame(buf []byte) (seq uint32, msg Message, err error) {
	if len(buf) < headerLen+4 {
		return 0, nil, fmt.Errorf("controlplane: frame truncated (%d bytes)", len(buf))
	}
	if binary.BigEndian.Uint16(buf) != Magic {
		return 0, nil, ErrBadMagic
	}
	if buf[2] != Version {
		return 0, nil, ErrBadVersion
	}
	plen := int(binary.BigEndian.Uint16(buf[4:]))
	if plen > MaxPayload {
		return 0, nil, ErrTooLarge
	}
	if len(buf) != headerLen+plen+4 {
		return 0, nil, fmt.Errorf("controlplane: frame length %d does not match declared payload %d", len(buf), plen)
	}
	body := buf[:headerLen+plen]
	wantCRC := binary.BigEndian.Uint32(buf[headerLen+plen:])
	if crc32.ChecksumIEEE(body) != wantCRC {
		return 0, nil, ErrBadCRC
	}
	m, err := newMessage(Type(buf[3]))
	if err != nil {
		return 0, nil, err
	}
	if err := m.decodePayload(buf[headerLen : headerLen+plen]); err != nil {
		return 0, nil, err
	}
	return binary.BigEndian.Uint32(buf[6:]), m, nil
}

// WriteFrame writes one frame to a stream.
func WriteFrame(w io.Writer, seq uint32, msg Message) error {
	buf, err := EncodeFrame(seq, msg)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads exactly one frame from a stream, resynchronization-free:
// a framing error poisons the stream and the caller should drop the
// connection (TCP guarantees ordering, and the in-memory transports are
// datagram-like, so partial frames only occur on a broken peer).
func ReadFrame(r io.Reader) (seq uint32, msg Message, err error) {
	header := make([]byte, headerLen)
	if _, err := io.ReadFull(r, header); err != nil {
		return 0, nil, err
	}
	if binary.BigEndian.Uint16(header) != Magic {
		return 0, nil, ErrBadMagic
	}
	if header[2] != Version {
		return 0, nil, ErrBadVersion
	}
	plen := int(binary.BigEndian.Uint16(header[4:]))
	if plen > MaxPayload {
		return 0, nil, ErrTooLarge
	}
	rest := make([]byte, plen+4)
	if _, err := io.ReadFull(r, rest); err != nil {
		return 0, nil, err
	}
	return DecodeFrame(append(header, rest...))
}
