package controlplane

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"press/internal/element"
	"press/internal/obs"
	"press/internal/obs/prof"
	"press/internal/obs/scope"
	"press/internal/obs/slo"
)

// Stats counts controller-side protocol events, for the latency/loss
// reporting the design-space exploration needs.
type Stats struct {
	Sent      atomic.Int64
	Acked     atomic.Int64
	Retries   atomic.Int64
	Rejected  atomic.Int64
	Timeouts  atomic.Int64
	CRCErrors atomic.Int64
}

// Controller is the controller-side endpoint: it actuates a remote agent
// with at-least-once retransmission and matches acknowledgements by
// sequence number, tolerating the loss and corruption the simulated
// control channels inject.
//
// Every request is tagged with a fresh trace ID that rides the frame
// header, is echoed back by the agent, and — when the registry carries a
// TraceLog — becomes a matched pair of "controller" and "agent" timeline
// spans, so a whole session renders as a distributed trace.
type Controller struct {
	conn Conn
	// Timeout is the per-attempt ack deadline (default 100 ms).
	Timeout time.Duration
	// Retries is the number of retransmissions after the first attempt
	// (default 4).
	Retries int
	// Stats accumulates protocol counters.
	Stats Stats
	// Obs, when set, mirrors Stats into a telemetry registry and adds the
	// latency histograms (ack latency, ping RTT) that the atomic counters
	// cannot carry; a registry with an attached TraceLog additionally
	// records one send→ack span per completed request. Nil disables
	// telemetry at the cost of one pointer check per event.
	Obs *obs.Registry
	// Log, when set, receives protocol events (retries, give-ups) as
	// structured records.
	Log *obs.Logger
	// Prof, when set, accounts actuation round trips (send → matching
	// ack) to the actuate phase.
	Prof *prof.Collector
	// Tracer, when set, hooks actuation into the control-loop iteration
	// in flight: SetConfig reuses the current loop's trace ID on the
	// frame header (so controller/agent timeline spans and the loop's
	// span tree share one key) and attaches "actuate" and "ack" child
	// spans to the loop.
	Tracer *slo.Tracer

	seq atomic.Uint32
	// agentID and numElements are learned from the agent's Hello.
	agentID     uint32
	numElements int
	helloSeen   bool
}

// NewController wraps a connection. Call Handshake before actuating.
func NewController(conn Conn) *Controller {
	return &Controller{conn: conn, Timeout: 100 * time.Millisecond, Retries: 4}
}

// AttachScope points the controller's telemetry at a session scope:
// registry (protocol counters, latency histograms, trace spans),
// structured log, and actuation phase accounting.
func (c *Controller) AttachScope(sc *scope.Scope) {
	c.Obs = sc.Registry()
	c.Log = sc.Logger()
	c.Prof = sc.Prof()
	c.Tracer = sc.Tracer()
}

// ErrRejected means the agent refused the configuration.
var ErrRejected = errors.New("controlplane: agent rejected configuration")

// traceSpan records one completed controller-side round trip onto the
// registry's trace log (no-op without one).
func (c *Controller) traceSpan(name string, trace uint64, start time.Time, args map[string]any) {
	tl := c.Obs.TraceLog()
	if tl == nil {
		return
	}
	tl.Record("controller", name, trace, start, time.Since(start), args)
}

// Handshake waits for the agent's Hello and records its array size.
func (c *Controller) Handshake(ctx context.Context) error {
	deadline := time.Now().Add(c.Timeout * time.Duration(c.Retries+1))
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	_ = c.conn.SetRecvDeadline(deadline)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		_, _, msg, err := c.conn.Recv()
		if err != nil {
			return fmt.Errorf("controlplane: handshake: %w", err)
		}
		if h, ok := msg.(*Hello); ok {
			c.agentID = h.AgentID
			c.numElements = int(h.NumElements)
			c.helloSeen = true
			return nil
		}
		// Skip anything stale until the Hello arrives.
	}
}

// Probe discovers the agent over a datagram transport, where the agent
// cannot announce itself: send a Hello, await the agent's Hello reply,
// retrying like SetConfig does. Stream controllers use Handshake instead.
func (c *Controller) Probe(ctx context.Context) error {
	seq := c.seq.Add(1)
	trace := obs.NewTraceID()
	start := time.Now()
	var lastErr error
	for attempt := 0; attempt <= c.Retries; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := c.conn.Send(seq, trace, &Hello{}); err != nil {
			return err
		}
		c.Obs.Counter("controlplane_frames_sent_total").Inc()
		deadline := time.Now().Add(c.Timeout)
		if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
			deadline = d
		}
		_ = c.conn.SetRecvDeadline(deadline)
		for {
			_, _, msg, err := c.conn.Recv()
			if err != nil {
				lastErr = err
				break
			}
			if h, ok := msg.(*Hello); ok && (h.AgentID != 0 || h.NumElements != 0) {
				c.agentID = h.AgentID
				c.numElements = int(h.NumElements)
				c.helloSeen = true
				c.traceSpan("controlplane/probe", trace, start, nil)
				return nil
			}
		}
	}
	return fmt.Errorf("controlplane: probe unanswered: %w", lastErr)
}

// AgentID returns the agent identity learned in the handshake.
func (c *Controller) AgentID() uint32 { return c.agentID }

// NumElements returns the remote array size learned in the handshake.
func (c *Controller) NumElements() int { return c.numElements }

// SetConfig actuates cfg on the agent, retrying on timeout, and returns
// once the matching Ack arrives. ErrRejected reports an agent-side
// validation failure (no retry: the config itself is bad).
func (c *Controller) SetConfig(ctx context.Context, cfg element.Config) error {
	_, err := c.SetConfigTraced(ctx, cfg)
	return err
}

// SetConfigTraced is SetConfig, additionally returning the request's
// trace ID (the one riding the frame header and naming the controller/
// agent span pair), so callers can stamp downstream artifacts — recorded
// measurements, CSV rows — with the actuation that produced them. The ID
// is returned even on failure, identifying the attempted request.
func (c *Controller) SetConfigTraced(ctx context.Context, cfg element.Config) (uint64, error) {
	if c.helloSeen && len(cfg) != c.numElements {
		return 0, fmt.Errorf("controlplane: config has %d states for %d elements", len(cfg), c.numElements)
	}
	states := make([]uint8, len(cfg))
	for i, s := range cfg {
		if s < 0 || s > 255 {
			return 0, fmt.Errorf("controlplane: state %d out of uint8 range", s)
		}
		states[i] = uint8(s)
	}
	msg := &SetConfig{States: states}
	seq := c.seq.Add(1)
	trace := obs.NewTraceID()
	loop := c.Tracer.Current()
	if loop != nil {
		// Ride the loop's trace ID so the controller/agent timeline spans
		// and the loop's span tree share one key.
		trace = loop.Trace()
	}
	reqStart := time.Now()
	psp := c.Prof.Start(prof.PhaseActuate)
	defer psp.End()
	lsp := loop.Phase("actuate")
	defer lsp.End()

	var lastErr error
	for attempt := 0; attempt <= c.Retries; attempt++ {
		if err := ctx.Err(); err != nil {
			return trace, err
		}
		if attempt > 0 {
			c.Stats.Retries.Add(1)
			c.Obs.Counter("controlplane_retries_total").Inc()
			if c.Log.Enabled(obs.LevelDebug) {
				c.Log.Debug("controlplane: retrying set-config",
					"seq", seq, "trace", trace, "attempt", attempt, "err", lastErr)
			}
		}
		var attemptStart time.Time
		if c.Obs != nil {
			attemptStart = time.Now()
		}
		if err := c.conn.Send(seq, trace, msg); err != nil {
			return trace, err
		}
		c.Stats.Sent.Add(1)
		c.Obs.Counter("controlplane_frames_sent_total").Inc()

		asp := lsp.Child("ack")
		status, err := c.awaitAck(ctx, seq)
		asp.End()
		if err == nil {
			if c.Obs != nil {
				c.Obs.Histogram("controlplane_ack_latency_seconds", obs.LatencyBuckets).
					ObserveDuration(time.Since(attemptStart))
			}
			c.traceSpan("controlplane/set-config", trace, reqStart,
				map[string]any{"seq": seq, "attempts": attempt + 1, "status": status})
			if status != StatusOK {
				c.Stats.Rejected.Add(1)
				c.Obs.Counter("controlplane_rejected_total").Inc()
				return trace, fmt.Errorf("%w (status %d)", ErrRejected, status)
			}
			c.Stats.Acked.Add(1)
			c.Obs.Counter("controlplane_acks_total").Inc()
			c.Prof.Add(prof.PhaseActuate, prof.AuxActuations, 1)
			return trace, nil
		}
		lastErr = err
	}
	if c.Log.Enabled(obs.LevelWarn) {
		c.Log.Warn("controlplane: set-config unacknowledged",
			"seq", seq, "trace", trace, "attempts", c.Retries+1, "err", lastErr)
	}
	return trace, fmt.Errorf("controlplane: set-config seq %d unacknowledged after %d attempts: %w",
		seq, c.Retries+1, lastErr)
}

// awaitAck consumes messages until the matching ack or the attempt
// deadline.
func (c *Controller) awaitAck(ctx context.Context, seq uint32) (uint8, error) {
	deadline := time.Now().Add(c.Timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	_ = c.conn.SetRecvDeadline(deadline)
	for {
		_, _, msg, err := c.conn.Recv()
		if err != nil {
			if errors.Is(err, ErrBadCRC) {
				c.Stats.CRCErrors.Add(1)
				c.Obs.Counter("controlplane_crc_errors_total").Inc()
				continue
			}
			var to interface{ Timeout() bool }
			if errors.As(err, &to) && to.Timeout() {
				c.Stats.Timeouts.Add(1)
				c.Obs.Counter("controlplane_timeouts_total").Inc()
			}
			return 0, err
		}
		c.Obs.Counter("controlplane_frames_received_total").Inc()
		if ack, ok := msg.(*Ack); ok && ack.AckSeq == seq {
			return ack.Status, nil
		}
		// Stale ack or unsolicited message: keep draining.
	}
}

// QueryConfig fetches the agent's applied configuration.
func (c *Controller) QueryConfig(ctx context.Context) (element.Config, error) {
	seq := c.seq.Add(1)
	trace := obs.NewTraceID()
	start := time.Now()
	var lastErr error
	for attempt := 0; attempt <= c.Retries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := c.conn.Send(seq, trace, &Query{}); err != nil {
			return nil, err
		}
		c.Obs.Counter("controlplane_frames_sent_total").Inc()
		deadline := time.Now().Add(c.Timeout)
		_ = c.conn.SetRecvDeadline(deadline)
		for {
			_, _, msg, err := c.conn.Recv()
			if err != nil {
				if errors.Is(err, ErrBadCRC) {
					continue
				}
				lastErr = err
				break
			}
			if rep, ok := msg.(*Report); ok {
				cfg := make(element.Config, len(rep.States))
				for i, s := range rep.States {
					cfg[i] = int(s)
				}
				c.traceSpan("controlplane/query", trace, start,
					map[string]any{"seq": seq, "attempts": attempt + 1})
				return cfg, nil
			}
		}
	}
	return nil, fmt.Errorf("controlplane: query unanswered: %w", lastErr)
}

// Ping measures the control-plane round-trip time — the number §2's
// coherence-time budget divides by.
func (c *Controller) Ping(ctx context.Context) (time.Duration, error) {
	seq := c.seq.Add(1)
	trace := obs.NewTraceID()
	start := time.Now()
	if err := c.conn.Send(seq, trace, &Ping{T: start.UnixNano()}); err != nil {
		return 0, err
	}
	c.Obs.Counter("controlplane_frames_sent_total").Inc()
	deadline := start.Add(c.Timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	_ = c.conn.SetRecvDeadline(deadline)
	for {
		_, _, msg, err := c.conn.Recv()
		if err != nil {
			return 0, err
		}
		if pong, ok := msg.(*Pong); ok && pong.T == start.UnixNano() {
			rtt := time.Since(start)
			if c.Obs != nil {
				c.Obs.Histogram("controlplane_ping_rtt_seconds", obs.LatencyBuckets).
					ObserveDuration(rtt)
			}
			c.traceSpan("controlplane/ping", trace, start, map[string]any{"seq": seq})
			return rtt, nil
		}
	}
}
