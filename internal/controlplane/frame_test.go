package controlplane

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"reflect"
	"testing"
)

func allMessages() []Message {
	return []Message{
		&Hello{AgentID: 7, NumElements: 3},
		&SetConfig{States: []uint8{0, 3, 1}},
		&SetConfig{States: nil},
		&Ack{AckSeq: 42, Status: StatusOK},
		&Ack{AckSeq: 1, Status: StatusBadConfig},
		&Query{},
		&Report{States: []uint8{2, 2}},
		&Ping{T: 123456789},
		&Pong{T: -42},
	}
}

// sameMessage compares messages, normalizing nil vs empty state slices.
func sameMessage(t *testing.T, want, got Message) bool {
	t.Helper()
	if reflect.DeepEqual(want, got) {
		return true
	}
	if sc, ok := want.(*SetConfig); ok && len(sc.States) == 0 {
		if gsc, ok := got.(*SetConfig); ok && len(gsc.States) == 0 {
			return true
		}
	}
	return false
}

func TestFrameRoundTrip(t *testing.T) {
	for _, msg := range allMessages() {
		buf, err := EncodeFrame(99, 0xdeadbeefcafe, msg)
		if err != nil {
			t.Fatalf("%v: %v", msg.MsgType(), err)
		}
		seq, trace, got, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("%v: decode: %v", msg.MsgType(), err)
		}
		if seq != 99 {
			t.Errorf("%v: seq = %d", msg.MsgType(), seq)
		}
		if trace != 0xdeadbeefcafe {
			t.Errorf("%v: trace = %#x", msg.MsgType(), trace)
		}
		if !sameMessage(t, msg, got) {
			t.Errorf("%v: round trip %+v != %+v", msg.MsgType(), got, msg)
		}
	}
}

// TestFrameRoundTripLegacy covers the pre-trace version-1 header: a
// legacy frame must still decode (with trace 0), so un-upgraded agents
// keep interoperating across the version bump.
func TestFrameRoundTripLegacy(t *testing.T) {
	for _, msg := range allMessages() {
		buf, err := EncodeFrameLegacy(42, msg)
		if err != nil {
			t.Fatalf("%v: %v", msg.MsgType(), err)
		}
		if buf[2] != VersionLegacy {
			t.Fatalf("%v: legacy frame carries version %d", msg.MsgType(), buf[2])
		}
		seq, trace, got, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("%v: legacy decode: %v", msg.MsgType(), err)
		}
		if seq != 42 || trace != 0 {
			t.Errorf("%v: seq = %d, trace = %#x; want 42, 0", msg.MsgType(), seq, trace)
		}
		if !sameMessage(t, msg, got) {
			t.Errorf("%v: legacy round trip %+v != %+v", msg.MsgType(), got, msg)
		}
		// A legacy frame is exactly 8 bytes (the trace field) shorter.
		cur, err := EncodeFrame(42, 0, msg)
		if err != nil {
			t.Fatal(err)
		}
		if len(cur)-len(buf) != 8 {
			t.Errorf("%v: v2 is %d bytes, v1 %d; want 8-byte delta", msg.MsgType(), len(cur), len(buf))
		}
	}
}

// TestFrameLegacyStream checks both versions interleaved on one stream —
// the mixed-fleet case of upgraded and legacy peers behind a relay.
func TestFrameLegacyStream(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 1, 77, &Ping{T: 5}); err != nil {
		t.Fatal(err)
	}
	legacy, err := EncodeFrameLegacy(2, &Pong{T: 5})
	if err != nil {
		t.Fatal(err)
	}
	buf.Write(legacy)
	if err := WriteFrame(&buf, 3, 78, &Query{}); err != nil {
		t.Fatal(err)
	}

	wantTraces := []uint64{77, 0, 78}
	for i, want := range wantTraces {
		seq, trace, _, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if seq != uint32(i+1) || trace != want {
			t.Errorf("frame %d: seq %d trace %#x, want %d %#x", i, seq, trace, i+1, want)
		}
	}
}

func TestStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	for i, msg := range allMessages() {
		if err := WriteFrame(&buf, uint32(i), uint64(i)*7, msg); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range allMessages() {
		seq, trace, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if seq != uint32(i) {
			t.Errorf("frame %d: seq %d", i, seq)
		}
		if trace != uint64(i)*7 {
			t.Errorf("frame %d: trace %d", i, trace)
		}
		if got.MsgType() != want.MsgType() {
			t.Errorf("frame %d: type %v != %v", i, got.MsgType(), want.MsgType())
		}
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	buf, _ := EncodeFrame(1, 0, &Query{})
	buf[0] = 0xFF
	if _, _, _, err := DecodeFrame(buf); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	buf, _ := EncodeFrame(1, 0, &Query{})
	buf[2] = 99
	if _, _, _, err := DecodeFrame(buf); !errors.Is(err, ErrBadVersion) {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestDecodeDetectsCorruption(t *testing.T) {
	// Flip every single byte position in turn — including the eight new
	// trace bytes, which the CRC must cover like the rest of the header:
	// corruption must never decode silently.
	for _, enc := range []struct {
		name string
		buf  []byte
	}{
		{"v2", mustEncode(t, 7, 0x1122334455667788, &SetConfig{States: []uint8{1, 2, 3}})},
		{"v1", mustEncodeLegacy(t, 7, &SetConfig{States: []uint8{1, 2, 3}})},
	} {
		for pos := range enc.buf {
			buf := append([]byte(nil), enc.buf...)
			buf[pos] ^= 0x01
			_, _, _, err := DecodeFrame(buf)
			if err == nil {
				t.Fatalf("%s: flip at byte %d decoded silently", enc.name, pos)
			}
		}
	}
}

func mustEncode(t *testing.T, seq uint32, trace uint64, msg Message) []byte {
	t.Helper()
	buf, err := EncodeFrame(seq, trace, msg)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func mustEncodeLegacy(t *testing.T, seq uint32, msg Message) []byte {
	t.Helper()
	buf, err := EncodeFrameLegacy(seq, msg)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestDecodeTruncatedAndOversized(t *testing.T) {
	buf, _ := EncodeFrame(1, 0, &Ping{T: 1})
	if _, _, _, err := DecodeFrame(buf[:5]); err == nil {
		t.Error("truncated frame accepted")
	}
	if _, _, _, err := DecodeFrame(buf[:headerLenV1+2]); err == nil {
		t.Error("v2 frame cut inside the trace field accepted")
	}
	if _, _, _, err := DecodeFrame(buf[:len(buf)-1]); err == nil {
		t.Error("frame missing CRC byte accepted")
	}
	big := &SetConfig{States: make([]uint8, MaxPayload+1)}
	if _, err := EncodeFrame(1, 0, big); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized encode err = %v", err)
	}
	if _, err := EncodeFrameLegacy(1, big); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized legacy encode err = %v", err)
	}
}

func TestDecodeRandomGarbage(t *testing.T) {
	// Random byte soup must never decode successfully (the magic+CRC
	// gauntlet) and, critically, must never panic.
	rng := rand.New(rand.NewPCG(13, 37))
	for trial := 0; trial < 2000; trial++ {
		n := rng.IntN(64)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = uint8(rng.IntN(256))
		}
		if _, _, _, err := DecodeFrame(buf); err == nil {
			t.Fatalf("garbage of %d bytes decoded", n)
		}
	}
}

func TestReadFrameRejectsOversizedDeclaredLength(t *testing.T) {
	// A hostile peer declaring a giant payload must be rejected before
	// any allocation of that size.
	buf, _ := EncodeFrame(1, 0, &Query{})
	buf[4], buf[5] = 0xFF, 0xFF
	if _, _, _, err := ReadFrame(bytes.NewReader(buf)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestTypeString(t *testing.T) {
	if TypeSetConfig.String() != "set-config" || Type(200).String() != "type(200)" {
		t.Error("type names wrong")
	}
}

func TestNewMessageUnknown(t *testing.T) {
	if _, err := newMessage(Type(0)); err == nil {
		t.Error("unknown type accepted")
	}
}
