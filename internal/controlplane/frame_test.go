package controlplane

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"reflect"
	"testing"
)

func allMessages() []Message {
	return []Message{
		&Hello{AgentID: 7, NumElements: 3},
		&SetConfig{States: []uint8{0, 3, 1}},
		&SetConfig{States: nil},
		&Ack{AckSeq: 42, Status: StatusOK},
		&Ack{AckSeq: 1, Status: StatusBadConfig},
		&Query{},
		&Report{States: []uint8{2, 2}},
		&Ping{T: 123456789},
		&Pong{T: -42},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for _, msg := range allMessages() {
		buf, err := EncodeFrame(99, msg)
		if err != nil {
			t.Fatalf("%v: %v", msg.MsgType(), err)
		}
		seq, got, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("%v: decode: %v", msg.MsgType(), err)
		}
		if seq != 99 {
			t.Errorf("%v: seq = %d", msg.MsgType(), seq)
		}
		if !reflect.DeepEqual(msg, got) {
			// SetConfig{nil} decodes to empty non-nil slice; normalize.
			if sc, ok := msg.(*SetConfig); ok && len(sc.States) == 0 {
				if gsc := got.(*SetConfig); len(gsc.States) == 0 {
					continue
				}
			}
			t.Errorf("%v: round trip %+v != %+v", msg.MsgType(), got, msg)
		}
	}
}

func TestStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	for i, msg := range allMessages() {
		if err := WriteFrame(&buf, uint32(i), msg); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range allMessages() {
		seq, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if seq != uint32(i) {
			t.Errorf("frame %d: seq %d", i, seq)
		}
		if got.MsgType() != want.MsgType() {
			t.Errorf("frame %d: type %v != %v", i, got.MsgType(), want.MsgType())
		}
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	buf, _ := EncodeFrame(1, &Query{})
	buf[0] = 0xFF
	if _, _, err := DecodeFrame(buf); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	buf, _ := EncodeFrame(1, &Query{})
	buf[2] = 99
	if _, _, err := DecodeFrame(buf); !errors.Is(err, ErrBadVersion) {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestDecodeDetectsCorruption(t *testing.T) {
	// Flip every single byte position in turn (except where the flip
	// still yields the same decoded result is impossible for CRC32):
	// corruption must never decode silently.
	orig, _ := EncodeFrame(7, &SetConfig{States: []uint8{1, 2, 3}})
	for pos := range orig {
		buf := append([]byte(nil), orig...)
		buf[pos] ^= 0x01
		_, _, err := DecodeFrame(buf)
		if err == nil {
			t.Fatalf("flip at byte %d decoded silently", pos)
		}
	}
}

func TestDecodeTruncatedAndOversized(t *testing.T) {
	buf, _ := EncodeFrame(1, &Ping{T: 1})
	if _, _, err := DecodeFrame(buf[:5]); err == nil {
		t.Error("truncated frame accepted")
	}
	if _, _, err := DecodeFrame(buf[:len(buf)-1]); err == nil {
		t.Error("frame missing CRC byte accepted")
	}
	big := &SetConfig{States: make([]uint8, MaxPayload+1)}
	if _, err := EncodeFrame(1, big); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized encode err = %v", err)
	}
}

func TestDecodeRandomGarbage(t *testing.T) {
	// Random byte soup must never decode successfully (the magic+CRC
	// gauntlet) and, critically, must never panic.
	rng := rand.New(rand.NewPCG(13, 37))
	for trial := 0; trial < 2000; trial++ {
		n := rng.IntN(64)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = uint8(rng.IntN(256))
		}
		if _, _, err := DecodeFrame(buf); err == nil {
			t.Fatalf("garbage of %d bytes decoded", n)
		}
	}
}

func TestReadFrameRejectsOversizedDeclaredLength(t *testing.T) {
	// A hostile peer declaring a giant payload must be rejected before
	// any allocation of that size.
	buf, _ := EncodeFrame(1, &Query{})
	buf[4], buf[5] = 0xFF, 0xFF
	if _, _, err := ReadFrame(bytes.NewReader(buf)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestTypeString(t *testing.T) {
	if TypeSetConfig.String() != "set-config" || Type(200).String() != "type(200)" {
		t.Error("type names wrong")
	}
}

func TestNewMessageUnknown(t *testing.T) {
	if _, err := newMessage(Type(0)); err == nil {
		t.Error("unknown type accepted")
	}
}
