package controlplane

import (
	"context"
	"strings"
	"testing"
	"time"

	"press/internal/element"
	"press/internal/obs"
)

// TestTelemetryCleanPipe: over a loss-free pipe every SetConfig acks on
// the first attempt, so the ack-latency histogram holds exactly one
// observation per actuation and the fault counters stay at zero.
func TestTelemetryCleanPipe(t *testing.T) {
	a, b := NewLossyPipe(LossyConfig{Seed: 11})
	arr := testArray(3)
	agent := NewAgent(2, arr)
	agent.Obs = obs.NewRegistry()
	startAgent(t, agent, a)

	ctrl := NewController(b)
	ctrl.Obs = obs.NewRegistry()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := ctrl.Handshake(ctx); err != nil {
		t.Fatal(err)
	}

	const n = 7
	for i := 0; i < n; i++ {
		if err := ctrl.SetConfig(ctx, arr.ConfigAt(i)); err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
	}
	if _, err := ctrl.Ping(ctx); err != nil {
		t.Fatal(err)
	}

	snap := ctrl.Obs.Snapshot()
	hist, ok := snap.Histograms["controlplane_ack_latency_seconds"]
	if !ok {
		t.Fatalf("no ack-latency histogram: %v", snap.Histograms)
	}
	if hist.Count != n {
		t.Errorf("ack latency observations = %d, want %d", hist.Count, n)
	}
	if got := snap.Counters["controlplane_acks_total"]; got != n {
		t.Errorf("acks counter = %d, want %d", got, n)
	}
	for _, zero := range []string{
		"controlplane_timeouts_total",
		"controlplane_retries_total",
		"controlplane_rejected_total",
		"controlplane_crc_errors_total",
	} {
		if got := snap.Counters[zero]; got != 0 {
			t.Errorf("%s = %d on a clean pipe", zero, got)
		}
	}
	rtt, ok := snap.Histograms["controlplane_ping_rtt_seconds"]
	if !ok || rtt.Count != 1 {
		t.Errorf("ping RTT histogram = %+v", rtt)
	}

	asnap := agent.Obs.Snapshot()
	if got := asnap.Counters["agent_setconfig_total"]; got != n {
		t.Errorf("agent setconfig counter = %d, want %d", got, n)
	}
	if got := asnap.Counters["agent_pings_total"]; got != 1 {
		t.Errorf("agent ping counter = %d", got)
	}
}

// TestTelemetryDeadAgent: with no agent at all, every attempt times out —
// the timeout counter must count each attempt and the ack-latency
// histogram must stay empty.
func TestTelemetryDeadAgent(t *testing.T) {
	_, b := NewLossyPipe(LossyConfig{Seed: 12})
	ctrl := NewController(b)
	ctrl.Obs = obs.NewRegistry()
	var logBuf strings.Builder
	ctrl.Log = obs.NewLogger(&logBuf, obs.LevelDebug, obs.Logfmt)
	ctrl.Timeout = 10 * time.Millisecond
	ctrl.Retries = 2
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()

	if err := ctrl.SetConfig(ctx, element.Config{0}); err == nil {
		t.Fatal("set-config succeeded with no agent")
	}
	snap := ctrl.Obs.Snapshot()
	attempts := int64(ctrl.Retries + 1)
	if got := snap.Counters["controlplane_timeouts_total"]; got != attempts {
		t.Errorf("timeouts = %d, want %d (one per attempt)", got, attempts)
	}
	if got := snap.Counters["controlplane_retries_total"]; got != attempts-1 {
		t.Errorf("retries = %d, want %d", got, attempts-1)
	}
	if h := snap.Histograms["controlplane_ack_latency_seconds"]; h.Count != 0 {
		t.Errorf("ack latency recorded %d observations with no acks", h.Count)
	}
	if !strings.Contains(logBuf.String(), "controlplane: retrying set-config") {
		t.Error("no retry events logged")
	}
	if !strings.Contains(logBuf.String(), "controlplane: set-config unacknowledged") {
		t.Error("no give-up event logged")
	}
}

// TestTelemetryMatchesStats: under induced loss the obs counters must
// mirror the atomic Stats counters exactly — they observe the same
// events at the same points.
func TestTelemetryMatchesStats(t *testing.T) {
	a, b := NewLossyPipe(LossyConfig{Seed: 13, LossRate: 0.3, Latency: time.Millisecond})
	arr := testArray(3)
	agent := NewAgent(4, arr)
	startAgent(t, agent, a)

	ctrl := NewController(b)
	ctrl.Obs = obs.NewRegistry()
	ctrl.Timeout = 30 * time.Millisecond
	ctrl.Retries = 20
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := ctrl.Handshake(ctx); err != nil {
		t.Logf("handshake: %v (hello lost; continuing)", err)
	}
	for trial := 0; trial < 8; trial++ {
		if err := ctrl.SetConfig(ctx, arr.ConfigAt(trial)); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}

	snap := ctrl.Obs.Snapshot()
	pairs := []struct {
		name string
		want int64
	}{
		{"controlplane_frames_sent_total", ctrl.Stats.Sent.Load()},
		{"controlplane_acks_total", ctrl.Stats.Acked.Load()},
		{"controlplane_retries_total", ctrl.Stats.Retries.Load()},
		{"controlplane_timeouts_total", ctrl.Stats.Timeouts.Load()},
		{"controlplane_crc_errors_total", ctrl.Stats.CRCErrors.Load()},
	}
	for _, p := range pairs {
		if got := snap.Counters[p.name]; got != p.want {
			t.Errorf("%s = %d, Stats report %d", p.name, got, p.want)
		}
	}
	// Every ack that arrived in time left one latency observation.
	if h := snap.Histograms["controlplane_ack_latency_seconds"]; h.Count != ctrl.Stats.Acked.Load() {
		t.Errorf("ack latency count = %d, acks = %d", h.Count, ctrl.Stats.Acked.Load())
	}
	if snap.Counters["controlplane_retries_total"] == 0 {
		t.Error("expected retries under 30% loss")
	}
}

// TestTelemetryRejected: a bad configuration is acked with a failure
// status — it must count as rejected, not as a timeout, and still leave
// an ack-latency observation (the wire round-trip happened).
func TestTelemetryRejected(t *testing.T) {
	a, b := NewLossyPipe(LossyConfig{Seed: 14})
	agent := NewAgent(1, testArray(3))
	agent.Obs = obs.NewRegistry()
	startAgent(t, agent, a)

	ctrl := NewController(b)
	ctrl.Obs = obs.NewRegistry()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := ctrl.Handshake(ctx); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.SetConfig(ctx, element.Config{9, 0, 0}); err == nil {
		t.Fatal("invalid config accepted")
	}
	snap := ctrl.Obs.Snapshot()
	if got := snap.Counters["controlplane_rejected_total"]; got != 1 {
		t.Errorf("rejected = %d", got)
	}
	if got := snap.Counters["controlplane_timeouts_total"]; got != 0 {
		t.Errorf("timeouts = %d for a rejection", got)
	}
	if h := snap.Histograms["controlplane_ack_latency_seconds"]; h.Count != 1 {
		t.Errorf("ack latency count = %d, want 1", h.Count)
	}
	if got := agent.Obs.Snapshot().Counters["agent_rejects_total"]; got != 1 {
		t.Errorf("agent rejects = %d", got)
	}
}
