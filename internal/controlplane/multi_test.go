package controlplane

import (
	"context"
	"strings"
	"testing"
	"time"

	"press/internal/element"
)

// multiSetup spins up n agents with the given element counts over clean
// pipes and returns handshaked controllers plus the agents.
func multiSetup(t *testing.T, counts []int) ([]*Agent, []*Controller) {
	t.Helper()
	agents := make([]*Agent, len(counts))
	ctrls := make([]*Controller, len(counts))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	for i, n := range counts {
		a, b := NewLossyPipe(LossyConfig{Seed: uint64(100 + i)})
		agents[i] = NewAgent(uint32(i+1), testArray(n))
		startAgent(t, agents[i], a)
		ctrls[i] = NewController(b)
		ctrls[i].Timeout = 500 * time.Millisecond
		if err := ctrls[i].Handshake(ctx); err != nil {
			t.Fatalf("agent %d handshake: %v", i, err)
		}
	}
	return agents, ctrls
}

func TestMultiControllerSetAndQuery(t *testing.T) {
	agents, ctrls := multiSetup(t, []int{2, 3, 1})
	mc, err := NewMultiController(ctrls...)
	if err != nil {
		t.Fatal(err)
	}
	if mc.NumElements() != 6 {
		t.Fatalf("total elements = %d, want 6", mc.NumElements())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	global := element.Config{1, 2, 3, 0, 1, 2}
	if err := mc.SetConfig(ctx, global); err != nil {
		t.Fatal(err)
	}
	if !agents[0].Current().Equal(element.Config{1, 2}) {
		t.Errorf("segment 0 at %v", agents[0].Current())
	}
	if !agents[1].Current().Equal(element.Config{3, 0, 1}) {
		t.Errorf("segment 1 at %v", agents[1].Current())
	}
	if !agents[2].Current().Equal(element.Config{2}) {
		t.Errorf("segment 2 at %v", agents[2].Current())
	}

	back, err := mc.QueryConfig(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(global) {
		t.Errorf("query returned %v, want %v", back, global)
	}
}

func TestMultiControllerLengthValidation(t *testing.T) {
	_, ctrls := multiSetup(t, []int{2, 2})
	mc, err := NewMultiController(ctrls...)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := mc.SetConfig(ctx, element.Config{0, 0, 0}); err == nil {
		t.Error("short global config accepted")
	}
}

func TestMultiControllerRejectsUnprobed(t *testing.T) {
	_, b := NewLossyPipe(LossyConfig{Seed: 1})
	ctrl := NewController(b) // never handshaked: element count unknown
	if _, err := NewMultiController(ctrl); err == nil {
		t.Error("unprobed controller accepted")
	}
	if _, err := NewMultiController(); err == nil {
		t.Error("empty controller list accepted")
	}
}

func TestMultiControllerSurvivesLoss(t *testing.T) {
	// One clean segment, one lossy segment: the lossy one retries and the
	// joint actuation still completes.
	agents := make([]*Agent, 2)
	ctrls := make([]*Controller, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	cfgs := []LossyConfig{
		{Seed: 201},
		{Seed: 202, LossRate: 0.3, Latency: time.Millisecond},
	}
	for i, lc := range cfgs {
		a, b := NewLossyPipe(lc)
		agents[i] = NewAgent(uint32(10+i), testArray(2))
		startAgent(t, agents[i], a)
		ctrls[i] = NewController(b)
		ctrls[i].Timeout = 50 * time.Millisecond
		ctrls[i].Retries = 20
		if err := ctrls[i].Handshake(ctx); err != nil {
			t.Logf("segment %d handshake lost (%v); probing instead", i, err)
			if err := ctrls[i].Probe(ctx); err != nil {
				t.Fatalf("segment %d probe: %v", i, err)
			}
		}
	}
	mc, err := NewMultiController(ctrls...)
	if err != nil {
		t.Fatal(err)
	}
	global := element.Config{3, 2, 1, 0}
	if err := mc.SetConfig(ctx, global); err != nil {
		t.Fatal(err)
	}
	if !agents[0].Current().Equal(element.Config{3, 2}) ||
		!agents[1].Current().Equal(element.Config{1, 0}) {
		t.Errorf("segments at %v / %v", agents[0].Current(), agents[1].Current())
	}
}

func TestMultiControllerMaxPing(t *testing.T) {
	_, ctrls := multiSetup(t, []int{1, 1})
	mc, err := NewMultiController(ctrls...)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rtt, err := mc.MaxPing(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rtt <= 0 {
		t.Errorf("max ping = %v", rtt)
	}
}

func TestMultiControllerReportsFailingSegment(t *testing.T) {
	_, ctrls := multiSetup(t, []int{2, 2})
	mc, err := NewMultiController(ctrls...)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// State 9 does not exist on an SP4T element: segment 1's agent
	// rejects, segment 0 succeeds, and the joint error names segment 1.
	err = mc.SetConfig(ctx, element.Config{0, 0, 9, 0})
	if err == nil {
		t.Fatal("invalid per-segment state accepted")
	}
	if got := err.Error(); !strings.Contains(got, "segment 1") {
		t.Errorf("error does not identify the failing segment: %v", got)
	}
}
