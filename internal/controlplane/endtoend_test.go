package controlplane

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"press/internal/element"
	"press/internal/geom"
)

func testArray(n int) *element.Array {
	elems := make([]*element.Element, n)
	for i := range elems {
		elems[i] = &element.Element{Pos: geom.V(float64(i), 1, 1.5), States: element.SP4TStates()}
	}
	return element.NewArray(elems...)
}

// startAgent runs an agent over one end of a pipe and returns a cleanup.
func startAgent(t *testing.T, agent *Agent, conn Conn) context.CancelFunc {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = agent.Serve(ctx, conn)
	}()
	t.Cleanup(func() {
		cancel()
		conn.Close()
		<-done
	})
	return cancel
}

func TestSetConfigOverCleanPipe(t *testing.T) {
	a, b := NewLossyPipe(LossyConfig{Seed: 1})
	arr := testArray(3)
	agent := NewAgent(7, arr)

	var applied element.Config
	var mu sync.Mutex
	agent.OnApply = func(cfg element.Config) {
		mu.Lock()
		applied = cfg
		mu.Unlock()
	}
	startAgent(t, agent, a)

	ctrl := NewController(b)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := ctrl.Handshake(ctx); err != nil {
		t.Fatal(err)
	}
	if ctrl.AgentID() != 7 || ctrl.NumElements() != 3 {
		t.Fatalf("handshake learned id=%d n=%d", ctrl.AgentID(), ctrl.NumElements())
	}

	want := element.Config{1, 3, 2}
	if err := ctrl.SetConfig(ctx, want); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	got := applied
	mu.Unlock()
	if !got.Equal(want) {
		t.Errorf("applied %v, want %v", got, want)
	}
	if !agent.Current().Equal(want) {
		t.Errorf("agent current %v", agent.Current())
	}
	// Query round-trips the same config.
	back, err := ctrl.QueryConfig(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(want) {
		t.Errorf("query returned %v", back)
	}
}

func TestSetConfigSurvivesLossAndCorruption(t *testing.T) {
	// 30% loss and 10% corruption each way: retransmission must still get
	// every configuration through.
	a, b := NewLossyPipe(LossyConfig{Seed: 42, LossRate: 0.3, CorruptRate: 0.1, Latency: time.Millisecond})
	arr := testArray(3)
	agent := NewAgent(1, arr)
	startAgent(t, agent, a)

	ctrl := NewController(b)
	ctrl.Timeout = 50 * time.Millisecond
	ctrl.Retries = 20
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := ctrl.Handshake(ctx); err != nil {
		// The hello itself can be lost; that is fine for this test as
		// long as actuation still works (NumElements check is skipped).
		t.Logf("handshake: %v (hello lost; continuing)", err)
	}
	for trial := 0; trial < 10; trial++ {
		want := arr.ConfigAt((trial * 13) % arr.NumConfigs())
		if err := ctrl.SetConfig(ctx, want); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !agent.Current().Equal(want) {
			t.Fatalf("trial %d: agent at %v, want %v", trial, agent.Current(), want)
		}
	}
	if ctrl.Stats.Retries.Load() == 0 {
		t.Error("expected some retries under 30% loss")
	}
	if ctrl.Stats.Acked.Load() != 10 {
		t.Errorf("acked = %d, want 10", ctrl.Stats.Acked.Load())
	}
}

func TestSetConfigRejected(t *testing.T) {
	a, b := NewLossyPipe(LossyConfig{Seed: 3})
	agent := NewAgent(1, testArray(3))
	startAgent(t, agent, a)

	ctrl := NewController(b)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := ctrl.Handshake(ctx); err != nil {
		t.Fatal(err)
	}
	// State index 9 does not exist on an SP4T element.
	err := ctrl.SetConfig(ctx, element.Config{9, 0, 0})
	if !errors.Is(err, ErrRejected) {
		t.Errorf("err = %v, want ErrRejected", err)
	}
	// Wrong length is caught locally after handshake.
	if err := ctrl.SetConfig(ctx, element.Config{0}); err == nil {
		t.Error("wrong-length config accepted")
	}
}

func TestPingMeasuresLatency(t *testing.T) {
	lat := 5 * time.Millisecond
	a, b := NewLossyPipe(LossyConfig{Seed: 4, Latency: lat})
	agent := NewAgent(1, testArray(2))
	startAgent(t, agent, a)

	ctrl := NewController(b)
	ctrl.Timeout = time.Second
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := ctrl.Handshake(ctx); err != nil {
		t.Fatal(err)
	}
	rtt, err := ctrl.Ping(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rtt < 2*lat {
		t.Errorf("rtt = %v, should be at least the two-way latency %v", rtt, 2*lat)
	}
}

func TestAgentOverTCP(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	agent := NewAgent(99, testArray(4))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = agent.ListenAndServe(ctx, l)
	}()
	defer func() { cancel(); <-done }()

	nc, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	ctrl := NewController(NewStreamConn(nc))
	ctrl.Timeout = time.Second
	cctx, ccancel := context.WithTimeout(ctx, 5*time.Second)
	defer ccancel()
	if err := ctrl.Handshake(cctx); err != nil {
		t.Fatal(err)
	}
	if ctrl.AgentID() != 99 || ctrl.NumElements() != 4 {
		t.Fatalf("handshake: id=%d n=%d", ctrl.AgentID(), ctrl.NumElements())
	}
	want := element.Config{3, 2, 1, 0}
	if err := ctrl.SetConfig(cctx, want); err != nil {
		t.Fatal(err)
	}
	if !agent.Current().Equal(want) {
		t.Errorf("agent at %v", agent.Current())
	}
	rtt, err := ctrl.Ping(cctx)
	if err != nil {
		t.Fatal(err)
	}
	if rtt <= 0 || rtt > time.Second {
		t.Errorf("tcp rtt = %v", rtt)
	}
}

func TestMultipleControllersOneAgent(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	agent := NewAgent(5, testArray(2))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = agent.ListenAndServe(ctx, l)
	}()
	defer func() { cancel(); <-done }()

	for i := 0; i < 3; i++ {
		nc, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		ctrl := NewController(NewStreamConn(nc))
		ctrl.Timeout = time.Second
		cctx, ccancel := context.WithTimeout(ctx, 5*time.Second)
		if err := ctrl.Handshake(cctx); err != nil {
			t.Fatalf("controller %d: %v", i, err)
		}
		if err := ctrl.SetConfig(cctx, element.Config{i % 4, (i + 1) % 4}); err != nil {
			t.Fatalf("controller %d: %v", i, err)
		}
		ccancel()
		nc.Close()
	}
}

func TestControllerTimeoutWhenAgentDead(t *testing.T) {
	_, b := NewLossyPipe(LossyConfig{Seed: 6})
	ctrl := NewController(b)
	ctrl.Timeout = 20 * time.Millisecond
	ctrl.Retries = 2
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := ctrl.SetConfig(ctx, element.Config{0})
	if err == nil {
		t.Fatal("set-config succeeded with no agent")
	}
	if ctrl.Stats.Timeouts.Load() == 0 {
		t.Error("expected timeout stats")
	}
}

func TestLossyPipeDroppedCounter(t *testing.T) {
	a, _ := NewLossyPipe(LossyConfig{Seed: 9, LossRate: 1.0})
	for i := 0; i < 5; i++ {
		if err := a.Send(uint32(i), 0, &Query{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.(*lossyEnd).Dropped(); got != 5 {
		t.Errorf("dropped = %d, want 5", got)
	}
}

func TestClosedPipe(t *testing.T) {
	a, b := NewLossyPipe(LossyConfig{Seed: 10})
	a.Close()
	if err := a.Send(1, 0, &Query{}); !errors.Is(err, ErrClosed) {
		t.Errorf("send on closed = %v", err)
	}
	if _, _, _, err := b.Recv(); !errors.Is(err, ErrClosed) {
		t.Errorf("recv on closed peer = %v", err)
	}
}
