package cmat

import (
	"math/cmplx"
	"math/rand/v2"
	"testing"
)

func TestQRReconstructs(t *testing.T) {
	rng := rand.New(rand.NewPCG(51, 52))
	for _, shape := range [][2]int{{3, 3}, {5, 3}, {8, 2}, {4, 4}} {
		a := randMatrix(rng, shape[0], shape[1])
		qr := QRDecompose(a)
		if d := qr.Q.Mul(qr.R).MaxAbsDiff(a); d > 1e-10 {
			t.Errorf("shape %v: QR differs from A by %g", shape, d)
		}
	}
}

func TestQRQUnitary(t *testing.T) {
	rng := rand.New(rand.NewPCG(53, 54))
	a := randMatrix(rng, 6, 4)
	qr := QRDecompose(a)
	qhq := qr.Q.ConjTranspose().Mul(qr.Q)
	if d := qhq.MaxAbsDiff(Identity(6)); d > 1e-10 {
		t.Errorf("Q^H Q differs from I by %g", d)
	}
}

func TestQRRUpperTriangular(t *testing.T) {
	rng := rand.New(rand.NewPCG(55, 56))
	a := randMatrix(rng, 5, 4)
	qr := QRDecompose(a)
	for i := 1; i < qr.R.Rows; i++ {
		for j := 0; j < qr.R.Cols && j < i; j++ {
			if qr.R.At(i, j) != 0 {
				t.Fatalf("R[%d][%d] = %v, want 0", i, j, qr.R.At(i, j))
			}
		}
	}
}

func TestQRWideMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wide matrix")
		}
	}()
	QRDecompose(New(2, 3))
}

func TestLeastSquaresExact(t *testing.T) {
	// Square invertible system: least squares = exact solve.
	a := FromRows([][]complex128{{2, 0}, {0, 3i}})
	x, err := LeastSquares(a, Vector{4, 6i})
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(x[0]-2) > 1e-12 || cmplx.Abs(x[1]-2) > 1e-12 {
		t.Errorf("x = %v, want [2 2]", x)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = c0 + c1·x over points (0,1), (1,3), (2,5): exact line 1+2x.
	a := FromRows([][]complex128{{1, 0}, {1, 1}, {1, 2}})
	x, err := LeastSquares(a, Vector{1, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(x[0]-1) > 1e-12 || cmplx.Abs(x[1]-2) > 1e-12 {
		t.Errorf("coefficients = %v, want [1 2]", x)
	}
}

// Property: the least-squares residual is orthogonal to the column space,
// i.e. A^H (Ax − b) ≈ 0.
func TestLeastSquaresNormalEquationsProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(61, 62))
	for trial := 0; trial < 60; trial++ {
		m := 3 + rng.IntN(6)
		n := 1 + rng.IntN(m)
		a := randMatrix(rng, m, n)
		b := randVector(rng, m)
		x, err := LeastSquares(a, b)
		if err != nil {
			continue
		}
		res := a.MulVec(x).Sub(b)
		grad := a.ConjTranspose().MulVec(res)
		if grad.Norm() > 1e-9*(1+b.Norm()) {
			t.Fatalf("normal equations violated by %g (trial %d %dx%d)", grad.Norm(), trial, m, n)
		}
	}
}

func TestLeastSquaresRankDeficient(t *testing.T) {
	a := FromRows([][]complex128{{1, 1}, {1, 1}, {1, 1}})
	if _, err := LeastSquares(a, Vector{1, 2, 3}); err == nil {
		t.Error("expected error for rank-deficient system")
	}
}
