// Package cmat implements the dense complex linear algebra needed by the
// PRESS reproduction: vectors and matrices over complex128, Gaussian
// elimination, Householder QR with least-squares solving, and a one-sided
// Jacobi singular value decomposition.
//
// MIMO analysis (internal/mimo) uses the SVD for channel condition numbers
// and capacities; the inverse-problem solver (internal/inverse) uses least
// squares. Everything is written against the standard library only, with
// dimensions small (2×2 up to a few dozen), so clarity wins over blocking
// or SIMD tricks.
//
// Conventions: matrices are dense row-major; Hermitian transpose is written
// H (ConjTranspose); dimension mismatches are programmer errors and panic.
package cmat

import (
	"math"
	"math/cmplx"
)

// Vector is a dense complex vector.
type Vector []complex128

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector { return append(Vector(nil), v...) }

// Dot returns the Hermitian inner product v^H · w = Σ conj(v_i)·w_i.
// It panics if the lengths differ.
func (v Vector) Dot(w Vector) complex128 {
	if len(v) != len(w) {
		panic("cmat: Dot length mismatch")
	}
	var sum complex128
	for i := range v {
		sum += cmplx.Conj(v[i]) * w[i]
	}
	return sum
}

// Norm returns the Euclidean norm ‖v‖₂.
func (v Vector) Norm() float64 {
	var ss float64
	for _, x := range v {
		re, im := real(x), imag(x)
		ss += re*re + im*im
	}
	return math.Sqrt(ss)
}

// Scale multiplies every element of v by s in place and returns v for
// chaining.
func (v Vector) Scale(s complex128) Vector {
	for i := range v {
		v[i] *= s
	}
	return v
}

// AddScaled sets v ← v + s·w in place and returns v. It panics if the
// lengths differ.
func (v Vector) AddScaled(s complex128, w Vector) Vector {
	if len(v) != len(w) {
		panic("cmat: AddScaled length mismatch")
	}
	for i := range v {
		v[i] += s * w[i]
	}
	return v
}

// Sub returns v − w as a new vector. It panics if the lengths differ.
func (v Vector) Sub(w Vector) Vector {
	if len(v) != len(w) {
		panic("cmat: Sub length mismatch")
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}
