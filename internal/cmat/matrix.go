package cmat

import (
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// Matrix is a dense row-major complex matrix.
type Matrix struct {
	Rows, Cols int
	// Data holds Rows*Cols elements; element (i,j) lives at Data[i*Cols+j].
	Data []complex128
}

// New returns a zero matrix of the given shape. It panics on non-positive
// dimensions.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("cmat: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// FromRows builds a matrix from row slices, which must all have equal
// length. The data is copied.
func FromRows(rows [][]complex128) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("cmat: FromRows needs at least one non-empty row")
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("cmat: FromRows ragged input")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Clone returns an independent deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Row returns a copy of row i as a Vector.
func (m *Matrix) Row(i int) Vector {
	return append(Vector(nil), m.Data[i*m.Cols:(i+1)*m.Cols]...)
}

// Col returns a copy of column j as a Vector.
func (m *Matrix) Col(j int) Vector {
	v := make(Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		v[i] = m.At(i, j)
	}
	return v
}

// ConjTranspose returns the Hermitian transpose m^H as a new matrix.
func (m *Matrix) ConjTranspose() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, cmplx.Conj(m.At(i, j)))
		}
	}
	return out
}

// Mul returns the matrix product m·b. It panics if the inner dimensions
// disagree.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("cmat: Mul shape mismatch %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := New(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += a * b.At(k, j)
			}
		}
	}
	return out
}

// MulVec returns m·v. It panics if the dimensions disagree.
func (m *Matrix) MulVec(v Vector) Vector {
	if m.Cols != len(v) {
		panic("cmat: MulVec shape mismatch")
	}
	out := make(Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var sum complex128
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, a := range row {
			sum += a * v[j]
		}
		out[i] = sum
	}
	return out
}

// Add returns m + b as a new matrix. It panics if the shapes differ.
func (m *Matrix) Add(b *Matrix) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("cmat: Add shape mismatch")
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] += b.Data[i]
	}
	return out
}

// Sub returns m − b as a new matrix. It panics if the shapes differ.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("cmat: Sub shape mismatch")
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] -= b.Data[i]
	}
	return out
}

// Scale returns s·m as a new matrix.
func (m *Matrix) Scale(s complex128) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// FrobeniusNorm returns ‖m‖_F, the square root of the sum of squared
// element magnitudes.
func (m *Matrix) FrobeniusNorm() float64 {
	var ss float64
	for _, x := range m.Data {
		re, im := real(x), imag(x)
		ss += re*re + im*im
	}
	return math.Sqrt(ss)
}

// MaxAbsDiff returns the largest element-wise magnitude difference between
// m and b — handy for tests and iterative-convergence checks. It panics if
// the shapes differ.
func (m *Matrix) MaxAbsDiff(b *Matrix) float64 {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("cmat: MaxAbsDiff shape mismatch")
	}
	var worst float64
	for i := range m.Data {
		if d := cmplx.Abs(m.Data[i] - b.Data[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// String renders the matrix for debugging, one row per line.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%8.4f%+8.4fi", real(m.At(i, j)), imag(m.At(i, j)))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
