package cmat

import (
	"math"
	"math/cmplx"
	"sort"
)

// SVD holds a thin singular value decomposition a = U·Σ·V^H, with U m×n
// (orthonormal columns), S the n singular values in descending order, and
// V n×n unitary. Produced by Decompose.
type SVD struct {
	U *Matrix
	S []float64
	V *Matrix
}

// Decompose computes the thin SVD of a by one-sided Jacobi rotations.
// The method orthogonalizes the columns of a working copy of a; on
// convergence the column norms are the singular values, the normalized
// columns form U, and the accumulated rotations form V. One-sided Jacobi
// is slow for large matrices but unconditionally robust and more than fast
// enough for the ≤ dozens-sized channel matrices in this repository.
//
// Matrices with more columns than rows are handled by decomposing the
// conjugate transpose and swapping U and V.
func Decompose(a *Matrix) *SVD {
	if a.Rows < a.Cols {
		s := Decompose(a.ConjTranspose())
		return &SVD{U: s.V, S: s.S, V: s.U}
	}
	m, n := a.Rows, a.Cols
	w := a.Clone() // working copy whose columns get orthogonalized
	v := Identity(n)

	const (
		eps       = 1e-14
		maxSweeps = 60
	)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		rotated := false
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				// Gram entries of columns p and q.
				var app, aqq float64
				var apq complex128
				for i := 0; i < m; i++ {
					cp, cq := w.At(i, p), w.At(i, q)
					app += real(cp)*real(cp) + imag(cp)*imag(cp)
					aqq += real(cq)*real(cq) + imag(cq)*imag(cq)
					apq += cmplx.Conj(cp) * cq
				}
				off := cmplx.Abs(apq)
				if off <= eps*math.Sqrt(app*aqq) || off == 0 {
					continue
				}
				rotated = true
				// Factor out the phase of the inner product so the
				// remaining 2×2 problem is real symmetric, then apply the
				// classic Jacobi rotation.
				phase := apq / complex(off, 0) // e^{iφ}
				zeta := (aqq - app) / (2 * off)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				cs := 1 / math.Sqrt(1+t*t)
				sn := cs * t

				csC := complex(cs, 0)
				snC := complex(sn, 0)
				phC := cmplx.Conj(phase) // e^{-iφ}
				for i := 0; i < m; i++ {
					cp, cq := w.At(i, p), w.At(i, q)
					bq := phC * cq // phase-aligned column q
					w.Set(i, p, csC*cp-snC*bq)
					w.Set(i, q, snC*cp+csC*bq)
				}
				for i := 0; i < n; i++ {
					vp, vq := v.At(i, p), v.At(i, q)
					bq := phC * vq
					v.Set(i, p, csC*vp-snC*bq)
					v.Set(i, q, snC*vp+csC*bq)
				}
			}
		}
		if !rotated {
			break
		}
	}

	// Extract singular values (column norms) and normalize U.
	type col struct {
		idx int
		s   float64
	}
	cols := make([]col, n)
	for j := 0; j < n; j++ {
		var ss float64
		for i := 0; i < m; i++ {
			x := w.At(i, j)
			ss += real(x)*real(x) + imag(x)*imag(x)
		}
		cols[j] = col{idx: j, s: math.Sqrt(ss)}
	}
	sort.Slice(cols, func(i, j int) bool { return cols[i].s > cols[j].s })

	u := New(m, n)
	vOut := New(n, n)
	s := make([]float64, n)
	for jNew, c := range cols {
		s[jNew] = c.s
		inv := 0.0
		if c.s > 0 {
			inv = 1 / c.s
		}
		for i := 0; i < m; i++ {
			u.Set(i, jNew, w.At(i, c.idx)*complex(inv, 0))
		}
		for i := 0; i < n; i++ {
			vOut.Set(i, jNew, v.At(i, c.idx))
		}
	}
	return &SVD{U: u, S: s, V: vOut}
}

// SingularValues returns just the singular values of a in descending
// order, using the closed-form 2×2 path when applicable.
func SingularValues(a *Matrix) []float64 {
	if a.Rows == 2 && a.Cols == 2 {
		s1, s2 := SingularValues2x2(a.At(0, 0), a.At(0, 1), a.At(1, 0), a.At(1, 1))
		return []float64{s1, s2}
	}
	return Decompose(a).S
}

// SingularValues2x2 returns the two singular values (descending) of the
// 2×2 complex matrix [[a, b], [c, d]] in closed form, via the eigenvalues
// of the Gram matrix. MIMO condition-number sweeps call this once per
// subcarrier per configuration, so it avoids the iterative SVD entirely.
func SingularValues2x2(a, b, c, d complex128) (float64, float64) {
	// Gram matrix G = A^H A = [[g11, g12], [conj(g12), g22]] (Hermitian).
	// Its trace and determinant fix both eigenvalues, so the off-diagonal
	// entry is never needed explicitly.
	g11 := real(a)*real(a) + imag(a)*imag(a) + real(c)*real(c) + imag(c)*imag(c)
	g22 := real(b)*real(b) + imag(b)*imag(b) + real(d)*real(d) + imag(d)*imag(d)

	tr := g11 + g22
	// det(G) = |det(A)|².
	detA := a*d - b*c
	det := real(detA)*real(detA) + imag(detA)*imag(detA)

	disc := tr*tr - 4*det
	if disc < 0 {
		disc = 0 // numerical guard; G is PSD so this is roundoff
	}
	root := math.Sqrt(disc)
	l1 := (tr + root) / 2
	l2 := (tr - root) / 2
	if l2 < 0 {
		l2 = 0
	}
	return math.Sqrt(l1), math.Sqrt(l2)
}

// Cond returns the 2-norm condition number σ_max/σ_min of a. It returns
// +Inf for a rank-deficient matrix.
func Cond(a *Matrix) float64 {
	s := SingularValues(a)
	smin := s[len(s)-1]
	if smin == 0 {
		return math.Inf(1)
	}
	return s[0] / smin
}

// PseudoInverse returns the Moore–Penrose pseudo-inverse a⁺ = V·Σ⁺·U^H.
// Singular values below rcond·σ_max are treated as zero.
func PseudoInverse(a *Matrix, rcond float64) *Matrix {
	svd := Decompose(a)
	n := len(svd.S)
	cutoff := 0.0
	if n > 0 {
		cutoff = rcond * svd.S[0]
	}
	// a⁺ = V · diag(1/σ) · U^H, computed as V·(Σ⁺·U^H).
	ut := svd.U.ConjTranspose() // n×m
	for i := 0; i < n; i++ {
		inv := 0.0
		if svd.S[i] > cutoff && svd.S[i] > 0 {
			inv = 1 / svd.S[i]
		}
		for j := 0; j < ut.Cols; j++ {
			ut.Set(i, j, ut.At(i, j)*complex(inv, 0))
		}
	}
	return svd.V.Mul(ut)
}
