package cmat

import (
	"errors"
	"math/cmplx"
)

// ErrSingular is returned when a linear system has no unique solution at
// working precision.
var ErrSingular = errors.New("cmat: matrix is singular to working precision")

// Solve solves the square system a·x = b by Gaussian elimination with
// partial pivoting. a and b are not modified. It returns ErrSingular when a
// pivot underflows, which for the small well-scaled systems in this
// repository means the system genuinely has no unique solution.
func Solve(a *Matrix, b Vector) (Vector, error) {
	if a.Rows != a.Cols {
		panic("cmat: Solve requires a square matrix")
	}
	if a.Rows != len(b) {
		panic("cmat: Solve dimension mismatch")
	}
	n := a.Rows
	// Work on copies: an augmented system [A | b].
	m := a.Clone()
	x := b.Clone()

	for col := 0; col < n; col++ {
		// Partial pivot: the row with the largest magnitude in this column.
		pivot, pivotAbs := col, cmplx.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if abs := cmplx.Abs(m.At(r, col)); abs > pivotAbs {
				pivot, pivotAbs = r, abs
			}
		}
		if pivotAbs < 1e-300 {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := col; j < n; j++ {
				m.Data[col*n+j], m.Data[pivot*n+j] = m.Data[pivot*n+j], m.Data[col*n+j]
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			factor := m.At(r, col) * inv
			if factor == 0 {
				continue
			}
			m.Set(r, col, 0)
			for j := col + 1; j < n; j++ {
				m.Set(r, j, m.At(r, j)-factor*m.At(col, j))
			}
			x[r] -= factor * x[col]
		}
	}
	// Back substitution.
	for row := n - 1; row >= 0; row-- {
		sum := x[row]
		for j := row + 1; j < n; j++ {
			sum -= m.At(row, j) * x[j]
		}
		x[row] = sum / m.At(row, row)
	}
	return x, nil
}

// Inverse returns a⁻¹ computed column by column via Solve. It returns
// ErrSingular when a is not invertible at working precision.
func Inverse(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		panic("cmat: Inverse requires a square matrix")
	}
	n := a.Rows
	out := New(n, n)
	e := make(Vector, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := Solve(a, e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			out.Set(i, j, col[i])
		}
	}
	return out, nil
}

// Det returns the determinant of the square matrix a, computed during
// LU-style elimination with partial pivoting.
func Det(a *Matrix) complex128 {
	if a.Rows != a.Cols {
		panic("cmat: Det requires a square matrix")
	}
	n := a.Rows
	m := a.Clone()
	det := complex128(1)
	for col := 0; col < n; col++ {
		pivot, pivotAbs := col, cmplx.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if abs := cmplx.Abs(m.At(r, col)); abs > pivotAbs {
				pivot, pivotAbs = r, abs
			}
		}
		if pivotAbs == 0 {
			return 0
		}
		if pivot != col {
			for j := col; j < n; j++ {
				m.Data[col*n+j], m.Data[pivot*n+j] = m.Data[pivot*n+j], m.Data[col*n+j]
			}
			det = -det
		}
		det *= m.At(col, col)
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			factor := m.At(r, col) * inv
			for j := col + 1; j < n; j++ {
				m.Set(r, j, m.At(r, j)-factor*m.At(col, j))
			}
		}
	}
	return det
}
