package cmat

// Flop estimators for the work-accounting layer: coarse real-operation
// counts for the package's dominant kernels, so cost-per-solve reports
// can normalize by arithmetic volume rather than matrix count. They are
// models, not measurements — good to a small constant factor, which is
// all a cost trend needs.

// complexMACFlops is the real-op cost of one complex multiply-accumulate
// (4 multiplies + 4 adds).
const complexMACFlops = 8

// jacobiSweepsEstimate approximates how many one-sided Jacobi sweeps
// Decompose needs to converge on the well-conditioned matrices MIMO
// channels produce.
const jacobiSweepsEstimate = 6

// MulFlops estimates the real flops of an (m×k)·(k×n) complex matrix
// multiply.
func MulFlops(m, k, n int) int64 {
	return int64(m) * int64(k) * int64(n) * complexMACFlops
}

// SVDFlops estimates the real flops of a Jacobi SVD of a rows×cols
// matrix: per sweep, every column pair gets a rotation touching two
// length-rows columns.
func SVDFlops(rows, cols int) int64 {
	if rows < cols {
		rows, cols = cols, rows
	}
	pairs := int64(cols) * int64(cols-1) / 2
	if pairs == 0 {
		pairs = 1
	}
	return jacobiSweepsEstimate * pairs * int64(rows) * 4 * complexMACFlops
}

// SingularValues2x2Flops is the closed-form 2×2 singular-value cost.
func SingularValues2x2Flops() int64 { return 64 }
