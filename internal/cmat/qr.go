package cmat

import (
	"math"
	"math/cmplx"
)

// QR holds the Householder QR factorization a = Q·R with Q (m×m) unitary
// and R (m×n) upper triangular.
type QR struct {
	Q *Matrix
	R *Matrix
}

// QRDecompose factors a (m×n, m ≥ n) into Q·R using complex Householder
// reflections. It panics when m < n; least-squares callers with wide
// systems should solve the conjugate-transposed problem instead.
func QRDecompose(a *Matrix) *QR {
	m, n := a.Rows, a.Cols
	if m < n {
		panic("cmat: QRDecompose requires rows >= cols")
	}
	r := a.Clone()
	q := Identity(m)

	for k := 0; k < n; k++ {
		// Householder vector for column k below the diagonal.
		var normX float64
		for i := k; i < m; i++ {
			normX = math.Hypot(normX, cmplx.Abs(r.At(i, k)))
		}
		if normX == 0 {
			continue
		}
		// alpha = -e^{i·arg(x₀)}·‖x‖ avoids cancellation.
		x0 := r.At(k, k)
		phase := complex(1, 0)
		if x0 != 0 {
			phase = x0 / complex(cmplx.Abs(x0), 0)
		}
		alpha := -phase * complex(normX, 0)

		v := make(Vector, m-k)
		v[0] = x0 - alpha
		for i := k + 1; i < m; i++ {
			v[i-k] = r.At(i, k)
		}
		vn := v.Norm()
		if vn == 0 {
			continue
		}
		v.Scale(complex(1/vn, 0))

		// Apply the reflector H = I − 2vv^H to R (columns k..n) and
		// accumulate into Q (Q ← Q·H).
		for j := k; j < n; j++ {
			var dot complex128
			for i := k; i < m; i++ {
				dot += cmplx.Conj(v[i-k]) * r.At(i, j)
			}
			dot *= 2
			for i := k; i < m; i++ {
				r.Set(i, j, r.At(i, j)-dot*v[i-k])
			}
		}
		for i := 0; i < m; i++ {
			var dot complex128
			for j := k; j < m; j++ {
				dot += q.At(i, j) * v[j-k]
			}
			dot *= 2
			for j := k; j < m; j++ {
				q.Set(i, j, q.At(i, j)-dot*cmplx.Conj(v[j-k]))
			}
		}
	}
	// Clean the strictly-lower triangle of R to exact zeros.
	for i := 1; i < m; i++ {
		for j := 0; j < n && j < i; j++ {
			r.Set(i, j, 0)
		}
	}
	return &QR{Q: q, R: r}
}

// LeastSquares returns the x minimizing ‖a·x − b‖₂ for a tall or square
// full-column-rank a (m ≥ n), via QR: R·x = Q^H·b. It returns ErrSingular
// when a is column-rank-deficient at working precision.
func LeastSquares(a *Matrix, b Vector) (Vector, error) {
	m, n := a.Rows, a.Cols
	if len(b) != m {
		panic("cmat: LeastSquares dimension mismatch")
	}
	if m < n {
		panic("cmat: LeastSquares requires rows >= cols")
	}
	qr := QRDecompose(a)
	// y = Q^H b (only the first n entries are needed).
	y := qr.Q.ConjTranspose().MulVec(b)
	x := make(Vector, n)
	for row := n - 1; row >= 0; row-- {
		diag := qr.R.At(row, row)
		if cmplx.Abs(diag) < 1e-12*float64(m) {
			return nil, ErrSingular
		}
		sum := y[row]
		for j := row + 1; j < n; j++ {
			sum -= qr.R.At(row, j) * x[j]
		}
		x[row] = sum / diag
	}
	return x, nil
}
