package cmat

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"
)

// randMatrix returns a matrix with standard-normal real and imaginary
// parts, the usual Rayleigh-fading-style ensemble.
func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return m
}

func randVector(rng *rand.Rand, n int) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return v
}

func TestVectorDotHermitian(t *testing.T) {
	v := Vector{1 + 2i, 3}
	w := Vector{2, 1i}
	// conj(1+2i)*2 + conj(3)*1i = (1-2i)*2 + 3i = 2 - 4i + 3i = 2 - i.
	got := v.Dot(w)
	if got != 2-1i {
		t.Errorf("Dot = %v, want 2-1i", got)
	}
	// Dot(v, v) is real and equals Norm².
	self := v.Dot(v)
	if math.Abs(imag(self)) > 1e-15 {
		t.Errorf("v^H v has imaginary part %v", imag(self))
	}
	if math.Abs(real(self)-v.Norm()*v.Norm()) > 1e-12 {
		t.Errorf("v^H v = %v, Norm² = %v", real(self), v.Norm()*v.Norm())
	}
}

func TestVectorAddScaledSub(t *testing.T) {
	v := Vector{1, 2}
	w := Vector{3, 4}
	v.AddScaled(2, w)
	if v[0] != 7 || v[1] != 10 {
		t.Errorf("AddScaled = %v", v)
	}
	d := v.Sub(Vector{7, 10})
	if d[0] != 0 || d[1] != 0 {
		t.Errorf("Sub = %v", d)
	}
}

func TestMatrixBasicOps(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	b := FromRows([][]complex128{{0, 1}, {1, 0}})
	got := a.Mul(b)
	want := FromRows([][]complex128{{2, 1}, {4, 3}})
	if got.MaxAbsDiff(want) > 0 {
		t.Errorf("Mul:\n%v want\n%v", got, want)
	}
	if s := a.Add(b).Sub(b); s.MaxAbsDiff(a) > 0 {
		t.Error("Add then Sub did not round-trip")
	}
	if sc := a.Scale(2).At(1, 1); sc != 8 {
		t.Errorf("Scale: got %v", sc)
	}
}

func TestConjTranspose(t *testing.T) {
	a := FromRows([][]complex128{{1 + 1i, 2}, {3, 4 - 2i}, {5i, 6}})
	h := a.ConjTranspose()
	if h.Rows != 2 || h.Cols != 3 {
		t.Fatalf("shape = %dx%d", h.Rows, h.Cols)
	}
	if h.At(0, 0) != 1-1i || h.At(0, 2) != -5i || h.At(1, 1) != 4+2i {
		t.Errorf("ConjTranspose wrong:\n%v", h)
	}
	// (A^H)^H == A.
	if h.ConjTranspose().MaxAbsDiff(a) > 0 {
		t.Error("double conjugate transpose is not identity")
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 20))
	a := randMatrix(rng, 4, 3)
	v := randVector(rng, 3)
	got := a.MulVec(v)
	col := New(3, 1)
	for i := range v {
		col.Set(i, 0, v[i])
	}
	want := a.Mul(col)
	for i := range got {
		if cmplx.Abs(got[i]-want.At(i, 0)) > 1e-12 {
			t.Fatalf("MulVec[%d] = %v, want %v", i, got[i], want.At(i, 0))
		}
	}
}

func TestIdentityIsNeutral(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	a := randMatrix(rng, 3, 3)
	if a.Mul(Identity(3)).MaxAbsDiff(a) > 1e-14 {
		t.Error("A·I != A")
	}
	if Identity(3).Mul(a).MaxAbsDiff(a) > 1e-14 {
		t.Error("I·A != A")
	}
}

func TestRowColClone(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	r := a.Row(1)
	c := a.Col(0)
	if r[0] != 3 || r[1] != 4 || c[0] != 1 || c[1] != 3 {
		t.Errorf("Row/Col wrong: %v %v", r, c)
	}
	// Mutating copies must not touch the original.
	r[0], c[0] = 99, 99
	clone := a.Clone()
	clone.Set(0, 0, 42)
	if a.At(1, 0) != 3 || a.At(0, 0) != 1 {
		t.Error("copies alias the original matrix")
	}
}

func TestShapePanics(t *testing.T) {
	for name, bad := range map[string]func(){
		"new":     func() { New(0, 3) },
		"mul":     func() { New(2, 3).Mul(New(2, 2)) },
		"add":     func() { New(2, 2).Add(New(2, 3)) },
		"mulvec":  func() { New(2, 2).MulVec(make(Vector, 3)) },
		"dot":     func() { Vector{1}.Dot(Vector{1, 2}) },
		"fromrag": func() { FromRows([][]complex128{{1, 2}, {3}}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		})
	}
}

func TestFrobeniusNorm(t *testing.T) {
	a := FromRows([][]complex128{{3, 0}, {0, 4i}})
	if got := a.FrobeniusNorm(); math.Abs(got-5) > 1e-14 {
		t.Errorf("FrobeniusNorm = %v, want 5", got)
	}
}

// Property: (A·B)^H == B^H·A^H.
func TestMulConjTransposeProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for trial := 0; trial < 50; trial++ {
		a := randMatrix(rng, 2+rng.IntN(4), 2+rng.IntN(4))
		b := randMatrix(rng, a.Cols, 2+rng.IntN(4))
		lhs := a.Mul(b).ConjTranspose()
		rhs := b.ConjTranspose().Mul(a.ConjTranspose())
		if lhs.MaxAbsDiff(rhs) > 1e-11 {
			t.Fatalf("(AB)^H != B^H A^H (trial %d, diff %g)", trial, lhs.MaxAbsDiff(rhs))
		}
	}
}
