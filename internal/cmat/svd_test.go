package cmat

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
)

func TestSVDReconstructs(t *testing.T) {
	rng := rand.New(rand.NewPCG(71, 72))
	for _, shape := range [][2]int{{2, 2}, {3, 3}, {5, 2}, {2, 5}, {6, 4}} {
		a := randMatrix(rng, shape[0], shape[1])
		svd := Decompose(a)
		// Rebuild U·Σ·V^H.
		k := len(svd.S)
		sigma := New(k, k)
		for i, s := range svd.S {
			sigma.Set(i, i, complex(s, 0))
		}
		rec := svd.U.Mul(sigma).Mul(svd.V.ConjTranspose())
		if d := rec.MaxAbsDiff(a); d > 1e-10 {
			t.Errorf("shape %v: reconstruction differs by %g", shape, d)
		}
	}
}

func TestSVDSingularValuesSorted(t *testing.T) {
	rng := rand.New(rand.NewPCG(73, 74))
	for trial := 0; trial < 40; trial++ {
		a := randMatrix(rng, 2+rng.IntN(5), 2+rng.IntN(5))
		s := Decompose(a).S
		if !sort.IsSorted(sort.Reverse(sort.Float64Slice(s))) {
			t.Fatalf("singular values not descending: %v", s)
		}
		for _, v := range s {
			if v < 0 {
				t.Fatalf("negative singular value %v", v)
			}
		}
	}
}

func TestSVDOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewPCG(75, 76))
	a := randMatrix(rng, 5, 3)
	svd := Decompose(a)
	if d := svd.U.ConjTranspose().Mul(svd.U).MaxAbsDiff(Identity(3)); d > 1e-10 {
		t.Errorf("U columns not orthonormal (diff %g)", d)
	}
	if d := svd.V.ConjTranspose().Mul(svd.V).MaxAbsDiff(Identity(3)); d > 1e-10 {
		t.Errorf("V not unitary (diff %g)", d)
	}
}

func TestSVDDiagonalKnown(t *testing.T) {
	a := FromRows([][]complex128{{3, 0}, {0, 4i}})
	s := Decompose(a).S
	if math.Abs(s[0]-4) > 1e-12 || math.Abs(s[1]-3) > 1e-12 {
		t.Errorf("S = %v, want [4 3]", s)
	}
}

func TestSingularValues2x2MatchesJacobi(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 78))
	for trial := 0; trial < 200; trial++ {
		a := randMatrix(rng, 2, 2)
		s1, s2 := SingularValues2x2(a.At(0, 0), a.At(0, 1), a.At(1, 0), a.At(1, 1))
		ref := Decompose(a).S
		if math.Abs(s1-ref[0]) > 1e-9*(1+ref[0]) || math.Abs(s2-ref[1]) > 1e-9*(1+ref[0]) {
			t.Fatalf("trial %d: closed form (%v,%v) vs Jacobi %v", trial, s1, s2, ref)
		}
	}
}

func TestSingularValuesFrobeniusIdentity(t *testing.T) {
	// Σσᵢ² == ‖A‖_F².
	rng := rand.New(rand.NewPCG(79, 80))
	for trial := 0; trial < 50; trial++ {
		a := randMatrix(rng, 2+rng.IntN(4), 2+rng.IntN(4))
		var sum float64
		for _, s := range Decompose(a).S {
			sum += s * s
		}
		f := a.FrobeniusNorm()
		if math.Abs(sum-f*f) > 1e-9*(1+f*f) {
			t.Fatalf("Σσ² = %v, ‖A‖_F² = %v", sum, f*f)
		}
	}
}

func TestCond(t *testing.T) {
	a := FromRows([][]complex128{{10, 0}, {0, 1}})
	if c := Cond(a); math.Abs(c-10) > 1e-10 {
		t.Errorf("Cond = %v, want 10", c)
	}
	if c := Cond(Identity(3)); math.Abs(c-1) > 1e-10 {
		t.Errorf("Cond(I) = %v, want 1", c)
	}
	sing := FromRows([][]complex128{{1, 1}, {1, 1}})
	if c := Cond(sing); !math.IsInf(c, 1) {
		t.Errorf("Cond(singular) = %v, want +Inf", c)
	}
}

func TestCondUnitaryInvariant(t *testing.T) {
	// Multiplying by a unitary matrix must not change the condition number.
	rng := rand.New(rand.NewPCG(81, 82))
	a := randMatrix(rng, 3, 3)
	q := QRDecompose(randMatrix(rng, 3, 3)).Q
	c1, c2 := Cond(a), Cond(q.Mul(a))
	if math.Abs(c1-c2) > 1e-8*c1 {
		t.Errorf("Cond changed under unitary transform: %v vs %v", c1, c2)
	}
}

func TestPseudoInverse(t *testing.T) {
	rng := rand.New(rand.NewPCG(83, 84))
	// Tall full-rank: A⁺·A == I.
	a := randMatrix(rng, 5, 3)
	pinv := PseudoInverse(a, 1e-12)
	if pinv.Rows != 3 || pinv.Cols != 5 {
		t.Fatalf("pinv shape %dx%d", pinv.Rows, pinv.Cols)
	}
	if d := pinv.Mul(a).MaxAbsDiff(Identity(3)); d > 1e-9 {
		t.Errorf("A⁺A differs from I by %g", d)
	}
	// Moore–Penrose condition: A·A⁺·A == A.
	if d := a.Mul(pinv).Mul(a).MaxAbsDiff(a); d > 1e-9 {
		t.Errorf("A A⁺ A differs from A by %g", d)
	}
}

func TestPseudoInverseRankDeficient(t *testing.T) {
	// Rank-1 matrix: pseudo-inverse still satisfies A A⁺ A = A.
	a := FromRows([][]complex128{{1, 2}, {2, 4}})
	pinv := PseudoInverse(a, 1e-10)
	if d := a.Mul(pinv).Mul(a).MaxAbsDiff(a); d > 1e-9 {
		t.Errorf("rank-deficient A A⁺ A differs from A by %g", d)
	}
}

func BenchmarkSVD2x2ClosedForm(b *testing.B) {
	rng := rand.New(rand.NewPCG(91, 92))
	a := randMatrix(rng, 2, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SingularValues2x2(a.At(0, 0), a.At(0, 1), a.At(1, 0), a.At(1, 1))
	}
}

func BenchmarkSVDJacobi4x4(b *testing.B) {
	rng := rand.New(rand.NewPCG(93, 94))
	a := randMatrix(rng, 4, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Decompose(a)
	}
}
