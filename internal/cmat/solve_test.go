package cmat

import (
	"errors"
	"math/cmplx"
	"math/rand/v2"
	"testing"
)

func TestSolveKnownSystem(t *testing.T) {
	// [1 1; 1 -1] x = [3; 1]  =>  x = [2; 1].
	a := FromRows([][]complex128{{1, 1}, {1, -1}})
	x, err := Solve(a, Vector{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(x[0]-2) > 1e-14 || cmplx.Abs(x[1]-1) > 1e-14 {
		t.Errorf("x = %v, want [2 1]", x)
	}
}

func TestSolveComplexSystem(t *testing.T) {
	a := FromRows([][]complex128{{1i, 2}, {3, 4i}})
	want := Vector{1 - 1i, 2 + 3i}
	b := a.MulVec(want)
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if cmplx.Abs(x[i]-want[i]) > 1e-12 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {2, 4}})
	if _, err := Solve(a, Vector{1, 2}); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestSolveDoesNotMutate(t *testing.T) {
	a := FromRows([][]complex128{{4, 1}, {1, 3}})
	b := Vector{1, 2}
	orig := a.Clone()
	if _, err := Solve(a, b); err != nil {
		t.Fatal(err)
	}
	if a.MaxAbsDiff(orig) > 0 || b[0] != 1 || b[1] != 2 {
		t.Error("Solve mutated its inputs")
	}
}

func TestSolveRandomResidualProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.IntN(8)
		a := randMatrix(rng, n, n)
		want := randVector(rng, n)
		b := a.MulVec(want)
		x, err := Solve(a, b)
		if err != nil {
			continue // random singular matrix: astronomically rare but legal
		}
		res := a.MulVec(x).Sub(b)
		if res.Norm() > 1e-9*(1+b.Norm()) {
			t.Fatalf("residual %g too large (trial %d, n=%d)", res.Norm(), trial, n)
		}
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	a := randMatrix(rng, 4, 4)
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := a.Mul(inv).MaxAbsDiff(Identity(4)); d > 1e-10 {
		t.Errorf("A·A⁻¹ differs from I by %g", d)
	}
	if d := inv.Mul(a).MaxAbsDiff(Identity(4)); d > 1e-10 {
		t.Errorf("A⁻¹·A differs from I by %g", d)
	}
}

func TestInverseSingular(t *testing.T) {
	a := FromRows([][]complex128{{1, 1}, {1, 1}})
	if _, err := Inverse(a); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestDet(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	if d := Det(a); cmplx.Abs(d-(-2)) > 1e-14 {
		t.Errorf("Det = %v, want -2", d)
	}
	s := FromRows([][]complex128{{1, 2}, {2, 4}})
	if d := Det(s); cmplx.Abs(d) > 1e-14 {
		t.Errorf("Det singular = %v, want 0", d)
	}
	// det(AB) = det(A)det(B).
	rng := rand.New(rand.NewPCG(41, 42))
	x := randMatrix(rng, 3, 3)
	y := randMatrix(rng, 3, 3)
	lhs := Det(x.Mul(y))
	rhs := Det(x) * Det(y)
	if cmplx.Abs(lhs-rhs) > 1e-9*(1+cmplx.Abs(rhs)) {
		t.Errorf("det(AB)=%v, det(A)det(B)=%v", lhs, rhs)
	}
}
