package element

import (
	"math"
	"testing"
)

func TestStateString(t *testing.T) {
	cases := []struct {
		s    State
		want string
	}{
		{State{Kind: Terminate}, "T"},
		{State{Kind: Reflect, PhaseRad: 0}, "0"},
		{State{Kind: Reflect, PhaseRad: math.Pi / 2}, "0.5π"},
		{State{Kind: Reflect, PhaseRad: math.Pi}, "π"},
		{State{Kind: Reflect, PhaseRad: 1.5 * math.Pi}, "1.5π"},
		{State{Kind: Reflect, PhaseRad: 2 * math.Pi}, "2π"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.s, got, c.want)
		}
	}
}

func TestParseState(t *testing.T) {
	cases := []struct {
		in    string
		kind  StateKind
		phase float64
	}{
		{"T", Terminate, 0},
		{"t", Terminate, 0},
		{" T ", Terminate, 0},
		{"0", Reflect, 0},
		{"0.5π", Reflect, math.Pi / 2},
		{"π", Reflect, math.Pi},
		{"pi", Reflect, math.Pi},
		{"1.5pi", Reflect, 1.5 * math.Pi},
		{"0.25π", Reflect, math.Pi / 4},
		{"1.5708rad", Reflect, 1.5708},
	}
	for _, c := range cases {
		got, err := ParseState(c.in)
		if err != nil {
			t.Errorf("ParseState(%q): %v", c.in, err)
			continue
		}
		if got.Kind != c.kind || math.Abs(got.PhaseRad-c.phase) > 1e-9 {
			t.Errorf("ParseState(%q) = %+v, want kind=%v phase=%v", c.in, got, c.kind, c.phase)
		}
	}
	for _, bad := range []string{"", "xyz", "πx", "radrad"} {
		if _, err := ParseState(bad); err == nil {
			t.Errorf("ParseState(%q) should fail", bad)
		}
	}
}

func TestStateStringRoundTrip(t *testing.T) {
	for _, s := range append(SP4TStates(), NPhaseStates(8, true)...) {
		parsed, err := ParseState(s.String())
		if err != nil {
			t.Fatalf("round trip of %q: %v", s.String(), err)
		}
		if parsed.Kind != s.Kind || math.Abs(parsed.PhaseRad-s.PhaseRad) > 1e-9 {
			t.Errorf("round trip of %q gave %+v, want %+v", s.String(), parsed, s)
		}
	}
}

func TestSP4TStates(t *testing.T) {
	states := SP4TStates()
	if len(states) != 4 {
		t.Fatalf("SP4T bank has %d states, want 4", len(states))
	}
	// Figure 3: stubs at 0, λ/4, λ/2 of round-trip path → phases
	// 0, π/2, π — plus the absorptive load.
	wantPhases := []float64{0, math.Pi / 2, math.Pi}
	for i, w := range wantPhases {
		if states[i].Kind != Reflect || math.Abs(states[i].PhaseRad-w) > 1e-12 {
			t.Errorf("state %d = %+v, want phase %v", i, states[i], w)
		}
	}
	if states[3].Kind != Terminate {
		t.Error("state 3 should be the absorptive load")
	}
}

func TestFourPhaseStates(t *testing.T) {
	states := FourPhaseStates()
	if len(states) != 4 {
		t.Fatalf("four-phase bank has %d states", len(states))
	}
	for i, s := range states {
		if s.Kind != Reflect {
			t.Fatalf("state %d should reflect (§3.2.2 has no absorber)", i)
		}
		if want := float64(i) * math.Pi / 2; math.Abs(s.PhaseRad-want) > 1e-12 {
			t.Errorf("state %d phase = %v, want %v", i, s.PhaseRad, want)
		}
	}
}

func TestNPhaseStates(t *testing.T) {
	s8 := NPhaseStates(8, true)
	if len(s8) != 9 {
		t.Fatalf("8 phases + off = %d states", len(s8))
	}
	for i := 0; i < 8; i++ {
		want := 2 * math.Pi * float64(i) / 8
		if math.Abs(s8[i].PhaseRad-want) > 1e-12 {
			t.Errorf("phase %d = %v, want %v", i, s8[i].PhaseRad, want)
		}
	}
	if s8[8].Kind != Terminate {
		t.Error("last state should be off")
	}
	if len(NPhaseStates(2, false)) != 2 {
		t.Error("2-phase bank size wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("NPhaseStates(0,...) should panic")
		}
	}()
	NPhaseStates(0, false)
}
