// Package element models PRESS elements: the low-cost wall-embedded
// antennas of the paper's Figure 3, each behind a chain of SP4T RF
// switches selecting between open waveguide stubs of different lengths
// (switched reflection phase) or an absorptive load (no reflection).
//
// An element's entire effect on the wireless channel is the extra
// TX→element→RX path it contributes; the package builds those paths via
// propagation.BistaticPath for whole arrays under a given Configuration.
package element

import (
	"fmt"
	"math"
	"strings"
)

// StateKind distinguishes reflective stubs from the absorptive load.
type StateKind int

// State kinds.
const (
	// Reflect re-radiates the incident signal with a switched phase.
	Reflect StateKind = iota
	// Terminate absorbs the incident signal (the paper's "T" state).
	Terminate
)

// State is one selectable position of an element's switch chain.
type State struct {
	Kind StateKind
	// PhaseRad is the additional reflection phase of a Reflect state,
	// realized physically as an open stub adding PhaseRad/2π wavelengths
	// of round-trip path. Ignored for Terminate.
	PhaseRad float64
}

// String renders the state in the paper's notation: multiples of π for
// reflective states ("0", "0.5π", "π", "1.5π"), "T" for terminated.
func (s State) String() string {
	if s.Kind == Terminate {
		return "T"
	}
	frac := s.PhaseRad / math.Pi
	switch {
	case frac == 0:
		return "0"
	case frac == 1:
		return "π"
	case frac == math.Trunc(frac):
		return fmt.Sprintf("%gπ", frac)
	default:
		return fmt.Sprintf("%.4gπ", frac)
	}
}

// ParseState parses the paper's notation back into a State: "T" (or "t")
// for terminated, otherwise a phase written as a multiple of π ("0",
// "0.5π", "pi", "1.5pi") or as plain radians ("1.5708rad").
func ParseState(s string) (State, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return State{}, fmt.Errorf("element: empty state")
	}
	if strings.EqualFold(t, "T") {
		return State{Kind: Terminate}, nil
	}
	lower := strings.ToLower(t)
	if rad, okSuffix := strings.CutSuffix(lower, "rad"); okSuffix {
		var v float64
		if _, err := fmt.Sscanf(rad, "%g", &v); err != nil {
			return State{}, fmt.Errorf("element: bad radian state %q", s)
		}
		return State{Kind: Reflect, PhaseRad: v}, nil
	}
	mult := 1.0
	body := lower
	if cut, ok := strings.CutSuffix(lower, "π"); ok {
		body, mult = cut, math.Pi
	} else if cut, ok := strings.CutSuffix(lower, "pi"); ok {
		body, mult = cut, math.Pi
	}
	if body == "" {
		body = "1" // bare "π"
	}
	var v float64
	if _, err := fmt.Sscanf(body, "%g", &v); err != nil {
		return State{}, fmt.Errorf("element: bad state %q", s)
	}
	return State{Kind: Reflect, PhaseRad: v * mult}, nil
}

// SP4TStates returns the paper's prototype switch bank (Figure 3): three
// open stubs adding 0, λ/4 and λ/2 of round-trip path — reflection phases
// 0, π/2 and π — plus the absorptive load. With three elements this spans
// the 4³ = 64 configurations of §3.2.
func SP4TStates() []State {
	return []State{
		{Kind: Reflect, PhaseRad: 0},
		{Kind: Reflect, PhaseRad: math.Pi / 2},
		{Kind: Reflect, PhaseRad: math.Pi},
		{Kind: Terminate},
	}
}

// FourPhaseStates returns the §3.2.2 variant: four reflective stubs
// (0, π/2, π, 3π/2) and no absorber, used "to decrease the reflected
// phase granularity" in the network-harmonization experiment.
func FourPhaseStates() []State {
	return []State{
		{Kind: Reflect, PhaseRad: 0},
		{Kind: Reflect, PhaseRad: math.Pi / 2},
		{Kind: Reflect, PhaseRad: math.Pi},
		{Kind: Reflect, PhaseRad: 3 * math.Pi / 2},
	}
}

// NPhaseStates returns n evenly spaced reflective phases covering [0, 2π),
// optionally with the absorptive "off" state appended — the knob behind
// the paper's §4.1 conjecture that "around eight phase values along with
// the off state may provide sufficient resolution". It panics for n < 1.
func NPhaseStates(n int, includeOff bool) []State {
	if n < 1 {
		panic("element: NPhaseStates needs n >= 1")
	}
	states := make([]State, 0, n+1)
	for i := 0; i < n; i++ {
		states = append(states, State{Kind: Reflect, PhaseRad: 2 * math.Pi * float64(i) / float64(n)})
	}
	if includeOff {
		states = append(states, State{Kind: Terminate})
	}
	return states
}
