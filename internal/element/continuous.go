package element

import (
	"fmt"
	"math"

	"press/internal/propagation"
	"press/internal/rfphys"
)

// This file implements the §4.1 extension the paper plans to test:
// "continuously-variable phase shifting hardware". A continuous
// configuration assigns each element an arbitrary reflection phase in
// [0, 2π), or turns it off, instead of selecting from a discrete stub
// bank.

// Off is the continuous-phase sentinel for a terminated element.
var Off = math.NaN()

// ContinuousConfig assigns one reflection phase per element, in radians;
// NaN (Off) terminates the element.
type ContinuousConfig []float64

// Clone returns an independent copy.
func (c ContinuousConfig) Clone() ContinuousConfig {
	return append(ContinuousConfig(nil), c...)
}

// Wrap normalizes every phase into [0, 2π), leaving Off entries alone.
func (c ContinuousConfig) Wrap() ContinuousConfig {
	for i, p := range c {
		if math.IsNaN(p) {
			continue
		}
		p = math.Mod(p, 2*math.Pi)
		if p < 0 {
			p += 2 * math.Pi
		}
		c[i] = p
	}
	return c
}

// ContinuousReflection returns the element's complex reflection gain and
// internal stub delay for an arbitrary phase (the continuous analogue of
// Reflection). A NaN phase means terminated.
func (e *Element) ContinuousReflection(phaseRad, lambdaM float64) (complex128, float64) {
	if math.IsNaN(phaseRad) {
		return 0, 0
	}
	amp := rfphys.DBToAmplitude(e.ActiveGainDB - e.LossDB)
	stubLen := phaseRad / (2 * math.Pi) * lambdaM
	return complex(amp, 0), stubLen / rfphys.SpeedOfLight
}

// ValidateContinuous checks a continuous configuration against the array.
func (a *Array) ValidateContinuous(c ContinuousConfig) error {
	if len(c) != a.N() {
		return fmt.Errorf("element: continuous config has %d entries for %d elements", len(c), a.N())
	}
	for i, p := range c {
		if math.IsInf(p, 0) {
			return fmt.Errorf("element: continuous config[%d] is infinite", i)
		}
	}
	return nil
}

// ContinuousPaths returns the array's path contributions under a
// continuous configuration — the forward model for continuously-variable
// phase hardware.
func (a *Array) ContinuousPaths(env *propagation.Environment, tx, rx propagation.Node,
	c ContinuousConfig, lambdaM float64) []propagation.Path {

	if err := a.ValidateContinuous(c); err != nil {
		panic(err)
	}
	var paths []propagation.Path
	for i, e := range a.Elements {
		refl, extra := e.ContinuousReflection(c[i], lambdaM)
		if p, ok := propagation.BistaticPath(env, tx, rx, e.Pos, e.Pattern, refl, extra, lambdaM); ok {
			paths = append(paths, p)
		}
	}
	return paths
}

// QuantizeContinuous maps a continuous configuration onto the array's
// discrete states: each phase goes to the nearest reflective state (by
// circular distance), Off goes to a Terminate state when the element has
// one (else phase 0). This is how a controller designed for continuous
// hardware would drive the discrete SP4T prototype.
func (a *Array) QuantizeContinuous(c ContinuousConfig) Config {
	if err := a.ValidateContinuous(c); err != nil {
		panic(err)
	}
	cfg := make(Config, a.N())
	for i, e := range a.Elements {
		states := e.states()
		if math.IsNaN(c[i]) {
			cfg[i] = 0
			for si, st := range states {
				if st.Kind == Terminate {
					cfg[i] = si
					break
				}
			}
			continue
		}
		best, bestDist := -1, math.Inf(1)
		for si, st := range states {
			if st.Kind != Reflect {
				continue
			}
			if d := circularDist(st.PhaseRad, c[i]); d < bestDist {
				best, bestDist = si, d
			}
		}
		if best < 0 {
			best = 0 // all-absorber bank: nothing to quantize onto
		}
		cfg[i] = best
	}
	return cfg
}

// circularDist returns the distance between two angles on the circle.
func circularDist(a, b float64) float64 {
	d := math.Mod(math.Abs(a-b), 2*math.Pi)
	if d > math.Pi {
		d = 2*math.Pi - d
	}
	return d
}
