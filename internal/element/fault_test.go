package element

import (
	"math/cmplx"
	"testing"

	"press/internal/geom"
	"press/internal/propagation"
)

func faultTestScene() (*propagation.Environment, propagation.Node, propagation.Node, *Array) {
	env := propagation.NewEnvironment(6, 5, 3)
	tx := propagation.Node{Pos: geom.V(1, 2.5, 1.5)}
	rx := propagation.Node{Pos: geom.V(5, 2.5, 1.5)}
	return env, tx, rx, threeElementArray()
}

func TestValidateFaults(t *testing.T) {
	_, _, _, arr := faultTestScene()
	good := Faults{0: {Kind: StuckAt, State: 2}, 2: {Kind: Dead}}
	if err := arr.ValidateFaults(good); err != nil {
		t.Errorf("valid faults rejected: %v", err)
	}
	if err := arr.ValidateFaults(Faults{9: {Kind: Dead}}); err == nil {
		t.Error("out-of-range element accepted")
	}
	if err := arr.ValidateFaults(Faults{0: {Kind: StuckAt, State: 99}}); err == nil {
		t.Error("invalid stuck state accepted")
	}
	if err := arr.ValidateFaults(nil); err != nil {
		t.Errorf("empty plan rejected: %v", err)
	}
}

func TestPathsWithFaultsHealthyEqualsPaths(t *testing.T) {
	env, tx, rx, arr := faultTestScene()
	cfg := Config{0, 1, 2}
	a := arr.Paths(env, tx, rx, cfg, lambda)
	b := arr.PathsWithFaults(env, tx, rx, cfg, nil, lambda)
	if len(a) != len(b) {
		t.Fatalf("path counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Gain != b[i].Gain || a[i].Delay != b[i].Delay {
			t.Fatalf("path %d differs with empty fault plan", i)
		}
	}
}

func TestDeadElementContributesNothing(t *testing.T) {
	env, tx, rx, arr := faultTestScene()
	paths := arr.PathsWithFaults(env, tx, rx, Config{0, 0, 0},
		Faults{1: {Kind: Dead}}, lambda)
	if len(paths) != 2 {
		t.Fatalf("dead element still contributed: %d paths", len(paths))
	}
}

func TestStuckElementIgnoresCommands(t *testing.T) {
	env, tx, rx, arr := faultTestScene()
	faults := Faults{0: {Kind: StuckAt, State: 2}}
	// Commanding state 0 or state 1 makes no difference: element 0 is
	// jammed at state 2.
	a := arr.PathsWithFaults(env, tx, rx, Config{0, 3, 3}, faults, lambda)
	b := arr.PathsWithFaults(env, tx, rx, Config{1, 3, 3}, faults, lambda)
	if len(a) != 1 || len(b) != 1 {
		t.Fatalf("path counts: %d, %d", len(a), len(b))
	}
	if a[0].Gain != b[0].Gain || a[0].Delay != b[0].Delay {
		t.Error("stuck element responded to commands")
	}
	// And it matches the healthy array actually set to state 2.
	ref := arr.Paths(env, tx, rx, Config{2, 3, 3}, lambda)
	if len(ref) != 1 || cmplx.Abs(ref[0].Gain-a[0].Gain) > 1e-18 {
		t.Error("stuck state does not match the jammed state's physics")
	}
}

func TestStuckTerminatedStaysSilent(t *testing.T) {
	env, tx, rx, arr := faultTestScene()
	faults := Faults{0: {Kind: StuckAt, State: 3}} // jammed on the absorber
	paths := arr.PathsWithFaults(env, tx, rx, Config{0, 3, 3}, faults, lambda)
	if len(paths) != 0 {
		t.Errorf("absorber-jammed element still radiated: %d paths", len(paths))
	}
}
