package element

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"

	"press/internal/geom"
	"press/internal/propagation"
	"press/internal/rfphys"
)

const lambda = 0.1218

func threeElementArray() *Array {
	aim := geom.V(3, 2.5, 1.5)
	return NewArray(
		NewParabolicElement(geom.V(2, 1, 1.5), aim),
		NewParabolicElement(geom.V(3, 1, 1.5), aim),
		NewParabolicElement(geom.V(4, 1, 1.5), aim),
	)
}

func TestReflection(t *testing.T) {
	e := NewOmniElement(geom.V(1, 1, 1))
	// State 0: phase 0 → no stub delay, amplitude set by the 1 dB loss.
	r0, d0 := e.Reflection(0, lambda)
	if d0 != 0 {
		t.Errorf("state 0 delay = %v, want 0", d0)
	}
	if math.Abs(cmplx.Abs(r0)-rfphys.DBToAmplitude(-1)) > 1e-12 {
		t.Errorf("state 0 amplitude = %v", cmplx.Abs(r0))
	}
	// State 1: π/2 → λ/4 of stub path.
	_, d1 := e.Reflection(1, lambda)
	want := (lambda / 4) / rfphys.SpeedOfLight
	if math.Abs(d1-want) > 1e-22 {
		t.Errorf("state 1 delay = %v, want %v", d1, want)
	}
	// State 3: terminated → zero reflection.
	r3, _ := e.Reflection(3, lambda)
	if r3 != 0 {
		t.Errorf("terminated reflection = %v, want 0", r3)
	}
}

func TestActiveElementGain(t *testing.T) {
	passive := NewOmniElement(geom.V(1, 1, 1))
	active := NewActiveElement(geom.V(1, 1, 1), 20)
	rp, _ := passive.Reflection(0, lambda)
	ra, _ := active.Reflection(0, lambda)
	gainDB := rfphys.AmplitudeToDB(cmplx.Abs(ra) / cmplx.Abs(rp))
	if math.Abs(gainDB-21) > 1e-9 { // 20 dB active gain + no 1 dB loss
		t.Errorf("active/passive gain = %v dB, want 21", gainDB)
	}
}

func TestConfigSpaceSize(t *testing.T) {
	a := threeElementArray()
	if got := a.NumConfigs(); got != 64 {
		t.Errorf("NumConfigs = %d, want 64 (the paper's 4³)", got)
	}
	two := NewArray(
		&Element{Pos: geom.V(1, 1, 1), States: FourPhaseStates()},
		&Element{Pos: geom.V(2, 1, 1), States: FourPhaseStates()},
	)
	if got := two.NumConfigs(); got != 16 {
		t.Errorf("two four-phase elements: %d configs, want 16", got)
	}
}

func TestConfigAtIndexRoundTrip(t *testing.T) {
	a := threeElementArray()
	for idx := 0; idx < a.NumConfigs(); idx++ {
		c := a.ConfigAt(idx)
		if err := a.Validate(c); err != nil {
			t.Fatalf("ConfigAt(%d) invalid: %v", idx, err)
		}
		if back := a.Index(c); back != idx {
			t.Fatalf("Index(ConfigAt(%d)) = %d", idx, back)
		}
	}
}

func TestConfigAtPanicsOutOfRange(t *testing.T) {
	a := threeElementArray()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	a.ConfigAt(64)
}

func TestEachConfigVisitsAllOnce(t *testing.T) {
	a := threeElementArray()
	seen := make(map[int]bool)
	a.EachConfig(func(idx int, c Config) bool {
		if seen[idx] {
			t.Fatalf("index %d visited twice", idx)
		}
		seen[idx] = true
		if !c.Equal(a.ConfigAt(idx)) {
			t.Fatalf("config at %d mismatch: %v vs %v", idx, c, a.ConfigAt(idx))
		}
		return true
	})
	if len(seen) != 64 {
		t.Errorf("visited %d configs, want 64", len(seen))
	}
}

func TestEachConfigEarlyStop(t *testing.T) {
	a := threeElementArray()
	count := 0
	a.EachConfig(func(idx int, c Config) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Errorf("early stop visited %d, want 10", count)
	}
}

func TestValidate(t *testing.T) {
	a := threeElementArray()
	if err := a.Validate(Config{0, 1, 3}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := a.Validate(Config{0, 1}); err == nil {
		t.Error("short config accepted")
	}
	if err := a.Validate(Config{0, 1, 4}); err == nil {
		t.Error("out-of-range state accepted")
	}
	if err := a.Validate(Config{-1, 1, 2}); err == nil {
		t.Error("negative state accepted")
	}
}

func TestAllTerminated(t *testing.T) {
	a := threeElementArray()
	c, ok := a.AllTerminated()
	if !ok {
		t.Fatal("SP4T array should have an all-terminated config")
	}
	for i, si := range c {
		if a.Elements[i].states()[si].Kind != Terminate {
			t.Errorf("element %d state %d not terminated", i, si)
		}
	}
	// A four-phase array has no absorber.
	four := NewArray(&Element{Pos: geom.V(1, 1, 1), States: FourPhaseStates()})
	if _, ok := four.AllTerminated(); ok {
		t.Error("four-phase array should have no terminated config")
	}
}

func TestConfigString(t *testing.T) {
	a := threeElementArray()
	if got := a.String(Config{2, 0, 1}); got != "(π, 0, 0.5π)" {
		t.Errorf("String = %q", got)
	}
	if got := a.String(Config{1, 3, 1}); got != "(0.5π, T, 0.5π)" {
		t.Errorf("String = %q", got)
	}
	if got := a.String(Config{0}); got != "invalid-config([0])" {
		t.Errorf("invalid String = %q", got)
	}
}

func TestArrayPaths(t *testing.T) {
	env := propagation.NewEnvironment(6, 5, 3)
	tx := propagation.Node{Pos: geom.V(1, 2.5, 1.5), Pattern: rfphys.Omni{PeakGainDBi: 2}}
	rx := propagation.Node{Pos: geom.V(5, 2.5, 1.5), Pattern: rfphys.Omni{PeakGainDBi: 2}}
	a := threeElementArray()

	// All reflecting: three element paths.
	paths := a.Paths(env, tx, rx, Config{0, 0, 0}, lambda)
	if len(paths) != 3 {
		t.Fatalf("got %d paths, want 3", len(paths))
	}
	for _, p := range paths {
		if p.Kind != propagation.KindElement {
			t.Errorf("path kind = %v", p.Kind)
		}
	}

	// All terminated: no paths — "antennas ... terminated with an
	// absorptive load and are not contributing reflection paths" (§3.2.1).
	term, _ := a.AllTerminated()
	if got := a.Paths(env, tx, rx, term, lambda); len(got) != 0 {
		t.Errorf("terminated array contributed %d paths", len(got))
	}

	// One terminated: two paths.
	if got := a.Paths(env, tx, rx, Config{0, 3, 2}, lambda); len(got) != 2 {
		t.Errorf("partially terminated array: %d paths, want 2", len(got))
	}
}

func TestArrayPathsPhaseControl(t *testing.T) {
	// Switching one element 0 → π flips the sign of its path contribution
	// at the carrier frequency.
	env := propagation.NewEnvironment(6, 5, 3)
	tx := propagation.Node{Pos: geom.V(1, 2.5, 1.5)}
	rx := propagation.Node{Pos: geom.V(5, 2.5, 1.5)}
	a := NewArray(NewOmniElement(geom.V(3, 1, 1.5)))

	fc := rfphys.SpeedOfLight / lambda
	h0 := propagation.ResponseAt(a.Paths(env, tx, rx, Config{0}, lambda), fc, 0)
	hPi := propagation.ResponseAt(a.Paths(env, tx, rx, Config{2}, lambda), fc, 0)
	if cmplx.Abs(h0+hPi) > 1e-6*cmplx.Abs(h0) {
		t.Errorf("π phase state did not negate the element path: %v vs %v", h0, hPi)
	}
}

func TestElementPathComparableToWallReflections(t *testing.T) {
	// Design sanity check behind the whole reproduction: a passive element
	// path carries *two* Friis spreading factors (radar-equation penalty),
	// so it sits well below individual wall reflections — which is exactly
	// why the paper sees <2 dB effects on line-of-sight links and big
	// effects only at multipath nulls. For the Figure 4 behaviour the
	// element path must still land within ~30 dB of the strongest wall
	// path, so that it dominates the residual field at deep fades.
	env := propagation.NewEnvironment(6, 5, 3)
	tx := propagation.Node{Pos: geom.V(1.5, 2.5, 1.5), Pattern: rfphys.Omni{PeakGainDBi: 2}}
	rx := propagation.Node{Pos: geom.V(4, 2.5, 1.5), Pattern: rfphys.Omni{PeakGainDBi: 2}}

	envPaths := propagation.TracePaths(env, tx, rx, lambda)
	var strongestWall float64
	for _, p := range envPaths {
		if p.Kind == propagation.KindWall {
			if a := cmplx.Abs(p.Gain); a > strongestWall {
				strongestWall = a
			}
		}
	}
	elem := NewParabolicElement(geom.V(2.75, 1.3, 1.5), rx.Pos)
	ep := NewArray(elem).Paths(env, tx, rx, Config{0}, lambda)
	if len(ep) != 1 {
		t.Fatal("element path missing")
	}
	ratioDB := rfphys.AmplitudeToDB(cmplx.Abs(ep[0].Gain) / strongestWall)
	if ratioDB < -30 {
		t.Errorf("element path %v dB below strongest wall path; too weak to matter even at nulls", -ratioDB)
	}
}

func TestPlacementCandidates(t *testing.T) {
	room := geom.NewRoom(6, 5, 3)
	// A 2.5 m link: the 1–2 m constraint to *both* endpoints carves a
	// lens-shaped region with dozens of grid candidates.
	tx, rx := geom.V(1.5, 2.5, 1.5), geom.V(4, 2.5, 1.5)
	cands := DefaultPlacement.Candidates(room, tx, rx)
	if len(cands) < 20 {
		t.Fatalf("only %d placement candidates", len(cands))
	}
	for _, p := range cands {
		if !room.Contains(p) {
			t.Fatalf("candidate %v outside room", p)
		}
		if d := p.Dist(tx); d < 1 || d > 2 {
			t.Fatalf("candidate %v at %v m from TX", p, d)
		}
		if d := p.Dist(rx); d < 1 || d > 2 {
			t.Fatalf("candidate %v at %v m from RX", p, d)
		}
	}
}

func TestPlaceDeterministicAndDistinct(t *testing.T) {
	room := geom.NewRoom(6, 5, 3)
	tx, rx := geom.V(1.5, 2.5, 1.5), geom.V(4, 2.5, 1.5)
	p1, err := DefaultPlacement.Place(rand.New(rand.NewPCG(8, 8)), room, tx, rx, 3)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := DefaultPlacement.Place(rand.New(rand.NewPCG(8, 8)), room, tx, rx, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("same seed produced different placements")
		}
	}
	if p1[0] == p1[1] || p1[1] == p1[2] || p1[0] == p1[2] {
		t.Error("placements not distinct")
	}
}

func TestPlaceFailsWhenImpossible(t *testing.T) {
	room := geom.NewRoom(6, 5, 3)
	// Endpoints 10 m apart constraint-wise: nothing is within 2 m of both.
	spec := PlacementSpec{MinDist: 1, MaxDist: 1.5, GridPitch: 0.25, Height: 1.5}
	_, err := spec.Place(rand.New(rand.NewPCG(1, 1)), room, geom.V(0.5, 0.5, 1.5), geom.V(5.5, 4.5, 1.5), 3)
	if err == nil {
		t.Error("expected placement failure for impossible constraints")
	}
}
