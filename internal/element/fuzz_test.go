package element

import (
	"math"
	"testing"
)

// FuzzParseState throws arbitrary strings at the notation parser: it
// must never panic, and anything it accepts must round-trip through
// String back to an equivalent state.
func FuzzParseState(f *testing.F) {
	for _, seed := range []string{"T", "0", "0.5π", "π", "1.5pi", "2rad", "", "x", "-0.5π", "1e3π"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		st, err := ParseState(s)
		if err != nil {
			return
		}
		if st.Kind == Reflect && (math.IsNaN(st.PhaseRad) || math.IsInf(st.PhaseRad, 0)) {
			t.Fatalf("accepted non-finite phase from %q", s)
		}
		back, err := ParseState(st.String())
		if err != nil {
			t.Fatalf("String output %q of parsed %q does not re-parse: %v", st.String(), s, err)
		}
		if back.Kind != st.Kind {
			t.Fatalf("kind changed through round trip of %q", s)
		}
		if st.Kind == Reflect {
			// String formats with limited precision; allow that rounding.
			tol := 1e-3 * (1 + math.Abs(st.PhaseRad))
			if math.Abs(back.PhaseRad-st.PhaseRad) > tol {
				t.Fatalf("phase drifted through round trip of %q: %v → %v", s, st.PhaseRad, back.PhaseRad)
			}
		}
	})
}
