package element

import (
	"fmt"
	"math/rand/v2"

	"press/internal/geom"
	"press/internal/rfphys"
)

// PlacementSpec describes how to scatter PRESS elements around a link,
// reproducing the paper's §3.2 methodology: "we place the PRESS antennas
// in eight randomly generated locations in a grid 1–2 meters from both
// the transmitting and receiving antennas".
type PlacementSpec struct {
	// MinDist and MaxDist bound the distance from each grid point to
	// *both* endpoints (metres). The paper uses 1–2 m.
	MinDist, MaxDist float64
	// GridPitch is the spacing of candidate grid points (metres);
	// defaults to 0.25 when zero.
	GridPitch float64
	// Height is the mounting height of the elements; defaults to 1.5 m.
	Height float64
}

// DefaultPlacement is the paper's placement recipe.
var DefaultPlacement = PlacementSpec{MinDist: 1, MaxDist: 2, GridPitch: 0.25, Height: 1.5}

// Candidates enumerates every grid point inside the room satisfying the
// distance constraints to tx and rx.
func (s PlacementSpec) Candidates(room geom.Room, tx, rx geom.Vec) []geom.Vec {
	pitch := s.GridPitch
	if pitch <= 0 {
		pitch = 0.25
	}
	h := s.Height
	if h == 0 {
		h = 1.5
	}
	var out []geom.Vec
	for x := pitch; x < room.Size.X; x += pitch {
		for y := pitch; y < room.Size.Y; y += pitch {
			p := geom.V(x, y, h)
			dt, dr := p.Dist(tx), p.Dist(rx)
			if dt >= s.MinDist && dt <= s.MaxDist && dr >= s.MinDist && dr <= s.MaxDist {
				out = append(out, p)
			}
		}
	}
	return out
}

// Place draws n distinct element positions uniformly from the candidate
// grid using rng. It fails when fewer than n candidates exist — a
// geometry problem the caller should surface, not mask.
func (s PlacementSpec) Place(rng *rand.Rand, room geom.Room, tx, rx geom.Vec, n int) ([]geom.Vec, error) {
	cands := s.Candidates(room, tx, rx)
	if len(cands) < n {
		return nil, fmt.Errorf("element: only %d candidate positions for %d elements (room %v, constraints %g–%g m)",
			len(cands), n, room.Size, s.MinDist, s.MaxDist)
	}
	rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	return cands[:n], nil
}

// NewParabolicElement builds the paper's prototype element: a 14 dBi,
// 21°-beamwidth grid parabolic (Laird GD24BP) aimed at `aim`, behind the
// SP4T stub bank, with 1 dB of switch insertion loss. Grid parabolics
// have relatively high near-in sidelobes (≈ −13 dB), which matters here:
// a bistatic element illuminates one endpoint through the main lobe and
// the other through a sidelobe.
func NewParabolicElement(pos, aim geom.Vec) *Element {
	return &Element{
		Pos: pos,
		Pattern: rfphys.Parabolic{
			Boresight:    aim.Sub(pos),
			PeakGainDBi:  14,
			BeamwidthDeg: 21,
			SidelobeDB:   -13,
		},
		LossDB: 1,
		States: SP4TStates(),
	}
}

// NewOmniElement builds the omnidirectional element variant the paper
// also experiments with: a 2 dBi omni behind the SP4T bank.
func NewOmniElement(pos geom.Vec) *Element {
	return &Element{
		Pos:     pos,
		Pattern: rfphys.Omni{PeakGainDBi: 2},
		LossDB:  1,
		States:  SP4TStates(),
	}
}

// NewActiveElement builds an active re-radiating element (§2's
// PhyCloak-style design point): an omni with net re-radiation gain, used
// by the passive/active ablation and the line-of-sight experiments where
// passive reflections are too weak.
func NewActiveElement(pos geom.Vec, gainDB float64) *Element {
	return &Element{
		Pos:          pos,
		Pattern:      rfphys.Omni{PeakGainDBi: 2},
		ActiveGainDB: gainDB,
		States:       SP4TStates(),
	}
}
