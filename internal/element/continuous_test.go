package element

import (
	"math"
	"math/cmplx"
	"testing"

	"press/internal/geom"
	"press/internal/propagation"
	"press/internal/rfphys"
)

func TestContinuousReflection(t *testing.T) {
	e := NewOmniElement(geom.V(1, 1, 1))
	// Phase 0: same as discrete state 0.
	rc, dc := e.ContinuousReflection(0, lambda)
	rd, dd := e.Reflection(0, lambda)
	if rc != rd || dc != dd {
		t.Errorf("continuous phase 0 (%v,%v) != discrete state 0 (%v,%v)", rc, dc, rd, dd)
	}
	// Phase π/2: same delay as discrete state 1.
	_, dc = e.ContinuousReflection(math.Pi/2, lambda)
	_, dd = e.Reflection(1, lambda)
	if math.Abs(dc-dd) > 1e-22 {
		t.Errorf("continuous π/2 delay %v != discrete %v", dc, dd)
	}
	// Off: terminated.
	if r, _ := e.ContinuousReflection(Off, lambda); r != 0 {
		t.Errorf("Off reflection = %v", r)
	}
	// Arbitrary phase: delay scales linearly.
	_, d1 := e.ContinuousReflection(1.0, lambda)
	_, d2 := e.ContinuousReflection(2.0, lambda)
	if math.Abs(d2-2*d1) > 1e-22 {
		t.Errorf("delay not linear in phase: %v vs %v", d1, d2)
	}
}

func TestContinuousConfigWrap(t *testing.T) {
	c := ContinuousConfig{-math.Pi / 2, 5 * math.Pi, Off, 0}
	c.Wrap()
	if math.Abs(c[0]-1.5*math.Pi) > 1e-12 {
		t.Errorf("wrap(-π/2) = %v", c[0])
	}
	if math.Abs(c[1]-math.Pi) > 1e-12 {
		t.Errorf("wrap(5π) = %v", c[1])
	}
	if !math.IsNaN(c[2]) {
		t.Error("wrap clobbered Off")
	}
	if c[3] != 0 {
		t.Errorf("wrap(0) = %v", c[3])
	}
}

func TestValidateContinuous(t *testing.T) {
	a := threeElementArray()
	if err := a.ValidateContinuous(ContinuousConfig{0, 1, Off}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := a.ValidateContinuous(ContinuousConfig{0, 1}); err == nil {
		t.Error("short config accepted")
	}
	if err := a.ValidateContinuous(ContinuousConfig{0, math.Inf(1), 0}); err == nil {
		t.Error("infinite phase accepted")
	}
}

func TestContinuousPathsMatchDiscreteAtBankPhases(t *testing.T) {
	env := propagation.NewEnvironment(6, 5, 3)
	tx := propagation.Node{Pos: geom.V(1, 2.5, 1.5)}
	rx := propagation.Node{Pos: geom.V(5, 2.5, 1.5)}
	a := threeElementArray()

	// Discrete config {0,1,2} ≡ continuous {0, π/2, π}.
	disc := a.Paths(env, tx, rx, Config{0, 1, 2}, lambda)
	cont := a.ContinuousPaths(env, tx, rx, ContinuousConfig{0, math.Pi / 2, math.Pi}, lambda)
	if len(disc) != len(cont) {
		t.Fatalf("path counts differ: %d vs %d", len(disc), len(cont))
	}
	for i := range disc {
		if cmplx.Abs(disc[i].Gain-cont[i].Gain) > 1e-15 ||
			math.Abs(disc[i].Delay-cont[i].Delay) > 1e-22 {
			t.Fatalf("path %d differs between discrete and continuous", i)
		}
	}
	// Off suppresses the element's path.
	off := a.ContinuousPaths(env, tx, rx, ContinuousConfig{0, Off, math.Pi}, lambda)
	if len(off) != 2 {
		t.Errorf("Off element still contributed: %d paths", len(off))
	}
}

func TestContinuousPhaseBeatsDiscreteAtCarrier(t *testing.T) {
	// The point of finer phases (§4.1): a continuous phase can align an
	// element path exactly, where the SP4T bank quantizes to within π/4.
	env := propagation.NewEnvironment(6, 5, 3)
	tx := propagation.Node{Pos: geom.V(1, 2.5, 1.5)}
	rx := propagation.Node{Pos: geom.V(5, 2.5, 1.5)}
	a := NewArray(NewOmniElement(geom.V(3, 1, 1.5)))
	fc := rfphys.SpeedOfLight / lambda

	// Target: maximize |H| of the element path alone against a reference
	// phasor e^{-j0.7} (an awkward phase for the 0/π2/π bank).
	ref := cmplx.Exp(complex(0, -0.7))
	scoreOf := func(h complex128) float64 { return cmplx.Abs(ref + h) }

	bestDisc := math.Inf(-1)
	for si := 0; si < 4; si++ {
		h := propagation.ResponseAt(a.Paths(env, tx, rx, Config{si}, lambda), fc, 0)
		if s := scoreOf(h / complex(cmplx.Abs(h)+1e-30, 0)); s > bestDisc && cmplx.Abs(h) > 0 {
			bestDisc = s
		}
	}
	bestCont := math.Inf(-1)
	for p := 0.0; p < 2*math.Pi; p += 0.01 {
		h := propagation.ResponseAt(a.ContinuousPaths(env, tx, rx, ContinuousConfig{p}, lambda), fc, 0)
		if s := scoreOf(h / complex(cmplx.Abs(h), 0)); s > bestCont {
			bestCont = s
		}
	}
	if bestCont <= bestDisc {
		t.Errorf("continuous phases (%v) did not beat the 3-phase bank (%v)", bestCont, bestDisc)
	}
}

func TestQuantizeContinuous(t *testing.T) {
	a := threeElementArray() // SP4T: 0, π/2, π, T
	cfg := a.QuantizeContinuous(ContinuousConfig{0.1, math.Pi/2 + 0.2, Off})
	if cfg[0] != 0 {
		t.Errorf("0.1 rad quantized to state %d, want 0", cfg[0])
	}
	if cfg[1] != 1 {
		t.Errorf("π/2+0.2 quantized to state %d, want 1", cfg[1])
	}
	if a.Elements[2].States[cfg[2]].Kind != Terminate {
		t.Errorf("Off quantized to state %d, want terminate", cfg[2])
	}
	// Circular wrap: a phase just below 2π is nearest to 0.
	cfg = a.QuantizeContinuous(ContinuousConfig{2*math.Pi - 0.05, 0, 0})
	if cfg[0] != 0 {
		t.Errorf("2π−0.05 quantized to state %d, want 0", cfg[0])
	}
	if err := a.Validate(cfg); err != nil {
		t.Errorf("quantized config invalid: %v", err)
	}
}

func TestCircularDist(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{0, 0, 0},
		{0, math.Pi, math.Pi},
		{0.1, 2*math.Pi - 0.1, 0.2},
		{3 * math.Pi, 0, math.Pi},
	}
	for _, c := range cases {
		if got := circularDist(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("circularDist(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}
