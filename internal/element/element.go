package element

import (
	"fmt"
	"math"

	"press/internal/geom"
	"press/internal/propagation"
	"press/internal/rfphys"
)

// Element is one PRESS element: an antenna at a fixed position whose
// reflection state is electronically switched among States.
type Element struct {
	// Pos is the element's location in the room.
	Pos geom.Vec
	// Pattern is the element antenna's gain pattern; it applies twice to
	// the bistatic path (incidence and re-radiation). Nil means isotropic.
	Pattern rfphys.Pattern
	// LossDB is the element's internal one-pass loss in dB (switch
	// insertion loss, mismatch); a passive element has LossDB ≥ 0.
	LossDB float64
	// ActiveGainDB is extra re-radiation gain for *active* elements
	// (§2's full-duplex obfuscator-style designs); 0 for passive.
	ActiveGainDB float64
	// States is the selectable switch bank; defaults to SP4TStates when
	// empty.
	States []State
}

// states returns the element's switch bank, defaulting to the paper's
// SP4T prototype.
func (e *Element) states() []State {
	if len(e.States) == 0 {
		return SP4TStates()
	}
	return e.States
}

// NumStates returns the number of selectable states.
func (e *Element) NumStates() int { return len(e.states()) }

// Reflection returns the complex reflection gain and the extra internal
// delay of state index si at wavelength lambdaM. A terminated state
// returns (0, 0). The switched phase is realized as stub delay —
// PhaseRad/2π wavelengths of extra round-trip path — so it is physical
// (slightly dispersive across a wide band) rather than an idealized
// frequency-flat rotation.
func (e *Element) Reflection(si int, lambdaM float64) (complex128, float64) {
	st := e.states()[si]
	if st.Kind == Terminate {
		return 0, 0
	}
	amp := rfphys.DBToAmplitude(e.ActiveGainDB - e.LossDB)
	stubLen := st.PhaseRad / (2 * math.Pi) * lambdaM
	return complex(amp, 0), stubLen / rfphys.SpeedOfLight
}

// Array is an ordered set of PRESS elements controlled together.
type Array struct {
	Elements []*Element
}

// NewArray builds an array over the given elements.
func NewArray(elems ...*Element) *Array { return &Array{Elements: elems} }

// N returns the number of elements.
func (a *Array) N() int { return len(a.Elements) }

// Config selects one state index per element. The zero-length Config is
// only valid for an empty array.
type Config []int

// Clone returns an independent copy of c.
func (c Config) Clone() Config { return append(Config(nil), c...) }

// Equal reports whether two configurations are identical.
func (c Config) Equal(d Config) bool {
	if len(c) != len(d) {
		return false
	}
	for i := range c {
		if c[i] != d[i] {
			return false
		}
	}
	return true
}

// Validate checks that c selects a valid state for every element of a.
func (a *Array) Validate(c Config) error {
	if len(c) != a.N() {
		return fmt.Errorf("element: config has %d entries for %d elements", len(c), a.N())
	}
	for i, si := range c {
		if si < 0 || si >= a.Elements[i].NumStates() {
			return fmt.Errorf("element: config[%d] = %d out of range [0,%d)", i, si, a.Elements[i].NumStates())
		}
	}
	return nil
}

// NumConfigs returns the size of the configuration space Π_i M_i — the
// paper's "MN possibilities" (§4.2). It saturates at math.MaxInt on
// overflow.
func (a *Array) NumConfigs() int {
	total := 1
	for _, e := range a.Elements {
		m := e.NumStates()
		if total > math.MaxInt/m {
			return math.MaxInt
		}
		total *= m
	}
	return total
}

// ConfigAt returns the idx-th configuration in mixed-radix order, where
// element 0 is the least significant digit. It panics when idx is out of
// range.
func (a *Array) ConfigAt(idx int) Config {
	if idx < 0 || idx >= a.NumConfigs() {
		panic(fmt.Sprintf("element: config index %d out of range [0,%d)", idx, a.NumConfigs()))
	}
	c := make(Config, a.N())
	for i, e := range a.Elements {
		m := e.NumStates()
		c[i] = idx % m
		idx /= m
	}
	return c
}

// Index returns the mixed-radix index of configuration c, the inverse of
// ConfigAt. It panics on an invalid configuration.
func (a *Array) Index(c Config) int {
	if err := a.Validate(c); err != nil {
		panic(err)
	}
	idx, scale := 0, 1
	for i, e := range a.Elements {
		idx += c[i] * scale
		scale *= e.NumStates()
	}
	return idx
}

// EachConfig calls fn for every configuration in mixed-radix order. The
// Config passed to fn is reused between calls; clone it to retain. fn
// returning false stops the iteration early.
func (a *Array) EachConfig(fn func(idx int, c Config) bool) {
	n := a.NumConfigs()
	c := make(Config, a.N())
	for idx := 0; idx < n; idx++ {
		if !fn(idx, c) {
			return
		}
		// Increment the mixed-radix counter.
		for i := 0; i < len(c); i++ {
			c[i]++
			if c[i] < a.Elements[i].NumStates() {
				break
			}
			c[i] = 0
		}
	}
}

// AllTerminated returns the configuration selecting the absorptive state
// of every element, or ok=false if some element has no Terminate state.
// This is the natural "PRESS off" baseline: the array contributes no
// reflection paths.
func (a *Array) AllTerminated() (Config, bool) {
	c := make(Config, a.N())
	for i, e := range a.Elements {
		found := false
		for si, st := range e.states() {
			if st.Kind == Terminate {
				c[i] = si
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	return c, true
}

// String renders a configuration over array a in the paper's notation,
// e.g. "(π, 0, 0.5π)" or "(0.5π, T, 0.5π)".
func (a *Array) String(c Config) string {
	if err := a.Validate(c); err != nil {
		return fmt.Sprintf("invalid-config(%v)", []int(c))
	}
	parts := make([]string, a.N())
	for i, si := range c {
		parts[i] = a.Elements[i].states()[si].String()
	}
	return "(" + joinComma(parts) + ")"
}

func joinComma(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}

// Paths returns the propagation paths the array contributes between tx
// and rx under configuration c at wavelength lambdaM: one bistatic path
// per non-terminated element. Terminated elements contribute nothing, so
// the all-terminated configuration returns an empty slice — exactly the
// paper's observation that terminated arrays leave only environmental
// reflections.
func (a *Array) Paths(env *propagation.Environment, tx, rx propagation.Node,
	c Config, lambdaM float64) []propagation.Path {

	if err := a.Validate(c); err != nil {
		panic(err)
	}
	var paths []propagation.Path
	for i, e := range a.Elements {
		refl, extra := e.Reflection(c[i], lambdaM)
		if p, ok := propagation.BistaticPath(env, tx, rx, e.Pos, e.Pattern, refl, extra, lambdaM); ok {
			paths = append(paths, p)
		}
	}
	return paths
}
