package element

import (
	"fmt"

	"press/internal/propagation"
)

// This file models element failures — the §2 operational challenge of
// how to "deploy, power, and maintain the PRESS array". A wall element
// that loses power or whose switch jams keeps affecting the channel; the
// question is whether the closed measurement loop routes around it.

// FaultKind classifies element failures.
type FaultKind int

// Fault kinds.
const (
	// StuckAt jams the switch in one state regardless of commands — a
	// failed switch driver.
	StuckAt FaultKind = iota
	// Dead removes the element's reflection entirely — a lost antenna
	// connection (electrically close to a terminated state).
	Dead
)

// Fault is one element's failure mode.
type Fault struct {
	Kind FaultKind
	// State is the jammed state index for StuckAt.
	State int
}

// Faults maps element index → failure. Elements absent from the map are
// healthy.
type Faults map[int]Fault

// Validate checks the fault plan against the array.
func (a *Array) ValidateFaults(f Faults) error {
	for idx, fault := range f {
		if idx < 0 || idx >= a.N() {
			return fmt.Errorf("element: fault on element %d of %d", idx, a.N())
		}
		if fault.Kind == StuckAt {
			if fault.State < 0 || fault.State >= a.Elements[idx].NumStates() {
				return fmt.Errorf("element: element %d stuck at invalid state %d", idx, fault.State)
			}
		}
	}
	return nil
}

// PathsWithFaults is Paths under a failure plan: commands to stuck
// elements are silently overridden by the jammed state, dead elements
// contribute nothing. The controller does not see the overrides except
// through the channel itself — exactly the real-world situation.
func (a *Array) PathsWithFaults(env *propagation.Environment, tx, rx propagation.Node,
	c Config, faults Faults, lambdaM float64) []propagation.Path {

	if err := a.Validate(c); err != nil {
		panic(err)
	}
	if err := a.ValidateFaults(faults); err != nil {
		panic(err)
	}
	var paths []propagation.Path
	for i, e := range a.Elements {
		si := c[i]
		if fault, broken := faults[i]; broken {
			switch fault.Kind {
			case StuckAt:
				si = fault.State
			case Dead:
				continue
			}
		}
		refl, extra := e.Reflection(si, lambdaM)
		if p, ok := propagation.BistaticPath(env, tx, rx, e.Pos, e.Pattern, refl, extra, lambdaM); ok {
			paths = append(paths, p)
		}
	}
	return paths
}
