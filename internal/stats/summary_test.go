package stats

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"

	"press/internal/obs"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= tol
}

func TestMeanBasic(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"single", []float64{4}, 4},
		{"pair", []float64{2, 4}, 3},
		{"negatives", []float64{-1, 1, -3, 3}, 0},
		{"constant", []float64{7, 7, 7}, 7},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
			}
		})
	}
}

func TestMeanEmptyIsNaN(t *testing.T) {
	if got := Mean(nil); !math.IsNaN(got) {
		t.Errorf("Mean(nil) = %v, want NaN", got)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	in := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n-1 denominator: sum of squared deviations = 32,
	// 32/7.
	want := 32.0 / 7.0
	if got := Variance(in); !almostEqual(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if got := StdDev(in); !almostEqual(got, math.Sqrt(want), 1e-12) {
		t.Errorf("StdDev = %v, want %v", got, math.Sqrt(want))
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of single sample should be NaN")
	}
}

func TestMinMaxIdx(t *testing.T) {
	in := []float64{3, -2, 5, -2, 5}
	if v, i := MinIdx(in); v != -2 || i != 1 {
		t.Errorf("MinIdx = (%v,%d), want (-2,1)", v, i)
	}
	if v, i := MaxIdx(in); v != 5 || i != 2 {
		t.Errorf("MaxIdx = (%v,%d), want (5,2)", v, i)
	}
}

func TestMinIdxPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MinIdx(nil) did not panic")
		}
	}()
	MinIdx(nil)
}

func TestMedianOddEven(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("Median odd = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("Median even = %v, want 2.5", got)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	in := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3.0, 20}, {0.25, 17.5},
	}
	for _, c := range cases {
		if got := Quantile(in, c.p); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestQuantileClampsP(t *testing.T) {
	in := []float64{1, 2, 3}
	if got := Quantile(in, -0.5); got != 1 {
		t.Errorf("Quantile(-0.5) = %v, want 1", got)
	}
	if got := Quantile(in, 1.5); got != 3 {
		t.Errorf("Quantile(1.5) = %v, want 3", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Quantile(in, 0.5)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Quantile mutated its input: %v", in)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	e := Summarize(nil)
	if e.N != 0 || !math.IsNaN(e.Mean) || !math.IsNaN(e.Min) {
		t.Errorf("Summarize(nil) = %+v, want NaNs", e)
	}
}

// Property: the mean always lies between min and max.
func TestMeanBoundedProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			// Bound magnitudes so the running sum cannot overflow.
			if !math.IsNaN(x) && math.Abs(x) < 1e150 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Mean(clean)
		return m >= Min(clean)-1e-9*math.Abs(Min(clean))-1e-9 &&
			m <= Max(clean)+1e-9*math.Abs(Max(clean))+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: shifting every sample by c shifts mean and quantiles by c and
// leaves the variance unchanged.
func TestShiftInvarianceProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.IntN(40)
		xs := make([]float64, n)
		ys := make([]float64, n)
		c := rng.NormFloat64() * 10
		for i := range xs {
			xs[i] = rng.NormFloat64() * 5
			ys[i] = xs[i] + c
		}
		if !almostEqual(Mean(ys), Mean(xs)+c, 1e-9) {
			t.Fatalf("mean not shift-equivariant (trial %d)", trial)
		}
		if !almostEqual(Variance(ys), Variance(xs), 1e-8) {
			t.Fatalf("variance not shift-invariant (trial %d)", trial)
		}
		if !almostEqual(Median(ys), Median(xs)+c, 1e-9) {
			t.Fatalf("median not shift-equivariant (trial %d)", trial)
		}
	}
}

func TestSummaryFields(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	f := s.Fields()
	if len(f) != 12 {
		t.Fatalf("fields = %d entries, want 12 (6 kv pairs)", len(f))
	}
	got := map[string]any{}
	for i := 0; i < len(f); i += 2 {
		got[f[i].(string)] = f[i+1]
	}
	if got["n"] != 3 || got["mean"] != 2.0 || got["median"] != 2.0 {
		t.Errorf("fields = %v", got)
	}
}

func TestSummaryLog(t *testing.T) {
	var buf strings.Builder
	l := obs.NewLogger(&buf, obs.LevelInfo, obs.Logfmt)
	Summarize([]float64{1, 2, 3}).Log(l, "snr summary")
	out := buf.String()
	for _, want := range []string{"msg=\"snr summary\"", "n=3", "mean=2", "min=1", "max=3"} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %q:\n%s", want, out)
		}
	}
	// Nil logger and gated levels are no-ops, not panics.
	Summarize(nil).Log(nil, "ignored")
	gated := obs.NewLogger(&buf, obs.LevelError, obs.Logfmt)
	before := buf.Len()
	Summarize([]float64{1}).Log(gated, "gated")
	if buf.Len() != before {
		t.Error("gated logger still wrote")
	}
}
