package stats

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestECDFBasic(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.CDF(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("CDF(%v) = %v, want %v", c.x, got, c.want)
		}
		if got := e.CCDF(c.x); !almostEqual(got, 1-c.want, 1e-12) {
			t.Errorf("CCDF(%v) = %v, want %v", c.x, got, 1-c.want)
		}
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if e.N() != 0 {
		t.Errorf("N = %d, want 0", e.N())
	}
	if !math.IsNaN(e.CDF(1)) || !math.IsNaN(e.CCDF(1)) || !math.IsNaN(e.Quantile(0.5)) {
		t.Error("empty ECDF should return NaN everywhere")
	}
}

func TestECDFDropsNaN(t *testing.T) {
	e := NewECDF([]float64{1, math.NaN(), 3})
	if e.N() != 2 {
		t.Errorf("N = %d, want 2 after dropping NaN", e.N())
	}
}

func TestECDFQuantile(t *testing.T) {
	e := NewECDF([]float64{10, 20, 30, 40})
	cases := []struct{ p, want float64 }{
		{0, 10}, {0.25, 10}, {0.26, 20}, {0.5, 20}, {0.75, 30}, {1, 40},
	}
	for _, c := range cases {
		if got := e.Quantile(c.p); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestECDFPointsCollapseDuplicates(t *testing.T) {
	e := NewECDF([]float64{5, 5, 5, 7})
	pts := e.Points()
	if len(pts) != 2 {
		t.Fatalf("Points len = %d, want 2", len(pts))
	}
	if pts[0].X != 5 || !almostEqual(pts[0].Y, 0.75, 1e-12) {
		t.Errorf("first point = %+v", pts[0])
	}
	if pts[1].X != 7 || pts[1].Y != 1 {
		t.Errorf("second point = %+v", pts[1])
	}
}

func TestCCDFPointsComplementPoints(t *testing.T) {
	e := NewECDF([]float64{1, 4, 9, 16, 25})
	cdf, ccdf := e.Points(), e.CCDFPoints()
	if len(cdf) != len(ccdf) {
		t.Fatalf("length mismatch %d vs %d", len(cdf), len(ccdf))
	}
	for i := range cdf {
		if cdf[i].X != ccdf[i].X || !almostEqual(cdf[i].Y+ccdf[i].Y, 1, 1e-12) {
			t.Errorf("point %d: CDF %+v vs CCDF %+v", i, cdf[i], ccdf[i])
		}
	}
}

func TestHistogram(t *testing.T) {
	counts := Histogram([]float64{0, 0.5, 1, 1.5, 2.5, -4, 99}, 0, 3, 3)
	// bins: [0,1): {0, 0.5, -4 clamped} = 3; [1,2): {1, 1.5} = 2;
	// [2,3]: {2.5, 99 clamped} = 2.
	want := []int{3, 2, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("bin %d = %d, want %d (all %v)", i, counts[i], want[i], counts)
		}
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, bad := range []func(){
		func() { Histogram(nil, 0, 1, 0) },
		func() { Histogram(nil, 1, 1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		}()
	}
}

// Property: CDF is monotone non-decreasing and bounded in [0,1].
func TestECDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		e := NewECDF(raw)
		if e.N() == 0 {
			return true
		}
		probe := append([]float64(nil), e.sorted...)
		probe = append(probe, e.sorted[0]-1, e.sorted[len(e.sorted)-1]+1)
		sort.Float64s(probe)
		prev := -1.0
		for _, x := range probe {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			y := e.CDF(x)
			if y < prev-1e-12 || y < 0 || y > 1 {
				return false
			}
			prev = y
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Quantile and CDF are near-inverse: CDF(Quantile(p)) ≥ p.
func TestECDFQuantileInverseProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.IntN(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		e := NewECDF(xs)
		p := rng.Float64()
		if got := e.CDF(e.Quantile(p)); got < p-1e-12 {
			t.Fatalf("CDF(Quantile(%v)) = %v < p (trial %d)", p, got, trial)
		}
	}
}
