package stats

import (
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function built from a
// sample. The zero value is not useful; construct with NewECDF.
//
// ECDF backs every CDF/CCDF curve in the paper's figures (Figs 5, 6, 8):
// the experiment harnesses collect raw samples and render them through
// this type so that all curves share one definition of the empirical
// distribution (right-continuous step function, P(X ≤ x)).
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from the sample xs. The input is copied, so the
// caller may reuse its slice. NaN values are dropped: they carry no order
// information and would poison the sort.
func NewECDF(xs []float64) *ECDF {
	sorted := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			sorted = append(sorted, x)
		}
	}
	sort.Float64s(sorted)
	return &ECDF{sorted: sorted}
}

// N returns the number of (non-NaN) samples behind the distribution.
func (e *ECDF) N() int { return len(e.sorted) }

// CDF returns P(X ≤ x), the fraction of samples that are ≤ x.
// It returns NaN when the distribution is empty.
func (e *ECDF) CDF(x float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	// Index of the first sample > x; everything before it is ≤ x.
	n := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(n) / float64(len(e.sorted))
}

// CCDF returns P(X > x), the complementary CDF. The paper's Figures 5 and 6
// plot this quantity on a log axis. It returns NaN when the distribution is
// empty.
func (e *ECDF) CCDF(x float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	return 1 - e.CDF(x)
}

// Quantile returns the smallest sample value v such that CDF(v) ≥ p,
// for p in (0, 1]. Quantile(0) returns the smallest sample. It returns
// NaN when the distribution is empty.
func (e *ECDF) Quantile(p float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return e.sorted[0]
	}
	if p >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	idx := int(math.Ceil(p*float64(len(e.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return e.sorted[idx]
}

// Point is one (x, y) pair of a rendered distribution curve.
type Point struct {
	X float64
	Y float64
}

// Points renders the full ECDF as a step curve: one point per distinct
// sample value, y = P(X ≤ x). The result is suitable for direct plotting
// or for the row printers in internal/experiments.
func (e *ECDF) Points() []Point {
	return e.curve(e.CDF)
}

// CCDFPoints renders the complementary CDF the same way Points renders the
// CDF. This is the exact series the paper's Figures 5 and 6 display.
func (e *ECDF) CCDFPoints() []Point {
	return e.curve(e.CCDF)
}

func (e *ECDF) curve(f func(float64) float64) []Point {
	pts := make([]Point, 0, len(e.sorted))
	for i, x := range e.sorted {
		if i > 0 && x == e.sorted[i-1] {
			continue // collapse duplicate sample values into one step
		}
		pts = append(pts, Point{X: x, Y: f(x)})
	}
	return pts
}

// Histogram counts samples into nbins equal-width bins spanning [lo, hi].
// Samples outside the range are clamped into the first or last bin, which
// is the convention the sweep harnesses want for dB-valued data with a
// known plotting range. It panics if nbins < 1 or hi ≤ lo.
func Histogram(xs []float64, lo, hi float64, nbins int) []int {
	if nbins < 1 {
		panic("stats: Histogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: Histogram range must satisfy lo < hi")
	}
	counts := make([]int, nbins)
	width := (hi - lo) / float64(nbins)
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		bin := int((x - lo) / width)
		if bin < 0 {
			bin = 0
		}
		if bin >= nbins {
			bin = nbins - 1
		}
		counts[bin]++
	}
	return counts
}
