package stats

import "math"

// KSDistance returns the two-sample Kolmogorov–Smirnov statistic between
// two empirical distributions: the largest vertical gap between their
// CDFs. The experiment harnesses use it to quantify how similar the
// per-trial distribution curves are (the paper's Figures 5, 6 and 8 all
// overlay such families) and the tests use it to assert reproducibility
// across trials. It returns NaN when either distribution is empty.
func KSDistance(a, b *ECDF) float64 {
	if a.N() == 0 || b.N() == 0 {
		return math.NaN()
	}
	var worst float64
	// The supremum is attained at a sample point of either distribution.
	for _, x := range a.sorted {
		if d := math.Abs(a.CDF(x) - b.CDF(x)); d > worst {
			worst = d
		}
		// Also check just below the step.
		below := math.Nextafter(x, math.Inf(-1))
		if d := math.Abs(a.CDF(below) - b.CDF(below)); d > worst {
			worst = d
		}
	}
	for _, x := range b.sorted {
		if d := math.Abs(a.CDF(x) - b.CDF(x)); d > worst {
			worst = d
		}
		below := math.Nextafter(x, math.Inf(-1))
		if d := math.Abs(a.CDF(below) - b.CDF(below)); d > worst {
			worst = d
		}
	}
	return worst
}
