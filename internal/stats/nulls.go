package stats

import "math"

// DefaultNullDepthDB is the null-detection threshold used throughout the
// paper's §3.2.1: a configuration "exhibits a null" only if some subcarrier
// SNR sits at least this many dB below the median subcarrier SNR.
const DefaultNullDepthDB = 5.0

// Null describes the most significant frequency null of one per-subcarrier
// SNR curve: the subcarrier index with the minimum SNR, qualified by how far
// below the median that minimum sits.
type Null struct {
	// Subcarrier is the index (into the SNR vector) of the minimum.
	Subcarrier int
	// SNRdB is the SNR at the null.
	SNRdB float64
	// DepthDB is median(SNR) − SNR[null], i.e. how deep the null is.
	DepthDB float64
}

// MostSignificantNull finds the deepest null of the per-subcarrier SNR
// curve snrDB, following the paper's definition: the subcarrier of the
// minimum SNR, counted as a null only when it is at least minDepthDB below
// the median subcarrier SNR. The boolean reports whether the curve
// qualifies. An empty curve never qualifies.
func MostSignificantNull(snrDB []float64, minDepthDB float64) (Null, bool) {
	if len(snrDB) == 0 {
		return Null{}, false
	}
	minVal, minIdx := MinIdx(snrDB)
	med := Median(snrDB)
	depth := med - minVal
	n := Null{Subcarrier: minIdx, SNRdB: minVal, DepthDB: depth}
	return n, depth >= minDepthDB && !math.IsNaN(depth)
}

// NullMovement returns the distance, in subcarriers, between the most
// significant nulls of two SNR curves. Following Figure 5 of the paper, the
// pair contributes a sample only when *both* curves exhibit a null at least
// minDepthDB below their medians; the boolean reports that condition.
func NullMovement(snrA, snrB []float64, minDepthDB float64) (int, bool) {
	na, oka := MostSignificantNull(snrA, minDepthDB)
	nb, okb := MostSignificantNull(snrB, minDepthDB)
	if !oka || !okb {
		return 0, false
	}
	d := na.Subcarrier - nb.Subcarrier
	if d < 0 {
		d = -d
	}
	return d, true
}

// PairwiseNullMovements computes the null-movement sample set over all
// ordered pairs of configurations, exactly as Figure 5 does for the 64²
// pairs of PRESS element configurations. curves[i] is the per-subcarrier
// SNR of configuration i. Pairs where either curve lacks a qualifying null
// are skipped. The result holds one float per qualifying pair (float64 so
// it feeds directly into NewECDF).
func PairwiseNullMovements(curves [][]float64, minDepthDB float64) []float64 {
	var moves []float64
	for i := range curves {
		for j := range curves {
			if m, ok := NullMovement(curves[i], curves[j], minDepthDB); ok {
				moves = append(moves, float64(m))
			}
		}
	}
	return moves
}

// PairwiseMinSNRChanges computes |min(SNR_i) − min(SNR_j)| over all ordered
// pairs of configurations — the sample set behind the left panel of
// Figure 6 (change in minimum subcarrier SNR between pairs of PRESS
// element configurations). Empty curves are skipped.
func PairwiseMinSNRChanges(curves [][]float64) []float64 {
	var changes []float64
	for i := range curves {
		if len(curves[i]) == 0 {
			continue
		}
		mi := Min(curves[i])
		for j := range curves {
			if len(curves[j]) == 0 {
				continue
			}
			changes = append(changes, math.Abs(mi-Min(curves[j])))
		}
	}
	return changes
}

// MinPerCurve returns min(SNR) for each configuration curve — the sample
// set behind the right panel of Figure 6 (minimum SNR among subcarriers for
// all 64 PRESS element configurations). Empty curves yield NaN entries,
// which NewECDF subsequently drops.
func MinPerCurve(curves [][]float64) []float64 {
	mins := make([]float64, len(curves))
	for i, c := range curves {
		if len(c) == 0 {
			mins[i] = math.NaN()
			continue
		}
		mins[i] = Min(c)
	}
	return mins
}

// LargestPairDifference finds the pair of configuration curves with the
// largest single-subcarrier SNR difference — the selection rule of
// Figure 4, which plots "the two configurations that give the largest
// single-subcarrier SNR difference". It returns the two curve indices and
// the difference in dB. All curves must have equal length; curves shorter
// than the first are ignored. It returns ok=false when fewer than two
// comparable curves exist.
func LargestPairDifference(curves [][]float64) (i, j int, diffDB float64, ok bool) {
	bestI, bestJ, best := -1, -1, math.Inf(-1)
	for a := 0; a < len(curves); a++ {
		for b := a + 1; b < len(curves); b++ {
			if len(curves[a]) == 0 || len(curves[a]) != len(curves[b]) {
				continue
			}
			for k := range curves[a] {
				d := math.Abs(curves[a][k] - curves[b][k])
				if d > best {
					bestI, bestJ, best = a, b, d
				}
			}
		}
	}
	if bestI < 0 {
		return 0, 0, 0, false
	}
	return bestI, bestJ, best, true
}
