package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestKSIdenticalIsZero(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	a, b := NewECDF(xs), NewECDF(xs)
	if d := KSDistance(a, b); d != 0 {
		t.Errorf("KS of identical samples = %v", d)
	}
}

func TestKSDisjointIsOne(t *testing.T) {
	a := NewECDF([]float64{1, 2, 3})
	b := NewECDF([]float64{10, 11, 12})
	if d := KSDistance(a, b); math.Abs(d-1) > 1e-12 {
		t.Errorf("KS of disjoint supports = %v, want 1", d)
	}
}

func TestKSKnownValue(t *testing.T) {
	// a = {0, 1}, b = {0.5}: at x slightly below 0.5, CDF_a = 0.5 and
	// CDF_b = 0; at 0.5 they are 0.5 and 1. Max gap = 0.5.
	a := NewECDF([]float64{0, 1})
	b := NewECDF([]float64{0.5})
	if d := KSDistance(a, b); math.Abs(d-0.5) > 1e-12 {
		t.Errorf("KS = %v, want 0.5", d)
	}
}

func TestKSSymmetric(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 100; trial++ {
		xs := make([]float64, 1+rng.IntN(30))
		ys := make([]float64, 1+rng.IntN(30))
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		for i := range ys {
			ys[i] = rng.NormFloat64() + 0.3
		}
		a, b := NewECDF(xs), NewECDF(ys)
		d1, d2 := KSDistance(a, b), KSDistance(b, a)
		if math.Abs(d1-d2) > 1e-12 {
			t.Fatalf("asymmetric KS: %v vs %v", d1, d2)
		}
		if d1 < 0 || d1 > 1 {
			t.Fatalf("KS out of [0,1]: %v", d1)
		}
	}
}

func TestKSSameDistributionSmall(t *testing.T) {
	// Two large samples from the same distribution: KS should be small.
	rng := rand.New(rand.NewPCG(3, 4))
	xs := make([]float64, 2000)
	ys := make([]float64, 2000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64()
	}
	if d := KSDistance(NewECDF(xs), NewECDF(ys)); d > 0.08 {
		t.Errorf("KS of same-distribution samples = %v", d)
	}
}

func TestKSEmptyIsNaN(t *testing.T) {
	if d := KSDistance(NewECDF(nil), NewECDF([]float64{1})); !math.IsNaN(d) {
		t.Errorf("KS with empty sample = %v, want NaN", d)
	}
}
