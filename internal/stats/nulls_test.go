package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

// flatWithNull builds a flat SNR curve at base dB with one dip of the given
// depth at subcarrier idx.
func flatWithNull(n int, base float64, idx int, depth float64) []float64 {
	snr := make([]float64, n)
	for i := range snr {
		snr[i] = base
	}
	snr[idx] = base - depth
	return snr
}

func TestMostSignificantNull(t *testing.T) {
	snr := flatWithNull(52, 40, 17, 12)
	null, ok := MostSignificantNull(snr, DefaultNullDepthDB)
	if !ok {
		t.Fatal("expected a qualifying null")
	}
	if null.Subcarrier != 17 || null.SNRdB != 28 || !almostEqual(null.DepthDB, 12, 1e-12) {
		t.Errorf("null = %+v", null)
	}
}

func TestMostSignificantNullRejectsShallow(t *testing.T) {
	snr := flatWithNull(52, 40, 5, 3) // only 3 dB below median
	if _, ok := MostSignificantNull(snr, DefaultNullDepthDB); ok {
		t.Error("3 dB dip should not qualify with a 5 dB threshold")
	}
}

func TestMostSignificantNullEmpty(t *testing.T) {
	if _, ok := MostSignificantNull(nil, DefaultNullDepthDB); ok {
		t.Error("empty curve should not have a null")
	}
}

func TestNullMovement(t *testing.T) {
	a := flatWithNull(52, 40, 10, 10)
	b := flatWithNull(52, 40, 19, 10)
	m, ok := NullMovement(a, b, DefaultNullDepthDB)
	if !ok || m != 9 {
		t.Errorf("NullMovement = (%d,%v), want (9,true)", m, ok)
	}
	// Symmetric.
	m2, _ := NullMovement(b, a, DefaultNullDepthDB)
	if m2 != m {
		t.Errorf("NullMovement not symmetric: %d vs %d", m, m2)
	}
}

func TestNullMovementRequiresBothNulls(t *testing.T) {
	a := flatWithNull(52, 40, 10, 10)
	flat := flatWithNull(52, 40, 0, 0)
	if _, ok := NullMovement(a, flat, DefaultNullDepthDB); ok {
		t.Error("pair with one flat curve should not qualify")
	}
}

func TestPairwiseNullMovements(t *testing.T) {
	curves := [][]float64{
		flatWithNull(52, 40, 10, 10),
		flatWithNull(52, 40, 13, 10),
		flatWithNull(52, 40, 10, 1), // no qualifying null
	}
	moves := PairwiseNullMovements(curves, DefaultNullDepthDB)
	// Qualifying pairs: (0,0)=0 (0,1)=3 (1,0)=3 (1,1)=0.
	if len(moves) != 4 {
		t.Fatalf("got %d samples, want 4: %v", len(moves), moves)
	}
	sum := 0.0
	for _, m := range moves {
		sum += m
	}
	if sum != 6 {
		t.Errorf("sum of movements = %v, want 6", sum)
	}
}

func TestPairwiseMinSNRChanges(t *testing.T) {
	curves := [][]float64{
		{30, 40}, {20, 40},
	}
	changes := PairwiseMinSNRChanges(curves)
	if len(changes) != 4 {
		t.Fatalf("got %d samples, want 4", len(changes))
	}
	// |30-30|, |30-20|, |20-30|, |20-20| => two zeros and two tens.
	var zeros, tens int
	for _, c := range changes {
		switch c {
		case 0:
			zeros++
		case 10:
			tens++
		}
	}
	if zeros != 2 || tens != 2 {
		t.Errorf("changes = %v", changes)
	}
}

func TestMinPerCurve(t *testing.T) {
	mins := MinPerCurve([][]float64{{3, 1, 2}, {}, {5}})
	if mins[0] != 1 || !math.IsNaN(mins[1]) || mins[2] != 5 {
		t.Errorf("mins = %v", mins)
	}
}

func TestLargestPairDifference(t *testing.T) {
	curves := [][]float64{
		{40, 40, 40},
		{40, 15, 40}, // 25 dB dip at subcarrier 1
		{40, 38, 40},
	}
	i, j, d, ok := LargestPairDifference(curves)
	if !ok {
		t.Fatal("expected a pair")
	}
	if !(i == 0 && j == 1) || !almostEqual(d, 25, 1e-12) {
		t.Errorf("pair = (%d,%d,%v)", i, j, d)
	}
}

func TestLargestPairDifferenceNotEnoughCurves(t *testing.T) {
	if _, _, _, ok := LargestPairDifference([][]float64{{1, 2}}); ok {
		t.Error("single curve should not produce a pair")
	}
	if _, _, _, ok := LargestPairDifference([][]float64{{1, 2}, {1}}); ok {
		t.Error("mismatched lengths should not produce a pair")
	}
}

// Property: null movement is bounded by the curve length and symmetric for
// random curves.
func TestNullMovementBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	const n = 52
	for trial := 0; trial < 300; trial++ {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = 30 + rng.NormFloat64()*8
			b[i] = 30 + rng.NormFloat64()*8
		}
		ma, oka := NullMovement(a, b, DefaultNullDepthDB)
		mb, okb := NullMovement(b, a, DefaultNullDepthDB)
		if oka != okb || ma != mb {
			t.Fatalf("asymmetric null movement (trial %d)", trial)
		}
		if oka && (ma < 0 || ma >= n) {
			t.Fatalf("movement %d out of bounds (trial %d)", ma, trial)
		}
	}
}
