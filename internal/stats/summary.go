// Package stats provides the statistical machinery used throughout the
// PRESS reproduction: summary statistics, empirical CDF/CCDF curves,
// histograms, and the frequency-null metrics from the paper's §3.2
// (most-significant-null detection and null movement between PRESS
// configurations).
//
// All functions operate on plain []float64 so they compose with the
// per-subcarrier SNR vectors produced by internal/ofdm and internal/radio.
package stats

import (
	"math"
	"sort"

	"press/internal/obs"
)

// Mean returns the arithmetic mean of xs. It returns NaN for an empty slice,
// mirroring the behaviour of the other summary statistics so that callers
// can propagate "no data" without special cases.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance of xs.
// It returns NaN if fewer than two samples are supplied.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the smallest value in xs. It panics on an empty slice:
// every caller in this repository has already established non-emptiness,
// so silence here would hide a programming error.
func Min(xs []float64) float64 {
	v, _ := MinIdx(xs)
	return v
}

// Max returns the largest value in xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	v, _ := MaxIdx(xs)
	return v
}

// MinIdx returns the smallest value in xs and the index of its first
// occurrence. It panics on an empty slice.
func MinIdx(xs []float64) (float64, int) {
	if len(xs) == 0 {
		panic("stats: MinIdx of empty slice")
	}
	best, idx := xs[0], 0
	for i, x := range xs[1:] {
		if x < best {
			best, idx = x, i+1
		}
	}
	return best, idx
}

// MaxIdx returns the largest value in xs and the index of its first
// occurrence. It panics on an empty slice.
func MaxIdx(xs []float64) (float64, int) {
	if len(xs) == 0 {
		panic("stats: MaxIdx of empty slice")
	}
	best, idx := xs[0], 0
	for i, x := range xs[1:] {
		if x > best {
			best, idx = x, i+1
		}
	}
	return best, idx
}

// Median returns the middle value of xs (the mean of the two middle values
// for even lengths). It returns NaN for an empty slice and does not modify
// its argument.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the p-quantile of xs (0 ≤ p ≤ 1) using linear
// interpolation between order statistics (type-7 estimator, the same one
// used by numpy's default percentile). It returns NaN for an empty slice
// and does not modify its argument.
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary bundles the summary statistics of one data set. It is the unit
// that experiment harnesses report per configuration or per trial.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. Min, Max and Median are NaN for an
// empty input; StdDev is NaN when fewer than two samples are present.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Mean: Mean(xs), StdDev: StdDev(xs)}
	if len(xs) == 0 {
		s.Min, s.Max, s.Median = math.NaN(), math.NaN(), math.NaN()
		return s
	}
	s.Min = Min(xs)
	s.Max = Max(xs)
	s.Median = Median(xs)
	return s
}

// Fields flattens the summary into logger key-value pairs. This package
// returns data rather than printing; Fields keeps that convention when a
// harness wants the numbers in its structured event log.
func (s Summary) Fields() []any {
	return []any{"n", s.N, "mean", s.Mean, "stddev", s.StdDev,
		"min", s.Min, "max", s.Max, "median", s.Median}
}

// Log emits the summary as one structured Info record on l. A nil or
// gated logger makes it a no-op, so callers can thread an optional
// logger through unconditionally.
func (s Summary) Log(l *obs.Logger, msg string) {
	if !l.Enabled(obs.LevelInfo) {
		return
	}
	l.Info(msg, s.Fields()...)
}
