package mimo

import (
	"math"
	"math/rand/v2"
	"testing"

	"press/internal/cmat"
)

func TestFromResponses(t *testing.T) {
	// 2×2, 3 subcarriers.
	resp := [][][]complex128{
		{{1, 2, 3}, {4, 5, 6}},
		{{7, 8, 9}, {10, 11, 12}},
	}
	ch, err := FromResponses(resp)
	if err != nil {
		t.Fatal(err)
	}
	if ch.NumSubcarriers() != 3 {
		t.Fatalf("subcarriers = %d", ch.NumSubcarriers())
	}
	// H[1] should be [[2,5],[8,11]].
	m := ch.Matrices[1]
	if m.At(0, 0) != 2 || m.At(0, 1) != 5 || m.At(1, 0) != 8 || m.At(1, 1) != 11 {
		t.Errorf("matrix 1 wrong:\n%v", m)
	}
}

func TestFromResponsesValidation(t *testing.T) {
	if _, err := FromResponses(nil); err == nil {
		t.Error("empty set accepted")
	}
	ragged := [][][]complex128{
		{{1, 2}, {3, 4}},
		{{5, 6}},
	}
	if _, err := FromResponses(ragged); err == nil {
		t.Error("ragged tx count accepted")
	}
	raggedSC := [][][]complex128{
		{{1, 2}, {3}},
	}
	if _, err := FromResponses(raggedSC); err == nil {
		t.Error("ragged subcarrier count accepted")
	}
}

func TestCondNumberDB(t *testing.T) {
	// Identity: perfectly conditioned, 0 dB.
	if c := CondNumberDB(cmat.Identity(2)); math.Abs(c) > 1e-9 {
		t.Errorf("Cond(I) = %v dB", c)
	}
	// diag(10, 1): condition number 10 → 20 dB.
	d := cmat.FromRows([][]complex128{{10, 0}, {0, 1}})
	if c := CondNumberDB(d); math.Abs(c-20) > 1e-9 {
		t.Errorf("Cond(diag(10,1)) = %v dB, want 20", c)
	}
	// Rank-1: +Inf.
	r1 := cmat.FromRows([][]complex128{{1, 1}, {1, 1}})
	if c := CondNumberDB(r1); !math.IsInf(c, 1) {
		t.Errorf("rank-1 cond = %v", c)
	}
	// Larger matrix exercises the Jacobi path.
	d3 := cmat.FromRows([][]complex128{{4, 0, 0}, {0, 2, 0}, {0, 0, 1}})
	if c := CondNumberDB(d3); math.Abs(c-20*math.Log10(4)) > 1e-9 {
		t.Errorf("3x3 cond = %v dB", c)
	}
}

func TestCondProfile(t *testing.T) {
	resp := [][][]complex128{
		{{1, 1}, {0, 1}},
		{{0, 1}, {1, 2}},
	}
	ch, err := FromResponses(resp)
	if err != nil {
		t.Fatal(err)
	}
	prof := ch.CondProfileDB()
	if len(prof) != 2 {
		t.Fatalf("profile len = %d", len(prof))
	}
	// Subcarrier 0: identity → 0 dB. Subcarrier 1: [[1,1],[1,2]].
	if math.Abs(prof[0]) > 1e-9 {
		t.Errorf("profile[0] = %v", prof[0])
	}
	if prof[1] <= 0 {
		t.Errorf("profile[1] = %v, want > 0", prof[1])
	}
}

func TestCapacityKnownValues(t *testing.T) {
	// Identity 2×2 at SNR 3 (linear): 2·log2(1 + 3/2).
	want := 2 * math.Log2(1+1.5)
	if c := CapacityBpsHz(cmat.Identity(2), 3); math.Abs(c-want) > 1e-12 {
		t.Errorf("capacity = %v, want %v", c, want)
	}
	// Capacity is monotone in SNR.
	h := cmat.FromRows([][]complex128{{1, 0.5}, {0.2, 0.9}})
	if CapacityBpsHz(h, 10) <= CapacityBpsHz(h, 1) {
		t.Error("capacity not monotone in SNR")
	}
	// Zero SNR → zero capacity.
	if c := CapacityBpsHz(h, 0); c != 0 {
		t.Errorf("capacity at 0 SNR = %v", c)
	}
}

func TestWellConditionedBeatsIllConditioned(t *testing.T) {
	// Equal Frobenius norm, very different conditioning: the
	// well-conditioned channel must carry more capacity at high SNR and
	// a much higher ZF sum rate — the paper's Large MIMO argument.
	good := cmat.Identity(2)
	bad := cmat.FromRows([][]complex128{{1.4, 1.4}, {0.14, 0.1}})
	// Normalize Frobenius norms.
	scale := complex(good.FrobeniusNorm()/bad.FrobeniusNorm(), 0)
	bad = bad.Scale(scale)

	snr := 1000.0
	if CapacityBpsHz(good, snr) <= CapacityBpsHz(bad, snr) {
		t.Error("well-conditioned channel should have higher capacity at high SNR")
	}
	if ZFSumRateBpsHz(good, snr) <= ZFSumRateBpsHz(bad, snr) {
		t.Error("ZF sum rate should collapse on the ill-conditioned channel")
	}
}

func TestZFBelowCapacity(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 50; trial++ {
		h := cmat.New(2, 2)
		for i := range h.Data {
			h.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		snr := 100.0
		zf, cap := ZFSumRateBpsHz(h, snr), CapacityBpsHz(h, snr)
		if zf > cap+1e-9 {
			t.Fatalf("ZF rate %v exceeds capacity %v (trial %d)", zf, cap, trial)
		}
	}
}

func TestMeanCapacity(t *testing.T) {
	resp := [][][]complex128{
		{{1, 1}, {0, 0}},
		{{0, 0}, {1, 1}},
	}
	ch, err := FromResponses(resp)
	if err != nil {
		t.Fatal(err)
	}
	want := CapacityBpsHz(cmat.Identity(2), 10)
	if got := ch.MeanCapacityBpsHz(10); math.Abs(got-want) > 1e-12 {
		t.Errorf("mean capacity = %v, want %v", got, want)
	}
	empty := &Channel{}
	if empty.MeanCapacityBpsHz(10) != 0 {
		t.Error("empty channel capacity should be 0")
	}
}

func TestAverageSnapshots(t *testing.T) {
	mk := func(v complex128) *Channel {
		m := cmat.New(2, 2)
		for i := range m.Data {
			m.Data[i] = v
		}
		return &Channel{Matrices: []*cmat.Matrix{m}}
	}
	avg, err := Average([]*Channel{mk(1), mk(3)})
	if err != nil {
		t.Fatal(err)
	}
	if avg.Matrices[0].At(0, 0) != 2 {
		t.Errorf("average = %v", avg.Matrices[0].At(0, 0))
	}
	// Averaging suppresses zero-mean noise: the mean of many noisy
	// snapshots of H approaches H (Figure 8's 50-measurement averaging).
	rng := rand.New(rand.NewPCG(7, 8))
	truth := complex(1, -2)
	var snaps []*Channel
	for s := 0; s < 200; s++ {
		snaps = append(snaps, mk(truth+complex(rng.NormFloat64(), rng.NormFloat64())))
	}
	avg, err = Average(snaps)
	if err != nil {
		t.Fatal(err)
	}
	if d := avg.Matrices[0].At(0, 0) - truth; math.Abs(real(d))+math.Abs(imag(d)) > 0.5 {
		t.Errorf("noisy average off by %v", d)
	}
	if _, err := Average(nil); err == nil {
		t.Error("empty snapshot list accepted")
	}
	if _, err := Average([]*Channel{mk(1), {Matrices: []*cmat.Matrix{cmat.New(3, 3)}}}); err == nil {
		t.Error("mismatched dimensions accepted")
	}
}

func TestWaterfillingDominatesEqualPower(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	for trial := 0; trial < 100; trial++ {
		rows, cols := 2+rng.IntN(3), 2+rng.IntN(3)
		h := cmat.New(rows, cols)
		for i := range h.Data {
			h.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		for _, snr := range []float64{0.1, 1, 10, 1000} {
			wf := WaterfillingCapacityBpsHz(h, snr)
			eq := CapacityBpsHz(h, snr)
			if wf < eq-1e-9 {
				t.Fatalf("trial %d snr %v: waterfilling %v below equal power %v", trial, snr, wf, eq)
			}
		}
	}
}

func TestWaterfillingHighSNRConvergesToEqualPower(t *testing.T) {
	// At high SNR every eigenchannel is strong and waterfilling floods
	// them all nearly equally: the two capacities converge (per-channel
	// difference vanishes as log(1+x) → log(x)).
	h := cmat.FromRows([][]complex128{{1.2, 0.4}, {0.3, 0.9}})
	snr := 1e6
	wf := WaterfillingCapacityBpsHz(h, snr)
	eq := CapacityBpsHz(h, snr)
	if (wf-eq)/eq > 0.01 {
		t.Errorf("high-SNR gap %.4f vs %.4f too large", wf, eq)
	}
}

func TestWaterfillingLowSNRBeamforms(t *testing.T) {
	// At low SNR waterfilling pours everything into the strongest
	// eigenchannel: capacity ≈ log2(1 + P·σ₁²), clearly above the equal
	// split for an unbalanced channel.
	h := cmat.FromRows([][]complex128{{3, 0}, {0, 0.1}})
	snr := 0.5
	wf := WaterfillingCapacityBpsHz(h, snr)
	want := math.Log2(1 + snr*9)
	if math.Abs(wf-want) > 1e-9 {
		t.Errorf("low-SNR waterfilling %v, want single-beam %v", wf, want)
	}
	if eq := CapacityBpsHz(h, snr); wf <= eq {
		t.Errorf("waterfilling %v not above equal power %v on unbalanced channel", wf, eq)
	}
}

func TestWaterfillingEdgeCases(t *testing.T) {
	h := cmat.Identity(2)
	if c := WaterfillingCapacityBpsHz(h, 0); c != 0 {
		t.Errorf("zero power capacity = %v", c)
	}
	zero := cmat.New(2, 2)
	if c := WaterfillingCapacityBpsHz(zero, 10); c != 0 {
		t.Errorf("zero channel capacity = %v", c)
	}
	// Identity at total SNR 2: each channel gets 1 → 2·log2(2) = 2.
	if c := WaterfillingCapacityBpsHz(h, 2); math.Abs(c-2) > 1e-9 {
		t.Errorf("identity capacity = %v, want 2", c)
	}
}
