package mimo

import (
	"press/internal/cmat"
	"press/internal/obs/prof"
)

// CondProfileDBProf is CondProfileDB with solve-phase work accounting:
// the per-subcarrier singular-value computations are timed under
// prof.PhaseSolve with solve and flop counts. A nil collector is
// exactly CondProfileDB.
func (c *Channel) CondProfileDBProf(pc *prof.Collector) []float64 {
	if pc == nil {
		return c.CondProfileDB()
	}
	sp := pc.Start(prof.PhaseSolve)
	out := c.CondProfileDB()
	pc.Add(prof.PhaseSolve, prof.AuxSolves, int64(len(c.Matrices)))
	pc.Add(prof.PhaseSolve, prof.AuxFlops, c.condFlops())
	sp.End()
	return out
}

// condFlops estimates the arithmetic volume of one condition-number
// profile over the channel's matrices (closed form for 2×2, Jacobi SVD
// otherwise — mirroring CondNumberDB's dispatch).
func (c *Channel) condFlops() int64 {
	var total int64
	for _, m := range c.Matrices {
		if m == nil {
			continue
		}
		if m.Rows == 2 && m.Cols == 2 {
			total += cmat.SingularValues2x2Flops()
		} else {
			total += cmat.SVDFlops(m.Rows, m.Cols)
		}
	}
	return total
}
