// Package mimo provides the MIMO channel analysis behind the paper's
// §3.2.3 experiment: per-subcarrier channel matrices, condition numbers
// in dB (Figure 8's metric), and Shannon capacities, for channels of any
// dimension (with a fast closed-form path for the paper's 2×2 case).
package mimo

import (
	"fmt"
	"math"

	"press/internal/cmat"
	"press/internal/rfphys"
)

// Channel is a frequency-selective MIMO channel: one complex matrix per
// subcarrier, each NR×NT (receive antennas × transmit antennas).
type Channel struct {
	Matrices []*cmat.Matrix
}

// FromResponses assembles a Channel from per-antenna-pair frequency
// responses: resp[i][j][k] is the response from transmit antenna j to
// receive antenna i on subcarrier k. All pairs must cover the same
// subcarrier count.
func FromResponses(resp [][][]complex128) (*Channel, error) {
	nr := len(resp)
	if nr == 0 || len(resp[0]) == 0 {
		return nil, fmt.Errorf("mimo: empty response set")
	}
	nt := len(resp[0])
	nsc := len(resp[0][0])
	if nsc == 0 {
		return nil, fmt.Errorf("mimo: no subcarriers")
	}
	for i := range resp {
		if len(resp[i]) != nt {
			return nil, fmt.Errorf("mimo: rx antenna %d has %d tx responses, want %d", i, len(resp[i]), nt)
		}
		for j := range resp[i] {
			if len(resp[i][j]) != nsc {
				return nil, fmt.Errorf("mimo: pair (%d,%d) has %d subcarriers, want %d", i, j, len(resp[i][j]), nsc)
			}
		}
	}
	mats := make([]*cmat.Matrix, nsc)
	for k := 0; k < nsc; k++ {
		m := cmat.New(nr, nt)
		for i := 0; i < nr; i++ {
			for j := 0; j < nt; j++ {
				m.Set(i, j, resp[i][j][k])
			}
		}
		mats[k] = m
	}
	return &Channel{Matrices: mats}, nil
}

// NumSubcarriers returns the subcarrier count.
func (c *Channel) NumSubcarriers() int { return len(c.Matrices) }

// CondNumberDB returns the 2-norm condition number of one channel matrix
// in dB: 20·log10(σmax/σmin), the quantity on Figure 8's x-axis. A
// perfectly conditioned (orthogonal) channel scores 0 dB; rank-deficient
// channels return +Inf.
func CondNumberDB(m *cmat.Matrix) float64 {
	var smax, smin float64
	if m.Rows == 2 && m.Cols == 2 {
		smax, smin = cmat.SingularValues2x2(m.At(0, 0), m.At(0, 1), m.At(1, 0), m.At(1, 1))
	} else {
		s := cmat.SingularValues(m)
		smax, smin = s[0], s[len(s)-1]
	}
	if smin == 0 {
		return math.Inf(1)
	}
	return rfphys.AmplitudeToDB(smax / smin)
}

// CondProfileDB returns the per-subcarrier condition number in dB — the
// sample set one PRESS configuration contributes to Figure 8's CDF.
func (c *Channel) CondProfileDB() []float64 {
	out := make([]float64, len(c.Matrices))
	for k, m := range c.Matrices {
		out[k] = CondNumberDB(m)
	}
	return out
}

// CapacityBpsHz returns the equal-power MIMO Shannon capacity of one
// matrix at total SNR snrLinear (receive SNR if the channel were flat
// unit-gain): log2 det(I + snr/NT · H·H^H) b/s/Hz, computed from singular
// values.
func CapacityBpsHz(m *cmat.Matrix, snrLinear float64) float64 {
	if snrLinear < 0 {
		panic("mimo: negative SNR")
	}
	s := cmat.SingularValues(m)
	var capacity float64
	for _, sv := range s {
		capacity += math.Log2(1 + snrLinear/float64(m.Cols)*sv*sv)
	}
	return capacity
}

// MeanCapacityBpsHz averages CapacityBpsHz across subcarriers — the
// wideband spectral efficiency of the channel.
func (c *Channel) MeanCapacityBpsHz(snrLinear float64) float64 {
	if len(c.Matrices) == 0 {
		return 0
	}
	var sum float64
	for _, m := range c.Matrices {
		sum += CapacityBpsHz(m, snrLinear)
	}
	return sum / float64(len(c.Matrices))
}

// WaterfillingCapacityBpsHz returns the MIMO capacity with optimal power
// allocation across eigenchannels: maximize Σ log2(1 + p_i·σ_i²) subject
// to Σ p_i = snrLinear, solved with the classic water-filling iteration.
// It upper-bounds CapacityBpsHz (equal power) and converges to it at
// high SNR.
func WaterfillingCapacityBpsHz(m *cmat.Matrix, snrLinear float64) float64 {
	if snrLinear < 0 {
		panic("mimo: negative SNR")
	}
	if snrLinear == 0 {
		return 0
	}
	s := cmat.SingularValues(m)
	// Gains g_i = σ_i²; drop zero eigenchannels.
	var gains []float64
	for _, sv := range s {
		if sv > 0 {
			gains = append(gains, sv*sv)
		}
	}
	if len(gains) == 0 {
		return 0
	}
	// Water level: μ = (P + Σ 1/g_i)/k over the active set; channels
	// whose inverse gain exceeds μ get no power and leave the set.
	active := len(gains)
	for active > 0 {
		var invSum float64
		for _, g := range gains[:active] {
			invSum += 1 / g
		}
		mu := (snrLinear + invSum) / float64(active)
		// gains are sorted descending (singular values were), so the
		// weakest active channel is the last.
		if mu-1/gains[active-1] >= 0 {
			var capacity float64
			for _, g := range gains[:active] {
				capacity += math.Log2(mu * g)
			}
			return capacity
		}
		active--
	}
	return 0
}

// ZFSumRateBpsHz returns the zero-forcing sum rate for one matrix: each
// of the NT streams decoded by pseudo-inverse nulling, with the noise
// enhancement a poorly conditioned channel causes. This is the
// "conventional MIMO algorithm" whose degradation under bad conditioning
// the paper cites (§1).
func ZFSumRateBpsHz(m *cmat.Matrix, snrLinear float64) float64 {
	pinv := cmat.PseudoInverse(m, 1e-12)
	var rate float64
	for s := 0; s < m.Cols; s++ {
		// Noise enhancement of stream s: squared norm of row s of H⁺.
		var enh float64
		for j := 0; j < pinv.Cols; j++ {
			v := pinv.At(s, j)
			enh += real(v)*real(v) + imag(v)*imag(v)
		}
		if enh == 0 {
			continue // nulled stream carries nothing
		}
		rate += math.Log2(1 + snrLinear/float64(m.Cols)/enh)
	}
	return rate
}

// Average returns the element-wise mean of several channel snapshots —
// the paper's Figure 8 methodology computes each CDF "from the mean of 50
// successive channel measurements". All snapshots must have identical
// dimensions.
func Average(snapshots []*Channel) (*Channel, error) {
	if len(snapshots) == 0 {
		return nil, fmt.Errorf("mimo: no snapshots to average")
	}
	first := snapshots[0]
	nsc := first.NumSubcarriers()
	out := &Channel{Matrices: make([]*cmat.Matrix, nsc)}
	for k := 0; k < nsc; k++ {
		acc := cmat.New(first.Matrices[k].Rows, first.Matrices[k].Cols)
		for _, snap := range snapshots {
			if snap.NumSubcarriers() != nsc ||
				snap.Matrices[k].Rows != acc.Rows || snap.Matrices[k].Cols != acc.Cols {
				return nil, fmt.Errorf("mimo: snapshot dimensions differ")
			}
			for i := range acc.Data {
				acc.Data[i] += snap.Matrices[k].Data[i]
			}
		}
		inv := complex(1/float64(len(snapshots)), 0)
		for i := range acc.Data {
			acc.Data[i] *= inv
		}
		out.Matrices[k] = acc
	}
	return out, nil
}
