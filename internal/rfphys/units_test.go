package rfphys

import (
	"math"
	"math/rand/v2"
	"testing"
)

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestWavelength(t *testing.T) {
	// Channel 11 of the 2.4 GHz ISM band, the paper's operating channel.
	l := Wavelength(2.462e9)
	if !near(l, 0.1218, 1e-3) {
		t.Errorf("Wavelength(2.462 GHz) = %v, want ≈0.1218 m", l)
	}
}

func TestDBConversions(t *testing.T) {
	cases := []struct{ db, lin float64 }{
		{0, 1}, {10, 10}, {20, 100}, {-10, 0.1}, {3, 1.9952623149688795},
	}
	for _, c := range cases {
		if got := DBToLinear(c.db); !near(got, c.lin, 1e-12*c.lin) {
			t.Errorf("DBToLinear(%v) = %v, want %v", c.db, got, c.lin)
		}
		if got := LinearToDB(c.lin); !near(got, c.db, 1e-9) {
			t.Errorf("LinearToDB(%v) = %v, want %v", c.lin, got, c.db)
		}
	}
	if !math.IsInf(LinearToDB(0), -1) || !math.IsInf(LinearToDB(-1), -1) {
		t.Error("LinearToDB of non-positive should be -Inf")
	}
}

func TestAmplitudeConversions(t *testing.T) {
	if got := AmplitudeToDB(10); !near(got, 20, 1e-12) {
		t.Errorf("AmplitudeToDB(10) = %v", got)
	}
	if got := DBToAmplitude(20); !near(got, 10, 1e-12) {
		t.Errorf("DBToAmplitude(20) = %v", got)
	}
	if !math.IsInf(AmplitudeToDB(0), -1) {
		t.Error("AmplitudeToDB(0) should be -Inf")
	}
}

func TestDBmWatts(t *testing.T) {
	if got := DBmToWatts(0); !near(got, 1e-3, 1e-18) {
		t.Errorf("0 dBm = %v W, want 1 mW", got)
	}
	if got := DBmToWatts(30); !near(got, 1, 1e-12) {
		t.Errorf("30 dBm = %v W, want 1 W", got)
	}
	if got := WattsToDBm(1e-3); !near(got, 0, 1e-9) {
		t.Errorf("1 mW = %v dBm, want 0", got)
	}
	if !math.IsInf(WattsToDBm(0), -1) {
		t.Error("WattsToDBm(0) should be -Inf")
	}
}

func TestConversionRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 500; trial++ {
		db := rng.Float64()*200 - 100
		if got := LinearToDB(DBToLinear(db)); !near(got, db, 1e-9) {
			t.Fatalf("dB round trip %v -> %v", db, got)
		}
		if got := AmplitudeToDB(DBToAmplitude(db)); !near(got, db, 1e-9) {
			t.Fatalf("amplitude round trip %v -> %v", db, got)
		}
		dbm := rng.Float64()*100 - 70
		if got := WattsToDBm(DBmToWatts(dbm)); !near(got, dbm, 1e-9) {
			t.Fatalf("dBm round trip %v -> %v", dbm, got)
		}
	}
}
