// Package rfphys collects the radio-physics primitives the PRESS
// simulation is built on: unit conversions, free-space propagation
// (Friis), dielectric wall reflection (Fresnel), thermal noise, Doppler,
// and parametric antenna gain patterns.
//
// Internally every power-like quantity is linear; dB/dBm enter and leave
// only through the conversion helpers here, which keeps sign conventions
// in one place.
package rfphys

import "math"

// SpeedOfLight is c in metres per second.
const SpeedOfLight = 299_792_458.0

// BoltzmannK is the Boltzmann constant in J/K.
const BoltzmannK = 1.380649e-23

// Wavelength returns the free-space wavelength in metres of a carrier at
// freqHz.
func Wavelength(freqHz float64) float64 {
	return SpeedOfLight / freqHz
}

// DBToLinear converts a power ratio in dB to a linear ratio.
func DBToLinear(db float64) float64 {
	return math.Pow(10, db/10)
}

// LinearToDB converts a linear power ratio to dB. Zero or negative input
// maps to -Inf, matching the convention that "no power" plots at the
// bottom of a dB axis.
func LinearToDB(lin float64) float64 {
	if lin <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(lin)
}

// AmplitudeToDB converts a linear field-amplitude ratio to dB
// (20·log10, since power goes as amplitude squared).
func AmplitudeToDB(amp float64) float64 {
	if amp <= 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(amp)
}

// DBToAmplitude converts dB to a linear amplitude ratio.
func DBToAmplitude(db float64) float64 {
	return math.Pow(10, db/20)
}

// DBmToWatts converts dBm to watts.
func DBmToWatts(dbm float64) float64 {
	return math.Pow(10, (dbm-30)/10)
}

// WattsToDBm converts watts to dBm. Non-positive power maps to -Inf.
func WattsToDBm(w float64) float64 {
	if w <= 0 {
		return math.Inf(-1)
	}
	return 10*math.Log10(w) + 30
}
