package rfphys

import (
	"math"
	"math/cmplx"
)

// FriisAmplitude returns the free-space field-amplitude gain of a path of
// length distM metres at wavelength lambdaM: λ/(4πd). Antenna gains are
// applied separately by the caller (they depend on direction). Distances
// shorter than λ/(4π) — deep inside the antenna near field — are clamped
// to unit amplitude so that pathological geometries cannot produce gain
// out of thin air.
func FriisAmplitude(distM, lambdaM float64) float64 {
	if distM <= 0 {
		return 1
	}
	a := lambdaM / (4 * math.Pi * distM)
	if a > 1 {
		return 1
	}
	return a
}

// FriisPathLossDB returns the free-space path loss in dB (a positive
// number) over distM at lambdaM.
func FriisPathLossDB(distM, lambdaM float64) float64 {
	return -AmplitudeToDB(FriisAmplitude(distM, lambdaM))
}

// PathPhasor returns the complex baseband rotation e^{-j2πd/λ}
// accumulated over a path of length distM at wavelength lambdaM.
func PathPhasor(distM, lambdaM float64) complex128 {
	return cmplx.Exp(complex(0, -2*math.Pi*distM/lambdaM))
}

// FresnelReflection returns the field reflection coefficient of a
// dielectric wall with relative permittivity epsR for a ray whose angle
// of incidence from the wall normal is thetaRad, averaged over the two
// polarizations (our simulated antennas are not polarization-tracked).
// The magnitude grows toward grazing incidence, exactly the behaviour
// interior walls exhibit at Wi-Fi frequencies; typical drywall has
// epsR ≈ 2–3, brick ≈ 4.
func FresnelReflection(epsR, thetaRad float64) float64 {
	ci := math.Cos(thetaRad)
	si := math.Sin(thetaRad)
	under := epsR - si*si
	if under < 0 {
		under = 0
	}
	root := math.Sqrt(under)

	// Perpendicular (TE) and parallel (TM) coefficients.
	rte := (ci - root) / (ci + root)
	rtm := (epsR*ci - root) / (epsR*ci + root)
	// Average reflected *power*, then back to amplitude, keeping the TE
	// sign (dominant at most angles): a scalar model adequate for the
	// interference phenomena PRESS manipulates.
	p := (rte*rte + rtm*rtm) / 2
	a := math.Sqrt(p)
	if rte < 0 {
		a = -a
	}
	return a
}

// ThermalNoiseWatts returns k·T·B for bandwidth bwHz at temperature 290 K,
// plus the receiver noise figure in dB — the standard receiver noise-floor
// model.
func ThermalNoiseWatts(bwHz, noiseFigureDB float64) float64 {
	return BoltzmannK * 290 * bwHz * DBToLinear(noiseFigureDB)
}

// DopplerShiftHz returns the maximum Doppler shift v/λ for an endpoint
// moving at speedMps metres per second at wavelength lambdaM.
func DopplerShiftHz(speedMps, lambdaM float64) float64 {
	return speedMps / lambdaM
}

// CoherenceTime returns the channel coherence time, in seconds, for a
// maximum Doppler shift fd using the popular geometric-mean rule
// Tc = 9/(16π·fd) [Tse & Viswanath, Fundamentals of Wireless
// Communication]. At 2.4 GHz this gives ≈ 0.1 s for walking-adjacent
// movement (0.5 mph) and ≈ 8 ms at running speed (6 mph), matching the
// 80 ms / 6 ms envelope the paper quotes. Zero Doppler yields +Inf.
func CoherenceTime(dopplerHz float64) float64 {
	if dopplerHz <= 0 {
		return math.Inf(1)
	}
	return 9 / (16 * math.Pi * dopplerHz)
}

// MphToMps converts miles per hour to metres per second.
func MphToMps(mph float64) float64 { return mph * 0.44704 }
