package rfphys

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestFriisAmplitude(t *testing.T) {
	lambda := 0.125
	// Doubling distance halves amplitude (6 dB per octave in power).
	a1 := FriisAmplitude(2, lambda)
	a2 := FriisAmplitude(4, lambda)
	if !near(a1/a2, 2, 1e-12) {
		t.Errorf("amplitude ratio = %v, want 2", a1/a2)
	}
	// Known value: λ/(4πd).
	if want := lambda / (4 * math.Pi * 3); !near(FriisAmplitude(3, lambda), want, 1e-15) {
		t.Error("Friis formula wrong")
	}
	// Near-field clamp: no free gain.
	if FriisAmplitude(1e-9, lambda) != 1 || FriisAmplitude(0, lambda) != 1 {
		t.Error("near-field amplitude should clamp to 1")
	}
}

func TestFriisPathLossDB(t *testing.T) {
	// Classic check: 2.4 GHz at 1 m ≈ 40 dB.
	l := FriisPathLossDB(1, Wavelength(2.4e9))
	if !near(l, 40.05, 0.1) {
		t.Errorf("path loss at 1 m = %v dB, want ≈40", l)
	}
	// +6 dB per distance doubling.
	d1 := FriisPathLossDB(5, 0.125)
	d2 := FriisPathLossDB(10, 0.125)
	if !near(d2-d1, 6.02, 0.01) {
		t.Errorf("doubling distance added %v dB, want ≈6.02", d2-d1)
	}
}

func TestPathPhasor(t *testing.T) {
	lambda := 0.125
	// A full wavelength of extra path returns to phase 0.
	p := PathPhasor(lambda, lambda)
	if cmplx.Abs(p-1) > 1e-12 {
		t.Errorf("full-wavelength phasor = %v, want 1", p)
	}
	// Half a wavelength flips sign.
	p = PathPhasor(lambda/2, lambda)
	if cmplx.Abs(p+1) > 1e-12 {
		t.Errorf("half-wavelength phasor = %v, want -1", p)
	}
	// Quarter wavelength gives -90°.
	p = PathPhasor(lambda/4, lambda)
	if cmplx.Abs(p-complex(0, -1)) > 1e-12 {
		t.Errorf("quarter-wavelength phasor = %v, want -i", p)
	}
	// Magnitude is always 1.
	if !near(cmplx.Abs(PathPhasor(17.3, lambda)), 1, 1e-12) {
		t.Error("phasor magnitude drifted from 1")
	}
}

func TestFresnelReflection(t *testing.T) {
	// Normal incidence on drywall (εr≈2.5): |Γ| = (√εr-1)/(√εr+1).
	eps := 2.5
	want := (math.Sqrt(eps) - 1) / (math.Sqrt(eps) + 1)
	got := math.Abs(FresnelReflection(eps, 0))
	if !near(got, want, 1e-9) {
		t.Errorf("normal incidence |Γ| = %v, want %v", got, want)
	}
	// Magnitude grows toward grazing incidence.
	g30 := math.Abs(FresnelReflection(eps, 30*math.Pi/180))
	g80 := math.Abs(FresnelReflection(eps, 80*math.Pi/180))
	if g80 <= g30 {
		t.Errorf("grazing |Γ| (%v) should exceed 30° |Γ| (%v)", g80, g30)
	}
	// Bounded by 1 everywhere.
	for deg := 0; deg < 90; deg++ {
		g := math.Abs(FresnelReflection(eps, float64(deg)*math.Pi/180))
		if g > 1 {
			t.Fatalf("|Γ| = %v > 1 at %d°", g, deg)
		}
	}
	// Higher permittivity reflects more.
	if math.Abs(FresnelReflection(4, 0)) <= math.Abs(FresnelReflection(2, 0)) {
		t.Error("higher εr should reflect more at normal incidence")
	}
}

func TestThermalNoise(t *testing.T) {
	// kTB for 20 MHz ≈ -101 dBm; +6 dB noise figure ≈ -95 dBm.
	n := WattsToDBm(ThermalNoiseWatts(20e6, 0))
	if !near(n, -100.98, 0.1) {
		t.Errorf("20 MHz noise floor = %v dBm, want ≈-101", n)
	}
	nf := WattsToDBm(ThermalNoiseWatts(20e6, 6))
	if !near(nf-n, 6, 1e-9) {
		t.Errorf("noise figure added %v dB, want 6", nf-n)
	}
}

func TestDopplerAndCoherence(t *testing.T) {
	lambda := Wavelength(2.462e9)
	// Paper §2: ca. 80 ms while almost stationary (0.5 mph), ca. 6 ms at
	// running speed (6 mph). Our model should land in the same regime.
	slow := CoherenceTime(DopplerShiftHz(MphToMps(0.5), lambda))
	fast := CoherenceTime(DopplerShiftHz(MphToMps(6), lambda))
	if slow < 0.05 || slow > 0.15 {
		t.Errorf("coherence @0.5 mph = %v s, want ≈0.08–0.1", slow)
	}
	if fast < 0.004 || fast > 0.012 {
		t.Errorf("coherence @6 mph = %v s, want ≈0.006–0.008", fast)
	}
	// 12x speed → 12x shorter coherence.
	if !near(slow/fast, 12, 1e-6) {
		t.Errorf("coherence ratio = %v, want 12", slow/fast)
	}
	if !math.IsInf(CoherenceTime(0), 1) {
		t.Error("zero Doppler should give infinite coherence time")
	}
}
