package rfphys

import (
	"math"
	"testing"

	"press/internal/geom"
)

func TestIsotropic(t *testing.T) {
	var iso Isotropic
	for _, d := range []geom.Vec{geom.V(1, 0, 0), geom.V(0, -1, 2), geom.V(3, 3, 3)} {
		if iso.Gain(d) != 1 {
			t.Errorf("isotropic gain toward %v = %v, want 1", d, iso.Gain(d))
		}
	}
}

func TestOmniAzimuthUniform(t *testing.T) {
	o := Omni{PeakGainDBi: 2}
	ref := o.Gain(geom.V(1, 0, 0))
	for deg := 0; deg < 360; deg += 15 {
		th := float64(deg) * math.Pi / 180
		g := o.Gain(geom.V(math.Cos(th), math.Sin(th), 0))
		if !near(g, ref, 1e-12) {
			t.Fatalf("omni gain varies with azimuth: %v vs %v at %d°", g, ref, deg)
		}
	}
	// Horizontal gain equals the rated peak (2 dBi → amplitude 10^(2/20)).
	if !near(AmplitudeToDB(ref), 2, 1e-9) {
		t.Errorf("omni horizontal gain = %v dB, want 2", AmplitudeToDB(ref))
	}
}

func TestOmniElevationRolloff(t *testing.T) {
	o := Omni{PeakGainDBi: 2}
	gH := o.Gain(geom.V(1, 0, 0))
	g45 := o.Gain(geom.V(1, 0, 1))
	gUp := o.Gain(geom.V(0, 0, 1))
	if !(gH > g45 && g45 > gUp) {
		t.Errorf("elevation rolloff violated: %v, %v, %v", gH, g45, gUp)
	}
	// Zenith floor: no deeper than -20 dB below peak.
	if AmplitudeToDB(gH/gUp) > 20+1e-9 {
		t.Errorf("zenith floor exceeded: %v dB", AmplitudeToDB(gH/gUp))
	}
}

func TestParabolicBoresightAndBeamwidth(t *testing.T) {
	p := Parabolic{Boresight: geom.V(1, 0, 0), PeakGainDBi: 14, BeamwidthDeg: 21}
	peak := p.Gain(geom.V(1, 0, 0))
	if !near(AmplitudeToDB(peak), 14, 1e-9) {
		t.Errorf("boresight gain = %v dB, want 14", AmplitudeToDB(peak))
	}
	// At half the beamwidth (10.5°) the gain is 3 dB down.
	th := 10.5 * math.Pi / 180
	gEdge := p.Gain(geom.V(math.Cos(th), math.Sin(th), 0))
	if !near(AmplitudeToDB(peak/gEdge), 3, 1e-6) {
		t.Errorf("-3 dB point off: %v dB down", AmplitudeToDB(peak/gEdge))
	}
	// Far off boresight the sidelobe floor (default -20 dB) holds.
	gBack := p.Gain(geom.V(-1, 0, 0))
	if !near(AmplitudeToDB(peak/gBack), 20, 1e-6) {
		t.Errorf("backlobe = %v dB down, want 20", AmplitudeToDB(peak/gBack))
	}
}

func TestParabolicMonotoneOffBoresight(t *testing.T) {
	p := Parabolic{Boresight: geom.V(1, 0, 0), PeakGainDBi: 14, BeamwidthDeg: 21}
	prev := math.Inf(1)
	for deg := 0; deg <= 180; deg += 5 {
		th := float64(deg) * math.Pi / 180
		g := p.Gain(geom.V(math.Cos(th), math.Sin(th), 0))
		if g > prev+1e-12 {
			t.Fatalf("gain increased off boresight at %d°", deg)
		}
		prev = g
	}
}

func TestParabolicDegenerateBeamwidth(t *testing.T) {
	p := Parabolic{Boresight: geom.V(1, 0, 0), PeakGainDBi: 10}
	if g := p.Gain(geom.V(1, 0, 0)); !near(AmplitudeToDB(g), 10, 1e-9) {
		t.Error("boresight gain wrong for zero beamwidth")
	}
	if g := p.Gain(geom.V(0, 1, 0)); !near(AmplitudeToDB(g), -10, 1e-9) {
		t.Error("off-boresight should be at sidelobe floor for zero beamwidth")
	}
}

func TestLogPeriodicWiderThanParabolic(t *testing.T) {
	para := Parabolic{Boresight: geom.V(1, 0, 0), PeakGainDBi: 14, BeamwidthDeg: 21}
	lp := LogPeriodic{Boresight: geom.V(1, 0, 0), PeakGainDBi: 7, BeamwidthDeg: 65}
	th := 30.0 * math.Pi / 180
	dir := geom.V(math.Cos(th), math.Sin(th), 0)
	dropPara := AmplitudeToDB(para.Gain(geom.V(1, 0, 0)) / para.Gain(dir))
	dropLP := AmplitudeToDB(lp.Gain(geom.V(1, 0, 0)) / lp.Gain(dir))
	if dropLP >= dropPara {
		t.Errorf("log-periodic should roll off slower: %v vs %v dB at 30°", dropLP, dropPara)
	}
}

func TestPatternByName(t *testing.T) {
	for _, name := range []string{"isotropic", "omni", "parabolic", "logperiodic"} {
		p, err := PatternByName(name)
		if err != nil || p == nil {
			t.Errorf("PatternByName(%q) failed: %v", name, err)
		}
	}
	if _, err := PatternByName("yagi"); err == nil {
		t.Error("unknown pattern should error")
	}
}
