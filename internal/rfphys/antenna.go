package rfphys

import (
	"fmt"
	"math"

	"press/internal/geom"
)

// Pattern is a transmit/receive antenna gain pattern. Gain returns the
// linear field-amplitude gain toward the given direction (a vector in the
// room frame pointing away from the antenna). Reciprocity holds: the same
// pattern applies on transmit and on receive.
//
// Patterns return amplitude (not power) gain so path products compose by
// plain multiplication; use AmplitudeToDB for display.
type Pattern interface {
	Gain(dir geom.Vec) float64
}

// Isotropic radiates equally in all directions with 0 dBi gain. The
// zero value is ready to use.
type Isotropic struct{}

// Gain implements Pattern.
func (Isotropic) Gain(geom.Vec) float64 { return 1 }

// Omni models the 2 dBi omni-directional "rubber duck" antennas the paper
// uses at the endpoints (PulseLarsen W1030): uniform in azimuth with a
// doughnut-shaped elevation rolloff.
type Omni struct {
	// PeakGainDBi is the boresight (horizontal) gain; the W1030 is 2 dBi.
	PeakGainDBi float64
}

// Gain implements Pattern. The elevation rolloff follows the ideal
// half-wave dipole shape cos(el)^1.?: we use cos(el), a good fit for
// low-gain whips, floored at -20 dB so zenith nulls stay finite.
func (o Omni) Gain(dir geom.Vec) float64 {
	peak := DBToAmplitude(o.PeakGainDBi)
	el := dir.Elevation()
	shape := math.Cos(el)
	if shape < 0.1 {
		shape = 0.1 // -20 dB floor toward zenith/nadir
	}
	return peak * shape
}

// Parabolic models the 14 dBi, 21° azimuthal-beamwidth grid parabolic
// (Laird GD24BP) used for the prototype PRESS elements. The pattern is a
// Gaussian main lobe around the boresight with a uniform sidelobe floor.
type Parabolic struct {
	// Boresight is the antenna pointing direction (need not be unit).
	Boresight geom.Vec
	// PeakGainDBi is the boresight gain; the GD24BP is 14 dBi.
	PeakGainDBi float64
	// BeamwidthDeg is the full -3 dB beamwidth in degrees (21° for the
	// GD24BP azimuth cut; we apply it as a cone).
	BeamwidthDeg float64
	// SidelobeDB is the sidelobe level relative to peak (negative);
	// defaults to -20 dB when zero.
	SidelobeDB float64
}

// Gain implements Pattern.
func (p Parabolic) Gain(dir geom.Vec) float64 {
	peak := DBToAmplitude(p.PeakGainDBi)
	side := p.SidelobeDB
	if side == 0 {
		side = -20
	}
	floor := peak * DBToAmplitude(side)

	theta := geom.AngleBetween(p.Boresight, dir)
	bw := p.BeamwidthDeg * math.Pi / 180
	if bw <= 0 {
		// Degenerate beamwidth: everything off-boresight is sidelobe.
		if theta == 0 {
			return peak
		}
		return floor
	}
	// Gaussian main lobe: -3 dB (amplitude factor 10^(-3/20)) at θ = bw/2.
	// amplitude(θ) = peak · exp(-k·θ²) with k chosen for the -3 dB point.
	k := (3.0 / 20.0) * math.Ln10 / ((bw / 2) * (bw / 2))
	g := peak * math.Exp(-k*theta*theta)
	if g < floor {
		return floor
	}
	return g
}

// LogPeriodic models a moderate-gain printed directional antenna — the
// kind §4.1 suggests could be embedded in walls in place of parabolics.
// It is a wider-beam, lower-gain variant of the same main-lobe model.
type LogPeriodic struct {
	Boresight    geom.Vec
	PeakGainDBi  float64 // typically 6–8 dBi
	BeamwidthDeg float64 // typically 60–70°
}

// Gain implements Pattern.
func (l LogPeriodic) Gain(dir geom.Vec) float64 {
	return Parabolic{
		Boresight:    l.Boresight,
		PeakGainDBi:  l.PeakGainDBi,
		BeamwidthDeg: l.BeamwidthDeg,
		SidelobeDB:   -15,
	}.Gain(dir)
}

// PatternByName constructs one of the built-in patterns from a short name,
// for CLI flags: "isotropic", "omni", "parabolic", "logperiodic".
// Directional patterns are returned pointing along +x; callers reorient
// by constructing the concrete type directly when they care.
func PatternByName(name string) (Pattern, error) {
	switch name {
	case "isotropic":
		return Isotropic{}, nil
	case "omni":
		return Omni{PeakGainDBi: 2}, nil
	case "parabolic":
		return Parabolic{Boresight: geom.V(1, 0, 0), PeakGainDBi: 14, BeamwidthDeg: 21}, nil
	case "logperiodic":
		return LogPeriodic{Boresight: geom.V(1, 0, 0), PeakGainDBi: 7, BeamwidthDeg: 65}, nil
	default:
		return nil, fmt.Errorf("rfphys: unknown antenna pattern %q", name)
	}
}
