package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV emits the record as long-form rows — one row per (trial,
// measurement, subcarrier) — the shape spreadsheet and dataframe tools
// ingest directly. The trace_id column joins each row against its
// "radio/measure" span in a Chrome trace export captured in the same
// run, so a suspicious SNR dip can be chased back to the exact
// measurement's wall-clock placement.
func (r *Record) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"trial", "config", "config_name", "at_s", "trace_id", "subcarrier", "snr_db"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("trace: csv: %w", err)
	}
	for ti, tr := range r.Trials {
		for _, m := range tr.Measurements {
			name := ""
			if m.ConfigIdx >= 0 && m.ConfigIdx < len(r.ConfigNames) {
				name = r.ConfigNames[m.ConfigIdx]
			}
			for k, snr := range m.SNRdB {
				row := []string{
					strconv.Itoa(ti),
					strconv.Itoa(m.ConfigIdx),
					name,
					strconv.FormatFloat(m.AtSeconds, 'g', 8, 64),
					m.TraceID,
					strconv.Itoa(k),
					strconv.FormatFloat(snr, 'g', 8, 64),
				}
				if err := cw.Write(row); err != nil {
					return fmt.Errorf("trace: csv: %w", err)
				}
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: csv: %w", err)
	}
	return nil
}
