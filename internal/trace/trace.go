// Package trace records measurement campaigns — the sweeps behind the
// paper's figures — to a portable JSON form, so a sweep measured once
// (or on real hardware, eventually) can be re-analyzed offline: null
// statistics, min-SNR distributions, alternative objectives, all without
// re-measuring. Figures 4–6 are exactly this workflow: one dataset,
// three analyses.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"press/internal/obs"
	"press/internal/radio"
)

// FormatVersion identifies the record schema; Load rejects unknown
// versions rather than guessing.
const FormatVersion = 1

// Record is one recorded sweep campaign.
type Record struct {
	// Version is the schema version (FormatVersion).
	Version int `json:"version"`
	// Description is free-form provenance ("fig4 placement (e), seed 442").
	Description string `json:"description,omitempty"`
	// CenterHz and SpacingHz describe the measurement grid.
	CenterHz  float64 `json:"center_hz"`
	SpacingHz float64 `json:"spacing_hz"`
	// ConfigNames holds the paper-notation name per configuration index.
	ConfigNames []string `json:"config_names"`
	// Trials holds the measured sweeps.
	Trials []Trial `json:"trials"`
}

// Trial is one pass over all configurations.
type Trial struct {
	Measurements []Measurement `json:"measurements"`
}

// Measurement is one configuration's measured per-subcarrier SNR.
type Measurement struct {
	ConfigIdx int     `json:"config"`
	AtSeconds float64 `json:"at_s"`
	// TraceID joins the row against its "radio/measure" span in a Chrome
	// trace export captured in the same run (obs.FormatTraceID form;
	// empty when the sweep ran without -trace).
	TraceID string    `json:"trace_id,omitempty"`
	SNRdB   []float64 `json:"snr_db"`
}

// FromSweepTrials converts a radio.SweepTrials result into a Record.
func FromSweepTrials(link *radio.Link, trials [][]radio.Measurement, description string) (*Record, error) {
	if link.Array == nil {
		return nil, fmt.Errorf("trace: link has no array")
	}
	rec := &Record{
		Version:     FormatVersion,
		Description: description,
		CenterHz:    link.Grid.CenterHz,
		SpacingHz:   link.Grid.SpacingHz,
	}
	n := link.Array.NumConfigs()
	rec.ConfigNames = make([]string, n)
	for idx := 0; idx < n; idx++ {
		rec.ConfigNames[idx] = link.Array.String(link.Array.ConfigAt(idx))
	}
	for ti, tr := range trials {
		trial := Trial{}
		for _, m := range tr {
			if m.ConfigIdx < 0 || m.ConfigIdx >= n {
				return nil, fmt.Errorf("trace: trial %d references config %d of %d", ti, m.ConfigIdx, n)
			}
			trial.Measurements = append(trial.Measurements, Measurement{
				ConfigIdx: m.ConfigIdx,
				AtSeconds: m.At.Seconds(),
				TraceID:   obs.FormatTraceID(m.TraceID),
				SNRdB:     append([]float64(nil), m.CSI.SNRdB...),
			})
		}
		rec.Trials = append(rec.Trials, trial)
	}
	return rec, nil
}

// Save writes the record as indented JSON.
func (r *Record) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("trace: save: %w", err)
	}
	return nil
}

// Load parses and validates a record.
func Load(rd io.Reader) (*Record, error) {
	var rec Record
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rec); err != nil {
		return nil, fmt.Errorf("trace: load: %w", err)
	}
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	return &rec, nil
}

// Validate checks the record's internal consistency.
func (r *Record) Validate() error {
	if r.Version != FormatVersion {
		return fmt.Errorf("trace: unsupported version %d (want %d)", r.Version, FormatVersion)
	}
	if r.CenterHz <= 0 || r.SpacingHz <= 0 {
		return fmt.Errorf("trace: non-positive grid parameters")
	}
	if len(r.ConfigNames) == 0 {
		return fmt.Errorf("trace: no configurations")
	}
	var nsc = -1
	for ti, tr := range r.Trials {
		for mi, m := range tr.Measurements {
			if m.ConfigIdx < 0 || m.ConfigIdx >= len(r.ConfigNames) {
				return fmt.Errorf("trace: trial %d measurement %d: config %d out of range", ti, mi, m.ConfigIdx)
			}
			if len(m.SNRdB) == 0 {
				return fmt.Errorf("trace: trial %d measurement %d: empty SNR", ti, mi)
			}
			if nsc == -1 {
				nsc = len(m.SNRdB)
			} else if len(m.SNRdB) != nsc {
				return fmt.Errorf("trace: trial %d measurement %d: %d subcarriers, want %d", ti, mi, len(m.SNRdB), nsc)
			}
		}
	}
	return nil
}

// Curves returns the per-configuration SNR curves of one trial, indexed
// by configuration — the shape the statistics in internal/stats consume.
// Configurations not measured in the trial yield nil entries.
func (r *Record) Curves(trial int) ([][]float64, error) {
	if trial < 0 || trial >= len(r.Trials) {
		return nil, fmt.Errorf("trace: trial %d of %d", trial, len(r.Trials))
	}
	out := make([][]float64, len(r.ConfigNames))
	for _, m := range r.Trials[trial].Measurements {
		out[m.ConfigIdx] = m.SNRdB
	}
	return out, nil
}

// NumSubcarriers reports the per-measurement SNR vector length (0 for an
// empty record).
func (r *Record) NumSubcarriers() int {
	for _, tr := range r.Trials {
		for _, m := range tr.Measurements {
			return len(m.SNRdB)
		}
	}
	return 0
}
