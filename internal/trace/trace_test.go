package trace

import (
	"bytes"
	"math/rand/v2"
	"strings"
	"testing"

	"press/internal/element"
	"press/internal/geom"
	"press/internal/ofdm"
	"press/internal/propagation"
	"press/internal/radio"
	"press/internal/rfphys"
	"press/internal/stats"
)

// recordedSweep builds a small link, sweeps it twice, and records it.
func recordedSweep(t *testing.T) (*radio.Link, *Record) {
	t.Helper()
	env := propagation.NewEnvironment(8, 6, 3)
	env.AddScatterers(rand.New(rand.NewPCG(5, 5)), 5, 25)
	tx := &radio.Radio{
		Node:       propagation.Node{Pos: geom.V(2, 3, 1.5), Pattern: rfphys.Omni{PeakGainDBi: 2}},
		TxPowerDBm: 15, NoiseFigureDB: 6,
	}
	rx := &radio.Radio{
		Node:          propagation.Node{Pos: geom.V(6, 3.2, 1.3), Pattern: rfphys.Omni{PeakGainDBi: 2}},
		NoiseFigureDB: 6,
	}
	arr := element.NewArray(
		element.NewOmniElement(geom.V(4, 2, 1.5)),
		element.NewOmniElement(geom.V(4, 4, 1.5)),
	)
	link, err := radio.NewLink(env, tx, rx, ofdm.WiFi20(), arr, 5)
	if err != nil {
		t.Fatal(err)
	}
	trials, err := link.SweepTrials(radio.Timing{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := FromSweepTrials(link, trials, "unit test sweep")
	if err != nil {
		t.Fatal(err)
	}
	return link, rec
}

func TestRecordRoundTrip(t *testing.T) {
	_, rec := recordedSweep(t)
	var buf bytes.Buffer
	if err := rec.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Description != "unit test sweep" {
		t.Errorf("description = %q", loaded.Description)
	}
	if len(loaded.ConfigNames) != 16 || len(loaded.Trials) != 2 {
		t.Fatalf("loaded %d configs, %d trials", len(loaded.ConfigNames), len(loaded.Trials))
	}
	if loaded.NumSubcarriers() != 52 {
		t.Errorf("subcarriers = %d", loaded.NumSubcarriers())
	}
	// Exact SNR preservation.
	orig := rec.Trials[1].Measurements[7].SNRdB
	got := loaded.Trials[1].Measurements[7].SNRdB
	for k := range orig {
		if orig[k] != got[k] {
			t.Fatalf("SNR drifted through JSON at subcarrier %d", k)
		}
	}
}

func TestRecordedAnalysisMatchesLive(t *testing.T) {
	// The Figures 4–6 workflow: statistics computed on the recorded data
	// must equal statistics computed on the live measurements.
	link, rec := recordedSweep(t)
	_ = link
	curves, err := rec.Curves(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 16 {
		t.Fatalf("curves = %d", len(curves))
	}
	for i, c := range curves {
		if c == nil {
			t.Fatalf("config %d unmeasured in trial 0", i)
		}
	}
	mins := stats.MinPerCurve(curves)
	if len(mins) != 16 {
		t.Fatalf("mins = %d", len(mins))
	}
	// Spot check one value against the raw record.
	if mins[3] != stats.Min(rec.Trials[0].Measurements[3].SNRdB) {
		t.Error("recorded analysis mismatch")
	}
}

func TestLoadRejectsBadRecords(t *testing.T) {
	cases := map[string]string{
		"bad version":     `{"version":99,"center_hz":2.4e9,"spacing_hz":312500,"config_names":["a"],"trials":[]}`,
		"no configs":      `{"version":1,"center_hz":2.4e9,"spacing_hz":312500,"config_names":[],"trials":[]}`,
		"bad grid":        `{"version":1,"center_hz":0,"spacing_hz":312500,"config_names":["a"],"trials":[]}`,
		"config range":    `{"version":1,"center_hz":2.4e9,"spacing_hz":312500,"config_names":["a"],"trials":[{"measurements":[{"config":5,"at_s":0,"snr_db":[1]}]}]}`,
		"empty snr":       `{"version":1,"center_hz":2.4e9,"spacing_hz":312500,"config_names":["a"],"trials":[{"measurements":[{"config":0,"at_s":0,"snr_db":[]}]}]}`,
		"ragged snr":      `{"version":1,"center_hz":2.4e9,"spacing_hz":312500,"config_names":["a"],"trials":[{"measurements":[{"config":0,"at_s":0,"snr_db":[1,2]},{"config":0,"at_s":1,"snr_db":[1]}]}]}`,
		"unknown field":   `{"version":1,"center_hz":2.4e9,"spacing_hz":312500,"config_names":["a"],"trials":[],"surprise":1}`,
		"not json at all": `hello`,
	}
	for name, raw := range cases {
		if _, err := Load(strings.NewReader(raw)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCurvesValidation(t *testing.T) {
	_, rec := recordedSweep(t)
	if _, err := rec.Curves(-1); err == nil {
		t.Error("negative trial accepted")
	}
	if _, err := rec.Curves(99); err == nil {
		t.Error("out-of-range trial accepted")
	}
}

func TestFromSweepTrialsValidation(t *testing.T) {
	link, _ := recordedSweep(t)
	bare := *link
	bare.Array = nil
	if _, err := FromSweepTrials(&bare, nil, ""); err == nil {
		t.Error("array-less link accepted")
	}
}
