package obs

import "time"

// Span times one phase of work against the monotonic clock. Spans are
// plain values: StartSpan against a nil registry returns an inert span
// whose End is free, so phase timing costs nothing when telemetry is
// off. time.Now carries Go's monotonic reading, so wall-clock jumps
// cannot corrupt a span.
//
//	sp := obs.StartSpan(reg, "search/greedy")
//	defer sp.End()
//
// Nested phases chain names with '/' via Child:
//
//	inner := sp.Child("measure") // "search/greedy/measure"
type Span struct {
	reg   *Registry
	name  string
	start time.Time
}

// StartSpan begins timing the named phase. A nil registry yields an
// inert span.
func StartSpan(r *Registry, name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{reg: r, name: name, start: time.Now()}
}

// Child begins a nested span named parent/name, started now.
func (s Span) Child(name string) Span {
	if s.reg == nil {
		return Span{}
	}
	return StartSpan(s.reg, s.name+"/"+name)
}

// Name returns the span's full name ("" for an inert span).
func (s Span) Name() string { return s.name }

// End stops the span, records its duration in the registry, and returns
// it. Ending an inert span returns 0. A span may be ended once; spans
// are cheap enough to start fresh per phase rather than reuse.
func (s Span) End() time.Duration {
	if s.reg == nil {
		return 0
	}
	d := time.Since(s.start)
	s.reg.observeSpan(s.name, d)
	return d
}
