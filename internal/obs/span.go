package obs

import (
	"strings"
	"sync/atomic"
	"time"
)

// Span times one phase of work against the monotonic clock. Spans are
// plain values: StartSpan against a nil registry returns an inert span
// whose End is free, so phase timing costs nothing when telemetry is
// off. time.Now carries Go's monotonic reading, so wall-clock jumps
// cannot corrupt a span.
//
//	sp := obs.StartSpan(reg, "search/greedy")
//	defer sp.End()
//
// Nested phases chain names with '/' via Child:
//
//	inner := sp.Child("measure") // "search/greedy/measure"
type Span struct {
	reg   *Registry
	name  string
	start time.Time
	// ended is shared between copies of the span value so End is
	// idempotent however the span is passed around.
	ended *atomic.Bool
}

// StartSpan begins timing the named phase. A nil registry yields an
// inert span.
func StartSpan(r *Registry, name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{reg: r, name: name, start: time.Now(), ended: new(atomic.Bool)}
}

// Child begins a nested span named parent/name, started now.
func (s Span) Child(name string) Span {
	if s.reg == nil {
		return Span{}
	}
	return StartSpan(s.reg, s.name+"/"+name)
}

// Name returns the span's full name ("" for an inert span).
func (s Span) Name() string { return s.name }

// End stops the span, records its duration in the registry (and on the
// registry's trace log, when one is attached), and returns the duration.
// End is idempotent: the first call records and returns the duration,
// every later call returns 0 and records nothing. Ending an inert span
// returns 0.
func (s Span) End() time.Duration {
	if s.reg == nil || !s.ended.CompareAndSwap(false, true) {
		return 0
	}
	d := time.Since(s.start)
	s.reg.observeSpan(s.name, s.start, d)
	return d
}

// spanTrack maps a span name onto its timeline track: the first path
// segment ("sweep/convergence" → "sweep"), or the whole name when flat.
func spanTrack(name string) string {
	if i := strings.IndexByte(name, '/'); i > 0 {
		return name[:i]
	}
	return name
}
