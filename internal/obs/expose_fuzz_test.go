package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"regexp"
	"strings"
	"testing"
	"unicode/utf8"
)

// unescapeLabelValue inverts EscapeLabelValue, the way a text-format
// parser would.
func unescapeLabelValue(s string) (string, bool) {
	var out strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' {
			if c == '"' || c == '\n' {
				return "", false // raw specials must never survive escaping
			}
			out.WriteByte(c)
			continue
		}
		i++
		if i >= len(s) {
			return "", false // dangling backslash
		}
		switch s[i] {
		case '\\':
			out.WriteByte('\\')
		case '"':
			out.WriteByte('"')
		case 'n':
			out.WriteByte('\n')
		default:
			return "", false // invalid escape
		}
	}
	return out.String(), true
}

// FuzzEscapeLabelValue checks the text-format escaping against the spec:
// the escaped form must contain no raw quote/newline/stray backslash,
// must round-trip back to the input, and must leave valid UTF-8 valid.
func FuzzEscapeLabelValue(f *testing.F) {
	f.Add("")
	f.Add("plain")
	f.Add(`back\slash`)
	f.Add(`quote"quote`)
	f.Add("line\nbreak")
	f.Add("\\\"\n\\n")
	f.Add("héllo wörld ☃")
	f.Add(string([]byte{0xff, 0xfe})) // invalid UTF-8 must not panic
	f.Fuzz(func(t *testing.T, s string) {
		esc := EscapeLabelValue(s)
		back, ok := unescapeLabelValue(esc)
		if !ok {
			t.Fatalf("escaped form %q is not parseable", esc)
		}
		if back != s {
			t.Fatalf("round trip: %q -> %q -> %q", s, esc, back)
		}
		if utf8.ValidString(s) && !utf8.ValidString(esc) {
			t.Fatalf("escaping broke UTF-8: %q -> %q", s, esc)
		}
	})
}

var promNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// FuzzSanitizeMetricName checks that any input maps onto the Prometheus
// metric-name grammar.
func FuzzSanitizeMetricName(f *testing.F) {
	f.Add("")
	f.Add("good_name")
	f.Add("9starts_with_digit")
	f.Add("dash-dot.slash/space name")
	f.Add("ünicode☃")
	f.Fuzz(func(t *testing.T, s string) {
		n := SanitizeMetricName(s)
		if !promNameRe.MatchString(n) {
			t.Fatalf("sanitized %q -> %q violates the name grammar", s, n)
		}
	})
}

// FuzzExposition registers metrics under an arbitrary name and checks
// both expositions stay well-formed: the text format line-parses with
// legal names and quoted le labels, and the JSON parses back.
func FuzzExposition(f *testing.F) {
	f.Add("normal_name", 1.5)
	f.Add("name with\nnewline\"and quote\\", -3.0)
	f.Add("ünicode", 0.25)
	f.Fuzz(func(t *testing.T, name string, bound float64) {
		r := NewRegistry()
		r.Counter(name).Add(2)
		r.Gauge(name + "_g").Set(bound)
		h := r.Histogram(name+"_h", []float64{bound})
		h.Observe(bound)

		var text bytes.Buffer
		if err := r.WriteText(&text); err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(&text)
		for sc.Scan() {
			line := sc.Text()
			if line == "" || strings.HasPrefix(line, "# ") {
				continue
			}
			fields := strings.SplitN(line, " ", 2)
			if len(fields) != 2 {
				t.Fatalf("malformed sample line %q", line)
			}
			metric := fields[0]
			if i := strings.IndexByte(metric, '{'); i >= 0 {
				if !strings.HasSuffix(metric, "}") {
					t.Fatalf("unterminated label set in %q", line)
				}
				labels := metric[i+1 : len(metric)-1]
				if !strings.HasPrefix(labels, `le="`) || !strings.HasSuffix(labels, `"`) {
					t.Fatalf("bad le label in %q", line)
				}
				if _, ok := unescapeLabelValue(labels[4 : len(labels)-1]); !ok {
					t.Fatalf("unparseable label value in %q", line)
				}
				metric = metric[:i]
			}
			if !promNameRe.MatchString(metric) {
				t.Fatalf("illegal metric name in %q", line)
			}
		}
		if err := sc.Err(); err != nil {
			// A raw newline inside a label value would split a sample line;
			// scanner errors only on absurd line lengths.
			t.Fatal(err)
		}

		var js bytes.Buffer
		if err := r.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		var snap Snapshot
		if err := json.Unmarshal(js.Bytes(), &snap); err != nil {
			t.Fatalf("JSON exposition does not parse: %v", err)
		}
		// Go's JSON encoder rewrites invalid UTF-8 in keys to U+FFFD, so
		// only valid names are expected to round-trip exactly.
		if utf8.ValidString(name) && snap.Counters[name] != 2 {
			t.Fatalf("counter %q lost in JSON round trip", name)
		}
	})
}
