package obs

import (
	"testing"
	"time"

	"press/internal/obs/obstest"
)

func TestRecorderSamplesRegistry(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("frames_total").Add(3)
	reg.Gauge("best").Set(1.5)
	rec := NewRecorder(reg, time.Hour, 8) // manual sampling only
	rec.sampleOnce()
	reg.Counter("frames_total").Add(2)
	rec.sampleOnce()
	samples := rec.Samples()
	if len(samples) != 2 {
		t.Fatalf("samples = %d, want 2", len(samples))
	}
	if samples[0].Counters["frames_total"] != 3 || samples[1].Counters["frames_total"] != 5 {
		t.Errorf("counter series = %d, %d; want 3, 5",
			samples[0].Counters["frames_total"], samples[1].Counters["frames_total"])
	}
	if samples[0].Gauges["best"] != 1.5 {
		t.Errorf("gauge = %v", samples[0].Gauges["best"])
	}
	if samples[0].UnixMs == 0 {
		t.Error("sample missing timestamp")
	}
}

func TestRecorderRingBounded(t *testing.T) {
	rec := NewRecorder(NewRegistry(), time.Hour, 4)
	for i := 0; i < 10; i++ {
		rec.sampleOnce()
	}
	samples := rec.Samples()
	if len(samples) != 4 {
		t.Fatalf("samples = %d, want ring cap 4", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].UnixMs < samples[i-1].UnixMs {
			t.Error("samples out of order")
		}
	}
}

func TestRecorderSubscribe(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(reg, time.Hour, 4)
	ch, cancel := rec.Subscribe(4)
	rec.sampleOnce()
	select {
	case s := <-ch:
		if s.UnixMs == 0 {
			t.Error("empty sample delivered")
		}
	case <-time.After(time.Second):
		t.Fatal("no sample delivered")
	}
	cancel()
	if _, ok := <-ch; ok {
		t.Error("channel not closed by cancel")
	}
	rec.sampleOnce() // must not panic after unsubscribe
}

func TestRecorderStartStop(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(reg, time.Millisecond, 64)
	rec.Start()
	rec.Start() // idempotent
	obstest.WaitUntil(t, 2*time.Second, func() bool { return len(rec.Samples()) >= 3 })
	if n := len(rec.Samples()); n < 3 {
		t.Fatalf("only %d samples after waiting", n)
	}
	rec.Stop()
	rec.Stop() // idempotent
	n := len(rec.Samples())
	time.Sleep(5 * time.Millisecond)
	if len(rec.Samples()) != n {
		t.Error("recorder still sampling after Stop")
	}
}

func TestRecorderStopWithoutStart(t *testing.T) {
	rec := NewRecorder(NewRegistry(), time.Millisecond, 4)
	done := make(chan struct{})
	go func() { rec.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Stop without Start hangs")
	}
}
