package export

import (
	"flag"
	"fmt"
	"io"
	"time"

	"press/internal/obs/slo"
)

// CLI extends slo.CLI with the push-export pipeline: -export-url,
// -export-interval, and -export-format bring up an Exporter shipping
// registry deltas to an HTTP or file sink, with /exportz on the live
// server and flush-on-shutdown in Finish. Drop-in replacement for
// slo.CLI — this is the top of the telemetry CLI chain:
//
//	var tele export.CLI
//	tele.Register(fs)
//	// after fs.Parse:
//	if err := tele.Start(os.Stderr); err != nil { ... }
//	defer tele.Finish(os.Stdout)
//
// Without -export-url the exporter is nil and every hook below stays a
// pointer check.
type CLI struct {
	slo.CLI

	// ExportURL is the sink destination: http(s):// for a collector
	// endpoint (e.g. `pressctl collect`), anything else for an NDJSON
	// append file. Empty disables the export pipeline.
	ExportURL string
	// ExportInterval is the collection cadence (0 = DefaultInterval).
	ExportInterval time.Duration
	// ExportFormat is the payload encoding: ndjson (default) or json.
	ExportFormat string

	exporter *Exporter
}

// Register installs the slo telemetry flags plus the export flags.
func (c *CLI) Register(fs *flag.FlagSet) {
	c.CLI.Register(fs)
	fs.StringVar(&c.ExportURL, "export-url", "",
		"push telemetry batches to this sink (http(s)://collector, or a file path for NDJSON append)")
	fs.DurationVar(&c.ExportInterval, "export-interval", 0,
		"telemetry export collection cadence (default 1s)")
	fs.StringVar(&c.ExportFormat, "export-format", "",
		"telemetry export payload format: ndjson|json (default ndjson)")
}

// Start brings up the slo/prof/perf/flight/health/obs stack, then the
// export pipeline when -export-url is set. The exporter forces a live
// registry into existence — pushing telemetry is meaningless without
// one — so -export-url alone is enough, no -telemetry required.
func (c *CLI) Start(logw io.Writer) error {
	if !ValidFormat(c.ExportFormat) {
		return fmt.Errorf("export: unknown -export-format %q (want ndjson|json)", c.ExportFormat)
	}
	if c.ExportInterval < 0 {
		return fmt.Errorf("export: negative -export-interval %v", c.ExportInterval)
	}
	if c.ExportURL != "" {
		c.ForceRegistry = true
	}
	if err := c.CLI.Start(logw); err != nil {
		return err
	}
	if c.ExportURL == "" {
		return nil
	}
	sink, err := NewSink(c.ExportURL, c.ExportFormat)
	if err != nil {
		return err
	}
	c.exporter = New(c.Registry(), sink, Options{
		Interval: c.ExportInterval,
		Format:   c.ExportFormat,
		Monitor:  c.Health(),
	})
	RegisterRoutes(c.Server(), c.exporter)
	c.exporter.Start()
	if logger := c.Logger(); logger != nil {
		logger.Info("telemetry export started", "sink", sink.String())
	}
	return nil
}

// Exporter returns the push pipeline, nil when -export-url was not
// given — callers hand it to the scope layer unconditionally.
func (c *CLI) Exporter() *Exporter { return c.exporter }

// Finish flushes and stops the exporter, then tears down the telemetry
// stack. Export flush errors never mask the stack's own teardown error.
func (c *CLI) Finish(stdout io.Writer) error {
	expErr := c.exporter.Stop()
	c.exporter = nil
	if err := c.CLI.Finish(stdout); err != nil {
		return err
	}
	return expErr
}
