// Package export is the push half of the telemetry layer: where every
// endpoint PRs 1–8 built is pull-based (a scrape reads the registry on
// demand), the exporter ships registry state out of the process to a
// collector — the egress a fleet of long-running environment
// controllers needs once per-room scrape endpoints stop scaling.
//
// The pipeline is snapshot-diff → bounded queue → shipper:
//
//   - A collector goroutine snapshots the root registry (and every
//     live per-session scope registry) on a timer and turns each into a
//     delta Batch: counter/histogram/span increments since the previous
//     successful enqueue, gauges as latest values.
//   - Batches go into a bounded in-memory queue with a non-blocking
//     enqueue. Overflow drops the batch and increments
//     obs_export_dropped_total — but the diff baseline only advances on
//     a successful enqueue, so a dropped batch's counter deltas fold
//     into the next batch instead of vanishing: totals at the collector
//     still reconcile with the registry once the sink recovers.
//   - A shipper goroutine drains the queue, encodes batches as NDJSON
//     or a JSON array, and sends them to the Sink, retrying with
//     exponential backoff plus jitter while the sink is down. A dead or
//     slow collector therefore never blocks anything: producers write
//     atomics into the registry exactly as before, the collector's
//     enqueue never waits, and only the shipper sleeps.
//
// Shutdown is flush-on-stop via obs.Lifecycle: Stop runs one final
// collection, then gives the shipper a bounded window to drain what is
// queued. Self-telemetry (batches sent/failed/dropped, retries, queue
// depth, last-success age) lands in the same registry it exports, is
// served at /exportz, and feeds the channel-health monitor's export_*
// KPIs so the alert engine can fire when the collector has been
// unreachable too long.
//
// A nil *Exporter disables everything at the cost of a pointer check,
// the package-wide convention.
package export

import (
	"context"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"press/internal/obs"
	"press/internal/obs/health"
	"press/internal/obs/names"
)

// BatchSchema versions the Batch wire shape.
const BatchSchema = 1

// Defaults for Options' tuning knobs.
const (
	// DefaultInterval is the collection cadence when none is configured.
	DefaultInterval = time.Second
	// DefaultQueueCap bounds the in-memory batch queue.
	DefaultQueueCap = 256
	// DefaultRetryBase is the first retry backoff after a failed send.
	DefaultRetryBase = 250 * time.Millisecond
	// DefaultRetryMax caps the exponential backoff.
	DefaultRetryMax = 15 * time.Second
	// DefaultFlushTimeout bounds the final drain attempt at Stop.
	DefaultFlushTimeout = 2 * time.Second
	// maxCoalesce bounds how many queued batches one send carries.
	maxCoalesce = 32
)

// Self-telemetry metric names the exporter maintains in the registry it
// exports (so the pipeline observes itself through the pipeline). The
// spellings live in internal/obs/names so health rules and tests can't
// drift from the producer.
const (
	CounterBatchesSent   = names.ExportBatchesSent
	CounterBatchesFailed = names.ExportBatchesFailed
	CounterRetries       = names.ExportRetries
	CounterDropped       = names.ExportDropped
	GaugeQueueDepth      = names.ExportQueueDepth
	GaugeLastSuccessMs   = names.ExportLastSuccessMs
)

// HistDelta is a histogram's increment between two snapshots: how many
// observations arrived and what they summed to. Bucket layouts stay
// process-local; collectors that need quantiles subscribe to the pull
// endpoints instead.
type HistDelta struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
}

// SpanDelta is a span aggregate's increment between two snapshots.
type SpanDelta struct {
	Count        int64   `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
}

// Batch is one export payload: the delta of one source registry since
// the previous successfully enqueued batch, stamped with the session
// the registry belongs to ("" = the process root). Counters, histogram
// count/sum pairs, and span aggregates are increments; gauges carry
// their latest value.
type Batch struct {
	Schema     int                  `json:"schema"`
	Seq        uint64               `json:"seq"`
	Session    string               `json:"session,omitempty"`
	UnixMs     int64                `json:"unix_ms"`
	Counters   map[string]int64     `json:"counters,omitempty"`
	Gauges     map[string]float64   `json:"gauges,omitempty"`
	Histograms map[string]HistDelta `json:"histograms,omitempty"`
	Spans      map[string]SpanDelta `json:"spans,omitempty"`
}

// empty reports whether the batch carries no data beyond its stamp.
func (b Batch) empty() bool {
	return len(b.Counters) == 0 && len(b.Gauges) == 0 &&
		len(b.Histograms) == 0 && len(b.Spans) == 0
}

// SessionSource enumerates live per-session registries for the
// collector: emit is called once per session with its ID and registry.
// The scope layer's Set provides one without export depending on scope.
type SessionSource func(emit func(id string, reg *obs.Registry))

// Tap is a local, in-process subscriber to the same per-source delta
// batches the sink leg ships — how the tsdb store rides the exporter's
// snapshot-diff machinery without re-walking the registry. Offer must
// not block; it reports whether the batch was accepted. The tap keeps
// its own diff baseline inside the exporter, advanced only on an
// accepted offer, so a rejected batch's deltas fold into the next one —
// the same reconciliation invariant the queue leg has.
type Tap interface {
	Offer(Batch) bool
}

// Options tunes an Exporter.
type Options struct {
	// Interval is the collection cadence (≤ 0: DefaultInterval).
	Interval time.Duration
	// Format is the payload encoding, "ndjson" (default) or "json".
	Format string
	// QueueCap bounds the batch queue (≤ 0: DefaultQueueCap).
	QueueCap int
	// Session labels the root registry's batches ("" = unlabeled).
	Session string
	// Monitor, when set, receives ObserveExport readings each
	// collection so the export_* KPIs and their alert rules see the
	// pipeline's state.
	Monitor *health.Monitor
	// RetryBase/RetryMax shape the send backoff (≤ 0: defaults).
	RetryBase time.Duration
	RetryMax  time.Duration
	// FlushTimeout bounds Stop's final drain (≤ 0: default).
	FlushTimeout time.Duration
}

// srcBaseline is the last successfully enqueued snapshot of one source,
// the subtrahend of the next delta.
type srcBaseline struct {
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]HistDelta
	spans    map[string]SpanDelta
	seen     bool // source emitted at least one batch
}

// Exporter is the push pipeline over one root registry plus any number
// of session registries. All methods are safe for concurrent use and on
// a nil receiver.
type Exporter struct {
	reg  *obs.Registry
	sink Sink
	opt  Options

	q        chan Batch
	collect  obs.Lifecycle
	ship     obs.Lifecycle
	sessions atomic.Pointer[SessionSource]
	rootSess atomic.Pointer[string]

	// diffMu serializes collections (the timer loop, CollectNow, and
	// the final Stop collection) over the per-source baselines.
	diffMu  sync.Mutex
	base    map[string]*srcBaseline
	tap     Tap
	tapBase map[string]*srcBaseline

	seq       atomic.Uint64
	enqueued  atomic.Int64
	sent      atomic.Int64
	sendFails atomic.Int64
	retries   atomic.Int64
	dropped   atomic.Int64
	unflushed atomic.Int64
	started   time.Time

	lastSuccessNs atomic.Int64
	errMu         sync.Mutex
	lastErr       string
	lastErrNs     int64

	// Self-metric handles, resolved once.
	mSent, mFailed, mRetries, mDropped *obs.Counter
	mDepth, mLastOK                    *obs.Gauge
}

// New builds an exporter shipping reg (plus any registered session
// sources) to sink. Call Start to begin collecting; the exporter owns
// the sink and closes it in Stop.
//
// A nil sink is the local-only collector mode: the snapshot-diff loop
// runs, attached taps receive batches, but there is no queue shipper
// and no obs_export_* self-metrics (nothing is being exported, so the
// push pipeline must not report itself live). This is how `-tsdb-dir`
// gets per-source deltas without requiring `-export-url`.
func New(reg *obs.Registry, sink Sink, opt Options) *Exporter {
	if opt.Interval <= 0 {
		opt.Interval = DefaultInterval
	}
	if opt.QueueCap <= 0 {
		opt.QueueCap = DefaultQueueCap
	}
	if opt.RetryBase <= 0 {
		opt.RetryBase = DefaultRetryBase
	}
	if opt.RetryMax <= 0 {
		opt.RetryMax = DefaultRetryMax
	}
	if opt.FlushTimeout <= 0 {
		opt.FlushTimeout = DefaultFlushTimeout
	}
	if opt.Format == "" {
		opt.Format = FormatNDJSON
	}
	e := &Exporter{
		reg:     reg,
		sink:    sink,
		opt:     opt,
		q:       make(chan Batch, opt.QueueCap),
		base:    map[string]*srcBaseline{},
		tapBase: map[string]*srcBaseline{},
	}
	if sink != nil {
		// Local-only mode leaves the handles nil (nil handles are
		// no-ops), keeping obs_export_* out of a registry nothing
		// exports from.
		e.mSent = reg.Counter(CounterBatchesSent)
		e.mFailed = reg.Counter(CounterBatchesFailed)
		e.mRetries = reg.Counter(CounterRetries)
		e.mDropped = reg.Counter(CounterDropped)
		e.mDepth = reg.Gauge(GaugeQueueDepth)
		e.mLastOK = reg.Gauge(GaugeLastSuccessMs)
	}
	if opt.Session != "" {
		s := opt.Session
		e.rootSess.Store(&s)
	}
	return e
}

// SetSessions installs (or, with nil, removes) the per-session registry
// enumerator. Safe before or after Start and on a nil exporter.
func (e *Exporter) SetSessions(src SessionSource) {
	if e == nil {
		return
	}
	if src == nil {
		e.sessions.Store(nil)
		return
	}
	e.sessions.Store(&src)
}

// SetRootSession labels the root registry's batches with a session ID —
// how an adopted single-scope CLI run (pressim, pressctl demo) stamps
// its identity onto everything it pushes. Safe on a nil exporter.
func (e *Exporter) SetRootSession(id string) {
	if e == nil {
		return
	}
	// Copy after the nil check: storing &id directly would make the
	// parameter escape, charging the nil (disabled) path one heap
	// allocation in the prologue.
	s := id
	e.rootSess.Store(&s)
}

// AttachTap installs a local batch subscriber (nil removes it). The tap
// gets its own per-source baselines, so it and the sink leg reconcile
// independently: each sees every delta exactly once across the batches
// it accepted. Safe before or after Start and on a nil exporter.
func (e *Exporter) AttachTap(t Tap) {
	if e == nil {
		return
	}
	e.diffMu.Lock()
	e.tap = t
	if t == nil {
		e.tapBase = map[string]*srcBaseline{}
	}
	e.diffMu.Unlock()
}

// Start launches the collector and shipper goroutines. Idempotent; a
// nil exporter ignores the call.
func (e *Exporter) Start() {
	if e == nil {
		return
	}
	if e.sink != nil {
		e.ship.Start(nil, e.shipLoop)
	}
	e.collect.Start(func() { e.started = time.Now(); e.CollectNow() }, e.collectLoop)
}

// Stop runs one final collection, drains the queue into the sink within
// FlushTimeout, and closes the sink. Idempotent; nil-safe. The returned
// error is the sink's close error (batches that could not be flushed
// are counted, not failed on — losing the tail of telemetry must not
// fail the run that produced it).
func (e *Exporter) Stop() error {
	if e == nil {
		return nil
	}
	e.collect.Stop()
	if e.started.IsZero() {
		// Never started: nothing collected, nothing to flush. (Reading
		// started is safe: collect.Stop consumed the start-once, so no
		// setup can write it after this point.)
		e.ship.Stop()
		return e.closeSink()
	}
	e.ship.Stop() // shipper drains the queue + one flush attempt on exit
	// The tail of the run — whatever accrued after the last timer tick,
	// including deltas folded back by overflow drops — goes around the
	// queue entirely: with the shipper gone nothing would drain it, and
	// the shutdown tail must not be lost to a still-full queue. The
	// collection inside also hands the tail to the tap.
	e.flushFinal()
	return e.closeSink()
}

func (e *Exporter) closeSink() error {
	if e.sink == nil {
		return nil
	}
	return e.sink.Close()
}

func (e *Exporter) collectLoop(stop <-chan struct{}) {
	t := time.NewTicker(e.opt.Interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			e.CollectNow()
		}
	}
}

// CollectNow snapshots every source and enqueues the resulting delta
// batches immediately — the timer path, exported so tests (and the
// scope layer, before it tears a session down) can force a collection.
// Safe on a nil exporter.
func (e *Exporter) CollectNow() {
	if e == nil {
		return
	}
	e.diffMu.Lock()
	defer e.diffMu.Unlock()
	now := time.Now()

	rootSession := ""
	if p := e.rootSess.Load(); p != nil {
		rootSession = *p
	}
	live := map[string]bool{"": true}
	// Root first: its batch doubles as the pipeline heartbeat, so it is
	// emitted even when empty (a collector distinguishing "idle" from
	// "dead" needs the difference).
	e.collectSource("", rootSession, e.reg, now, true, nil)
	if src := e.sessions.Load(); src != nil {
		(*src)(func(id string, reg *obs.Registry) {
			if id == "" || reg == nil || live[id] {
				return
			}
			live[id] = true
			e.collectSource(id, id, reg, now, false, nil)
		})
	}
	// Prune baselines of sessions that no longer exist: their writes
	// rolled up into the root registry all along, so the process totals
	// still reconcile; only the per-session tail is gone with them.
	for id := range e.base {
		if !live[id] {
			delete(e.base, id)
		}
	}
	for id := range e.tapBase {
		if !live[id] {
			delete(e.tapBase, id)
		}
	}

	e.mDepth.Set(float64(len(e.q)))
	e.observeHealth(now)
}

// collectSource diffs one registry against its baselines and delivers
// the deltas: once to the attached tap (against the tap's baseline) and
// once to the sink leg — enqueued, or, when direct is non-nil (the
// shutdown path), appended there instead, bypassing the queue. Caller
// holds diffMu.
func (e *Exporter) collectSource(key, session string, reg *obs.Registry, now time.Time, heartbeat bool, direct *[]Batch) {
	snap := reg.Snapshot()
	if e.tap != nil {
		tb := e.tapBase[key]
		if tb == nil {
			tb = newBaseline()
			e.tapBase[key] = tb
		}
		if b := diffSnapshot(tb, snap, session, now); !b.empty() {
			b.Seq = e.seq.Add(1)
			if e.tap.Offer(b) {
				e.advanceBaseline(tb, snap)
			}
			// Rejected: leave the baseline, the deltas fold into the
			// next offered batch (the store counts the drop itself).
		}
	}
	if e.sink == nil {
		return // local-only mode: no queue, no shipper
	}
	base := e.base[key]
	if base == nil {
		base = newBaseline()
		e.base[key] = base
	}
	b := diffSnapshot(base, snap, session, now)
	if direct != nil {
		// Shutdown tail: only data matters, no heartbeats.
		if b.empty() {
			return
		}
		b.Seq = e.seq.Add(1)
		*direct = append(*direct, b)
		e.advanceBaseline(base, snap)
		return
	}
	if b.empty() && !heartbeat && base.seen {
		return
	}
	b.Seq = e.seq.Add(1)
	select {
	case e.q <- b:
		e.enqueued.Add(1)
		e.advanceBaseline(base, snap)
	default:
		// Queue full: drop the batch, count it, and leave the baseline
		// alone — these deltas ride the next batch that fits.
		e.dropped.Add(1)
		e.mDropped.Inc()
	}
}

func newBaseline() *srcBaseline {
	return &srcBaseline{
		counters: map[string]int64{},
		gauges:   map[string]float64{},
		hists:    map[string]HistDelta{},
		spans:    map[string]SpanDelta{},
	}
}

// diffSnapshot builds the delta batch of snap against base: counter,
// histogram, and span increments, gauges that changed since the last
// advance (all of them on first contact). It does not touch base — the
// caller advances it only once the batch has been handed off.
func diffSnapshot(base *srcBaseline, snap obs.Snapshot, session string, now time.Time) Batch {
	b := Batch{Schema: BatchSchema, Session: session, UnixMs: now.UnixMilli()}
	for name, v := range snap.Counters {
		if d := v - base.counters[name]; d != 0 {
			if b.Counters == nil {
				b.Counters = map[string]int64{}
			}
			b.Counters[name] = d
		}
	}
	// Gauges are latest-value, not deltas: ship the ones that changed
	// since the last successful enqueue (all of them on first contact).
	for name, v := range snap.Gauges {
		prev, had := base.gauges[name]
		if !base.seen || !had || prev != v {
			if b.Gauges == nil {
				b.Gauges = map[string]float64{}
			}
			b.Gauges[name] = v
		}
	}
	for name, h := range snap.Histograms {
		prev := base.hists[name]
		if d := (HistDelta{Count: h.Count - prev.Count, Sum: h.Sum - prev.Sum}); d.Count != 0 {
			if b.Histograms == nil {
				b.Histograms = map[string]HistDelta{}
			}
			b.Histograms[name] = d
		}
	}
	for name, s := range snap.Spans {
		prev := base.spans[name]
		if d := (SpanDelta{Count: s.Count - prev.Count, TotalSeconds: s.TotalSeconds - prev.TotalSeconds}); d.Count != 0 {
			if b.Spans == nil {
				b.Spans = map[string]SpanDelta{}
			}
			b.Spans[name] = d
		}
	}
	return b
}

// advanceBaseline moves a source's diff baseline to snap — only after
// the corresponding batch has been handed off, so un-handed deltas keep
// folding into the next batch. Caller holds diffMu.
func (e *Exporter) advanceBaseline(base *srcBaseline, snap obs.Snapshot) {
	for name, v := range snap.Counters {
		base.counters[name] = v
	}
	for name, v := range snap.Gauges {
		base.gauges[name] = v
	}
	for name, h := range snap.Histograms {
		base.hists[name] = HistDelta{Count: h.Count, Sum: h.Sum}
	}
	for name, s := range snap.Spans {
		base.spans[name] = SpanDelta{Count: s.Count, TotalSeconds: s.TotalSeconds}
	}
	base.seen = true
}

// flushFinal collects the run's tail directly into one bounded send,
// bypassing the queue (the shipper is already gone). Undeliverable
// batches are counted as unflushed and dropped, not retried.
func (e *Exporter) flushFinal() {
	e.diffMu.Lock()
	now := time.Now()
	rootSession := ""
	if p := e.rootSess.Load(); p != nil {
		rootSession = *p
	}
	var batch []Batch
	e.collectSource("", rootSession, e.reg, now, false, &batch)
	if src := e.sessions.Load(); src != nil {
		seen := map[string]bool{"": true}
		(*src)(func(id string, reg *obs.Registry) {
			if id == "" || reg == nil || seen[id] {
				return
			}
			seen[id] = true
			e.collectSource(id, id, reg, now, false, &batch)
		})
	}
	e.diffMu.Unlock()
	if len(batch) == 0 {
		return
	}
	if !e.trySend(batch, e.opt.FlushTimeout) {
		n := int64(len(batch))
		e.unflushed.Add(n)
		e.dropped.Add(n)
		e.mDropped.Add(n)
	}
}

// observeHealth feeds the monitor's export_* KPIs. Called with diffMu
// held (cheap: three atomics and a time read).
func (e *Exporter) observeHealth(now time.Time) {
	if e.opt.Monitor == nil {
		return
	}
	e.opt.Monitor.ObserveExport(len(e.q), e.dropped.Load(), e.lastSuccessAge(now).Seconds())
}

// lastSuccessAge is the time since the last successful send; before any
// success it counts from Start, so a collector that was never reachable
// ages from the beginning of the run.
func (e *Exporter) lastSuccessAge(now time.Time) time.Duration {
	if ns := e.lastSuccessNs.Load(); ns > 0 {
		return now.Sub(time.Unix(0, ns))
	}
	if e.started.IsZero() {
		return 0
	}
	return now.Sub(e.started)
}

func (e *Exporter) shipLoop(stop <-chan struct{}) {
	for {
		select {
		case b := <-e.q:
			e.mDepth.Set(float64(len(e.q)))
			batch := []Batch{b}
		coalesce:
			for len(batch) < maxCoalesce {
				select {
				case nb := <-e.q:
					batch = append(batch, nb)
				default:
					break coalesce
				}
			}
			if !e.sendWithRetry(batch, stop) {
				// Stop arrived mid-retry: hand the undelivered batches
				// to the final flush below.
				e.flush(batch)
				return
			}
		case <-stop:
			e.flush(nil)
			return
		}
	}
}

// sendWithRetry ships one coalesced batch set, backing off
// exponentially with ±50% jitter until it succeeds or stop closes.
func (e *Exporter) sendWithRetry(batch []Batch, stop <-chan struct{}) bool {
	backoff := e.opt.RetryBase
	for {
		if e.trySend(batch, 0) {
			return true
		}
		select {
		case <-stop:
			return false
		default:
		}
		e.retries.Add(1)
		e.mRetries.Inc()
		sleep := backoff/2 + time.Duration(rand.Int64N(int64(backoff)))
		select {
		case <-stop:
			return false
		case <-time.After(sleep):
		}
		if backoff *= 2; backoff > e.opt.RetryMax {
			backoff = e.opt.RetryMax
		}
	}
}

// trySend makes one send attempt and updates the self-telemetry.
func (e *Exporter) trySend(batch []Batch, timeout time.Duration) bool {
	payload, err := EncodeBatches(e.opt.Format, batch)
	if err == nil {
		if timeout <= 0 {
			timeout = 5 * time.Second
		}
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		err = e.sink.Send(ctx, payload)
		cancel()
	}
	if err != nil {
		e.sendFails.Add(int64(len(batch)))
		e.mFailed.Add(int64(len(batch)))
		e.errMu.Lock()
		e.lastErr = err.Error()
		e.lastErrNs = time.Now().UnixNano()
		e.errMu.Unlock()
		return false
	}
	now := time.Now()
	e.sent.Add(int64(len(batch)))
	e.mSent.Add(int64(len(batch)))
	e.lastSuccessNs.Store(now.UnixNano())
	e.mLastOK.Set(float64(now.UnixMilli()))
	return true
}

// flush drains carried plus queued batches into one final bounded send
// attempt — the shutdown path. Undeliverable batches are counted as
// unflushed (and dropped) rather than retried: the process is exiting.
func (e *Exporter) flush(carried []Batch) {
	batch := carried
drain:
	for {
		select {
		case b := <-e.q:
			batch = append(batch, b)
		default:
			break drain
		}
	}
	e.mDepth.Set(0)
	if len(batch) == 0 {
		return
	}
	if !e.trySend(batch, e.opt.FlushTimeout) {
		e.unflushed.Add(int64(len(batch)))
		e.dropped.Add(int64(len(batch)))
		e.mDropped.Add(int64(len(batch)))
	}
}

// State is the /exportz document: pipeline configuration plus live
// counters, everything an operator needs to judge egress health.
type State struct {
	Enabled          bool    `json:"enabled"`
	Sink             string  `json:"sink,omitempty"`
	Format           string  `json:"format,omitempty"`
	Session          string  `json:"session,omitempty"`
	IntervalMs       int64   `json:"interval_ms,omitempty"`
	QueueLen         int     `json:"queue_len"`
	QueueCap         int     `json:"queue_cap"`
	NextSeq          uint64  `json:"next_seq"`
	Enqueued         int64   `json:"enqueued"`
	Sent             int64   `json:"sent"`
	SendFailures     int64   `json:"send_failures"`
	Retries          int64   `json:"retries"`
	Dropped          int64   `json:"dropped"`
	Unflushed        int64   `json:"unflushed,omitempty"`
	LastSuccessUnix  int64   `json:"last_success_unix_ms,omitempty"`
	LastSuccessAgeS  float64 `json:"last_success_age_s,omitempty"`
	LastError        string  `json:"last_error,omitempty"`
	LastErrorUnixMs  int64   `json:"last_error_unix_ms,omitempty"`
	SessionsExported int     `json:"sessions_exported"`
}

// State snapshots the pipeline. A nil exporter reports Enabled false.
func (e *Exporter) State() State {
	if e == nil {
		return State{}
	}
	st := State{
		// A tap-only exporter (nil sink) is not an enabled push
		// pipeline: nothing leaves the process through it.
		Enabled:    e.sink != nil,
		Format:     e.opt.Format,
		IntervalMs: e.opt.Interval.Milliseconds(),
		QueueLen:   len(e.q),
		QueueCap:   e.opt.QueueCap,
		NextSeq:    e.seq.Load() + 1,
		Enqueued:   e.enqueued.Load(),
		Sent:       e.sent.Load(),
		// A failure is one undelivered batch per attempt; the same batch
		// retried n times counts n.
		SendFailures: e.sendFails.Load(),
		Retries:      e.retries.Load(),
		Dropped:      e.dropped.Load(),
		Unflushed:    e.unflushed.Load(),
	}
	if e.sink != nil {
		st.Sink = e.sink.String()
	}
	if p := e.rootSess.Load(); p != nil {
		st.Session = *p
	}
	if ns := e.lastSuccessNs.Load(); ns > 0 {
		st.LastSuccessUnix = ns / 1e6
		st.LastSuccessAgeS = time.Since(time.Unix(0, ns)).Seconds()
	}
	e.errMu.Lock()
	st.LastError = e.lastErr
	if e.lastErrNs > 0 {
		st.LastErrorUnixMs = e.lastErrNs / 1e6
	}
	e.errMu.Unlock()
	e.diffMu.Lock()
	for id := range e.base {
		if id != "" {
			st.SessionsExported++
		}
	}
	e.diffMu.Unlock()
	return st
}

// HealthzLine renders the one-line /healthz status: queue occupancy,
// drop count, and last-success age. Empty on a nil exporter.
func (e *Exporter) HealthzLine() string {
	if e == nil || e.sink == nil {
		return ""
	}
	st := e.State()
	age := e.lastSuccessAge(time.Now())
	return "export: queue " + itoa(st.QueueLen) + "/" + itoa(st.QueueCap) +
		", sent " + itoa64(st.Sent) + ", dropped " + itoa64(st.Dropped) +
		", last success " + age.Truncate(time.Millisecond).String() + " ago"
}

func itoa(v int) string { return itoa64(int64(v)) }
func itoa64(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
