package export

import (
	"testing"
	"time"

	"press/internal/obs"
)

// recordingTap collects offered batches, optionally rejecting them.
type recordingTap struct {
	reject  bool
	batches []Batch
}

func (rt *recordingTap) Offer(b Batch) bool {
	if rt.reject {
		return false
	}
	rt.batches = append(rt.batches, b)
	return true
}

func (rt *recordingTap) counterTotal(session, name string) int64 {
	var total int64
	for _, b := range rt.batches {
		if b.Session == session {
			total += b.Counters[name]
		}
	}
	return total
}

// TestTapLocalOnlyMode: a nil-sink exporter runs the snapshot-diff
// collector for its taps alone — no queue, no shipper, no obs_export_*
// self-metrics polluting the registry.
func TestTapLocalOnlyMode(t *testing.T) {
	reg := obs.NewRegistry()
	tap := &recordingTap{}
	e := New(reg, nil, Options{Session: "run"})
	e.AttachTap(tap)

	reg.Counter("tap_work_total").Add(5)
	e.CollectNow()
	reg.Counter("tap_work_total").Add(2)
	e.CollectNow()
	if err := e.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if got := tap.counterTotal("run", "tap_work_total"); got != 7 {
		t.Fatalf("tap total = %d, want 7", got)
	}
	if _, ok := reg.Snapshot().Counters[CounterBatchesSent]; ok {
		t.Fatal("local-only exporter created obs_export_* metrics")
	}
	if st := e.State(); st.Enabled {
		t.Fatal("local-only exporter reports the push pipeline enabled")
	}
	if e.HealthzLine() != "" {
		t.Fatal("local-only exporter has an export healthz line")
	}
}

// TestTapRejectionFoldsDeltas: a rejected offer must leave the tap
// baseline untouched so the deltas ride the next accepted batch —
// totals reconcile across drops exactly like the queue leg.
func TestTapRejectionFoldsDeltas(t *testing.T) {
	reg := obs.NewRegistry()
	tap := &recordingTap{reject: true}
	e := New(reg, nil, Options{})
	e.AttachTap(tap)

	reg.Counter("fold_total").Add(3)
	e.CollectNow() // rejected
	tap.reject = false
	reg.Counter("fold_total").Add(4)
	e.CollectNow() // accepted: must carry all 7
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	if got := tap.counterTotal("", "fold_total"); got != 7 {
		t.Fatalf("folded total = %d, want 7", got)
	}
	if len(tap.batches) != 1 {
		t.Fatalf("accepted batches = %d, want 1", len(tap.batches))
	}
}

// TestTapAndSinkBaselinesAreIndependent: with both legs live, each
// sees every delta exactly once even when only one leg stalls.
func TestTapAndSinkBaselinesAreIndependent(t *testing.T) {
	reg := obs.NewRegistry()
	tap := &recordingTap{}
	e := New(reg, discardSink{}, Options{Session: "both"})
	e.AttachTap(tap)

	reg.Counter("dual_total").Add(10)
	e.CollectNow()
	tap.reject = true
	reg.Counter("dual_total").Add(5)
	e.CollectNow() // sink leg advances, tap leg folds
	tap.reject = false
	reg.Counter("dual_total").Add(1)
	e.CollectNow()
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	if got := tap.counterTotal("both", "dual_total"); got != 16 {
		t.Fatalf("tap total = %d, want 16", got)
	}
}

// TestTapSessionSources: per-session registries flow through the tap
// with their session labels, and the shutdown tail is delivered.
func TestTapSessionSources(t *testing.T) {
	reg := obs.NewRegistry()
	roomReg := obs.NewRegistryWithParent(reg)
	tap := &recordingTap{}
	e := New(reg, nil, Options{Interval: time.Hour})
	e.AttachTap(tap)
	e.SetSessions(func(emit func(id string, reg *obs.Registry)) {
		emit("room1", roomReg)
	})
	e.Start()

	roomReg.Counter("room_work_total").Add(4)
	e.CollectNow()
	roomReg.Counter("room_work_total").Add(2)
	// Not collected again: Stop's final flush must deliver the tail.
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	if got := tap.counterTotal("room1", "room_work_total"); got != 6 {
		t.Fatalf("room total = %d, want 6 (tail lost?)", got)
	}
	// The child registry rolls up into the parent too.
	if got := tap.counterTotal("", "room_work_total"); got != 6 {
		t.Fatalf("root roll-up total = %d, want 6", got)
	}
}
