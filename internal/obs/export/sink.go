package export

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"
)

// Sink is one export destination. Send ships one encoded payload (a set
// of batches in the exporter's configured format) and returns nil only
// when the collector durably accepted it; any error triggers the
// exporter's retry path. Implementations must be safe for the single
// shipper goroutine plus a concurrent Close.
type Sink interface {
	Send(ctx context.Context, payload []byte) error
	// String names the destination for /exportz and error messages.
	String() string
	Close() error
}

// NewSink builds a sink from a -export-url value: "http://" or
// "https://" URLs get an HTTPSink POSTing each payload; anything else
// (including "file://" prefixed paths) is an append-mode FileSink.
func NewSink(url, format string) (Sink, error) {
	switch {
	case url == "":
		return nil, fmt.Errorf("export: empty sink URL")
	case strings.HasPrefix(url, "http://") || strings.HasPrefix(url, "https://"):
		return NewHTTPSink(url, format), nil
	default:
		return NewFileSink(strings.TrimPrefix(url, "file://"))
	}
}

// HTTPSink POSTs payloads to a collector endpoint — the remote-write
// shape: the body is the encoded batch set, the content type names the
// format, and any non-2xx status is a failed send.
type HTTPSink struct {
	url    string
	ctype  string
	client *http.Client
}

// NewHTTPSink builds an HTTP sink for url with the given payload
// format ("ndjson" or "json").
func NewHTTPSink(url, format string) *HTTPSink {
	ctype := "application/x-ndjson"
	if format == FormatJSON {
		ctype = "application/json"
	}
	return &HTTPSink{
		url:   url,
		ctype: ctype,
		// The exporter bounds each attempt with a context; this client
		// timeout is the backstop against a sink that accepts the
		// connection and then stalls forever.
		client: &http.Client{Timeout: 10 * time.Second},
	}
}

// Send POSTs one payload. Non-2xx responses are errors so the exporter
// retries them like connection failures.
func (s *HTTPSink) Send(ctx context.Context, payload []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.url, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", s.ctype)
	resp, err := s.client.Do(req)
	if err != nil {
		return err
	}
	// Drain so the connection is reusable, but cap it: an adversarial
	// collector must not hold the shipper hostage with an endless body.
	io.CopyN(io.Discard, resp.Body, 1<<16)
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("export: %s returned %s", s.url, resp.Status)
	}
	return nil
}

// String names the endpoint.
func (s *HTTPSink) String() string { return s.url }

// Close releases idle connections.
func (s *HTTPSink) Close() error {
	s.client.CloseIdleConnections()
	return nil
}

// FileSink appends NDJSON payloads to a local file — the offline sink
// for air-gapped runs and tests: batches land one per line regardless
// of the exporter's format, ready for DecodeBatches or `jq`.
type FileSink struct {
	path string
	mu   sync.Mutex
	f    *os.File
}

// NewFileSink opens (creating or appending) the file at path.
func NewFileSink(path string) (*FileSink, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &FileSink{path: path, f: f}, nil
}

// Send appends the payload (with a trailing newline when missing).
func (s *FileSink) Send(ctx context.Context, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("export: file sink %s is closed", s.path)
	}
	if _, err := s.f.Write(payload); err != nil {
		return err
	}
	if len(payload) > 0 && payload[len(payload)-1] != '\n' {
		if _, err := s.f.Write([]byte{'\n'}); err != nil {
			return err
		}
	}
	return nil
}

// String names the file.
func (s *FileSink) String() string { return "file://" + s.path }

// Close syncs and closes the file. Further Sends fail.
func (s *FileSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}
