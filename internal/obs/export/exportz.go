package export

import (
	"encoding/json"
	"io"
	"net/http"

	"press/internal/obs"
)

// RegisterRoutes wires the exporter's introspection endpoint onto the
// live telemetry server: GET /exportz returns the pipeline State as
// JSON, and /healthz grows the exporter's one-line status. Either
// argument may be nil.
func RegisterRoutes(srv *obs.Server, e *Exporter) {
	if srv == nil || e == nil {
		return
	}
	srv.HandleFunc("/exportz", func(w http.ResponseWriter, r *http.Request) {
		obs.ServeJSON(w, r, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(e.State())
		})
	})
	srv.AddHealthz(e.HealthzLine)
}
