package export

import (
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
)

// captureServer is an httptest collector: it accumulates every POSTed
// payload's batches.
type captureServer struct {
	mu      sync.Mutex
	batches []Batch
	fail    bool
}

func (cs *captureServer) handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		payload, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		cs.mu.Lock()
		defer cs.mu.Unlock()
		if cs.fail {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		bs, err := DecodeBatches(payload)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		cs.batches = append(cs.batches, bs...)
		w.WriteHeader(http.StatusNoContent)
	}
}

func (cs *captureServer) counterTotal(session, name string) int64 {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	var total int64
	for _, b := range cs.batches {
		if b.Session == session {
			total += b.Counters[name]
		}
	}
	return total
}

func parseCLI(t *testing.T, args ...string) *CLI {
	t.Helper()
	var c CLI
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c.Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return &c
}

func TestCLIDisabledByDefault(t *testing.T) {
	c := parseCLI(t)
	if err := c.Start(io.Discard); err != nil {
		t.Fatal(err)
	}
	if c.Exporter() != nil {
		t.Error("exporter on without -export-url")
	}
	if c.Registry() != nil {
		t.Error("registry on without any telemetry flag")
	}
	if err := c.Finish(io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestCLIBadFlags(t *testing.T) {
	c := parseCLI(t, "-export-format", "xml")
	if err := c.Start(io.Discard); err == nil {
		c.Finish(io.Discard)
		t.Fatal("bad -export-format accepted")
	}
	c = parseCLI(t, "-export-interval", "-1s")
	if err := c.Start(io.Discard); err == nil {
		c.Finish(io.Discard)
		t.Fatal("negative -export-interval accepted")
	}
}

func TestCLIExportURLAloneForcesRegistry(t *testing.T) {
	cs := &captureServer{}
	srv := httptest.NewServer(cs.handler())
	defer srv.Close()

	c := parseCLI(t, "-export-url", srv.URL, "-export-interval", "1h")
	if err := c.Start(io.Discard); err != nil {
		t.Fatal(err)
	}
	if c.Registry() == nil {
		t.Fatal("-export-url alone must force a live registry")
	}
	if c.Exporter() == nil {
		t.Fatal("no exporter with -export-url")
	}
	c.Registry().Counter("cli_work_total").Add(4)
	c.Exporter().SetRootSession("cli-run")
	c.Exporter().CollectNow()
	if err := c.Finish(io.Discard); err != nil {
		t.Fatal(err)
	}
	if got := cs.counterTotal("cli-run", "cli_work_total"); got != 4 {
		t.Errorf("collector saw cli_work_total = %d, want 4", got)
	}
}

func TestCLIExportzAndHealthz(t *testing.T) {
	cs := &captureServer{}
	collector := httptest.NewServer(cs.handler())
	defer collector.Close()

	c := parseCLI(t,
		"-export-url", collector.URL,
		"-export-interval", "1h",
		"-telemetry-addr", "127.0.0.1:0")
	if err := c.Start(io.Discard); err != nil {
		t.Fatal(err)
	}
	defer c.Finish(io.Discard)
	base := "http://" + c.ServerAddr()

	resp, err := http.Get(base + "/exportz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st State
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if !st.Enabled || st.Sink != collector.URL {
		t.Errorf("/exportz = %+v", st)
	}

	hresp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if !strings.Contains(string(body), "export: queue") {
		t.Errorf("/healthz missing export status line:\n%s", body)
	}
}

func TestCLIRetriesAgainstFlappingCollector(t *testing.T) {
	cs := &captureServer{fail: true}
	collector := httptest.NewServer(cs.handler())
	defer collector.Close()

	c := parseCLI(t, "-export-url", collector.URL, "-export-interval", "5ms")
	if err := c.Start(io.Discard); err != nil {
		t.Fatal(err)
	}
	c.Registry().Counter("flap_total").Add(3)
	waitFor(t, "failures against 503 collector", func() bool {
		return c.Exporter().State().SendFailures > 0
	})
	cs.mu.Lock()
	cs.fail = false // collector restarts
	cs.mu.Unlock()
	waitFor(t, "recovery after restart", func() bool {
		return cs.counterTotal("", "flap_total") == 3
	})
	st := c.Exporter().State()
	if st.Retries == 0 {
		t.Error("no retries counted across collector restart")
	}
	if err := c.Finish(io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestCLIFileSinkViaFlags(t *testing.T) {
	path := t.TempDir() + "/tele.ndjson"
	c := parseCLI(t, "-export-url", path, "-export-interval", "1h")
	if err := c.Start(io.Discard); err != nil {
		t.Fatal(err)
	}
	c.Registry().Counter("file_work_total").Add(2)
	if err := c.Finish(io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	batches, err := DecodeBatches(data)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, b := range batches {
		total += b.Counters["file_work_total"]
	}
	if total != 2 {
		t.Errorf("file sink total = %d, want 2", total)
	}
}
