package export

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"press/internal/obs"
)

// memSink captures payloads in memory. fail makes every Send error;
// block makes Send wait until release is closed (a hung collector).
type memSink struct {
	mu       sync.Mutex
	payloads [][]byte
	fail     bool
	failN    int // fail this many sends, then succeed
	block    chan struct{}
	sends    int
}

func (s *memSink) Send(ctx context.Context, payload []byte) error {
	if s.block != nil {
		select {
		case <-s.block:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sends++
	if s.fail {
		return errors.New("sink down")
	}
	if s.failN > 0 {
		s.failN--
		return errors.New("sink flaky")
	}
	cp := append([]byte(nil), payload...)
	s.payloads = append(s.payloads, cp)
	return nil
}

func (s *memSink) String() string { return "mem://" }
func (s *memSink) Close() error   { return nil }

func (s *memSink) batches(t *testing.T) []Batch {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	var all []Batch
	for _, p := range s.payloads {
		bs, err := DecodeBatches(p)
		if err != nil {
			t.Fatalf("decoding captured payload: %v", err)
		}
		all = append(all, bs...)
	}
	return all
}

// totals sums counter deltas per session across all captured batches.
func totals(batches []Batch) map[string]map[string]int64 {
	out := map[string]map[string]int64{}
	for _, b := range batches {
		m := out[b.Session]
		if m == nil {
			m = map[string]int64{}
			out[b.Session] = m
		}
		for name, d := range b.Counters {
			m[name] += d
		}
	}
	return out
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestDeltasReconcileWithRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	sink := &memSink{}
	e := New(reg, sink, Options{Interval: time.Hour, Session: "run-1"})
	e.Start()

	c := reg.Counter("work_total")
	h := reg.Histogram("latency_seconds", []float64{0.1, 1})
	for i := 0; i < 7; i++ {
		c.Inc()
		h.Observe(0.05)
	}
	e.CollectNow()
	for i := 0; i < 5; i++ {
		c.Inc()
	}
	e.CollectNow()
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}

	batches := sink.batches(t)
	if len(batches) == 0 {
		t.Fatal("no batches delivered")
	}
	for _, b := range batches {
		if b.Schema != BatchSchema {
			t.Fatalf("batch schema %d", b.Schema)
		}
		if b.Session != "run-1" {
			t.Fatalf("batch session %q, want run-1", b.Session)
		}
	}
	got := totals(batches)["run-1"]
	if got["work_total"] != 12 {
		t.Errorf("summed work_total deltas = %d, want 12 (registry %d)",
			got["work_total"], c.Value())
	}
	var hc int64
	for _, b := range batches {
		hc += b.Histograms["latency_seconds"].Count
	}
	if hc != 7 {
		t.Errorf("summed histogram count deltas = %d, want 7", hc)
	}
}

func TestHeartbeatAndQuietSessions(t *testing.T) {
	reg := obs.NewRegistry()
	sink := &memSink{}
	e := New(reg, sink, Options{Interval: time.Hour})
	sessReg := obs.NewRegistryWithParent(reg)
	e.SetSessions(func(emit func(string, *obs.Registry)) { emit("room-1", sessReg) })
	e.Start()

	sessReg.Counter("x_total").Inc()
	e.CollectNow() // room-1's delta
	e.CollectNow() // nothing changed in room-1: root heartbeat only
	e.CollectNow()
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}

	perSession := map[string]int{}
	for _, b := range sink.batches(t) {
		perSession[b.Session]++
	}
	// Root emits every collection: one at Start, three explicit, one
	// from Stop's final collect — heartbeats even when empty. The quiet
	// session emits only its first-contact announcement (at Start) and
	// its one change.
	if perSession[""] != 5 {
		t.Errorf("root emitted %d batches, want 5 heartbeats", perSession[""])
	}
	if perSession["room-1"] != 2 {
		t.Errorf("quiet session emitted %d batches, want 2 (announce + change)", perSession["room-1"])
	}
}

func TestQueueOverflowDropsFoldIntoNextBatch(t *testing.T) {
	reg := obs.NewRegistry()
	release := make(chan struct{})
	sink := &memSink{block: release}
	e := New(reg, sink, Options{Interval: time.Hour, QueueCap: 2, FlushTimeout: 5 * time.Second})
	e.Start()

	c := reg.Counter("work_total")
	// Overfill: the shipper is stuck in Send, so at most one batch is in
	// flight and two fit the queue; the rest must drop without blocking.
	var dropsBefore int64
	for i := 0; i < 10; i++ {
		c.Inc()
		start := time.Now()
		e.CollectNow()
		if d := time.Since(start); d > time.Second {
			t.Fatalf("CollectNow blocked %v with a hung sink", d)
		}
	}
	dropsBefore = e.dropped.Load()
	if dropsBefore == 0 {
		t.Fatal("expected drops with queue cap 2 and a hung sink")
	}
	if reg.Counter(CounterDropped).Value() != dropsBefore {
		t.Errorf("self-metric %s = %d, want %d",
			CounterDropped, reg.Counter(CounterDropped).Value(), dropsBefore)
	}

	close(release) // collector back: everything still queued flows out
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	got := totals(sink.batches(t))[""]
	if got["work_total"] != 10 {
		t.Errorf("summed work_total = %d, want 10: dropped batches must fold into later deltas",
			got["work_total"])
	}
}

func TestRetryBackoffRecovers(t *testing.T) {
	reg := obs.NewRegistry()
	sink := &memSink{failN: 3}
	e := New(reg, sink, Options{
		Interval: time.Hour, RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond,
	})
	e.Start()
	reg.Counter("work_total").Inc()
	e.CollectNow()
	waitFor(t, "send to recover", func() bool {
		sink.mu.Lock()
		defer sink.mu.Unlock()
		return len(sink.payloads) > 0
	})
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	st := e.State() // Stop leaves counters readable
	if st.Retries < 3 {
		t.Errorf("retries = %d, want >= 3", st.Retries)
	}
	if st.SendFailures < 3 {
		t.Errorf("send failures = %d, want >= 3", st.SendFailures)
	}
	if got := totals(sink.batches(t))[""]["work_total"]; got != 1 {
		t.Errorf("work_total = %d after recovery, want 1", got)
	}
	if reg.Counter(CounterRetries).Value() < 3 {
		t.Errorf("self-metric %s = %d, want >= 3",
			CounterRetries, reg.Counter(CounterRetries).Value())
	}
}

func TestDeadSinkNeverBlocksAndStopIsBounded(t *testing.T) {
	reg := obs.NewRegistry()
	sink := &memSink{fail: true}
	e := New(reg, sink, Options{
		Interval: time.Millisecond, RetryBase: time.Millisecond,
		RetryMax: 2 * time.Millisecond, FlushTimeout: 50 * time.Millisecond,
	})
	e.Start()
	c := reg.Counter("work_total")
	for i := 0; i < 100; i++ {
		c.Inc() // the control-loop side: pure atomics, never blocked
	}
	waitFor(t, "failed sends to accumulate", func() bool { return e.State().SendFailures > 0 })
	start := time.Now()
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("Stop took %v against a dead sink; flush must be bounded", d)
	}
	st := e.State()
	if st.Sent != 0 {
		t.Errorf("sent = %d batches to a dead sink", st.Sent)
	}
	if st.Dropped == 0 && st.Unflushed == 0 {
		t.Error("dead sink: expected the final flush to count unflushed batches")
	}
}

func TestMidBatchSinkCrash(t *testing.T) {
	// The sink dies after accepting some payloads; already-accepted data
	// stays accepted, the rest retries and is eventually flushed when it
	// recovers — no duplicated counter deltas.
	reg := obs.NewRegistry()
	sink := &memSink{}
	e := New(reg, sink, Options{Interval: time.Hour, RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond})
	e.Start()
	c := reg.Counter("work_total")

	c.Add(3)
	e.CollectNow()
	waitFor(t, "first delivery", func() bool {
		sink.mu.Lock()
		defer sink.mu.Unlock()
		return len(sink.payloads) > 0
	})
	sink.mu.Lock()
	sink.failN = 2 // crash window
	sink.mu.Unlock()
	c.Add(4)
	e.CollectNow()
	// Let the retries ride out the crash window before shutting down, so
	// the recovery is exercised by the retry loop, not the final flush.
	waitFor(t, "recovery after crash window", func() bool {
		sink.mu.Lock()
		defer sink.mu.Unlock()
		return len(sink.payloads) >= 2
	})
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	if got := totals(sink.batches(t))[""]["work_total"]; got != 7 {
		t.Errorf("work_total = %d across crash, want 7", got)
	}
}

func TestSessionLabelsAndPruning(t *testing.T) {
	reg := obs.NewRegistry()
	sink := &memSink{}
	e := New(reg, sink, Options{Interval: time.Hour})
	e.SetRootSession("proc")
	a := obs.NewRegistryWithParent(reg)
	b := obs.NewRegistryWithParent(reg)
	live := map[string]*obs.Registry{"room-a": a, "room-b": b}
	var mu sync.Mutex
	e.SetSessions(func(emit func(string, *obs.Registry)) {
		mu.Lock()
		defer mu.Unlock()
		for id, r := range live {
			emit(id, r)
		}
	})
	e.Start()
	a.Counter("evals_total").Add(2)
	b.Counter("evals_total").Add(5)
	e.CollectNow()
	mu.Lock()
	delete(live, "room-b") // session closed
	mu.Unlock()
	a.Counter("evals_total").Add(1)
	e.CollectNow()
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	tot := totals(sink.batches(t))
	if tot["room-a"]["evals_total"] != 3 {
		t.Errorf("room-a evals_total = %d, want 3", tot["room-a"]["evals_total"])
	}
	if tot["room-b"]["evals_total"] != 5 {
		t.Errorf("room-b evals_total = %d, want 5", tot["room-b"]["evals_total"])
	}
	// Roll-up: the parent carries both rooms' writes under the root label.
	if tot["proc"]["evals_total"] != 8 {
		t.Errorf("root evals_total = %d, want 8 (roll-up)", tot["proc"]["evals_total"])
	}
	if n := e.State().SessionsExported; n != 0 {
		// Baselines of vanished sessions are pruned at the next collect;
		// after Stop's final collect only live ones remain.
		t.Logf("sessions still tracked after stop: %d", n)
	}
}

func TestGaugesShipLatestOnChange(t *testing.T) {
	reg := obs.NewRegistry()
	sink := &memSink{}
	e := New(reg, sink, Options{Interval: time.Hour})
	e.Start()
	g := reg.Gauge("temp_c")
	g.Set(20)
	e.CollectNow()
	g.Set(21)
	e.CollectNow()
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	var last float64
	var sightings int
	for _, b := range sink.batches(t) {
		if v, ok := b.Gauges["temp_c"]; ok {
			last = v
			sightings++
		}
	}
	if last != 21 {
		t.Errorf("final temp_c = %v, want 21", last)
	}
	if sightings < 2 {
		t.Errorf("temp_c shipped %d times, want 2 (once per change)", sightings)
	}
}

func TestNilExporterIsInert(t *testing.T) {
	var e *Exporter
	e.Start()
	e.CollectNow()
	e.SetSessions(nil)
	e.SetRootSession("x")
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	if st := e.State(); st.Enabled {
		t.Error("nil exporter reports enabled")
	}
	if line := e.HealthzLine(); line != "" {
		t.Errorf("nil exporter healthz line %q", line)
	}
}

func TestStopWithoutStartClosesSink(t *testing.T) {
	reg := obs.NewRegistry()
	sink := &memSink{}
	e := New(reg, sink, Options{})
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	if len(sink.batches(t)) != 0 {
		t.Error("never-started exporter shipped batches")
	}
}

func TestFileSinkRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.ndjson")
	reg := obs.NewRegistry()
	sink, err := NewSink(path, FormatNDJSON)
	if err != nil {
		t.Fatal(err)
	}
	e := New(reg, sink, Options{Interval: time.Hour, Session: "file-run"})
	e.Start()
	reg.Counter("work_total").Add(9)
	e.CollectNow()
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	batches, err := DecodeBatches(data)
	if err != nil {
		t.Fatalf("decoding file sink output: %v", err)
	}
	if got := totals(batches)["file-run"]["work_total"]; got != 9 {
		t.Errorf("file sink work_total = %d, want 9", got)
	}
}

func TestNewSinkDispatch(t *testing.T) {
	if _, err := NewSink("", ""); err == nil {
		t.Error("empty URL accepted")
	}
	s, err := NewSink("http://127.0.0.1:1/x", FormatJSON)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(*HTTPSink); !ok {
		t.Errorf("http URL built %T", s)
	}
	s.Close()
	path := filepath.Join(t.TempDir(), "f")
	s2, err := NewSink("file://"+path, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.(*FileSink); !ok {
		t.Errorf("file URL built %T", s2)
	}
	s2.Close()
}

func TestConnectionRefusedRetriesThenStops(t *testing.T) {
	// A real HTTP sink against a port nothing listens on: the canonical
	// down-collector. The exporter must keep retrying without blocking
	// and stop within the flush bound.
	reg := obs.NewRegistry()
	sink := NewHTTPSink("http://127.0.0.1:1/ingest", FormatNDJSON)
	e := New(reg, sink, Options{
		Interval: time.Millisecond, RetryBase: time.Millisecond,
		RetryMax: 5 * time.Millisecond, FlushTimeout: 100 * time.Millisecond,
	})
	e.Start()
	reg.Counter("work_total").Inc()
	waitFor(t, "refused sends to count", func() bool { return e.State().SendFailures > 0 })
	start := time.Now()
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("Stop took %v against a refused connection", d)
	}
	st := e.State()
	if st.LastError == "" || !strings.Contains(st.LastError, "127.0.0.1:1") {
		t.Errorf("last error %q does not name the sink", st.LastError)
	}
}

func TestStateAndHealthzLine(t *testing.T) {
	reg := obs.NewRegistry()
	sink := &memSink{}
	e := New(reg, sink, Options{Interval: time.Hour, Session: "s"})
	e.Start()
	reg.Counter("x").Inc()
	e.CollectNow()
	waitFor(t, "delivery", func() bool { return e.State().Sent > 0 })
	st := e.State()
	if !st.Enabled || st.Sink != "mem://" || st.Session != "s" {
		t.Errorf("state = %+v", st)
	}
	if st.LastSuccessUnix == 0 {
		t.Error("no last-success stamp after a delivered batch")
	}
	line := e.HealthzLine()
	for _, want := range []string{"export:", "queue", "sent", "dropped", "last success"} {
		if !strings.Contains(line, want) {
			t.Errorf("healthz line %q missing %q", line, want)
		}
	}
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeFormats(t *testing.T) {
	in := []Batch{
		{Schema: 1, Seq: 1, Session: "a", UnixMs: 5,
			Counters: map[string]int64{"c": 2},
			Gauges:   map[string]float64{"g": 1.5},
			Histograms: map[string]HistDelta{
				"h": {Count: 3, Sum: 0.25},
			},
			Spans: map[string]SpanDelta{"s": {Count: 1, TotalSeconds: 0.1}}},
		{Schema: 1, Seq: 2, UnixMs: 6},
	}
	for _, format := range []string{FormatNDJSON, FormatJSON, ""} {
		data, err := EncodeBatches(format, in)
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		out, err := DecodeBatches(data)
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if len(out) != len(in) {
			t.Fatalf("%s: %d batches out, want %d", format, len(out), len(in))
		}
		if out[0].Counters["c"] != 2 || out[0].Session != "a" || out[1].Seq != 2 {
			t.Errorf("%s: round trip mangled batches: %+v", format, out)
		}
	}
}

func TestDecodeBatchesErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"bad ndjson", "{nope}\n"},
		{"bad array", "[{]"},
		{"trailing garbage", `[{"schema":1}] extra`},
		{"wrong schema", `{"schema":99}`},
		{"wrong schema in array", `[{"schema":1},{"schema":2}]`},
	}
	for _, tc := range cases {
		if _, err := DecodeBatches([]byte(tc.in)); err == nil {
			t.Errorf("%s: decoded without error", tc.name)
		}
	}
	for _, ok := range []string{"", "   \n\n", `{"schema":1}` + "\n\n" + `{"schema":1}`} {
		if _, err := DecodeBatches([]byte(ok)); err != nil {
			t.Errorf("%q: unexpected error %v", ok, err)
		}
	}
}

func TestValidFormat(t *testing.T) {
	for _, ok := range []string{"", FormatNDJSON, FormatJSON} {
		if !ValidFormat(ok) {
			t.Errorf("ValidFormat(%q) = false", ok)
		}
	}
	if ValidFormat("xml") {
		t.Error("ValidFormat(xml) = true")
	}
}

func TestConcurrentProducersUnderExport(t *testing.T) {
	// Hammer the registry from many goroutines while the exporter
	// collects on a tight interval — the -race proof that export never
	// synchronizes with producers.
	reg := obs.NewRegistry()
	sink := &memSink{}
	e := New(reg, sink, Options{Interval: time.Millisecond})
	e.Start()
	var wg sync.WaitGroup
	const producers, perProducer = 8, 500
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			c := reg.Counter(fmt.Sprintf("producer_%d_total", p))
			for i := 0; i < perProducer; i++ {
				c.Inc()
			}
		}(p)
	}
	wg.Wait()
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	tot := totals(sink.batches(t))[""]
	for p := 0; p < producers; p++ {
		name := fmt.Sprintf("producer_%d_total", p)
		if tot[name] != perProducer {
			t.Errorf("%s = %d, want %d", name, tot[name], perProducer)
		}
	}
}
