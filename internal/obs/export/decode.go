package export

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
)

// Payload formats: NDJSON ships one batch per line (streamable, append
// friendly — the default); JSON ships one array per send (for
// collectors that want a single document).
const (
	FormatNDJSON = "ndjson"
	FormatJSON   = "json"
)

// ValidFormat reports whether f names a supported payload format.
func ValidFormat(f string) bool {
	return f == "" || f == FormatNDJSON || f == FormatJSON
}

// EncodeBatches renders batches in the given format ("" = NDJSON).
func EncodeBatches(format string, batches []Batch) ([]byte, error) {
	if format == FormatJSON {
		if batches == nil {
			batches = []Batch{} // "[]", not "null"
		}
		return json.Marshal(batches)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, b := range batches {
		if err := enc.Encode(b); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// maxBatchLine bounds one NDJSON line — far beyond any real batch, but
// a hard ceiling so a malformed payload cannot balloon the decoder.
const maxBatchLine = 8 << 20

// DecodeBatches parses a payload in either wire format, sniffing by
// first non-space byte: '[' is a JSON array, anything else is NDJSON.
// Blank lines are skipped; an unknown schema version or malformed line
// fails the whole payload (collectors must not half-apply a send).
func DecodeBatches(payload []byte) ([]Batch, error) {
	trimmed := bytes.TrimLeft(payload, " \t\r\n")
	if len(trimmed) == 0 {
		return nil, nil
	}
	var batches []Batch
	if trimmed[0] == '[' {
		dec := json.NewDecoder(bytes.NewReader(trimmed))
		if err := dec.Decode(&batches); err != nil {
			return nil, fmt.Errorf("export: bad JSON batch array: %w", err)
		}
		if dec.More() {
			return nil, fmt.Errorf("export: trailing data after JSON batch array")
		}
	} else {
		sc := bufio.NewScanner(bytes.NewReader(payload))
		sc.Buffer(make([]byte, 0, 64<<10), maxBatchLine)
		line := 0
		for sc.Scan() {
			line++
			raw := bytes.TrimSpace(sc.Bytes())
			if len(raw) == 0 {
				continue
			}
			var b Batch
			if err := json.Unmarshal(raw, &b); err != nil {
				return nil, fmt.Errorf("export: bad NDJSON batch on line %d: %w", line, err)
			}
			batches = append(batches, b)
		}
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("export: reading NDJSON payload: %w", err)
		}
	}
	for i := range batches {
		if batches[i].Schema != BatchSchema {
			return nil, fmt.Errorf("export: batch %d has schema %d (want %d)",
				i, batches[i].Schema, BatchSchema)
		}
	}
	return batches, nil
}
