package export

import (
	"context"
	"testing"
	"time"

	"press/internal/obs"
)

// discardSink accepts everything instantly — isolates collection cost
// from transport.
type discardSink struct{}

func (discardSink) Send(ctx context.Context, payload []byte) error { return nil }
func (discardSink) String() string                                 { return "discard://" }
func (discardSink) Close() error                                   { return nil }

// BenchmarkNilExporterCollect is the disabled convention: every export
// hook on a nil *Exporter must cost a pointer check and nothing else
// (0 allocs/op, gate-enforced) — the proof that a binary run without
// -export-url pays nothing for the pipeline's existence.
func BenchmarkNilExporterCollect(b *testing.B) {
	var e *Exporter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.CollectNow()
		e.SetRootSession("demo")
	}
}

// BenchmarkExporterCollect is the enabled reference cost of one
// collection over a registry with a representative metric population:
// snapshot, diff against the baseline, enqueue.
func BenchmarkExporterCollect(b *testing.B) {
	reg := obs.NewRegistry()
	for i := 0; i < 8; i++ {
		reg.Counter(obs.SanitizeMetricName("bench_counter_" + string(rune('a'+i)))).Inc()
	}
	reg.Gauge("bench_gauge").Set(1)
	reg.Histogram("bench_hist_seconds", obs.LatencyBuckets).Observe(0.01)
	e := New(reg, discardSink{}, Options{Interval: time.Hour, QueueCap: 1024})
	e.Start()
	defer e.Stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.CollectNow()
	}
}

// BenchmarkEncodeBatchNDJSON is the shipper-side encoding cost of one
// typical batch.
func BenchmarkEncodeBatchNDJSON(b *testing.B) {
	batch := []Batch{{
		Schema: 1, Seq: 42, Session: "demo", UnixMs: 1700000000000,
		Counters:   map[string]int64{"search_evaluations_total": 12, "obs_export_batches_sent_total": 3},
		Gauges:     map[string]float64{"health_min_snr_db": 17.5, "obs_export_queue_depth": 1},
		Histograms: map[string]HistDelta{"radio_channel_solve_seconds": {Count: 12, Sum: 0.06}},
		Spans:      map[string]SpanDelta{"exp/demo": {Count: 1, TotalSeconds: 1.2}},
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeBatches(FormatNDJSON, batch); err != nil {
			b.Fatal(err)
		}
	}
}
