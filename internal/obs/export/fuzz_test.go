package export

import (
	"bytes"
	"testing"
)

// FuzzDecodeBatches throws arbitrary bytes at the batch decoder — the
// surface a collector exposes to the network. The decoder must never
// panic, and everything it does accept must re-encode and decode to the
// same batch count (the collector's idempotent-ingest property).
func FuzzDecodeBatches(f *testing.F) {
	seedBatches := []Batch{
		{Schema: 1, Seq: 3, Session: "demo", UnixMs: 1700000000000,
			Counters:   map[string]int64{"work_total": 5},
			Gauges:     map[string]float64{"temp_c": 21.5},
			Histograms: map[string]HistDelta{"lat": {Count: 2, Sum: 0.4}},
			Spans:      map[string]SpanDelta{"solve": {Count: 1, TotalSeconds: 0.01}}},
	}
	for _, format := range []string{FormatNDJSON, FormatJSON} {
		if data, err := EncodeBatches(format, seedBatches); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte(`{"schema":1}`))
	f.Add([]byte(`[{"schema":1},{"schema":1,"counters":{"a":-1}}]`))
	f.Add([]byte("\n\n \t\n"))
	f.Add([]byte(`{"schema":2}`))
	f.Add([]byte(`[{"schema":1}] trailing`))
	f.Add([]byte(`{"schema":1,"gauges":{"g":1e308}}`))

	f.Fuzz(func(t *testing.T, payload []byte) {
		batches, err := DecodeBatches(payload)
		if err != nil {
			return
		}
		for _, b := range batches {
			if b.Schema != BatchSchema {
				t.Fatalf("accepted schema %d", b.Schema)
			}
		}
		// Round-trip: what we accepted must survive re-encoding in both
		// formats with the batch count intact.
		for _, format := range []string{FormatNDJSON, FormatJSON} {
			data, err := EncodeBatches(format, batches)
			if err != nil {
				t.Fatalf("re-encoding accepted batches as %s: %v", format, err)
			}
			again, err := DecodeBatches(data)
			if err != nil {
				// NaN/Inf gauges cannot re-encode as JSON; EncodeBatches
				// surfaces that, it does not corrupt. Anything else is a bug.
				t.Fatalf("re-decoding %s round trip: %v", format, err)
			}
			if len(again) != len(batches) {
				t.Fatalf("%s round trip: %d batches became %d", format, len(batches), len(again))
			}
		}
	})
}

// FuzzDecodeBatchesNoCrossFormatConfusion ensures a payload that decodes
// under both sniffing branches yields consistent totals.
func FuzzDecodeBatchesNoCrossFormatConfusion(f *testing.F) {
	f.Add([]byte(`[{"schema":1,"counters":{"a":1}}]`))
	f.Fuzz(func(t *testing.T, payload []byte) {
		batches, err := DecodeBatches(payload)
		if err != nil || len(batches) == 0 {
			return
		}
		if bytes.TrimLeft(payload, " \t\r\n")[0] == '[' {
			// Array form: NDJSON re-encode must not change counter sums.
			var before, after int64
			for _, b := range batches {
				for _, d := range b.Counters {
					before += d
				}
			}
			data, err := EncodeBatches(FormatNDJSON, batches)
			if err != nil {
				return // non-finite floats cannot re-encode; fine
			}
			again, err := DecodeBatches(data)
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range again {
				for _, d := range b.Counters {
					after += d
				}
			}
			if before != after {
				t.Fatalf("counter sum changed across formats: %d != %d", before, after)
			}
		}
	})
}
