package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
)

// CLI bundles the standard telemetry flags every binary in this
// repository exposes (-telemetry, -telemetry-format, -log-level,
// -cpuprofile, -memprofile) together with the registry, logger, and
// profile lifecycle behind them. Usage:
//
//	var tele obs.CLI
//	tele.Register(fs)
//	// after fs.Parse:
//	if err := tele.Start(os.Stderr); err != nil { ... }
//	defer tele.Finish(os.Stdout)
//	... pass tele.Registry() / tele.Logger() down ...
//
// With no flags set, Registry() and Logger() return nil and the whole
// layer stays at its zero-cost disabled default.
type CLI struct {
	// Telemetry is the metrics snapshot destination: a file path, or
	// "-" for the writer handed to Finish (conventionally stdout).
	Telemetry string
	// TelemetryFormat is "json" (indented Snapshot) or "prom"
	// (Prometheus text format).
	TelemetryFormat string
	// LogLevel is the structured log threshold (debug|info|warn|error|off).
	LogLevel string
	// CPUProfile and MemProfile are pprof output paths.
	CPUProfile, MemProfile string

	reg     *Registry
	logger  *Logger
	cpuFile *os.File
}

// Register installs the telemetry flags on fs.
func (c *CLI) Register(fs *flag.FlagSet) {
	fs.StringVar(&c.Telemetry, "telemetry", "",
		`write a final metrics snapshot to this path ("-" = stdout)`)
	fs.StringVar(&c.TelemetryFormat, "telemetry-format", "json",
		"metrics snapshot format: json|prom")
	fs.StringVar(&c.LogLevel, "log-level", "off",
		"structured log threshold on stderr: debug|info|warn|error|off")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a pprof heap profile to this file")
}

// Start validates the flags and brings up the registry, logger, and CPU
// profiler. Log records go to logw (conventionally os.Stderr).
func (c *CLI) Start(logw io.Writer) error {
	switch c.TelemetryFormat {
	case "", "json", "prom":
	default:
		return fmt.Errorf("obs: unknown -telemetry-format %q (want json|prom)", c.TelemetryFormat)
	}
	level, err := ParseLevel(c.LogLevel)
	if err != nil {
		return err
	}
	if level < LevelOff {
		c.logger = NewLogger(logw, level, Logfmt)
	}
	if c.Telemetry != "" {
		c.reg = NewRegistry()
	}
	if c.CPUProfile != "" {
		f, err := os.Create(c.CPUProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		c.cpuFile = f
	}
	return nil
}

// Registry returns the live registry, or nil when -telemetry was not
// given (the disabled default).
func (c *CLI) Registry() *Registry { return c.reg }

// Logger returns the structured logger, or nil when -log-level is off.
func (c *CLI) Logger() *Logger { return c.logger }

// Finish stops profiling, writes the requested profiles, logs a
// per-phase span summary, and emits the final metrics snapshot.
// stdout is the writer used when -telemetry is "-".
func (c *CLI) Finish(stdout io.Writer) error {
	if c.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := c.cpuFile.Close(); err != nil {
			return err
		}
		c.cpuFile = nil
	}
	if c.MemProfile != "" {
		f, err := os.Create(c.MemProfile)
		if err != nil {
			return err
		}
		runtime.GC() // materialize up-to-date allocation stats
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if c.reg == nil || c.Telemetry == "" {
		return nil
	}
	if c.logger.Enabled(LevelInfo) {
		snap := c.reg.Snapshot()
		for _, name := range sortedKeys(snap.Spans) {
			s := snap.Spans[name]
			c.logger.Info("span summary", "span", name, "count", s.Count,
				"total_s", s.TotalSeconds, "mean_s", s.MeanSeconds, "max_s", s.MaxSeconds)
		}
	}
	w := stdout
	if c.Telemetry != "-" {
		f, err := os.Create(c.Telemetry)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if c.TelemetryFormat == "prom" {
		return c.reg.WriteText(w)
	}
	return c.reg.WriteJSON(w)
}
