package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"
)

// CLI bundles the standard telemetry flags every binary in this
// repository exposes (-telemetry, -telemetry-format, -telemetry-addr,
// -sample-interval, -trace, -log-level, -cpuprofile, -memprofile)
// together with the registry, logger, server, recorder, trace log, and
// profile lifecycle behind them. Usage:
//
//	var tele obs.CLI
//	tele.Register(fs)
//	// after fs.Parse:
//	if err := tele.Start(os.Stderr); err != nil { ... }
//	defer tele.Finish(os.Stdout)
//	... pass tele.Registry() / tele.Logger() down ...
//
// With no flags set, Registry() and Logger() return nil and the whole
// layer stays at its zero-cost disabled default.
type CLI struct {
	// Telemetry is the metrics snapshot destination: a file path, or
	// "-" for the writer handed to Finish (conventionally stdout).
	Telemetry string
	// TelemetryFormat is "json" (indented Snapshot) or "prom"
	// (Prometheus text format).
	TelemetryFormat string
	// TelemetryAddr, when non-empty, serves live telemetry over HTTP on
	// this address (e.g. "localhost:9090"): /metrics, /metrics.json,
	// /healthz, /events (SSE), and /debug/pprof/*.
	TelemetryAddr string
	// SampleInterval is the period at which the live recorder samples
	// the registry for the /events stream. Zero means DefaultSampleInterval.
	SampleInterval time.Duration
	// Trace is the path for a Chrome trace-event JSON export of all
	// completed spans, written by Finish. Load it at ui.perfetto.dev or
	// chrome://tracing.
	Trace string
	// LogLevel is the structured log threshold (debug|info|warn|error|off).
	LogLevel string
	// CPUProfile and MemProfile are pprof output paths.
	CPUProfile, MemProfile string
	// ForceRegistry makes Start create a live registry even when no
	// exposition flag (-telemetry, -telemetry-addr, -trace) asks for
	// one. Outer CLI layers whose feature needs metrics to exist — the
	// export pipeline, whose whole job is shipping the registry — set
	// this before chaining into Start.
	ForceRegistry bool

	reg      *Registry
	logger   *Logger
	cpuFile  *os.File
	tracelog *TraceLog
	rec      *Recorder
	srv      *Server
}

// Register installs the telemetry flags on fs.
func (c *CLI) Register(fs *flag.FlagSet) {
	fs.StringVar(&c.Telemetry, "telemetry", "",
		`write a final metrics snapshot to this path ("-" = stdout)`)
	fs.StringVar(&c.TelemetryFormat, "telemetry-format", "json",
		"metrics snapshot format: json|prom")
	fs.StringVar(&c.TelemetryAddr, "telemetry-addr", "",
		"serve live telemetry over HTTP on this address (/metrics, /events, /debug/pprof)")
	fs.DurationVar(&c.SampleInterval, "sample-interval", DefaultSampleInterval,
		"sampling period for the live /events stream")
	fs.StringVar(&c.Trace, "trace", "",
		"write a Chrome trace-event JSON of all spans to this file (view at ui.perfetto.dev)")
	fs.StringVar(&c.LogLevel, "log-level", "off",
		"structured log threshold on stderr: debug|info|warn|error|off")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a pprof heap profile to this file")
}

// Start validates the flags and brings up the registry, logger, trace
// log, live server, and CPU profiler. Log records go to logw
// (conventionally os.Stderr).
func (c *CLI) Start(logw io.Writer) error {
	switch c.TelemetryFormat {
	case "", "json", "prom":
	default:
		return fmt.Errorf("obs: unknown -telemetry-format %q (want json|prom)", c.TelemetryFormat)
	}
	if c.SampleInterval < 0 {
		return fmt.Errorf("obs: negative -sample-interval %v", c.SampleInterval)
	}
	level, err := ParseLevel(c.LogLevel)
	if err != nil {
		return err
	}
	if level < LevelOff {
		c.logger = NewLogger(logw, level, Logfmt)
	}
	if c.Telemetry != "" || c.TelemetryAddr != "" || c.Trace != "" || c.ForceRegistry {
		c.reg = NewRegistry()
	}
	if c.Trace != "" {
		c.tracelog = NewTraceLog()
		c.reg.SetTraceLog(c.tracelog)
	}
	if c.TelemetryAddr != "" {
		c.rec = NewRecorder(c.reg, c.SampleInterval, 0)
		c.rec.Start()
		c.srv = NewServer(c.reg, c.rec)
		if err := c.srv.Start(c.TelemetryAddr); err != nil {
			c.rec.Stop()
			return err
		}
		if c.logger.Enabled(LevelInfo) {
			c.logger.Info("telemetry server listening", "addr", c.srv.Addr())
		}
	}
	if c.CPUProfile != "" {
		f, err := os.Create(c.CPUProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		c.cpuFile = f
	}
	return nil
}

// Registry returns the live registry, or nil when no telemetry flag was
// given (the disabled default).
func (c *CLI) Registry() *Registry { return c.reg }

// Logger returns the structured logger, or nil when -log-level is off.
func (c *CLI) Logger() *Logger { return c.logger }

// TraceLog returns the span collector behind -trace, or nil.
func (c *CLI) TraceLog() *TraceLog { return c.tracelog }

// Server returns the live telemetry server, or nil when -telemetry-addr
// was not given — the hook higher layers (internal/obs/health) use to
// register extra routes and publish SSE events.
func (c *CLI) Server() *Server { return c.srv }

// Recorder returns the live sample recorder, or nil.
func (c *CLI) Recorder() *Recorder { return c.rec }

// ServerAddr returns the bound address of the live telemetry server, or
// "" when -telemetry-addr was not given. Useful with ":0" addresses.
func (c *CLI) ServerAddr() string {
	if c.srv == nil {
		return ""
	}
	if a := c.srv.Addr(); a != nil {
		return a.String()
	}
	return ""
}

// Finish stops the live server and recorder, stops profiling, writes the
// requested profiles and trace, logs a per-phase span summary, and emits
// the final metrics snapshot. stdout is the writer used when -telemetry
// is "-".
func (c *CLI) Finish(stdout io.Writer) error {
	if c.srv != nil {
		if err := c.srv.Close(); err != nil {
			return err
		}
		c.srv = nil
	}
	if c.rec != nil {
		c.rec.Stop()
		c.rec = nil
	}
	if c.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := c.cpuFile.Close(); err != nil {
			return err
		}
		c.cpuFile = nil
	}
	if c.MemProfile != "" {
		f, err := os.Create(c.MemProfile)
		if err != nil {
			return err
		}
		runtime.GC() // materialize up-to-date allocation stats
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if c.Trace != "" && c.tracelog != nil {
		c.tracelog.Stop() // freeze the buffer before exporting it
		f, err := os.Create(c.Trace)
		if err != nil {
			return err
		}
		if err := c.tracelog.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if c.reg == nil || c.Telemetry == "" {
		return nil
	}
	if c.logger.Enabled(LevelInfo) {
		snap := c.reg.Snapshot()
		for _, name := range sortedKeys(snap.Spans) {
			s := snap.Spans[name]
			c.logger.Info("span summary", "span", name, "count", s.Count,
				"total_s", s.TotalSeconds, "mean_s", s.MeanSeconds, "max_s", s.MaxSeconds)
		}
	}
	w := stdout
	if c.Telemetry != "-" {
		f, err := os.Create(c.Telemetry)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if c.TelemetryFormat == "prom" {
		return c.reg.WriteText(w)
	}
	return c.reg.WriteJSON(w)
}
