package flight

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Run is a fully decoded run log.
type Run struct {
	Dir        string            `json:"dir,omitempty"`
	Manifest   *Manifest         `json:"manifest,omitempty"`
	Actuations []Actuation       `json:"actuations,omitempty"`
	CSI        []CSISample       `json:"csi,omitempty"`
	KPIs       []KPISample       `json:"kpis,omitempty"`
	Alerts     []AlertTransition `json:"alerts,omitempty"`
	Decisions  []SearchDecision  `json:"decisions,omitempty"`
	Runtime    []RuntimeSample   `json:"runtime,omitempty"`
	PhaseCosts []PhaseCost       `json:"phase_costs,omitempty"`
	Loops      []LoopRecord      `json:"loops,omitempty"`
	Stats      DecodeStats       `json:"stats"`
}

// segments lists a run directory's segment files in write order.
func segments(dir string) ([]string, error) {
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.flr"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	return names, nil
}

// ReadRun decodes every segment of the run directory. Torn tails and
// corrupt frames are tolerated and tallied in Stats; only I/O failures
// and a directory with no segments are errors.
func ReadRun(dir string) (*Run, error) {
	segs, err := segments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("flight: no segment files in %s", dir)
	}
	run := &Run{Dir: dir}
	for _, seg := range segs {
		data, err := os.ReadFile(seg)
		if err != nil {
			return nil, err
		}
		stats, _ := decodeFrames(data, func(kind Kind, payload []byte) error {
			run.apply(kind, payload)
			return nil
		})
		run.Stats.add(stats)
	}
	return run, nil
}

// apply folds one decoded frame into the run; payloads that fail their
// record-level decode count as corrupt.
func (run *Run) apply(kind Kind, payload []byte) {
	switch kind {
	case KindManifest:
		m, err := decodeManifest(payload)
		if err != nil {
			run.Stats.Corrupt++
			return
		}
		if run.Manifest == nil { // first manifest wins
			run.Manifest = m
		}
	case KindActuation:
		a, err := decodeActuation(payload)
		if err != nil {
			run.Stats.Corrupt++
			return
		}
		run.Actuations = append(run.Actuations, a)
	case KindCSI:
		c, err := decodeCSI(payload)
		if err != nil {
			run.Stats.Corrupt++
			return
		}
		run.CSI = append(run.CSI, c)
	case KindKPI:
		k, err := decodeKPI(payload)
		if err != nil {
			run.Stats.Corrupt++
			return
		}
		run.KPIs = append(run.KPIs, k)
	case KindAlert:
		a, err := decodeAlert(payload)
		if err != nil {
			run.Stats.Corrupt++
			return
		}
		run.Alerts = append(run.Alerts, a)
	case KindDecision:
		d, err := decodeDecision(payload)
		if err != nil {
			run.Stats.Corrupt++
			return
		}
		run.Decisions = append(run.Decisions, d)
	case KindRuntime:
		s, err := decodeRuntime(payload)
		if err != nil {
			run.Stats.Corrupt++
			return
		}
		run.Runtime = append(run.Runtime, s)
	case KindPhaseCost:
		p, err := decodePhaseCost(payload)
		if err != nil {
			run.Stats.Corrupt++
			return
		}
		run.PhaseCosts = append(run.PhaseCosts, p)
	case KindLoop:
		l, err := decodeLoop(payload)
		if err != nil {
			run.Stats.Corrupt++
			return
		}
		run.Loops = append(run.Loops, l)
	default:
		run.Stats.Unknown++
	}
}

// ReadManifest decodes only the run's manifest — the cheap path the
// /runs listing uses. It scans the first segment and stops at the first
// manifest frame.
func ReadManifest(dir string) (*Manifest, error) {
	segs, err := segments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("flight: no segment files in %s", dir)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		return nil, err
	}
	var found *Manifest
	errStop := fmt.Errorf("stop")
	_, _ = decodeFrames(data, func(kind Kind, payload []byte) error {
		if kind != KindManifest {
			return nil
		}
		m, err := decodeManifest(payload)
		if err != nil {
			return nil
		}
		found = m
		return errStop
	})
	if found == nil {
		return nil, fmt.Errorf("flight: no manifest in %s", dir)
	}
	return found, nil
}

// ListRuns reads the manifest of every run directory under root,
// newest-first by start time. Directories without a decodable manifest
// are skipped.
func ListRuns(root string) ([]*Manifest, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	var out []*Manifest
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		m, err := ReadManifest(filepath.Join(root, e.Name()))
		if err != nil {
			continue
		}
		if m.RunID == "" {
			m.RunID = e.Name()
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartUnixNs > out[j].StartUnixNs })
	return out, nil
}

// FindRun locates the newest run under root belonging to the given
// session: a run whose manifest session tag (SessionParamKey) equals
// session, falling back to a scenario-name match for untagged runs. It
// returns the run directory and its manifest — how `pressctl replay
// -session` and `rundiff -session` pick one session's run out of a
// shared -flight-dir.
func FindRun(root, session string) (string, *Manifest, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return "", nil, err
	}
	var bestDir string
	var best *Manifest
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(root, e.Name())
		m, err := ReadManifest(dir)
		if err != nil {
			continue
		}
		if m.Session() != session && m.Scenario != session {
			continue
		}
		if best == nil || m.StartUnixNs > best.StartUnixNs {
			best, bestDir = m, dir
		}
	}
	if best == nil {
		return "", nil, fmt.Errorf("flight: no run for session %q under %s", session, root)
	}
	return bestDir, best, nil
}
