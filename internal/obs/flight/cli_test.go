package flight

import (
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"path/filepath"
	"testing"

	"press/internal/obs/health"
)

func TestCLIRegisterFlags(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	var tele CLI
	tele.Register(fs)
	for _, name := range []string{
		"flight-dir", "flight-segment-mb", // flight layer
		"alert-rules", "health-interval", // inherited health layer
		"telemetry", "telemetry-addr", // inherited obs layer
	} {
		if fs.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}
}

func TestCLIDisabledDefault(t *testing.T) {
	var tele CLI
	if err := tele.Start(io.Discard); err != nil {
		t.Fatal(err)
	}
	if tele.Flight() != nil {
		t.Error("Flight() non-nil with no flags set")
	}
	if tele.RunDir() != "" {
		t.Error("RunDir() non-empty with recording off")
	}
	if err := tele.Finish(io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestCLIRecordsAndFinishes(t *testing.T) {
	root := t.TempDir()
	tele := CLI{FlightDir: root}
	if err := tele.Start(io.Discard); err != nil {
		t.Fatal(err)
	}
	rec := tele.Flight()
	if rec == nil {
		t.Fatal("Flight() nil despite -flight-dir")
	}
	dir := tele.RunDir()
	if filepath.Dir(dir) != root || !validRunID(filepath.Base(dir)) {
		t.Fatalf("run dir %q not a valid run under %q", dir, root)
	}
	rec.RecordManifest(&Manifest{Binary: "test", Scenario: "t", Seed: 1})
	rec.RecordKPI("k", 3)
	// Alert persistence: the health EventSink set by Start must land
	// alert transitions in the log (and ignore other events).
	tele.EventSink("health", struct{}{})
	tele.EventSink("alert", health.Event{Rule: "deep_null", From: health.StatePending, To: health.StateFiring, Value: 26})
	if err := tele.Finish(io.Discard); err != nil {
		t.Fatal(err)
	}
	run, err := ReadRun(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.KPIs) != 1 || run.Manifest == nil {
		t.Errorf("run = %+v", run)
	}
	if len(run.Alerts) != 1 || run.Alerts[0].Rule != "deep_null" || run.Alerts[0].To != uint8(health.StateFiring) {
		t.Errorf("alerts = %+v", run.Alerts)
	}
}

func TestCLIServedRunEndpoints(t *testing.T) {
	root := t.TempDir()
	tele := CLI{FlightDir: root}
	tele.TelemetryAddr = "127.0.0.1:0"
	if err := tele.Start(io.Discard); err != nil {
		t.Fatal(err)
	}
	defer tele.Finish(io.Discard)
	man := NewManifest("pressctl", "demo", 42)
	tele.Flight().RecordManifest(man)
	tele.Flight().RecordCSI([]float64{10, 20, 30})
	if err := tele.Flight().Flush(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + tele.ServerAddr()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	code, body := get("/runs")
	if code != http.StatusOK {
		t.Fatalf("/runs = %d: %s", code, body)
	}
	var runs []*Manifest
	if err := json.Unmarshal(body, &runs); err != nil {
		t.Fatalf("/runs not JSON: %v\n%s", err, body)
	}
	if len(runs) != 1 || runs[0].Seed != 42 {
		t.Fatalf("/runs = %+v", runs)
	}

	code, body = get("/runs/" + runs[0].RunID + ".json")
	if code != http.StatusOK {
		t.Fatalf("/runs/{id}.json = %d: %s", code, body)
	}
	var sum Summary
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatalf("summary not JSON: %v\n%s", err, body)
	}
	if sum.Measurements != 1 || sum.Subcarriers != 3 || sum.Seed != 42 {
		t.Errorf("summary = %+v", sum)
	}

	if code, _ := get("/runs/no-such-run.json"); code != http.StatusNotFound {
		t.Errorf("missing run = %d, want 404", code)
	}
	if code, _ := get("/runs/evil.id.json"); code != http.StatusBadRequest {
		t.Errorf("invalid id = %d, want 400", code)
	}
}

func TestValidRunID(t *testing.T) {
	for id, want := range map[string]bool{
		"20260806T142530-9f3a2c": true,
		"hand_named-Run1":        true,
		"":                       false,
		"../evil":                false,
		"a/b":                    false,
		"run id":                 false,
		"run.id":                 false,
	} {
		if got := validRunID(id); got != want {
			t.Errorf("validRunID(%q) = %v, want %v", id, got, want)
		}
	}
	if validRunID(string(make([]byte, 200))) {
		t.Error("over-long id accepted")
	}
}

func TestNewRunIDShape(t *testing.T) {
	a, b := NewRunID(), NewRunID()
	if !validRunID(a) || !validRunID(b) {
		t.Fatalf("NewRunID() = %q, %q: not valid run ids", a, b)
	}
	if a == b {
		t.Errorf("two NewRunID() calls collided: %q", a)
	}
}
