package flight

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"press/internal/obs"
)

// Defaults for the recorder's tuning knobs.
const (
	// DefaultSegmentMB is the segment rotation threshold.
	DefaultSegmentMB = 64
	// DefaultFlushInterval is the group-commit period: the longest
	// window of records a crash can lose.
	DefaultFlushInterval = 100 * time.Millisecond
	// flushHighWater forces an inline flush when the pending buffer
	// outgrows it, bounding memory between group commits.
	flushHighWater = 256 << 10
)

// segmentName formats the idx'th segment file name ("seg-00000.flr").
func segmentName(idx int) string { return fmt.Sprintf("seg-%05d.flr", idx) }

// Recorder appends flight-log records to size-rotated segment files in
// one run directory. The producer path encodes the record into a
// pending buffer under a mutex — a few hundred nanoseconds, no
// allocations once the buffers are warm — and a background group-commit
// loop writes the buffer out every DefaultFlushInterval (plus inline
// when it passes the high-water mark). Rotation and Close fsync, so at
// most one flush interval of records is at risk on a crash; the decoder
// handles the torn tail that leaves.
//
// A nil *Recorder discards everything at zero cost — the same disabled
// convention as a nil obs.Registry — so producers hold one
// unconditionally.
type Recorder struct {
	dir      string
	runID    string
	segBytes int64

	mu         sync.Mutex
	buf        []byte // pending encoded frames (whole frames only)
	scratch    []byte // payload encoding workspace
	e          enc    // reused by begin/commit so producers never allocate
	f          *os.File
	seg        int
	segWritten int64
	csiSeq     uint64
	records    uint64
	err        error // sticky first I/O error
	closed     bool

	life obs.Lifecycle
}

// Open creates (if needed) the run directory dir and starts a recorder
// rotating segments at segMB megabytes (0 = DefaultSegmentMB). The
// directory's base name is the run ID.
func Open(dir string, segMB int) (*Recorder, error) {
	if segMB <= 0 {
		segMB = DefaultSegmentMB
	}
	return open(dir, int64(segMB)<<20)
}

func open(dir string, segBytes int64) (*Recorder, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	r := &Recorder{
		dir:      dir,
		runID:    filepath.Base(dir),
		segBytes: segBytes,
	}
	f, err := os.Create(filepath.Join(dir, segmentName(0)))
	if err != nil {
		return nil, err
	}
	r.f = f
	r.life.Start(nil, r.loop)
	return r, nil
}

// RunID returns the run identifier (the run directory's base name); ""
// on a nil recorder.
func (r *Recorder) RunID() string {
	if r == nil {
		return ""
	}
	return r.runID
}

// Dir returns the run directory; "" on a nil recorder.
func (r *Recorder) Dir() string {
	if r == nil {
		return ""
	}
	return r.dir
}

// Err returns the sticky first I/O error, if any.
func (r *Recorder) Err() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Records returns how many records have been accepted.
func (r *Recorder) Records() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.records
}

func (r *Recorder) loop(stop <-chan struct{}) {
	t := time.NewTicker(DefaultFlushInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			r.mu.Lock()
			r.flushLocked(false)
			r.mu.Unlock()
		}
	}
}

// begin locks the recorder and hands out its reusable payload encoder,
// or nil when recording is off (nil recorder, closed, or failed). A
// non-nil return MUST be balanced by commit. The begin/commit split —
// rather than a record(kind, closure) helper — keeps the producer path
// free of closure allocations.
func (r *Recorder) begin() *enc {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	if r.closed || r.err != nil {
		r.mu.Unlock()
		return nil
	}
	r.e.b = r.scratch[:0]
	return &r.e
}

// commit frames the encoded payload into the pending buffer and unlocks.
func (r *Recorder) commit(kind Kind) {
	r.scratch = r.e.b
	r.buf = appendFrame(r.buf, kind, r.e.b)
	r.records++
	if len(r.buf) >= flushHighWater {
		r.flushLocked(false)
	}
	r.mu.Unlock()
}

// flushLocked writes the pending buffer to the current segment,
// rotating (with fsync) when the segment passes its size threshold.
// Caller holds r.mu.
func (r *Recorder) flushLocked(sync bool) {
	if r.err != nil || r.f == nil {
		r.buf = r.buf[:0]
		return
	}
	if len(r.buf) > 0 {
		n, err := r.f.Write(r.buf)
		r.segWritten += int64(n)
		r.buf = r.buf[:0]
		if err != nil {
			r.err = err
			return
		}
	}
	if sync {
		if err := r.f.Sync(); err != nil {
			r.err = err
			return
		}
	}
	if r.segWritten >= r.segBytes {
		if err := r.f.Sync(); err != nil {
			r.err = err
			return
		}
		if err := r.f.Close(); err != nil {
			r.err = err
			return
		}
		r.seg++
		f, err := os.Create(filepath.Join(r.dir, segmentName(r.seg)))
		if err != nil {
			r.err = err
			r.f = nil
			return
		}
		r.f = f
		r.segWritten = 0
	}
}

// Flush writes all pending records to disk and fsyncs the current
// segment. The group-commit loop makes routine calls unnecessary; it
// exists for durability barriers (the manifest, tests).
func (r *Recorder) Flush() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return r.err
	}
	r.flushLocked(true)
	return r.err
}

// Close flushes, fsyncs, and closes the run log. Further records are
// discarded. Safe to call more than once and on a nil recorder.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.life.Stop()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return r.err
	}
	r.closed = true
	r.flushLocked(true)
	if r.f != nil {
		if err := r.f.Close(); err != nil && r.err == nil {
			r.err = err
		}
		r.f = nil
	}
	return r.err
}

// RecordManifest writes the run manifest — conventionally the first
// record — filling RunID, FormatVersion, and Fingerprint if unset, and
// flushes it to disk immediately so even a crashed run is identifiable.
func (r *Recorder) RecordManifest(m *Manifest) {
	if r == nil || m == nil {
		return
	}
	if m.RunID == "" {
		m.RunID = r.runID
	}
	if m.FormatVersion == 0 {
		m.FormatVersion = FormatVersion
	}
	if m.Fingerprint == 0 {
		m.Fingerprint = m.ComputeFingerprint()
	}
	e := r.begin()
	if e == nil {
		return
	}
	encodeManifest(e, m)
	r.commit(KindManifest)
	_ = r.Flush()
}

// RecordActuation logs one applied element configuration.
func (r *Recorder) RecordActuation(source ActuationSource, traceID uint64, cfg []int) {
	e := r.begin()
	if e == nil {
		return
	}
	e.i64(time.Now().UnixNano())
	e.u64(traceID)
	e.u8(uint8(source))
	e.i32sFromInts(cfg)
	r.commit(KindActuation)
}

// RecordCSI logs one measured per-subcarrier SNR curve, assigning it
// the next measurement sequence number. Shaped to slot straight into
// Link.OnCSI.
func (r *Recorder) RecordCSI(snrDB []float64) {
	e := r.begin()
	if e == nil {
		return
	}
	e.i64(time.Now().UnixNano())
	e.u64(r.csiSeq) // r.mu held between begin and commit
	r.csiSeq++
	e.f64s(snrDB)
	r.commit(KindCSI)
}

// RecordKPI logs one named scalar sample.
func (r *Recorder) RecordKPI(name string, value float64) {
	e := r.begin()
	if e == nil {
		return
	}
	e.i64(time.Now().UnixNano())
	e.str(name)
	e.f64(value)
	r.commit(KindKPI)
}

// RecordAlert logs one alert-rule state transition.
func (r *Recorder) RecordAlert(rule string, from, to uint8, value float64) {
	e := r.begin()
	if e == nil {
		return
	}
	e.i64(time.Now().UnixNano())
	e.str(rule)
	e.u8(from)
	e.u8(to)
	e.f64(value)
	r.commit(KindAlert)
}

// RecordRuntime logs one periodic Go-runtime health snapshot. A zero
// UnixNs is stamped with the current time.
func (r *Recorder) RecordRuntime(s RuntimeSample) {
	e := r.begin()
	if e == nil {
		return
	}
	if s.UnixNs == 0 {
		s.UnixNs = time.Now().UnixNano()
	}
	e.i64(s.UnixNs)
	e.u64(s.HeapLiveBytes)
	e.u64(s.HeapGoalBytes)
	e.u64(s.Goroutines)
	e.u64(s.GCCycles)
	e.f64(s.GCPauseP50)
	e.f64(s.GCPauseP99)
	e.f64(s.SchedLatP99)
	r.commit(KindRuntime)
}

// RecordPhaseCost logs one cumulative per-phase work-accounting sample.
// A zero UnixNs is stamped with the current time.
func (r *Recorder) RecordPhaseCost(p PhaseCost) {
	e := r.begin()
	if e == nil {
		return
	}
	if p.UnixNs == 0 {
		p.UnixNs = time.Now().UnixNano()
	}
	e.i64(p.UnixNs)
	e.str(p.Phase)
	e.i64(p.Ns)
	e.i64(p.Calls)
	e.i64(p.Bytes)
	e.u32(uint32(len(p.Aux)))
	for _, a := range p.Aux {
		e.str(a.Name)
		e.i64(a.Value)
	}
	r.commit(KindPhaseCost)
}

// RecordLoop logs one control-loop iteration measured against its
// coherence deadline. A zero UnixNs is stamped with the current time.
func (r *Recorder) RecordLoop(l LoopRecord) {
	e := r.begin()
	if e == nil {
		return
	}
	if l.UnixNs == 0 {
		l.UnixNs = time.Now().UnixNano()
	}
	e.i64(l.UnixNs)
	e.u64(l.TraceID)
	e.u64(l.Seq)
	e.str(l.Name)
	e.i64(l.DeadlineNs)
	e.i64(l.LatencyNs)
	e.bool(l.Missed)
	e.u32(uint32(len(l.Phases)))
	for _, p := range l.Phases {
		e.str(p.Name)
		e.i64(p.Value)
	}
	r.commit(KindLoop)
}

// RecordDecision logs one search evaluation: the measured config, its
// score, and whether it improved the best-so-far.
func (r *Recorder) RecordDecision(eval uint64, score float64, improved bool, cfg []int) {
	e := r.begin()
	if e == nil {
		return
	}
	e.i64(time.Now().UnixNano())
	e.u64(eval)
	e.f64(score)
	e.bool(improved)
	e.i32sFromInts(cfg)
	r.commit(KindDecision)
}
