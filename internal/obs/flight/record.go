package flight

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// FormatVersion is the flight-log format revision stamped into every
// manifest. Bump it when the frame layout or a record's encoding
// changes incompatibly; the decoder skips unknown record kinds, so
// additive changes do not need a bump.
const FormatVersion = 1

// Kind identifies a record's type on the wire.
type Kind uint8

// Record kinds. Values are wire format — never renumber.
const (
	KindManifest  Kind = 1 // run identity: seeds, params, build info
	KindActuation Kind = 2 // one applied element configuration
	KindCSI       Kind = 3 // one measured per-subcarrier SNR curve
	KindKPI       Kind = 4 // one named scalar KPI sample
	KindAlert     Kind = 5 // one alert-rule state transition
	KindDecision  Kind = 6 // one search evaluation
	KindRuntime   Kind = 7 // one periodic Go-runtime health snapshot
	KindPhaseCost Kind = 8 // one cumulative per-phase work-accounting sample
	KindLoop      Kind = 9 // one control-loop iteration vs its coherence deadline
)

// String names a kind for logs and summaries.
func (k Kind) String() string {
	switch k {
	case KindManifest:
		return "manifest"
	case KindActuation:
		return "actuation"
	case KindCSI:
		return "csi"
	case KindKPI:
		return "kpi"
	case KindAlert:
		return "alert"
	case KindDecision:
		return "decision"
	case KindRuntime:
		return "runtime"
	case KindPhaseCost:
		return "phase_cost"
	case KindLoop:
		return "loop"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Param is one manifest key/value pair. Parameters are stored sorted by
// key so the fingerprint is order-independent.
type Param struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Manifest is the first record of every run log: everything needed to
// identify, fingerprint, and re-execute the run.
type Manifest struct {
	FormatVersion uint16 `json:"format_version"`
	RunID         string `json:"run_id"`
	// Binary and Scenario name what produced the run ("pressctl"/"demo",
	// "pressim"/"fig4,fig8"); replay dispatches on them.
	Binary   string `json:"binary"`
	Scenario string `json:"scenario"`
	// Seed is the primary RNG seed; harness-specific seeds and settings
	// live in Params.
	Seed        uint64  `json:"seed"`
	Params      []Param `json:"params,omitempty"`
	Fingerprint uint64  `json:"fingerprint"`
	StartUnixNs int64   `json:"start_unix_ns"`
	// Build provenance, from debug.ReadBuildInfo at record time.
	GoVersion   string `json:"go_version"`
	VCSRevision string `json:"vcs_revision"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
}

// SetParams replaces the manifest's parameter list, sorted by key.
func (m *Manifest) SetParams(ps []Param) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Key < ps[j].Key })
	m.Params = ps
}

// Param returns the named parameter's value and whether it is present.
func (m *Manifest) Param(key string) (string, bool) {
	for _, p := range m.Params {
		if p.Key == key {
			return p.Value, true
		}
	}
	return "", false
}

// SessionParamKey is the manifest parameter that tags a run with the
// telemetry session (room) it belongs to. It rides in Params rather
// than a dedicated manifest field so the binary format (and every
// already-recorded run log) stays valid.
const SessionParamKey = "session"

// SetSession tags the manifest with a session ID, replacing any
// existing tag. Empty id removes the tag.
func (m *Manifest) SetSession(id string) {
	for i, p := range m.Params {
		if p.Key == SessionParamKey {
			if id == "" {
				m.Params = append(m.Params[:i], m.Params[i+1:]...)
			} else {
				m.Params[i].Value = id
			}
			return
		}
	}
	if id == "" {
		return
	}
	m.SetParams(append(m.Params, Param{Key: SessionParamKey, Value: id}))
}

// Session returns the manifest's session tag, "" when untagged.
func (m *Manifest) Session() string {
	v, _ := m.Param(SessionParamKey)
	return v
}

// ComputeFingerprint hashes the run configuration (binary, scenario,
// seed, sorted params — not timestamps or build info) so identically
// configured runs share a fingerprint across hosts and days.
func (m *Manifest) ComputeFingerprint() uint64 {
	h := fnv.New64a()
	var b [8]byte
	write := func(s string) {
		binary.LittleEndian.PutUint64(b[:], uint64(len(s)))
		h.Write(b[:])
		h.Write([]byte(s))
	}
	write(m.Binary)
	write(m.Scenario)
	binary.LittleEndian.PutUint64(b[:], m.Seed)
	h.Write(b[:])
	for _, p := range m.Params {
		write(p.Key)
		write(p.Value)
	}
	return h.Sum64()
}

// ActuationSource says which side of the control plane stamped an
// actuation record.
type ActuationSource uint8

// Actuation sources.
const (
	SourceController ActuationSource = 0 // controller-side SetConfig
	SourceAgent      ActuationSource = 1 // agent-side successful apply
	SourceReplay     ActuationSource = 2 // regenerated during replay
)

// String names the source.
func (s ActuationSource) String() string {
	switch s {
	case SourceController:
		return "controller"
	case SourceAgent:
		return "agent"
	case SourceReplay:
		return "replay"
	default:
		return fmt.Sprintf("source(%d)", uint8(s))
	}
}

// Actuation is one applied element configuration.
type Actuation struct {
	UnixNs  int64           `json:"unix_ns"`
	TraceID uint64          `json:"trace_id,omitempty"`
	Source  ActuationSource `json:"source"`
	Config  []int32         `json:"config"`
}

// CSISample is one measured per-subcarrier SNR curve — the KPI stream
// replay verification compares.
type CSISample struct {
	UnixNs int64 `json:"unix_ns"`
	// Seq is the measurement's index within the run, assigned by the
	// recorder; replay aligns streams on it.
	Seq   uint64    `json:"seq"`
	SNRdB []float64 `json:"snr_db"`
}

// KPISample is one named scalar sample (e.g. "cond_db_median").
type KPISample struct {
	UnixNs int64   `json:"unix_ns"`
	Name   string  `json:"name"`
	Value  float64 `json:"value"`
}

// AlertTransition is one alert-rule state change, mirrored from the
// channel-health engine.
type AlertTransition struct {
	UnixNs int64   `json:"unix_ns"`
	Rule   string  `json:"rule"`
	From   uint8   `json:"from"`
	To     uint8   `json:"to"`
	Value  float64 `json:"value"`
}

// RuntimeSample is one periodic Go-runtime health snapshot — the
// GC/heap/scheduler state the perf sampler records so a cross-run diff
// can report runtime-health drift alongside the physical-layer KPIs.
type RuntimeSample struct {
	UnixNs        int64   `json:"unix_ns"`
	HeapLiveBytes uint64  `json:"heap_live_bytes"`
	HeapGoalBytes uint64  `json:"heap_goal_bytes"`
	Goroutines    uint64  `json:"goroutines"`
	GCCycles      uint64  `json:"gc_cycles"`
	GCPauseP50    float64 `json:"gc_pause_p50_s"`
	GCPauseP99    float64 `json:"gc_pause_p99_s"`
	SchedLatP99   float64 `json:"sched_latency_p99_s"`
}

// AuxCount is one named work counter riding a PhaseCost sample —
// domain units like images enumerated, paths kept, or subcarrier
// evaluations that give the ns/calls pair a denominator.
type AuxCount struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// PhaseCost is one cumulative work-accounting sample for a named
// execution phase ("path_trace", "channel_sum", ...). Samples are
// cumulative since collection started, so the last record per phase
// carries the run's totals and a torn tail only loses recency, never
// the whole tally.
type PhaseCost struct {
	UnixNs int64  `json:"unix_ns"`
	Phase  string `json:"phase"`
	// Ns is total time spent inside the phase, Calls how many spans
	// closed, Bytes the heap bytes allocated while a phase span was open
	// (process-wide reading; see internal/obs/prof).
	Ns    int64      `json:"ns"`
	Calls int64      `json:"calls"`
	Bytes int64      `json:"bytes,omitempty"`
	Aux   []AuxCount `json:"aux,omitempty"`
}

// LoopRecord is one control-loop iteration measured against its
// coherence deadline (§2): end-to-end latency, the deadline in force,
// whether it was missed, and the per-phase breakdown of where the time
// went. TraceID joins the record to the loop's span tree (/tracez,
// Chrome-trace export) and to control-plane frames.
type LoopRecord struct {
	UnixNs     int64  `json:"unix_ns"`
	TraceID    uint64 `json:"trace_id"`
	Seq        uint64 `json:"seq"`
	Name       string `json:"name"`
	DeadlineNs int64  `json:"deadline_ns"`
	LatencyNs  int64  `json:"latency_ns"`
	Missed     bool   `json:"missed"`
	// Phases carries per-top-level-phase wall time in nanoseconds
	// (sense, search, actuate, ...), reusing AuxCount.
	Phases []AuxCount `json:"phases,omitempty"`
}

// SearchDecision is one configuration-search evaluation: which config
// was measured, what it scored, and whether it improved the best.
type SearchDecision struct {
	UnixNs   int64   `json:"unix_ns"`
	Eval     uint64  `json:"eval"`
	Score    float64 `json:"score"`
	Improved bool    `json:"improved"`
	Config   []int32 `json:"config"`
}

// ---- binary payload codec ----
//
// All integers are little-endian and fixed-width; strings and slices are
// u32-length-prefixed. The decoder bounds-checks every read against the
// remaining payload, so corrupt lengths can never over-read.

type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u16(v uint16) { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }
func (e *enc) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *enc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}
func (e *enc) f64s(vs []float64) {
	e.u32(uint32(len(vs)))
	for _, v := range vs {
		e.f64(v)
	}
}

// i32sFromInts encodes an []int config without converting through an
// intermediate slice (keeps the producer path allocation-free).
func (e *enc) i32sFromInts(vs []int) {
	e.u32(uint32(len(vs)))
	for _, v := range vs {
		e.u32(uint32(int32(v)))
	}
}
func (e *enc) i32s(vs []int32) {
	e.u32(uint32(len(vs)))
	for _, v := range vs {
		e.u32(uint32(v))
	}
}

type dec struct {
	b   []byte
	off int
	bad bool
}

func (d *dec) fail() {
	d.bad = true
	d.off = len(d.b)
}
func (d *dec) take(n int) []byte {
	if d.bad || n < 0 || len(d.b)-d.off < n {
		d.fail()
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}
func (d *dec) u8() uint8 {
	if s := d.take(1); s != nil {
		return s[0]
	}
	return 0
}
func (d *dec) u16() uint16 {
	if s := d.take(2); s != nil {
		return binary.LittleEndian.Uint16(s)
	}
	return 0
}
func (d *dec) u32() uint32 {
	if s := d.take(4); s != nil {
		return binary.LittleEndian.Uint32(s)
	}
	return 0
}
func (d *dec) u64() uint64 {
	if s := d.take(8); s != nil {
		return binary.LittleEndian.Uint64(s)
	}
	return 0
}
func (d *dec) i64() int64   { return int64(d.u64()) }
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *dec) boolv() bool  { return d.u8() != 0 }
func (d *dec) str() string {
	n := int(d.u32())
	if d.bad || len(d.b)-d.off < n {
		d.fail()
		return ""
	}
	return string(d.take(n))
}
func (d *dec) f64s() []float64 {
	n := int(d.u32())
	if d.bad || n < 0 || len(d.b)-d.off < n*8 {
		d.fail()
		return nil
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = d.f64()
	}
	return vs
}
func (d *dec) i32s() []int32 {
	n := int(d.u32())
	if d.bad || n < 0 || len(d.b)-d.off < n*4 {
		d.fail()
		return nil
	}
	vs := make([]int32, n)
	for i := range vs {
		vs[i] = int32(d.u32())
	}
	return vs
}

// done reports whether the payload decoded cleanly and completely.
func (d *dec) done() bool { return !d.bad && d.off == len(d.b) }

var errBadPayload = fmt.Errorf("flight: malformed record payload")

func encodeManifest(e *enc, m *Manifest) {
	e.u16(m.FormatVersion)
	e.str(m.RunID)
	e.str(m.Binary)
	e.str(m.Scenario)
	e.u64(m.Seed)
	e.u32(uint32(len(m.Params)))
	for _, p := range m.Params {
		e.str(p.Key)
		e.str(p.Value)
	}
	e.u64(m.Fingerprint)
	e.i64(m.StartUnixNs)
	e.str(m.GoVersion)
	e.str(m.VCSRevision)
	e.str(m.VCSTime)
	e.bool(m.VCSModified)
}

func decodeManifest(payload []byte) (*Manifest, error) {
	d := &dec{b: payload}
	m := &Manifest{
		FormatVersion: d.u16(),
		RunID:         d.str(),
		Binary:        d.str(),
		Scenario:      d.str(),
		Seed:          d.u64(),
	}
	n := int(d.u32())
	if d.bad || n < 0 || len(d.b)-d.off < n { // ≥1 byte per param pair
		return nil, errBadPayload
	}
	if n > 0 {
		m.Params = make([]Param, n)
		for i := range m.Params {
			m.Params[i] = Param{Key: d.str(), Value: d.str()}
		}
	}
	m.Fingerprint = d.u64()
	m.StartUnixNs = d.i64()
	m.GoVersion = d.str()
	m.VCSRevision = d.str()
	m.VCSTime = d.str()
	m.VCSModified = d.boolv()
	if !d.done() {
		return nil, errBadPayload
	}
	return m, nil
}

func decodeActuation(payload []byte) (Actuation, error) {
	d := &dec{b: payload}
	a := Actuation{
		UnixNs:  d.i64(),
		TraceID: d.u64(),
		Source:  ActuationSource(d.u8()),
		Config:  d.i32s(),
	}
	if !d.done() {
		return Actuation{}, errBadPayload
	}
	return a, nil
}

func decodeCSI(payload []byte) (CSISample, error) {
	d := &dec{b: payload}
	c := CSISample{UnixNs: d.i64(), Seq: d.u64(), SNRdB: d.f64s()}
	if !d.done() {
		return CSISample{}, errBadPayload
	}
	return c, nil
}

func decodeKPI(payload []byte) (KPISample, error) {
	d := &dec{b: payload}
	k := KPISample{UnixNs: d.i64(), Name: d.str(), Value: d.f64()}
	if !d.done() {
		return KPISample{}, errBadPayload
	}
	return k, nil
}

func decodeAlert(payload []byte) (AlertTransition, error) {
	d := &dec{b: payload}
	a := AlertTransition{
		UnixNs: d.i64(), Rule: d.str(),
		From: d.u8(), To: d.u8(), Value: d.f64(),
	}
	if !d.done() {
		return AlertTransition{}, errBadPayload
	}
	return a, nil
}

func decodeRuntime(payload []byte) (RuntimeSample, error) {
	d := &dec{b: payload}
	s := RuntimeSample{
		UnixNs:        d.i64(),
		HeapLiveBytes: d.u64(),
		HeapGoalBytes: d.u64(),
		Goroutines:    d.u64(),
		GCCycles:      d.u64(),
		GCPauseP50:    d.f64(),
		GCPauseP99:    d.f64(),
		SchedLatP99:   d.f64(),
	}
	if !d.done() {
		return RuntimeSample{}, errBadPayload
	}
	return s, nil
}

func decodePhaseCost(payload []byte) (PhaseCost, error) {
	d := &dec{b: payload}
	p := PhaseCost{
		UnixNs: d.i64(), Phase: d.str(),
		Ns: d.i64(), Calls: d.i64(), Bytes: d.i64(),
	}
	n := int(d.u32())
	if d.bad || n < 0 || len(d.b)-d.off < n { // ≥1 byte per aux entry
		return PhaseCost{}, errBadPayload
	}
	if n > 0 {
		p.Aux = make([]AuxCount, n)
		for i := range p.Aux {
			p.Aux[i] = AuxCount{Name: d.str(), Value: d.i64()}
		}
	}
	if !d.done() {
		return PhaseCost{}, errBadPayload
	}
	return p, nil
}

func decodeLoop(payload []byte) (LoopRecord, error) {
	d := &dec{b: payload}
	l := LoopRecord{
		UnixNs: d.i64(), TraceID: d.u64(), Seq: d.u64(), Name: d.str(),
		DeadlineNs: d.i64(), LatencyNs: d.i64(), Missed: d.boolv(),
	}
	n := int(d.u32())
	if d.bad || n < 0 || len(d.b)-d.off < n { // ≥1 byte per phase entry
		return LoopRecord{}, errBadPayload
	}
	if n > 0 {
		l.Phases = make([]AuxCount, n)
		for i := range l.Phases {
			l.Phases[i] = AuxCount{Name: d.str(), Value: d.i64()}
		}
	}
	if !d.done() {
		return LoopRecord{}, errBadPayload
	}
	return l, nil
}

func decodeDecision(payload []byte) (SearchDecision, error) {
	d := &dec{b: payload}
	s := SearchDecision{
		UnixNs: d.i64(), Eval: d.u64(), Score: d.f64(),
		Improved: d.boolv(), Config: d.i32s(),
	}
	if !d.done() {
		return SearchDecision{}, errBadPayload
	}
	return s, nil
}
