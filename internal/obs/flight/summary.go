package flight

import (
	"math"
	"sort"

	"press/internal/stats"
)

// Dist condenses one KPI's samples into the fields a cross-run diff
// compares.
type Dist struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
}

// distOf summarizes xs; a zero Dist (N=0) means no samples.
func distOf(xs []float64) Dist {
	if len(xs) == 0 {
		return Dist{}
	}
	return Dist{
		N:    len(xs),
		Mean: stats.Mean(xs),
		Min:  stats.Min(xs),
		Max:  stats.Max(xs),
		P50:  stats.Quantile(xs, 0.5),
		P90:  stats.Quantile(xs, 0.9),
		P99:  stats.Quantile(xs, 0.99),
	}
}

// Summary is the decoded, aggregated view of one run — what
// /runs/{id}.json serves and what rundiff compares.
type Summary struct {
	RunID       string `json:"run_id"`
	Binary      string `json:"binary"`
	Scenario    string `json:"scenario"`
	Seed        uint64 `json:"seed"`
	Fingerprint uint64 `json:"fingerprint"`
	StartUnixNs int64  `json:"start_unix_ns"`
	GoVersion   string `json:"go_version,omitempty"`
	VCSRevision string `json:"vcs_revision,omitempty"`

	// Measurements is the CSI sample count; Subcarriers the curve width
	// of the first sample.
	Measurements int `json:"measurements"`
	Subcarriers  int `json:"subcarriers,omitempty"`

	// Physical-layer KPIs over the CSI stream.
	MinSNRdB      Dist    `json:"min_snr_db"`
	NullDepthDB   Dist    `json:"null_depth_db"`
	FinalMinSNRdB float64 `json:"final_min_snr_db,omitempty"`

	// CondDB aggregates "cond_db_median" KPI samples (MIMO harnesses).
	CondDB Dist `json:"cond_db,omitempty"`

	// Search trajectory: evaluations, best score, and the regret of each
	// evaluation's best-so-far against the run's final best.
	SearchEvals int     `json:"search_evals"`
	BestScore   float64 `json:"best_score,omitempty"`
	RegretDB    Dist    `json:"regret_db,omitempty"`

	Actuations  int `json:"actuations"`
	AlertsFired int `json:"alerts_fired"`

	// Runtime-health aggregates over the periodic RuntimeSample stream
	// (empty when the run recorded none).
	RuntimeSamples int  `json:"runtime_samples,omitempty"`
	HeapLiveMB     Dist `json:"heap_live_mb,omitempty"`
	Goroutines     Dist `json:"goroutines,omitempty"`
	GCPauseP99Ms   Dist `json:"gc_pause_p99_ms,omitempty"`
	SchedLatP99Ms  Dist `json:"sched_latency_p99_ms,omitempty"`
	// GCCycles is the number of GC cycles the run spanned (last sample
	// minus first).
	GCCycles uint64 `json:"gc_cycles,omitempty"`

	// Phases carries the run's final per-phase work-accounting totals
	// (empty when the run recorded no phase-cost samples).
	Phases []PhaseSummary `json:"phases,omitempty"`

	// Control-loop deadline accounting over the KindLoop stream (zero
	// when the run traced no loops). Slack is deadline − latency; loops
	// without a deadline are excluded from the slack distribution.
	Loops         int  `json:"loops,omitempty"`
	LoopMisses    int  `json:"loop_misses,omitempty"`
	LoopLatencyMs Dist `json:"loop_latency_ms,omitempty"`
	LoopSlackMs   Dist `json:"loop_slack_ms,omitempty"`

	Decode DecodeStats `json:"decode"`
}

// PhaseSummary is one phase's final cumulative work totals. Because
// PhaseCost samples are cumulative, the last sample per phase name wins.
type PhaseSummary struct {
	Phase string     `json:"phase"`
	Ns    int64      `json:"ns"`
	Calls int64      `json:"calls"`
	Bytes int64      `json:"bytes,omitempty"`
	Aux   []AuxCount `json:"aux,omitempty"`
}

// summarizePhases reduces the cumulative sample stream to the final
// totals per phase, sorted by phase name for stable output.
func summarizePhases(samples []PhaseCost) []PhaseSummary {
	if len(samples) == 0 {
		return nil
	}
	last := make(map[string]PhaseCost, 8)
	for _, p := range samples {
		prev, ok := last[p.Phase]
		if !ok || p.UnixNs >= prev.UnixNs {
			last[p.Phase] = p
		}
	}
	out := make([]PhaseSummary, 0, len(last))
	for _, p := range last {
		out = append(out, PhaseSummary{Phase: p.Phase, Ns: p.Ns, Calls: p.Calls, Bytes: p.Bytes, Aux: p.Aux})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Phase < out[j].Phase })
	return out
}

// Summarize aggregates a decoded run. It never fails: missing record
// classes leave zero-valued fields.
func Summarize(run *Run) Summary {
	s := Summary{Decode: run.Stats}
	if m := run.Manifest; m != nil {
		s.RunID = m.RunID
		s.Binary = m.Binary
		s.Scenario = m.Scenario
		s.Seed = m.Seed
		s.Fingerprint = m.Fingerprint
		s.StartUnixNs = m.StartUnixNs
		s.GoVersion = m.GoVersion
		s.VCSRevision = m.VCSRevision
	}

	s.Measurements = len(run.CSI)
	if len(run.CSI) > 0 {
		s.Subcarriers = len(run.CSI[0].SNRdB)
		minSNR := make([]float64, 0, len(run.CSI))
		depths := make([]float64, 0, len(run.CSI))
		for _, c := range run.CSI {
			if len(c.SNRdB) == 0 {
				continue
			}
			minSNR = append(minSNR, stats.Min(c.SNRdB))
			if null, ok := stats.MostSignificantNull(c.SNRdB, 0); ok {
				depths = append(depths, null.DepthDB)
			}
		}
		s.MinSNRdB = distOf(minSNR)
		s.NullDepthDB = distOf(depths)
		if len(minSNR) > 0 {
			s.FinalMinSNRdB = minSNR[len(minSNR)-1]
		}
	}

	var cond []float64
	for _, k := range run.KPIs {
		if k.Name == KPICondDBMedian {
			cond = append(cond, k.Value)
		}
	}
	s.CondDB = distOf(cond)

	s.SearchEvals = len(run.Decisions)
	if len(run.Decisions) > 0 {
		best := math.Inf(-1)
		trajectory := make([]float64, 0, len(run.Decisions))
		for _, d := range run.Decisions {
			if d.Score > best {
				best = d.Score
			}
			trajectory = append(trajectory, best)
		}
		s.BestScore = best
		regret := make([]float64, len(trajectory))
		for i, b := range trajectory {
			regret[i] = best - b
		}
		s.RegretDB = distOf(regret)
	}

	s.Actuations = len(run.Actuations)
	for _, a := range run.Alerts {
		if a.To == alertStateFiring {
			s.AlertsFired++
		}
	}

	s.RuntimeSamples = len(run.Runtime)
	if n := len(run.Runtime); n > 0 {
		heap := make([]float64, n)
		gor := make([]float64, n)
		pause := make([]float64, n)
		sched := make([]float64, n)
		for i, rt := range run.Runtime {
			heap[i] = float64(rt.HeapLiveBytes) / (1 << 20)
			gor[i] = float64(rt.Goroutines)
			pause[i] = rt.GCPauseP99 * 1e3
			sched[i] = rt.SchedLatP99 * 1e3
		}
		s.HeapLiveMB = distOf(heap)
		s.Goroutines = distOf(gor)
		s.GCPauseP99Ms = distOf(pause)
		s.SchedLatP99Ms = distOf(sched)
		if last, first := run.Runtime[n-1].GCCycles, run.Runtime[0].GCCycles; last >= first {
			s.GCCycles = last - first
		}
	}
	s.Phases = summarizePhases(run.PhaseCosts)

	s.Loops = len(run.Loops)
	if len(run.Loops) > 0 {
		lat := make([]float64, 0, len(run.Loops))
		slack := make([]float64, 0, len(run.Loops))
		for _, l := range run.Loops {
			lat = append(lat, float64(l.LatencyNs)/1e6)
			if l.DeadlineNs > 0 {
				slack = append(slack, float64(l.DeadlineNs-l.LatencyNs)/1e6)
			}
			if l.Missed {
				s.LoopMisses++
			}
		}
		s.LoopLatencyMs = distOf(lat)
		s.LoopSlackMs = distOf(slack)
	}
	return s
}

// KPICondDBMedian is the KPI record name the MIMO harnesses log for the
// median per-subcarrier condition number in dB.
const KPICondDBMedian = "cond_db_median"

// alertStateFiring mirrors health.StateFiring's wire value without
// importing the package here (cli.go owns that dependency).
const alertStateFiring = 2
