package flight

import (
	"os"
	"path/filepath"
	"testing"
)

// benchRecorder opens a recorder whose segment writes land in
// /dev/null, so the benchmark measures the producer path plus flush
// cost without filling the disk.
func benchRecorder(b *testing.B) *Recorder {
	b.Helper()
	rec, err := open(filepath.Join(b.TempDir(), "bench"), 1<<62)
	if err != nil {
		b.Fatal(err)
	}
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		b.Fatal(err)
	}
	rec.mu.Lock()
	rec.f.Close()
	rec.f = null
	rec.mu.Unlock()
	b.Cleanup(func() { rec.Close() })
	return rec
}

func benchCurve() []float64 {
	curve := make([]float64, 64)
	for i := range curve {
		curve[i] = 20 + float64(i%7)
	}
	return curve
}

// BenchmarkRecordCSI is the measurement hot path: encoding one
// 64-subcarrier curve into the group-commit buffer under the lock.
func BenchmarkRecordCSI(b *testing.B) {
	curve := benchCurve()
	b.Run("enabled", func(b *testing.B) {
		rec := benchRecorder(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec.RecordCSI(curve)
		}
	})
	b.Run("disabled", func(b *testing.B) {
		var rec *Recorder
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec.RecordCSI(curve)
		}
	})
}

// BenchmarkRecordDecision is the search hot path: one decision record
// per evaluation.
func BenchmarkRecordDecision(b *testing.B) {
	cfg := []int{1, 2, 3, 0, 1, 2, 3, 0}
	b.Run("enabled", func(b *testing.B) {
		rec := benchRecorder(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec.RecordDecision(uint64(i), 42.5, false, cfg)
		}
	})
	b.Run("disabled", func(b *testing.B) {
		var rec *Recorder
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec.RecordDecision(uint64(i), 42.5, false, cfg)
		}
	})
}

// BenchmarkDecodeFrames measures consumer-side throughput over a
// segment of 64-subcarrier CSI frames.
func BenchmarkDecodeFrames(b *testing.B) {
	curve := benchCurve()
	e := &enc{}
	var data []byte
	for i := 0; i < 1000; i++ {
		e.b = e.b[:0]
		e.i64(int64(i))
		e.u64(uint64(i))
		e.f64s(curve)
		data = appendFrame(data, KindCSI, e.b)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := decodeFrames(data, func(Kind, []byte) error { return nil })
		if err != nil || stats.Frames != 1000 {
			b.Fatalf("stats %+v err %v", stats, err)
		}
	}
}
