package flight

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrames drives the segment decoder with arbitrary bytes.
// Invariants: it never panics or over-reads, emitted payloads round-trip
// through re-encoding, and record-level decoders accept every emitted
// frame of their kind without panicking.
func FuzzDecodeFrames(f *testing.F) {
	var good []byte
	good = appendFrame(good, KindCSI, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	good = appendFrame(good, KindKPI, nil)

	var rec []byte
	e := &enc{}
	encodeManifest(e, &Manifest{Binary: "b", Scenario: "s", Seed: 9,
		Params: []Param{{Key: "k", Value: "v"}}})
	rec = appendFrame(rec, KindManifest, e.b)

	seeds := [][]byte{
		nil,
		good,
		rec,
		good[:len(good)-3],                  // torn tail
		append([]byte{0xF1, 0x7E}, good...), // stray magic prefix
		{0xF1, 0x7E, 0x03, 0xFF, 0xFF, 0xFF, 0xFF}, // insane length
		bytes.Repeat([]byte{0xF1}, 64),
		bytes.Repeat([]byte{0xF1, 0x7E}, 32),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		stats, err := decodeFrames(data, func(kind Kind, payload []byte) error {
			// A frame that decoded must re-encode to a frame that decodes
			// to the same payload.
			reframed := appendFrame(nil, kind, payload)
			n := 0
			_, _ = decodeFrames(reframed, func(k2 Kind, p2 []byte) error {
				n++
				if k2 != kind || !bytes.Equal(p2, payload) {
					t.Fatalf("re-encode round trip: %v/%x -> %v/%x", kind, payload, k2, p2)
				}
				return nil
			})
			if n != 1 {
				t.Fatalf("re-encoded frame decoded %d times", n)
			}
			// Record decoders must reject or accept, never panic; a run
			// must fold any frame without panicking either.
			(&Run{}).apply(kind, payload)
			return nil
		})
		if err != nil {
			t.Fatalf("decodeFrames returned emit error that was never raised: %v", err)
		}
		if stats.Frames < 0 || stats.BytesSkipped < 0 || stats.BytesSkipped > int64(len(data)) {
			t.Fatalf("implausible stats %+v for %d bytes", stats, len(data))
		}
	})
}

// FuzzDecodeManifest drives the record-level manifest decoder directly:
// any accepted payload must re-encode and decode to the same manifest.
func FuzzDecodeManifest(f *testing.F) {
	e := &enc{}
	encodeManifest(e, &Manifest{
		FormatVersion: FormatVersion, RunID: "r", Binary: "b", Scenario: "s",
		Seed: 1, Params: []Param{{Key: "a", Value: "1"}}, Fingerprint: 2,
		StartUnixNs: 3, GoVersion: "go", VCSRevision: "rev", VCSTime: "t", VCSModified: true,
	})
	f.Add(e.b)
	f.Add([]byte{})
	f.Add(e.b[:len(e.b)/2])
	f.Fuzz(func(t *testing.T, payload []byte) {
		m, err := decodeManifest(payload)
		if err != nil {
			return
		}
		e := &enc{}
		encodeManifest(e, m)
		m2, err := decodeManifest(e.b)
		if err != nil {
			t.Fatalf("accepted manifest did not re-decode: %v", err)
		}
		if m.Binary != m2.Binary || m.Seed != m2.Seed || len(m.Params) != len(m2.Params) {
			t.Fatalf("manifest round trip drifted: %+v vs %+v", m, m2)
		}
	})
}
