package flight

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// FieldDelta is one compared metric in a cross-run diff.
type FieldDelta struct {
	Name  string  `json:"name"`
	A     float64 `json:"a"`
	B     float64 `json:"b"`
	Delta float64 `json:"delta"`
}

// RunRef identifies one side of a diff.
type RunRef struct {
	RunID       string `json:"run_id"`
	Scenario    string `json:"scenario"`
	Seed        uint64 `json:"seed"`
	Fingerprint uint64 `json:"fingerprint"`
	VCSRevision string `json:"vcs_revision,omitempty"`
}

func refOf(s Summary) RunRef {
	return RunRef{
		RunID: s.RunID, Scenario: s.Scenario, Seed: s.Seed,
		Fingerprint: s.Fingerprint, VCSRevision: s.VCSRevision,
	}
}

// RunDiff reports KPI deltas between two runs — the perf-trajectory
// view `pressctl rundiff` prints.
type RunDiff struct {
	A RunRef `json:"a"`
	B RunRef `json:"b"`
	// SameConfig is true when both manifests share a fingerprint, i.e.
	// the deltas measure code/build drift rather than workload drift.
	SameConfig bool         `json:"same_config"`
	Fields     []FieldDelta `json:"fields"`
}

// Diff compares two summarized runs field by field. Metrics absent from
// both sides are omitted.
func Diff(a, b Summary) *RunDiff {
	d := &RunDiff{
		A:          refOf(a),
		B:          refOf(b),
		SameConfig: a.Fingerprint != 0 && a.Fingerprint == b.Fingerprint,
	}
	add := func(name string, va, vb float64) {
		if va == 0 && vb == 0 {
			return
		}
		d.Fields = append(d.Fields, FieldDelta{Name: name, A: va, B: vb, Delta: vb - va})
	}
	addDist := func(prefix string, da, db Dist) {
		if da.N == 0 && db.N == 0 {
			return
		}
		add(prefix+".mean", da.Mean, db.Mean)
		add(prefix+".p50", da.P50, db.P50)
		add(prefix+".p90", da.P90, db.P90)
		add(prefix+".p99", da.P99, db.P99)
	}
	add("measurements", float64(a.Measurements), float64(b.Measurements))
	addDist("min_snr_db", a.MinSNRdB, b.MinSNRdB)
	addDist("null_depth_db", a.NullDepthDB, b.NullDepthDB)
	add("final_min_snr_db", a.FinalMinSNRdB, b.FinalMinSNRdB)
	addDist("cond_db", a.CondDB, b.CondDB)
	add("search_evals", float64(a.SearchEvals), float64(b.SearchEvals))
	add("best_score", a.BestScore, b.BestScore)
	addDist("search_regret_db", a.RegretDB, b.RegretDB)
	add("actuations", float64(a.Actuations), float64(b.Actuations))
	add("alerts_fired", float64(a.AlertsFired), float64(b.AlertsFired))
	add("runtime_samples", float64(a.RuntimeSamples), float64(b.RuntimeSamples))
	addDist("heap_live_mb", a.HeapLiveMB, b.HeapLiveMB)
	addDist("goroutines", a.Goroutines, b.Goroutines)
	addDist("gc_pause_p99_ms", a.GCPauseP99Ms, b.GCPauseP99Ms)
	addDist("sched_latency_p99_ms", a.SchedLatP99Ms, b.SchedLatP99Ms)
	add("gc_cycles", float64(a.GCCycles), float64(b.GCCycles))
	add("loops", float64(a.Loops), float64(b.Loops))
	add("loop_misses", float64(a.LoopMisses), float64(b.LoopMisses))
	addDist("loop_latency_ms", a.LoopLatencyMs, b.LoopLatencyMs)
	addDist("loop_slack_ms", a.LoopSlackMs, b.LoopSlackMs)

	// Per-phase cost deltas over the union of phase names, so a phase
	// present on only one side still shows up.
	pa := phaseIndex(a.Phases)
	pb := phaseIndex(b.Phases)
	for _, name := range phaseNameUnion(a.Phases, b.Phases) {
		add("phase."+name+".ms", float64(pa[name].Ns)/1e6, float64(pb[name].Ns)/1e6)
		add("phase."+name+".calls", float64(pa[name].Calls), float64(pb[name].Calls))
	}
	return d
}

func phaseIndex(ps []PhaseSummary) map[string]PhaseSummary {
	m := make(map[string]PhaseSummary, len(ps))
	for _, p := range ps {
		m[p.Phase] = p
	}
	return m
}

func phaseNameUnion(a, b []PhaseSummary) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var names []string
	for _, ps := range [2][]PhaseSummary{a, b} {
		for _, p := range ps {
			if !seen[p.Phase] {
				seen[p.Phase] = true
				names = append(names, p.Phase)
			}
		}
	}
	sort.Strings(names)
	return names
}

// WriteText renders the diff as an aligned table.
func (d *RunDiff) WriteText(w io.Writer) error {
	same := "differing configs"
	if d.SameConfig {
		same = "same config fingerprint"
	}
	if _, err := fmt.Fprintf(w, "run A %s (scenario %s, seed %d, rev %s)\nrun B %s (scenario %s, seed %d, rev %s)\n%s\n\n",
		d.A.RunID, d.A.Scenario, d.A.Seed, orUnknown(d.A.VCSRevision),
		d.B.RunID, d.B.Scenario, d.B.Seed, orUnknown(d.B.VCSRevision), same); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-26s %14s %14s %14s\n", "metric", "A", "B", "delta"); err != nil {
		return err
	}
	for _, f := range d.Fields {
		if _, err := fmt.Fprintf(w, "%-26s %14.4f %14.4f %+14.4f\n", f.Name, f.A, f.B, f.Delta); err != nil {
			return err
		}
	}
	return nil
}

func orUnknown(s string) string {
	if s == "" {
		return "unknown"
	}
	return s
}

// VerifyReport is the outcome of checking a regenerated run against its
// recording — `pressctl replay`'s verdict.
type VerifyReport struct {
	// Samples is the recorded CSI sample count, Compared how many were
	// checked pairwise (min of the two stream lengths).
	Samples  int `json:"samples"`
	Compared int `json:"compared"`
	// Mismatches counts samples whose curves disagree beyond tolerance
	// (or differ in length), plus any stream-length disagreement.
	Mismatches int `json:"mismatches"`
	// MaxDeviationDB is the largest per-subcarrier |Δ| seen.
	MaxDeviationDB float64 `json:"max_deviation_db"`
	// FirstMismatch describes the earliest failure ("" when clean).
	FirstMismatch string `json:"first_mismatch,omitempty"`
	// Decision stream agreement (secondary audit).
	Decisions        int     `json:"decisions"`
	DecisionMismatch int     `json:"decision_mismatches"`
	ToleranceDB      float64 `json:"tolerance_db"`
}

// OK reports whether replay reproduced the recorded KPI stream.
func (v *VerifyReport) OK() bool { return v.Mismatches == 0 && v.DecisionMismatch == 0 }

// WriteText renders the report for humans.
func (v *VerifyReport) WriteText(w io.Writer) error {
	verdict := "REPLAY OK"
	if !v.OK() {
		verdict = "REPLAY MISMATCH"
	}
	_, err := fmt.Fprintf(w,
		"%s: %d/%d CSI samples compared, %d mismatches (tolerance %g dB, max deviation %g dB); %d search decisions, %d mismatches\n",
		verdict, v.Compared, v.Samples, v.Mismatches, v.ToleranceDB, v.MaxDeviationDB,
		v.Decisions, v.DecisionMismatch)
	if err == nil && v.FirstMismatch != "" {
		_, err = fmt.Fprintf(w, "first mismatch: %s\n", v.FirstMismatch)
	}
	return err
}

// Verify compares a regenerated run's KPI stream (CSI samples, search
// decisions) against the recording, within a per-subcarrier tolerance
// in dB. Timestamps and alert records are not compared — wall time is
// not reproducible; the physics and the search trajectory are.
func Verify(recorded, regenerated *Run, tolDB float64) *VerifyReport {
	v := &VerifyReport{Samples: len(recorded.CSI), ToleranceDB: tolDB}
	mismatch := func(format string, args ...any) {
		v.Mismatches++
		if v.FirstMismatch == "" {
			v.FirstMismatch = fmt.Sprintf(format, args...)
		}
	}
	if len(recorded.CSI) != len(regenerated.CSI) {
		mismatch("CSI stream length: recorded %d, regenerated %d",
			len(recorded.CSI), len(regenerated.CSI))
	}
	n := min(len(recorded.CSI), len(regenerated.CSI))
	v.Compared = n
	for i := 0; i < n; i++ {
		a, b := recorded.CSI[i], regenerated.CSI[i]
		if len(a.SNRdB) != len(b.SNRdB) {
			mismatch("sample %d: curve length %d vs %d", i, len(a.SNRdB), len(b.SNRdB))
			continue
		}
		bad := false
		for k := range a.SNRdB {
			dev := math.Abs(a.SNRdB[k] - b.SNRdB[k])
			if dev > v.MaxDeviationDB {
				v.MaxDeviationDB = dev
			}
			if !(dev <= tolDB) { // NaN-safe: NaN deviation is a mismatch
				if !bad {
					mismatch("sample %d subcarrier %d: %.9f vs %.9f dB", i, k, a.SNRdB[k], b.SNRdB[k])
					bad = true
				}
			}
		}
	}

	v.Decisions = len(recorded.Decisions)
	if len(recorded.Decisions) != len(regenerated.Decisions) {
		v.DecisionMismatch++
		if v.FirstMismatch == "" {
			v.FirstMismatch = fmt.Sprintf("decision stream length: recorded %d, regenerated %d",
				len(recorded.Decisions), len(regenerated.Decisions))
		}
	}
	dn := min(len(recorded.Decisions), len(regenerated.Decisions))
	for i := 0; i < dn; i++ {
		a, b := recorded.Decisions[i], regenerated.Decisions[i]
		if math.Abs(a.Score-b.Score) > tolDB || !configsEqual(a.Config, b.Config) {
			v.DecisionMismatch++
			if v.FirstMismatch == "" {
				v.FirstMismatch = fmt.Sprintf("decision %d: config %v score %.9f vs config %v score %.9f",
					i, a.Config, a.Score, b.Config, b.Score)
			}
		}
	}
	return v
}

func configsEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
