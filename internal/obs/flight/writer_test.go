package flight

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestRecorderGoldenRoundTrip writes one record of every kind and reads
// the run back, field by field.
func TestRecorderGoldenRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run-a")
	rec, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	man := &Manifest{
		Binary:      "pressctl",
		Scenario:    "demo",
		Seed:        42,
		StartUnixNs: 1700000000_000000000,
		GoVersion:   "go1.24.0",
		VCSRevision: "abc123",
		VCSTime:     "2026-08-06T00:00:00Z",
		VCSModified: true,
	}
	man.SetParams([]Param{{Key: "speed", Value: "0.5"}, {Key: "budget", Value: "38"}})
	rec.RecordManifest(man)
	rec.RecordActuation(SourceAgent, 77, []int{0, 3, -1})
	rec.RecordCSI([]float64{1.5, -2.25, math.Inf(-1), 30})
	rec.RecordCSI([]float64{4, 5})
	rec.RecordKPI("cond_db_median", 12.75)
	rec.RecordAlert("deep_null", 1, 2, 27.5)
	rec.RecordDecision(3, 41.125, true, []int{2, 2, 2})
	rec.RecordRuntime(RuntimeSample{
		HeapLiveBytes: 4 << 20, HeapGoalBytes: 8 << 20, Goroutines: 9,
		GCCycles: 12, GCPauseP50: 25e-6, GCPauseP99: 180e-6, SchedLatP99: 90e-6,
	})
	rec.RecordPhaseCost(PhaseCost{
		Phase: "channel_sum", Ns: 1_500_000, Calls: 64, Bytes: 4096,
		Aux: []AuxCount{{Name: "subcarrier_evals", Value: 3328}, {Name: "path_terms", Value: 99840}},
	})
	rec.RecordPhaseCost(PhaseCost{Phase: "actuate", Ns: 250_000, Calls: 64})
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if got := rec.Records(); got != 10 {
		t.Errorf("Records() = %d, want 10", got)
	}

	run, err := ReadRun(dir)
	if err != nil {
		t.Fatal(err)
	}
	if run.Stats.Corrupt != 0 || run.Stats.TornTail || run.Stats.Frames != 10 {
		t.Errorf("decode stats = %+v", run.Stats)
	}

	m := run.Manifest
	if m == nil {
		t.Fatal("no manifest decoded")
	}
	// RecordManifest fills RunID, FormatVersion, Fingerprint.
	if m.RunID != "run-a" || m.FormatVersion != FormatVersion || m.Fingerprint == 0 {
		t.Errorf("manifest identity = %q/%d/%d", m.RunID, m.FormatVersion, m.Fingerprint)
	}
	if m.Binary != "pressctl" || m.Scenario != "demo" || m.Seed != 42 ||
		m.StartUnixNs != 1700000000_000000000 || m.GoVersion != "go1.24.0" ||
		m.VCSRevision != "abc123" || m.VCSTime != "2026-08-06T00:00:00Z" || !m.VCSModified {
		t.Errorf("manifest fields = %+v", m)
	}
	wantParams := []Param{{Key: "budget", Value: "38"}, {Key: "speed", Value: "0.5"}} // sorted
	if !reflect.DeepEqual(m.Params, wantParams) {
		t.Errorf("params = %v, want %v", m.Params, wantParams)
	}
	if m.Fingerprint != m.ComputeFingerprint() {
		t.Errorf("fingerprint %d does not recompute (%d)", m.Fingerprint, m.ComputeFingerprint())
	}

	if len(run.Actuations) != 1 {
		t.Fatalf("actuations = %+v", run.Actuations)
	}
	a := run.Actuations[0]
	if a.UnixNs == 0 || a.TraceID != 77 || a.Source != SourceAgent ||
		!reflect.DeepEqual(a.Config, []int32{0, 3, -1}) {
		t.Errorf("actuation = %+v", a)
	}

	if len(run.CSI) != 2 {
		t.Fatalf("csi = %+v", run.CSI)
	}
	if c := run.CSI[0]; c.Seq != 0 || !reflect.DeepEqual(c.SNRdB, []float64{1.5, -2.25, math.Inf(-1), 30}) {
		t.Errorf("csi[0] = %+v", c)
	}
	if c := run.CSI[1]; c.Seq != 1 || !reflect.DeepEqual(c.SNRdB, []float64{4, 5}) {
		t.Errorf("csi[1] = %+v", c)
	}

	if len(run.KPIs) != 1 || run.KPIs[0].Name != "cond_db_median" || run.KPIs[0].Value != 12.75 {
		t.Errorf("kpis = %+v", run.KPIs)
	}
	if len(run.Alerts) != 1 {
		t.Fatalf("alerts = %+v", run.Alerts)
	}
	if al := run.Alerts[0]; al.Rule != "deep_null" || al.From != 1 || al.To != 2 || al.Value != 27.5 {
		t.Errorf("alert = %+v", al)
	}
	if len(run.Decisions) != 1 {
		t.Fatalf("decisions = %+v", run.Decisions)
	}
	if d := run.Decisions[0]; d.Eval != 3 || d.Score != 41.125 || !d.Improved ||
		!reflect.DeepEqual(d.Config, []int32{2, 2, 2}) {
		t.Errorf("decision = %+v", d)
	}
	if len(run.Runtime) != 1 {
		t.Fatalf("runtime = %+v", run.Runtime)
	}
	if rt := run.Runtime[0]; rt.UnixNs == 0 || rt.HeapLiveBytes != 4<<20 ||
		rt.HeapGoalBytes != 8<<20 || rt.Goroutines != 9 || rt.GCCycles != 12 ||
		rt.GCPauseP50 != 25e-6 || rt.GCPauseP99 != 180e-6 || rt.SchedLatP99 != 90e-6 {
		t.Errorf("runtime sample = %+v", rt)
	}
	if len(run.PhaseCosts) != 2 {
		t.Fatalf("phase costs = %+v", run.PhaseCosts)
	}
	if p := run.PhaseCosts[0]; p.UnixNs == 0 || p.Phase != "channel_sum" ||
		p.Ns != 1_500_000 || p.Calls != 64 || p.Bytes != 4096 ||
		!reflect.DeepEqual(p.Aux, []AuxCount{{Name: "subcarrier_evals", Value: 3328}, {Name: "path_terms", Value: 99840}}) {
		t.Errorf("phase cost[0] = %+v", p)
	}
	if p := run.PhaseCosts[1]; p.Phase != "actuate" || p.Ns != 250_000 || p.Calls != 64 || len(p.Aux) != 0 {
		t.Errorf("phase cost[1] = %+v", p)
	}
}

// TestRecorderNilSafe exercises every producer method on a nil recorder.
func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.RecordManifest(&Manifest{})
	r.RecordActuation(SourceController, 0, []int{1})
	r.RecordCSI([]float64{1})
	r.RecordKPI("x", 1)
	r.RecordAlert("r", 0, 2, 1)
	r.RecordDecision(0, 1, false, nil)
	r.RecordRuntime(RuntimeSample{})
	if r.RunID() != "" || r.Dir() != "" || r.Err() != nil || r.Records() != 0 {
		t.Error("nil recorder accessors not zero-valued")
	}
	if err := r.Flush(); err != nil {
		t.Error(err)
	}
	if err := r.Close(); err != nil {
		t.Error(err)
	}
}

// TestRecorderRotation drives a tiny segment threshold and checks
// records span multiple files that decode as one run.
func TestRecorderRotation(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run-rot")
	rec, err := open(dir, 2<<10) // rotate every 2 KiB
	if err != nil {
		t.Fatal(err)
	}
	curve := make([]float64, 64)
	for i := range curve {
		curve[i] = float64(i)
	}
	const samples = 50
	for i := 0; i < samples; i++ {
		rec.RecordCSI(curve)
		if i%10 == 0 {
			if err := rec.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected rotation into ≥2 segments, got %v", segs)
	}
	run, err := ReadRun(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.CSI) != samples {
		t.Fatalf("decoded %d CSI samples across %d segments, want %d", len(run.CSI), len(segs), samples)
	}
	for i, c := range run.CSI {
		if c.Seq != uint64(i) {
			t.Fatalf("csi[%d].Seq = %d: order lost across rotation", i, c.Seq)
		}
	}
}

// TestRecorderTornTailRecovery simulates a crash by truncating the last
// segment at every byte offset inside its final record: every preceding
// record must still decode.
func TestRecorderTornTailRecovery(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run-torn")
	rec, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	for i := 0; i < n; i++ {
		rec.RecordCSI([]float64{float64(i), float64(i) + 0.5})
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segmentName(0))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// One CSI record frame: 8 (ts) + 8 (seq) + 4 (len) + 2*8 (curve) + overhead.
	recLen := 8 + 8 + 4 + 16 + frameOverhead
	last := len(data) - recLen
	for cut := last + 1; cut < len(data); cut++ {
		if err := os.WriteFile(seg, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		run, err := ReadRun(dir)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if len(run.CSI) != n-1 {
			t.Fatalf("cut at %d: %d records survive, want %d", cut, len(run.CSI), n-1)
		}
		for i, c := range run.CSI {
			if c.SNRdB[0] != float64(i) {
				t.Fatalf("cut at %d: record %d corrupted: %+v", cut, i, c)
			}
		}
	}
}

// TestRecorderGroupCommit checks Flush makes records durable before
// Close, i.e. a reader sees them while the recorder is still open.
func TestRecorderGroupCommit(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run-gc")
	rec, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	rec.RecordKPI("x", 1)
	rec.RecordKPI("y", 2)
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	run, err := ReadRun(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.KPIs) != 2 {
		t.Fatalf("reader sees %d KPIs after Flush, want 2", len(run.KPIs))
	}
}

func TestListRunsAndReadManifest(t *testing.T) {
	root := t.TempDir()
	mk := func(id string, start int64) {
		rec, err := Open(filepath.Join(root, id), 0)
		if err != nil {
			t.Fatal(err)
		}
		rec.RecordManifest(&Manifest{Binary: "pressim", Scenario: "fig4", Seed: 7, StartUnixNs: start})
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
	}
	mk("older", 100)
	mk("newer", 200)
	// A junk directory without segments must be skipped.
	if err := os.MkdirAll(filepath.Join(root, "junk"), 0o755); err != nil {
		t.Fatal(err)
	}
	runs, err := ListRuns(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 || runs[0].RunID != "newer" || runs[1].RunID != "older" {
		t.Fatalf("ListRuns = %+v", runs)
	}
	m, err := ReadManifest(filepath.Join(root, "older"))
	if err != nil {
		t.Fatal(err)
	}
	if m.RunID != "older" || m.Scenario != "fig4" {
		t.Errorf("ReadManifest = %+v", m)
	}
}
