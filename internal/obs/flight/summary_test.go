package flight

import (
	"math"
	"strings"
	"testing"
)

// sampleRun builds a synthetic decoded run with a known search
// trajectory and CSI stream.
func sampleRun(seed uint64, bump float64) *Run {
	run := &Run{
		Manifest: &Manifest{
			RunID: "r", Binary: "pressctl", Scenario: "demo", Seed: seed,
		},
	}
	run.Manifest.Fingerprint = run.Manifest.ComputeFingerprint()
	for i := 0; i < 10; i++ {
		curve := []float64{20 + float64(i) + bump, 5 + float64(i) + bump, 25 + bump}
		run.CSI = append(run.CSI, CSISample{Seq: uint64(i), SNRdB: curve})
		run.Decisions = append(run.Decisions, SearchDecision{
			Eval: uint64(i), Score: float64(i) + bump, Improved: true,
			Config: []int32{int32(i)},
		})
		run.Actuations = append(run.Actuations, Actuation{Source: SourceController, Config: []int32{int32(i)}})
	}
	run.KPIs = append(run.KPIs, KPISample{Name: KPICondDBMedian, Value: 9 + bump})
	run.Alerts = append(run.Alerts,
		AlertTransition{Rule: "deep_null", From: 1, To: alertStateFiring},
		AlertTransition{Rule: "deep_null", From: alertStateFiring, To: 3})
	return run
}

func TestSummarize(t *testing.T) {
	s := Summarize(sampleRun(7, 0))
	if s.Seed != 7 || s.Binary != "pressctl" {
		t.Errorf("identity = %+v", s)
	}
	if s.Measurements != 10 || s.Subcarriers != 3 {
		t.Errorf("measurements/subcarriers = %d/%d", s.Measurements, s.Subcarriers)
	}
	// Min of each curve is 5+i; the last one is 14.
	if s.MinSNRdB.N != 10 || s.MinSNRdB.Min != 5 || s.MinSNRdB.Max != 14 || s.FinalMinSNRdB != 14 {
		t.Errorf("min snr = %+v final %v", s.MinSNRdB, s.FinalMinSNRdB)
	}
	if s.SearchEvals != 10 || s.BestScore != 9 {
		t.Errorf("search = %d evals best %v", s.SearchEvals, s.BestScore)
	}
	// Monotone trajectory: regret of eval i is 9-i.
	if s.RegretDB.Max != 9 || s.RegretDB.Min != 0 {
		t.Errorf("regret = %+v", s.RegretDB)
	}
	if s.CondDB.N != 1 || s.CondDB.Mean != 9 {
		t.Errorf("cond = %+v", s.CondDB)
	}
	if s.Actuations != 10 || s.AlertsFired != 1 {
		t.Errorf("actuations/alerts = %d/%d", s.Actuations, s.AlertsFired)
	}
}

func TestSummarizeEmptyRun(t *testing.T) {
	s := Summarize(&Run{})
	if s.Measurements != 0 || s.SearchEvals != 0 || s.MinSNRdB.N != 0 {
		t.Errorf("empty run summary = %+v", s)
	}
}

func TestDiff(t *testing.T) {
	a := Summarize(sampleRun(7, 0))
	b := Summarize(sampleRun(7, 2))
	d := Diff(a, b)
	if !d.SameConfig {
		t.Error("same manifest config not detected")
	}
	find := func(name string) FieldDelta {
		for _, f := range d.Fields {
			if f.Name == name {
				return f
			}
		}
		t.Fatalf("field %q missing from diff: %+v", name, d.Fields)
		return FieldDelta{}
	}
	if f := find("final_min_snr_db"); f.Delta != 2 {
		t.Errorf("final_min_snr_db delta = %v, want +2", f.Delta)
	}
	if f := find("best_score"); f.A != 9 || f.B != 11 {
		t.Errorf("best_score = %+v", f)
	}
	if f := find("measurements"); f.Delta != 0 {
		t.Errorf("measurements delta = %v", f.Delta)
	}

	// Different seeds → different fingerprints.
	if Diff(a, Summarize(sampleRun(8, 0))).SameConfig {
		t.Error("differing seeds reported as same config")
	}

	var sb strings.Builder
	if err := d.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "same config fingerprint") || !strings.Contains(out, "best_score") {
		t.Errorf("text diff:\n%s", out)
	}
}

func TestSummarizePhasesLastSampleWins(t *testing.T) {
	run := &Run{PhaseCosts: []PhaseCost{
		{UnixNs: 1, Phase: "path_trace", Ns: 100, Calls: 1},
		{UnixNs: 2, Phase: "channel_sum", Ns: 500, Calls: 2,
			Aux: []AuxCount{{Name: "subcarrier_evals", Value: 52}}},
		{UnixNs: 3, Phase: "path_trace", Ns: 900, Calls: 4, Bytes: 64},
	}}
	s := Summarize(run)
	if len(s.Phases) != 2 {
		t.Fatalf("phases = %+v", s.Phases)
	}
	// Sorted by name; cumulative samples mean the latest wins.
	if p := s.Phases[0]; p.Phase != "channel_sum" || p.Ns != 500 || p.Calls != 2 ||
		len(p.Aux) != 1 || p.Aux[0].Value != 52 {
		t.Errorf("phases[0] = %+v", p)
	}
	if p := s.Phases[1]; p.Phase != "path_trace" || p.Ns != 900 || p.Calls != 4 || p.Bytes != 64 {
		t.Errorf("phases[1] = %+v", p)
	}
}

func TestDiffPhaseDeltas(t *testing.T) {
	ra := sampleRun(7, 0)
	ra.PhaseCosts = []PhaseCost{
		{UnixNs: 1, Phase: "channel_sum", Ns: 2_000_000, Calls: 10},
		{UnixNs: 1, Phase: "path_trace", Ns: 1_000_000, Calls: 5},
	}
	rb := sampleRun(7, 0)
	rb.PhaseCosts = []PhaseCost{
		{UnixNs: 1, Phase: "channel_sum", Ns: 3_000_000, Calls: 10},
		{UnixNs: 1, Phase: "estimate", Ns: 500_000, Calls: 10},
	}
	d := Diff(Summarize(ra), Summarize(rb))
	find := func(name string) FieldDelta {
		for _, f := range d.Fields {
			if f.Name == name {
				return f
			}
		}
		t.Fatalf("field %q missing from diff: %+v", name, d.Fields)
		return FieldDelta{}
	}
	if f := find("phase.channel_sum.ms"); f.A != 2 || f.B != 3 || f.Delta != 1 {
		t.Errorf("channel_sum ms = %+v", f)
	}
	// Union semantics: a phase on only one side still appears.
	if f := find("phase.path_trace.ms"); f.A != 1 || f.B != 0 {
		t.Errorf("path_trace ms = %+v", f)
	}
	if f := find("phase.estimate.calls"); f.A != 0 || f.B != 10 {
		t.Errorf("estimate calls = %+v", f)
	}
}

func TestVerifyClean(t *testing.T) {
	a, b := sampleRun(7, 0), sampleRun(7, 0)
	v := Verify(a, b, 1e-9)
	if !v.OK() || v.Compared != 10 || v.Mismatches != 0 || v.DecisionMismatch != 0 {
		t.Errorf("verify clean = %+v", v)
	}
	var sb strings.Builder
	if err := v.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "REPLAY OK") {
		t.Errorf("report: %s", sb.String())
	}
}

func TestVerifyCatchesDeviation(t *testing.T) {
	a, b := sampleRun(7, 0), sampleRun(7, 0)
	b.CSI[4].SNRdB[1] += 1e-6
	v := Verify(a, b, 1e-9)
	if v.OK() || v.Mismatches != 1 {
		t.Fatalf("verify = %+v", v)
	}
	if v.MaxDeviationDB < 0.9e-6 || v.MaxDeviationDB > 1.1e-6 {
		t.Errorf("max deviation = %v", v.MaxDeviationDB)
	}
	if !strings.Contains(v.FirstMismatch, "sample 4") {
		t.Errorf("first mismatch = %q", v.FirstMismatch)
	}
	// The same deviation within tolerance passes.
	if v := Verify(a, b, 1e-3); !v.OK() {
		t.Errorf("tolerant verify = %+v", v)
	}
}

func TestVerifyCatchesStructuralDrift(t *testing.T) {
	a, b := sampleRun(7, 0), sampleRun(7, 0)
	b.CSI = b.CSI[:9] // lost a sample
	if v := Verify(a, b, 1e-9); v.OK() || !strings.Contains(v.FirstMismatch, "stream length") {
		t.Errorf("short stream verify = %+v", v)
	}

	a, b = sampleRun(7, 0), sampleRun(7, 0)
	b.Decisions[3].Config = []int32{99}
	if v := Verify(a, b, 1e-9); v.OK() || v.DecisionMismatch != 1 {
		t.Errorf("decision drift verify = %+v", v)
	}

	a, b = sampleRun(7, 0), sampleRun(7, 0)
	b.CSI[0].SNRdB[0] = math.NaN()
	if v := Verify(a, b, 1e-9); v.OK() {
		t.Errorf("NaN curve accepted: %+v", v)
	}
}
