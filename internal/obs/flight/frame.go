// Package flight is the durable flight recorder behind every PRESS
// binary: an append-only, crash-safe run log of everything the control
// loop did — the run manifest (seeds, parameters, build provenance),
// element actuations, CSI/KPI samples, alert transitions, and search
// decisions — plus the decode/summary/diff machinery that turns a log
// back into an auditable, replayable, comparable run.
//
// Where internal/obs and internal/obs/health are live telemetry (they
// die with the process), flight persists: a run recorded today can be
// replayed tomorrow (`pressctl replay`) or diffed against last week
// (`pressctl rundiff`). The wire format is a sequence of CRC32C-framed,
// length-prefixed binary records in size-rotated segment files; the
// decoder tolerates torn tails (a truncated final record after a crash)
// and resynchronizes past corrupt frames instead of aborting.
package flight

import (
	"encoding/binary"
	"hash/crc32"
)

// Frame layout (little-endian):
//
//	offset size
//	0      2    magic 0xF1 0x7E
//	2      1    record kind
//	3      4    payload length
//	7      n    payload
//	7+n    4    CRC32C (Castagnoli) over kind+length+payload
//
// The magic prefix exists purely so the decoder can resynchronize after
// a corrupt frame by scanning forward; the CRC is what actually
// validates a frame.
const (
	magic0 = 0xF1
	magic1 = 0x7E

	frameHeaderLen  = 7  // magic + kind + length
	frameOverhead   = 11 // header + trailing CRC
	maxFramePayload = 1 << 24
)

// castagnoli is the CRC32C table (the same polynomial iSCSI and modern
// storage formats use; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends one framed record to dst and returns the extended
// slice. It allocates only when dst must grow.
func appendFrame(dst []byte, kind Kind, payload []byte) []byte {
	dst = append(dst, magic0, magic1, byte(kind))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	crc := crc32.Update(0, castagnoli, dst[len(dst)-len(payload)-5:])
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// DecodeStats reports what a decode pass encountered. Corruption is
// counted, never fatal: a flight log is most valuable exactly when the
// process that wrote it died badly.
type DecodeStats struct {
	// Frames is the number of valid frames decoded (including unknown
	// kinds, which are skipped but counted).
	Frames int `json:"frames"`
	// Unknown counts valid frames whose kind this decoder does not know
	// (written by a newer format revision).
	Unknown int `json:"unknown,omitempty"`
	// Corrupt counts frames abandoned on a CRC mismatch or an insane
	// length field.
	Corrupt int `json:"corrupt,omitempty"`
	// Resyncs counts forward scans for the next frame magic after a
	// corrupt frame or stray bytes.
	Resyncs int `json:"resyncs,omitempty"`
	// BytesSkipped totals the bytes discarded while resynchronizing.
	BytesSkipped int64 `json:"bytes_skipped,omitempty"`
	// TornTail records that the data ended mid-frame — the expected
	// signature of a crash between group commits.
	TornTail bool `json:"torn_tail,omitempty"`
}

func (s *DecodeStats) add(o DecodeStats) {
	s.Frames += o.Frames
	s.Unknown += o.Unknown
	s.Corrupt += o.Corrupt
	s.Resyncs += o.Resyncs
	s.BytesSkipped += o.BytesSkipped
	s.TornTail = s.TornTail || o.TornTail
}

// decodeFrames walks data emitting every valid frame's kind and payload.
// It never fails on corruption: CRC mismatches and garbage bytes are
// skipped with a resync scan for the next magic, and a truncated final
// frame is reported as a torn tail. emit returning an error aborts the
// walk (that error is the caller's, not the data's).
func decodeFrames(data []byte, emit func(kind Kind, payload []byte) error) (DecodeStats, error) {
	var stats DecodeStats
	pos := 0
	resync := func(from int) int {
		stats.Resyncs++
		for i := from; i+1 < len(data); i++ {
			if data[i] == magic0 && data[i+1] == magic1 {
				stats.BytesSkipped += int64(i - pos)
				return i
			}
		}
		stats.BytesSkipped += int64(len(data) - pos)
		return len(data)
	}
	for pos < len(data) {
		if data[pos] != magic0 || pos+1 >= len(data) || data[pos+1] != magic1 {
			pos = resync(pos + 1)
			continue
		}
		if pos+frameHeaderLen > len(data) {
			// A magic with no room even for a header at the very end of
			// the data: a torn header.
			stats.TornTail = true
			stats.BytesSkipped += int64(len(data) - pos)
			return stats, nil
		}
		kind := Kind(data[pos+2])
		n := int(binary.LittleEndian.Uint32(data[pos+3 : pos+7]))
		if n > maxFramePayload {
			stats.Corrupt++
			pos = resync(pos + 2)
			continue
		}
		end := pos + frameOverhead + n
		if end > len(data) {
			// Plausible header but the payload runs past the end: either
			// the torn tail of a crashed writer or a corrupted length
			// field. Scan ahead to tell them apart — if another frame
			// magic follows, the length was corrupt; if the data just
			// ends, this was the tail.
			next := resync(pos + 2)
			if next >= len(data) {
				stats.TornTail = true
				return stats, nil
			}
			stats.Corrupt++
			pos = next
			continue
		}
		want := binary.LittleEndian.Uint32(data[end-4 : end])
		if crc32.Checksum(data[pos+2:end-4], castagnoli) != want {
			stats.Corrupt++
			pos = resync(pos + 2)
			continue
		}
		stats.Frames++
		if err := emit(kind, data[pos+frameHeaderLen:end-4]); err != nil {
			return stats, err
		}
		pos = end
	}
	return stats, nil
}
