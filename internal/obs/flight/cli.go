package flight

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"time"

	"press/internal/obs"
	"press/internal/obs/health"
)

// NewRunID returns a sortable, filesystem-safe run identifier:
// UTC timestamp plus a random suffix ("20260806T142530-9f3a2c").
func NewRunID() string {
	var b [3]byte
	_, _ = rand.Read(b[:])
	return time.Now().UTC().Format("20060102T150405") + "-" + hex.EncodeToString(b[:])
}

// NewManifest starts a manifest for the given producer, stamped with
// the current time and the binary's build provenance. The caller fills
// Params and hands it to Recorder.RecordManifest (which assigns RunID
// and the fingerprint).
func NewManifest(binary, scenario string, seed uint64) *Manifest {
	b := obs.ReadBuild()
	return &Manifest{
		FormatVersion: FormatVersion,
		Binary:        binary,
		Scenario:      scenario,
		Seed:          seed,
		StartUnixNs:   time.Now().UnixNano(),
		GoVersion:     b.GoVersion,
		VCSRevision:   b.Revision,
		VCSTime:       b.Time,
		VCSModified:   b.Modified,
	}
}

// CLI extends health.CLI with the flight-recorder layer: -flight-dir
// and -flight-segment-mb flags, a Recorder writing one run directory
// per process, alert persistence, and the /runs HTTP routes on the live
// telemetry server. Drop-in replacement for health.CLI:
//
//	var tele flight.CLI
//	tele.Register(fs)
//	// after fs.Parse:
//	if err := tele.Start(os.Stderr); err != nil { ... }
//	defer tele.Finish(os.Stdout)
//	... write a manifest, pass tele.Flight() to producers ...
//
// With -flight-dir unset, Flight() returns nil and recording stays at
// the zero-cost disabled default.
type CLI struct {
	health.CLI

	// FlightDir is the root directory for run logs; each run gets its
	// own subdirectory named by run ID. Empty disables recording.
	FlightDir string
	// FlightSegmentMB is the segment-file rotation threshold.
	FlightSegmentMB int

	rec *Recorder
}

// Register installs the health telemetry flags plus the flight flags.
func (c *CLI) Register(fs *flag.FlagSet) {
	c.CLI.Register(fs)
	fs.StringVar(&c.FlightDir, "flight-dir", "",
		"record a durable flight log (run manifest, actuations, CSI/KPI samples, alerts, search decisions) under this directory")
	fs.IntVar(&c.FlightSegmentMB, "flight-segment-mb", DefaultSegmentMB,
		"flight-log segment rotation threshold in MiB")
}

// Start opens the run log (when -flight-dir is set), hooks alert
// persistence into the health layer, brings up the obs/health stack,
// and registers the /runs routes on the live server.
func (c *CLI) Start(logw io.Writer) error {
	if c.FlightDir != "" {
		if c.FlightSegmentMB < 0 {
			return fmt.Errorf("flight: negative -flight-segment-mb %d", c.FlightSegmentMB)
		}
		rec, err := Open(filepath.Join(c.FlightDir, NewRunID()), c.FlightSegmentMB)
		if err != nil {
			return err
		}
		c.rec = rec
		c.EventSink = func(event string, v any) {
			if event != "alert" {
				return
			}
			if ev, ok := v.(health.Event); ok {
				rec.RecordAlert(ev.Rule, uint8(ev.From), uint8(ev.To), ev.Value)
			}
		}
	}
	if err := c.CLI.Start(logw); err != nil {
		if c.rec != nil {
			_ = c.rec.Close()
			c.rec = nil
		}
		return err
	}
	if srv := c.Server(); srv != nil && c.FlightDir != "" {
		RegisterRoutes(srv, c.FlightDir)
	}
	if log := c.Logger(); log.Enabled(obs.LevelInfo) && c.rec != nil {
		log.Info("flight recorder started", "dir", c.rec.Dir())
	}
	return nil
}

// Flight returns the run-log recorder, or nil when -flight-dir was not
// given — producers pass it down unconditionally.
func (c *CLI) Flight() *Recorder { return c.rec }

// RunDir returns the current run's directory, or "".
func (c *CLI) RunDir() string { return c.rec.Dir() }

// Finish closes the run log, then tears down the health/obs layers.
func (c *CLI) Finish(stdout io.Writer) error {
	var recErr error
	if c.rec != nil {
		recErr = c.rec.Close()
		c.rec = nil
	}
	if err := c.CLI.Finish(stdout); err != nil {
		return err
	}
	return recErr
}

// RegisterRoutes adds the recorded-run endpoints to a telemetry server:
//
//	GET /runs            manifests of every run under root (newest first)
//	GET /runs/{id}.json  decoded summary of one run
func RegisterRoutes(srv *obs.Server, root string) {
	srv.HandleFunc("/runs", func(w http.ResponseWriter, r *http.Request) {
		obs.ServeJSON(w, r, func(out io.Writer) error {
			runs, err := ListRuns(root)
			if err != nil {
				runs = nil // empty/missing dir serves an empty list
			}
			if runs == nil {
				runs = []*Manifest{}
			}
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			return enc.Encode(runs)
		})
	})
	srv.HandleFunc("/runs/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/runs/")
		id = strings.TrimSuffix(id, ".json")
		if !validRunID(id) {
			http.Error(w, "bad run id", http.StatusBadRequest)
			return
		}
		run, err := ReadRun(filepath.Join(root, id))
		if err != nil {
			http.Error(w, "run not found", http.StatusNotFound)
			return
		}
		obs.ServeJSON(w, r, func(out io.Writer) error {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			return enc.Encode(Summarize(run))
		})
	})
}

// validRunID accepts exactly the characters NewRunID emits (plus
// underscore for hand-named runs), keeping path traversal out of the
// /runs/{id} handler.
func validRunID(id string) bool {
	if id == "" || len(id) > 128 {
		return false
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return false
		}
	}
	return true
}
