package flight

import (
	"bytes"
	"testing"
)

// collect decodes data into (kind, payload) pairs plus stats.
func collect(t *testing.T, data []byte) ([]Kind, [][]byte, DecodeStats) {
	t.Helper()
	var kinds []Kind
	var payloads [][]byte
	stats, err := decodeFrames(data, func(kind Kind, payload []byte) error {
		kinds = append(kinds, kind)
		payloads = append(payloads, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatalf("decodeFrames: %v", err)
	}
	return kinds, payloads, stats
}

func TestFrameRoundTrip(t *testing.T) {
	var data []byte
	payloads := [][]byte{
		{},
		{0x01},
		{0xF1, 0x7E, 0xF1, 0x7E}, // frame magic inside a payload is fine
		bytes.Repeat([]byte{0xAB}, 1000),
	}
	for i, p := range payloads {
		data = appendFrame(data, Kind(i+1), p)
	}
	kinds, got, stats := collect(t, data)
	if stats.Frames != len(payloads) || stats.Corrupt != 0 || stats.TornTail {
		t.Fatalf("stats = %+v", stats)
	}
	for i, p := range payloads {
		if kinds[i] != Kind(i+1) || !bytes.Equal(got[i], p) {
			t.Errorf("frame %d: kind %v payload %x, want kind %v payload %x",
				i, kinds[i], got[i], Kind(i+1), p)
		}
	}
}

// TestFrameTornTailEveryOffset truncates the log at every byte offset of
// the final frame and checks the crash-recovery invariant: every
// preceding record still decodes, and no truncation point ever yields a
// corrupt or phantom frame.
func TestFrameTornTailEveryOffset(t *testing.T) {
	var data []byte
	n := 5
	for i := 0; i < n; i++ {
		data = appendFrame(data, KindCSI, bytes.Repeat([]byte{byte(i)}, 32+i))
	}
	last := len(data) - (32 + n - 1) - frameOverhead // start of the final frame
	for cut := last; cut < len(data); cut++ {
		kinds, _, stats := collect(t, data[:cut])
		if len(kinds) != n-1 {
			t.Fatalf("cut at %d: decoded %d frames, want %d", cut, len(kinds), n-1)
		}
		if stats.Corrupt != 0 {
			t.Fatalf("cut at %d: phantom corrupt frame: %+v", cut, stats)
		}
		// Any cut that leaves at least a full magic must be flagged as a
		// torn tail; a cut leaving 0 or 1 bytes is indistinguishable from
		// stray garbage and is just skipped.
		if cut >= last+2 && !stats.TornTail {
			t.Errorf("cut at %d (+%d into frame): torn tail not flagged: %+v", cut, cut-last, stats)
		}
	}
	// Truncating exactly at the frame boundary is a clean log.
	_, _, stats := collect(t, data[:last])
	if stats.TornTail || stats.Resyncs != 0 || stats.Frames != n-1 {
		t.Errorf("clean truncation: %+v", stats)
	}
}

// TestFrameCorruptMiddleResyncs flips bytes in a middle frame and checks
// the decoder skips it, counts it, and recovers every later frame.
func TestFrameCorruptMiddleResyncs(t *testing.T) {
	mk := func() []byte {
		var data []byte
		for i := 0; i < 5; i++ {
			data = appendFrame(data, KindKPI, bytes.Repeat([]byte{0x20 + byte(i)}, 24))
		}
		return data
	}
	frameLen := 24 + frameOverhead
	for off := 0; off < frameLen; off++ {
		data := mk()
		data[2*frameLen+off] ^= 0xFF // corrupt frame 2 (of 0..4)
		kinds, _, stats := collect(t, data)
		// Depending on the flipped byte the decoder loses exactly the
		// corrupt frame (CRC mismatch or broken magic); all four intact
		// frames must survive.
		if len(kinds) != 4 {
			t.Fatalf("flip at +%d: decoded %d frames, want 4 (stats %+v)", off, len(kinds), stats)
		}
		if stats.Resyncs == 0 {
			t.Errorf("flip at +%d: no resync counted: %+v", off, stats)
		}
		if stats.BytesSkipped == 0 {
			t.Errorf("flip at +%d: no skipped bytes counted: %+v", off, stats)
		}
	}
}

func TestFrameGarbagePrefixAndBetween(t *testing.T) {
	var data []byte
	data = append(data, []byte("not a frame at all")...)
	data = appendFrame(data, KindAlert, []byte{1, 2, 3})
	data = append(data, 0xF1, 0x00, 0xDE, 0xAD) // stray near-magic garbage
	data = appendFrame(data, KindAlert, []byte{4, 5, 6})
	kinds, payloads, stats := collect(t, data)
	if len(kinds) != 2 || !bytes.Equal(payloads[0], []byte{1, 2, 3}) || !bytes.Equal(payloads[1], []byte{4, 5, 6}) {
		t.Fatalf("decoded %d frames (%x), want the 2 real ones", len(kinds), payloads)
	}
	if stats.Resyncs == 0 || stats.BytesSkipped == 0 {
		t.Errorf("garbage not accounted: %+v", stats)
	}
}

func TestFrameInsaneLength(t *testing.T) {
	// A frame header claiming a >16MiB payload is corrupt, not a torn
	// tail — the decoder must not wait for data that will never come.
	data := []byte{magic0, magic1, byte(KindCSI), 0xFF, 0xFF, 0xFF, 0xFF}
	data = append(data, bytes.Repeat([]byte{0}, 64)...)
	data = appendFrame(data, KindCSI, []byte{9})
	kinds, _, stats := collect(t, data)
	if len(kinds) != 1 || stats.Corrupt != 1 {
		t.Fatalf("kinds %v stats %+v, want 1 good frame and 1 corrupt", kinds, stats)
	}
}
