package prof

import (
	"flag"
	"fmt"
	"io"
	"time"

	"press/internal/obs"
	"press/internal/obs/perf"
)

// flushInterval is how often the background flusher writes cumulative
// phase-cost snapshots to the flight log. Samples are cumulative, so a
// slow cadence costs only recency, never totals (Finish writes a final
// snapshot regardless).
const flushInterval = 5 * time.Second

// CLI extends perf.CLI with the cost-attribution layer: phase-scoped
// work accounting (-phase-accounting, auto-enabled whenever a flight
// recorder is on so every recorded run carries its cost breakdown), the
// continuous sampling profiler (-profile-interval), and the /profz
// endpoint on the live telemetry server. Drop-in replacement for
// perf.CLI:
//
//	var tele prof.CLI
//	tele.Register(fs)
//	// after fs.Parse:
//	if err := tele.Start(os.Stderr); err != nil { ... }
//	defer tele.Finish(os.Stdout)
//
// The collector is handed to the physics/control layers by the caller
// (via tele.Prof()); a nil collector keeps every hook a single pointer
// check.
type CLI struct {
	perf.CLI

	// PhaseAccounting enables the work-accounting collector explicitly
	// (it is implied by -flight-dir or -telemetry-addr, which give the
	// totals somewhere to go).
	PhaseAccounting bool
	// ProfileInterval is the continuous profiler's capture period. Zero
	// disables it.
	ProfileInterval time.Duration
	// ProfileWindow is each capture's CPU-profile duration.
	ProfileWindow time.Duration
	// ProfileTopN is the /profz hotspot table depth.
	ProfileTopN int

	collector *Collector
	profiler  *Profiler
	flushLife *obs.Lifecycle
}

// Register installs the perf telemetry flags plus the prof flags.
func (c *CLI) Register(fs *flag.FlagSet) {
	c.CLI.Register(fs)
	fs.BoolVar(&c.PhaseAccounting, "phase-accounting", false,
		"accumulate per-phase work counters (ns, calls, domain units); implied by -flight-dir or -telemetry-addr")
	fs.DurationVar(&c.ProfileInterval, "profile-interval", 0,
		"capture a windowed CPU profile and delta heap profile at this period into the /profz hotspot table (0 = off)")
	fs.DurationVar(&c.ProfileWindow, "profile-window", DefaultProfileWindow,
		"duration of each continuous-profiler CPU capture window")
	fs.IntVar(&c.ProfileTopN, "profile-top", DefaultTopN,
		"functions kept in the /profz hotspot table")
}

// Start brings up the perf/flight/health/obs stack, then the collector,
// the continuous profiler, the /profz route, and the phase-cost flusher.
func (c *CLI) Start(logw io.Writer) error {
	if c.ProfileInterval < 0 {
		return fmt.Errorf("prof: negative -profile-interval %v", c.ProfileInterval)
	}
	if c.ProfileWindow < 0 {
		return fmt.Errorf("prof: negative -profile-window %v", c.ProfileWindow)
	}
	if err := c.CLI.Start(logw); err != nil {
		return err
	}
	if c.PhaseAccounting || c.Flight() != nil || c.Server() != nil {
		c.collector = NewCollector()
	}
	if c.ProfileInterval > 0 {
		c.profiler = NewProfiler(c.ProfileInterval, c.ProfileWindow, c.ProfileTopN)
		c.profiler.Start()
		if log := c.Logger(); log.Enabled(obs.LevelInfo) {
			log.Info("continuous profiler started",
				"interval", c.ProfileInterval, "window", c.ProfileWindow)
		}
	}
	if srv := c.Server(); srv != nil {
		RegisterRoutes(srv, c.collector, c.profiler)
	}
	if c.collector != nil && c.Flight() != nil {
		c.flushLife = &obs.Lifecycle{}
		c.flushLife.Start(nil, c.flushLoop)
	}
	return nil
}

// flushLoop periodically writes cumulative phase-cost snapshots so a
// crashed run still carries cost data up to the last flush.
func (c *CLI) flushLoop(stop <-chan struct{}) {
	t := time.NewTicker(flushInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			c.flushPhaseCosts()
		}
	}
}

func (c *CLI) flushPhaseCosts() {
	rec := c.Flight()
	if rec == nil {
		return
	}
	for _, pc := range c.collector.Snapshot() {
		rec.RecordPhaseCost(pc)
	}
}

// Prof returns the work-accounting collector, nil when accounting is
// off — callers hand it to the physics/control layers unconditionally.
func (c *CLI) Prof() *Collector { return c.collector }

// Profiler returns the continuous profiler, nil when -profile-interval
// was not given.
func (c *CLI) Profiler() *Profiler { return c.profiler }

// Finish writes the final phase-cost snapshot, stops the profiler, and
// tears down the perf/flight/health/obs layers.
func (c *CLI) Finish(stdout io.Writer) error {
	if c.flushLife != nil {
		c.flushLife.Stop()
		c.flushLife = nil
	}
	if c.collector != nil {
		c.flushPhaseCosts() // final cumulative totals before the recorder closes
	}
	if c.profiler != nil {
		c.profiler.Stop()
		c.profiler = nil
	}
	err := c.CLI.Finish(stdout)
	c.collector = nil
	return err
}
