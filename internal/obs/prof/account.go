// Package prof attributes hot-path cost. It complements the outcome
// metrics of obs/health/perf with two attribution mechanisms: a
// phase-scoped work-accounting collector (instrumented counters — exact,
// near-zero overhead, domain-aware denominators like subcarrier
// evaluations per nanosecond) and a continuous sampling profiler
// (windowed CPU + delta heap pprof captures aggregated into a rolling
// function-level hotspot table). DESIGN.md discusses why both are kept.
//
// Like the rest of the obs stack, everything is nil-disabled: a nil
// *Collector makes Start/Add no-ops costing one pointer check, so the
// physics packages hold one unconditionally.
package prof

import (
	"runtime/metrics"
	"sync/atomic"
	"time"

	"press/internal/obs/flight"
)

// Phase identifies one named execution phase of the simulation pipeline.
// The set is closed on purpose: a fixed array of counters is what keeps
// Span.End at a handful of atomic adds with no map lookups.
type Phase uint8

// The phases. Sweep and Search are roots — top-level units of work whose
// wall clock the leaf phases (trace, channel-sum, frame-synth, estimate,
// solve, actuate) decompose. Roots additionally account heap bytes
// allocated while open; leaves skip that because a runtime/metrics read
// (which flushes per-P allocation caches) would dwarf a ~50µs leaf.
const (
	// PhaseSweep covers one full configuration sweep (radio.Link.Sweep).
	PhaseSweep Phase = iota
	// PhaseSearch covers one searcher objective evaluation
	// (control.Instrumented eval loop).
	PhaseSearch
	// PhaseTrace covers image-method path enumeration
	// (propagation.TracePaths and per-config element-path enumeration).
	PhaseTrace
	// PhaseChannelSum covers per-subcarrier response summation
	// (propagation.Response over a frequency grid).
	PhaseChannelSum
	// PhaseFrameSynth covers sounding-frame synthesis: per-symbol noise
	// generation in radio.measureResponse.
	PhaseFrameSynth
	// PhaseEstimate covers receiver-side CSI estimation (ofdm.Estimate).
	PhaseEstimate
	// PhaseSolve covers MIMO linear algebra: channel-matrix assembly and
	// singular-value computation (mimo + cmat).
	PhaseSolve
	// PhaseActuate covers control-plane configuration pushes
	// (controlplane.Controller.SetConfig round trips).
	PhaseActuate
	// NumPhases sizes per-phase arrays; not a phase.
	NumPhases
)

// maxAux is the per-phase auxiliary counter slot count.
const maxAux = 3

// Auxiliary counter slots, per phase. Slot constants share a namespace
// with their phase: passing AuxPathsKept to a PhaseChannelSum span is a
// caller bug the API keeps cheap rather than impossible.
const (
	// AuxConfigs (PhaseSweep): configurations measured.
	AuxConfigs = 0
	// AuxConfigsScored (PhaseSearch): configurations scored by the searcher.
	AuxConfigsScored = 0
	// AuxImages (PhaseTrace): image-source candidates enumerated.
	AuxImages = 0
	// AuxPathsKept (PhaseTrace): paths that survived culling.
	AuxPathsKept = 1
	// AuxPathsCulled (PhaseTrace): candidates rejected (blocked, too weak,
	// or geometrically invalid).
	AuxPathsCulled = 2
	// AuxSubcarrierEvals (PhaseChannelSum): subcarrier response evaluations.
	AuxSubcarrierEvals = 0
	// AuxPathTerms (PhaseChannelSum): path·subcarrier product terms summed.
	AuxPathTerms = 1
	// AuxSymbols (PhaseFrameSynth): training symbols synthesized.
	AuxSymbols = 0
	// AuxSubcarriers (PhaseEstimate): subcarriers estimated.
	AuxSubcarriers = 0
	// AuxSolves (PhaseSolve): matrix problems solved.
	AuxSolves = 0
	// AuxFlops (PhaseSolve): estimated complex floating-point operations.
	AuxFlops = 1
	// AuxActuations (PhaseActuate): configurations pushed to the array.
	AuxActuations = 0
)

var phaseNames = [NumPhases]string{
	PhaseSweep:      "sweep",
	PhaseSearch:     "search_eval",
	PhaseTrace:      "path_trace",
	PhaseChannelSum: "channel_sum",
	PhaseFrameSynth: "frame_synth",
	PhaseEstimate:   "estimate",
	PhaseSolve:      "solve",
	PhaseActuate:    "actuate",
}

var phaseRoot = [NumPhases]bool{
	PhaseSweep:  true,
	PhaseSearch: true,
}

var auxNames = [NumPhases][maxAux]string{
	PhaseSweep:      {"configs"},
	PhaseSearch:     {"configs_scored"},
	PhaseTrace:      {"images_enumerated", "paths_kept", "paths_culled"},
	PhaseChannelSum: {"subcarrier_evals", "path_terms"},
	PhaseFrameSynth: {"symbols"},
	PhaseEstimate:   {"subcarriers"},
	PhaseSolve:      {"solves", "flops"},
	PhaseActuate:    {"actuations"},
}

// Name returns the phase's wire name (the flight.PhaseCost.Phase value).
func (p Phase) Name() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// Root reports whether the phase is a top-level unit of work whose wall
// clock the leaf phases decompose.
func (p Phase) Root() bool { return p < NumPhases && phaseRoot[p] }

// PhaseByName maps a wire name back to its Phase; ok is false for
// unknown names (e.g. a run log written by a newer binary).
func PhaseByName(name string) (Phase, bool) {
	for p := Phase(0); p < NumPhases; p++ {
		if phaseNames[p] == name {
			return p, true
		}
	}
	return NumPhases, false
}

// RootPhaseName reports whether a wire-format phase name names a root
// phase. Unknown names are treated as leaves.
func RootPhaseName(name string) bool {
	p, ok := PhaseByName(name)
	return ok && p.Root()
}

// phaseCounters is one phase's accumulator set. All fields are cumulative
// since the collector was created.
type phaseCounters struct {
	ns    atomic.Int64
	calls atomic.Int64
	bytes atomic.Int64
	aux   [maxAux]atomic.Int64
	// pad spaces adjacent phases onto different cache lines so concurrent
	// sweeps don't false-share.
	_ [64 - (3+maxAux)*8%64]byte
}

// metricAllocBytes is the cumulative heap-allocation counter root-phase
// spans difference. Process-wide: concurrent allocators inflate it, a
// caveat DESIGN.md records.
const metricAllocBytes = "/gc/heap/allocs:bytes"

// Collector accumulates per-phase work counters. Create one with
// NewCollector; share it freely — all methods are safe for concurrent
// use, and all methods on a nil *Collector are no-ops.
type Collector struct {
	phases [NumPhases]phaseCounters

	// memBuf is the preallocated runtime/metrics read buffer, guarded by
	// memBusy so concurrent root spans never share it; the loser simply
	// skips byte accounting for that span.
	memBusy  atomic.Bool
	memBuf   []metrics.Sample
	memOK    bool
	startMon time.Time
}

// NewCollector returns an empty collector and probes once whether the
// runtime exposes the allocation-bytes metric.
func NewCollector() *Collector {
	c := &Collector{
		memBuf:   make([]metrics.Sample, 1),
		startMon: time.Now(),
	}
	c.memBuf[0].Name = metricAllocBytes
	metrics.Read(c.memBuf)
	c.memOK = c.memBuf[0].Value.Kind() == metrics.KindUint64
	return c
}

// readAllocBytes returns the cumulative heap-allocation byte counter, or
// ok=false when the metric is unavailable or the buffer is busy.
func (c *Collector) readAllocBytes() (uint64, bool) {
	if !c.memOK || !c.memBusy.CompareAndSwap(false, true) {
		return 0, false
	}
	metrics.Read(c.memBuf)
	v := c.memBuf[0].Value.Uint64()
	c.memBusy.Store(false)
	return v, true
}

// Span is one open phase measurement. It is a value — Start and End on
// the hot path allocate nothing.
type Span struct {
	c          *Collector
	start      time.Time
	startBytes uint64
	phase      Phase
	bytesOK    bool
}

// Start opens a span on phase p. On a nil collector it returns an inert
// span after a single pointer check.
func (c *Collector) Start(p Phase) Span {
	if c == nil {
		return Span{}
	}
	s := Span{c: c, phase: p, start: time.Now()}
	if phaseRoot[p] {
		s.startBytes, s.bytesOK = c.readAllocBytes()
	}
	return s
}

// End closes the span, folding its duration (and, for root phases, its
// allocation delta) into the collector. Safe on an inert span.
func (s Span) End() {
	if s.c == nil {
		return
	}
	pc := &s.c.phases[s.phase]
	pc.ns.Add(int64(time.Since(s.start)))
	pc.calls.Add(1)
	if s.bytesOK {
		if b, ok := s.c.readAllocBytes(); ok && b >= s.startBytes {
			pc.bytes.Add(int64(b - s.startBytes))
		}
	}
}

// Add folds n into phase p's auxiliary counter slot. Nil-safe; slot must
// be < maxAux.
func (c *Collector) Add(p Phase, slot int, n int64) {
	if c == nil || n == 0 {
		return
	}
	c.phases[p].aux[slot].Add(n)
}

// Snapshot returns the cumulative totals of every phase that has
// recorded work, in phase order, as wire-format records (UnixNs left
// zero for the recorder to stamp). Nil-safe.
func (c *Collector) Snapshot() []flight.PhaseCost {
	if c == nil {
		return nil
	}
	out := make([]flight.PhaseCost, 0, NumPhases)
	for p := Phase(0); p < NumPhases; p++ {
		pc := &c.phases[p]
		ns, calls := pc.ns.Load(), pc.calls.Load()
		if ns == 0 && calls == 0 {
			continue
		}
		cost := flight.PhaseCost{Phase: p.Name(), Ns: ns, Calls: calls, Bytes: pc.bytes.Load()}
		for slot, name := range auxNames[p] {
			if name == "" {
				continue
			}
			if v := pc.aux[slot].Load(); v != 0 {
				cost.Aux = append(cost.Aux, flight.AuxCount{Name: name, Value: v})
			}
		}
		out = append(out, cost)
	}
	return out
}

// Uptime returns how long the collector has been running — the wall
// clock phase shares are computed against when no root phase ran.
func (c *Collector) Uptime() time.Duration {
	if c == nil {
		return 0
	}
	return time.Since(c.startMon)
}
