package prof

import (
	"fmt"
	"io"
	"strings"

	"press/internal/obs/flight"
)

// CostReport is the phase-cost breakdown of one recorded run — what
// `pressctl hotspots RUNDIR` renders. Shares are computed against the
// wall clock spent in root phases (sweep, search_eval), which is the
// denominator the ROADMAP's 10× incremental-evaluation target is
// measured against.
type CostReport struct {
	RunID    string `json:"run_id,omitempty"`
	Scenario string `json:"scenario,omitempty"`
	Binary   string `json:"binary,omitempty"`

	// WallNs is the total time inside root phases; AttributedNs the total
	// inside leaf phases; Coverage their ratio — how much of the run's
	// work the instrumentation explains.
	WallNs       int64   `json:"wall_ns"`
	AttributedNs int64   `json:"attributed_ns"`
	Coverage     float64 `json:"coverage"`

	Phases []PhaseCostLine `json:"phases"`

	// Configs is the root work-unit count (configurations measured or
	// scored); CostPerConfigNs divides root wall clock by it.
	Configs         int64   `json:"configs,omitempty"`
	CostPerConfigNs float64 `json:"cost_per_config_ns,omitempty"`
	// SubcarrierEvals and CostPerSubcarrierNs break out the
	// channel-summation inner loop.
	SubcarrierEvals     int64   `json:"subcarrier_evals,omitempty"`
	CostPerSubcarrierNs float64 `json:"cost_per_subcarrier_ns,omitempty"`
}

// PhaseCostLine is one phase's row in the report, leaf shares computed
// against root wall clock.
type PhaseCostLine struct {
	Phase     string           `json:"phase"`
	Root      bool             `json:"root,omitempty"`
	Ns        int64            `json:"ns"`
	Calls     int64            `json:"calls"`
	Bytes     int64            `json:"bytes,omitempty"`
	Share     float64          `json:"share"`
	NsPerCall float64          `json:"ns_per_call,omitempty"`
	Aux       map[string]int64 `json:"aux,omitempty"`
}

// BuildReport computes the cost breakdown from a decoded run. It errors
// when the run recorded no phase-cost samples (pre-prof recordings, or
// accounting disabled).
func BuildReport(run *flight.Run) (*CostReport, error) {
	if len(run.PhaseCosts) == 0 {
		return nil, fmt.Errorf("prof: run has no phase-cost records (was phase accounting enabled?)")
	}
	s := flight.Summarize(run)
	rep := &CostReport{RunID: s.RunID, Scenario: s.Scenario, Binary: s.Binary}

	aux := func(ps flight.PhaseSummary, name string) int64 {
		for _, a := range ps.Aux {
			if a.Name == name {
				return a.Value
			}
		}
		return 0
	}
	for _, ps := range s.Phases {
		if RootPhaseName(ps.Phase) {
			rep.WallNs += ps.Ns
		} else {
			rep.AttributedNs += ps.Ns
		}
	}
	for _, ps := range s.Phases {
		line := PhaseCostLine{
			Phase: ps.Phase, Root: RootPhaseName(ps.Phase),
			Ns: ps.Ns, Calls: ps.Calls, Bytes: ps.Bytes,
		}
		if rep.WallNs > 0 {
			line.Share = float64(ps.Ns) / float64(rep.WallNs)
		}
		if ps.Calls > 0 {
			line.NsPerCall = float64(ps.Ns) / float64(ps.Calls)
		}
		if len(ps.Aux) > 0 {
			line.Aux = make(map[string]int64, len(ps.Aux))
			for _, a := range ps.Aux {
				line.Aux[a.Name] = a.Value
			}
		}
		rep.Phases = append(rep.Phases, line)

		switch ps.Phase {
		case PhaseSweep.Name():
			rep.Configs += aux(ps, "configs")
		case PhaseSearch.Name():
			rep.Configs += aux(ps, "configs_scored")
		case PhaseChannelSum.Name():
			rep.SubcarrierEvals = aux(ps, "subcarrier_evals")
			if rep.SubcarrierEvals > 0 {
				rep.CostPerSubcarrierNs = float64(ps.Ns) / float64(rep.SubcarrierEvals)
			}
		}
	}
	if rep.WallNs > 0 {
		rep.Coverage = float64(rep.AttributedNs) / float64(rep.WallNs)
	}
	if rep.Configs > 0 {
		rep.CostPerConfigNs = float64(rep.WallNs) / float64(rep.Configs)
	}
	return rep, nil
}

// WriteText renders the report as an aligned table, roots first.
func (rep *CostReport) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "run %s (binary %s, scenario %s)\n",
		orDash(rep.RunID), orDash(rep.Binary), orDash(rep.Scenario)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"wall clock in root phases %.3f ms; %.3f ms attributed to leaf phases (coverage %.1f%%)\n\n",
		float64(rep.WallNs)/1e6, float64(rep.AttributedNs)/1e6, rep.Coverage*100); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-13s %7s %12s %10s %12s  %s\n",
		"phase", "share", "ms", "calls", "ns/call", "detail"); err != nil {
		return err
	}
	write := func(roots bool) error {
		for _, l := range rep.Phases {
			if l.Root != roots {
				continue
			}
			if _, err := fmt.Fprintf(w, "%-13s %6.1f%% %12.3f %10d %12.0f  %s\n",
				l.Phase, l.Share*100, float64(l.Ns)/1e6, l.Calls, l.NsPerCall, auxDetail(l.Aux)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := write(true); err != nil {
		return err
	}
	if err := write(false); err != nil {
		return err
	}
	if rep.Configs > 0 {
		if _, err := fmt.Fprintf(w, "\ncost per config     %12.3f ms  (%d configs)\n",
			rep.CostPerConfigNs/1e6, rep.Configs); err != nil {
			return err
		}
	}
	if rep.SubcarrierEvals > 0 {
		if _, err := fmt.Fprintf(w, "cost per subcarrier %12.0f ns  (%d evaluations)\n",
			rep.CostPerSubcarrierNs, rep.SubcarrierEvals); err != nil {
			return err
		}
	}
	return nil
}

// auxDetail renders aux counters as "k=v" pairs in the order the phase
// defines them (falling back to nothing for unknown phases).
func auxDetail(aux map[string]int64) string {
	if len(aux) == 0 {
		return ""
	}
	var parts []string
	for p := Phase(0); p < NumPhases; p++ {
		for _, name := range auxNames[p] {
			if v, ok := aux[name]; ok && name != "" {
				parts = append(parts, fmt.Sprintf("%s=%d", name, v))
			}
		}
	}
	return strings.Join(parts, " ")
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
