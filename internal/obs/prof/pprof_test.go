package prof

import (
	"bytes"
	"runtime/pprof"
	"testing"
)

// TestParseHeapProfile feeds the parser a real profile emitted by the
// runtime — the strongest end-to-end check the wire walker can get
// without a protobuf dependency.
func TestParseHeapProfile(t *testing.T) {
	waste := make([][]byte, 64)
	for i := range waste {
		waste[i] = make([]byte, 16<<10)
	}
	_ = waste

	var buf bytes.Buffer
	heap := pprof.Lookup("allocs")
	if heap == nil {
		t.Fatal("no allocs profile")
	}
	if err := heap.WriteTo(&buf, 0); err != nil {
		t.Fatal(err)
	}
	p, err := parsePprof(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	idx := p.valueIndex("alloc_space", "")
	if idx < 0 {
		t.Fatalf("no alloc_space column; types = %+v", p.sampleTypes)
	}
	if len(p.samples) == 0 || len(p.funcNames) == 0 {
		t.Fatalf("samples=%d funcs=%d", len(p.samples), len(p.funcNames))
	}
	agg := p.flatCum(idx)
	if len(agg) == 0 {
		t.Fatal("empty aggregation")
	}
	var total int64
	sawThisTest := false
	for name, fc := range agg {
		if fc.flat < 0 || fc.cum < fc.flat {
			t.Errorf("%s: flat %d cum %d inconsistent", name, fc.flat, fc.cum)
		}
		total += fc.flat
		if bytes.Contains([]byte(name), []byte("TestParseHeapProfile")) {
			sawThisTest = true
		}
	}
	if total <= 0 {
		t.Error("no flat allocation attributed")
	}
	if !sawThisTest {
		t.Error("test function missing from allocation stacks")
	}
}

func TestParsePprofRejectsGarbage(t *testing.T) {
	if _, err := parsePprof([]byte{0x1f, 0x8b, 0x00}); err == nil {
		t.Error("truncated gzip accepted")
	}
	// Wire-valid-looking garbage: field 2 (sample), wire 2, absurd length.
	if _, err := parsePprof([]byte{0x12, 0x7f, 0x01}); err == nil {
		t.Error("truncated message accepted")
	}
}

func TestParsePprofEmpty(t *testing.T) {
	p, err := parsePprof(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.samples) != 0 || p.valueIndex("", "nanoseconds") != -1 {
		t.Errorf("empty profile = %+v", p)
	}
}
