package prof

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
)

// Minimal pprof-proto reader. The runtime emits profiles as
// gzip-compressed profile.proto messages; the module is stdlib-only, so
// instead of importing a protobuf library we walk the handful of fields
// the hotspot aggregation needs: sample types, samples (stack + values),
// locations, functions, and the string table. Unknown fields are
// skipped, which also keeps the reader forward-compatible.

// pprofProfile is the decoded subset of one profile.
type pprofProfile struct {
	// sampleTypes names each parallel value column ("cpu"/"nanoseconds",
	// "alloc_space"/"bytes", ...).
	sampleTypes []pprofValueType
	samples     []pprofSample
	// locFuncs maps location id → function ids, innermost (deepest
	// inline) first.
	locFuncs map[uint64][]uint64
	// funcNames maps function id → fully qualified name.
	funcNames map[uint64]string
}

type pprofValueType struct{ typ, unit string }

type pprofSample struct {
	// locs is the stack, leaf first.
	locs []uint64
	vals []int64
}

// valueIndex returns the column whose type or unit matches, -1 if none.
func (p *pprofProfile) valueIndex(typ, unit string) int {
	for i, st := range p.sampleTypes {
		if (typ == "" || st.typ == typ) && (unit == "" || st.unit == unit) {
			return i
		}
	}
	return -1
}

// protoReader walks one wire-format message.
type protoReader struct {
	b   []byte
	off int
	err bool
}

func (r *protoReader) fail() uint64 { r.err = true; return 0 }

func (r *protoReader) varint() uint64 {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if r.off >= len(r.b) {
			return r.fail()
		}
		c := r.b[r.off]
		r.off++
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v
		}
	}
	return r.fail()
}

// field reads the next field header; done is true at a clean end.
func (r *protoReader) field() (num int, wire int, done bool) {
	if r.err || r.off >= len(r.b) {
		return 0, 0, true
	}
	tag := r.varint()
	if r.err {
		return 0, 0, true
	}
	return int(tag >> 3), int(tag & 7), false
}

// bytes reads a length-delimited payload (wire type 2).
func (r *protoReader) bytes() []byte {
	n := r.varint()
	if r.err || n > uint64(len(r.b)-r.off) {
		r.fail()
		return nil
	}
	out := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return out
}

// skip discards one field of the given wire type.
func (r *protoReader) skip(wire int) {
	switch wire {
	case 0:
		r.varint()
	case 1:
		r.off += 8
	case 2:
		r.bytes()
	case 5:
		r.off += 4
	default:
		r.fail()
	}
	if r.off > len(r.b) {
		r.fail()
	}
}

// uint64s appends a repeated-uint64 field value: packed (wire 2) or a
// single varint (wire 0).
func uint64s(r *protoReader, wire int, dst []uint64) []uint64 {
	if wire == 0 {
		return append(dst, r.varint())
	}
	p := &protoReader{b: r.bytes()}
	for !r.err && p.off < len(p.b) {
		dst = append(dst, p.varint())
		if p.err {
			r.fail()
		}
	}
	return dst
}

// int64s is uint64s for int64 columns (plain varint, not zigzag — pprof
// values are non-negative in practice and encoded two's-complement).
func int64s(r *protoReader, wire int, dst []int64) []int64 {
	if wire == 0 {
		return append(dst, int64(r.varint()))
	}
	p := &protoReader{b: r.bytes()}
	for !r.err && p.off < len(p.b) {
		dst = append(dst, int64(p.varint()))
		if p.err {
			r.fail()
		}
	}
	return dst
}

// parsePprof decodes one (possibly gzip-compressed) pprof profile.
func parsePprof(data []byte) (*pprofProfile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip profile: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if cerr := zr.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip profile: %w", err)
		}
		data = raw
	}

	p := &pprofProfile{
		locFuncs:  make(map[uint64][]uint64),
		funcNames: make(map[uint64]string),
	}
	var strtab []string
	// String-table indices resolved after the full pass, since entries
	// may follow their first reference.
	type vtRef struct{ typ, unit uint64 }
	var vtRefs []vtRef
	type fnRef struct {
		id   uint64
		name uint64
	}
	var fnRefs []fnRef

	r := &protoReader{b: data}
	for {
		num, wire, done := r.field()
		if done {
			break
		}
		switch num {
		case 1: // sample_type: ValueType{1:type, 2:unit}
			vr := &protoReader{b: r.bytes()}
			var ref vtRef
			for {
				n, w, d := vr.field()
				if d {
					break
				}
				switch n {
				case 1:
					ref.typ = vr.varint()
				case 2:
					ref.unit = vr.varint()
				default:
					vr.skip(w)
				}
			}
			if vr.err {
				return nil, fmt.Errorf("prof: malformed sample_type")
			}
			vtRefs = append(vtRefs, ref)
		case 2: // sample: Sample{1:location_id*, 2:value*}
			sr := &protoReader{b: r.bytes()}
			var s pprofSample
			for {
				n, w, d := sr.field()
				if d {
					break
				}
				switch n {
				case 1:
					s.locs = uint64s(sr, w, s.locs)
				case 2:
					s.vals = int64s(sr, w, s.vals)
				default:
					sr.skip(w)
				}
			}
			if sr.err {
				return nil, fmt.Errorf("prof: malformed sample")
			}
			p.samples = append(p.samples, s)
		case 4: // location: Location{1:id, 4:line* Line{1:function_id}}
			lr := &protoReader{b: r.bytes()}
			var id uint64
			var fns []uint64
			for {
				n, w, d := lr.field()
				if d {
					break
				}
				switch n {
				case 1:
					id = lr.varint()
				case 4:
					liner := &protoReader{b: lr.bytes()}
					for {
						ln, lw, ld := liner.field()
						if ld {
							break
						}
						if ln == 1 {
							fns = append(fns, liner.varint())
						} else {
							liner.skip(lw)
						}
					}
					if liner.err {
						lr.fail()
					}
				default:
					lr.skip(w)
				}
			}
			if lr.err {
				return nil, fmt.Errorf("prof: malformed location")
			}
			p.locFuncs[id] = fns
		case 5: // function: Function{1:id, 2:name}
			fr := &protoReader{b: r.bytes()}
			var ref fnRef
			for {
				n, w, d := fr.field()
				if d {
					break
				}
				switch n {
				case 1:
					ref.id = fr.varint()
				case 2:
					ref.name = fr.varint()
				default:
					fr.skip(w)
				}
			}
			if fr.err {
				return nil, fmt.Errorf("prof: malformed function")
			}
			fnRefs = append(fnRefs, ref)
		case 6: // string_table
			strtab = append(strtab, string(r.bytes()))
		default:
			r.skip(wire)
		}
		if r.err {
			return nil, fmt.Errorf("prof: malformed profile")
		}
	}

	str := func(i uint64) string {
		if i < uint64(len(strtab)) {
			return strtab[i]
		}
		return ""
	}
	for _, ref := range vtRefs {
		p.sampleTypes = append(p.sampleTypes, pprofValueType{typ: str(ref.typ), unit: str(ref.unit)})
	}
	for _, ref := range fnRefs {
		p.funcNames[ref.id] = str(ref.name)
	}
	return p, nil
}

// flatCum aggregates one value column per function: flat is the value of
// samples whose leaf is the function, cum counts the function anywhere
// on the stack (once per sample, so recursion doesn't double-count).
func (p *pprofProfile) flatCum(valueIdx int) map[string]*funcCost {
	out := make(map[string]*funcCost)
	get := func(name string) *funcCost {
		fc := out[name]
		if fc == nil {
			fc = &funcCost{}
			out[name] = fc
		}
		return fc
	}
	seen := make(map[string]bool)
	for _, s := range p.samples {
		if valueIdx >= len(s.vals) {
			continue
		}
		v := s.vals[valueIdx]
		if v == 0 || len(s.locs) == 0 {
			continue
		}
		clear(seen)
		for li, loc := range s.locs {
			fns := p.locFuncs[loc]
			for fi, fn := range fns {
				name := p.funcNames[fn]
				if name == "" {
					continue
				}
				if li == 0 && fi == 0 {
					get(name).flat += v
				}
				if !seen[name] {
					seen[name] = true
					get(name).cum += v
				}
			}
		}
	}
	return out
}

// funcCost is one function's flat/cumulative value in a profile.
type funcCost struct{ flat, cum int64 }
