package prof

import (
	"compress/gzip"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"press/internal/obs/flight"
)

func parseCLI(t *testing.T, args ...string) *CLI {
	t.Helper()
	var c CLI
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	c.Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return &c
}

func TestCLIRegisterFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var c CLI
	c.Register(fs)
	for _, name := range []string{"phase-accounting", "profile-interval", "profile-window", "profile-top",
		"runtime-metrics-interval", "flight-dir", "telemetry-addr"} {
		if fs.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}
}

func TestCLIDisabledDefault(t *testing.T) {
	c := parseCLI(t)
	if err := c.Start(io.Discard); err != nil {
		t.Fatal(err)
	}
	if c.Prof() != nil || c.Profiler() != nil {
		t.Error("disabled default constructed live components")
	}
	if err := c.Finish(io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestCLINegativeFlags(t *testing.T) {
	c := parseCLI(t, "-profile-interval=-1s")
	if err := c.Start(io.Discard); err == nil {
		c.Finish(io.Discard)
		t.Fatal("negative profile interval accepted")
	}
	c = parseCLI(t, "-profile-window=-1s")
	if err := c.Start(io.Discard); err == nil {
		c.Finish(io.Discard)
		t.Fatal("negative profile window accepted")
	}
}

// TestCLIExplicitAccounting: -phase-accounting alone builds a collector
// even with no output sink, so /profz-less harnesses can still read
// totals programmatically.
func TestCLIExplicitAccounting(t *testing.T) {
	c := parseCLI(t, "-phase-accounting")
	if err := c.Start(io.Discard); err != nil {
		t.Fatal(err)
	}
	defer c.Finish(io.Discard)
	if c.Prof() == nil {
		t.Fatal("no collector with -phase-accounting")
	}
}

// TestCLIFlightImpliesAccounting: recording a run implies phase
// accounting, and Finish lands the final cumulative totals in the log.
func TestCLIFlightImpliesAccounting(t *testing.T) {
	dir := t.TempDir()
	c := parseCLI(t, "-flight-dir="+dir)
	if err := c.Start(io.Discard); err != nil {
		t.Fatal(err)
	}
	coll := c.Prof()
	if coll == nil {
		t.Fatal("flight recording did not imply a collector")
	}
	s := coll.Start(PhaseChannelSum)
	s.End()
	coll.Add(PhaseChannelSum, AuxSubcarrierEvals, 52)
	runDir := c.RunDir()
	if err := c.Finish(io.Discard); err != nil {
		t.Fatal(err)
	}
	run, err := flight.ReadRun(runDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.PhaseCosts) == 0 {
		t.Fatal("no phase-cost records in run log")
	}
	last := run.PhaseCosts[len(run.PhaseCosts)-1]
	if last.Phase != "channel_sum" || last.Calls != 1 {
		t.Errorf("final phase cost = %+v", last)
	}
	rep, err := BuildReport(run)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Phases) == 0 {
		t.Error("report has no phases")
	}
}

// TestCLIProfzEndpoint: the telemetry server serves /profz with the
// uniform JSON treatment (gzip on request, no-store always).
func TestCLIProfzEndpoint(t *testing.T) {
	c := parseCLI(t, "-telemetry-addr=127.0.0.1:0", "-profile-interval=50ms", "-profile-window=10ms")
	if err := c.Start(io.Discard); err != nil {
		t.Fatal(err)
	}
	defer c.Finish(io.Discard)
	if c.Prof() == nil {
		t.Fatal("server without collector")
	}
	sp := c.Prof().Start(PhaseSweep)
	c.Prof().Add(PhaseSweep, AuxConfigs, 64)
	time.Sleep(time.Millisecond)
	sp.End()

	req, _ := http.NewRequest("GET", "http://"+c.ServerAddr()+"/profz", nil)
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Errorf("Cache-Control = %q", cc)
	}
	if ce := resp.Header.Get("Content-Encoding"); ce != "gzip" {
		t.Fatalf("Content-Encoding = %q", ce)
	}
	zr, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	var doc ProfzDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ph := range doc.Phases {
		if ph.Phase == "sweep" && ph.Root && ph.Calls == 1 && ph.Aux["configs"] == 64 {
			found = true
		}
	}
	if !found {
		t.Errorf("sweep phase missing from /profz: %s", body)
	}
	if !strings.Contains(string(body), "uptime_seconds") {
		t.Errorf("/profz missing uptime: %s", body)
	}
}
