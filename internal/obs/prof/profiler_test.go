package prof

import (
	"testing"
	"time"
)

func TestProfilerCaptureOnce(t *testing.T) {
	p := NewProfiler(0, 20*time.Millisecond, 10)
	// Burn some CPU during the window so the profile has samples.
	stop := make(chan struct{})
	go func() {
		x := 0.0
		for {
			select {
			case <-stop:
				return
			default:
				for i := 0; i < 1000; i++ {
					x += float64(i) * 1.0001
				}
			}
		}
	}()
	p.CaptureOnce()
	p.CaptureOnce()
	close(stop)

	tab := p.Hotspots()
	if tab.Windows != 2 {
		t.Fatalf("windows = %d, want 2", tab.Windows)
	}
	// CPU capture may be unavailable (another profile active); the heap
	// side must still work.
	if tab.CPUWindows > 0 && tab.SampledNs <= 0 {
		t.Errorf("cpu windows %d but sampled ns %d", tab.CPUWindows, tab.SampledNs)
	}
	for i := 1; i < len(tab.CPU); i++ {
		if tab.CPU[i].FlatNs > tab.CPU[i-1].FlatNs {
			t.Errorf("cpu table not sorted at %d", i)
		}
	}
	if len(tab.CPU) > 10 || len(tab.Alloc) > 10 {
		t.Errorf("topN not enforced: cpu=%d alloc=%d", len(tab.CPU), len(tab.Alloc))
	}
}

func TestProfilerStartStop(t *testing.T) {
	p := NewProfiler(30*time.Millisecond, 10*time.Millisecond, 5)
	p.Start()
	time.Sleep(80 * time.Millisecond)
	p.Stop()
	p.Stop() // idempotent
	if p.Hotspots().Windows == 0 {
		t.Error("no windows captured by the loop")
	}
}

func TestProfilerStopWithoutStart(t *testing.T) {
	NewProfiler(time.Second, 0, 0).Stop()
	var nilP *Profiler
	nilP.Start()
	nilP.Stop()
	if nilP.Hotspots().Windows != 0 {
		t.Error("nil profiler reported windows")
	}
	nilP.CaptureOnce()
}

func TestProfilerWindowClamped(t *testing.T) {
	p := NewProfiler(100*time.Millisecond, time.Hour, 0)
	if p.window > 50*time.Millisecond {
		t.Errorf("window %v not clamped below interval", p.window)
	}
	if p.topN != DefaultTopN {
		t.Errorf("topN = %d", p.topN)
	}
}
