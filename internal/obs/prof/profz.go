package prof

import (
	"encoding/json"
	"io"
	"net/http"

	"press/internal/obs"
)

// ProfzDoc is the /profz response: the phase-accounting totals (exact,
// instrumented) next to the sampling profiler's rolling hotspot table
// (approximate, exhaustive) — the two views of "where does the time go".
type ProfzDoc struct {
	// UptimeSeconds is how long the collector has been accumulating.
	UptimeSeconds float64 `json:"uptime_seconds,omitempty"`
	// Phases is the cumulative per-phase work accounting (absent when
	// accounting is off).
	Phases []PhaseStatus `json:"phases,omitempty"`
	// Profiler is the sampling profiler's rolling aggregate (absent when
	// continuous profiling is off).
	Profiler *HotspotTable `json:"profiler,omitempty"`
}

// PhaseStatus is one phase's totals with derived per-call cost.
type PhaseStatus struct {
	Phase string `json:"phase"`
	Root  bool   `json:"root,omitempty"`
	Ns    int64  `json:"ns"`
	Calls int64  `json:"calls"`
	Bytes int64  `json:"bytes,omitempty"`
	// NsPerCall is Ns/Calls, the headline unit cost.
	NsPerCall float64          `json:"ns_per_call,omitempty"`
	Aux       map[string]int64 `json:"aux,omitempty"`
}

// ProfzHandler serves the /profz document for a collector and profiler
// (either may be nil). JSON gets the same gzip + Cache-Control: no-store
// treatment as every other JSON endpoint on the telemetry server.
func ProfzHandler(c *Collector, p *Profiler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		doc := ProfzDoc{}
		if c != nil {
			doc.UptimeSeconds = c.Uptime().Seconds()
			for _, pc := range c.Snapshot() {
				st := PhaseStatus{
					Phase: pc.Phase, Root: RootPhaseName(pc.Phase),
					Ns: pc.Ns, Calls: pc.Calls, Bytes: pc.Bytes,
				}
				if pc.Calls > 0 {
					st.NsPerCall = float64(pc.Ns) / float64(pc.Calls)
				}
				if len(pc.Aux) > 0 {
					st.Aux = make(map[string]int64, len(pc.Aux))
					for _, a := range pc.Aux {
						st.Aux[a.Name] = a.Value
					}
				}
				doc.Phases = append(doc.Phases, st)
			}
		}
		if p != nil {
			t := p.Hotspots()
			doc.Profiler = &t
		}
		obs.ServeJSON(w, r, func(out io.Writer) error {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			return enc.Encode(doc)
		})
	}
}

// RegisterRoutes adds the /profz endpoint to a telemetry server.
func RegisterRoutes(srv *obs.Server, c *Collector, p *Profiler) {
	srv.HandleFunc("/profz", ProfzHandler(c, p))
}
