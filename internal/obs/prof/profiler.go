package prof

import (
	"bytes"
	"runtime/pprof"
	"sort"
	"sync"
	"time"
)

// Profiler defaults.
const (
	// DefaultProfileWindow is how long each periodic CPU capture runs.
	DefaultProfileWindow = 250 * time.Millisecond
	// DefaultTopN is the hotspot table depth.
	DefaultTopN = 15
	// profileKeepWindows is the rolling horizon: hotspot tables aggregate
	// the last this-many capture windows.
	profileKeepWindows = 8
	// heapSampleType is the pprof value column the allocation table
	// differences (cumulative bytes allocated since process start).
	heapSampleType = "alloc_space"
)

// Profiler periodically captures a windowed CPU profile and a delta heap
// profile, parses the pprof protos in-process, and keeps a rolling
// aggregate exposed as a top-N per-function hotspot table. It is the
// sampling half of the package: approximate and unattributed to domain
// phases, but it names functions nobody thought to instrument.
type Profiler struct {
	interval time.Duration
	window   time.Duration
	topN     int

	mu        sync.Mutex
	windows   [profileKeepWindows]profileWindow
	count     int // total windows captured
	prevAlloc map[string]int64
	lastErr   string

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// profileWindow is one capture period's aggregates.
type profileWindow struct {
	endUnixNs int64
	cpuOK     bool
	cpuNs     map[string]*funcCost
	cpuTotal  int64
	alloc     map[string]int64
}

// NewProfiler builds a profiler ticking every interval with the given
// CPU capture window and table depth (0 ⇒ defaults). The window is
// clamped below the interval so captures never overlap.
func NewProfiler(interval, window time.Duration, topN int) *Profiler {
	if window <= 0 {
		window = DefaultProfileWindow
	}
	if interval > 0 && window > interval/2 {
		window = interval / 2
	}
	if topN <= 0 {
		topN = DefaultTopN
	}
	return &Profiler{
		interval:  interval,
		window:    window,
		topN:      topN,
		prevAlloc: make(map[string]int64),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
}

// Start launches the capture loop. Safe to call once; nil-safe.
func (p *Profiler) Start() {
	if p == nil || p.interval <= 0 {
		return
	}
	p.startOnce.Do(func() { go p.loop() })
}

// Stop halts the loop and waits for an in-flight capture to finish.
// Safe to call more than once and on a nil or never-started profiler.
func (p *Profiler) Stop() {
	if p == nil {
		return
	}
	p.stopOnce.Do(func() { close(p.stop) })
	if p.interval <= 0 {
		return
	}
	p.startOnce.Do(func() { close(p.done) }) // never started: unblock the wait
	<-p.done
}

func (p *Profiler) loop() {
	defer close(p.done)
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.CaptureOnce()
		}
	}
}

// CaptureOnce runs one capture window synchronously: a windowed CPU
// profile (skipped gracefully when another CPU profile — e.g. the
// -cpuprofile flag — is already running) plus a delta heap profile.
// Exported for tests and for a final capture at shutdown.
func (p *Profiler) CaptureOnce() {
	if p == nil {
		return
	}
	w := profileWindow{}

	var cpuBuf bytes.Buffer
	if err := pprof.StartCPUProfile(&cpuBuf); err == nil {
		timer := time.NewTimer(p.window)
		select {
		case <-p.stop:
		case <-timer.C:
		}
		timer.Stop()
		pprof.StopCPUProfile()
		if prof, err := parsePprof(cpuBuf.Bytes()); err != nil {
			p.setErr("cpu: " + err.Error())
		} else if idx := prof.valueIndex("", "nanoseconds"); idx >= 0 {
			w.cpuOK = true
			w.cpuNs = prof.flatCum(idx)
			for _, fc := range w.cpuNs {
				w.cpuTotal += fc.flat
			}
		}
	}

	if heap := pprof.Lookup("allocs"); heap != nil {
		var heapBuf bytes.Buffer
		if err := heap.WriteTo(&heapBuf, 0); err != nil {
			p.setErr("heap: " + err.Error())
		} else if prof, err := parsePprof(heapBuf.Bytes()); err != nil {
			p.setErr("heap: " + err.Error())
		} else if idx := prof.valueIndex(heapSampleType, ""); idx >= 0 {
			cur := make(map[string]int64)
			for name, fc := range prof.flatCum(idx) {
				cur[name] = fc.flat
			}
			p.mu.Lock()
			w.alloc = make(map[string]int64)
			for name, b := range cur {
				if d := b - p.prevAlloc[name]; d > 0 {
					w.alloc[name] = d
				}
			}
			p.prevAlloc = cur
			p.mu.Unlock()
		}
	}

	w.endUnixNs = time.Now().UnixNano()
	p.mu.Lock()
	p.windows[p.count%profileKeepWindows] = w
	p.count++
	p.mu.Unlock()
}

func (p *Profiler) setErr(msg string) {
	p.mu.Lock()
	p.lastErr = msg
	p.mu.Unlock()
}

// FuncHotspot is one function's CPU cost over the rolling horizon.
type FuncHotspot struct {
	Function string `json:"function"`
	FlatNs   int64  `json:"flat_ns"`
	CumNs    int64  `json:"cum_ns"`
	// Share is FlatNs over the horizon's total sampled CPU time.
	Share float64 `json:"share,omitempty"`
}

// AllocHotspot is one function's heap allocation over the horizon.
type AllocHotspot struct {
	Function string `json:"function"`
	Bytes    int64  `json:"bytes"`
}

// HotspotTable is the rolling aggregate /profz serves.
type HotspotTable struct {
	// Windows is how many capture windows the table aggregates;
	// CPUWindows how many of them captured CPU (captures are skipped when
	// another CPU profile holds the runtime's single profiling slot).
	Windows    int            `json:"windows"`
	CPUWindows int            `json:"cpu_windows"`
	SampledNs  int64          `json:"cpu_sampled_ns"`
	CPU        []FuncHotspot  `json:"cpu,omitempty"`
	Alloc      []AllocHotspot `json:"alloc,omitempty"`
	LastError  string         `json:"last_error,omitempty"`
}

// Hotspots merges the rolling windows into a top-N table. Nil-safe.
func (p *Profiler) Hotspots() HotspotTable {
	if p == nil {
		return HotspotTable{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	t := HotspotTable{LastError: p.lastErr}
	cpu := make(map[string]*funcCost)
	alloc := make(map[string]int64)
	n := min(p.count, profileKeepWindows)
	t.Windows = n
	for i := 0; i < n; i++ {
		w := &p.windows[i]
		if w.cpuOK {
			t.CPUWindows++
			t.SampledNs += w.cpuTotal
			for name, fc := range w.cpuNs {
				agg := cpu[name]
				if agg == nil {
					agg = &funcCost{}
					cpu[name] = agg
				}
				agg.flat += fc.flat
				agg.cum += fc.cum
			}
		}
		for name, b := range w.alloc {
			alloc[name] += b
		}
	}
	for name, fc := range cpu {
		h := FuncHotspot{Function: name, FlatNs: fc.flat, CumNs: fc.cum}
		if t.SampledNs > 0 {
			h.Share = float64(fc.flat) / float64(t.SampledNs)
		}
		t.CPU = append(t.CPU, h)
	}
	sort.Slice(t.CPU, func(i, j int) bool {
		if t.CPU[i].FlatNs != t.CPU[j].FlatNs {
			return t.CPU[i].FlatNs > t.CPU[j].FlatNs
		}
		return t.CPU[i].Function < t.CPU[j].Function
	})
	if len(t.CPU) > p.topN {
		t.CPU = t.CPU[:p.topN]
	}
	for name, b := range alloc {
		t.Alloc = append(t.Alloc, AllocHotspot{Function: name, Bytes: b})
	}
	sort.Slice(t.Alloc, func(i, j int) bool {
		if t.Alloc[i].Bytes != t.Alloc[j].Bytes {
			return t.Alloc[i].Bytes > t.Alloc[j].Bytes
		}
		return t.Alloc[i].Function < t.Alloc[j].Function
	})
	if len(t.Alloc) > p.topN {
		t.Alloc = t.Alloc[:p.topN]
	}
	return t
}
