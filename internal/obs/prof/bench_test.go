package prof

import (
	"testing"
	"time"
)

// BenchmarkSpan measures the phase-accounting hook the physics loops
// pay per call: open + close one span. Budget: the nil case must be a
// pointer check (~1 ns), the enabled leaf case a clock read plus two
// atomic adds, and the enabled root case additionally a runtime/metrics
// read at each end. All zero allocations.
func BenchmarkSpan(b *testing.B) {
	b.Run("nil", func(b *testing.B) {
		var c *Collector
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := c.Start(PhaseChannelSum)
			s.End()
		}
	})
	b.Run("leaf", func(b *testing.B) {
		c := NewCollector()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := c.Start(PhaseChannelSum)
			s.End()
		}
	})
	b.Run("root", func(b *testing.B) {
		c := NewCollector()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := c.Start(PhaseSweep)
			s.End()
		}
	})
}

// BenchmarkAdd is the auxiliary-counter path (one atomic add behind a
// nil check), batched ×8 per iteration: the nil case is sub-nanosecond,
// and an op that small sits below the clock resolution of the short
// -benchtime=100x CI gate runs, making per-call timings pure noise.
// Divide ns/op by 8 for the per-call cost.
func BenchmarkAdd(b *testing.B) {
	b.Run("nil", func(b *testing.B) {
		var c *Collector
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for k := 0; k < 8; k++ {
				c.Add(PhaseChannelSum, AuxSubcarrierEvals, 52)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		c := NewCollector()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for k := 0; k < 8; k++ {
				c.Add(PhaseChannelSum, AuxSubcarrierEvals, 52)
			}
		}
	})
}

// BenchmarkSnapshot is the flusher's cost: reading every counter and
// materializing wire records, paid once per flush interval.
func BenchmarkSnapshot(b *testing.B) {
	c := NewCollector()
	for p := Phase(0); p < NumPhases; p++ {
		s := c.Start(p)
		s.End()
		c.Add(p, 0, 10)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink2 = c.Snapshot()
	}
}

var sink2 any

// BenchmarkProfilerCapture is one full profiler tick: a windowed CPU
// capture (1 ms window to keep the benchmark honest about parse cost,
// not sleep time), a delta heap profile, and both pprof parses. This is
// the background cost of -profile-interval, paid off the hot path.
func BenchmarkProfilerCapture(b *testing.B) {
	if testing.Short() {
		// Each capture is floored by the runtime's CPU-profile flush
		// latency (~200 ms), which swamps short CI bench budgets.
		b.Skip("skipping profiler capture in -short mode")
	}
	p := NewProfiler(0, time.Millisecond, DefaultTopN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.CaptureOnce()
	}
}

// BenchmarkHotspots is the /profz read path over a full ring of
// windows.
func BenchmarkHotspots(b *testing.B) {
	p := NewProfiler(0, time.Millisecond, DefaultTopN)
	for i := 0; i < profileKeepWindows; i++ {
		p.CaptureOnce()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink2 = p.Hotspots()
	}
}
