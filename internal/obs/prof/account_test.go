package prof

import (
	"testing"
	"time"
)

func TestPhaseNamesAndRoots(t *testing.T) {
	seen := map[string]bool{}
	for p := Phase(0); p < NumPhases; p++ {
		name := p.Name()
		if name == "" || name == "unknown" {
			t.Errorf("phase %d has no name", p)
		}
		if seen[name] {
			t.Errorf("duplicate phase name %q", name)
		}
		seen[name] = true
		back, ok := PhaseByName(name)
		if !ok || back != p {
			t.Errorf("PhaseByName(%q) = %v, %v", name, back, ok)
		}
	}
	if Phase(200).Name() != "unknown" {
		t.Errorf("out-of-range name = %q", Phase(200).Name())
	}
	if _, ok := PhaseByName("nope"); ok {
		t.Error("PhaseByName accepted unknown name")
	}
	if !PhaseSweep.Root() || !PhaseSearch.Root() {
		t.Error("sweep/search must be roots")
	}
	if PhaseTrace.Root() || PhaseChannelSum.Root() || PhaseActuate.Root() {
		t.Error("leaf phase reported as root")
	}
	if !RootPhaseName("sweep") || RootPhaseName("path_trace") || RootPhaseName("nope") {
		t.Error("RootPhaseName misclassifies")
	}
}

func TestCollectorAccumulates(t *testing.T) {
	c := NewCollector()
	s := c.Start(PhaseChannelSum)
	time.Sleep(time.Millisecond)
	s.End()
	c.Add(PhaseChannelSum, AuxSubcarrierEvals, 52)
	c.Add(PhaseChannelSum, AuxPathTerms, 520)
	c.Add(PhaseChannelSum, AuxPathTerms, 0) // no-op

	s2 := c.Start(PhaseChannelSum)
	s2.End()

	snap := c.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	pc := snap[0]
	if pc.Phase != "channel_sum" || pc.Calls != 2 || pc.Ns < int64(time.Millisecond) {
		t.Errorf("phase cost = %+v", pc)
	}
	want := map[string]int64{"subcarrier_evals": 52, "path_terms": 520}
	if len(pc.Aux) != 2 {
		t.Fatalf("aux = %+v", pc.Aux)
	}
	for _, a := range pc.Aux {
		if want[a.Name] != a.Value {
			t.Errorf("aux %s = %d, want %d", a.Name, a.Value, want[a.Name])
		}
	}
	if c.Uptime() <= 0 {
		t.Error("uptime not advancing")
	}
}

func TestRootPhaseAccountsBytes(t *testing.T) {
	c := NewCollector()
	s := c.Start(PhaseSweep)
	sink = make([]byte, 1<<20)
	s.End()
	snap := c.Snapshot()
	if len(snap) != 1 || snap[0].Phase != "sweep" {
		t.Fatalf("snapshot = %+v", snap)
	}
	// The span allocated a megabyte; the process-wide counter must have
	// seen at least that.
	if snap[0].Bytes < 1<<20 {
		t.Errorf("sweep bytes = %d, want >= %d", snap[0].Bytes, 1<<20)
	}
}

var sink []byte

func TestNilCollectorIsInert(t *testing.T) {
	var c *Collector
	s := c.Start(PhaseTrace)
	s.End()
	c.Add(PhaseTrace, AuxPathsKept, 5)
	if snap := c.Snapshot(); snap != nil {
		t.Errorf("nil snapshot = %+v", snap)
	}
	if c.Uptime() != 0 {
		t.Error("nil uptime != 0")
	}
}

// TestAccountingZeroAllocs is the allocation-regression gate for the
// hot-path hooks: span open/close and aux adds must not allocate, with
// the collector enabled or nil — mirroring the nil-registry tests in
// internal/obs.
func TestAccountingZeroAllocs(t *testing.T) {
	c := NewCollector()
	cases := []struct {
		name string
		coll *Collector
	}{
		{"enabled", c},
		{"nil", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name+"/leaf_span", func(t *testing.T) {
			if n := testing.AllocsPerRun(200, func() {
				s := tc.coll.Start(PhaseChannelSum)
				s.End()
			}); n != 0 {
				t.Errorf("leaf span = %v allocs/op, want 0", n)
			}
		})
		t.Run(tc.name+"/root_span", func(t *testing.T) {
			if n := testing.AllocsPerRun(200, func() {
				s := tc.coll.Start(PhaseSweep)
				s.End()
			}); n != 0 {
				t.Errorf("root span = %v allocs/op, want 0", n)
			}
		})
		t.Run(tc.name+"/add", func(t *testing.T) {
			if n := testing.AllocsPerRun(200, func() {
				tc.coll.Add(PhaseChannelSum, AuxSubcarrierEvals, 52)
			}); n != 0 {
				t.Errorf("Add = %v allocs/op, want 0", n)
			}
		})
	}
}

func TestConcurrentSpansDoNotRace(t *testing.T) {
	c := NewCollector()
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				s := c.Start(PhaseSweep) // root: exercises the memBuf CAS
				c.Add(PhaseSweep, AuxConfigs, 1)
				s.End()
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	snap := c.Snapshot()
	if len(snap) != 1 || snap[0].Calls != 2000 {
		t.Fatalf("snapshot = %+v", snap)
	}
	for _, a := range snap[0].Aux {
		if a.Name == "configs" && a.Value != 2000 {
			t.Errorf("configs = %d, want 2000", a.Value)
		}
	}
}
