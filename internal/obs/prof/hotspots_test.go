package prof

import (
	"encoding/json"
	"strings"
	"testing"

	"press/internal/obs/flight"
)

func costRun() *flight.Run {
	return &flight.Run{
		Manifest: &flight.Manifest{RunID: "r1", Binary: "pressim", Scenario: "fig4"},
		PhaseCosts: []flight.PhaseCost{
			// An early flush followed by the final cumulative totals: the
			// report must use only the final sample per phase.
			{UnixNs: 1, Phase: "sweep", Ns: 50_000_000, Calls: 1,
				Aux: []flight.AuxCount{{Name: "configs", Value: 32}}},
			{UnixNs: 2, Phase: "sweep", Ns: 100_000_000, Calls: 2,
				Aux: []flight.AuxCount{{Name: "configs", Value: 64}}},
			{UnixNs: 2, Phase: "path_trace", Ns: 40_000_000, Calls: 64,
				Aux: []flight.AuxCount{{Name: "images_enumerated", Value: 1200}, {Name: "paths_kept", Value: 800}, {Name: "paths_culled", Value: 400}}},
			{UnixNs: 2, Phase: "channel_sum", Ns: 50_000_000, Calls: 64,
				Aux: []flight.AuxCount{{Name: "subcarrier_evals", Value: 3328}, {Name: "path_terms", Value: 99840}}},
			{UnixNs: 2, Phase: "actuate", Ns: 5_000_000, Calls: 64,
				Aux: []flight.AuxCount{{Name: "actuations", Value: 64}}},
		},
	}
}

func TestBuildReport(t *testing.T) {
	rep, err := BuildReport(costRun())
	if err != nil {
		t.Fatal(err)
	}
	if rep.RunID != "r1" || rep.Scenario != "fig4" {
		t.Errorf("identity = %+v", rep)
	}
	if rep.WallNs != 100_000_000 {
		t.Errorf("wall = %d", rep.WallNs)
	}
	if rep.AttributedNs != 95_000_000 {
		t.Errorf("attributed = %d", rep.AttributedNs)
	}
	if rep.Coverage < 0.94 || rep.Coverage > 0.96 {
		t.Errorf("coverage = %v", rep.Coverage)
	}
	if rep.Configs != 64 {
		t.Errorf("configs = %d", rep.Configs)
	}
	if want := 100_000_000.0 / 64; rep.CostPerConfigNs != want {
		t.Errorf("cost/config = %v, want %v", rep.CostPerConfigNs, want)
	}
	if rep.SubcarrierEvals != 3328 {
		t.Errorf("subcarrier evals = %d", rep.SubcarrierEvals)
	}
	if want := 50_000_000.0 / 3328; rep.CostPerSubcarrierNs != want {
		t.Errorf("cost/subcarrier = %v, want %v", rep.CostPerSubcarrierNs, want)
	}

	var sb strings.Builder
	if err := rep.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"path_trace", "channel_sum", "coverage 95.0%", "cost per config", "cost per subcarrier", "paths_kept=800"} {
		if !strings.Contains(out, want) {
			t.Errorf("report text missing %q:\n%s", want, out)
		}
	}

	// JSON round-trips with the documented field names.
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"wall_ns"`, `"coverage"`, `"cost_per_config_ns"`, `"cost_per_subcarrier_ns"`, `"path_trace"`} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("report JSON missing %s", want)
		}
	}
}

func TestBuildReportNoPhaseData(t *testing.T) {
	if _, err := BuildReport(&flight.Run{}); err == nil {
		t.Error("empty run accepted")
	}
}
