package tsdb

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"press/internal/obs"
	"press/internal/obs/export"
)

// feed applies one delta batch synchronously and flushes the raw tier,
// so tests control exactly what is on disk.
func feed(t *testing.T, s *Store, b export.Batch) {
	t.Helper()
	s.applyBatch(b)
	s.mu.Lock()
	if err := s.tiers[tierRaw].flush(); err != nil {
		s.mu.Unlock()
		t.Fatalf("flush: %v", err)
	}
	s.mu.Unlock()
}

// seedStore writes two sessions' worth of counter+gauge history:
// 120 seconds of 1s samples ending at endMs.
func seedStore(t *testing.T, s *Store, endMs int64) {
	t.Helper()
	start := endMs - 119_000
	for i := 0; i < 120; i++ {
		ts := start + int64(i)*1000
		feed(t, s, export.Batch{
			UnixMs:   ts,
			Counters: map[string]int64{"req_total": 2},
			Gauges:   map[string]float64{"depth_db": float64(30 + i%4)},
		})
		feed(t, s, export.Batch{
			UnixMs:   ts,
			Session:  "room1",
			Counters: map[string]int64{"req_total": 3},
		})
	}
}

func openTest(t *testing.T, dir string, ro bool) *Store {
	t.Helper()
	s, err := Open(Options{Dir: dir, ReadOnly: ro, Reg: obs.NewRegistry()})
	if err != nil {
		t.Fatalf("open %s: %v", dir, err)
	}
	return s
}

func TestStoreWriteQueryRestartDownsample(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, false)
	endMs := time.Now().Add(-5*time.Minute).UnixMilli() / 1000 * 1000
	seedStore(t, s, endMs)

	// Fold completed windows into the 10s and 1m tiers.
	s.mu.Lock()
	s.compactLocked(time.UnixMilli(endMs + 30_000))
	for i := 0; i < numTiers; i++ {
		s.tiers[i].flush()
	}
	s.mu.Unlock()
	if s.wm[tier10s] == 0 || s.wm[tier1m] == 0 {
		t.Fatalf("compaction watermarks not advanced: %v", s.wm)
	}

	end := time.UnixMilli(endMs)
	start := time.UnixMilli(endMs - 119_000)

	checkQueries := func(s *Store, phase string) {
		t.Helper()
		// Instant: cumulative counter totals per session.
		samples, err := s.Instant("req_total", end)
		if err != nil {
			t.Fatalf("%s instant: %v", phase, err)
		}
		if len(samples) != 2 {
			t.Fatalf("%s: want 2 sessions, got %+v", phase, samples)
		}
		bySess := map[string]float64{}
		for _, sm := range samples {
			bySess[sm.Labels.Session] = sm.V
		}
		if bySess[""] != 240 || bySess["room1"] != 360 {
			t.Fatalf("%s: wrong totals %v", phase, bySess)
		}
		// Session filtering.
		samples, err = s.Instant(`req_total{session="room1"}`, end)
		if err != nil || len(samples) != 1 || samples[0].V != 360 {
			t.Fatalf("%s session filter: %v %+v", phase, err, samples)
		}
		// rate over the full window: root 2/s, room1 3/s.
		samples, err = s.Instant("rate(req_total[2m])", end)
		if err != nil || len(samples) != 2 {
			t.Fatalf("%s rate: %v %+v", phase, err, samples)
		}
		for _, sm := range samples {
			want := 2.0
			if sm.Labels.Session == "room1" {
				want = 3.0
			}
			if sm.V < want*0.9 || sm.V > want*1.1 {
				t.Fatalf("%s rate session %q: got %v want ~%v", phase, sm.Labels.Session, sm.V, want)
			}
		}
		// Cross-session roll-up.
		samples, err = s.Instant("sum(rate(req_total[2m]))", end)
		if err != nil || len(samples) != 1 {
			t.Fatalf("%s sum(rate): %v %+v", phase, err, samples)
		}
		if samples[0].V < 4.5 || samples[0].V > 5.5 {
			t.Fatalf("%s sum(rate) = %v, want ~5", phase, samples[0].V)
		}
		// Range query: gauges step-sampled.
		series, err := s.Range("depth_db", start, end, 10*time.Second)
		if err != nil || len(series) != 1 {
			t.Fatalf("%s range: %v %+v", phase, err, series)
		}
		if len(series[0].Points) < 10 {
			t.Fatalf("%s range: too few points: %d", phase, len(series[0].Points))
		}
	}

	checkQueries(s, "live")
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Restart durability: a fresh read-only store answers identically.
	s2 := openTest(t, dir, true)
	checkQueries(s2, "reopened")

	// Downsampled tiers actually serve: delete every raw segment and
	// query again — the 10s/1m tiers must cover the range.
	segs, _ := filepath.Glob(filepath.Join(dir, "raw", "*"+segSuffix))
	if len(segs) == 0 {
		t.Fatal("no raw segments written")
	}
	for _, p := range segs {
		os.Remove(p)
	}
	s3 := openTest(t, dir, true)
	samples, err := s3.Instant(`req_total{session="room1"}`, end)
	if err != nil || len(samples) != 1 {
		t.Fatalf("coarse-tier instant: %v %+v", err, samples)
	}
	// The 10s tier's last window ends at or before endMs; cumulative
	// total there is within one window of the true total.
	if samples[0].V < 330 || samples[0].V > 360 {
		t.Fatalf("coarse-tier total = %v, want within [330,360]", samples[0].V)
	}
	series, err := s3.Range("rate(req_total[1m])", start, end, 30*time.Second)
	if err != nil || len(series) != 2 {
		t.Fatalf("coarse-tier range: %v (%d series)", err, len(series))
	}
}

func TestCounterCumRestoredAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	endMs := time.Now().UnixMilli() / 1000 * 1000
	s := openTest(t, dir, false)
	feed(t, s, export.Batch{UnixMs: endMs - 2000, Counters: map[string]int64{"c_total": 7}})
	s.Close()

	s2 := openTest(t, dir, false)
	feed(t, s2, export.Batch{UnixMs: endMs, Counters: map[string]int64{"c_total": 5}})
	samples, err := s2.Instant("c_total", time.UnixMilli(endMs))
	if err != nil || len(samples) != 1 {
		t.Fatalf("instant: %v %+v", err, samples)
	}
	if samples[0].V != 12 {
		t.Fatalf("cumulative not restored: got %v want 12", samples[0].V)
	}
	s2.Close()
}

func TestOfferOverflowDropsAndFoldsAreCounted(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, QueueCap: 2, Reg: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Hold the store lock so the ingest loop wedges inside applyBatch;
	// the queue then fills deterministically.
	s.mu.Lock()
	accepted, rejected := 0, 0
	for i := 0; i < 10; i++ {
		b := export.Batch{UnixMs: time.Now().UnixMilli(), Counters: map[string]int64{"x_total": 1}}
		if s.Offer(b) {
			accepted++
		} else {
			rejected++
		}
	}
	s.mu.Unlock()
	if rejected == 0 {
		t.Fatal("bounded queue never rejected")
	}
	if got := s.dropped.Load(); got != int64(rejected) {
		t.Fatalf("dropped counter %d != rejections %d", got, rejected)
	}
	if accepted == 0 {
		t.Fatal("no batch accepted")
	}
}

func TestPerSessionSeriesBudget(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, MaxSeriesPerSession: 2, Reg: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.applyBatch(export.Batch{
		UnixMs:  time.Now().UnixMilli(),
		Session: "room1",
		Gauges:  map[string]float64{"a": 1, "b": 2, "c": 3},
	})
	st := s.State()
	if st.Series != 2 {
		t.Fatalf("series = %d, want 2 (budget)", st.Series)
	}
	if s.rejected.Load() == 0 {
		t.Fatal("over-budget series not counted as rejected")
	}

	// Releasing the session frees its budget and counts the release.
	if n := s.ReleaseSession("room1"); n != 2 {
		t.Fatalf("released %d series, want 2", n)
	}
	if s.released.Load() != 1 {
		t.Fatal("release not counted")
	}
	s.applyBatch(export.Batch{
		UnixMs:  time.Now().UnixMilli(),
		Session: "room1",
		Gauges:  map[string]float64{"d": 4},
	})
	if st := s.State(); st.Series != 1 {
		t.Fatalf("series after release = %d, want 1", st.Series)
	}
}

func TestRetentionDeletesExpiredSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{
		Dir: dir, Reg: obs.NewRegistry(),
		RetentionRaw: time.Minute, SegmentBytes: 1 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Old samples (beyond raw retention), enough to rotate segments.
	old := time.Now().Add(-10 * time.Minute).UnixMilli()
	for i := 0; i < 100; i++ {
		g := map[string]float64{}
		for j := 0; j < 16; j++ {
			g["g"+string(rune('a'+j))] = float64(i * j)
		}
		feed(t, s, export.Batch{UnixMs: old + int64(i)*1000, Gauges: g})
	}
	s.mu.Lock()
	sealedBefore := len(s.tiers[tierRaw].sealed)
	s.retainLocked(time.Now())
	sealedAfter := len(s.tiers[tierRaw].sealed)
	s.mu.Unlock()
	if sealedBefore == 0 {
		t.Fatal("no segments rotated; retention untestable")
	}
	if sealedAfter >= sealedBefore {
		t.Fatalf("retention removed nothing: %d -> %d", sealedBefore, sealedAfter)
	}
}

func TestNilStoreIsDisabled(t *testing.T) {
	var s *Store
	if s.Offer(export.Batch{UnixMs: 1}) {
		t.Fatal("nil store accepted a batch")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.ReleaseSession("x") != 0 {
		t.Fatal("nil store released series")
	}
	if st := s.State(); st.Enabled {
		t.Fatal("nil store reports enabled")
	}
	if s.HealthzLine() != "" {
		t.Fatal("nil store has a healthz line")
	}
	if _, err := s.Instant("x", time.Now()); err == nil {
		t.Fatal("nil store answered a query")
	}
}

func TestStoreStateAndExtent(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, false)
	defer s.Close()
	now := time.Now().UnixMilli()
	feed(t, s, export.Batch{UnixMs: now - 60_000, Gauges: map[string]float64{"g": 1}})
	feed(t, s, export.Batch{UnixMs: now, Gauges: map[string]float64{"g": 2}})
	st := s.State()
	if !st.Enabled || st.Samples != 2 || st.Series != 1 {
		t.Fatalf("state: %+v", st)
	}
	minMs, maxMs := s.Extent()
	if minMs != now-60_000 || maxMs != now {
		t.Fatalf("extent [%d,%d], want [%d,%d]", minMs, maxMs, now-60_000, now)
	}
	if s.HealthzLine() == "" {
		t.Fatal("no healthz line")
	}
}
