// Package tsdb is the durable half of the metrics story: an embedded
// time-series store that makes the process its own collector. Every
// other obs surface is either live-but-volatile (registry scrapes,
// health rings, SSE) or durable-but-raw (flight segments of simulation
// events); tsdb persists the *metrics* themselves, so "how did null
// depth drift over the last hour" survives a restart without an
// external Prometheus.
//
// Ingest rides the export pipeline: the store attaches to the
// Exporter as a local Tap and receives the same per-source delta
// batches the push leg ships — one snapshot-diff pass feeds both legs,
// and the registry is never walked twice. Batches land in a bounded
// queue (non-blocking Offer; a rejected batch's deltas fold into the
// next one, export's reconciliation invariant), are turned into
// samples — counters re-accumulated to cumulative totals, gauges as-is,
// histograms and spans as _count/_sum cumulative pairs — and appended
// to CRC32C-framed, size-rotated segment files, the same durability
// idiom as internal/obs/flight: group-committed writes, torn tails
// tolerated, corruption resynced past rather than fatal.
//
// Storage is tiered: raw samples are kept briefly, then downsampled
// into 10s and 1m resolution tiers with independent retention windows,
// so a day of history costs megabytes instead of gigabytes. A small
// query engine (instant + range, rate/increase/*_over_time functions,
// sum/avg/max/min cross-session roll-up) serves /query and
// /query_range in the Prometheus HTTP response shape, `pressctl
// query`, and the health dashboard's history panels.
//
// A nil *Store disables everything at the cost of a pointer check, the
// package-wide convention.
package tsdb

import (
	"encoding/binary"
	"hash/crc32"
	"math"
)

// Frame layout (little-endian), deliberately the flight recorder's:
//
//	offset size
//	0      2    magic 0x75 0xDB
//	2      1    frame kind
//	3      4    payload length
//	7      n    payload
//	7+n    4    CRC32C (Castagnoli) over kind+length+payload
//
// The magic differs from flight's so a tsdb segment misfiled into a
// flight dir (or vice versa) reads as zero frames, not garbage data.
const (
	magic0 = 0x75
	magic1 = 0xDB

	frameHeaderLen  = 7
	frameOverhead   = 11
	maxFramePayload = 1 << 24
)

// Frame kinds. Unknown kinds are skipped (forward compatibility).
const (
	// kindSeries declares a series within the current segment:
	// uvarint id, 1 byte series kind, uvarint-length session string,
	// uvarint-length name string. Every segment re-declares the series
	// it references, so segments stay individually decodable and
	// retention can delete any of them.
	kindSeries = 1
	// kindBlock is one timestamp's samples: uvarint unix-ms, uvarint
	// count, then count × (uvarint series id, 8-byte float64 bits).
	kindBlock = 2
	// kindWatermark records compaction progress in the *target* tier:
	// uvarint unix-ms up to which source windows have been compacted.
	// It exists so progress persists across restarts even through
	// windows that produced no samples.
	kindWatermark = 3
)

// Series kinds: how a series' values behave, which decides both the
// downsampling aggregate (last-cumulative vs mean) and what rate() may
// be applied to.
const (
	seriesCounter = 1 // monotone cumulative total (counters, hist/span _count/_sum)
	seriesGauge   = 2 // latest-value
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends one framed record to dst and returns the
// extended slice.
func appendFrame(dst []byte, kind byte, payload []byte) []byte {
	dst = append(dst, magic0, magic1, kind)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	crc := crc32.Update(0, castagnoli, dst[len(dst)-len(payload)-5:])
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// DecodeStats reports what a decode pass encountered; corruption is
// counted, never fatal.
type DecodeStats struct {
	Frames       int   `json:"frames"`
	Unknown      int   `json:"unknown,omitempty"`
	Corrupt      int   `json:"corrupt,omitempty"`
	Resyncs      int   `json:"resyncs,omitempty"`
	BytesSkipped int64 `json:"bytes_skipped,omitempty"`
	TornTail     bool  `json:"torn_tail,omitempty"`
}

func (s *DecodeStats) add(o DecodeStats) {
	s.Frames += o.Frames
	s.Unknown += o.Unknown
	s.Corrupt += o.Corrupt
	s.Resyncs += o.Resyncs
	s.BytesSkipped += o.BytesSkipped
	s.TornTail = s.TornTail || o.TornTail
}

// decodeFrames walks data emitting every valid frame. CRC mismatches
// and garbage are skipped with a resync scan for the next magic; a
// truncated final frame is reported as a torn tail — the expected
// signature of a kill -9 between group commits.
func decodeFrames(data []byte, emit func(kind byte, payload []byte) error) (DecodeStats, error) {
	var stats DecodeStats
	pos := 0
	resync := func(from int) int {
		stats.Resyncs++
		for i := from; i+1 < len(data); i++ {
			if data[i] == magic0 && data[i+1] == magic1 {
				stats.BytesSkipped += int64(i - pos)
				return i
			}
		}
		stats.BytesSkipped += int64(len(data) - pos)
		return len(data)
	}
	for pos < len(data) {
		if data[pos] != magic0 || pos+1 >= len(data) || data[pos+1] != magic1 {
			pos = resync(pos + 1)
			continue
		}
		if pos+frameHeaderLen > len(data) {
			stats.TornTail = true
			stats.BytesSkipped += int64(len(data) - pos)
			return stats, nil
		}
		kind := data[pos+2]
		n := int(binary.LittleEndian.Uint32(data[pos+3 : pos+7]))
		if n > maxFramePayload {
			stats.Corrupt++
			pos = resync(pos + 2)
			continue
		}
		end := pos + frameOverhead + n
		if end > len(data) {
			// Plausible header but the payload runs past the end:
			// either a torn tail or a corrupt length. Another magic
			// ahead means corrupt length; bare end means tail.
			next := resync(pos + 2)
			if next >= len(data) {
				stats.TornTail = true
				return stats, nil
			}
			stats.Corrupt++
			pos = next
			continue
		}
		want := binary.LittleEndian.Uint32(data[end-4 : end])
		if crc32.Checksum(data[pos+2:end-4], castagnoli) != want {
			stats.Corrupt++
			pos = resync(pos + 2)
			continue
		}
		stats.Frames++
		if err := emit(kind, data[pos+frameHeaderLen:end-4]); err != nil {
			return stats, err
		}
		pos = end
	}
	return stats, nil
}

// seriesKey identifies one series: which session's registry it came
// from ("" = the process root) and the metric name.
type seriesKey struct {
	session string
	name    string
}

// encodeSeriesDecl builds a kindSeries payload.
func encodeSeriesDecl(dst []byte, id uint32, kind byte, key seriesKey) []byte {
	dst = binary.AppendUvarint(dst, uint64(id))
	dst = append(dst, kind)
	dst = binary.AppendUvarint(dst, uint64(len(key.session)))
	dst = append(dst, key.session...)
	dst = binary.AppendUvarint(dst, uint64(len(key.name)))
	dst = append(dst, key.name...)
	return dst
}

func decodeSeriesDecl(p []byte) (id uint32, kind byte, key seriesKey, ok bool) {
	v, n := binary.Uvarint(p)
	if n <= 0 || v > math.MaxUint32 {
		return 0, 0, seriesKey{}, false
	}
	id = uint32(v)
	p = p[n:]
	if len(p) < 1 {
		return 0, 0, seriesKey{}, false
	}
	kind = p[0]
	p = p[1:]
	str := func() (string, bool) {
		l, n := binary.Uvarint(p)
		if n <= 0 || uint64(len(p)-n) < l {
			return "", false
		}
		s := string(p[n : n+int(l)])
		p = p[n+int(l):]
		return s, true
	}
	var okk bool
	if key.session, okk = str(); !okk {
		return 0, 0, seriesKey{}, false
	}
	if key.name, okk = str(); !okk {
		return 0, 0, seriesKey{}, false
	}
	return id, kind, key, true
}

// blockSample is one (series, value) pair inside a block frame.
type blockSample struct {
	id uint32
	v  float64
}

// encodeBlock builds a kindBlock payload for one timestamp.
func encodeBlock(dst []byte, unixMs int64, samples []blockSample) []byte {
	dst = binary.AppendUvarint(dst, uint64(unixMs))
	dst = binary.AppendUvarint(dst, uint64(len(samples)))
	for _, s := range samples {
		dst = binary.AppendUvarint(dst, uint64(s.id))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(s.v))
	}
	return dst
}

// decodeBlock walks a kindBlock payload, emitting each sample.
func decodeBlock(p []byte, emit func(id uint32, unixMs int64, v float64)) bool {
	t, n := binary.Uvarint(p)
	if n <= 0 {
		return false
	}
	p = p[n:]
	cnt, n := binary.Uvarint(p)
	if n <= 0 {
		return false
	}
	p = p[n:]
	for i := uint64(0); i < cnt; i++ {
		id, n := binary.Uvarint(p)
		if n <= 0 || id > math.MaxUint32 {
			return false
		}
		p = p[n:]
		if len(p) < 8 {
			return false
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(p[:8]))
		p = p[8:]
		emit(uint32(id), int64(t), v)
	}
	return true
}

func encodeWatermark(dst []byte, unixMs int64) []byte {
	return binary.AppendUvarint(dst, uint64(unixMs))
}

func decodeWatermark(p []byte) (int64, bool) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, false
	}
	return int64(v), true
}
