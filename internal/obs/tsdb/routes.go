package tsdb

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"press/internal/obs"
)

// RegisterRoutes mounts the query API on the live server:
//
//	GET /query?query=EXPR[&time=T]         instant vector
//	GET /query_range?query=EXPR&start=T&end=T&step=D
//	GET /tsdbz                             store state
//
// Responses use the Prometheus HTTP API shape
// ({"status":"success","data":{"resultType":...,"result":[...]}}), so
// Grafana's Prometheus datasource can point straight at the process.
// Times accept unix seconds (fractional ok) or RFC3339; step accepts a
// Go duration or seconds. No-ops when srv or store is nil.
func RegisterRoutes(srv *obs.Server, s *Store) {
	if srv == nil || s == nil {
		return
	}
	srv.TryHandle("/query", func(w http.ResponseWriter, r *http.Request) {
		q := r.FormValue("query")
		t, err := parseTime(r.FormValue("time"), time.Now())
		if err != nil {
			promError(w, r, http.StatusBadRequest, "bad_data", err.Error())
			return
		}
		samples, err := s.Instant(q, t)
		if err != nil {
			promError(w, r, http.StatusBadRequest, "bad_data", err.Error())
			return
		}
		promSuccess(w, r, "vector", vectorJSON(samples))
	})
	srv.TryHandle("/query_range", func(w http.ResponseWriter, r *http.Request) {
		q := r.FormValue("query")
		start, err1 := parseTime(r.FormValue("start"), time.Time{})
		end, err2 := parseTime(r.FormValue("end"), time.Time{})
		step, err3 := parseStep(r.FormValue("step"))
		for _, err := range []error{err1, err2, err3} {
			if err != nil {
				promError(w, r, http.StatusBadRequest, "bad_data", err.Error())
				return
			}
		}
		if start.IsZero() || end.IsZero() {
			promError(w, r, http.StatusBadRequest, "bad_data", "start and end are required")
			return
		}
		series, err := s.Range(q, start, end, step)
		if err != nil {
			promError(w, r, http.StatusBadRequest, "bad_data", err.Error())
			return
		}
		promSuccess(w, r, "matrix", matrixJSON(series))
	})
	srv.TryHandle("/tsdbz", func(w http.ResponseWriter, r *http.Request) {
		obs.ServeJSON(w, r, func(out io.Writer) error {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			return enc.Encode(s.State())
		})
	})
}

// parseTime accepts unix seconds (fractional ok) or RFC3339; empty
// returns def.
func parseTime(s string, def time.Time) (time.Time, error) {
	if s == "" {
		return def, nil
	}
	if sec, err := strconv.ParseFloat(s, 64); err == nil {
		return time.UnixMilli(int64(sec * 1000)), nil
	}
	if t, err := time.Parse(time.RFC3339Nano, s); err == nil {
		return t, nil
	}
	return time.Time{}, fmt.Errorf("bad time %q (want unix seconds or RFC3339)", s)
}

// parseStep accepts a Go duration ("15s") or a number of seconds.
func parseStep(s string) (time.Duration, error) {
	if s == "" {
		return 0, fmt.Errorf("step is required")
	}
	if d, err := time.ParseDuration(s); err == nil && d > 0 {
		return d, nil
	}
	if sec, err := strconv.ParseFloat(s, 64); err == nil && sec > 0 {
		return time.Duration(sec * float64(time.Second)), nil
	}
	return 0, fmt.Errorf("bad step %q (want duration or seconds)", s)
}

// promValue renders one [unix_seconds, "value"] pair — Prometheus
// stringifies sample values.
type promValue [2]json.RawMessage

func newPromValue(tMs int64, v float64) promValue {
	ts := strconv.FormatFloat(float64(tMs)/1000, 'f', 3, 64)
	val, _ := json.Marshal(strconv.FormatFloat(v, 'g', -1, 64))
	return promValue{json.RawMessage(ts), val}
}

func labelMap(l Labels) map[string]string {
	m := map[string]string{}
	if l.Name != "" {
		m["__name__"] = l.Name
	}
	if l.Session != "" {
		m["session"] = l.Session
	}
	return m
}

func vectorJSON(samples []Sample) any {
	type row struct {
		Metric map[string]string `json:"metric"`
		Value  promValue         `json:"value"`
	}
	rows := make([]row, 0, len(samples))
	for _, s := range samples {
		rows = append(rows, row{labelMap(s.Labels), newPromValue(s.T, s.V)})
	}
	return rows
}

func matrixJSON(series []Series) any {
	type row struct {
		Metric map[string]string `json:"metric"`
		Values []promValue       `json:"values"`
	}
	rows := make([]row, 0, len(series))
	for _, sr := range series {
		vals := make([]promValue, 0, len(sr.Points))
		for _, p := range sr.Points {
			vals = append(vals, newPromValue(p.T, p.V))
		}
		rows = append(rows, row{labelMap(sr.Labels), vals})
	}
	return rows
}

func promSuccess(w http.ResponseWriter, r *http.Request, resultType string, result any) {
	obs.ServeJSON(w, r, func(out io.Writer) error {
		return json.NewEncoder(out).Encode(map[string]any{
			"status": "success",
			"data": map[string]any{
				"resultType": resultType,
				"result":     result,
			},
		})
	})
}

func promError(w http.ResponseWriter, r *http.Request, code int, errType, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{
		"status":    "error",
		"errorType": errType,
		"error":     msg,
	})
}
