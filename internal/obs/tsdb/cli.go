package tsdb

import (
	"flag"
	"fmt"
	"io"
	"time"

	"press/internal/obs/export"
)

// CLI extends export.CLI with the embedded time-series store: -tsdb-dir
// and -tsdb-retention persist every metric the process produces into a
// local, queryable history. Drop-in replacement for export.CLI — this
// is the top of the telemetry CLI chain:
//
//	var tele tsdb.CLI
//	tele.Register(fs)
//	// after fs.Parse:
//	if err := tele.Start(os.Stderr); err != nil { ... }
//	defer tele.Finish(os.Stdout)
//
// The store taps the export pipeline's snapshot-diff collector for its
// samples. With -export-url set, the existing exporter feeds both the
// sink and the store; without it, Start brings up a local-only
// collector (nil sink) so -tsdb-dir works standalone. Without
// -tsdb-dir the store is nil and every hook stays a pointer check.
type CLI struct {
	export.CLI

	// TSDBDir roots the store's segment files. Empty disables it.
	TSDBDir string
	// TSDBRetention bounds the coarsest (1m) tier's history; the raw
	// and 10s tiers keep min(default, this). 0 = default 24h.
	TSDBRetention time.Duration

	store    *Store
	localExp *export.Exporter
}

// Register installs the export telemetry flags plus the tsdb flags.
func (c *CLI) Register(fs *flag.FlagSet) {
	c.CLI.Register(fs)
	fs.StringVar(&c.TSDBDir, "tsdb-dir", "",
		"persist metrics history into this directory (embedded TSDB; query with pressctl query or /query_range)")
	fs.DurationVar(&c.TSDBRetention, "tsdb-retention", 0,
		"metrics history retention for the 1m tier (default 24h; raw/10s tiers keep at most 30m/6h)")
}

// Start brings up the export/slo/... stack, then the store when
// -tsdb-dir is set. Like -export-url, -tsdb-dir forces a live registry
// into existence: persisting metrics is meaningless without one.
func (c *CLI) Start(logw io.Writer) error {
	if c.TSDBRetention < 0 {
		return fmt.Errorf("tsdb: negative -tsdb-retention %v", c.TSDBRetention)
	}
	if c.TSDBDir != "" {
		c.ForceRegistry = true
	}
	if err := c.CLI.Start(logw); err != nil {
		return err
	}
	if c.TSDBDir == "" {
		return nil
	}
	opt := Options{Dir: c.TSDBDir, Reg: c.Registry()}
	if c.TSDBRetention > 0 {
		opt.Retention1m = c.TSDBRetention
		if c.TSDBRetention < DefaultRetentionRaw {
			opt.RetentionRaw = c.TSDBRetention
		}
		if c.TSDBRetention < DefaultRetention10s {
			opt.Retention10s = c.TSDBRetention
		}
	}
	store, err := Open(opt)
	if err != nil {
		return fmt.Errorf("tsdb: open %s: %w", c.TSDBDir, err)
	}
	c.store = store
	exp := c.CLI.Exporter()
	if exp == nil {
		// No -export-url: run the snapshot-diff collector locally with
		// no sink; the store is its only subscriber.
		exp = export.New(c.Registry(), nil, export.Options{
			Interval: c.ExportInterval,
			Monitor:  c.Health(),
		})
		c.localExp = exp
	}
	exp.AttachTap(store)
	c.localExp.Start() // nil-safe; the embedded exporter is already started
	RegisterRoutes(c.Server(), store)
	if srv := c.Server(); srv != nil {
		srv.AddHealthz(store.HealthzLine)
	}
	if logger := c.Logger(); logger != nil {
		logger.Info("tsdb started", "dir", c.TSDBDir)
	}
	return nil
}

// Store returns the embedded time-series store, nil when -tsdb-dir was
// not given — callers hand it to the scope layer unconditionally.
func (c *CLI) Store() *Store { return c.store }

// Exporter returns the active snapshot-diff pipeline: the push
// exporter when -export-url is set, else the local-only collector the
// store rides, else nil. The scope layer attaches session sources to
// whichever exists.
func (c *CLI) Exporter() *export.Exporter {
	if e := c.CLI.Exporter(); e != nil {
		return e
	}
	return c.localExp
}

// Finish stops the collector legs (each delivers its final tail to the
// store), tears down the telemetry stack, then seals the store.
func (c *CLI) Finish(stdout io.Writer) error {
	var localErr error
	if c.localExp != nil {
		localErr = c.localExp.Stop()
		c.localExp = nil
	}
	err := c.CLI.Finish(stdout)
	closeErr := c.store.Close()
	c.store = nil
	if err != nil {
		return err
	}
	if localErr != nil {
		return localErr
	}
	return closeErr
}
