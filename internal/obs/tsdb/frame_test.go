package tsdb

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"press/internal/obs"
	"press/internal/obs/export"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf []byte
	buf = appendFrame(buf, kindSeries, encodeSeriesDecl(nil, 7, seriesCounter, seriesKey{"room1", "req_total"}))
	buf = appendFrame(buf, kindBlock, encodeBlock(nil, 1234, []blockSample{{7, 42.5}}))
	buf = appendFrame(buf, kindWatermark, encodeWatermark(nil, 5678))
	var got []struct {
		key seriesKey
		t   int64
		v   float64
	}
	wm, stats := scanFrames(buf, func(key seriesKey, kind byte, unixMs int64, v float64) {
		if kind != seriesCounter {
			t.Fatalf("kind = %d", kind)
		}
		got = append(got, struct {
			key seriesKey
			t   int64
			v   float64
		}{key, unixMs, v})
	})
	if stats.Frames != 3 || stats.Corrupt != 0 || stats.TornTail {
		t.Fatalf("stats: %+v", stats)
	}
	if wm != 5678 {
		t.Fatalf("wm = %d", wm)
	}
	if len(got) != 1 || got[0].key != (seriesKey{"room1", "req_total"}) || got[0].t != 1234 || got[0].v != 42.5 {
		t.Fatalf("samples: %+v", got)
	}
}

func TestDecodeResyncsPastCorruption(t *testing.T) {
	var buf []byte
	buf = appendFrame(buf, kindSeries, encodeSeriesDecl(nil, 1, seriesGauge, seriesKey{"", "g"}))
	mid := len(buf)
	buf = appendFrame(buf, kindBlock, encodeBlock(nil, 1000, []blockSample{{1, 1}}))
	buf = appendFrame(buf, kindBlock, encodeBlock(nil, 2000, []blockSample{{1, 2}}))
	// Corrupt a byte inside the first block's payload.
	buf[mid+frameHeaderLen] ^= 0xFF
	var pts []point
	_, stats := scanFrames(buf, func(_ seriesKey, _ byte, unixMs int64, v float64) {
		pts = append(pts, point{unixMs, v})
	})
	if stats.Corrupt != 1 || stats.Resyncs == 0 {
		t.Fatalf("stats: %+v", stats)
	}
	if len(pts) != 1 || pts[0].t != 2000 {
		t.Fatalf("surviving points: %+v", pts)
	}
}

// TestTornTailEveryTruncation is the kill -9 guarantee: a segment cut
// at ANY byte offset must decode its intact prefix — every complete
// frame survives, only the torn final frame is lost, and opening the
// store over the truncated file succeeds.
func TestTornTailEveryTruncation(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, false)
	base := time.Now().UnixMilli()
	for i := 0; i < 20; i++ {
		feed(t, s, export.Batch{
			UnixMs:   base + int64(i)*1000,
			Counters: map[string]int64{"req_total": 1},
			Gauges:   map[string]float64{"depth_db": float64(i)},
		})
	}
	s.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "raw", "*"+segSuffix))
	if len(segs) != 1 {
		t.Fatalf("want 1 raw segment, got %v", segs)
	}
	whole, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	fullSamples := 0
	scanFrames(whole, func(_ seriesKey, _ byte, _ int64, _ float64) { fullSamples++ })
	if fullSamples != 40 {
		t.Fatalf("full decode: %d samples, want 40", fullSamples)
	}

	prevSamples := -1
	for cut := 0; cut <= len(whole); cut++ {
		n := 0
		stats, _ := decodeFrames(whole[:cut], func(kind byte, payload []byte) error { return nil })
		n = stats.Frames
		if cut == len(whole) && stats.TornTail {
			t.Fatal("intact segment reported torn")
		}
		if cut < len(whole) && n > fullSamples {
			t.Fatalf("cut=%d decoded %d frames from truncated data", cut, n)
		}
		_ = prevSamples
		prevSamples = n
	}

	// A truncated store still opens and serves what survived.
	cut := len(whole) - len(whole)/3
	if err := os.WriteFile(segs[0], whole[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Options{Dir: dir, Reg: obs.NewRegistry()})
	if err != nil {
		t.Fatalf("open over torn tail: %v", err)
	}
	defer s2.Close()
	if !s2.openStats.TornTail && s2.openStats.Frames == 0 {
		t.Fatalf("open stats: %+v", s2.openStats)
	}
	samples, err := s2.Instant("req_total", time.UnixMilli(base+19_000))
	if err != nil || len(samples) != 1 {
		t.Fatalf("query over torn store: %v %+v", err, samples)
	}
	if samples[0].V <= 0 || samples[0].V > 20 {
		t.Fatalf("torn-store total = %v", samples[0].V)
	}
}
