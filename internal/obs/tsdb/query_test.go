package tsdb

import (
	"testing"
	"time"

	"press/internal/obs/export"
)

func TestParseExpr(t *testing.T) {
	good := []struct {
		in   string
		want expr
	}{
		{"req_total", expr{sel: selParams{name: "req_total"}}},
		{`req_total{session="room1"}`, expr{sel: selParams{name: "req_total", session: "room1", sessionFiltered: true}}},
		{"rate(req_total[1m])", expr{fn: "rate", sel: selParams{name: "req_total", windowMs: 60_000}}},
		{"increase(a_total[90s])", expr{fn: "increase", sel: selParams{name: "a_total", windowMs: 90_000}}},
		{"avg_over_time(depth_db[30s])", expr{fn: "avg_over_time", sel: selParams{name: "depth_db", windowMs: 30_000}}},
		{"sum(rate(req_total[1m]))", expr{agg: "sum", fn: "rate", sel: selParams{name: "req_total", windowMs: 60_000}}},
		{`max( rate( x{session="a b"}[10s] ) )`, expr{agg: "max", fn: "rate", sel: selParams{name: "x", session: "a b", sessionFiltered: true, windowMs: 10_000}}},
		{"quantile_over_time(0.99, lat[5m])", expr{fn: "quantile_over_time", param: 0.99, sel: selParams{name: "lat", windowMs: 300_000}}},
		{"avg(depth_db)", expr{agg: "avg", sel: selParams{name: "depth_db"}}},
		// Span-derived names carry slashes and dots.
		{"rate(controller/solve_count[1m])", expr{fn: "rate", sel: selParams{name: "controller/solve_count", windowMs: 60_000}}},
	}
	for _, tc := range good {
		e, err := parseExpr(tc.in)
		if err != nil {
			t.Errorf("parse(%q): %v", tc.in, err)
			continue
		}
		if *e != tc.want {
			t.Errorf("parse(%q) = %+v, want %+v", tc.in, *e, tc.want)
		}
	}

	bad := []string{
		"", "rate(x)", "x[1m]", "sum()", "rate(x[0s])", "rate(x[bogus])",
		`x{foo="y"}`, "x{session=}", `x{session="y"`, "sum(rate(x[1m])", "x junk",
		"quantile_over_time(x[1m])", "unknownfn(x[1m])x",
	}
	for _, in := range bad {
		if _, err := parseExpr(in); err == nil {
			t.Errorf("parse(%q) unexpectedly succeeded", in)
		}
	}
}

func TestExprStringRoundTrip(t *testing.T) {
	exprs := []string{
		"req_total",
		`req_total{session="room1"}`,
		"rate(req_total[1m0s])",
		`sum(rate(x{session="a b"}[10s]))`,
		"quantile_over_time(0.99, lat[5m0s])",
	}
	for _, in := range exprs {
		e, err := parseExpr(in)
		if err != nil {
			t.Fatalf("parse(%q): %v", in, err)
		}
		if got := e.String(); got != in {
			t.Errorf("String(parse(%q)) = %q", in, got)
		}
	}
}

func TestWithSession(t *testing.T) {
	got, err := WithSession("sum(rate(req_total[1m]))", "room-7")
	if err != nil {
		t.Fatal(err)
	}
	if want := `sum(rate(req_total{session="room-7"}[1m0s]))`; got != want {
		t.Errorf("WithSession = %q, want %q", got, want)
	}
	// Overrides an existing filter.
	got, err = WithSession(`x{session="old"}`, "new")
	if err != nil {
		t.Fatal(err)
	}
	if want := `x{session="new"}`; got != want {
		t.Errorf("WithSession override = %q, want %q", got, want)
	}
	if _, err := WithSession("rate(", "s"); err == nil {
		t.Error("bad expression accepted")
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{1, 2, 3, 4}
	if q := quantile(0, vals); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := quantile(1, vals); q != 4 {
		t.Fatalf("q1 = %v", q)
	}
	if q := quantile(0.5, vals); q != 2.5 {
		t.Fatalf("q0.5 = %v", q)
	}
}

func TestQueryFunctions(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, false)
	defer s.Close()
	base := time.Now().UnixMilli()/1000*1000 - 60_000
	// Gauge sawtooth 0..5, histogram-backed counter pair.
	for i := 0; i < 60; i++ {
		feed(t, s, export.Batch{
			UnixMs: base + int64(i)*1000,
			Gauges: map[string]float64{"saw": float64(i % 6)},
			Histograms: map[string]export.HistDelta{
				"solve_seconds": {Count: 2, Sum: 0.25},
			},
		})
	}
	end := time.UnixMilli(base + 59_000)

	cases := []struct {
		expr     string
		min, max float64
	}{
		{"max_over_time(saw[30s])", 5, 5},
		{"min_over_time(saw[30s])", 0, 0},
		{"avg_over_time(saw[30s])", 2, 3},
		{"quantile_over_time(1, saw[30s])", 5, 5},
		{"increase(solve_seconds_count[30s])", 55, 62},
		{"rate(solve_seconds_sum[30s])", 0.2, 0.3},
	}
	for _, tc := range cases {
		samples, err := s.Instant(tc.expr, end)
		if err != nil || len(samples) != 1 {
			t.Fatalf("%s: %v %+v", tc.expr, err, samples)
		}
		if samples[0].V < tc.min || samples[0].V > tc.max {
			t.Errorf("%s = %v, want [%v,%v]", tc.expr, samples[0].V, tc.min, tc.max)
		}
	}

	// Counter reset tolerance: rate must not go negative when the
	// cumulative value restarts.
	s.mu.Lock()
	sr := s.series[seriesKey{"", "solve_seconds_count"}]
	sr.cum = 0
	s.mu.Unlock()
	feed(t, s, export.Batch{
		UnixMs:     base + 61_000,
		Histograms: map[string]export.HistDelta{"solve_seconds": {Count: 4, Sum: 0.5}},
	})
	samples, err := s.Instant("increase(solve_seconds_count[20s])", time.UnixMilli(base+61_000))
	if err != nil || len(samples) != 1 {
		t.Fatalf("reset increase: %v %+v", err, samples)
	}
	if samples[0].V < 0 {
		t.Fatalf("negative increase across reset: %v", samples[0].V)
	}
}

func TestRangeStepLimit(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, false)
	defer s.Close()
	_, err := s.Range("x", time.UnixMilli(0), time.UnixMilli(1_000_000_000), time.Second)
	if err == nil {
		t.Fatal("giant range accepted")
	}
}

func TestSpanSamplesBecomeCountAndSeconds(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, false)
	defer s.Close()
	now := time.Now().UnixMilli()
	feed(t, s, export.Batch{
		UnixMs: now,
		Spans:  map[string]export.SpanDelta{"loop/apply": {Count: 3, TotalSeconds: 0.09}},
	})
	for _, q := range []string{"loop/apply_count", "loop/apply_seconds_total"} {
		samples, err := s.Instant(q, time.UnixMilli(now))
		if err != nil || len(samples) != 1 {
			t.Fatalf("%s: %v %+v", q, err, samples)
		}
	}
}
