package tsdb

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Resolution tiers. Raw samples arrive at the export interval
// (typically 1s); compaction folds them into 10s and 1m tiers with
// progressively longer retention.
const (
	tierRaw = iota
	tier10s
	tier1m
	numTiers
)

var tierNames = [numTiers]string{"raw", "10s", "1m"}

// tierStep is the downsampling window of each compacted tier in ms.
var tierStep = [numTiers]int64{0, 10_000, 60_000}

const segSuffix = ".tsq"

// segInfo is one sealed (immutable) segment's index entry: enough to
// decide overlap with a query range and to enforce retention without
// reading the file.
type segInfo struct {
	path       string
	seq        int
	minT, maxT int64 // unix ms; 0,0 when the segment holds no samples
	size       int64
}

// tierState is one tier's on-disk state: its sealed segment index plus
// the open segment being appended to (writers only).
type tierState struct {
	dir    string
	sealed []segInfo

	// Writer state (nil file in read-only mode).
	f        *os.File
	seq      int
	size     int64
	buf      []byte          // group-commit buffer: encoded frames not yet written
	declared map[uint32]bool // series declared in the open segment
	minT     int64
	maxT     int64
	openedAt time.Time
}

func segPath(dir string, seq int) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%05d%s", seq, segSuffix))
}

func parseSegSeq(name string) (int, bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), segSuffix))
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// listSegments returns a tier directory's segments in sequence order.
func listSegments(dir string) ([]segInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var segs []segInfo
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		seq, ok := parseSegSeq(ent.Name())
		if !ok {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue
		}
		segs = append(segs, segInfo{path: filepath.Join(dir, ent.Name()), seq: seq, size: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}

// scanSegment decodes one segment file, emitting every sample with its
// series identity resolved through the segment-local declaration table,
// and returns the max watermark frame seen plus decode stats. Decode
// never fails on corruption; only I/O errors are returned.
func scanSegment(path string, emit func(key seriesKey, kind byte, unixMs int64, v float64)) (wm int64, stats DecodeStats, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, stats, err
	}
	wm, stats = scanFrames(data, emit)
	return wm, stats, nil
}

// scanFrames is scanSegment over an in-memory byte run (also used for
// the unflushed group-commit buffer).
func scanFrames(data []byte, emit func(key seriesKey, kind byte, unixMs int64, v float64)) (wm int64, stats DecodeStats) {
	local := map[uint32]struct {
		key  seriesKey
		kind byte
	}{}
	stats, _ = decodeFrames(data, func(kind byte, payload []byte) error {
		switch kind {
		case kindSeries:
			if id, sk, key, ok := decodeSeriesDecl(payload); ok {
				local[id] = struct {
					key  seriesKey
					kind byte
				}{key, sk}
			} else {
				stats.Corrupt++
			}
		case kindBlock:
			if !decodeBlock(payload, func(id uint32, t int64, v float64) {
				if d, ok := local[id]; ok && emit != nil {
					emit(d.key, d.kind, t, v)
				}
			}) {
				stats.Corrupt++
			}
		case kindWatermark:
			if w, ok := decodeWatermark(payload); ok && w > wm {
				wm = w
			} else if !ok {
				stats.Corrupt++
			}
		default:
			stats.Unknown++
		}
		return nil
	})
	return wm, stats
}

// openWriter opens a fresh segment for appending. The previous process'
// last segment is always sealed as-is — appending after a torn tail
// would bury valid frames behind garbage.
func (ts *tierState) openWriter(now time.Time) error {
	seq := 1
	if n := len(ts.sealed); n > 0 {
		seq = ts.sealed[n-1].seq + 1
	}
	f, err := os.OpenFile(segPath(ts.dir, seq), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	ts.f = f
	ts.seq = seq
	ts.size = 0
	ts.buf = ts.buf[:0]
	ts.declared = map[uint32]bool{}
	ts.minT, ts.maxT = 0, 0
	ts.openedAt = now
	return nil
}

// note records a sample timestamp landing in the open segment.
func (ts *tierState) note(unixMs int64) {
	if ts.minT == 0 || unixMs < ts.minT {
		ts.minT = unixMs
	}
	if unixMs > ts.maxT {
		ts.maxT = unixMs
	}
}

// flush writes the group-commit buffer through to the file (no fsync —
// rotation and close sync; between those, the OS page cache is the
// bound on loss, same stance as flight).
func (ts *tierState) flush() error {
	if ts.f == nil || len(ts.buf) == 0 {
		return nil
	}
	n, err := ts.f.Write(ts.buf)
	ts.size += int64(n)
	ts.buf = ts.buf[:0]
	return err
}

// seal flushes, fsyncs, and closes the open segment, moving it to the
// sealed index. A segment that never saw a frame is deleted instead.
func (ts *tierState) seal() error {
	if ts.f == nil {
		return nil
	}
	err := ts.flush()
	if ts.size == 0 {
		ts.f.Close()
		os.Remove(ts.f.Name())
		ts.f = nil
		return err
	}
	if serr := ts.f.Sync(); err == nil {
		err = serr
	}
	if cerr := ts.f.Close(); err == nil {
		err = cerr
	}
	ts.sealed = append(ts.sealed, segInfo{
		path: ts.f.Name(), seq: ts.seq, minT: ts.minT, maxT: ts.maxT, size: ts.size,
	})
	ts.f = nil
	return err
}

// rotateIfNeeded seals and reopens the segment once it exceeds the size
// budget or has been open longer than maxAge. Age-based rotation exists
// for retention: only sealed segments can be deleted, so a slow tier
// must still seal often enough for its window to move.
func (ts *tierState) rotateIfNeeded(now time.Time, maxBytes int64, maxAge time.Duration) error {
	if ts.f == nil {
		return nil
	}
	if ts.size+int64(len(ts.buf)) < maxBytes && (ts.size == 0 || now.Sub(ts.openedAt) < maxAge) {
		return nil
	}
	if err := ts.seal(); err != nil {
		return err
	}
	return ts.openWriter(now)
}

// enforceRetention deletes sealed segments whose newest sample is older
// than the cutoff. Returns bytes and segments removed.
func (ts *tierState) enforceRetention(cutoffMs int64) (bytes int64, segs int) {
	keep := ts.sealed[:0]
	for _, s := range ts.sealed {
		if s.maxT != 0 && s.maxT < cutoffMs {
			os.Remove(s.path)
			bytes += s.size
			segs++
			continue
		}
		keep = append(keep, s)
	}
	ts.sealed = keep
	return bytes, segs
}

// diskBytes is the tier's current on-disk footprint (sealed + open).
func (ts *tierState) diskBytes() int64 {
	total := ts.size
	for _, s := range ts.sealed {
		total += s.size
	}
	return total
}

func (ts *tierState) segments() int {
	n := len(ts.sealed)
	if ts.f != nil {
		n++
	}
	return n
}
