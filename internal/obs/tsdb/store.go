package tsdb

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"press/internal/obs"
	"press/internal/obs/export"
	"press/internal/obs/names"
)

// Self-telemetry metric names (spellings owned by internal/obs/names):
// the store observes itself through the registry it stores.
const (
	CounterBatches          = names.TSDBBatches
	CounterSamples          = names.TSDBSamples
	CounterDropped          = names.TSDBDropped
	CounterSeriesRejected   = names.TSDBSeriesRejected
	CounterCompactions      = names.TSDBCompactions
	CounterSessionsReleased = names.TSDBSessionsReleased
	CounterCorruptFrames    = names.TSDBCorruptFrames
	GaugeSeries             = names.TSDBSeries
	GaugeDiskBytes          = names.TSDBDiskBytes
	GaugeSegments           = names.TSDBSegments
	HistCompactionSeconds   = names.TSDBCompactionSecs
)

// Defaults for Options.
const (
	DefaultRetentionRaw = 30 * time.Minute
	DefaultRetention10s = 6 * time.Hour
	DefaultRetention1m  = 24 * time.Hour

	DefaultSegmentBytes        = 4 << 20
	DefaultQueueCap            = 256
	DefaultMaxSeriesPerSession = 1024
	DefaultFlushInterval       = time.Second
	DefaultCompactInterval     = 5 * time.Second
	DefaultFlushTimeout        = 2 * time.Second

	// flushHighWater forces an inline flush when the group-commit
	// buffer outgrows it, bounding memory between flush ticks.
	flushHighWater = 256 << 10

	// compactGraceMs delays window compaction so a tick's stragglers
	// (batches queued but not yet applied) still land in the raw tier
	// before their window is folded.
	compactGraceMs = 2_000

	// maxPendingPoints bounds each series' per-tier compaction buffer;
	// beyond it the oldest points are compacted anyway next round, so
	// this only matters if the maintenance loop is starved.
	maxPendingPoints = 8192
)

// Options tunes a Store.
type Options struct {
	// Dir is the store root; tier subdirectories are created inside.
	Dir string
	// Reg receives the store's obs_tsdb_* self-telemetry (nil: none).
	Reg *obs.Registry
	// RetentionRaw/Retention10s/Retention1m bound each tier's history
	// (≤ 0: defaults 30m / 6h / 24h).
	RetentionRaw time.Duration
	Retention10s time.Duration
	Retention1m  time.Duration
	// SegmentBytes rotates segments past this size (≤ 0: 4 MiB).
	SegmentBytes int64
	// QueueCap bounds the ingest queue in batches (≤ 0: 256).
	QueueCap int
	// MaxSeriesPerSession caps series cardinality per session; samples
	// for series beyond it are rejected and counted (≤ 0: 1024).
	MaxSeriesPerSession int
	// FlushInterval is the group-commit cadence (≤ 0: 1s). Crash loss
	// is bounded by one interval of unflushed frames.
	FlushInterval time.Duration
	// CompactInterval is the downsampling/retention cadence (≤ 0: 5s).
	CompactInterval time.Duration
	// FlushTimeout bounds Close's final queue drain (≤ 0: 2s).
	FlushTimeout time.Duration
	// ReadOnly opens the store for queries only: no writers, no
	// background loops, no lock against a live writer (segment decode
	// tolerates a concurrently appending process).
	ReadOnly bool
}

func (o *Options) defaults() {
	if o.RetentionRaw <= 0 {
		o.RetentionRaw = DefaultRetentionRaw
	}
	if o.Retention10s <= 0 {
		o.Retention10s = DefaultRetention10s
	}
	if o.Retention1m <= 0 {
		o.Retention1m = DefaultRetention1m
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.QueueCap <= 0 {
		o.QueueCap = DefaultQueueCap
	}
	if o.MaxSeriesPerSession <= 0 {
		o.MaxSeriesPerSession = DefaultMaxSeriesPerSession
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = DefaultFlushInterval
	}
	if o.CompactInterval <= 0 {
		o.CompactInterval = DefaultCompactInterval
	}
	if o.FlushTimeout <= 0 {
		o.FlushTimeout = DefaultFlushTimeout
	}
}

// retention returns the per-tier retention windows.
func (o *Options) retention() [numTiers]time.Duration {
	return [numTiers]time.Duration{o.RetentionRaw, o.Retention10s, o.Retention1m}
}

// point is one sample: unix-ms timestamp and value.
type point struct {
	t int64
	v float64
}

// series is one live series' ingest-side state. Historical data lives
// in the segments; this exists to re-accumulate counter deltas and to
// stage points between compaction rounds.
type series struct {
	id   uint32
	kind byte
	cum  float64
	// pend[tierRaw] holds raw points awaiting 10s compaction;
	// pend[tier10s] holds 10s points awaiting 1m compaction.
	pend [2][]point
}

// Store is the embedded time-series database. All methods are safe for
// concurrent use and on a nil receiver (the disabled state).
type Store struct {
	opt Options

	q          chan export.Batch
	ingestLife obs.Lifecycle
	maintLife  obs.Lifecycle

	mu         sync.Mutex
	tiers      [numTiers]*tierState
	series     map[seriesKey]*series
	perSession map[string]int
	nextID     uint32
	wm         [numTiers]int64 // wm[tier10s], wm[tier1m]: compacted-up-to (unix ms)
	closed     bool
	openStats  DecodeStats

	batches  atomic.Int64
	samples  atomic.Int64
	dropped  atomic.Int64
	rejected atomic.Int64
	released atomic.Int64

	mBatches, mSamples, mDropped   *obs.Counter
	mRejected, mCompact, mReleased *obs.Counter
	mCorrupt                       *obs.Counter
	gSeries, gDiskBytes, gSegments *obs.Gauge
	hCompact                       *obs.Histogram
}

// Open opens (creating if needed) the store rooted at opt.Dir, replays
// the segment index, restores counter accumulations and compaction
// watermarks, and — unless ReadOnly — starts the ingest and
// maintenance loops. Decode problems in existing segments are counted
// (openStats, obs_tsdb_corrupt_frames_total), never fatal: the store
// is most needed right after the process died badly.
func Open(opt Options) (*Store, error) {
	if opt.Dir == "" {
		return nil, fmt.Errorf("tsdb: empty dir")
	}
	opt.defaults()
	s := &Store{
		opt:        opt,
		q:          make(chan export.Batch, opt.QueueCap),
		series:     map[seriesKey]*series{},
		perSession: map[string]int{},
	}
	if reg := opt.Reg; reg != nil && !opt.ReadOnly {
		s.mBatches = reg.Counter(CounterBatches)
		s.mSamples = reg.Counter(CounterSamples)
		s.mDropped = reg.Counter(CounterDropped)
		s.mRejected = reg.Counter(CounterSeriesRejected)
		s.mCompact = reg.Counter(CounterCompactions)
		s.mReleased = reg.Counter(CounterSessionsReleased)
		s.mCorrupt = reg.Counter(CounterCorruptFrames)
		s.gSeries = reg.Gauge(GaugeSeries)
		s.gDiskBytes = reg.Gauge(GaugeDiskBytes)
		s.gSegments = reg.Gauge(GaugeSegments)
		s.hCompact = reg.Histogram(HistCompactionSeconds,
			[]float64{0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1})
	}
	for t := 0; t < numTiers; t++ {
		dir := filepath.Join(opt.Dir, tierNames[t])
		if !opt.ReadOnly {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return nil, err
			}
		}
		s.tiers[t] = &tierState{dir: dir}
	}
	if err := s.replay(); err != nil {
		return nil, err
	}
	s.mCorrupt.Add(int64(s.openStats.Corrupt))
	if opt.ReadOnly {
		return s, nil
	}
	now := time.Now()
	for t := 0; t < numTiers; t++ {
		if err := s.tiers[t].openWriter(now); err != nil {
			return nil, err
		}
	}
	s.updateDiskGauges()
	s.ingestLife.Start(nil, s.ingestLoop)
	s.maintLife.Start(nil, s.maintLoop)
	return s, nil
}

// replay scans every tier's segments coarse-to-fine, building the
// sealed index ([minT,maxT] per segment), restoring compaction
// watermarks, refilling the not-yet-compacted staging buffers, and
// re-seeding counter accumulations from each counter series' newest
// surviving sample.
func (s *Store) replay() error {
	type lastVal struct {
		t int64
		v float64
	}
	last := map[seriesKey]lastVal{}
	// 1m first, then 10s, then raw: each tier's staging filter needs
	// the watermark of the tier above it.
	for _, t := range []int{tier1m, tier10s, tierRaw} {
		ts := s.tiers[t]
		segs, err := listSegments(ts.dir)
		if err != nil {
			return err
		}
		for i := range segs {
			seg := &segs[i]
			wm, stats, err := scanSegment(seg.path, func(key seriesKey, kind byte, unixMs int64, v float64) {
				seg.note2(unixMs)
				if kind == seriesCounter {
					if lv, ok := last[key]; !ok || unixMs >= lv.t {
						last[key] = lastVal{unixMs, v}
					}
				}
				switch t {
				case tierRaw:
					if unixMs > s.wm[tier10s] {
						s.stage(key, kind, tierRaw, point{unixMs, v})
					}
				case tier10s:
					if unixMs > s.wm[tier1m] {
						s.stage(key, kind, tier10s, point{unixMs, v})
					}
				}
			})
			if err != nil {
				return err
			}
			s.openStats.add(stats)
			if wm > s.wm[t] {
				s.wm[t] = wm
			}
		}
		ts.sealed = segs
	}
	// Staged points replayed out of segment order would confuse the
	// window folds; normalize.
	for _, sr := range s.series {
		for i := range sr.pend {
			sortPoints(sr.pend[i])
		}
	}
	for key, lv := range last {
		if sr := s.series[key]; sr != nil {
			sr.cum = lv.v
		} else if sr := s.getSeriesLocked(key, seriesCounter); sr != nil {
			sr.cum = lv.v
		}
	}
	return nil
}

// note2 folds a sample timestamp into a segInfo's [minT,maxT] during
// replay (the writer-side equivalent is tierState.note).
func (si *segInfo) note2(unixMs int64) {
	if si.minT == 0 || unixMs < si.minT {
		si.minT = unixMs
	}
	if unixMs > si.maxT {
		si.maxT = unixMs
	}
}

// stage adds a replayed point to the series' pending compaction buffer.
func (s *Store) stage(key seriesKey, kind byte, tier int, p point) {
	sr := s.series[key]
	if sr == nil {
		sr = s.getSeriesLocked(key, kind)
		if sr == nil {
			return
		}
	}
	if len(sr.pend[tier]) < maxPendingPoints {
		sr.pend[tier] = append(sr.pend[tier], p)
	}
}

func sortPoints(pts []point) {
	sort.Slice(pts, func(i, j int) bool { return pts[i].t < pts[j].t })
}

// Offer hands one delta batch to the store without blocking — the
// export.Tap contract. A full queue rejects the batch (counted in
// obs_tsdb_dropped_total); the exporter then keeps its tap baseline,
// so the deltas fold into the next offered batch and totals still
// reconcile. A nil or closed store rejects everything.
func (s *Store) Offer(b export.Batch) bool {
	if s == nil {
		return false
	}
	if s.ingestLife.Stopped() {
		// Shutdown tail delivery: the loops are gone, apply inline.
		s.applyBatch(b)
		return true
	}
	select {
	case s.q <- b:
		return true
	default:
		s.dropped.Add(1)
		s.mDropped.Inc()
		return false
	}
}

func (s *Store) ingestLoop(stop <-chan struct{}) {
	for {
		select {
		case b := <-s.q:
			s.applyBatch(b)
		case <-stop:
			// Drain what is queued, bounded: shutdown must not hang on
			// a pathological backlog.
			deadline := time.After(s.opt.FlushTimeout)
			for {
				select {
				case b := <-s.q:
					s.applyBatch(b)
				case <-deadline:
					return
				default:
					return
				}
			}
		}
	}
}

func (s *Store) maintLoop(stop <-chan struct{}) {
	t := time.NewTicker(s.opt.FlushInterval)
	defer t.Stop()
	lastCompact := time.Now()
	for {
		select {
		case <-stop:
			return
		case now := <-t.C:
			s.mu.Lock()
			for i := 0; i < numTiers; i++ {
				s.tiers[i].flush()
			}
			if now.Sub(lastCompact) >= s.opt.CompactInterval {
				lastCompact = now
				s.compactLocked(now)
				s.retainLocked(now)
			}
			s.updateDiskGauges()
			s.mu.Unlock()
		}
	}
}

// applyBatch turns one delta batch into raw-tier samples: counters (and
// histogram/span aggregates) re-accumulated into cumulative series,
// gauges as latest values — one block frame per batch.
func (s *Store) applyBatch(b export.Batch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || b.UnixMs <= 0 {
		return
	}
	raw := s.tiers[tierRaw]
	var block []blockSample
	add := func(name string, kind byte, v float64, isDelta bool, delta float64) {
		sr := s.getSeriesLocked(seriesKey{b.Session, name}, kind)
		if sr == nil {
			return
		}
		if isDelta {
			sr.cum += delta
			v = sr.cum
		}
		if raw.f != nil {
			if !raw.declared[sr.id] {
				raw.declared[sr.id] = true
				raw.buf = appendFrame(raw.buf, kindSeries,
					encodeSeriesDecl(nil, sr.id, sr.kind, seriesKey{b.Session, name}))
			}
			block = append(block, blockSample{sr.id, v})
		}
		if len(sr.pend[tierRaw]) < maxPendingPoints {
			sr.pend[tierRaw] = append(sr.pend[tierRaw], point{b.UnixMs, v})
		}
	}
	for name, d := range b.Counters {
		add(name, seriesCounter, 0, true, float64(d))
	}
	for name, v := range b.Gauges {
		add(name, seriesGauge, v, false, 0)
	}
	for name, h := range b.Histograms {
		add(name+"_count", seriesCounter, 0, true, float64(h.Count))
		add(name+"_sum", seriesCounter, 0, true, h.Sum)
	}
	for name, sp := range b.Spans {
		add(name+"_count", seriesCounter, 0, true, float64(sp.Count))
		add(name+"_seconds_total", seriesCounter, 0, true, sp.TotalSeconds)
	}
	if len(block) == 0 {
		return
	}
	raw.buf = appendFrame(raw.buf, kindBlock, encodeBlock(nil, b.UnixMs, block))
	raw.note(b.UnixMs)
	s.batches.Add(1)
	s.samples.Add(int64(len(block)))
	s.mBatches.Inc()
	s.mSamples.Add(int64(len(block)))
	if len(raw.buf) >= flushHighWater {
		raw.flush()
	}
	raw.rotateIfNeeded(time.Now(), s.opt.SegmentBytes, s.segMaxAge(tierRaw))
}

// segMaxAge is the age-based rotation bound: an eighth of the tier's
// retention (clamped to [1m, 1h]), so retention — which deletes whole
// sealed segments — tracks its window with bounded slop.
func (s *Store) segMaxAge(tier int) time.Duration {
	age := s.opt.retention()[tier] / 8
	if age < time.Minute {
		age = time.Minute
	}
	if age > time.Hour {
		age = time.Hour
	}
	return age
}

// getSeriesLocked finds or creates a series, enforcing the per-session
// cardinality budget. Caller holds mu.
func (s *Store) getSeriesLocked(key seriesKey, kind byte) *series {
	if sr := s.series[key]; sr != nil {
		return sr
	}
	if s.perSession[key.session] >= s.opt.MaxSeriesPerSession {
		s.rejected.Add(1)
		s.mRejected.Inc()
		return nil
	}
	s.nextID++
	sr := &series{id: s.nextID, kind: kind}
	s.series[key] = sr
	s.perSession[key.session]++
	s.gSeries.Set(float64(len(s.series)))
	return sr
}

// ReleaseSession drops a session's live ingest state — its series
// budget, counter accumulations, and staged points — and counts the
// release. The scope layer calls this when a session scope is removed
// or LRU-evicted; the session's history stays on disk until retention
// ages it out. Returns the number of series released. Nil-safe.
func (s *Store) ReleaseSession(id string) int {
	if s == nil || id == "" {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for key := range s.series {
		if key.session == id {
			delete(s.series, key)
			n++
		}
	}
	if n > 0 {
		delete(s.perSession, id)
		s.released.Add(1)
		s.mReleased.Inc()
		s.gSeries.Set(float64(len(s.series)))
	}
	return n
}

func (s *Store) updateDiskGauges() {
	var bytes int64
	segs := 0
	for i := 0; i < numTiers; i++ {
		bytes += s.tiers[i].diskBytes() + int64(len(s.tiers[i].buf))
		segs += s.tiers[i].segments()
	}
	s.gDiskBytes.Set(float64(bytes))
	s.gSegments.Set(float64(segs))
}

// Close stops ingest (draining the queue within FlushTimeout), stops
// maintenance, then flushes, fsyncs, and seals every tier. Idempotent;
// nil-safe.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.ingestLife.Stop()
	s.maintLife.Stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	for i := 0; i < numTiers; i++ {
		if serr := s.tiers[i].seal(); err == nil {
			err = serr
		}
	}
	s.updateDiskGauges()
	return err
}

// Dir returns the store root ("" on a nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.opt.Dir
}

// TierState is one tier's /tsdbz row.
type TierState struct {
	Tier        string  `json:"tier"`
	Segments    int     `json:"segments"`
	DiskBytes   int64   `json:"disk_bytes"`
	RetentionS  float64 `json:"retention_s"`
	WatermarkMs int64   `json:"watermark_unix_ms,omitempty"`
	MinMs       int64   `json:"min_unix_ms,omitempty"`
	MaxMs       int64   `json:"max_unix_ms,omitempty"`
}

// State is the /tsdbz document.
type State struct {
	Enabled   bool        `json:"enabled"`
	Dir       string      `json:"dir,omitempty"`
	ReadOnly  bool        `json:"read_only,omitempty"`
	Series    int         `json:"series"`
	Sessions  int         `json:"sessions"`
	QueueLen  int         `json:"queue_len"`
	QueueCap  int         `json:"queue_cap"`
	Batches   int64       `json:"batches"`
	Samples   int64       `json:"samples"`
	Dropped   int64       `json:"dropped"`
	Rejected  int64       `json:"rejected_series_samples,omitempty"`
	Released  int64       `json:"sessions_released,omitempty"`
	Tiers     []TierState `json:"tiers"`
	OpenStats DecodeStats `json:"open_decode,omitempty"`
}

// State snapshots the store. A nil store reports Enabled false.
func (s *Store) State() State {
	if s == nil {
		return State{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := State{
		Enabled:   true,
		Dir:       s.opt.Dir,
		ReadOnly:  s.opt.ReadOnly,
		Series:    len(s.series),
		Sessions:  len(s.perSession),
		QueueLen:  len(s.q),
		QueueCap:  s.opt.QueueCap,
		Batches:   s.batches.Load(),
		Samples:   s.samples.Load(),
		Dropped:   s.dropped.Load(),
		Rejected:  s.rejected.Load(),
		Released:  s.released.Load(),
		OpenStats: s.openStats,
	}
	ret := s.opt.retention()
	for i := 0; i < numTiers; i++ {
		ts := s.tiers[i]
		row := TierState{
			Tier:       tierNames[i],
			Segments:   ts.segments(),
			DiskBytes:  ts.diskBytes() + int64(len(ts.buf)),
			RetentionS: ret[i].Seconds(),
		}
		if i > 0 {
			row.WatermarkMs = s.wm[i]
		}
		for _, seg := range ts.sealed {
			if seg.minT != 0 && (row.MinMs == 0 || seg.minT < row.MinMs) {
				row.MinMs = seg.minT
			}
			if seg.maxT > row.MaxMs {
				row.MaxMs = seg.maxT
			}
		}
		if ts.minT != 0 && (row.MinMs == 0 || ts.minT < row.MinMs) {
			row.MinMs = ts.minT
		}
		if ts.maxT > row.MaxMs {
			row.MaxMs = ts.maxT
		}
		st.Tiers = append(st.Tiers, row)
	}
	return st
}

// Extent reports the store's overall data range in unix ms (0,0 when
// empty) — what `pressctl query` defaults its range to.
func (s *Store) Extent() (minMs, maxMs int64) {
	st := s.State()
	for _, t := range st.Tiers {
		if t.MinMs != 0 && (minMs == 0 || t.MinMs < minMs) {
			minMs = t.MinMs
		}
		if t.MaxMs > maxMs {
			maxMs = t.MaxMs
		}
	}
	return minMs, maxMs
}

// HealthzLine renders the one-line /healthz status. Empty on nil.
func (s *Store) HealthzLine() string {
	if s == nil {
		return ""
	}
	st := s.State()
	var bytes int64
	for _, t := range st.Tiers {
		bytes += t.DiskBytes
	}
	return fmt.Sprintf("tsdb: %d series, %d sessions, %.1f MiB, queue %d/%d, dropped %d",
		st.Series, st.Sessions, float64(bytes)/(1<<20), st.QueueLen, st.QueueCap, st.Dropped)
}
