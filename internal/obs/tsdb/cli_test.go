package tsdb

import (
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"press/internal/obs"
	"press/internal/obs/export"
)

func parseCLI(t *testing.T, args ...string) *CLI {
	t.Helper()
	var c CLI
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c.Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return &c
}

func TestCLIDisabledByDefault(t *testing.T) {
	c := parseCLI(t)
	if err := c.Start(io.Discard); err != nil {
		t.Fatal(err)
	}
	if c.Store() != nil {
		t.Error("store on without -tsdb-dir")
	}
	if c.Exporter() != nil {
		t.Error("exporter on without -export-url or -tsdb-dir")
	}
	if c.Registry() != nil {
		t.Error("registry on without any telemetry flag")
	}
	if err := c.Finish(io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestCLIBadFlags(t *testing.T) {
	c := parseCLI(t, "-tsdb-retention", "-1s")
	if err := c.Start(io.Discard); err == nil {
		c.Finish(io.Discard)
		t.Fatal("negative -tsdb-retention accepted")
	}
}

// TestCLITSDBDirAloneCollects is the standalone path: -tsdb-dir with
// no -export-url must force a registry, bring up the local-only
// collector, and persist metrics that a fresh read-only store (the
// pressctl query path) can answer after Finish.
func TestCLITSDBDirAloneCollects(t *testing.T) {
	dir := t.TempDir()
	c := parseCLI(t, "-tsdb-dir", dir, "-export-interval", "25ms")
	if err := c.Start(io.Discard); err != nil {
		t.Fatal(err)
	}
	if c.Registry() == nil {
		t.Fatal("-tsdb-dir alone must force a live registry")
	}
	if c.Store() == nil || c.Exporter() == nil {
		t.Fatal("store/local collector missing")
	}
	c.Exporter().SetRootSession("run-1")
	c.Registry().Counter("cli_tsdb_work_total").Add(9)
	c.Exporter().CollectNow()
	// Give the ingest loop a moment to apply the offered batch.
	deadline := time.Now().Add(2 * time.Second)
	for c.Store().State().Samples == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if err := c.Finish(io.Discard); err != nil {
		t.Fatal(err)
	}

	ro, err := Open(Options{Dir: dir, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	samples, err := ro.Instant(`cli_tsdb_work_total{session="run-1"}`, time.Now())
	if err != nil || len(samples) != 1 || samples[0].V != 9 {
		t.Fatalf("persisted total: %v %+v", err, samples)
	}
	// Self-telemetry landed in the same store.
	samples, err = ro.Instant(CounterSamples, time.Now())
	if err != nil || len(samples) == 0 {
		t.Fatalf("self-telemetry missing: %v %+v", err, samples)
	}
}

// TestCLIWithExportURLSharesOneCollector: with both flags set, the
// push exporter feeds the store as its tap — no second collector.
func TestCLIWithExportURLSharesOneCollector(t *testing.T) {
	received := make(chan struct{}, 64)
	collector := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		select {
		case received <- struct{}{}:
		default:
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	defer collector.Close()

	dir := t.TempDir()
	c := parseCLI(t, "-tsdb-dir", dir, "-export-url", collector.URL, "-export-interval", "25ms")
	if err := c.Start(io.Discard); err != nil {
		t.Fatal(err)
	}
	if c.localExp != nil {
		t.Fatal("local collector created despite -export-url")
	}
	c.Registry().Counter("both_legs_total").Add(3)
	c.Exporter().CollectNow()
	select {
	case <-received:
	case <-time.After(5 * time.Second):
		t.Fatal("push leg never delivered")
	}
	if err := c.Finish(io.Discard); err != nil {
		t.Fatal(err)
	}
	ro, err := Open(Options{Dir: dir, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	samples, err := ro.Instant("both_legs_total", time.Now())
	if err != nil || len(samples) != 1 || samples[0].V != 3 {
		t.Fatalf("store leg: %v %+v", err, samples)
	}
}

func TestRoutes(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s, err := Open(Options{Dir: dir, Reg: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	now := time.Now().UnixMilli()
	for i := 0; i < 30; i++ {
		s.applyBatch(export.Batch{
			UnixMs:   now - int64(30-i)*1000,
			Counters: map[string]int64{"route_hits_total": 1},
		})
	}
	srv := obs.NewServer(reg, nil)
	RegisterRoutes(srv, s)
	h := srv.Handler()

	get := func(url string) (int, string) {
		t.Helper()
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, url, nil))
		return rr.Code, rr.Body.String()
	}

	code, body := get("/query?query=route_hits_total")
	if code != http.StatusOK {
		t.Fatalf("/query: %d %s", code, body)
	}
	var doc struct {
		Status string `json:"status"`
		Data   struct {
			ResultType string `json:"resultType"`
			Result     []struct {
				Metric map[string]string `json:"metric"`
				Value  [2]any            `json:"value"`
			} `json:"result"`
		} `json:"data"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("bad json: %v in %s", err, body)
	}
	if doc.Status != "success" || doc.Data.ResultType != "vector" || len(doc.Data.Result) != 1 {
		t.Fatalf("doc: %+v", doc)
	}
	if doc.Data.Result[0].Metric["__name__"] != "route_hits_total" {
		t.Fatalf("metric: %+v", doc.Data.Result[0].Metric)
	}
	if doc.Data.Result[0].Value[1] != "30" {
		t.Fatalf("value: %+v", doc.Data.Result[0].Value)
	}

	start := float64(now-30_000) / 1000
	end := float64(now) / 1000
	code, body = get(
		"/query_range?query=rate(route_hits_total[30s])&step=5s&start=" +
			trimFloat(start) + "&end=" + trimFloat(end))
	if code != http.StatusOK || !strings.Contains(body, `"resultType":"matrix"`) {
		t.Fatalf("/query_range: %d %s", code, body)
	}
	if !strings.Contains(body, `"values":[[`) {
		t.Fatalf("/query_range no values: %s", body)
	}

	// Errors come back Prometheus-shaped with 400.
	code, body = get("/query?query=rate(broken")
	if code != http.StatusBadRequest || !strings.Contains(body, `"status":"error"`) {
		t.Fatalf("parse error: %d %s", code, body)
	}
	code, body = get("/query_range?query=x&step=5s")
	if code != http.StatusBadRequest {
		t.Fatalf("missing range params accepted: %d %s", code, body)
	}

	code, body = get("/tsdbz")
	if code != http.StatusOK || !strings.Contains(body, `"enabled": true`) {
		t.Fatalf("/tsdbz: %d %s", code, body)
	}
}

func trimFloat(v float64) string {
	b, _ := json.Marshal(v)
	return string(b)
}
