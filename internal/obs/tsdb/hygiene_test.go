package tsdb_test

import (
	"compress/gzip"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"press/internal/obs/scope"
	"press/internal/obs/tsdb"
)

// routeProbes classifies every route the full telemetry stack
// registers: how to drive it to a 200 JSON response, or why it is
// exempt from the JSON header conventions. The sweep walks
// Server.Patterns(), so a route added anywhere in the stack fails this
// test until it is classified here — no endpoint dodges the hygiene
// rules by being new.
var routeProbes = map[string]struct {
	path string // "" means GET the pattern itself
	skip string // non-empty: exempt, with the reason
}{
	"/metrics":             {skip: "Prometheus text exposition, not JSON"},
	"/metrics.json":        {},
	"/healthz":             {skip: "plain-text liveness probe"},
	"/buildz":              {},
	"/events":              {skip: "SSE stream, never completes"},
	"/debug/pprof/":        {skip: "stdlib pprof handlers"},
	"/debug/pprof/cmdline": {skip: "stdlib pprof handlers"},
	"/debug/pprof/profile": {skip: "stdlib pprof handlers"},
	"/debug/pprof/symbol":  {skip: "stdlib pprof handlers"},
	"/debug/pprof/trace":   {skip: "stdlib pprof handlers"},
	"/alerts":              {},
	"/health.json":         {},
	"/dashboard":           {skip: "HTML shell"},
	"/runs":                {},
	"/runs/":               {skip: "needs a run ID; the bare prefix 404s"},
	"/perfz":               {},
	"/profz":               {},
	"/tracez":              {},
	"/exportz":             {},
	"/tsdbz":               {},
	"/query":               {path: "/query?query=up"},
	"/query_range":         {path: "/query_range?query=up&start=0&end=60&step=30s"},
	"/sessions":            {},
	"/sessions/":           {skip: "needs a session ID; the bare prefix 404s"},
	// {id} routes are driven through the session the test opens.
	"/sessions/{id}/metrics.json": {path: "/sessions/s1/metrics.json"},
	"/sessions/{id}/metrics":      {skip: "Prometheus text exposition, not JSON"},
	"/sessions/{id}/healthz":      {path: "/sessions/s1/healthz"},
	"/sessions/{id}/tracez":       {path: "/sessions/s1/tracez"},
}

// TestRouteHygiene sweeps every registered route on a fully loaded
// telemetry server and asserts the JSON conventions: Cache-Control:
// no-store (live readings must not be cached) and honest gzip
// negotiation — compressed when the client accepts gzip, identity when
// it does not, including the RFC 7231 "gzip;q=0" refusal.
func TestRouteHygiene(t *testing.T) {
	dir := t.TempDir()
	var c tsdb.CLI
	fs := flag.NewFlagSet("hygiene", flag.ContinueOnError)
	c.Register(fs)
	if err := fs.Parse([]string{
		"-telemetry-addr", "127.0.0.1:0",
		"-alert-rules", "default",
		"-flight-dir", filepath.Join(dir, "runs"),
		"-phase-accounting",
		"-loop-trace",
		"-export-url", filepath.Join(dir, "export.ndjson"),
		"-tsdb-dir", filepath.Join(dir, "tsdb"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(io.Discard); err != nil {
		t.Fatal(err)
	}
	defer c.Finish(io.Discard)
	srv := c.Server()
	if srv == nil {
		t.Fatal("no server despite -telemetry-addr")
	}
	// The session layer's routes ride the same listener; one live
	// session backs the /sessions/{id}/... probes.
	set := scope.NewSet(c.Registry(), 4)
	defer set.Close()
	if err := set.RegisterRoutes(srv); err != nil {
		t.Fatal(err)
	}
	if _, err := set.Open("s1", scope.Config{Health: true, LoopTracing: true}); err != nil {
		t.Fatal(err)
	}

	h := srv.Handler()
	get := func(path, acceptEncoding string) *httptest.ResponseRecorder {
		t.Helper()
		req := httptest.NewRequest(http.MethodGet, path, nil)
		if acceptEncoding != "" {
			req.Header.Set("Accept-Encoding", acceptEncoding)
		}
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		return rr
	}

	for _, pattern := range srv.Patterns() {
		probe, known := routeProbes[pattern]
		if !known {
			t.Errorf("route %q is not classified in routeProbes — add it (and make it follow the JSON conventions)", pattern)
			continue
		}
		if probe.skip != "" {
			continue
		}
		path := probe.path
		if path == "" {
			path = pattern
		}

		plain := get(path, "")
		if plain.Code != http.StatusOK {
			t.Errorf("%s: status %d, want 200", path, plain.Code)
			continue
		}
		if ct := plain.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
			t.Errorf("%s: Content-Type %q, want application/json", path, ct)
		}
		if cc := plain.Header().Get("Cache-Control"); cc != "no-store" {
			t.Errorf("%s: Cache-Control %q, want no-store", path, cc)
		}
		if enc := plain.Header().Get("Content-Encoding"); enc != "" {
			t.Errorf("%s: unsolicited Content-Encoding %q", path, enc)
		}

		zipped := get(path, "gzip")
		if enc := zipped.Header().Get("Content-Encoding"); enc != "gzip" {
			t.Errorf("%s: Accept-Encoding gzip got Content-Encoding %q", path, enc)
		} else {
			zr, err := gzip.NewReader(zipped.Body)
			if err != nil {
				t.Errorf("%s: bad gzip body: %v", path, err)
			} else if _, err := io.ReadAll(zr); err != nil {
				t.Errorf("%s: gzip body truncated: %v", path, err)
			}
		}

		for _, refusal := range []string{"gzip;q=0", "gzip;Q=0.000", "identity"} {
			rr := get(path, refusal)
			if enc := rr.Header().Get("Content-Encoding"); enc != "" {
				t.Errorf("%s: Accept-Encoding %q got Content-Encoding %q, want identity", path, refusal, enc)
			}
		}
	}
}
