package tsdb

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// The query language is the useful corner of PromQL:
//
//	expr     := aggop '(' inner ')' | inner
//	aggop    := sum | avg | max | min          (cross-session roll-up)
//	inner    := rangefn '(' rangesel ')'
//	          | quantile_over_time '(' num ',' rangesel ')'
//	          | sel
//	rangefn  := rate | increase | avg_over_time | max_over_time | min_over_time
//	rangesel := sel '[' duration ']'
//	sel      := metric ( '{' session '=' '"' str '"' '}' )?
//
// e.g. `health_min_snr_db`, `rate(control_actuations_total[1m])`,
// `sum(rate(radio_csi_updates_total{session="room-3"}[30s]))`.

// selParams is a parsed vector selector.
type selParams struct {
	name            string
	session         string
	sessionFiltered bool
	windowMs        int64 // 0 for instant selectors
}

// expr is a parsed query: at most one aggregation over at most one
// range function over exactly one selector.
type expr struct {
	agg   string // "", sum, avg, max, min
	fn    string // "", rate, increase, *_over_time
	param float64
	sel   selParams
}

func (e *expr) selector() selParams { return e.sel }

var aggOps = map[string]bool{"sum": true, "avg": true, "max": true, "min": true}

var rangeFns = map[string]bool{
	"rate": true, "increase": true,
	"avg_over_time": true, "max_over_time": true, "min_over_time": true,
	"quantile_over_time": true,
}

type parser struct {
	in  string
	pos int
}

func parseExpr(s string) (*expr, error) {
	p := &parser{in: s}
	e, err := p.parse()
	if err != nil {
		return nil, fmt.Errorf("tsdb: parse %q: %w", s, err)
	}
	return e, nil
}

func (p *parser) parse() (*expr, error) {
	e := &expr{}
	p.skipSpace()
	ident := p.peekIdent()
	if aggOps[ident] && p.peekAfterIdent(ident) == '(' {
		e.agg = ident
		p.takeIdent(ident)
		p.expect('(')
		if err := p.parseInner(e); err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
	} else if err := p.parseInner(e); err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("trailing input at %d: %q", p.pos, p.in[p.pos:])
	}
	return e, nil
}

func (p *parser) parseInner(e *expr) error {
	p.skipSpace()
	ident := p.peekIdent()
	if rangeFns[ident] && p.peekAfterIdent(ident) == '(' {
		e.fn = ident
		p.takeIdent(ident)
		p.expect('(')
		if ident == "quantile_over_time" {
			q, err := p.number()
			if err != nil {
				return err
			}
			e.param = q
			if err := p.expect(','); err != nil {
				return err
			}
		}
		if err := p.parseSelector(&e.sel); err != nil {
			return err
		}
		if e.sel.windowMs == 0 {
			return fmt.Errorf("%s() needs a range selector like name[1m]", ident)
		}
		return p.expect(')')
	}
	if err := p.parseSelector(&e.sel); err != nil {
		return err
	}
	if e.sel.windowMs != 0 {
		return fmt.Errorf("range selector %s[...] needs a function (rate, avg_over_time, ...)", e.sel.name)
	}
	return nil
}

func (p *parser) parseSelector(sel *selParams) error {
	p.skipSpace()
	name := p.peekIdent()
	if name == "" {
		return fmt.Errorf("expected metric name at %d", p.pos)
	}
	p.takeIdent(name)
	sel.name = name
	p.skipSpace()
	if p.peek() == '{' {
		p.pos++
		p.skipSpace()
		label := p.peekIdent()
		if label != "session" {
			return fmt.Errorf("only the session label is matchable, got %q", label)
		}
		p.takeIdent(label)
		p.skipSpace()
		if err := p.expect('='); err != nil {
			return err
		}
		v, err := p.quoted()
		if err != nil {
			return err
		}
		sel.session = v
		sel.sessionFiltered = true
		p.skipSpace()
		if err := p.expect('}'); err != nil {
			return err
		}
	}
	p.skipSpace()
	if p.peek() == '[' {
		p.pos++
		start := p.pos
		for p.pos < len(p.in) && p.in[p.pos] != ']' {
			p.pos++
		}
		d, err := time.ParseDuration(strings.TrimSpace(p.in[start:p.pos]))
		if err != nil || d <= 0 {
			return fmt.Errorf("bad range duration %q", p.in[start:p.pos])
		}
		sel.windowMs = d.Milliseconds()
		return p.expect(']')
	}
	return nil
}

func (p *parser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos >= len(p.in) {
		return 0
	}
	return p.in[p.pos]
}

func isIdentChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case first:
		return false
	// Metric names from the registry can carry dots, slashes, and
	// dashes (span names especially); selectors must match them.
	case c >= '0' && c <= '9', c == '.', c == '/', c == '-':
		return true
	}
	return false
}

// peekIdent reads an identifier at the cursor without consuming it.
func (p *parser) peekIdent() string {
	i := p.pos
	if i >= len(p.in) || !isIdentChar(p.in[i], true) {
		return ""
	}
	for i < len(p.in) && isIdentChar(p.in[i], false) {
		i++
	}
	return p.in[p.pos:i]
}

// peekAfterIdent returns the first non-space byte after the identifier.
func (p *parser) peekAfterIdent(ident string) byte {
	i := p.pos + len(ident)
	for i < len(p.in) && (p.in[i] == ' ' || p.in[i] == '\t') {
		i++
	}
	if i >= len(p.in) {
		return 0
	}
	return p.in[i]
}

func (p *parser) takeIdent(ident string) { p.pos += len(ident) }

func (p *parser) expect(c byte) error {
	p.skipSpace()
	if p.peek() != c {
		return fmt.Errorf("expected %q at %d", string(c), p.pos)
	}
	p.pos++
	return nil
}

func (p *parser) number() (float64, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.in) && (p.in[p.pos] == '.' || p.in[p.pos] == '-' ||
		(p.in[p.pos] >= '0' && p.in[p.pos] <= '9')) {
		p.pos++
	}
	v, err := strconv.ParseFloat(p.in[start:p.pos], 64)
	if err != nil {
		return 0, fmt.Errorf("bad number at %d", start)
	}
	return v, nil
}

// String renders the canonical spelling of a parsed query, the inverse
// of parseExpr.
func (e *expr) String() string {
	var sb strings.Builder
	if e.agg != "" {
		sb.WriteString(e.agg)
		sb.WriteByte('(')
	}
	if e.fn != "" {
		sb.WriteString(e.fn)
		sb.WriteByte('(')
		if e.fn == "quantile_over_time" {
			sb.WriteString(strconv.FormatFloat(e.param, 'g', -1, 64))
			sb.WriteString(", ")
		}
	}
	sb.WriteString(e.sel.name)
	if e.sel.sessionFiltered {
		fmt.Fprintf(&sb, "{session=%q}", e.sel.session)
	}
	if e.sel.windowMs != 0 {
		fmt.Fprintf(&sb, "[%s]", time.Duration(e.sel.windowMs)*time.Millisecond)
	}
	if e.fn != "" {
		sb.WriteByte(')')
	}
	if e.agg != "" {
		sb.WriteByte(')')
	}
	return sb.String()
}

// WithSession returns exprStr rewritten so its selector filters on the
// given session, overriding any filter already present — how `pressctl
// query -session` composes with a bare expression. The expression must
// parse; the rewritten canonical form is returned.
func WithSession(exprStr, session string) (string, error) {
	e, err := parseExpr(exprStr)
	if err != nil {
		return "", err
	}
	e.sel.session = session
	e.sel.sessionFiltered = true
	return e.String(), nil
}

func (p *parser) quoted() (string, error) {
	p.skipSpace()
	if p.peek() != '"' {
		return "", fmt.Errorf("expected quoted string at %d", p.pos)
	}
	p.pos++
	var sb strings.Builder
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if c == '\\' && p.pos+1 < len(p.in) {
			sb.WriteByte(p.in[p.pos+1])
			p.pos += 2
			continue
		}
		if c == '"' {
			p.pos++
			return sb.String(), nil
		}
		sb.WriteByte(c)
		p.pos++
	}
	return "", fmt.Errorf("unterminated string")
}
