package tsdb

import (
	"testing"
	"time"

	"press/internal/obs"
	"press/internal/obs/export"
)

// BenchmarkNilStoreOffer is the disabled convention: every store hook
// on a nil *Store must cost a pointer check and nothing else (0
// allocs/op, gate-enforced) — the proof that a binary run without
// -tsdb-dir pays nothing for the store's existence.
func BenchmarkNilStoreOffer(b *testing.B) {
	var s *Store
	batch := export.Batch{UnixMs: 1, Counters: map[string]int64{"x_total": 1}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Offer(batch)
		s.ReleaseSession("gone")
	}
}

// BenchmarkStoreApplyBatch is the enabled reference cost of ingesting
// one delta batch with a representative series population: series
// lookup, cumulative accumulation, frame encoding into the
// group-commit buffer.
func BenchmarkStoreApplyBatch(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(Options{Dir: dir, Reg: obs.NewRegistry(), FlushInterval: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	batch := export.Batch{
		UnixMs: time.Now().UnixMilli(),
		Counters: map[string]int64{
			"bench_a_total": 1, "bench_b_total": 2, "bench_c_total": 3, "bench_d_total": 4,
		},
		Gauges: map[string]float64{
			"bench_g1": 1.5, "bench_g2": 2.5, "bench_g3": 3.5, "bench_g4": 4.5,
		},
		Histograms: map[string]export.HistDelta{
			"bench_h": {Count: 3, Sum: 0.5},
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		batch.UnixMs++
		s.applyBatch(batch)
		// Keep the group-commit buffer from growing unboundedly while
		// still charging the encode cost.
		if len(s.tiers[tierRaw].buf) > flushHighWater {
			s.mu.Lock()
			s.tiers[tierRaw].buf = s.tiers[tierRaw].buf[:0]
			s.mu.Unlock()
		}
	}
}

// BenchmarkInstantQuery is the read-side reference: parse + select +
// evaluate one rate() over a minute of 1s samples.
func BenchmarkInstantQuery(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(Options{Dir: dir, Reg: obs.NewRegistry(), FlushInterval: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	base := time.Now().UnixMilli()
	for i := 0; i < 60; i++ {
		s.applyBatch(export.Batch{
			UnixMs:   base + int64(i)*1000,
			Counters: map[string]int64{"bench_q_total": 2},
		})
	}
	s.mu.Lock()
	s.tiers[tierRaw].flush()
	s.mu.Unlock()
	end := time.UnixMilli(base + 59_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Instant("rate(bench_q_total[1m])", end); err != nil {
			b.Fatal(err)
		}
	}
}
