package tsdb

import (
	"time"
)

// compactLocked folds completed windows of staged points into the
// coarser tiers: raw → 10s, then 10s → 1m. Counters downsample to the
// window's last cumulative value (rate() over the coarse tier stays
// exact); gauges downsample to the window mean. Progress is persisted
// as watermark frames in the target tier, so a restart neither
// re-compacts nor skips windows. Caller holds mu.
func (s *Store) compactLocked(now time.Time) {
	start := time.Now()
	worked := false
	for _, target := range []int{tier10s, tier1m} {
		if s.compactTierLocked(now, target) {
			worked = true
		}
	}
	if worked {
		s.mCompact.Inc()
		s.hCompact.Observe(time.Since(start).Seconds())
	}
}

func (s *Store) compactTierLocked(now time.Time, target int) bool {
	src := target - 1
	step := tierStep[target]
	// Only windows that ended at least a grace period ago are folded,
	// so queued-but-unapplied samples still reach their window.
	limit := (now.UnixMilli() - compactGraceMs) / step * step
	if limit <= s.wm[target] {
		return false
	}
	ts := s.tiers[target]
	if ts.f == nil {
		return false
	}
	// windowEnd → samples, so each window becomes one block frame.
	type agg struct {
		sr    *series
		key   seriesKey
		last  point
		sum   float64
		count int
	}
	windows := map[int64][]agg{}
	for key, sr := range s.series {
		pts := sr.pend[src]
		if len(pts) == 0 {
			continue
		}
		keep := pts[:0]
		var cur *agg
		var curEnd int64
		flush := func() {
			if cur == nil {
				return
			}
			windows[curEnd] = append(windows[curEnd], *cur)
			cur = nil
		}
		for _, p := range pts {
			if p.t > limit {
				keep = append(keep, p)
				continue
			}
			wEnd := (p.t-1)/step*step + step // window (wEnd-step, wEnd]
			if cur == nil || wEnd != curEnd {
				flush()
				cur = &agg{sr: sr, key: key}
				curEnd = wEnd
			}
			if cur.last.t <= p.t {
				cur.last = p
			}
			cur.sum += p.v
			cur.count++
		}
		flush()
		sr.pend[src] = keep
	}
	ends := make([]int64, 0, len(windows))
	for wEnd := range windows {
		ends = append(ends, wEnd)
	}
	sortInt64(ends)
	for _, wEnd := range ends {
		var block []blockSample
		for _, a := range windows[wEnd] {
			v := a.last.v
			if a.sr.kind == seriesGauge && a.count > 0 {
				v = a.sum / float64(a.count)
			}
			if !ts.declared[a.sr.id] {
				ts.declared[a.sr.id] = true
				ts.buf = appendFrame(ts.buf, kindSeries,
					encodeSeriesDecl(nil, a.sr.id, a.sr.kind, a.key))
			}
			block = append(block, blockSample{a.sr.id, v})
			// 10s output is 1m input.
			if target == tier10s && len(a.sr.pend[tier10s]) < maxPendingPoints {
				a.sr.pend[tier10s] = append(a.sr.pend[tier10s], point{wEnd, v})
			}
		}
		if len(block) > 0 {
			ts.buf = appendFrame(ts.buf, kindBlock, encodeBlock(nil, wEnd, block))
			ts.note(wEnd)
		}
	}
	s.wm[target] = limit
	ts.buf = appendFrame(ts.buf, kindWatermark, encodeWatermark(nil, limit))
	ts.flush()
	ts.rotateIfNeeded(now, s.opt.SegmentBytes, s.segMaxAge(target))
	return true
}

// retainLocked deletes sealed segments older than each tier's
// retention window. Caller holds mu.
func (s *Store) retainLocked(now time.Time) {
	ret := s.opt.retention()
	for i := 0; i < numTiers; i++ {
		cutoff := now.Add(-ret[i]).UnixMilli()
		s.tiers[i].enforceRetention(cutoff)
	}
}

func sortInt64(v []int64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
