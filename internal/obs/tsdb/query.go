package tsdb

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// DefaultLookback is how far an instant vector selector looks back for
// the latest sample — generous enough to bridge the 1m tier.
const DefaultLookback = 5 * time.Minute

// Labels identify one result series.
type Labels struct {
	Name    string `json:"__name__,omitempty"`
	Session string `json:"session,omitempty"`
}

// Sample is one instant-query result.
type Sample struct {
	Labels Labels
	T      int64 // unix ms
	V      float64
}

// Series is one range-query result: a labelled point list.
type Series struct {
	Labels Labels
	Points []Point
}

// Point is one (timestamp, value) pair in a query result.
type Point struct {
	T int64 // unix ms
	V float64
}

// rawSeries is one selected series with its merged cross-tier points.
type rawSeries struct {
	key    seriesKey
	kind   byte
	points []point
}

// selectRange gathers every series matching name (and, when filtered,
// session) with its points over [fromMs, toMs], merging tiers: raw
// where it survives, 10s before that, 1m before that — finest
// available data wins at every instant.
func (s *Store) selectRange(name, session string, filtered bool, fromMs, toMs int64) []rawSeries {
	if s == nil || fromMs > toMs {
		return nil
	}
	// Snapshot what to read under the lock; decode outside it. Sealed
	// segments are immutable; the open segment only grows, and the
	// decoder treats a mid-write tail as torn — so reading the file
	// after releasing the lock is safe.
	type tierRead struct {
		paths []string
		buf   []byte
	}
	var reads [numTiers]tierRead
	s.mu.Lock()
	for i := 0; i < numTiers; i++ {
		ts := s.tiers[i]
		for _, seg := range ts.sealed {
			if seg.minT == 0 || seg.maxT < fromMs || seg.minT > toMs {
				continue
			}
			reads[i].paths = append(reads[i].paths, seg.path)
		}
		if ts.f != nil && ts.size > 0 {
			reads[i].paths = append(reads[i].paths, ts.f.Name())
		}
		if len(ts.buf) > 0 {
			reads[i].buf = append([]byte(nil), ts.buf...)
		}
	}
	s.mu.Unlock()

	match := func(key seriesKey) bool {
		if key.name != name {
			return false
		}
		return !filtered || key.session == session
	}
	// Per tier, per series: collected points in range.
	type acc struct {
		kind byte
		pts  [numTiers][]point
	}
	found := map[seriesKey]*acc{}
	for i := 0; i < numTiers; i++ {
		emit := func(key seriesKey, kind byte, t int64, v float64) {
			if t < fromMs || t > toMs || !match(key) {
				return
			}
			a := found[key]
			if a == nil {
				a = &acc{kind: kind}
				found[key] = a
			}
			a.pts[i] = append(a.pts[i], point{t, v})
		}
		for _, p := range reads[i].paths {
			scanSegment(p, emit)
		}
		if len(reads[i].buf) > 0 {
			scanFrames(reads[i].buf, emit)
		}
	}
	var out []rawSeries
	for key, a := range found {
		out = append(out, rawSeries{key: key, kind: a.kind, points: mergeTiers(a.pts)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].key.session != out[j].key.session {
			return out[i].key.session < out[j].key.session
		}
		return out[i].key.name < out[j].key.name
	})
	return out
}

// mergeTiers combines one series' per-tier points: all raw points, 10s
// points only before the first raw point, 1m points only before the
// first 10s-or-raw point. The result is sorted and de-duplicated.
func mergeTiers(pts [numTiers][]point) []point {
	for i := range pts {
		sortPoints(pts[i])
	}
	cut := int64(math.MaxInt64)
	var merged []point
	for _, tier := range []int{tierRaw, tier10s, tier1m} {
		for _, p := range pts[tier] {
			if p.t < cut {
				merged = append(merged, p)
			}
		}
		if len(pts[tier]) > 0 && pts[tier][0].t < cut {
			cut = pts[tier][0].t
		}
	}
	sortPoints(merged)
	// Collapse duplicate timestamps (flush/replay overlap): keep the
	// last written value.
	out := merged[:0]
	for _, p := range merged {
		if n := len(out); n > 0 && out[n-1].t == p.t {
			out[n-1] = p
			continue
		}
		out = append(out, p)
	}
	return out
}

// Instant evaluates expr at time t, returning a vector of samples.
func (s *Store) Instant(expr string, t time.Time) ([]Sample, error) {
	if s == nil {
		return nil, fmt.Errorf("tsdb: store disabled")
	}
	ast, err := parseExpr(expr)
	if err != nil {
		return nil, err
	}
	return s.eval(ast, t.UnixMilli())
}

// Range evaluates expr at each step across [start, end], returning a
// matrix of series.
func (s *Store) Range(expr string, start, end time.Time, step time.Duration) ([]Series, error) {
	if s == nil {
		return nil, fmt.Errorf("tsdb: store disabled")
	}
	if step <= 0 {
		return nil, fmt.Errorf("tsdb: non-positive step %v", step)
	}
	startMs, endMs := start.UnixMilli(), end.UnixMilli()
	if endMs < startMs {
		return nil, fmt.Errorf("tsdb: range end before start")
	}
	if (endMs-startMs)/step.Milliseconds() > 11_000 {
		return nil, fmt.Errorf("tsdb: range of %d steps exceeds the 11000-step limit; widen -step",
			(endMs-startMs)/step.Milliseconds())
	}
	ast, err := parseExpr(expr)
	if err != nil {
		return nil, err
	}
	// One selection pass over the widened window feeds every step.
	data := s.evalData(ast, startMs, endMs)
	var out []Series
	idx := map[Labels]int{}
	for ts := startMs; ts <= endMs; ts += step.Milliseconds() {
		samples := evalAt(ast, data, ts)
		for _, sm := range samples {
			i, ok := idx[sm.Labels]
			if !ok {
				i = len(out)
				idx[sm.Labels] = i
				out = append(out, Series{Labels: sm.Labels})
			}
			out[i].Points = append(out[i].Points, Point{ts, sm.V})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Labels.Session != out[j].Labels.Session {
			return out[i].Labels.Session < out[j].Labels.Session
		}
		return out[i].Labels.Name < out[j].Labels.Name
	})
	return out, nil
}

// eval runs one instant evaluation (selection + evaluation).
func (s *Store) eval(e *expr, tMs int64) ([]Sample, error) {
	data := s.evalData(e, tMs, tMs)
	return evalAt(e, data, tMs), nil
}

// evalData selects the series an expression needs to evaluate over
// [startMs, endMs]: the selector's window (or the instant lookback)
// widens the read range.
func (s *Store) evalData(e *expr, startMs, endMs int64) []rawSeries {
	sel := e.selector()
	widen := sel.windowMs
	if widen == 0 {
		widen = DefaultLookback.Milliseconds()
	}
	return s.selectRange(sel.name, sel.session, sel.sessionFiltered, startMs-widen, endMs)
}

// evalAt evaluates the expression tree at one instant over preselected
// data.
func evalAt(e *expr, data []rawSeries, tMs int64) []Sample {
	var out []Sample
	sel := e.selector()
	for _, rs := range data {
		var v float64
		var ok bool
		if e.fn == "" {
			v, ok = lastBefore(rs.points, tMs, DefaultLookback.Milliseconds())
		} else {
			v, ok = applyFunc(e.fn, e.param, rs.points, tMs, sel.windowMs)
		}
		if !ok {
			continue
		}
		out = append(out, Sample{
			Labels: Labels{Name: labelName(e, sel.name), Session: rs.key.session},
			T:      tMs,
			V:      v,
		})
	}
	if e.agg != "" {
		out = aggregate(e.agg, out, tMs)
	}
	return out
}

// labelName renders the result's __name__: the metric for a bare
// selector, fn(metric) for function results (aggregation drops it).
func labelName(e *expr, name string) string {
	if e.fn == "" {
		return name
	}
	return e.fn + "(" + name + ")"
}

// lastBefore finds the newest point at or before tMs within lookback.
func lastBefore(pts []point, tMs, lookbackMs int64) (float64, bool) {
	i := sort.Search(len(pts), func(i int) bool { return pts[i].t > tMs })
	if i == 0 {
		return 0, false
	}
	p := pts[i-1]
	if tMs-p.t > lookbackMs {
		return 0, false
	}
	return p.v, true
}

// window returns the points in (tMs-windowMs, tMs].
func window(pts []point, tMs, windowMs int64) []point {
	lo := sort.Search(len(pts), func(i int) bool { return pts[i].t > tMs-windowMs })
	hi := sort.Search(len(pts), func(i int) bool { return pts[i].t > tMs })
	return pts[lo:hi]
}

// applyFunc evaluates one range function over a series' window.
func applyFunc(fn string, param float64, pts []point, tMs, windowMs int64) (float64, bool) {
	w := window(pts, tMs, windowMs)
	if len(w) == 0 {
		return 0, false
	}
	switch fn {
	case "rate", "increase":
		if len(w) < 2 {
			return 0, false
		}
		// Reset-aware: a cumulative total that went backwards means the
		// producer restarted; the post-reset value is all new increase.
		inc := 0.0
		for i := 1; i < len(w); i++ {
			if d := w[i].v - w[i-1].v; d >= 0 {
				inc += d
			} else {
				inc += w[i].v
			}
		}
		if fn == "increase" {
			return inc, true
		}
		span := float64(w[len(w)-1].t-w[0].t) / 1000
		if span <= 0 {
			return 0, false
		}
		return inc / span, true
	case "avg_over_time":
		sum := 0.0
		for _, p := range w {
			sum += p.v
		}
		return sum / float64(len(w)), true
	case "max_over_time":
		m := w[0].v
		for _, p := range w[1:] {
			m = math.Max(m, p.v)
		}
		return m, true
	case "min_over_time":
		m := w[0].v
		for _, p := range w[1:] {
			m = math.Min(m, p.v)
		}
		return m, true
	case "quantile_over_time":
		vals := make([]float64, len(w))
		for i, p := range w {
			vals[i] = p.v
		}
		sort.Float64s(vals)
		return quantile(param, vals), true
	}
	return 0, false
}

// quantile interpolates like Prometheus' quantile_over_time.
func quantile(q float64, sorted []float64) float64 {
	if len(sorted) == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		return math.Inf(-1)
	}
	if q > 1 {
		return math.Inf(+1)
	}
	n := float64(len(sorted))
	rank := q * (n - 1)
	lower := int(math.Floor(rank))
	upper := int(math.Ceil(rank))
	if lower == upper {
		return sorted[lower]
	}
	frac := rank - float64(lower)
	return sorted[lower]*(1-frac) + sorted[upper]*frac
}

// aggregate rolls a vector up across sessions: sum/avg/max/min. The
// result carries empty labels, Prometheus-style.
func aggregate(op string, in []Sample, tMs int64) []Sample {
	if len(in) == 0 {
		return nil
	}
	acc := in[0].V
	for _, sm := range in[1:] {
		switch op {
		case "sum", "avg":
			acc += sm.V
		case "max":
			acc = math.Max(acc, sm.V)
		case "min":
			acc = math.Min(acc, sm.V)
		}
	}
	if op == "avg" {
		acc /= float64(len(in))
	}
	return []Sample{{Labels: Labels{}, T: tMs, V: acc}}
}
