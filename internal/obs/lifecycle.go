package obs

import "sync"

// Lifecycle is the shared start/stop state machine behind every
// background sampler in the telemetry stack (obs.Recorder,
// health.Monitor, perf.Sampler, flight.Recorder's group-commit loop,
// prof's phase-cost flusher). Each of those used to hand-roll the same
// pair of sync.Onces with subtly different edge-case behaviour; this
// type makes the contract uniform:
//
//   - Start runs at most once; later calls are no-ops.
//   - Stop is idempotent, waits for the background goroutine to exit,
//     and is safe even when Start was never called.
//   - Start after Stop is a no-op (a stopped component stays stopped —
//     restarting would race teardown done by the first Stop).
//
// The zero value is ready to use. All methods are safe for concurrent
// use from multiple goroutines.
type Lifecycle struct {
	initOnce  sync.Once
	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

func (l *Lifecycle) init() {
	l.initOnce.Do(func() {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
	})
}

// Start runs setup synchronously (first-sample semantics: a scrape
// right after Start must already see one record), then launches run in
// a background goroutine. run receives the stop channel and must return
// when it closes. Either func may be nil. Start reports whether this
// call won the once — i.e. whether setup actually ran.
func (l *Lifecycle) Start(setup func(), run func(stop <-chan struct{})) bool {
	l.init()
	started := false
	l.startOnce.Do(func() {
		started = true
		select {
		case <-l.stop:
			// Stop already happened: stay stopped. We won the startOnce,
			// so closing done is on us — a concurrent Stop may already be
			// waiting on it.
			started = false
			close(l.done)
			return
		default:
		}
		if setup != nil {
			setup()
		}
		go func() {
			defer close(l.done)
			if run != nil {
				run(l.stop)
			}
		}()
	})
	return started
}

// Stop signals the background goroutine and waits for it to exit.
// Idempotent; safe before or without Start.
func (l *Lifecycle) Stop() {
	l.init()
	l.stopOnce.Do(func() { close(l.stop) })
	// If Start never ran (or ran after Stop and bailed out), consume the
	// startOnce so done gets closed exactly once and the wait below
	// cannot hang.
	l.startOnce.Do(func() { close(l.done) })
	<-l.done
}

// Stopping returns the stop channel, closed once Stop has been called —
// for components whose inner loops need to poll stop state outside the
// run callback. Never nil.
func (l *Lifecycle) Stopping() <-chan struct{} {
	l.init()
	return l.stop
}

// Stopped reports whether Stop has been called — the polling form of
// Stopping, for hot paths that gate one operation rather than a loop.
func (l *Lifecycle) Stopped() bool {
	l.init()
	select {
	case <-l.stop:
		return true
	default:
		return false
	}
}
