package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// Build is the process's build provenance, read once from
// debug.ReadBuildInfo: which Go built it and which VCS revision it came
// from. It is stamped into /healthz, served at /buildz, and written
// into every flight-log run manifest so a recorded run can always be
// traced back to the code that produced it.
type Build struct {
	// GoVersion is the toolchain that built the binary (always known).
	GoVersion string `json:"go_version"`
	// Main is the main module path.
	Main string `json:"main,omitempty"`
	// Revision is the VCS commit, or "" when the binary was built
	// outside a checkout (e.g. `go test` binaries).
	Revision string `json:"vcs_revision,omitempty"`
	// Time is the commit timestamp (RFC 3339), when known.
	Time string `json:"vcs_time,omitempty"`
	// Modified reports uncommitted changes at build time.
	Modified bool `json:"vcs_modified,omitempty"`
}

// ShortRevision returns the first 12 characters of the revision, or
// "unknown" when the build carries no VCS stamp.
func (b Build) ShortRevision() string {
	if b.Revision == "" {
		return "unknown"
	}
	rev := b.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if b.Modified {
		rev += "+dirty"
	}
	return rev
}

var (
	buildOnce   sync.Once
	cachedBuild Build
)

// ReadBuild returns the cached build provenance of the running binary.
func ReadBuild() Build {
	buildOnce.Do(func() {
		cachedBuild = Build{GoVersion: runtime.Version()}
		info, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if info.GoVersion != "" {
			cachedBuild.GoVersion = info.GoVersion
		}
		cachedBuild.Main = info.Main.Path
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				cachedBuild.Revision = s.Value
			case "vcs.time":
				cachedBuild.Time = s.Value
			case "vcs.modified":
				cachedBuild.Modified = s.Value == "true"
			}
		}
	})
	return cachedBuild
}
