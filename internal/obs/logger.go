package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level orders log severities.
type Level int8

// Severities, lowest to highest. LevelOff disables every record.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	LevelOff
)

// String returns the level's lowercase name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	case LevelOff:
		return "off"
	default:
		return "level(" + strconv.Itoa(int(l)) + ")"
	}
}

// ParseLevel parses a level name ("debug", "info", "warn", "error",
// "off"/"none").
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	case "off", "none", "":
		return LevelOff, nil
	default:
		return LevelOff, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error|off)", s)
	}
}

// Format selects the logger's wire format.
type Format int8

// Logfmt emits `ts=... level=info msg="..." k=v`; JSONFormat emits one
// JSON object per line.
const (
	Logfmt Format = iota
	JSONFormat
)

// Logger is a leveled, structured event logger writing one record per
// line. A nil *Logger discards everything, so library code logs
// unconditionally; hot loops should gate expensive field construction on
// Enabled. Records are serialized under a mutex so concurrent callers
// never interleave bytes.
type Logger struct {
	mu     sync.Mutex
	w      io.Writer
	level  Level
	format Format
	now    func() time.Time // test hook
}

// NewLogger builds a logger writing records at or above level to w.
func NewLogger(w io.Writer, level Level, format Format) *Logger {
	return &Logger{w: w, level: level, format: format, now: time.Now}
}

// Enabled reports whether records at lv would be written. A nil logger
// is never enabled.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && lv >= l.level && lv < LevelOff
}

// Debug logs a fine-grained event with alternating key/value fields.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs a routine event.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs a recoverable anomaly.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs a failure.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(lv Level, msg string, kv []any) {
	if !l.Enabled(lv) {
		return
	}
	var b strings.Builder
	ts := l.now().Format(time.RFC3339Nano)
	if l.format == JSONFormat {
		b.WriteString(`{"ts":`)
		b.WriteString(strconv.Quote(ts))
		b.WriteString(`,"level":`)
		b.WriteString(strconv.Quote(lv.String()))
		b.WriteString(`,"msg":`)
		b.WriteString(strconv.Quote(msg))
		for i := 0; i+1 < len(kv); i += 2 {
			b.WriteByte(',')
			b.WriteString(strconv.Quote(fieldKey(kv[i])))
			b.WriteByte(':')
			b.Write(jsonValue(kv[i+1]))
		}
		if len(kv)%2 == 1 {
			b.WriteString(`,"!BADKEY":`)
			b.Write(jsonValue(kv[len(kv)-1]))
		}
		b.WriteString("}\n")
	} else {
		b.WriteString("ts=")
		b.WriteString(ts)
		b.WriteString(" level=")
		b.WriteString(lv.String())
		b.WriteString(" msg=")
		b.WriteString(logfmtValue(msg))
		for i := 0; i+1 < len(kv); i += 2 {
			b.WriteByte(' ')
			b.WriteString(fieldKey(kv[i]))
			b.WriteByte('=')
			b.WriteString(logfmtValue(fmt.Sprint(kv[i+1])))
		}
		if len(kv)%2 == 1 {
			b.WriteString(" !BADKEY=")
			b.WriteString(logfmtValue(fmt.Sprint(kv[len(kv)-1])))
		}
		b.WriteByte('\n')
	}
	l.mu.Lock()
	_, _ = io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

// fieldKey coerces a field key to a string.
func fieldKey(k any) string {
	if s, ok := k.(string); ok {
		return s
	}
	return fmt.Sprint(k)
}

// jsonValue marshals one field value, degrading to a quoted string for
// unmarshalable values (channels, NaN floats, ...).
func jsonValue(v any) []byte {
	if err, ok := v.(error); ok {
		v = err.Error()
	}
	buf, err := json.Marshal(v)
	if err != nil {
		buf, _ = json.Marshal(fmt.Sprint(v))
	}
	return buf
}

// logfmtValue quotes a value when it contains logfmt metacharacters.
func logfmtValue(s string) string {
	if s == "" {
		return `""`
	}
	if strings.ContainsAny(s, " =\"\n\t") {
		return strconv.Quote(s)
	}
	return s
}
