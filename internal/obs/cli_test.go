package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func cliFlagSet(t *testing.T, c *CLI, args ...string) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	c.Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
}

func TestCLIRegistersAllFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var c CLI
	c.Register(fs)
	for _, name := range []string{
		"telemetry", "telemetry-format", "telemetry-addr",
		"sample-interval", "trace", "log-level", "cpuprofile", "memprofile",
	} {
		if fs.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}
}

func TestCLIDisabledByDefault(t *testing.T) {
	var c CLI
	cliFlagSet(t, &c)
	if err := c.Start(io.Discard); err != nil {
		t.Fatal(err)
	}
	if c.Registry() != nil || c.Logger() != nil || c.TraceLog() != nil || c.ServerAddr() != "" {
		t.Error("zero-flag CLI is not fully disabled")
	}
	if err := c.Finish(io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestCLISnapshotEmission(t *testing.T) {
	var c CLI
	cliFlagSet(t, &c, "-telemetry", "-")
	if err := c.Start(io.Discard); err != nil {
		t.Fatal(err)
	}
	c.Registry().Counter("demo_total").Add(3)
	var out bytes.Buffer
	if err := c.Finish(&out); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(out.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not JSON: %v\n%s", err, out.String())
	}
	if snap.Counters["demo_total"] != 3 {
		t.Errorf("demo_total = %d, want 3", snap.Counters["demo_total"])
	}
}

func TestCLISnapshotToFileProm(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.prom")
	var c CLI
	cliFlagSet(t, &c, "-telemetry", path, "-telemetry-format", "prom")
	if err := c.Start(io.Discard); err != nil {
		t.Fatal(err)
	}
	c.Registry().Counter("demo_total").Add(9)
	if err := c.Finish(io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "demo_total 9") {
		t.Errorf("prom snapshot missing counter:\n%s", data)
	}
}

func TestCLIBadFormatRejected(t *testing.T) {
	var c CLI
	cliFlagSet(t, &c, "-telemetry", "-", "-telemetry-format", "xml")
	if err := c.Start(io.Discard); err == nil {
		t.Error("bad -telemetry-format accepted")
	}
}

func TestCLINegativeSampleIntervalRejected(t *testing.T) {
	var c CLI
	c.SampleInterval = -time.Second
	if err := c.Start(io.Discard); err == nil {
		t.Error("negative -sample-interval accepted")
	}
}

func TestCLIProfileFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var c CLI
	cliFlagSet(t, &c, "-cpuprofile", cpu, "-memprofile", mem)
	if err := c.Start(io.Discard); err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile is not empty.
	x := 0.0
	for i := 0; i < 1e5; i++ {
		x += float64(i) * 1.0001
	}
	_ = x
	if err := c.Finish(io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestCLITraceExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	var c CLI
	cliFlagSet(t, &c, "-trace", path)
	if err := c.Start(io.Discard); err != nil {
		t.Fatal(err)
	}
	if c.Registry() == nil || c.TraceLog() == nil {
		t.Fatal("-trace alone must enable registry and trace log")
	}
	sp := StartSpan(c.Registry(), "exp/run")
	time.Sleep(time.Millisecond)
	sp.End()
	if err := c.Finish(io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	var sawSpan bool
	for _, e := range events {
		if e["ph"] == "X" && e["name"] == "exp/run" {
			sawSpan = true
		}
	}
	if !sawSpan {
		t.Errorf("trace missing exp/run span:\n%s", data)
	}
}

func TestCLITelemetryAddrLifecycle(t *testing.T) {
	var c CLI
	cliFlagSet(t, &c,
		"-telemetry-addr", "127.0.0.1:0",
		"-sample-interval", "10ms")
	if err := c.Start(io.Discard); err != nil {
		t.Fatal(err)
	}
	addr := c.ServerAddr()
	if addr == "" {
		t.Fatal("no server address after Start")
	}
	c.Registry().Counter("live_total").Add(5)

	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Errorf("healthz: %d %q", resp.StatusCode, body)
	}

	resp, err = http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "live_total 5") {
		t.Errorf("/metrics missing live_total:\n%s", body)
	}

	if err := c.Finish(io.Discard); err != nil {
		t.Fatal(err)
	}
	// The port must be released after Finish.
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", addr)); err == nil {
		t.Error("server still answering after Finish")
	}
}
