// Package obs is the repository's dependency-free telemetry layer: a
// concurrency-safe metrics registry (counters, gauges, fixed-bucket
// histograms), lightweight span timing for nested phase measurement, and
// a structured leveled logger — the visibility the PRESS controller
// needs as an always-on service (evaluation budgets, search convergence,
// channel-solve latency, control-plane round-trips).
//
// Everything is nil-safe: a nil *Registry hands out nil metric handles,
// and every method on a nil handle is a no-op. Library code therefore
// instruments unconditionally —
//
//	link.Obs.Counter("radio_csi_measurements_total").Inc()
//
// — and pays only a nil check when telemetry is disabled, which is the
// default. Only the CLI entry points ever construct a live Registry.
//
// Exposition is pull-based: Snapshot/WriteJSON produce a JSON snapshot,
// WriteText the Prometheus text format. See DESIGN.md for why the layer
// snapshots on demand instead of pushing.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds named metrics. All methods are safe for concurrent use;
// a nil *Registry is a valid, permanently disabled registry.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    map[string]*spanStat

	// parent, when set, receives every write made through this registry's
	// handles as well: the handles are chained at creation time, so the
	// hot path stays lock-free (one extra atomic op per level). This is
	// how per-session scopes roll up into the process-wide registry.
	parent *Registry

	// trace, when set, additionally receives every completed span as a
	// timeline event (see TraceLog).
	trace atomic.Pointer[TraceLog]
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		spans:    make(map[string]*spanStat),
	}
}

// NewRegistryWithParent returns a registry whose metric handles
// dual-write into parent: incrementing a counter obtained from the
// child also increments the same-named counter in the parent (and so on
// up the chain), so the parent's exposition is always the roll-up of
// every child plus its own direct writes. Gauges chain with last-write-
// wins semantics across children — meaningful for per-process readings,
// approximate when many sessions write the same gauge name. Spans and
// histograms roll up exactly. A nil parent is equivalent to
// NewRegistry.
func NewRegistryWithParent(parent *Registry) *Registry {
	r := NewRegistry()
	r.parent = parent
	return r
}

// Parent returns the roll-up target, nil for a root (or nil) registry.
func (r *Registry) Parent() *Registry {
	if r == nil {
		return nil
	}
	return r.parent
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	// Resolve the parent's handle outside our own lock (the parent may
	// itself need its write lock); idempotent if we lose the race below.
	var next *Counter
	if r.parent != nil {
		next = r.parent.Counter(name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{next: next}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	var next *Gauge
	if r.parent != nil {
		next = r.parent.Gauge(name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{next: next}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (nil buckets mean DefBuckets; the
// bounds are sorted and deduplicated). Later calls return the existing
// histogram regardless of the buckets argument. A nil registry returns a
// nil (no-op) histogram.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	var next *Histogram
	if r.parent != nil {
		next = r.parent.Histogram(name, buckets)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(buckets)
		h.next = next
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing int64. The zero value is ready;
// a nil *Counter discards every operation. A counter handed out by a
// child registry (NewRegistryWithParent) carries a link to the parent's
// same-named counter and mirrors every write into it.
type Counter struct {
	v    atomic.Int64
	next *Counter // parent chain; nil for a root registry's counter
}

// Inc adds one.
func (c *Counter) Inc() {
	for ; c != nil; c = c.next {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n <= 0 {
		return
	}
	for ; c != nil; c = c.next {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64. The zero value is ready; a nil
// *Gauge discards every operation. A child registry's gauge mirrors
// writes into its parent's same-named gauge (last writer wins across
// children).
type Gauge struct {
	bits atomic.Uint64
	next *Gauge // parent chain; nil for a root registry's gauge
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	bits := math.Float64bits(v)
	for ; g != nil; g = g.next {
		g.bits.Store(bits)
	}
}

// Add shifts the value by d.
func (g *Gauge) Add(d float64) {
	for ; g != nil; g = g.next {
		for {
			old := g.bits.Load()
			next := math.Float64bits(math.Float64frombits(old) + d)
			if g.bits.CompareAndSwap(old, next) {
				break
			}
		}
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets (Prometheus-style
// upper bounds plus an implicit +Inf overflow bucket) and tracks the sum
// and count. A nil *Histogram discards every observation.
type Histogram struct {
	bounds  []float64 // sorted, strictly increasing upper bounds
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
	ex      atomic.Pointer[exemplar]
	next    *Histogram // parent chain; nil for a root registry's histogram
}

// exemplar links one observation to the trace that produced it — how a
// latency histogram points at a concrete /tracez span tree.
type exemplar struct {
	v      float64
	trace  uint64
	unixNs int64
}

// DefBuckets suits generic positive magnitudes (scores, path counts).
var DefBuckets = []float64{0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000}

// LatencyBuckets suits durations in seconds, from 100 µs to 2.5 s —
// the range spanning channel solves, actuation RTTs, and full sweeps.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// LinearBuckets returns count bounds start, start+width, ...
func LinearBuckets(start, width float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns count bounds start, start·factor, ...
func ExponentialBuckets(start, factor float64, count int) []float64 {
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	// Deduplicate so each bound is strictly increasing.
	uniq := bounds[:1]
	for _, b := range bounds[1:] {
		if b != uniq[len(uniq)-1] {
			uniq = append(uniq, b)
		}
	}
	return &Histogram{bounds: uniq, buckets: make([]atomic.Int64, len(uniq)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound ≥ v; the last slot is +Inf.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	// Parent buckets may differ (first-create wins per registry), so the
	// roll-up re-observes rather than copying the bucket index.
	h.next.Observe(v)
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveExemplar records one value and, when trace is non-zero, retains
// (value, trace) as the histogram's most-recent exemplar — the join key
// from a latency metric to the span tree that produced the reading. The
// exemplar propagates up the parent chain like the observation itself.
func (h *Histogram) ObserveExemplar(v float64, trace uint64) {
	if h == nil {
		return
	}
	h.Observe(v)
	if trace == 0 {
		return
	}
	ex := &exemplar{v: v, trace: trace, unixNs: time.Now().UnixNano()}
	for e := h; e != nil; e = e.next {
		e.ex.Store(ex)
	}
}

// Exemplar returns the most recent exemplar observation and its trace
// ID; ok is false when none was ever recorded (or on a nil histogram).
func (h *Histogram) Exemplar() (v float64, trace uint64, ok bool) {
	if h == nil {
		return 0, 0, false
	}
	ex := h.ex.Load()
	if ex == nil {
		return 0, 0, false
	}
	return ex.v, ex.trace, true
}

// ObserveN records n observations of value v in one operation — the
// bulk path the runtime-metrics sampler uses to mirror a cumulative
// runtime/metrics histogram bucket delta without n separate Observes.
// n ≤ 0 is a no-op.
func (h *Histogram) ObserveN(v float64, n int64) {
	if h == nil || n <= 0 {
		return
	}
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.buckets[lo].Add(n)
	h.count.Add(n)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v*float64(n))
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	h.next.ObserveN(v, n)
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// spanStat accumulates completed span durations for one span name.
// Spans fire at phase granularity (not per-sample), so a mutex is fine.
type spanStat struct {
	mu       sync.Mutex
	count    int64
	total    time.Duration
	min, max time.Duration
}

// SetTraceLog attaches (or, with nil, detaches) a trace log: every span
// completed against this registry is additionally recorded as a timeline
// event on the track named by the span's first path segment. Safe for
// concurrent use. A nil registry ignores the call.
func (r *Registry) SetTraceLog(t *TraceLog) {
	if r == nil {
		return
	}
	r.trace.Store(t)
}

// TraceLog returns the attached trace log, or nil (also for a nil
// registry).
func (r *Registry) TraceLog() *TraceLog {
	if r == nil {
		return nil
	}
	return r.trace.Load()
}

// observeSpan records one completed span.
func (r *Registry) observeSpan(name string, start time.Time, d time.Duration) {
	if r == nil {
		return
	}
	if t := r.trace.Load(); t != nil {
		t.Record(spanTrack(name), name, 0, start, d, nil)
	}
	r.mu.RLock()
	s := r.spans[name]
	r.mu.RUnlock()
	if s == nil {
		r.mu.Lock()
		if s = r.spans[name]; s == nil {
			s = &spanStat{}
			r.spans[name] = s
		}
		r.mu.Unlock()
	}
	s.mu.Lock()
	s.count++
	s.total += d
	if s.count == 1 || d < s.min {
		s.min = d
	}
	if d > s.max {
		s.max = d
	}
	s.mu.Unlock()
	// Spans roll up too, so the process registry's span summaries cover
	// every session. The parent's own trace log (if any) also sees the
	// span — sessions rarely attach separate trace logs, so in practice
	// exactly one level records timeline events.
	r.parent.observeSpan(name, start, d)
}
