package obs

import (
	"sync"
	"time"
)

// Sample is one periodic reading of a registry's counters and gauges —
// enough to reconstruct a search trajectory (best-objective gauge,
// evaluation counters) or watch control-plane frame counters advance
// while a session runs.
type Sample struct {
	// UnixMs is the sample's wall-clock timestamp in milliseconds.
	UnixMs   int64              `json:"unix_ms"`
	Counters map[string]int64   `json:"counters"`
	Gauges   map[string]float64 `json:"gauges"`
}

// Recorder samples a registry into a bounded ring buffer at a fixed
// interval and fans each new sample out to subscribers (the /events SSE
// stream). It is the pull-snapshot layer's bridge to live observation:
// the registry's hot path stays an atomic add; one background goroutine
// turns it into a time series.
type Recorder struct {
	reg      *Registry
	interval time.Duration

	mu    sync.Mutex
	ring  []Sample // fixed capacity, oldest overwritten
	next  int      // next write slot
	count int      // filled slots, ≤ len(ring)
	subs  map[int]chan Sample
	subID int

	life Lifecycle
}

// DefaultSampleInterval is the recorder cadence when the CLI flag is
// left at its default.
const DefaultSampleInterval = time.Second

// NewRecorder builds a recorder over reg keeping the most recent
// capacity samples (≤ 0 means 512) every interval (≤ 0 means
// DefaultSampleInterval). Call Start to begin sampling.
func NewRecorder(reg *Registry, interval time.Duration, capacity int) *Recorder {
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	if capacity <= 0 {
		capacity = 512
	}
	return &Recorder{
		reg:      reg,
		interval: interval,
		ring:     make([]Sample, capacity),
		subs:     map[int]chan Sample{},
	}
}

// Start launches the sampling goroutine. The first sample is taken
// immediately, so a scrape right after Start already sees one record.
// Start is idempotent.
func (r *Recorder) Start() {
	r.life.Start(r.sampleOnce, func(stop <-chan struct{}) {
		t := time.NewTicker(r.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				r.sampleOnce()
			case <-stop:
				return
			}
		}
	})
}

// Stop halts sampling and waits for the goroutine to exit. Subscribers
// keep their channels (closed by their own cancel funcs). Stop is
// idempotent and safe even if Start was never called.
func (r *Recorder) Stop() { r.life.Stop() }

// Interval returns the sampling cadence.
func (r *Recorder) Interval() time.Duration { return r.interval }

// sampleOnce freezes the registry into one sample, appends it to the
// ring, and fans it out. Slow subscribers lose samples rather than
// stalling the recorder.
func (r *Recorder) sampleOnce() {
	snap := r.reg.Snapshot()
	s := Sample{
		UnixMs:   time.Now().UnixMilli(),
		Counters: snap.Counters,
		Gauges:   snap.Gauges,
	}
	r.mu.Lock()
	r.ring[r.next] = s
	r.next = (r.next + 1) % len(r.ring)
	if r.count < len(r.ring) {
		r.count++
	}
	for _, ch := range r.subs {
		select {
		case ch <- s:
		default: // subscriber lagging: drop, never block sampling
		}
	}
	r.mu.Unlock()
}

// Samples returns the buffered samples, oldest first.
func (r *Recorder) Samples() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Sample, 0, r.count)
	start := r.next - r.count
	if start < 0 {
		start += len(r.ring)
	}
	for i := 0; i < r.count; i++ {
		out = append(out, r.ring[(start+i)%len(r.ring)])
	}
	return out
}

// Subscribe registers a listener for future samples. The returned cancel
// func unregisters it and closes the channel; it must be called exactly
// once.
func (r *Recorder) Subscribe(buf int) (<-chan Sample, func()) {
	if buf < 1 {
		buf = 1
	}
	ch := make(chan Sample, buf)
	r.mu.Lock()
	id := r.subID
	r.subID++
	r.subs[id] = ch
	r.mu.Unlock()
	return ch, func() {
		r.mu.Lock()
		if _, ok := r.subs[id]; ok {
			delete(r.subs, id)
			close(ch)
		}
		r.mu.Unlock()
	}
}
