package obs

import (
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Server exposes a live telemetry endpoint over HTTP (stdlib only):
//
//	GET /metrics       Prometheus text exposition of the registry
//	GET /metrics.json  JSON snapshot (same shape as -telemetry)
//	GET /healthz       liveness probe ("ok" plus build provenance)
//	GET /buildz        build info JSON (Go version, VCS revision)
//	GET /events        Server-Sent Events stream of recorder samples
//	                   plus any named events sent through Publish
//	GET /debug/pprof/  the standard pprof handlers
//
// Where -telemetry writes one snapshot at exit, the server makes a
// long-running sweep or controller session observable while it runs:
// point Prometheus (or curl) at /metrics, or follow /events for the
// sampled time series the Recorder maintains.
//
// Subsystems can extend the server: HandleFunc registers extra routes
// (the channel-health layer adds /alerts, /health.json, /dashboard) and
// Publish fans a named SSE event out to every /events subscriber.
type Server struct {
	reg *Registry
	rec *Recorder

	// muxMu guards mux and patterns: routes are registered by higher
	// layers (health, flight, prof, scope) *after* Start has the server
	// serving, so registration and dispatch must synchronize explicitly
	// rather than relying on ServeMux internals.
	muxMu    sync.RWMutex
	mux      *http.ServeMux
	patterns map[string]struct{}

	srv *http.Server
	ln  net.Listener

	pubMu sync.Mutex
	pubs  map[int]chan sseEvent
	pubID int

	// sessions, when set, resolves a session ID to its scope's recorder —
	// the hook behind session-filtered /events streams (the scope layer
	// installs it without obs depending on scope).
	sessions atomic.Pointer[SessionResolver]

	// healthMu guards healthFns: status lines higher layers append to
	// the /healthz body (the export pipeline reports its queue and
	// last-success age there) without obs depending on them.
	healthMu  sync.Mutex
	healthFns []func() string
}

// SessionResolver maps a session ID to that session's sample recorder
// (nil when the session does not exist).
type SessionResolver func(id string) *Recorder

// sseEvent is one published named event, pre-marshalled. session is ""
// for process-wide events, else the scope the event belongs to.
type sseEvent struct {
	name    string
	session string
	data    []byte
}

// NewServer builds a server over reg. rec may be nil, in which case
// /events reports 404 (no sampler running).
func NewServer(reg *Registry, rec *Recorder) *Server {
	s := &Server{reg: reg, rec: rec, pubs: map[int]chan sseEvent{}}
	s.mux = http.NewServeMux()
	s.patterns = map[string]struct{}{}
	s.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Header().Set("Cache-Control", "no-store")
		_ = s.reg.WriteText(w)
	})
	s.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		ServeJSON(w, r, s.reg.WriteJSON)
	})
	s.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		b := ReadBuild()
		fmt.Fprintf(w, "ok\ngo %s\nrev %s\n", b.GoVersion, b.ShortRevision())
		s.healthMu.Lock()
		fns := append([]func() string(nil), s.healthFns...)
		s.healthMu.Unlock()
		for _, fn := range fns {
			if line := fn(); line != "" {
				fmt.Fprintln(w, line)
			}
		}
	})
	s.HandleFunc("/buildz", func(w http.ResponseWriter, r *http.Request) {
		ServeJSON(w, r, func(out io.Writer) error {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			return enc.Encode(ReadBuild())
		})
	})
	s.HandleFunc("/events", s.serveEvents)
	s.HandleFunc("/debug/pprof/", pprof.Index)
	s.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: http.HandlerFunc(s.serveHTTP)}
	return s
}

// serveHTTP dispatches under the registration read-lock, so a route
// being added by one goroutine can never race a request being routed by
// another.
func (s *Server) serveHTTP(w http.ResponseWriter, r *http.Request) {
	s.muxMu.RLock()
	mux := s.mux
	s.muxMu.RUnlock()
	mux.ServeHTTP(w, r)
}

// Handler returns the server's route table, usable standalone (tests,
// embedding into an existing mux).
func (s *Server) Handler() http.Handler { return http.HandlerFunc(s.serveHTTP) }

// HandleFunc registers an additional route on the server — the hook
// higher layers (internal/obs/health, internal/obs/scope) use to expose
// their endpoints on the same listener without obs depending on them.
// Registration is safe concurrently with serving (the health/flight/
// prof layers register their routes after Start has the listener open).
// A duplicate pattern panics, matching http.ServeMux; use TryHandle to
// get an error instead.
func (s *Server) HandleFunc(pattern string, handler http.HandlerFunc) {
	if err := s.TryHandle(pattern, handler); err != nil {
		panic(err)
	}
}

// TryHandle registers an additional route like HandleFunc, but reports
// a duplicate pattern as an error instead of panicking.
func (s *Server) TryHandle(pattern string, handler http.HandlerFunc) error {
	s.muxMu.Lock()
	defer s.muxMu.Unlock()
	if _, dup := s.patterns[pattern]; dup {
		return fmt.Errorf("obs: duplicate route pattern %q", pattern)
	}
	s.patterns[pattern] = struct{}{}
	s.mux.HandleFunc(pattern, handler)
	return nil
}

// Patterns returns every registered route pattern, sorted — the route
// inventory hygiene tests sweep so a newly added endpoint cannot dodge
// the response-header conventions by being forgotten in a hand-kept
// list. Safe concurrently with registration; nil on a nil server.
func (s *Server) Patterns() []string {
	if s == nil {
		return nil
	}
	s.muxMu.RLock()
	defer s.muxMu.RUnlock()
	out := make([]string, 0, len(s.patterns))
	for p := range s.patterns {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// AddHealthz appends a status-line producer to the /healthz body: each
// probe calls fn and writes its (non-empty) return value as one line
// after the build provenance. The hook higher layers (internal/obs/
// export) use to surface liveness-adjacent state — queue depth, drop
// counters, collector reachability — on the endpoint ops already poll.
// Safe for concurrent use; a nil server ignores the call.
func (s *Server) AddHealthz(fn func() string) {
	if s == nil || fn == nil {
		return
	}
	s.healthMu.Lock()
	s.healthFns = append(s.healthFns, fn)
	s.healthMu.Unlock()
}

// SetSessionResolver installs the session-ID → recorder lookup behind
// /events?session= (nil uninstalls it). Safe for concurrent use.
func (s *Server) SetSessionResolver(f SessionResolver) {
	if f == nil {
		s.sessions.Store(nil)
		return
	}
	s.sessions.Store(&f)
}

// Publish marshals v and fans it out to every /events subscriber as a
// named SSE event ("event: <name>"). Slow subscribers drop the event
// rather than blocking the publisher. Safe for concurrent use; a nil
// server discards the event.
func (s *Server) Publish(name string, v any) { s.PublishSession("", name, v) }

// PublishSession is Publish with a session tag: an unfiltered /events
// stream sees every event, while /events?session=ID streams only that
// session's events (plus its recorder samples). An empty session means
// process-wide. A nil server discards the event.
func (s *Server) PublishSession(session, name string, v any) {
	if s == nil {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	ev := sseEvent{name: name, session: session, data: data}
	s.pubMu.Lock()
	for _, ch := range s.pubs {
		select {
		case ch <- ev:
		default: // subscriber lagging: drop, never block the publisher
		}
	}
	s.pubMu.Unlock()
}

// subscribePub registers a listener for published events; the cancel
// func unregisters it and closes the channel.
func (s *Server) subscribePub(buf int) (<-chan sseEvent, func()) {
	ch := make(chan sseEvent, buf)
	s.pubMu.Lock()
	id := s.pubID
	s.pubID++
	s.pubs[id] = ch
	s.pubMu.Unlock()
	return ch, func() {
		s.pubMu.Lock()
		if _, ok := s.pubs[id]; ok {
			delete(s.pubs, id)
			close(ch)
		}
		s.pubMu.Unlock()
	}
}

// serveEvents streams recorder samples as Server-Sent Events: the most
// recent buffered sample first (so a subscriber immediately sees state),
// then every new sample until the client disconnects. Named events sent
// through Publish are interleaved with their "event:" field set. With
// ?session=ID the stream narrows to that session's scope: its own
// recorder's samples and only the events published under that session.
func (s *Server) serveEvents(w http.ResponseWriter, r *http.Request) {
	rec := s.rec
	session := r.URL.Query().Get("session")
	if session != "" {
		resolve := s.sessions.Load()
		if resolve == nil {
			http.Error(w, "session-scoped telemetry not enabled", http.StatusNotFound)
			return
		}
		if rec = (*resolve)(session); rec == nil {
			http.Error(w, "unknown session "+session, http.StatusNotFound)
			return
		}
	}
	if rec == nil {
		http.Error(w, "no recorder: start the binary with -telemetry-addr", http.StatusNotFound)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	write := func(event string, data []byte) bool {
		if event != "" {
			if _, err := fmt.Fprintf(w, "event: %s\n", event); err != nil {
				return false
			}
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	writeSample := func(sample Sample) bool {
		buf, err := json.Marshal(sample)
		if err != nil {
			return false
		}
		return write("", buf)
	}

	ch, cancel := rec.Subscribe(16)
	defer cancel()
	pub, cancelPub := s.subscribePub(16)
	defer cancelPub()
	if backlog := rec.Samples(); len(backlog) > 0 {
		if !writeSample(backlog[len(backlog)-1]) {
			return
		}
	}
	for {
		select {
		case sample, ok := <-ch:
			if !ok {
				return
			}
			if !writeSample(sample) {
				return
			}
		case ev, ok := <-pub:
			if !ok {
				return
			}
			if session != "" && ev.session != session {
				continue // another scope's event: not for this stream
			}
			if !write(ev.name, ev.data) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// ServeJSON writes one JSON document produced by write with the headers
// a polling client needs — explicit Content-Type and Cache-Control:
// no-store (these are live readings; caching one defeats the point) —
// and gzip-compresses the body when the client advertises support.
func ServeJSON(w http.ResponseWriter, r *http.Request, write func(io.Writer) error) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	if acceptsGzip(r) {
		w.Header().Set("Content-Encoding", "gzip")
		gz := gzip.NewWriter(w)
		_ = write(gz)
		_ = gz.Close()
		return
	}
	_ = write(w)
}

// acceptsGzip reports whether the request advertises gzip support: a
// token-level parse of Accept-Encoding that walks each coding's
// parameter list and honours a numeric q-value ("gzip;q=0" and
// "gzip;Q=0.000" decline, "gzip;q=0.5" accepts). A malformed q falls
// back to the header's default of acceptance, matching the previous
// lenient behaviour.
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		params := strings.Split(part, ";")
		if !strings.EqualFold(strings.TrimSpace(params[0]), "gzip") {
			continue
		}
		for _, p := range params[1:] {
			k, v, ok := strings.Cut(strings.TrimSpace(p), "=")
			if !ok || !strings.EqualFold(strings.TrimSpace(k), "q") {
				continue
			}
			if q, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil {
				return q > 0
			}
			return true
		}
		return true
	}
	return false
}

// Start listens on addr (e.g. "127.0.0.1:9090", ":0") and serves in a
// background goroutine until Close.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	go func() { _ = s.srv.Serve(ln) }()
	return nil
}

// Addr returns the bound listen address (nil before Start) — how tests
// and log lines discover the port behind ":0".
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close shuts the server down, waiting briefly for in-flight requests;
// open /events streams are cut by closing the underlying connections.
func (s *Server) Close() error {
	if s.ln == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}
