package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server exposes a live telemetry endpoint over HTTP (stdlib only):
//
//	GET /metrics       Prometheus text exposition of the registry
//	GET /metrics.json  JSON snapshot (same shape as -telemetry)
//	GET /healthz       liveness probe ("ok")
//	GET /events        Server-Sent Events stream of recorder samples
//	GET /debug/pprof/  the standard pprof handlers
//
// Where -telemetry writes one snapshot at exit, the server makes a
// long-running sweep or controller session observable while it runs:
// point Prometheus (or curl) at /metrics, or follow /events for the
// sampled time series the Recorder maintains.
type Server struct {
	reg *Registry
	rec *Recorder

	srv *http.Server
	ln  net.Listener
}

// NewServer builds a server over reg. rec may be nil, in which case
// /events reports 404 (no sampler running).
func NewServer(reg *Registry, rec *Recorder) *Server {
	s := &Server{reg: reg, rec: rec}
	s.srv = &http.Server{Handler: s.Handler()}
	return s
}

// Handler returns the server's route table, usable standalone (tests,
// embedding into an existing mux).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.reg.WriteText(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = s.reg.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/events", s.serveEvents)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serveEvents streams recorder samples as Server-Sent Events: the most
// recent buffered sample first (so a subscriber immediately sees state),
// then every new sample until the client disconnects.
func (s *Server) serveEvents(w http.ResponseWriter, r *http.Request) {
	if s.rec == nil {
		http.Error(w, "no recorder: start the binary with -telemetry-addr", http.StatusNotFound)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	write := func(sample Sample) bool {
		buf, err := json.Marshal(sample)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", buf); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	ch, cancel := s.rec.Subscribe(16)
	defer cancel()
	if backlog := s.rec.Samples(); len(backlog) > 0 {
		if !write(backlog[len(backlog)-1]) {
			return
		}
	}
	for {
		select {
		case sample, ok := <-ch:
			if !ok {
				return
			}
			if !write(sample) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// Start listens on addr (e.g. "127.0.0.1:9090", ":0") and serves in a
// background goroutine until Close.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	go func() { _ = s.srv.Serve(ln) }()
	return nil
}

// Addr returns the bound listen address (nil before Start) — how tests
// and log lines discover the port behind ":0".
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close shuts the server down, waiting briefly for in-flight requests;
// open /events streams are cut by closing the underlying connections.
func (s *Server) Close() error {
	if s.ln == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}
