package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total")
	c.Inc()
	c.Add(4)
	c.Add(-7) // counters only go up
	if got := c.Value(); got != 5 {
		t.Errorf("value = %d, want 5", got)
	}
	if r.Counter("hits_total") != c {
		t.Error("second lookup returned a different counter")
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("budget")
	g.Set(120)
	g.Add(-20)
	if got := g.Value(); got != 100 {
		t.Errorf("value = %g, want 100", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 3, 10} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 16 {
		t.Errorf("sum = %g, want 16", h.Sum())
	}
	snap := r.Snapshot().Histograms["lat"]
	// Cumulative: ≤1 → 2, ≤2 → 3, ≤5 → 4, +Inf → 5.
	wantCum := []int64{2, 3, 4, 5}
	for i, b := range snap.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket[%d] (le=%s) = %d, want %d", i, b.LE, b.Count, wantCum[i])
		}
	}
	if snap.Buckets[len(snap.Buckets)-1].LE != "+Inf" {
		t.Errorf("last bucket le = %s", snap.Buckets[len(snap.Buckets)-1].LE)
	}
}

func TestHistogramObserveN(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("bulk", []float64{1, 2, 5})
	h.ObserveN(1.5, 3)
	h.ObserveN(10, 2)
	h.ObserveN(0.5, 0)  // no-op
	h.ObserveN(0.5, -4) // no-op
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 24.5 {
		t.Errorf("sum = %g, want 24.5", h.Sum())
	}
	snap := r.Snapshot().Histograms["bulk"]
	wantCum := []int64{0, 3, 3, 5}
	for i, b := range snap.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket[%d] (le=%s) = %d, want %d", i, b.LE, b.Count, wantCum[i])
		}
	}
	var nilH *Histogram
	nilH.ObserveN(1, 1) // must not panic
}

func TestHistogramDefaultAndDuplicateBuckets(t *testing.T) {
	r := NewRegistry()
	if h := r.Histogram("def", nil); len(h.bounds) != len(DefBuckets) {
		t.Errorf("default bounds = %v", h.bounds)
	}
	h := r.Histogram("dup", []float64{5, 1, 5, 2})
	want := []float64{1, 2, 5}
	if len(h.bounds) != len(want) {
		t.Fatalf("bounds = %v, want %v", h.bounds, want)
	}
	for i := range want {
		if h.bounds[i] != want[i] {
			t.Errorf("bounds = %v, want %v", h.bounds, want)
		}
	}
}

func TestBucketGenerators(t *testing.T) {
	lin := LinearBuckets(1, 2, 3)
	if lin[0] != 1 || lin[1] != 3 || lin[2] != 5 {
		t.Errorf("linear = %v", lin)
	}
	exp := ExponentialBuckets(1, 10, 3)
	if exp[0] != 1 || exp[1] != 10 || exp[2] != 100 {
		t.Errorf("exponential = %v", exp)
	}
}

// TestNilRegistryIsInert covers the disabled default: every operation on
// a nil registry and its nil handles must be a silent no-op.
func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(1)
	r.Gauge("g").Add(1)
	r.Histogram("h", nil).Observe(1)
	r.Histogram("h", nil).ObserveDuration(time.Second)
	if r.Counter("c").Value() != 0 || r.Gauge("g").Value() != 0 || r.Histogram("h", nil).Count() != 0 {
		t.Error("nil handles reported nonzero values")
	}
	sp := StartSpan(r, "phase")
	if d := sp.Child("inner").End(); d != 0 {
		t.Errorf("inert child span duration = %v", d)
	}
	if d := sp.End(); d != 0 {
		t.Errorf("inert span duration = %v", d)
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms)+len(snap.Spans) != 0 {
		t.Errorf("nil snapshot not empty: %+v", snap)
	}
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentAccess hammers one registry from many goroutines; run
// under -race this is the registry's thread-safety gate.
func TestConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("ops_total").Inc()
				r.Gauge("level").Set(float64(i))
				r.Histogram("vals", []float64{10, 100}).Observe(float64(i % 128))
				if i%100 == 0 {
					sp := StartSpan(r, "tick")
					sp.End()
					_ = r.Snapshot() // concurrent reader
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("ops_total").Value(); got != workers*perWorker {
		t.Errorf("ops_total = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("vals", nil).Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestSpanRecordsDurations(t *testing.T) {
	r := NewRegistry()
	sp := StartSpan(r, "search/greedy")
	inner := sp.Child("measure")
	time.Sleep(time.Millisecond)
	if d := inner.End(); d <= 0 {
		t.Errorf("inner duration = %v", d)
	}
	if d := sp.End(); d <= 0 {
		t.Errorf("outer duration = %v", d)
	}
	snap := r.Snapshot()
	outer, ok := snap.Spans["search/greedy"]
	if !ok || outer.Count != 1 || outer.TotalSeconds <= 0 {
		t.Errorf("outer span snapshot = %+v (ok=%v)", outer, ok)
	}
	if outer.MinSeconds > outer.MaxSeconds {
		t.Errorf("min %g > max %g", outer.MinSeconds, outer.MaxSeconds)
	}
	if _, ok := snap.Spans["search/greedy/measure"]; !ok {
		t.Error("nested span missing from snapshot")
	}
}

func TestZeroValueHandlesAreUsable(t *testing.T) {
	var c Counter
	c.Inc()
	if c.Value() != 1 {
		t.Error("zero-value counter broken")
	}
	var g Gauge
	g.Add(2.5)
	if g.Value() != 2.5 {
		t.Error("zero-value gauge broken")
	}
}
