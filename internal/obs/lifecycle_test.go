package obs

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLifecycleStartStop(t *testing.T) {
	var l Lifecycle
	var setups, runs atomic.Int64
	started := l.Start(func() { setups.Add(1) }, func(stop <-chan struct{}) {
		runs.Add(1)
		<-stop
	})
	if !started {
		t.Fatal("first Start should report started")
	}
	if l.Start(func() { setups.Add(1) }, nil) {
		t.Fatal("second Start should be a no-op")
	}
	l.Stop()
	l.Stop() // idempotent
	if got := setups.Load(); got != 1 {
		t.Fatalf("setup ran %d times, want 1", got)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("run ran %d times, want 1", got)
	}
}

func TestLifecycleSetupSynchronous(t *testing.T) {
	var l Lifecycle
	var order []string
	var mu sync.Mutex
	l.Start(
		func() {
			mu.Lock()
			order = append(order, "setup")
			mu.Unlock()
		},
		func(stop <-chan struct{}) { <-stop },
	)
	mu.Lock()
	if len(order) != 1 || order[0] != "setup" {
		t.Fatalf("setup must complete before Start returns, got %v", order)
	}
	mu.Unlock()
	l.Stop()
}

func TestLifecycleStopWithoutStart(t *testing.T) {
	var l Lifecycle
	doneCh := make(chan struct{})
	go func() {
		l.Stop()
		l.Stop()
		close(doneCh)
	}()
	select {
	case <-doneCh:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop without Start hung")
	}
}

func TestLifecycleStopped(t *testing.T) {
	var l Lifecycle
	if l.Stopped() {
		t.Error("fresh Lifecycle reports Stopped")
	}
	l.Start(nil, nil)
	if l.Stopped() {
		t.Error("started Lifecycle reports Stopped")
	}
	l.Stop()
	if !l.Stopped() {
		t.Error("Stopped false after Stop")
	}
}

func TestLifecycleStartAfterStop(t *testing.T) {
	var l Lifecycle
	l.Stop()
	var ran atomic.Bool
	if l.Start(func() { ran.Store(true) }, nil) {
		t.Fatal("Start after Stop should not report started")
	}
	if ran.Load() {
		t.Fatal("setup must not run after Stop")
	}
	l.Stop() // still safe
}

func TestLifecycleStopWaitsForRun(t *testing.T) {
	var l Lifecycle
	var finished atomic.Bool
	l.Start(nil, func(stop <-chan struct{}) {
		<-stop
		time.Sleep(10 * time.Millisecond)
		finished.Store(true)
	})
	l.Stop()
	if !finished.Load() {
		t.Fatal("Stop returned before run exited")
	}
}

func TestLifecycleConcurrent(t *testing.T) {
	for i := 0; i < 50; i++ {
		var l Lifecycle
		var setups, runs atomic.Int64
		var wg sync.WaitGroup
		for j := 0; j < 4; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				l.Start(func() { setups.Add(1) }, func(stop <-chan struct{}) {
					runs.Add(1)
					<-stop
				})
			}()
			wg.Add(1)
			go func() {
				defer wg.Done()
				l.Stop()
			}()
		}
		wg.Wait()
		l.Stop()
		if s := setups.Load(); s > 1 {
			t.Fatalf("setup ran %d times, want ≤1", s)
		}
		if r := runs.Load(); r > 1 {
			t.Fatalf("run ran %d times, want ≤1", r)
		}
	}
}
