package obs

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceLogNilSafe(t *testing.T) {
	var tl *TraceLog
	tl.Record("track", "name", 1, time.Now(), time.Millisecond, nil)
	if tl.Len() != 0 || tl.Dropped() != 0 || tl.Spans() != nil {
		t.Error("nil TraceLog should be empty")
	}
	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("nil export is not a JSON array: %v", err)
	}
}

// TestTraceLogStopFreezes: Stop ends the collection lifecycle — later
// Records are counted as dropped, not appended, so an export written
// at shutdown is stable even if stray spans end after it.
func TestTraceLogStopFreezes(t *testing.T) {
	tl := NewTraceLog()
	tl.Record("track", "before", 1, time.Now(), time.Millisecond, nil)
	tl.Stop()
	tl.Record("track", "after", 2, time.Now(), time.Millisecond, nil)
	if tl.Len() != 1 {
		t.Errorf("Len = %d after Stop, want 1", tl.Len())
	}
	if tl.Dropped() != 1 {
		t.Errorf("Dropped = %d after Stop, want 1", tl.Dropped())
	}
	tl.Stop() // idempotent
}

// TestTraceLogChromeSchema validates the export against the trace-event
// schema: every event carries the required name/ph/ts/pid/tid keys, "X"
// events carry dur, and trace IDs surface in args.
func TestTraceLogChromeSchema(t *testing.T) {
	tl := NewTraceLog()
	base := time.Now()
	tl.Record("controller", "controlplane/set-config", 0xabcd, base, 2*time.Millisecond,
		map[string]any{"seq": 7})
	tl.Record("agent", "controlplane/set-config", 0xabcd, base.Add(time.Millisecond), time.Millisecond, nil)
	tl.Record("search", "search/greedy", 0, base, 5*time.Millisecond, nil)

	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("export is not a JSON array: %v\n%s", err, buf.String())
	}
	var complete, meta int
	for _, ev := range events {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event %v missing required key %q", ev, key)
			}
		}
		switch ev["ph"] {
		case "X":
			complete++
			if _, ok := ev["dur"]; !ok {
				t.Errorf("complete event %v missing dur", ev)
			}
		case "M":
			meta++
		default:
			t.Errorf("unexpected phase %v", ev["ph"])
		}
	}
	if complete != 3 {
		t.Errorf("complete events = %d, want 3", complete)
	}
	if meta != 3 { // one process_name per track
		t.Errorf("metadata events = %d, want 3", meta)
	}
	if !strings.Contains(buf.String(), "0x000000000000abcd") {
		t.Errorf("trace id missing from args:\n%s", buf.String())
	}
}

// TestTraceLogCorrelation checks that the same trace ID lands on both
// tracks with distinct pids — the cross-process matching the control
// plane relies on.
func TestTraceLogCorrelation(t *testing.T) {
	tl := NewTraceLog()
	id := NewTraceID()
	tl.Record("controller", "rpc", id, time.Now(), time.Millisecond, nil)
	tl.Record("agent", "rpc", id, time.Now(), time.Millisecond, nil)
	spans := tl.Spans()
	if len(spans) != 2 {
		t.Fatalf("len = %d", len(spans))
	}
	if spans[0].TraceID != spans[1].TraceID || spans[0].TraceID == 0 {
		t.Errorf("trace ids %x vs %x", spans[0].TraceID, spans[1].TraceID)
	}
	if spans[0].Track == spans[1].Track {
		t.Errorf("tracks should differ, both %q", spans[0].Track)
	}
}

func TestTraceLogBounded(t *testing.T) {
	tl := NewTraceLogCap(4)
	for i := 0; i < 10; i++ {
		tl.Record("t", "e", 0, time.Now(), time.Microsecond, nil)
	}
	if tl.Len() != 4 {
		t.Errorf("len = %d, want 4", tl.Len())
	}
	if tl.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", tl.Dropped())
	}
}

func TestRegistrySpansFlowIntoTraceLog(t *testing.T) {
	reg := NewRegistry()
	tl := NewTraceLog()
	reg.SetTraceLog(tl)
	sp := StartSpan(reg, "sweep/convergence")
	time.Sleep(time.Millisecond)
	if d := sp.End(); d <= 0 {
		t.Fatal("span recorded nothing")
	}
	spans := tl.Spans()
	if len(spans) != 1 {
		t.Fatalf("trace events = %d, want 1", len(spans))
	}
	if spans[0].Track != "sweep" || spans[0].Name != "sweep/convergence" {
		t.Errorf("event = %+v", spans[0])
	}
	reg.SetTraceLog(nil)
	StartSpan(reg, "x").End()
	if tl.Len() != 1 {
		t.Error("detached trace log still receiving spans")
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	reg := NewRegistry()
	sp := StartSpan(reg, "phase")
	if d := sp.End(); d <= 0 {
		t.Fatal("first End returned 0")
	}
	if d := sp.End(); d != 0 {
		t.Errorf("second End returned %v, want 0", d)
	}
	snap := reg.Snapshot()
	if snap.Spans["phase"].Count != 1 {
		t.Errorf("span recorded %d times, want 1", snap.Spans["phase"].Count)
	}
}

// TestTraceLogConcurrentRecordExport hammers Record from several
// goroutines while WriteJSON and Spans read concurrently — the race
// detector proves the mutex discipline (tracez snapshots export live
// logs while control loops are still recording into them).
func TestTraceLogConcurrentRecordExport(t *testing.T) {
	tl := NewTraceLogCap(256)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tl.Record("track", "loop/phase", uint64(g*1000+i), time.Now(),
					time.Microsecond, map[string]any{"g": g})
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := tl.WriteJSON(&buf); err != nil {
			t.Errorf("WriteJSON during writes: %v", err)
			break
		}
		var events []map[string]any
		if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
			t.Errorf("concurrent export is not valid JSON: %v", err)
			break
		}
		_ = tl.Spans()
	}
	wg.Wait()
	if tl.Len() != 256 {
		t.Errorf("len = %d, want full cap 256", tl.Len())
	}
	if tl.Dropped() != 4*500-256 {
		t.Errorf("dropped = %d, want %d", tl.Dropped(), 4*500-256)
	}
}

// TestFormatTraceIDRoundTrip checks the exported form parses back to the
// same 8-byte ID (the contract joining /tracez exemplars, alert events,
// and Chrome-trace args to control-plane frames).
func TestFormatTraceIDRoundTrip(t *testing.T) {
	if s := FormatTraceID(0); s != "" {
		t.Errorf("FormatTraceID(0) = %q, want \"\" (no trace)", s)
	}
	for _, id := range []uint64{1, 0xabcd, 1<<64 - 1, NewTraceID()} {
		s := FormatTraceID(id)
		if len(s) != 18 || !strings.HasPrefix(s, "0x") {
			t.Errorf("FormatTraceID(%d) = %q, want 0x + 16 hex digits", id, s)
		}
		back, err := strconv.ParseUint(s, 0, 64)
		if err != nil {
			t.Fatalf("FormatTraceID(%d) = %q does not parse: %v", id, s, err)
		}
		if back != id {
			t.Errorf("round trip %d -> %q -> %d", id, s, back)
		}
	}
}

func TestNewTraceIDUnique(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if id == 0 {
			t.Fatal("zero trace id")
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %x", id)
		}
		seen[id] = true
	}
}
