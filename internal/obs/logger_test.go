package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func fixedNow() time.Time {
	return time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
}

func TestLogfmtOutput(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, LevelDebug, Logfmt)
	l.now = fixedNow
	l.Info("search finished", "searcher", "greedy", "best", 41.5, "note", "two words")
	got := sb.String()
	want := `ts=2026-08-05T12:00:00Z level=info msg="search finished" searcher=greedy best=41.5 note="two words"` + "\n"
	if got != want {
		t.Errorf("logfmt record:\n got %q\nwant %q", got, want)
	}
}

func TestJSONOutput(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, LevelDebug, JSONFormat)
	l.now = fixedNow
	l.Error("ack timeout", "seq", 7, "attempts", 3)
	var rec map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &rec); err != nil {
		t.Fatalf("record is not valid JSON: %v\n%s", err, sb.String())
	}
	if rec["level"] != "error" || rec["msg"] != "ack timeout" || rec["seq"] != float64(7) {
		t.Errorf("record = %v", rec)
	}
}

func TestLevelGate(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, LevelWarn, Logfmt)
	l.Debug("nope")
	l.Info("nope")
	l.Warn("yes")
	l.Error("yes")
	if got := strings.Count(sb.String(), "\n"); got != 2 {
		t.Errorf("records written = %d, want 2:\n%s", got, sb.String())
	}
	if l.Enabled(LevelDebug) || !l.Enabled(LevelError) {
		t.Error("Enabled gate wrong")
	}
}

func TestNilLoggerIsInert(t *testing.T) {
	var l *Logger
	l.Debug("x")
	l.Info("x", "k", 1)
	l.Warn("x")
	l.Error("x", "odd")
	if l.Enabled(LevelError) {
		t.Error("nil logger claims to be enabled")
	}
}

func TestOddKeyValueCount(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, LevelDebug, Logfmt)
	l.now = fixedNow
	l.Info("m", "dangling")
	if !strings.Contains(sb.String(), "!BADKEY=dangling") {
		t.Errorf("odd kv not flagged: %s", sb.String())
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "Info": LevelInfo, "WARN": LevelWarn,
		"warning": LevelWarn, "error": LevelError, "off": LevelOff, "": LevelOff,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("bogus level accepted")
	}
}

func TestLoggerConcurrentWriters(t *testing.T) {
	var sb safeBuilder
	l := NewLogger(&sb, LevelDebug, Logfmt)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Info("tick", "worker", id, "i", i)
			}
		}(w)
	}
	wg.Wait()
	for _, line := range strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n") {
		if !strings.HasPrefix(line, "ts=") || !strings.Contains(line, "msg=tick") {
			t.Fatalf("interleaved record: %q", line)
		}
	}
}

// safeBuilder is a mutex-guarded strings.Builder: the logger serializes
// its own writes, but the underlying writer must still be shared safely
// with the final read.
type safeBuilder struct {
	mu sync.Mutex
	sb strings.Builder
}

func (s *safeBuilder) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sb.Write(p)
}

func (s *safeBuilder) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sb.String()
}
