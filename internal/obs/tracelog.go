package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TraceLog collects completed spans — search phases, sweep iterations,
// control-plane round trips — as timeline events and exports them in the
// Chrome trace-event JSON format, loadable in Perfetto or
// chrome://tracing. Where the Registry aggregates (count/total/min/max
// per span name), the TraceLog keeps each occurrence with its wall-clock
// placement, so an entire presssweep or pressctl session renders as a
// timeline.
//
// Events are grouped onto tracks (rendered as separate "processes"):
// spans recorded through a Registry land on the track named by their
// first path segment ("search/greedy" → track "search"), and the control
// plane records its matched send→ack pairs explicitly on "controller"
// and "agent" tracks, correlated by trace ID.
//
// A nil *TraceLog discards every record, so instrumented code records
// unconditionally. The buffer is bounded: once cap is reached new events
// are dropped (and counted), keeping a long-running server's memory flat.
//
// A TraceLog is a long-lived component and carries the shared
// obs.Lifecycle contract: it starts collecting at construction, and
// Stop — idempotent, safe concurrently with Record — freezes it, so a
// teardown path can quiesce the log before exporting it and every
// owner (obs.CLI, scope.Scope) shuts it down the same way it shuts
// down every other obs component.
type TraceLog struct {
	life    Lifecycle
	mu      sync.Mutex
	events  []traceEvent
	max     int
	dropped int64
}

// traceEvent is one completed span occurrence.
type traceEvent struct {
	track string
	name  string
	trace uint64
	start time.Time
	dur   time.Duration
	args  map[string]any
}

// DefaultTraceCap bounds a TraceLog's buffered events (~a few MB worst
// case) unless NewTraceLogCap is used.
const DefaultTraceCap = 1 << 16

// NewTraceLog returns an empty trace log with the default capacity.
func NewTraceLog() *TraceLog { return NewTraceLogCap(DefaultTraceCap) }

// NewTraceLogCap returns an empty trace log buffering at most max events.
func NewTraceLogCap(max int) *TraceLog {
	if max <= 0 {
		max = DefaultTraceCap
	}
	t := &TraceLog{max: max}
	t.life.Start(nil, nil) // collecting from birth; Stop freezes
	return t
}

// Stop freezes the log: records arriving afterwards are dropped (and
// counted), so an exporter reading the buffer races nothing. Idempotent
// and safe on a nil log — the uniform obs teardown contract.
func (t *TraceLog) Stop() {
	if t == nil {
		return
	}
	t.life.Stop()
}

// Record appends one completed span occurrence. track groups events into
// timeline rows; trace correlates events across tracks (0 = uncorrelated);
// args are optional key→value annotations shown in the trace viewer. The
// args map is retained — callers must not mutate it afterwards. A nil
// TraceLog discards the record.
func (t *TraceLog) Record(track, name string, trace uint64, start time.Time, dur time.Duration, args map[string]any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.events) >= t.max || t.life.Stopped() {
		t.dropped++
		t.mu.Unlock()
		return
	}
	t.events = append(t.events, traceEvent{
		track: track, name: name, trace: trace, start: start, dur: dur, args: args,
	})
	t.mu.Unlock()
}

// Len returns the number of buffered events (0 for nil).
func (t *TraceLog) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many events were discarded against the capacity
// bound.
func (t *TraceLog) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// TraceSpan is one exported event, for programmatic inspection in tests.
type TraceSpan struct {
	Track   string
	Name    string
	TraceID uint64
	Start   time.Time
	Dur     time.Duration
}

// Spans returns a copy of the buffered events in record order.
func (t *TraceLog) Spans() []TraceSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceSpan, len(t.events))
	for i, e := range t.events {
		out[i] = TraceSpan{Track: e.track, Name: e.name, TraceID: e.trace, Start: e.start, Dur: e.dur}
	}
	return out
}

// chromeEvent is the trace-event JSON shape: "X" complete events carry
// name/ts/dur on a pid/tid pair, "M" metadata events name the tracks.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteJSON writes the buffered events as a Chrome trace-event JSON
// array. Each track becomes its own pid with a process_name metadata
// record; ts/dur are microseconds, with span wall-clock times carried
// verbatim so traces from separate processes (controller and agent
// binaries) line up when concatenated.
func (t *TraceLog) WriteJSON(w io.Writer) error {
	var events []traceEvent
	if t != nil {
		t.mu.Lock()
		events = append([]traceEvent(nil), t.events...)
		t.mu.Unlock()
	}

	// Assign stable pids by sorted track name.
	trackSet := map[string]bool{}
	for _, e := range events {
		trackSet[e.track] = true
	}
	tracks := make([]string, 0, len(trackSet))
	for tr := range trackSet {
		tracks = append(tracks, tr)
	}
	sort.Strings(tracks)
	pids := make(map[string]int, len(tracks))
	out := make([]chromeEvent, 0, len(events)+len(tracks))
	for i, tr := range tracks {
		pids[tr] = i + 1
		out = append(out, chromeEvent{
			Name: "process_name", Ph: "M", Pid: i + 1, Tid: 0,
			Args: map[string]any{"name": tr},
		})
	}
	for _, e := range events {
		args := e.args
		if e.trace != 0 {
			// Copy so the recorded map is never mutated.
			withTrace := make(map[string]any, len(args)+1)
			for k, v := range args {
				withTrace[k] = v
			}
			withTrace["trace_id"] = FormatTraceID(e.trace)
			args = withTrace
		}
		cat := e.track
		if i := strings.IndexByte(e.name, '/'); i > 0 {
			cat = e.name[:i]
		}
		out = append(out, chromeEvent{
			Name: e.name,
			Cat:  cat,
			Ph:   "X",
			Ts:   float64(e.start.UnixNano()) / 1e3,
			Dur:  float64(e.dur.Nanoseconds()) / 1e3,
			Pid:  pids[e.track],
			Tid:  1,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// FormatTraceID renders a trace ID in the canonical joinable form used
// everywhere an ID is serialized — Chrome-trace span args, sweep records,
// CSV columns — so a recorded measurement row greps directly against its
// trace span. Zero (no trace) renders as "".
func FormatTraceID(id uint64) string {
	if id == 0 {
		return ""
	}
	return fmt.Sprintf("%#016x", id)
}

// traceIDCounter and traceIDSalt make NewTraceID unique within a process
// and overwhelmingly unlikely to collide across processes.
var (
	traceIDCounter atomic.Uint64
	traceIDSalt    = uint64(time.Now().UnixNano())
)

// NewTraceID returns a fresh nonzero trace ID. IDs are cheap (no
// allocation) and well-mixed, so they double as correlation keys across
// controller and agent processes.
func NewTraceID() uint64 {
	id := splitmix64(traceIDSalt + traceIDCounter.Add(1))
	if id == 0 {
		id = 1 // 0 means "no trace" on the wire
	}
	return id
}

// splitmix64 is the SplitMix64 finalizer — a fast, high-quality mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
