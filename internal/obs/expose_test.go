package obs

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func populated() *Registry {
	r := NewRegistry()
	r.Counter("search_evaluations_total").Add(42)
	r.Gauge("search_best_objective").Set(38.5)
	h := r.Histogram("radio_channel_solve_seconds", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.5)
	r.observeSpan("exp/fig4", time.Now(), 120*time.Millisecond)
	return r
}

func TestWriteJSONRoundTrips(t *testing.T) {
	var sb strings.Builder
	if err := populated().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(sb.String()), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if snap.Counters["search_evaluations_total"] != 42 {
		t.Errorf("counters = %v", snap.Counters)
	}
	if snap.Gauges["search_best_objective"] != 38.5 {
		t.Errorf("gauges = %v", snap.Gauges)
	}
	h := snap.Histograms["radio_channel_solve_seconds"]
	if h.Count != 2 || len(h.Buckets) != 3 {
		t.Errorf("histogram = %+v", h)
	}
	sp := snap.Spans["exp/fig4"]
	if sp.Count != 1 || sp.TotalSeconds < 0.1 {
		t.Errorf("span = %+v", sp)
	}
}

func TestWriteTextPrometheusFormat(t *testing.T) {
	var sb strings.Builder
	if err := populated().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE search_evaluations_total counter",
		"search_evaluations_total 42",
		"# TYPE search_best_objective gauge",
		"search_best_objective 38.5",
		"# TYPE radio_channel_solve_seconds histogram",
		`radio_channel_solve_seconds_bucket{le="0.001"} 1`,
		`radio_channel_solve_seconds_bucket{le="+Inf"} 2`,
		"radio_channel_solve_seconds_count 2",
		"# TYPE exp_fig4_seconds summary",
		"exp_fig4_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSanitizeMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"exp/fig4":    "exp_fig4",
		"ok_name":     "ok_name",
		"9lead":       "_lead",
		"with-dash.x": "with_dash_x",
		"":            "_",
	} {
		if got := SanitizeMetricName(in); got != want {
			t.Errorf("Sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCLILifecycle(t *testing.T) {
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "metrics.json")
	var c CLI
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	c.Register(fs)
	if err := fs.Parse([]string{
		"-telemetry", snapPath, "-log-level", "info",
		"-memprofile", filepath.Join(dir, "mem.pprof"),
		"-cpuprofile", filepath.Join(dir, "cpu.pprof"),
	}); err != nil {
		t.Fatal(err)
	}
	var logBuf strings.Builder
	if err := c.Start(&logBuf); err != nil {
		t.Fatal(err)
	}
	if c.Registry() == nil || c.Logger() == nil {
		t.Fatal("registry/logger not constructed")
	}
	c.Registry().Counter("x_total").Inc()
	StartSpan(c.Registry(), "phase").End()
	if err := c.Finish(os.Stdout); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot file invalid: %v", err)
	}
	if snap.Counters["x_total"] != 1 {
		t.Errorf("snapshot = %+v", snap)
	}
	if !strings.Contains(logBuf.String(), "span summary") {
		t.Errorf("span summary not logged: %s", logBuf.String())
	}
	for _, f := range []string{"mem.pprof", "cpu.pprof"} {
		if st, err := os.Stat(filepath.Join(dir, f)); err != nil || st.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", f, err)
		}
	}
}

func TestCLIDisabledDefault(t *testing.T) {
	var c CLI
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	c.Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(os.Stderr); err != nil {
		t.Fatal(err)
	}
	if c.Registry() != nil || c.Logger() != nil {
		t.Error("disabled default constructed a registry/logger")
	}
	var sb strings.Builder
	if err := c.Finish(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Errorf("disabled Finish wrote output: %q", sb.String())
	}
}

func TestCLIDashWritesToStdoutWriter(t *testing.T) {
	var c CLI
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	c.Register(fs)
	if err := fs.Parse([]string{"-telemetry", "-", "-telemetry-format", "prom"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(os.Stderr); err != nil {
		t.Fatal(err)
	}
	c.Registry().Counter("y_total").Add(3)
	var sb strings.Builder
	if err := c.Finish(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "y_total 3") {
		t.Errorf("prom output = %q", sb.String())
	}
}

func TestCLIRejectsBadFlags(t *testing.T) {
	var c CLI
	c.TelemetryFormat = "xml"
	if err := c.Start(os.Stderr); err == nil {
		t.Error("bad format accepted")
	}
	c = CLI{TelemetryFormat: "json", LogLevel: "loud"}
	if err := c.Start(os.Stderr); err == nil {
		t.Error("bad level accepted")
	}
}
