// Package names is the single spelling authority for the telemetry
// stack's self-metric names. The export pipeline, the scope directory,
// and the tsdb store all observe themselves through the registry they
// serve, and the health rules and tests match those series by name —
// four call sites per string is exactly how spellings drift. This is a
// leaf package (no imports) so every layer of the obs tree can depend
// on it without cycles; the packages that own each metric re-export
// these as their own constants, so existing callers keep compiling.
package names

// Export pipeline self-telemetry (internal/obs/export).
const (
	ExportBatchesSent   = "obs_export_batches_sent_total"
	ExportBatchesFailed = "obs_export_batches_failed_total"
	ExportRetries       = "obs_export_retries_total"
	ExportDropped       = "obs_export_dropped_total"
	ExportQueueDepth    = "obs_export_queue_depth"
	ExportLastSuccessMs = "obs_export_last_success_unix_ms"
)

// Scope directory metrics (internal/obs/scope).
const (
	SessionsOpened  = "obs_sessions_opened_total"
	SessionsEvicted = "obs_sessions_evicted_total"
	SessionsActive  = "obs_sessions_active"
)

// Time-series store self-telemetry (internal/obs/tsdb).
const (
	TSDBBatches          = "obs_tsdb_batches_total"
	TSDBSamples          = "obs_tsdb_samples_total"
	TSDBDropped          = "obs_tsdb_dropped_total"
	TSDBSeries           = "obs_tsdb_series"
	TSDBSeriesRejected   = "obs_tsdb_series_rejected_total"
	TSDBDiskBytes        = "obs_tsdb_disk_bytes"
	TSDBSegments         = "obs_tsdb_segments"
	TSDBCompactions      = "obs_tsdb_compactions_total"
	TSDBCompactionSecs   = "obs_tsdb_compaction_seconds"
	TSDBSessionsReleased = "obs_tsdb_sessions_released_total"
	TSDBCorruptFrames    = "obs_tsdb_corrupt_frames_total"
)
