package health

import (
	"math"
	"math/rand/v2"
	"testing"
)

// feed drives an engine through a value sequence for a single-metric
// rule set and returns the rule states after each sample plus all
// transitions. NaN values model "KPI unknown this sample".
func feed(t *testing.T, e *engine, metric string, values []float64) (states []State, events []Event) {
	t.Helper()
	hist := newSeries(64)
	for i, v := range values {
		if !math.IsNaN(v) {
			hist.append(Point{UnixMs: int64(i), Value: v})
		}
		kpi := func(name string) float64 {
			if name == metric {
				return v
			}
			return math.NaN()
		}
		window := func(name string, n int, dst []float64) []float64 {
			if name == metric {
				return hist.last(n, dst)
			}
			return dst
		}
		events = append(events, e.eval(int64(i), kpi, window)...)
		states = append(states, e.rules[0].state)
	}
	return states, events
}

func mustRules(t *testing.T, s string) []Rule {
	t.Helper()
	rules, err := ParseRules(s)
	if err != nil {
		t.Fatal(err)
	}
	return rules
}

func TestAlertTransitions(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name   string
		rule   string
		values []float64
		want   []State
	}{
		{
			name:   "pending then firing then resolved",
			rule:   "null_depth_db>25 for 3 clear 20",
			values: []float64{10, 30, 30, 30, 30, 10, 10, 10, 5},
			want: []State{
				StateInactive, StatePending, StatePending, StateFiring, StateFiring,
				StateFiring, StateFiring, StateResolved, StateInactive,
			},
		},
		{
			name:   "for=1 fires immediately",
			rule:   "null_depth_db>25",
			values: []float64{10, 30},
			want:   []State{StateInactive, StateFiring},
		},
		{
			name:   "pending resets on recovery before firing",
			rule:   "null_depth_db>25 for 3",
			values: []float64{30, 30, 10, 30, 30, 30},
			want: []State{
				StatePending, StatePending, StateInactive,
				StatePending, StatePending, StateFiring,
			},
		},
		{
			name: "hysteresis: oscillation between clear and threshold stays firing",
			rule: "null_depth_db>25 for 2 clear 20",
			// 22 is healthy w.r.t. 25 but NOT w.r.t. clear 20, so the
			// firing alert must not resolve.
			values: []float64{30, 30, 22, 24, 22, 23, 22},
			want: []State{
				StatePending, StateFiring, StateFiring, StateFiring,
				StateFiring, StateFiring, StateFiring,
			},
		},
		{
			name: "hysteresis: resolve needs For consecutive clears",
			rule: "null_depth_db>25 for 2 clear 20",
			// One dip below clear is not enough; two consecutive are.
			values: []float64{30, 30, 15, 22, 15, 15},
			want: []State{
				StatePending, StateFiring, StateFiring,
				StateFiring, StateFiring, StateResolved,
			},
		},
		{
			name:   "less-than rule with clear above threshold",
			rule:   "min_snr_db<10 for 2 clear 15",
			values: []float64{20, 5, 5, 12, 12, 16, 16},
			want: []State{
				StateInactive, StatePending, StateFiring, StateFiring,
				StateFiring, StateFiring, StateResolved,
			},
		},
		{
			name:   "NaN freezes state",
			rule:   "null_depth_db>25 for 2",
			values: []float64{30, nan, nan, 30, nan, 30},
			want: []State{
				StatePending, StatePending, StatePending,
				StateFiring, StateFiring, StateFiring,
			},
		},
		{
			name:   "resolved lasts one sample even through NaN",
			rule:   "null_depth_db>25 clear 20",
			values: []float64{30, 10, nan},
			want:   []State{StateFiring, StateResolved, StateInactive},
		},
		{
			name:   "refire from resolved in one sample",
			rule:   "null_depth_db>25 clear 20",
			values: []float64{30, 10, 30},
			want:   []State{StateFiring, StateResolved, StateFiring},
		},
		{
			name:   "trend rising fires and clears",
			rule:   "cond_db rising over 3 for 2",
			values: []float64{1, 2, 3, 4, 5, 5, 5, 5},
			want: []State{
				StateInactive, StateInactive, StatePending, StateFiring,
				StateFiring, StateFiring, StateFiring, StateResolved,
			},
		},
		{
			name:   "trend falling direction",
			rule:   "search_best falling over 3",
			values: []float64{5, 4, 3},
			want:   []State{StateInactive, StateInactive, StateFiring},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rules := mustRules(t, c.rule)
			e := newEngine(rules)
			states, _ := feed(t, e, rules[0].Metric, c.values)
			for i := range c.want {
				if states[i] != c.want[i] {
					t.Fatalf("sample %d (value %v): state %v, want %v\nall: %v",
						i, c.values[i], states[i], c.want[i], states)
				}
			}
		})
	}
}

func TestAlertEventSequence(t *testing.T) {
	rules := mustRules(t, "null_depth_db>25 for 2 clear 20")
	e := newEngine(rules)
	_, events := feed(t, e, KPINullDepthDB, []float64{30, 30, 10, 10, 10})

	want := []struct{ from, to State }{
		{StateInactive, StatePending},
		{StatePending, StateFiring},
		{StateFiring, StateResolved},
		{StateResolved, StateInactive},
	}
	if len(events) != len(want) {
		t.Fatalf("got %d events %v, want %d", len(events), events, len(want))
	}
	for i, w := range want {
		if events[i].From != w.from || events[i].To != w.to {
			t.Errorf("event %d = %v→%v, want %v→%v", i, events[i].From, events[i].To, w.from, w.to)
		}
	}
	snap := e.snapshot(99)
	if len(snap.Events) != len(want) {
		t.Errorf("snapshot carries %d events", len(snap.Events))
	}
	if snap.Rules[0].FiredCount != 1 {
		t.Errorf("fired count = %d", snap.Rules[0].FiredCount)
	}
}

func TestAlertEventHistoryBounded(t *testing.T) {
	rules := mustRules(t, "null_depth_db>25 clear 20")
	e := newEngine(rules)
	// Each period of (30, 10, 10) produces firing→resolved→inactive(+refire):
	// flood well past the cap.
	var vals []float64
	for i := 0; i < 3*eventCap; i++ {
		vals = append(vals, 30, 10, 10)
	}
	feed(t, e, KPINullDepthDB, vals)
	if n := len(e.events); n > eventCap {
		t.Errorf("event history %d exceeds cap %d", n, eventCap)
	}
}

// TestNoFiringOnHealthyConstantSeries is the property test of the issue:
// whatever the constant level (including noisy-constant float values),
// no default rule may ever leave the inactive state. This pins down the
// trend rules' float-noise epsilon: the least-squares slope of a
// constant series is never exactly zero in floating point.
func TestNoFiringOnHealthyConstantSeries(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for trial := 0; trial < 200; trial++ {
		// Healthy levels: null depth below threshold, condition number
		// constant, regret 0, staleness small.
		level := rng.Float64()*20 - 10 // constant in [-10, 10)
		healthy := map[string]float64{
			KPIMinSNRdB:          20 + level,
			KPINullDepthDB:       math.Abs(level),          // < 25
			KPINullSubcarrier:    float64(int(level)) + 12, // constant
			KPINullDriftSC:       0,
			KPICondDB:            5 + level/100, // constant-ish per trial
			KPISearchBest:        level,
			KPISearchRegretDB:    0,
			KPIControlStalenessS: rng.Float64(), // < 10
		}
		e := newEngine(mustRules(t, "default"))
		hist := map[string]*Series{}
		for k := range healthy {
			hist[k] = newSeries(64)
		}
		for i := 0; i < 100; i++ {
			for k, v := range healthy {
				hist[k].append(Point{UnixMs: int64(i), Value: v})
			}
			kpi := func(name string) float64 {
				if v, ok := healthy[name]; ok {
					return v
				}
				return math.NaN()
			}
			window := func(name string, n int, dst []float64) []float64 {
				if s, ok := hist[name]; ok {
					return s.last(n, dst)
				}
				return dst
			}
			if evs := e.eval(int64(i), kpi, window); len(evs) != 0 {
				t.Fatalf("trial %d sample %d: healthy constant series caused transitions %v (levels %v)",
					trial, i, evs, healthy)
			}
		}
		for _, rs := range e.rules {
			if rs.state != StateInactive {
				t.Fatalf("trial %d: rule %q ended %v on healthy constant series",
					trial, rs.rule.Name, rs.state)
			}
		}
	}
}

func TestLsSlope(t *testing.T) {
	if s := lsSlope([]float64{1, 2, 3, 4}); math.Abs(s-1) > 1e-12 {
		t.Errorf("slope of 1,2,3,4 = %v", s)
	}
	if s := lsSlope([]float64{4, 3, 2, 1}); math.Abs(s+1) > 1e-12 {
		t.Errorf("slope of 4,3,2,1 = %v", s)
	}
	if s := lsSlope([]float64{2, 2}); s != 0 {
		t.Errorf("slope of constant = %v", s)
	}
	if s := lsSlope([]float64{5}); s != 0 {
		t.Errorf("slope of singleton = %v", s)
	}
}

func TestStateJSON(t *testing.T) {
	for s, want := range map[State]string{
		StateInactive: `"inactive"`, StatePending: `"pending"`,
		StateFiring: `"firing"`, StateResolved: `"resolved"`,
	} {
		b, err := s.MarshalJSON()
		if err != nil || string(b) != want {
			t.Errorf("State(%d).MarshalJSON = %s, %v; want %s", s, b, err, want)
		}
	}
}

func TestNilEngine(t *testing.T) {
	var e *engine
	if evs := e.eval(0, func(string) float64 { return 1 }, nil); evs != nil {
		t.Errorf("nil engine eval = %v", evs)
	}
	snap := e.snapshot(0)
	if len(snap.Rules) != 0 || snap.Rules == nil || snap.Events == nil {
		t.Errorf("nil engine snapshot = %+v", snap)
	}
}
