package health

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestLiveDeepNullAlertOverSSE is the end-to-end acceptance scenario: a
// full telemetry stack (registry, recorder, HTTP server, monitor) comes
// up through the CLI, a producer feeds SNR curves concurrently with the
// background sampler, and an induced deep null drives a rule through
// pending → firing → resolved, observed from the outside as named SSE
// events on /events. Run under -race this also exercises the
// producer/sampler/server locking.
func TestLiveDeepNullAlertOverSSE(t *testing.T) {
	fs := flag.NewFlagSet("live", flag.ContinueOnError)
	var tele CLI
	tele.Register(fs)
	if err := fs.Parse([]string{
		"-telemetry-addr", "127.0.0.1:0",
		"-alert-rules", "deep-null=null_depth_db>25 for 2 clear 20",
		"-health-interval", "5ms",
	}); err != nil {
		t.Fatal(err)
	}
	if err := tele.Start(io.Discard); err != nil {
		t.Fatal(err)
	}
	defer tele.Finish(io.Discard)
	mon := tele.Health()
	if mon == nil {
		t.Fatal("health layer off despite -alert-rules")
	}
	base := "http://" + tele.ServerAddr()

	// Producer: feeds the link's SNR curve every millisecond. The curve
	// starts with a 30 dB null; once the test has seen the rule fire it
	// flips recovered and the curve goes flat (healthy past the 20 dB
	// clear level), which must resolve the alert.
	var recovered atomic.Bool
	feederCtx, stopFeeder := context.WithCancel(context.Background())
	defer stopFeeder()
	go func() {
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-feederCtx.Done():
				return
			case <-tick.C:
				if recovered.Load() {
					mon.ObserveSNR(snrWithNull(32, 9, 2))
				} else {
					mon.ObserveSNR(snrWithNull(32, 9, 30))
				}
			}
		}
	}()

	// Outside observer: a plain SSE client on /events.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("/events Content-Type = %q", ct)
	}

	type transition struct {
		Rule string `json:"rule"`
		From string `json:"from"`
		To   string `json:"to"`
	}
	var seen []string
	sc := bufio.NewScanner(resp.Body)
	eventName := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			eventName = strings.TrimPrefix(line, "event: ")
		case line == "":
			eventName = ""
		case strings.HasPrefix(line, "data: ") && eventName == "alert":
			var tr transition
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &tr); err != nil {
				t.Fatalf("alert event not JSON: %v", err)
			}
			if tr.Rule != "deep-null" {
				t.Fatalf("unexpected rule %q", tr.Rule)
			}
			seen = append(seen, tr.To)
			if tr.To == "firing" {
				recovered.Store(true) // heal the channel
			}
		}
		if len(seen) > 0 && seen[len(seen)-1] == "resolved" {
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("SSE stream broke before resolution (saw %v): %v", seen, err)
	}
	want := []string{"pending", "firing", "resolved"}
	if len(seen) < len(want) {
		t.Fatalf("transitions over SSE = %v, want %v", seen, want)
	}
	for i, w := range want {
		if seen[i] != w {
			t.Fatalf("transition %d = %q, want %q (all: %v)", i, seen[i], w, seen)
		}
	}

	// The side endpoints serve consistent views of the same incident.
	var alerts AlertsSnapshot
	getJSON(t, base+"/alerts", &alerts)
	if len(alerts.Rules) != 1 || alerts.Rules[0].FiredCount < 1 {
		t.Errorf("/alerts after incident = %+v", alerts)
	}
	var snap Snapshot
	getJSON(t, base+"/health.json", &snap)
	if len(snap.Series[KPINullDepthDB]) == 0 {
		t.Errorf("/health.json carries no %s series", KPINullDepthDB)
	}
	if len(snap.Spectrogram) == 0 {
		t.Error("/health.json carries no spectrogram")
	}

	dash := getBody(t, base+"/dashboard")
	if !strings.Contains(dash, "PRESS channel health") {
		t.Errorf("/dashboard does not look like the dashboard: %.80s", dash)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	body := getBody(t, url)
	if err := json.Unmarshal([]byte(body), v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
