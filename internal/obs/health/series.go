// Package health is the domain-telemetry layer over internal/obs: where
// the obs registry counts generic events (frames, evaluations, solves),
// this package watches the *physics* the paper argues from — per-
// subcarrier SNR curves, null depth and drift, the 2×2 MIMO condition
// number, search regret, control-plane staleness — as bounded time
// series, evaluates alert rules over them with a pending→firing→resolved
// state machine, and serves a zero-dependency live dashboard.
//
// Like obs, everything is nil-safe: a nil *Monitor discards every
// observation, so producers (radio links, the instrumented searcher, the
// control-plane agent) feed it unconditionally and pay one pointer check
// when health telemetry is off — the default.
package health

// Point is one timestamped KPI reading.
type Point struct {
	UnixMs int64   `json:"unix_ms"`
	Value  float64 `json:"value"`
}

// Series is a bounded ring of points, oldest overwritten. It is not
// safe for concurrent use on its own; the Monitor's lock guards it.
type Series struct {
	ring  []Point
	next  int
	count int
}

func newSeries(capacity int) *Series {
	return &Series{ring: make([]Point, capacity)}
}

func (s *Series) append(p Point) {
	s.ring[s.next] = p
	s.next = (s.next + 1) % len(s.ring)
	if s.count < len(s.ring) {
		s.count++
	}
}

// Len returns the number of buffered points.
func (s *Series) Len() int { return s.count }

// Points returns the buffered points, oldest first.
func (s *Series) Points() []Point {
	out := make([]Point, 0, s.count)
	start := s.next - s.count
	if start < 0 {
		start += len(s.ring)
	}
	for i := 0; i < s.count; i++ {
		out = append(out, s.ring[(start+i)%len(s.ring)])
	}
	return out
}

// last appends the values of the most recent n points to dst (oldest of
// the n first) and returns it; fewer than n are returned when the series
// is shorter.
func (s *Series) last(n int, dst []float64) []float64 {
	if n > s.count {
		n = s.count
	}
	start := s.next - n
	if start < 0 {
		start += len(s.ring)
	}
	for i := 0; i < n; i++ {
		dst = append(dst, s.ring[(start+i)%len(s.ring)].Value)
	}
	return dst
}

// SpectrogramRow is one sampled per-subcarrier SNR curve — a row of the
// dashboard's SNR spectrogram.
type SpectrogramRow struct {
	UnixMs int64     `json:"unix_ms"`
	SNRdB  []float64 `json:"snr_db"`
}

// spectrogram is a bounded ring of SNR rows.
type spectrogram struct {
	ring  []SpectrogramRow
	next  int
	count int
}

func newSpectrogram(capacity int) *spectrogram {
	return &spectrogram{ring: make([]SpectrogramRow, capacity)}
}

func (s *spectrogram) append(r SpectrogramRow) {
	s.ring[s.next] = r
	s.next = (s.next + 1) % len(s.ring)
	if s.count < len(s.ring) {
		s.count++
	}
}

// rows returns the buffered rows, oldest first.
func (s *spectrogram) rows() []SpectrogramRow {
	out := make([]SpectrogramRow, 0, s.count)
	start := s.next - s.count
	if start < 0 {
		start += len(s.ring)
	}
	for i := 0; i < s.count; i++ {
		out = append(out, s.ring[(start+i)%len(s.ring)])
	}
	return out
}
