package health

import (
	_ "embed"
	"net/http"
)

// dashboardHTML is the zero-dependency live dashboard: one self-
// contained page (inline CSS + JS, no external assets) that bootstraps
// from /health.json and /alerts, then follows the SSE /events stream's
// named "health" and "alert" events. Sparklines and the SNR spectrogram
// render on <canvas>; light and dark themes follow the OS preference.
//
//go:embed dashboard.html
var dashboardHTML []byte

// DashboardHandler serves the embedded dashboard page.
func DashboardHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Header().Set("Cache-Control", "no-store")
		_, _ = w.Write(dashboardHTML)
	}
}
