package health

import (
	"flag"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestCLIRegisterFlags(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	var tele CLI
	tele.Register(fs)
	for _, name := range []string{
		"alert-rules", "health-interval", // health layer
		"telemetry", "telemetry-addr", "sample-interval", // inherited obs layer
	} {
		if fs.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}
}

func TestCLIDisabledDefault(t *testing.T) {
	var tele CLI
	if err := tele.Start(io.Discard); err != nil {
		t.Fatal(err)
	}
	if tele.Health() != nil {
		t.Error("Health() non-nil with no flags set")
	}
	if err := tele.Finish(io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestCLIBadRulesFailEarly(t *testing.T) {
	tele := CLI{AlertRules: "bogus_kpi>1"}
	tele.TelemetryAddr = "127.0.0.1:0"
	err := tele.Start(io.Discard)
	if err == nil || !strings.Contains(err.Error(), "unknown KPI") {
		t.Fatalf("Start with bad rules = %v", err)
	}
	// The obs layer must not have come up: bad rules are rejected before
	// any listener binds.
	if tele.ServerAddr() != "" {
		t.Error("server started despite rule parse error")
	}
}

func TestCLIRulesWithoutServer(t *testing.T) {
	// Alert rules alone (no -telemetry*) still bring the monitor up, with
	// evaluation feeding only Notify/logs — no registry, no server.
	tele := CLI{AlertRules: "default", HealthInterval: time.Hour}
	if err := tele.Start(io.Discard); err != nil {
		t.Fatal(err)
	}
	defer tele.Finish(io.Discard)
	mon := tele.Health()
	if mon == nil {
		t.Fatal("monitor off despite -alert-rules")
	}
	mon.ObserveSNR(snrWithNull(16, 4, 30))
	mon.Sample()
	if got := len(mon.Alerts().Rules); got != 6 {
		t.Errorf("monitor runs %d rules, want 6 defaults", got)
	}
}

func TestCLIServedEndpoints(t *testing.T) {
	tele := CLI{AlertRules: "default", HealthInterval: time.Hour}
	tele.TelemetryAddr = "127.0.0.1:0"
	if err := tele.Start(io.Discard); err != nil {
		t.Fatal(err)
	}
	defer tele.Finish(io.Discard)
	base := "http://" + tele.ServerAddr()

	dash := getBody(t, base+"/dashboard")
	for _, want := range []string{"PRESS channel health", "<canvas", "EventSource"} {
		if !strings.Contains(dash, want) {
			t.Errorf("/dashboard missing %q", want)
		}
	}

	var alerts AlertsSnapshot
	getJSON(t, base+"/alerts", &alerts)
	if len(alerts.Rules) != 6 {
		t.Errorf("/alerts serves %d rules", len(alerts.Rules))
	}
	var snap Snapshot
	getJSON(t, base+"/health.json", &snap)
	if snap.IntervalMs != time.Hour.Milliseconds() {
		t.Errorf("/health.json interval_ms = %d", snap.IntervalMs)
	}

	// The JSON endpoints carry the live-data headers.
	for _, path := range []string{"/alerts", "/health.json"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s Content-Type = %q", path, ct)
		}
		if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
			t.Errorf("%s Cache-Control = %q", path, cc)
		}
	}
}

func TestCLIFinishIdempotent(t *testing.T) {
	tele := CLI{AlertRules: "default", HealthInterval: time.Hour}
	if err := tele.Start(io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := tele.Finish(io.Discard); err != nil {
		t.Fatal(err)
	}
	if tele.Health() != nil {
		t.Error("Health() non-nil after Finish")
	}
	if err := tele.Finish(io.Discard); err != nil {
		t.Fatal(err)
	}
}
