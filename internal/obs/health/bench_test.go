package health

import (
	"math"
	"testing"
	"time"

	"press/internal/obs"
)

// populatedMonitor builds a monitor mid-flight: full 64-subcarrier SNR
// curve, condition profile, search and actuation state, default rules.
func populatedMonitor(reg *obs.Registry) *Monitor {
	rules, err := ParseRules("default")
	if err != nil {
		panic(err)
	}
	m := NewMonitor(reg, rules, time.Second, 0)
	snr := make([]float64, 64)
	for i := range snr {
		snr[i] = 22 + 6*math.Sin(float64(i)/7)
	}
	snr[40] = -8 // a deep null to locate
	m.ObserveSNR(snr)
	m.ObserveCondProfile([]float64{3, 5, 8, 4})
	m.ObserveSearchBest(17)
	m.ObserveActuation()
	for i := 0; i < 32; i++ {
		m.Sample() // warm the series so trend windows are full
	}
	return m
}

// BenchmarkMonitorSample is the full per-tick cost with telemetry on:
// KPI computation over 64 subcarriers, ring appends, rule evaluation,
// and registry gauge mirroring.
func BenchmarkMonitorSample(b *testing.B) {
	m := populatedMonitor(obs.NewRegistry())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Sample()
	}
}

// BenchmarkEngineEval isolates the alert-rule machine: four default
// rules, one of them a trend rule reading an 8-sample window.
func BenchmarkEngineEval(b *testing.B) {
	rules, err := ParseRules("default")
	if err != nil {
		b.Fatal(err)
	}
	e := newEngine(rules)
	hist := newSeries(64)
	for i := 0; i < 64; i++ {
		hist.append(Point{UnixMs: int64(i), Value: 5})
	}
	kpi := func(name string) float64 { return 5 }
	window := func(name string, n int, dst []float64) []float64 { return hist.last(n, dst) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.eval(int64(i), kpi, window)
	}
}

// BenchmarkObserveSNR is the producer-side cost on the measurement hot
// path (one curve copy under the monitor lock).
func BenchmarkObserveSNR(b *testing.B) {
	m := populatedMonitor(nil)
	snr := make([]float64, 64)
	for i := range snr {
		snr[i] = 20
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ObserveSNR(snr)
	}
}

// BenchmarkNilMonitorObserve is the disabled default: producers call
// through a nil monitor. Must stay 0 allocs/op (and ~0 ns).
func BenchmarkNilMonitorObserve(b *testing.B) {
	var m *Monitor
	snr := []float64{1, 2, 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ObserveSNR(snr)
		m.ObserveSearchBest(1)
		m.ObserveActuation()
	}
	if testing.AllocsPerRun(100, func() {
		m.ObserveSNR(snr)
		m.ObserveSearchBest(1)
		m.ObserveActuation()
	}) != 0 {
		b.Fatal("nil-monitor observe path allocates")
	}
}
