package health

import (
	"math"
	"sync"
	"time"

	"press/internal/obs"
	"press/internal/stats"
)

// DefaultInterval is the KPI sampling period when none is configured.
const DefaultInterval = time.Second

// DefaultCapacity bounds each KPI series (and the SNR spectrogram) when
// no capacity is configured.
const DefaultCapacity = 512

// Monitor computes channel-health KPIs from live observations, keeps
// them as bounded time series, and runs the alert engine over every
// sample. Producers push raw observations (an SNR curve, a condition-
// number profile, a search best, an actuation); a background sampler
// distills them into the KPIs of KPINames once per interval.
//
// A nil *Monitor discards all observations and returns empty snapshots,
// so producers hold one unconditionally.
type Monitor struct {
	reg      *obs.Registry
	interval time.Duration
	now      func() time.Time // test hook; time.Now by default

	// Notify, when set before Start, is called after every sample with
	// ("health", samplePayload) and after every alert transition with
	// ("alert", Event) — the bridge to obs.Server.Publish. Called with
	// the monitor's lock released.
	Notify func(event string, v any)

	mu sync.Mutex
	// Latest raw observations, distilled at each sample tick.
	lastSNR       []float64
	snrSeen       bool
	lastCond      []float64
	condSeen      bool
	lastBest      float64
	allTimeBest   float64
	bestSeen      bool
	lastActuation time.Time
	actuationSeen bool
	prevNullSub   int
	prevNullSeen  bool
	// Control-loop deadline accounting, accumulated between samples and
	// reset each interval (the KPIs are per-interval aggregates).
	loopCount      int64
	loopMisses     int64
	loopLatMaxNs   int64
	loopSlackMinNs int64
	loopSlackSeen  bool
	lastLoopTrace  uint64
	lastMissTrace  uint64
	// Telemetry export pipeline state, pushed once per export collection
	// (dropped is cumulative; the sampler differentiates it into a rate).
	exportQueue    int
	exportDropped  int64
	exportAgeS     float64
	exportSeen     bool
	prevExpDropped int64
	prevExpSeen    bool
	series         map[string]*Series
	spec           *spectrogram
	eng            *engine
	lastSampleMs   int64
	sampledSamples int64

	life obs.Lifecycle
}

// NewMonitor returns a monitor sampling KPIs every interval into series
// of the given capacity, evaluating rules each sample, and mirroring
// the latest KPI values as health_* gauges into reg (all of reg, rules
// may be nil/empty). Non-positive interval or capacity take the
// defaults.
func NewMonitor(reg *obs.Registry, rules []Rule, interval time.Duration, capacity int) *Monitor {
	if interval <= 0 {
		interval = DefaultInterval
	}
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	m := &Monitor{
		reg:      reg,
		interval: interval,
		now:      time.Now,
		series:   make(map[string]*Series, len(KPINames)),
		spec:     newSpectrogram(capacity),
		eng:      newEngine(rules),
	}
	for _, name := range KPINames {
		m.series[name] = newSeries(capacity)
	}
	m.eng.exemplar = m.exemplarLocked
	return m
}

// DefaultLoopErrorBudget is the tolerated deadline-miss ratio behind
// the loop_burn_rate KPI: burn rate = interval miss ratio / budget, so
// a value above 1 means the loop is missing coherence deadlines faster
// than the SLO allows.
const DefaultLoopErrorBudget = 0.01

// exemplarLocked maps a firing rule's metric to an exemplar trace ID —
// the most recent deadline-missing loop for the loop KPIs (falling back
// to the most recent traced loop). The engine calls it under m.mu.
func (m *Monitor) exemplarLocked(metric string) uint64 {
	switch metric {
	case KPILoopLatencyS, KPILoopSlackS, KPILoopMissRatio, KPILoopBurnRate:
		if m.lastMissTrace != 0 {
			return m.lastMissTrace
		}
		return m.lastLoopTrace
	}
	return 0
}

// ObserveSNR records the latest per-subcarrier SNR curve of the link
// under observation. The slice is copied.
func (m *Monitor) ObserveSNR(snrDB []float64) {
	if m == nil || len(snrDB) == 0 {
		return
	}
	m.mu.Lock()
	m.lastSNR = append(m.lastSNR[:0], snrDB...)
	m.snrSeen = true
	m.mu.Unlock()
}

// ObserveCondProfile records the latest per-subcarrier MIMO condition-
// number profile in dB. The slice is copied.
func (m *Monitor) ObserveCondProfile(condDB []float64) {
	if m == nil || len(condDB) == 0 {
		return
	}
	m.mu.Lock()
	m.lastCond = append(m.lastCond[:0], condDB...)
	m.condSeen = true
	m.mu.Unlock()
}

// ObserveSearchBest records the best objective value a configuration
// search has reached so far; regret is measured against the best value
// ever observed.
func (m *Monitor) ObserveSearchBest(best float64) {
	if m == nil || math.IsNaN(best) {
		return
	}
	m.mu.Lock()
	if !m.bestSeen || best > m.allTimeBest {
		m.allTimeBest = best
	}
	m.lastBest = best
	m.bestSeen = true
	m.mu.Unlock()
}

// ObserveActuation records that the control plane successfully applied
// a configuration now; staleness is measured from the latest call.
func (m *Monitor) ObserveActuation() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.lastActuation = m.now()
	m.actuationSeen = true
	m.mu.Unlock()
}

// ObserveLoop records one traced control-loop iteration: its end-to-end
// latency, the coherence deadline it ran against (0 = unbounded),
// whether it missed that deadline, and its trace ID (0 = untraced). The
// sampler distills the interval's accumulated loops into the loop_*
// KPIs.
func (m *Monitor) ObserveLoop(latency, deadline time.Duration, missed bool, traceID uint64) {
	if m == nil || latency < 0 {
		return
	}
	m.mu.Lock()
	m.loopCount++
	if missed {
		m.loopMisses++
		if traceID != 0 {
			m.lastMissTrace = traceID
		}
	}
	if traceID != 0 {
		m.lastLoopTrace = traceID
	}
	if int64(latency) > m.loopLatMaxNs {
		m.loopLatMaxNs = int64(latency)
	}
	if deadline > 0 {
		slack := int64(deadline) - int64(latency)
		if !m.loopSlackSeen || slack < m.loopSlackMinNs {
			m.loopSlackMinNs = slack
			m.loopSlackSeen = true
		}
	}
	m.mu.Unlock()
}

// ObserveExport records the telemetry export pipeline's state: batches
// queued but unsent, cumulative batches dropped to queue overflow or
// failed flush, and seconds since the last successful send. The sampler
// distills these into the export_* KPIs (the drop count is
// differentiated into a per-second rate between samples).
func (m *Monitor) ObserveExport(queueDepth int, droppedTotal int64, lastSuccessAgeS float64) {
	if m == nil || queueDepth < 0 || lastSuccessAgeS < 0 {
		return
	}
	m.mu.Lock()
	m.exportQueue = queueDepth
	m.exportDropped = droppedTotal
	m.exportAgeS = lastSuccessAgeS
	m.exportSeen = true
	m.mu.Unlock()
}

// Start launches the background sampler. Safe to call once; a nil
// monitor ignores it.
func (m *Monitor) Start() {
	if m == nil {
		return
	}
	m.life.Start(func() { m.Sample() }, m.loop) // immediate first sample so short runs still record
}

// Stop halts the sampler and waits for it to exit. Safe to call
// multiple times and on a never-started or nil monitor.
func (m *Monitor) Stop() {
	if m == nil {
		return
	}
	m.life.Stop()
}

func (m *Monitor) loop(stop <-chan struct{}) {
	t := time.NewTicker(m.interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			m.Sample()
		}
	}
}

// samplePayload is the SSE "health" event body.
type samplePayload struct {
	UnixMs int64              `json:"unix_ms"`
	KPIs   map[string]float64 `json:"kpis"`
	SNRdB  []float64          `json:"snr_db,omitempty"`
	Firing int                `json:"firing"`
}

// Sample distills the current observations into one KPI sample,
// appends it to the series, evaluates the alert rules, and mirrors the
// values into the registry. Called by the background loop; exported so
// tests (and interval-free embedders) can drive sampling directly.
func (m *Monitor) Sample() {
	if m == nil {
		return
	}
	now := m.now()
	unixMs := now.UnixMilli()

	m.mu.Lock()
	kpis := m.computeLocked(now)
	for name, v := range kpis {
		if !math.IsNaN(v) {
			m.series[name].append(Point{UnixMs: unixMs, Value: v})
		}
	}
	var row []float64
	if m.snrSeen {
		row = append(row, m.lastSNR...)
		m.spec.append(SpectrogramRow{UnixMs: unixMs, SNRdB: row})
	}
	kpi := func(name string) float64 {
		if v, ok := kpis[name]; ok {
			return v
		}
		return math.NaN()
	}
	window := func(metric string, n int, dst []float64) []float64 {
		if s, ok := m.series[metric]; ok {
			return s.last(n, dst)
		}
		return dst
	}
	events := m.eng.eval(unixMs, kpi, window)
	firing := m.eng.firing()
	m.lastSampleMs = unixMs
	m.sampledSamples++
	m.mu.Unlock()

	// Mirror into the registry so /metrics and final snapshots carry the
	// latest KPI values without a separate scrape path.
	for name, v := range kpis {
		if !math.IsNaN(v) {
			m.reg.Gauge("health_" + name).Set(v)
		}
	}
	m.reg.Gauge("health_alerts_firing").Set(float64(firing))

	if m.Notify != nil {
		clean := make(map[string]float64, len(kpis))
		for name, v := range kpis {
			if !math.IsNaN(v) {
				clean[name] = v
			}
		}
		m.Notify("health", samplePayload{UnixMs: unixMs, KPIs: clean, SNRdB: row, Firing: firing})
		for _, ev := range events {
			m.Notify("alert", ev)
		}
	}
}

// computeLocked derives the KPI map from the latest raw observations.
// Unavailable KPIs are NaN. Caller holds m.mu.
func (m *Monitor) computeLocked(now time.Time) map[string]float64 {
	nan := math.NaN()
	kpis := map[string]float64{
		KPIMinSNRdB: nan, KPINullDepthDB: nan, KPINullSubcarrier: nan,
		KPINullDriftSC: nan, KPICondDB: nan, KPISearchBest: nan,
		KPISearchRegretDB: nan, KPIControlStalenessS: nan,
		KPILoopLatencyS: nan, KPILoopSlackS: nan,
		KPILoopMissRatio: nan, KPILoopBurnRate: nan,
		KPIExportQueueDepth: nan, KPIExportDropRate: nan, KPIExportAgeS: nan,
	}
	if m.snrSeen {
		kpis[KPIMinSNRdB] = stats.Min(m.lastSNR)
		// minDepthDB 0: always locate the deepest null; rules decide what
		// depth is alarming.
		if null, ok := stats.MostSignificantNull(m.lastSNR, 0); ok {
			kpis[KPINullDepthDB] = null.DepthDB
			kpis[KPINullSubcarrier] = float64(null.Subcarrier)
			if m.prevNullSeen {
				kpis[KPINullDriftSC] = math.Abs(float64(null.Subcarrier - m.prevNullSub))
			}
			m.prevNullSub = null.Subcarrier
			m.prevNullSeen = true
		}
	}
	if m.condSeen {
		kpis[KPICondDB] = stats.Median(m.lastCond)
	}
	if m.bestSeen {
		kpis[KPISearchBest] = m.lastBest
		kpis[KPISearchRegretDB] = m.allTimeBest - m.lastBest
	}
	if m.actuationSeen {
		kpis[KPIControlStalenessS] = now.Sub(m.lastActuation).Seconds()
	}
	if m.loopCount > 0 {
		kpis[KPILoopLatencyS] = float64(m.loopLatMaxNs) / 1e9
		if m.loopSlackSeen {
			kpis[KPILoopSlackS] = float64(m.loopSlackMinNs) / 1e9
		}
		ratio := float64(m.loopMisses) / float64(m.loopCount)
		kpis[KPILoopMissRatio] = ratio
		kpis[KPILoopBurnRate] = ratio / DefaultLoopErrorBudget
		m.loopCount, m.loopMisses = 0, 0
		m.loopLatMaxNs, m.loopSlackMinNs, m.loopSlackSeen = 0, 0, false
	}
	if m.exportSeen {
		kpis[KPIExportQueueDepth] = float64(m.exportQueue)
		kpis[KPIExportAgeS] = m.exportAgeS
		if m.prevExpSeen {
			drops := m.exportDropped - m.prevExpDropped
			if drops < 0 {
				drops = 0 // exporter restarted; the counter reset
			}
			kpis[KPIExportDropRate] = float64(drops) / m.interval.Seconds()
		}
		m.prevExpDropped = m.exportDropped
		m.prevExpSeen = true
	}
	return kpis
}

// Snapshot is the /health.json document: every KPI series, the SNR
// spectrogram, and the alert state.
type Snapshot struct {
	UnixMs      int64              `json:"unix_ms"`
	IntervalMs  int64              `json:"interval_ms"`
	Samples     int64              `json:"samples"`
	Series      map[string][]Point `json:"series"`
	Spectrogram []SpectrogramRow   `json:"spectrogram"`
	Alerts      AlertsSnapshot     `json:"alerts"`
}

// Snapshot copies the monitor's state. Safe on a nil monitor.
func (m *Monitor) Snapshot() Snapshot {
	snap := Snapshot{Series: map[string][]Point{}, Spectrogram: []SpectrogramRow{}}
	if m == nil {
		snap.Alerts = (*engine)(nil).snapshot(0)
		return snap
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	snap.UnixMs = m.lastSampleMs
	snap.IntervalMs = m.interval.Milliseconds()
	snap.Samples = m.sampledSamples
	for name, s := range m.series {
		if s.Len() > 0 {
			snap.Series[name] = s.Points()
		}
	}
	snap.Spectrogram = m.spec.rows()
	snap.Alerts = m.eng.snapshot(m.lastSampleMs)
	return snap
}

// Alerts returns the current alert state. Safe on a nil monitor.
func (m *Monitor) Alerts() AlertsSnapshot {
	if m == nil {
		return (*engine)(nil).snapshot(0)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.eng.snapshot(m.lastSampleMs)
}
