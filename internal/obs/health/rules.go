package health

import (
	"fmt"
	"strconv"
	"strings"
)

// The KPI names rules can reference. Each is sampled once per health
// interval; see Monitor for how they are computed.
const (
	KPIMinSNRdB          = "min_snr_db"          // worst subcarrier SNR of the latest curve
	KPINullDepthDB       = "null_depth_db"       // median(SNR) − min(SNR), §3.2.1's null depth
	KPINullSubcarrier    = "null_subcarrier"     // subcarrier index of the deepest null
	KPINullDriftSC       = "null_drift_sc"       // |Δ null subcarrier| between samples (Fig 5's movement)
	KPICondDB            = "cond_db"             // median per-subcarrier MIMO condition number (Fig 8)
	KPISearchBest        = "search_best"         // current search best objective
	KPISearchRegretDB    = "search_regret_db"    // all-time best objective − current best
	KPIControlStalenessS = "control_staleness_s" // seconds since the last control-plane actuation
	KPILoopLatencyS      = "loop_latency_s"      // worst traced control-loop latency this interval
	KPILoopSlackS        = "loop_slack_s"        // worst deadline slack this interval (negative = missed)
	KPILoopMissRatio     = "loop_miss_ratio"     // deadline misses / traced loops this interval
	KPILoopBurnRate      = "loop_burn_rate"      // miss ratio / DefaultLoopErrorBudget (>1 = burning)
	KPIExportQueueDepth  = "export_queue_depth"  // telemetry export batches queued, unsent
	KPIExportDropRate    = "export_drop_rate"    // export batches dropped per second this interval
	KPIExportAgeS        = "export_age_s"        // seconds since the last successful export send
)

// KPINames lists every KPI a rule may watch, in display order.
var KPINames = []string{
	KPIMinSNRdB, KPINullDepthDB, KPINullSubcarrier, KPINullDriftSC,
	KPICondDB, KPISearchBest, KPISearchRegretDB, KPIControlStalenessS,
	KPILoopLatencyS, KPILoopSlackS, KPILoopMissRatio, KPILoopBurnRate,
	KPIExportQueueDepth, KPIExportDropRate, KPIExportAgeS,
}

func knownKPI(name string) bool {
	for _, k := range KPINames {
		if k == name {
			return true
		}
	}
	return false
}

// Op is a threshold rule's comparison.
type Op int

const (
	// OpGT breaches when the KPI exceeds the threshold.
	OpGT Op = iota
	// OpLT breaches when the KPI falls below the threshold.
	OpLT
)

func (o Op) String() string {
	if o == OpLT {
		return "<"
	}
	return ">"
}

// Kind distinguishes threshold rules from trend rules.
type Kind int

const (
	// KindThreshold compares the KPI's current value against a level.
	KindThreshold Kind = iota
	// KindTrend fits a least-squares slope over a window of samples and
	// breaches while the slope has the configured sign.
	KindTrend
)

// Trend is a trend rule's direction.
type Trend int

const (
	// TrendRising breaches on a positive slope.
	TrendRising Trend = iota
	// TrendFalling breaches on a negative slope.
	TrendFalling
)

func (t Trend) String() string {
	if t == TrendFalling {
		return "falling"
	}
	return "rising"
}

// Rule is one alert rule over a KPI series.
type Rule struct {
	// Name identifies the rule in /alerts and SSE events. Defaults to a
	// compact rendering of the rule expression.
	Name string
	// Metric is the KPI the rule watches (one of KPINames).
	Metric string
	Kind   Kind

	// Threshold rules: breach while `value Op Threshold`; once firing,
	// the rule only counts as healthy again when the value is back on
	// the healthy side of Clear (the hysteresis level — for OpGT, Clear ≤
	// Threshold; for OpLT, Clear ≥ Threshold; default Clear == Threshold).
	Op        Op
	Threshold float64
	Clear     float64

	// Trend rules: direction and sample window of the slope fit.
	Trend  Trend
	Window int

	// For is how many consecutive breaching samples move the rule from
	// pending to firing, and how many consecutive healthy samples move it
	// from firing to resolved (≥ 1; default 1).
	For int
}

// Expr renders the rule back into its -alert-rules form.
func (r Rule) Expr() string {
	var b strings.Builder
	if r.Kind == KindTrend {
		fmt.Fprintf(&b, "%s %s over %d", r.Metric, r.Trend, r.Window)
	} else {
		fmt.Fprintf(&b, "%s%s%s", r.Metric, r.Op, formatNum(r.Threshold))
		if r.Clear != r.Threshold {
			fmt.Fprintf(&b, " clear %s", formatNum(r.Clear))
		}
	}
	if r.For > 1 {
		fmt.Fprintf(&b, " for %d", r.For)
	}
	return b.String()
}

func formatNum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// DefaultRules is the built-in rule set behind `-alert-rules default`:
// a deep persistent frequency null (the paper's §3.2.1 metric), a rising
// MIMO condition number (Figure 8's failure direction), a search run
// regressing from its best, a stalled control plane, a control loop
// burning its coherence-deadline error budget, and a telemetry export
// sink that has been unreachable too long (hysteretic: fires past 30 s
// without a successful send, clears only once the age is back under 5 s,
// so a collector flapping around the threshold cannot strobe the alert).
// When the export pipeline is off its KPIs stay NaN and the rule stays
// frozen, like every other rule over an absent subsystem.
const DefaultRules = "null_depth_db>25 for 3 clear 20; " +
	"cond_db rising over 8; " +
	"search_regret_db>3 for 2; " +
	"control_staleness_s>10 for 2; " +
	"loop_burn_rate>1 for 2; " +
	"export_age_s>30 clear 5 for 2"

// ParseRules parses a rule list: rules separated by ';', each either a
// threshold rule
//
//	[name=]metric>LEVEL [clear LEVEL] [for N]
//	[name=]metric<LEVEL [clear LEVEL] [for N]
//
// or a trend rule
//
//	[name=]metric rising|falling [over N] [for N]
//
// The literal "default" — as the whole string or as one list entry, so
// custom rules can extend the built-in set ("mine=null_depth_db>30;
// default") — expands to DefaultRules. Empty input yields no rules.
// Metrics must name a known KPI.
func ParseRules(s string) ([]Rule, error) {
	var parts []string
	for _, part := range strings.Split(s, ";") {
		if strings.TrimSpace(part) == "default" {
			parts = append(parts, strings.Split(DefaultRules, ";")...)
			continue
		}
		parts = append(parts, part)
	}
	var rules []Rule
	seen := map[string]bool{}
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := parseRule(part)
		if err != nil {
			return nil, err
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("health: duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
		rules = append(rules, r)
	}
	return rules, nil
}

func parseRule(s string) (Rule, error) {
	r := Rule{For: 1}
	expr := s
	if name, rest, ok := strings.Cut(s, "="); ok && !strings.ContainsAny(name, "<> ") {
		r.Name = strings.TrimSpace(name)
		expr = strings.TrimSpace(rest)
	}

	if i := strings.IndexAny(expr, "<>"); i >= 0 {
		// Threshold rule.
		r.Kind = KindThreshold
		r.Metric = strings.TrimSpace(expr[:i])
		if expr[i] == '<' {
			r.Op = OpLT
		}
		rest := strings.Fields(expr[i+1:])
		if len(rest) == 0 {
			return r, fmt.Errorf("health: rule %q: missing threshold", s)
		}
		v, err := strconv.ParseFloat(rest[0], 64)
		if err != nil {
			return r, fmt.Errorf("health: rule %q: bad threshold %q", s, rest[0])
		}
		r.Threshold, r.Clear = v, v
		if err := parseModifiers(s, rest[1:], &r, true); err != nil {
			return r, err
		}
		if r.Op == OpGT && r.Clear > r.Threshold {
			return r, fmt.Errorf("health: rule %q: clear level %v above threshold %v", s, r.Clear, r.Threshold)
		}
		if r.Op == OpLT && r.Clear < r.Threshold {
			return r, fmt.Errorf("health: rule %q: clear level %v below threshold %v", s, r.Clear, r.Threshold)
		}
	} else {
		// Trend rule.
		fields := strings.Fields(expr)
		if len(fields) < 2 {
			return r, fmt.Errorf("health: rule %q: want metric>LEVEL or metric rising|falling", s)
		}
		r.Kind = KindTrend
		r.Metric = fields[0]
		r.Window = 5
		switch fields[1] {
		case "rising":
			r.Trend = TrendRising
		case "falling":
			r.Trend = TrendFalling
		default:
			return r, fmt.Errorf("health: rule %q: want rising or falling, got %q", s, fields[1])
		}
		if err := parseModifiers(s, fields[2:], &r, false); err != nil {
			return r, err
		}
		if r.Window < 2 {
			return r, fmt.Errorf("health: rule %q: trend window must be ≥ 2", s)
		}
	}

	if !knownKPI(r.Metric) {
		return r, fmt.Errorf("health: rule %q: unknown KPI %q (known: %s)",
			s, r.Metric, strings.Join(KPINames, ", "))
	}
	if r.For < 1 {
		return r, fmt.Errorf("health: rule %q: 'for' must be ≥ 1", s)
	}
	if r.Name == "" {
		r.Name = r.Expr()
	}
	return r, nil
}

// parseModifiers consumes the trailing "for N", "clear X", "over N"
// keyword pairs of a rule.
func parseModifiers(rule string, fields []string, r *Rule, threshold bool) error {
	for i := 0; i < len(fields); i += 2 {
		if i+1 >= len(fields) {
			return fmt.Errorf("health: rule %q: dangling %q", rule, fields[i])
		}
		key, val := fields[i], fields[i+1]
		switch {
		case key == "for":
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("health: rule %q: bad 'for' count %q", rule, val)
			}
			r.For = n
		case key == "clear" && threshold:
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return fmt.Errorf("health: rule %q: bad 'clear' level %q", rule, val)
			}
			r.Clear = v
		case key == "over" && !threshold:
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("health: rule %q: bad 'over' window %q", rule, val)
			}
			r.Window = n
		default:
			return fmt.Errorf("health: rule %q: unknown modifier %q", rule, key)
		}
	}
	return nil
}
