package health

import (
	"strings"
	"testing"
)

func TestParseRulesThreshold(t *testing.T) {
	rules, err := ParseRules("null_depth_db>25 for 3 clear 20")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 {
		t.Fatalf("got %d rules", len(rules))
	}
	r := rules[0]
	if r.Kind != KindThreshold || r.Metric != KPINullDepthDB || r.Op != OpGT {
		t.Errorf("rule = %+v", r)
	}
	if r.Threshold != 25 || r.Clear != 20 || r.For != 3 {
		t.Errorf("levels = %+v", r)
	}
	if r.Name != r.Expr() {
		t.Errorf("default name %q != expr %q", r.Name, r.Expr())
	}
}

func TestParseRulesForms(t *testing.T) {
	cases := []struct {
		in      string
		wantN   int
		wantErr string
	}{
		{"", 0, ""},
		{"default", 6, ""},
		{DefaultRules, 6, ""},
		{"min_snr_db<10", 1, ""},
		{"lowsnr=min_snr_db<10 for 2", 1, ""},
		{"cond_db rising", 1, ""},
		{"cond_db falling over 12 for 2", 1, ""},
		{"a=min_snr_db<10; b=cond_db rising", 2, ""},
		{"min_snr_db<10;; ;cond_db rising", 2, ""},
		{"deep=null_depth_db>30 for 2; default", 7, ""},
		{"default; default", 0, "duplicate rule name"},

		{"bogus_kpi>1", 0, "unknown KPI"},
		{"min_snr_db<", 0, "missing threshold"},
		{"min_snr_db<abc", 0, "bad threshold"},
		{"min_snr_db", 0, "want metric>LEVEL"},
		{"min_snr_db sideways", 0, "rising or falling"},
		{"min_snr_db<10 for 0", 0, "'for' must be"},
		{"min_snr_db<10 for", 0, "dangling"},
		{"min_snr_db<10 clear 5", 0, "below threshold"},
		{"null_depth_db>25 clear 30", 0, "above threshold"},
		{"cond_db rising over 1", 0, "window must be"},
		{"cond_db rising clear 3", 0, "unknown modifier"},
		{"a=min_snr_db<10; a=cond_db rising", 0, "duplicate rule name"},
	}
	for _, c := range cases {
		rules, err := ParseRules(c.in)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("ParseRules(%q) error: %v", c.in, err)
				continue
			}
			if len(rules) != c.wantN {
				t.Errorf("ParseRules(%q) = %d rules, want %d", c.in, len(rules), c.wantN)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("ParseRules(%q) error = %v, want %q", c.in, err, c.wantErr)
		}
	}
}

func TestParseRulesExprRoundTrip(t *testing.T) {
	rules, err := ParseRules("default")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		again, err := ParseRules(r.Expr())
		if err != nil {
			t.Fatalf("re-parse %q: %v", r.Expr(), err)
		}
		if len(again) != 1 || again[0].Expr() != r.Expr() {
			t.Errorf("round trip %q -> %q", r.Expr(), again[0].Expr())
		}
	}
}

func TestParseRulesNamedRule(t *testing.T) {
	rules, err := ParseRules("deep-null=null_depth_db>25 for 3")
	if err != nil {
		t.Fatal(err)
	}
	if rules[0].Name != "deep-null" {
		t.Errorf("name = %q", rules[0].Name)
	}
	if rules[0].Clear != 25 {
		t.Errorf("clear defaults to threshold, got %v", rules[0].Clear)
	}
}

func TestDefaultRulesParse(t *testing.T) {
	rules, err := ParseRules(DefaultRules)
	if err != nil {
		t.Fatalf("DefaultRules must parse: %v", err)
	}
	metrics := map[string]bool{}
	for _, r := range rules {
		metrics[r.Metric] = true
	}
	for _, want := range []string{KPINullDepthDB, KPICondDB, KPISearchRegretDB, KPIControlStalenessS, KPILoopBurnRate} {
		if !metrics[want] {
			t.Errorf("DefaultRules missing a %s rule", want)
		}
	}
}
