package health

import (
	"encoding/json"
	"fmt"
	"math"

	"press/internal/obs"
)

// State is an alert rule's position in the pending→firing→resolved
// machine.
type State int

const (
	// StateInactive: the condition does not hold.
	StateInactive State = iota
	// StatePending: the condition holds but has not yet held for the
	// rule's `for` count.
	StatePending
	// StateFiring: the condition has held `for` consecutive samples.
	StateFiring
	// StateResolved: a previously firing rule has been healthy (past its
	// hysteresis level) for `for` consecutive samples. Resolved lasts one
	// evaluation, then returns to inactive.
	StateResolved
)

func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateFiring:
		return "firing"
	case StateResolved:
		return "resolved"
	default:
		return "inactive"
	}
}

// MarshalJSON renders the state as its name.
func (s State) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", s.String())), nil
}

// UnmarshalJSON parses a state name, so /alerts documents round-trip
// into client structs.
func (s *State) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "inactive":
		*s = StateInactive
	case "pending":
		*s = StatePending
	case "firing":
		*s = StateFiring
	case "resolved":
		*s = StateResolved
	default:
		return fmt.Errorf("health: unknown alert state %q", name)
	}
	return nil
}

// Event is one state transition of one rule.
type Event struct {
	Rule   string  `json:"rule"`
	From   State   `json:"from"`
	To     State   `json:"to"`
	UnixMs int64   `json:"unix_ms"`
	Value  float64 `json:"value"` // KPI value at the transition (0 when unknown)
	// TraceID is an exemplar control-plane trace for transitions into
	// firing, when the watched KPI has one (loop deadline KPIs carry the
	// trace of the offending loop). Formatted per obs.FormatTraceID.
	TraceID string `json:"trace_id,omitempty"`
}

// RuleStatus is one rule's live state, as served at /alerts.
type RuleStatus struct {
	Name   string `json:"name"`
	Expr   string `json:"expr"`
	Metric string `json:"metric"`
	State  State  `json:"state"`
	// SinceUnixMs is when the rule entered its current state.
	SinceUnixMs int64 `json:"since_unix_ms,omitempty"`
	// Value is the last evaluated KPI value (0 when never observed).
	Value float64 `json:"value"`
	// FiredCount totals inactive/pending→firing transitions.
	FiredCount int64 `json:"fired_count"`
}

// AlertsSnapshot is the /alerts JSON document.
type AlertsSnapshot struct {
	UnixMs int64        `json:"unix_ms"`
	Firing int          `json:"firing"`
	Rules  []RuleStatus `json:"rules"`
	Events []Event      `json:"events"`
}

// ruleState is one rule plus its machine position.
type ruleState struct {
	rule    Rule
	state   State
	breachN int   // consecutive breaching samples (inactive/pending)
	clearN  int   // consecutive healthy samples (firing)
	sinceMs int64 // entered current state
	value   float64
	seen    bool
	fired   int64
}

// engine evaluates a rule set against KPI samples. It is not safe for
// concurrent use on its own; the Monitor's lock guards it.
type engine struct {
	rules  []*ruleState
	events []Event // bounded: the most recent eventCap transitions
	// exemplar, when set, maps a rule's metric to a trace ID to attach
	// to transitions into firing (0 = none). Called under the same lock
	// as eval.
	exemplar func(metric string) uint64
}

const eventCap = 256

func newEngine(rules []Rule) *engine {
	e := &engine{}
	for _, r := range rules {
		e.rules = append(e.rules, &ruleState{rule: r})
	}
	return e
}

// window hands a trend rule the last n values of a metric's series.
type windowFunc func(metric string, n int, dst []float64) []float64

// eval advances every rule one sample. kpi returns the metric's current
// value (NaN = unknown this sample: the rule's state freezes). The
// returned events are the transitions this sample caused.
func (e *engine) eval(unixMs int64, kpi func(string) float64, window windowFunc) []Event {
	if e == nil {
		return nil
	}
	var out []Event
	for _, rs := range e.rules {
		ev, ok := rs.step(unixMs, kpi, window)
		if !ok {
			continue
		}
		if e.exemplar != nil {
			for i := range ev {
				if ev[i].To != StateFiring {
					continue
				}
				if tid := e.exemplar(rs.rule.Metric); tid != 0 {
					ev[i].TraceID = obs.FormatTraceID(tid)
				}
			}
		}
		out = append(out, ev...)
	}
	if len(out) > 0 {
		e.events = append(e.events, out...)
		if excess := len(e.events) - eventCap; excess > 0 {
			e.events = append(e.events[:0], e.events[excess:]...)
		}
	}
	return out
}

// step advances one rule. The bool reports whether any transition
// happened.
func (rs *ruleState) step(unixMs int64, kpi func(string) float64, window windowFunc) ([]Event, bool) {
	breach, known := rs.condition(kpi, window)
	if !known {
		// No data this sample: freeze rather than flap. A resolved rule
		// still completes its one-sample lifetime.
		if rs.state == StateResolved {
			return []Event{rs.transition(StateInactive, unixMs)}, true
		}
		return nil, false
	}
	var evs []Event
	switch rs.state {
	case StateInactive, StateResolved:
		if rs.state == StateResolved {
			// Resolved is observable for exactly one evaluation.
			evs = append(evs, rs.transition(StateInactive, unixMs))
		}
		if breach {
			rs.breachN = 1
			if rs.rule.For <= 1 {
				evs = append(evs, rs.transition(StateFiring, unixMs))
				rs.fired++
			} else {
				evs = append(evs, rs.transition(StatePending, unixMs))
			}
		}
	case StatePending:
		if !breach {
			rs.breachN = 0
			evs = append(evs, rs.transition(StateInactive, unixMs))
			break
		}
		rs.breachN++
		if rs.breachN >= rs.rule.For {
			evs = append(evs, rs.transition(StateFiring, unixMs))
			rs.fired++
		}
	case StateFiring:
		if rs.healthy(kpi, window) {
			rs.clearN++
			if rs.clearN >= rs.rule.For {
				rs.clearN = 0
				evs = append(evs, rs.transition(StateResolved, unixMs))
			}
		} else {
			rs.clearN = 0
		}
	}
	return evs, len(evs) > 0
}

// condition evaluates the rule's breach predicate. known=false means the
// KPI had no data this sample.
func (rs *ruleState) condition(kpi func(string) float64, window windowFunc) (breach, known bool) {
	switch rs.rule.Kind {
	case KindTrend:
		w := window(rs.rule.Metric, rs.rule.Window, nil)
		if len(w) > 0 {
			rs.value = w[len(w)-1]
			rs.seen = true
		}
		if len(w) < rs.rule.Window {
			// Window still warming up: known but healthy, so a pending
			// trend alert resets rather than freezing forever.
			return false, true
		}
		slope := lsSlope(w)
		if rs.rule.Trend == TrendFalling {
			slope = -slope
		}
		return slope > slopeEps(w), true
	default:
		v := kpi(rs.rule.Metric)
		if math.IsNaN(v) {
			return false, false
		}
		rs.value = v
		rs.seen = true
		if rs.rule.Op == OpLT {
			return v < rs.rule.Threshold, true
		}
		return v > rs.rule.Threshold, true
	}
}

// healthy is the firing-side predicate: the rule only counts as healthy
// again once the value is on the healthy side of the Clear level
// (hysteresis), so a KPI oscillating around the threshold cannot flap
// the alert. Trend rules clear when the slope loses its sign.
func (rs *ruleState) healthy(kpi func(string) float64, window windowFunc) bool {
	if rs.rule.Kind == KindTrend {
		breach, known := rs.condition(kpi, window)
		return known && !breach
	}
	v := kpi(rs.rule.Metric)
	if math.IsNaN(v) {
		return false
	}
	rs.value = v
	if rs.rule.Op == OpLT {
		return v >= rs.rule.Clear
	}
	return v <= rs.rule.Clear
}

func (rs *ruleState) transition(to State, unixMs int64) Event {
	from := rs.state
	rs.state = to
	rs.sinceMs = unixMs
	v := rs.value
	if math.IsNaN(v) || !rs.seen {
		v = 0
	}
	return Event{Rule: rs.rule.Name, From: from, To: to, UnixMs: unixMs, Value: v}
}

// snapshot freezes the engine into the /alerts document.
func (e *engine) snapshot(unixMs int64) AlertsSnapshot {
	snap := AlertsSnapshot{UnixMs: unixMs, Rules: []RuleStatus{}, Events: []Event{}}
	if e == nil {
		return snap
	}
	for _, rs := range e.rules {
		v := rs.value
		if math.IsNaN(v) {
			v = 0
		}
		snap.Rules = append(snap.Rules, RuleStatus{
			Name:        rs.rule.Name,
			Expr:        rs.rule.Expr(),
			Metric:      rs.rule.Metric,
			State:       rs.state,
			SinceUnixMs: rs.sinceMs,
			Value:       v,
			FiredCount:  rs.fired,
		})
		if rs.state == StateFiring {
			snap.Firing++
		}
	}
	snap.Events = append(snap.Events, e.events...)
	return snap
}

// firing counts currently firing rules.
func (e *engine) firing() int {
	n := 0
	for _, rs := range e.rules {
		if rs.state == StateFiring {
			n++
		}
	}
	return n
}

// lsSlope is the least-squares slope of w over sample index.
func lsSlope(w []float64) float64 {
	n := float64(len(w))
	meanX := (n - 1) / 2
	var meanY float64
	for _, v := range w {
		meanY += v
	}
	meanY /= n
	var num, den float64
	for i, v := range w {
		dx := float64(i) - meanX
		num += dx * (v - meanY)
		den += dx * dx
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// slopeEps is the slope magnitude below which a trend is considered
// flat: floating-point noise on a constant series (the mean of N equal
// values need not equal them exactly) must never register as rising.
func slopeEps(w []float64) float64 {
	var maxAbs float64
	for _, v := range w {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	return 1e-9 * (1 + maxAbs)
}
