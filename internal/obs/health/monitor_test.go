package health

import (
	"encoding/json"
	"math"
	"testing"
	"time"

	"press/internal/obs"
	"press/internal/obs/obstest"
)

// snrWithNull builds a flat 20 dB curve with one null of the given depth
// at subcarrier idx.
func snrWithNull(n, idx int, depthDB float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 20
	}
	out[idx] = 20 - depthDB
	return out
}

func TestMonitorKPIComputation(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMonitor(reg, nil, time.Hour, 16)
	clock := time.Unix(1000, 0)
	m.now = func() time.Time { return clock }

	m.ObserveSNR(snrWithNull(48, 7, 30))
	m.ObserveCondProfile([]float64{2, 4, 6})
	m.ObserveSearchBest(10)
	m.ObserveActuation()
	clock = clock.Add(3 * time.Second)
	m.Sample()

	snap := m.Snapshot()
	latest := func(name string) float64 {
		pts := snap.Series[name]
		if len(pts) == 0 {
			t.Fatalf("no points for %s", name)
		}
		return pts[len(pts)-1].Value
	}
	if v := latest(KPIMinSNRdB); v != -10 {
		t.Errorf("min_snr_db = %v", v)
	}
	if v := latest(KPINullDepthDB); v != 30 {
		t.Errorf("null_depth_db = %v", v)
	}
	if v := latest(KPINullSubcarrier); v != 7 {
		t.Errorf("null_subcarrier = %v", v)
	}
	if v := latest(KPICondDB); v != 4 {
		t.Errorf("cond_db = %v (want median)", v)
	}
	if v := latest(KPISearchBest); v != 10 {
		t.Errorf("search_best = %v", v)
	}
	if v := latest(KPISearchRegretDB); v != 0 {
		t.Errorf("search_regret_db = %v", v)
	}
	if v := latest(KPIControlStalenessS); v != 3 {
		t.Errorf("control_staleness_s = %v (3 s since actuation)", v)
	}
	// No drift KPI yet: needs two samples with a located null.
	if _, ok := snap.Series[KPINullDriftSC]; ok {
		t.Error("null_drift_sc present after one sample")
	}
	if len(snap.Spectrogram) != 1 || len(snap.Spectrogram[0].SNRdB) != 48 {
		t.Errorf("spectrogram = %d rows", len(snap.Spectrogram))
	}

	// Second sample: null moves 5 subcarriers, search regresses 2 dB.
	m.ObserveSNR(snrWithNull(48, 12, 28))
	m.ObserveSearchBest(8)
	m.Sample()
	snap = m.Snapshot()
	if v := latest(KPINullDriftSC); v != 5 {
		t.Errorf("null_drift_sc = %v", v)
	}
	if v := latest(KPISearchRegretDB); v != 2 {
		t.Errorf("search_regret_db = %v (all-time best 10, current 8)", v)
	}

	// KPIs mirror into the registry as health_* gauges.
	ms := reg.Snapshot()
	if g := ms.Gauges["health_null_depth_db"]; g != 28 {
		t.Errorf("health_null_depth_db gauge = %v", g)
	}
	if g, ok := ms.Gauges["health_alerts_firing"]; !ok || g != 0 {
		t.Errorf("health_alerts_firing gauge = %v, %v", g, ok)
	}
}

func TestMonitorSeriesBounded(t *testing.T) {
	m := NewMonitor(nil, nil, time.Hour, 8)
	m.now = func() time.Time { return time.Unix(5, 0) }
	for i := 0; i < 50; i++ {
		m.ObserveSNR(snrWithNull(16, i%16, 10))
		m.Sample()
	}
	snap := m.Snapshot()
	for name, pts := range snap.Series {
		if len(pts) > 8 {
			t.Errorf("series %s holds %d points, cap 8", name, len(pts))
		}
	}
	if len(snap.Spectrogram) > 8 {
		t.Errorf("spectrogram holds %d rows, cap 8", len(snap.Spectrogram))
	}
	if snap.Samples != 50 {
		t.Errorf("samples = %d", snap.Samples)
	}
}

func TestMonitorAlertsAndNotify(t *testing.T) {
	rules := mustRules(t, "null_depth_db>25 for 2 clear 20")
	m := NewMonitor(nil, rules, time.Hour, 16)
	m.now = func() time.Time { return time.Unix(9, 0) }
	type note struct {
		event string
		v     any
	}
	var notes []note
	m.Notify = func(event string, v any) { notes = append(notes, note{event, v}) }

	for i := 0; i < 3; i++ {
		m.ObserveSNR(snrWithNull(32, 3, 30))
		m.Sample()
	}
	al := m.Alerts()
	if al.Firing != 1 || al.Rules[0].State != StateFiring {
		t.Fatalf("alerts = %+v", al)
	}
	var alerts int
	for _, n := range notes {
		switch n.event {
		case "health":
			p, ok := n.v.(samplePayload)
			if !ok {
				t.Fatalf("health payload %T", n.v)
			}
			for k, v := range p.KPIs {
				if math.IsNaN(v) {
					t.Errorf("NaN KPI %s leaked into payload", k)
				}
			}
		case "alert":
			alerts++
		}
	}
	if alerts != 2 { // inactive→pending, pending→firing
		t.Errorf("saw %d alert notifications, want 2", alerts)
	}

	// Recovery below the clear level resolves after 2 healthy samples.
	for i := 0; i < 2; i++ {
		m.ObserveSNR(snrWithNull(32, 3, 10))
		m.Sample()
	}
	if al := m.Alerts(); al.Rules[0].State != StateResolved {
		t.Errorf("state after recovery = %v", al.Rules[0].State)
	}
}

func TestMonitorSnapshotJSON(t *testing.T) {
	// Even a sample with unknown KPIs (NaN internally) must serialize:
	// NaN never reaches a JSON-bound struct.
	m := NewMonitor(nil, mustRules(t, "default"), time.Hour, 4)
	m.now = func() time.Time { return time.Unix(2, 0) }
	m.Sample() // nothing observed: all KPIs unknown
	if _, err := json.Marshal(m.Snapshot()); err != nil {
		t.Fatalf("snapshot with unknown KPIs not serializable: %v", err)
	}
	if _, err := json.Marshal(m.Alerts()); err != nil {
		t.Fatalf("alerts not serializable: %v", err)
	}
}

func TestMonitorNilSafe(t *testing.T) {
	var m *Monitor
	m.ObserveSNR([]float64{1})
	m.ObserveCondProfile([]float64{1})
	m.ObserveSearchBest(1)
	m.ObserveActuation()
	m.Sample()
	m.Start()
	m.Stop()
	if snap := m.Snapshot(); snap.Series == nil || snap.Spectrogram == nil {
		t.Error("nil monitor snapshot has nil fields")
	}
	if al := m.Alerts(); al.Rules == nil {
		t.Error("nil monitor alerts has nil rules")
	}
}

func TestMonitorStartStop(t *testing.T) {
	m := NewMonitor(nil, nil, time.Millisecond, 16)
	m.ObserveSNR(snrWithNull(8, 1, 6))
	m.Start()
	obstest.WaitUntil(t, 2*time.Second, func() bool { return m.Snapshot().Samples >= 2 })
	m.Stop()
	m.Stop() // idempotent
	if s := m.Snapshot().Samples; s < 2 {
		t.Errorf("background sampler took %d samples", s)
	}
	// Stop on a never-started monitor must not hang.
	NewMonitor(nil, nil, time.Hour, 4).Stop()
}

func TestMonitorObservationsCopied(t *testing.T) {
	m := NewMonitor(nil, nil, time.Hour, 4)
	m.now = func() time.Time { return time.Unix(1, 0) }
	snr := snrWithNull(8, 2, 12)
	m.ObserveSNR(snr)
	snr[2] = 999 // caller reuses its buffer
	m.Sample()
	pts := m.Snapshot().Series[KPINullDepthDB]
	if len(pts) != 1 || pts[0].Value != 12 {
		t.Errorf("mutation leaked into monitor: %+v", pts)
	}
}

func TestMonitorObserveLoopKPIs(t *testing.T) {
	m := NewMonitor(nil, nil, time.Hour, 8)
	m.now = func() time.Time { return time.Unix(10, 0) }
	// Three loops against an 8ms deadline: two hit, one misses by 4ms.
	m.ObserveLoop(5*time.Millisecond, 8*time.Millisecond, false, 0x11)
	m.ObserveLoop(6*time.Millisecond, 8*time.Millisecond, false, 0x22)
	m.ObserveLoop(12*time.Millisecond, 8*time.Millisecond, true, 0x33)
	m.Sample()
	snap := m.Snapshot()
	want := map[string]float64{
		KPILoopLatencyS:  0.012,
		KPILoopSlackS:    -0.004,
		KPILoopMissRatio: 1.0 / 3,
		KPILoopBurnRate:  (1.0 / 3) / DefaultLoopErrorBudget,
	}
	for name, v := range want {
		pts := snap.Series[name]
		if len(pts) != 1 || math.Abs(pts[0].Value-v) > 1e-9 {
			t.Errorf("%s = %+v, want %v", name, pts, v)
		}
	}
	// The interval accumulator resets: a loop-free sample leaves the
	// series untouched (NaN KPIs are not appended).
	m.Sample()
	if pts := m.Snapshot().Series[KPILoopMissRatio]; len(pts) != 1 {
		t.Errorf("loop-free interval appended a point: %+v", pts)
	}
}

func TestMonitorLoopBurnRateAlertExemplar(t *testing.T) {
	rules, err := ParseRules("burn=loop_burn_rate>1 for 2")
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(nil, rules, time.Hour, 8)
	m.now = func() time.Time { return time.Unix(20, 0) }
	var events []Event
	m.Notify = func(event string, v any) {
		if ev, ok := v.(Event); ok && event == "alert" {
			events = append(events, ev)
		}
	}
	for i := 0; i < 2; i++ {
		m.ObserveLoop(20*time.Millisecond, 8*time.Millisecond, true, 0xbeef)
		m.Sample()
	}
	var firing *Event
	for i := range events {
		if events[i].To == StateFiring {
			firing = &events[i]
		}
	}
	if firing == nil {
		t.Fatalf("burn-rate rule never fired; events: %+v", events)
	}
	if firing.TraceID != obs.FormatTraceID(0xbeef) {
		t.Errorf("firing event trace = %q, want %q", firing.TraceID, obs.FormatTraceID(0xbeef))
	}
	// The exemplar also lands in the /alerts event log.
	found := false
	for _, ev := range m.Alerts().Events {
		if ev.To == StateFiring && ev.TraceID == obs.FormatTraceID(0xbeef) {
			found = true
		}
	}
	if !found {
		t.Error("/alerts events missing the firing exemplar trace")
	}
}
