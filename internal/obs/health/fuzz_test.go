package health

import (
	"strings"
	"testing"
)

// FuzzParseRules drives the rule grammar with arbitrary input. Invariants:
// the parser never panics, and any accepted rule pretty-prints (Expr) to a
// string the parser accepts again as the same rule — the grammar is
// closed under its own canonical form.
func FuzzParseRules(f *testing.F) {
	seeds := []string{
		"",
		"default",
		DefaultRules,
		"null_depth_db>25 for 3 clear 20",
		"min_snr_db<10",
		"lowsnr=min_snr_db<10 for 2",
		"cond_db rising",
		"cond_db falling over 12 for 2",
		"a=min_snr_db<10; b=cond_db rising",
		"bogus_kpi>1",
		"min_snr_db<",
		"min_snr_db<abc",
		"min_snr_db sideways",
		"min_snr_db<10 for 0",
		"min_snr_db<10 clear 5",
		"cond_db rising over 1",
		"a=x>1; a=y>2",
		"search_regret_db>3 for 2;;; control_staleness_s>10",
		"null_depth_db>1e308 for 9999999999",
		"null_depth_db>-25 clear -30",
		"=min_snr_db<10",
		"weird name=min_snr_db<10",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		rules, err := ParseRules(s)
		if err != nil {
			return
		}
		for _, r := range rules {
			expr := r.Expr()
			again, err := ParseRules(expr)
			if err != nil {
				t.Fatalf("ParseRules(%q) accepted a rule whose Expr %q does not re-parse: %v", s, expr, err)
			}
			if len(again) != 1 {
				t.Fatalf("Expr %q re-parsed to %d rules", expr, len(again))
			}
			if got := again[0].Expr(); got != expr {
				t.Fatalf("Expr not a fixed point: %q -> %q", expr, got)
			}
			if strings.TrimSpace(r.Name) == "" {
				t.Fatalf("accepted rule with empty name from %q", s)
			}
		}
	})
}
