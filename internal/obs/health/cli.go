package health

import (
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"time"

	"press/internal/obs"
)

func writeJSONIndent(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// CLI extends obs.CLI with the channel-health layer: -alert-rules and
// -health-interval flags, a Monitor wired to the live telemetry server
// (/alerts, /health.json, /dashboard, and named SSE events on /events),
// and alert logging. Drop-in replacement for obs.CLI:
//
//	var tele health.CLI
//	tele.Register(fs)
//	// after fs.Parse:
//	if err := tele.Start(os.Stderr); err != nil { ... }
//	defer tele.Finish(os.Stdout)
//	... feed tele.Health() from producers ...
//
// With no telemetry flags set, Health() returns nil and everything
// stays at the zero-cost disabled default.
type CLI struct {
	obs.CLI

	// AlertRules is the -alert-rules rule list (see ParseRules), or
	// "default" for DefaultRules. Empty disables alerting.
	AlertRules string
	// HealthInterval is the KPI sampling period. Zero means follow
	// -sample-interval.
	HealthInterval time.Duration

	// EventSink, when set before Start, additionally receives every
	// monitor notification — ("health", samplePayload) and ("alert",
	// Event) — alongside the SSE publish and alert logging. The hook the
	// flight-recorder layer uses to persist alert transitions.
	EventSink func(event string, v any)

	mon *Monitor
}

// Register installs the obs telemetry flags plus the health flags on fs.
func (c *CLI) Register(fs *flag.FlagSet) {
	c.CLI.Register(fs)
	fs.StringVar(&c.AlertRules, "alert-rules", "",
		`channel-health alert rules, ';'-separated ("default" = built-in set; e.g. "null_depth_db>25 for 3")`)
	fs.DurationVar(&c.HealthInterval, "health-interval", 0,
		"channel-health KPI sampling period (default: -sample-interval)")
}

// Start brings up the obs layer, then — when any telemetry output or
// alert rules are configured — the health monitor, its HTTP routes, and
// the SSE bridge.
func (c *CLI) Start(logw io.Writer) error {
	rules, err := ParseRules(c.AlertRules)
	if err != nil {
		return err
	}
	if err := c.CLI.Start(logw); err != nil {
		return err
	}
	if c.Registry() == nil && len(rules) == 0 {
		return nil // health layer stays off alongside obs
	}
	interval := c.HealthInterval
	if interval <= 0 {
		interval = c.SampleInterval
	}
	c.mon = NewMonitor(c.Registry(), rules, interval, 0)

	srv := c.Server()
	logger := c.Logger()
	c.mon.Notify = func(event string, v any) {
		if c.EventSink != nil {
			c.EventSink(event, v)
		}
		srv.Publish(event, v)
		if event == "alert" && logger != nil {
			ev, ok := v.(Event)
			if !ok {
				return
			}
			msg := "alert " + ev.To.String()
			kv := []any{"rule", ev.Rule, "from", ev.From.String(), "value", ev.Value}
			if ev.To == StateFiring {
				logger.Warn(msg, kv...)
			} else if logger.Enabled(obs.LevelInfo) {
				logger.Info(msg, kv...)
			}
		}
	}
	if srv != nil {
		mon := c.mon
		srv.HandleFunc("/alerts", func(w http.ResponseWriter, r *http.Request) {
			obs.ServeJSON(w, r, func(out io.Writer) error {
				return writeJSONIndent(out, mon.Alerts())
			})
		})
		srv.HandleFunc("/health.json", func(w http.ResponseWriter, r *http.Request) {
			obs.ServeJSON(w, r, func(out io.Writer) error {
				return writeJSONIndent(out, mon.Snapshot())
			})
		})
		srv.HandleFunc("/dashboard", DashboardHandler())
	}
	c.mon.Start()
	return nil
}

// Health returns the live monitor, or nil when the health layer is off —
// producers pass it down unconditionally.
func (c *CLI) Health() *Monitor { return c.mon }

// Finish stops the health monitor, then tears down the obs layer.
func (c *CLI) Finish(stdout io.Writer) error {
	if c.mon != nil {
		c.mon.Stop()
		c.mon = nil
	}
	return c.CLI.Finish(stdout)
}
