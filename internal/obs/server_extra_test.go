package obs

import (
	"bufio"
	"compress/gzip"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestServerJSONHeadersAndGzip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("gz_total").Add(3)
	s := newTestServer(t, reg, nil)
	base := "http://" + s.Addr().String()

	// Plain request: explicit content type, no-store, no encoding.
	_, _, hdr := get(t, base+"/metrics.json")
	if cc := hdr.Get("Cache-Control"); cc != "no-store" {
		t.Errorf("Cache-Control = %q, want no-store", cc)
	}
	if enc := hdr.Get("Content-Encoding"); enc != "" {
		t.Errorf("unrequested Content-Encoding %q", enc)
	}

	// Gzip-accepting request: compressed body that inflates to the same
	// snapshot. A raw transport avoids the client's transparent decoding.
	req, err := http.NewRequest(http.MethodGet, base+"/metrics.json", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err := (&http.Transport{DisableCompression: true}).RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if enc := resp.Header.Get("Content-Encoding"); enc != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", enc)
	}
	gz, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("gzipped body unparsable: %v", err)
	}
	if snap.Counters["gz_total"] != 3 {
		t.Errorf("counter through gzip = %d", snap.Counters["gz_total"])
	}
}

func TestAcceptsGzip(t *testing.T) {
	cases := []struct {
		header string
		want   bool
	}{
		{"", false},
		{"gzip", true},
		{"gzip, deflate, br", true},
		{"deflate, gzip;q=0.5", true},
		{"gzip;q=0", false},
		{"gzip ; q=0.0", false},
		{"br", false},
		{"notgzip", false},
	}
	for _, c := range cases {
		r := httptest.NewRequest(http.MethodGet, "/", nil)
		if c.header != "" {
			r.Header.Set("Accept-Encoding", c.header)
		}
		if got := acceptsGzip(r); got != c.want {
			t.Errorf("acceptsGzip(%q) = %v, want %v", c.header, got, c.want)
		}
	}
}

func TestServerPublishNamedEvents(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(reg, time.Hour, 16) // slow: only published events flow
	rec.Start()
	defer rec.Stop()
	s := newTestServer(t, reg, rec)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+s.Addr().String()+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	go func() {
		// Let the subscription land, then publish.
		time.Sleep(50 * time.Millisecond)
		s.Publish("custom", map[string]any{"answer": 42})
	}()

	sc := bufio.NewScanner(resp.Body)
	var sawName bool
	for sc.Scan() {
		line := sc.Text()
		if line == "event: custom" {
			sawName = true
			continue
		}
		if sawName && strings.HasPrefix(line, "data: ") {
			var got map[string]float64
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &got); err != nil {
				t.Fatalf("published event not JSON: %v", err)
			}
			if got["answer"] != 42 {
				t.Fatalf("published payload = %v", got)
			}
			return
		}
	}
	t.Fatalf("no named event observed: %v", sc.Err())
}

func TestServerPublishNilSafe(t *testing.T) {
	var s *Server
	s.Publish("health", 1) // must not panic
	NewServer(nil, nil).Publish("health", func() {})
}
