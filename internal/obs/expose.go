package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// HistogramBucket is one cumulative bucket of a histogram snapshot:
// Count observations were ≤ the LE upper bound ("+Inf" for the overflow
// bucket), Prometheus-style.
type HistogramBucket struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// HistogramSnapshot is a histogram frozen at snapshot time.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	Sum     float64           `json:"sum"`
	Buckets []HistogramBucket `json:"buckets"`
	// Exemplar, when present, is the most recent traced observation —
	// its trace ID joins the metric to a /tracez span tree.
	Exemplar *ExemplarSnapshot `json:"exemplar,omitempty"`
}

// ExemplarSnapshot is a histogram exemplar in exported form.
type ExemplarSnapshot struct {
	Value   float64 `json:"value"`
	TraceID string  `json:"trace_id"`
	UnixMs  int64   `json:"unix_ms"`
}

// SpanSnapshot aggregates one span name's completed timings.
type SpanSnapshot struct {
	Count        int64   `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
	MinSeconds   float64 `json:"min_seconds"`
	MaxSeconds   float64 `json:"max_seconds"`
	MeanSeconds  float64 `json:"mean_seconds"`
}

// Snapshot is a point-in-time copy of every metric in a registry. Maps
// marshal with sorted keys, so serialized snapshots are deterministic up
// to the recorded values.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Spans      map[string]SpanSnapshot      `json:"spans"`
}

// Snapshot freezes the registry. A nil registry yields an empty (but
// fully allocated) snapshot.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
		Spans:      map[string]SpanSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
		var cum int64
		for i := range h.buckets {
			cum += h.buckets[i].Load()
			le := "+Inf"
			if i < len(h.bounds) {
				le = strconv.FormatFloat(h.bounds[i], 'g', -1, 64)
			}
			hs.Buckets = append(hs.Buckets, HistogramBucket{LE: le, Count: cum})
		}
		if ex := h.ex.Load(); ex != nil {
			hs.Exemplar = &ExemplarSnapshot{
				Value:   ex.v,
				TraceID: FormatTraceID(ex.trace),
				UnixMs:  ex.unixNs / 1e6,
			}
		}
		snap.Histograms[name] = hs
	}
	for name, s := range r.spans {
		s.mu.Lock()
		ss := SpanSnapshot{
			Count:        s.count,
			TotalSeconds: s.total.Seconds(),
			MinSeconds:   s.min.Seconds(),
			MaxSeconds:   s.max.Seconds(),
		}
		if s.count > 0 {
			ss.MeanSeconds = ss.TotalSeconds / float64(s.count)
		}
		s.mu.Unlock()
		snap.Spans[name] = ss
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON — the machine-readable
// exposition the CLIs emit for -telemetry.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteText writes the snapshot in the Prometheus text exposition
// format (text/plain; version 0.0.4): counters and gauges verbatim,
// histograms with cumulative le-labelled buckets, and spans as
// <name>_seconds summaries. Metric names are sanitized to the
// Prometheus grammar.
func (r *Registry) WriteText(w io.Writer) error {
	snap := r.Snapshot()
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, name := range sortedKeys(snap.Counters) {
		n := SanitizeMetricName(name)
		p("# TYPE %s counter\n%s %d\n", n, n, snap.Counters[name])
	}
	for _, name := range sortedKeys(snap.Gauges) {
		n := SanitizeMetricName(name)
		p("# TYPE %s gauge\n%s %s\n", n, n, formatFloat(snap.Gauges[name]))
	}
	for _, name := range sortedKeys(snap.Histograms) {
		n := SanitizeMetricName(name)
		h := snap.Histograms[name]
		p("# TYPE %s histogram\n", n)
		for _, b := range h.Buckets {
			p("%s_bucket{le=\"%s\"} %d\n", n, EscapeLabelValue(b.LE), b.Count)
		}
		p("%s_sum %s\n%s_count %d\n", n, formatFloat(h.Sum), n, h.Count)
	}
	for _, name := range sortedKeys(snap.Spans) {
		n := SanitizeMetricName(name) + "_seconds"
		s := snap.Spans[name]
		p("# TYPE %s summary\n%s_sum %s\n%s_count %d\n",
			n, n, formatFloat(s.TotalSeconds), n, s.Count)
	}
	return err
}

// WriteTextLabeled writes the snapshot in the Prometheus text format
// with one constant label pair attached to every sample — the
// per-session exposition behind /sessions/{id}/metrics, where the
// session ID rides on a `session` label. The label value is escaped per
// the text-format spec (EscapeLabelValue); histograms merge the label
// with their `le` label.
func (r *Registry) WriteTextLabeled(w io.Writer, label, value string) error {
	snap := r.Snapshot()
	lk := SanitizeMetricName(label)
	lv := EscapeLabelValue(value)
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, name := range sortedKeys(snap.Counters) {
		n := SanitizeMetricName(name)
		p("# TYPE %s counter\n%s{%s=\"%s\"} %d\n", n, n, lk, lv, snap.Counters[name])
	}
	for _, name := range sortedKeys(snap.Gauges) {
		n := SanitizeMetricName(name)
		p("# TYPE %s gauge\n%s{%s=\"%s\"} %s\n", n, n, lk, lv, formatFloat(snap.Gauges[name]))
	}
	for _, name := range sortedKeys(snap.Histograms) {
		n := SanitizeMetricName(name)
		h := snap.Histograms[name]
		p("# TYPE %s histogram\n", n)
		for _, b := range h.Buckets {
			p("%s_bucket{%s=\"%s\",le=\"%s\"} %d\n", n, lk, lv, EscapeLabelValue(b.LE), b.Count)
		}
		p("%s_sum{%s=\"%s\"} %s\n%s_count{%s=\"%s\"} %d\n",
			n, lk, lv, formatFloat(h.Sum), n, lk, lv, h.Count)
	}
	for _, name := range sortedKeys(snap.Spans) {
		n := SanitizeMetricName(name) + "_seconds"
		s := snap.Spans[name]
		p("# TYPE %s summary\n%s_sum{%s=\"%s\"} %s\n%s_count{%s=\"%s\"} %d\n",
			n, n, lk, lv, formatFloat(s.TotalSeconds), n, lk, lv, s.Count)
	}
	return err
}

// SanitizeMetricName maps an internal metric or span name onto the
// Prometheus name grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func SanitizeMetricName(name string) string {
	if name == "" {
		return "_"
	}
	out := []byte(name)
	for i, c := range out {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			out[i] = '_'
		}
	}
	return string(out)
}

// EscapeLabelValue escapes a string for use inside double quotes as a
// Prometheus text-format (version 0.0.4) label value: backslash,
// double-quote, and line-feed get backslash escapes; everything else —
// including raw multi-byte UTF-8 — passes through verbatim. (Go's %q is
// NOT spec-compliant here: it escapes non-ASCII and other control
// characters into Go syntax Prometheus parsers reject or misread.)
func EscapeLabelValue(s string) string {
	// Fast path: nothing to escape.
	needs := false
	for i := 0; i < len(s); i++ {
		if c := s[i]; c == '\\' || c == '"' || c == '\n' {
			needs = true
			break
		}
	}
	if !needs {
		return s
	}
	out := make([]byte, 0, len(s)+8)
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, c)
		}
	}
	return string(out)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
