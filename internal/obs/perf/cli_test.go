package perf

import (
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"press/internal/obs/flight"
	"press/internal/obs/obstest"
)

func parseCLI(t *testing.T, args ...string) *CLI {
	t.Helper()
	var c CLI
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	c.Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return &c
}

// TestCLIDisabledDefault: with no flags the whole stack stays inert.
func TestCLIDisabledDefault(t *testing.T) {
	c := parseCLI(t)
	if err := c.Start(io.Discard); err != nil {
		t.Fatal(err)
	}
	if c.Sampler() != nil || c.Registry() != nil || c.Server() != nil {
		t.Error("disabled default constructed live components")
	}
	if err := c.Finish(io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestCLINegativeInterval(t *testing.T) {
	c := parseCLI(t, "-runtime-metrics-interval=-1s")
	if err := c.Start(io.Discard); err == nil {
		c.Finish(io.Discard)
		t.Fatal("negative interval accepted")
	}
}

// TestCLIFullStack is the acceptance path: telemetry server + flight
// recording + runtime sampling, then /metrics, /metrics.json, and
// /perfz all expose the runtime histograms, and the run log holds
// RuntimeSample frames. Also the endpoint-uniformity check: every JSON
// endpoint (/perfz, /runs, /metrics.json) answers gzip requests with
// gzip and marks itself no-store.
func TestCLIFullStack(t *testing.T) {
	flightDir := t.TempDir()
	baseDir := t.TempDir()
	rec := NewRecord("2026-08-06T00:00:00Z")
	rec.Pkg = "press/internal/obs"
	rec.add("BenchmarkX", BenchSample{N: 100, NsPerOp: 5})
	if err := WriteRecordFile(filepath.Join(baseDir, "BENCH_x.json"), rec); err != nil {
		t.Fatal(err)
	}

	c := parseCLI(t,
		"-telemetry-addr=127.0.0.1:0",
		"-flight-dir="+flightDir,
		"-runtime-metrics-interval=10ms",
		"-bench-baselines="+baseDir,
	)
	if err := c.Start(io.Discard); err != nil {
		t.Fatal(err)
	}
	if c.Sampler() == nil {
		t.Fatal("sampler not started")
	}
	base := "http://" + c.ServerAddr()

	// Let a few ticks land.
	obstest.WaitUntil(t, 2*time.Second, func() bool { return c.Sampler().Last().Ticks >= 3 })

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(body)
	}

	// /metrics (Prometheus text) exposes the runtime gauges and the GC
	// pause / sched latency histograms.
	_, body := get("/metrics")
	for _, want := range []string{
		GaugeGoroutines, GaugeHeapLiveBytes,
		HistGCPauseSeconds + "_bucket", HistSchedLatSeconds + "_bucket",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s:\n%.400s", want, body)
		}
	}
	_, body = get("/metrics.json")
	if !strings.Contains(body, GaugeGoroutines) || !strings.Contains(body, HistGCPauseSeconds) {
		t.Errorf("/metrics.json missing runtime metrics:\n%.400s", body)
	}

	// /perfz reports the live sampler and the committed baseline.
	resp, body := get("/perfz")
	var doc PerfzDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Sampler.Enabled || doc.Sampler.Last.Ticks < 3 {
		t.Errorf("/perfz sampler = %+v", doc.Sampler)
	}
	if len(doc.Baselines) != 1 || doc.Baselines[0].File != "BENCH_x.json" {
		t.Errorf("/perfz baselines = %+v", doc.Baselines)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Errorf("/perfz Cache-Control = %q", cc)
	}

	// Endpoint uniformity: all JSON endpoints speak gzip and no-store.
	client := &http.Client{Transport: &http.Transport{DisableCompression: true}}
	for _, path := range []string{"/perfz", "/runs", "/metrics.json"} {
		req, _ := http.NewRequest(http.MethodGet, base+path, nil)
		req.Header.Set("Accept-Encoding", "gzip")
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status %d", path, resp.StatusCode)
		}
		if ce := resp.Header.Get("Content-Encoding"); ce != "gzip" {
			t.Errorf("%s Content-Encoding = %q, want gzip", path, ce)
		}
		if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
			t.Errorf("%s Cache-Control = %q, want no-store", path, cc)
		}
	}

	runDir := c.RunDir()
	if err := c.Finish(io.Discard); err != nil {
		t.Fatal(err)
	}
	if c.Sampler() != nil {
		t.Error("Finish left the sampler attached")
	}

	// The run log recorded runtime health for rundiff.
	run, err := flight.ReadRun(runDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Runtime) < 3 {
		t.Fatalf("runtime frames = %d, want >= 3", len(run.Runtime))
	}
	if run.Runtime[0].Goroutines == 0 {
		t.Errorf("runtime frame = %+v", run.Runtime[0])
	}
	sum := flight.Summarize(run)
	if sum.RuntimeSamples != len(run.Runtime) || sum.Goroutines.Max == 0 {
		t.Errorf("summary runtime section = %+v", sum)
	}
}

// TestCLISamplerWithoutOutputs: the flag alone (no registry, no flight
// recorder) starts nothing — there is nowhere to put the samples.
func TestCLISamplerWithoutOutputs(t *testing.T) {
	c := parseCLI(t, "-runtime-metrics-interval=10ms")
	if err := c.Start(io.Discard); err != nil {
		t.Fatal(err)
	}
	defer c.Finish(io.Discard)
	if c.Sampler() != nil {
		t.Error("sampler started with no telemetry outputs")
	}
}
