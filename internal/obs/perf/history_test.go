package perf

import (
	"os"
	"path/filepath"
	"testing"
)

func TestHistoryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench", "history.ndjson")
	r1 := rec("BenchmarkA", 100, 101)
	r1.Date = "2026-08-01T00:00:00Z"
	r2 := rec("BenchmarkA", 90, 91)
	r2.Date = "2026-08-02T00:00:00Z"
	if err := AppendHistory(path, r1); err != nil {
		t.Fatal(err)
	}
	if err := AppendHistory(path, r2); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Date != r1.Date || recs[1].Date != r2.Date {
		t.Fatalf("history = %+v", recs)
	}
	// Newest-wins resolution picks the later append.
	sets := SampleSets(recs)
	set := sets["press/test BenchmarkA"]
	if set == nil || set.Date != r2.Date || set.Samples[0].NsPerOp != 90 {
		t.Errorf("resolved set = %+v", set)
	}
}

func TestReadHistoryRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.ndjson")
	if err := os.WriteFile(path, []byte("{\"schema\":1}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadHistory(path); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestRecordFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	r := rec("BenchmarkA", 100)
	r.Description = "demo"
	if err := WriteRecordFile(path, r); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecordFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Description != "demo" || len(got.Benchmarks) != 1 {
		t.Errorf("record = %+v", got)
	}
}

// TestLoadResultsSniffing: the same loader accepts raw bench text, a
// canonical JSON document, and NDJSON history.
func TestLoadResultsSniffing(t *testing.T) {
	dir := t.TempDir()

	text := filepath.Join(dir, "raw.txt")
	os.WriteFile(text, []byte("pkg: press/x\nBenchmarkA-8 100 5.0 ns/op\n"), 0o644)
	recs, err := LoadResults(text)
	if err != nil || len(recs) != 1 || recs[0].Pkg != "press/x" {
		t.Fatalf("text: %v %+v", err, recs)
	}

	doc := filepath.Join(dir, "BENCH_x.json")
	if err := WriteRecordFile(doc, rec("BenchmarkA", 100)); err != nil {
		t.Fatal(err)
	}
	recs, err = LoadResults(doc)
	if err != nil || len(recs) != 1 || recs[0].Pkg != "press/test" {
		t.Fatalf("doc: %v %+v", err, recs)
	}

	hist := filepath.Join(dir, "history.ndjson")
	if err := AppendHistory(hist, rec("BenchmarkA", 100), rec("BenchmarkB", 50)); err != nil {
		t.Fatal(err)
	}
	recs, err = LoadResults(hist)
	if err != nil || len(recs) != 2 {
		t.Fatalf("ndjson: %v %+v", err, recs)
	}

	if _, err := LoadResults(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file should error")
	}
	empty := filepath.Join(dir, "empty")
	os.WriteFile(empty, []byte("  \n"), 0o644)
	if _, err := LoadResults(empty); err == nil {
		t.Error("empty file should error")
	}
}

func TestBaselineFiles(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "BENCH_b.json"), []byte("{}"), 0o644)
	os.WriteFile(filepath.Join(dir, "BENCH_a.json"), []byte("{}"), 0o644)
	os.WriteFile(filepath.Join(dir, "README.md"), []byte("x"), 0o644)
	os.MkdirAll(filepath.Join(dir, "bench"), 0o755)
	os.WriteFile(filepath.Join(dir, "bench", "history.ndjson"), []byte(""), 0o644)

	got := BaselineFiles(dir)
	want := []string{
		filepath.Join(dir, "BENCH_a.json"),
		filepath.Join(dir, "BENCH_b.json"),
		filepath.Join(dir, "bench", "history.ndjson"),
	}
	if len(got) != len(want) {
		t.Fatalf("files = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("files[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestNewRecordStamps(t *testing.T) {
	r := NewRecord("2026-08-06T00:00:00Z")
	if r.Schema != RecordSchema || r.Date != "2026-08-06T00:00:00Z" {
		t.Errorf("record = %+v", r)
	}
}
