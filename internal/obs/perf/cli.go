package perf

import (
	"flag"
	"fmt"
	"io"
	"time"

	"press/internal/obs"
	"press/internal/obs/flight"
)

// CLI extends flight.CLI with the performance-radar layer: a
// -runtime-metrics-interval flag that starts the runtime sampler
// (GC pauses, scheduler latencies, heap, goroutines into the registry,
// /metrics, /metrics.json, and — when recording — the flight log), and
// the /perfz endpoint on the live telemetry server. Drop-in replacement
// for flight.CLI:
//
//	var tele perf.CLI
//	tele.Register(fs)
//	// after fs.Parse:
//	if err := tele.Start(os.Stderr); err != nil { ... }
//	defer tele.Finish(os.Stdout)
//
// With -runtime-metrics-interval unset the sampler never runs; /perfz
// (served whenever -telemetry-addr is up) then reports it disabled.
type CLI struct {
	flight.CLI

	// RuntimeMetricsInterval is the runtime/metrics polling period.
	// Zero disables the sampler.
	RuntimeMetricsInterval time.Duration
	// BenchBaselineDir is where /perfz looks for BENCH_*.json and
	// bench/history.ndjson ("." by default; empty disables the listing).
	BenchBaselineDir string

	sampler *Sampler
}

// Register installs the flight telemetry flags plus the perf flags.
func (c *CLI) Register(fs *flag.FlagSet) {
	c.CLI.Register(fs)
	fs.DurationVar(&c.RuntimeMetricsInterval, "runtime-metrics-interval", 0,
		"poll runtime/metrics (GC pauses, sched latencies, heap, goroutines) into the registry at this period (0 = off)")
	fs.StringVar(&c.BenchBaselineDir, "bench-baselines", ".",
		"directory /perfz scans for bench/BENCH_*.json and bench/history.ndjson baselines")
}

// Start brings up the flight/health/obs stack, then the runtime sampler
// and the /perfz route.
func (c *CLI) Start(logw io.Writer) error {
	if c.RuntimeMetricsInterval < 0 {
		return fmt.Errorf("perf: negative -runtime-metrics-interval %v", c.RuntimeMetricsInterval)
	}
	if err := c.CLI.Start(logw); err != nil {
		return err
	}
	if c.RuntimeMetricsInterval > 0 {
		if c.Registry() == nil && c.Flight() == nil {
			if log := c.Logger(); log.Enabled(obs.LevelWarn) {
				log.Warn("-runtime-metrics-interval set but no telemetry output; enable -telemetry, -telemetry-addr, or -flight-dir")
			}
		} else {
			c.sampler = NewSampler(c.Registry(), c.Flight(), c.RuntimeMetricsInterval)
			c.sampler.Start()
			if log := c.Logger(); log.Enabled(obs.LevelInfo) {
				log.Info("runtime-metrics sampler started", "interval", c.sampler.Interval())
			}
		}
	}
	if srv := c.Server(); srv != nil {
		RegisterRoutes(srv, c.sampler, c.BenchBaselineDir)
	}
	return nil
}

// Sampler returns the live runtime sampler, or nil when
// -runtime-metrics-interval was not given.
func (c *CLI) Sampler() *Sampler { return c.sampler }

// Finish stops the sampler (taking one final sample so short runs still
// record runtime state), then tears down the flight/health/obs layers.
func (c *CLI) Finish(stdout io.Writer) error {
	if c.sampler != nil {
		c.sampler.SampleOnce()
		c.sampler.Stop()
		c.sampler = nil
	}
	return c.CLI.Finish(stdout)
}
