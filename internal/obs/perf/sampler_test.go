package perf

import (
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"press/internal/obs"
	"press/internal/obs/flight"
)

func TestSamplerSampleOnce(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewSampler(reg, nil, time.Second)
	runtime.GC() // guarantee at least one GC cycle and pause since baseline
	snap := s.SampleOnce()

	if snap.Ticks != 1 {
		t.Errorf("ticks = %d, want 1", snap.Ticks)
	}
	if snap.Goroutines == 0 || snap.HeapLiveBytes == 0 || snap.HeapGoalBytes == 0 {
		t.Errorf("snapshot missing live values: %+v", snap)
	}
	if snap.UnixMs == 0 {
		t.Error("snapshot not timestamped")
	}
	if got := s.Last(); got != snap {
		t.Errorf("Last() = %+v, want %+v", got, snap)
	}

	// Registry mirrors: gauges track the snapshot, the forced GC shows up
	// in the counter and the pause histogram.
	if v := reg.Gauge(GaugeGoroutines).Value(); v != float64(snap.Goroutines) {
		t.Errorf("goroutine gauge = %v, snapshot %d", v, snap.Goroutines)
	}
	if v := reg.Gauge(GaugeHeapLiveBytes).Value(); v == 0 {
		t.Error("heap gauge not set")
	}
	if v := reg.Counter(CounterGCCycles).Value(); v < 1 {
		t.Errorf("gc counter = %d, want >= 1 after runtime.GC()", v)
	}
	if n := reg.Histogram(HistGCPauseSeconds, nil).Count(); n < 1 {
		t.Errorf("pause histogram count = %d, want >= 1", n)
	}

	// Second tick: cumulative counters advance by deltas, not totals.
	before := reg.Counter(CounterGCCycles).Value()
	runtime.GC()
	snap2 := s.SampleOnce()
	if snap2.Ticks != 2 {
		t.Errorf("ticks = %d, want 2", snap2.Ticks)
	}
	after := reg.Counter(CounterGCCycles).Value()
	if after <= before {
		t.Errorf("gc counter did not advance: %d -> %d", before, after)
	}
	if after > before+64 {
		t.Errorf("gc counter jumped %d -> %d; delta accounting broken", before, after)
	}
}

func TestSamplerNil(t *testing.T) {
	var s *Sampler
	s.Start()
	if snap := s.SampleOnce(); snap != (Snapshot{}) {
		t.Errorf("nil SampleOnce = %+v", snap)
	}
	if s.Last() != (Snapshot{}) || s.Interval() != 0 {
		t.Error("nil accessors not inert")
	}
	s.Stop()
}

// TestSamplerNilRegistry: flight-only operation (registry mirroring off)
// still snapshots.
func TestSamplerNilRegistry(t *testing.T) {
	s := NewSampler(nil, nil, time.Second)
	if snap := s.SampleOnce(); snap.Goroutines == 0 {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestSamplerStartStopIdempotent(t *testing.T) {
	s := NewSampler(obs.NewRegistry(), nil, time.Hour)
	s.Start()
	s.Start() // second Start is a no-op, not a second goroutine
	if s.Last().Ticks == 0 {
		t.Error("Start did not take an immediate sample")
	}
	s.Stop()
	s.Stop() // idempotent

	// Stop without Start must not hang.
	NewSampler(obs.NewRegistry(), nil, time.Hour).Stop()
}

// TestSamplerSharedRegistry: two samplers over one registry share metric
// handles by name — construction is idempotent, counts merge rather
// than clash.
func TestSamplerSharedRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	a := NewSampler(reg, nil, time.Second)
	b := NewSampler(reg, nil, time.Second)
	a.SampleOnce()
	b.SampleOnce()
	snap := reg.Snapshot()
	if _, ok := snap.Gauges[GaugeGoroutines]; !ok {
		t.Errorf("registry gauges = %v", snap.Gauges)
	}
	if len(snap.Gauges) != 3 {
		t.Errorf("gauges = %d (%v), want 3 shared handles", len(snap.Gauges), snap.Gauges)
	}
}

// TestSamplerConcurrent exercises SampleOnce/Last from multiple
// goroutines while the background ticker runs — the race detector is
// the assertion.
func TestSamplerConcurrent(t *testing.T) {
	s := NewSampler(obs.NewRegistry(), nil, time.Millisecond)
	s.Start()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s.SampleOnce()
				_ = s.Last()
			}
		}()
	}
	wg.Wait()
	s.Stop()
	if s.Last().Ticks < 200 {
		t.Errorf("ticks = %d, want >= 200", s.Last().Ticks)
	}
}

// TestSamplerFlightRecord: each tick lands a RuntimeSample in the run
// log, so rundiff sees runtime health.
func TestSamplerFlightRecord(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run-perf")
	rec, err := flight.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(nil, rec, time.Second)
	runtime.GC()
	s.SampleOnce()
	s.SampleOnce()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	run, err := flight.ReadRun(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Runtime) != 2 {
		t.Fatalf("runtime samples = %d, want 2", len(run.Runtime))
	}
	rs := run.Runtime[0]
	if rs.UnixNs == 0 || rs.Goroutines == 0 || rs.HeapLiveBytes == 0 {
		t.Errorf("runtime sample = %+v", rs)
	}
}

// BenchmarkSamplerTick is the sampler's own overhead budget: one tick
// must stay in the tens of microseconds with zero steady-state
// allocations, cheap enough for a 1s cadence on a controller hot path.
func BenchmarkSamplerTick(b *testing.B) {
	s := NewSampler(obs.NewRegistry(), nil, time.Second)
	s.SampleOnce() // warm: first tick settles histogram buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SampleOnce()
	}
}
