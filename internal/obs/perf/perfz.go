package perf

import (
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"

	"press/internal/obs"
)

// SamplerStatus is the sampler section of the /perfz document.
type SamplerStatus struct {
	Enabled  bool     `json:"enabled"`
	Interval string   `json:"interval,omitempty"`
	Last     Snapshot `json:"last,omitempty"`
}

// BaselineInfo summarizes one loaded benchmark baseline artifact.
type BaselineInfo struct {
	File        string `json:"file"`
	Pkg         string `json:"pkg,omitempty"`
	Date        string `json:"date,omitempty"`
	Commit      string `json:"commit,omitempty"`
	CPU         string `json:"cpu,omitempty"`
	Description string `json:"description,omitempty"`
	Benchmarks  int    `json:"benchmarks"`
	Error       string `json:"error,omitempty"`
}

// PerfzDoc is the /perfz response: live runtime-sampler state plus the
// benchmark baselines found on disk — one endpoint answering "is the
// radar on, and what is it gating against?".
type PerfzDoc struct {
	Sampler   SamplerStatus  `json:"sampler"`
	Baselines []BaselineInfo `json:"baselines"`
}

// LoadBaselines reads every baseline artifact under dir (canonical
// BENCH_*.json documents and bench/history.ndjson) into summaries.
// Unreadable files are reported in-line rather than failing the whole
// listing.
func LoadBaselines(dir string) []BaselineInfo {
	out := []BaselineInfo{}
	for _, path := range BaselineFiles(dir) {
		recs, err := LoadResults(path)
		if err != nil {
			out = append(out, BaselineInfo{File: filepath.Base(path), Error: err.Error()})
			continue
		}
		if len(recs) == 0 {
			out = append(out, BaselineInfo{File: filepath.Base(path), Error: "no benchmark records"})
			continue
		}
		for _, rec := range recs {
			out = append(out, BaselineInfo{
				File: filepath.Base(path), Pkg: rec.Pkg, Date: rec.Date,
				Commit: rec.Commit, CPU: rec.CPU, Description: rec.Description,
				Benchmarks: len(rec.Benchmarks),
			})
		}
	}
	return out
}

// PerfzHandler serves the /perfz document for a sampler (nil = radar
// off) and a baseline directory ("" = no baselines reported). JSON gets
// the same gzip + Cache-Control: no-store treatment as every other JSON
// endpoint on the telemetry server.
func PerfzHandler(s *Sampler, baselineDir string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		doc := PerfzDoc{Baselines: []BaselineInfo{}}
		if s != nil {
			doc.Sampler = SamplerStatus{
				Enabled:  true,
				Interval: s.Interval().String(),
				Last:     s.Last(),
			}
		}
		if baselineDir != "" {
			doc.Baselines = LoadBaselines(baselineDir)
		}
		obs.ServeJSON(w, r, func(out io.Writer) error {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			return enc.Encode(doc)
		})
	}
}

// RegisterRoutes adds the /perfz endpoint to a telemetry server.
func RegisterRoutes(srv *obs.Server, s *Sampler, baselineDir string) {
	srv.HandleFunc("/perfz", PerfzHandler(s, baselineDir))
}
