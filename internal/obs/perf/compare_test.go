package perf

import (
	"math"
	"strings"
	"testing"
)

// rec builds a single-package record with one benchmark whose ns/op
// samples are given (HasMem off unless allocs are set via recAlloc).
func rec(name string, ns ...float64) Record {
	r := Record{Schema: RecordSchema, Pkg: "press/test"}
	for _, v := range ns {
		r.add(name, BenchSample{N: 1000, NsPerOp: v})
	}
	return r
}

func recAlloc(name string, allocs float64, ns ...float64) Record {
	r := Record{Schema: RecordSchema, Pkg: "press/test"}
	for _, v := range ns {
		r.add(name, BenchSample{N: 1000, NsPerOp: v, AllocsPerOp: allocs, HasMem: true})
	}
	return r
}

func oneVerdict(t *testing.T, cmps []Comparison, want Verdict) Comparison {
	t.Helper()
	if len(cmps) != 1 {
		t.Fatalf("comparisons = %+v, want exactly one", cmps)
	}
	if cmps[0].Verdict != want {
		t.Fatalf("verdict = %q (delta %+.1f%%, p %.4f), want %q",
			cmps[0].Verdict, cmps[0].Delta*100, cmps[0].P, want)
	}
	return cmps[0]
}

// TestCompareSyntheticRegression: a clean 2x slowdown with 5 samples a
// side must gate as a regression.
func TestCompareSyntheticRegression(t *testing.T) {
	old := rec("BenchmarkHot", 100, 101, 99, 100.5, 100)
	cur := rec("BenchmarkHot", 200, 202, 199, 201, 200)
	c := oneVerdict(t, Compare([]Record{old}, []Record{cur}, Options{}), VerdictRegression)
	if c.Delta < 0.9 || c.Delta > 1.1 {
		t.Errorf("delta = %+.3f, want ~+1.0", c.Delta)
	}
	if math.IsNaN(c.P) || c.P >= DefaultAlpha {
		t.Errorf("p = %v, want < %v", c.P, DefaultAlpha)
	}
	if got := Regressions(Compare([]Record{old}, []Record{cur}, Options{})); len(got) != 1 {
		t.Errorf("Regressions = %+v, want the one regression", got)
	}
}

// TestCompareSyntheticImprovement: the mirror image is an improvement,
// never a gate failure.
func TestCompareSyntheticImprovement(t *testing.T) {
	old := rec("BenchmarkHot", 200, 202, 199, 201, 200)
	cur := rec("BenchmarkHot", 100, 101, 99, 100.5, 100)
	oneVerdict(t, Compare([]Record{old}, []Record{cur}, Options{}), VerdictImprovement)
}

// TestCompareNoise: overlapping samples with a tiny median shift stay
// unchanged — the rank test and the min-delta guard both hold it back.
func TestCompareNoise(t *testing.T) {
	old := rec("BenchmarkHot", 100, 104, 98, 102, 97)
	cur := rec("BenchmarkHot", 101, 99, 103, 100, 105)
	oneVerdict(t, Compare([]Record{old}, []Record{cur}, Options{}), VerdictUnchanged)
}

// TestCompareMinDeltaGuard: a perfectly separated but tiny (2%) shift is
// significant by rank test yet below the min effect size — unchanged.
func TestCompareMinDeltaGuard(t *testing.T) {
	old := rec("BenchmarkHot", 100.0, 100.1, 100.2, 100.0, 100.1)
	cur := rec("BenchmarkHot", 102.0, 102.1, 102.2, 102.0, 102.1)
	c := oneVerdict(t, Compare([]Record{old}, []Record{cur}, Options{}), VerdictUnchanged)
	if c.P >= DefaultAlpha {
		t.Errorf("p = %v, expected significance (guard, not the test, should hold this back)", c.P)
	}
}

// TestCompareFallbackSingleSample: with one sample a side the rank test
// cannot run; only a move beyond FallbackDelta flags.
func TestCompareFallbackSingleSample(t *testing.T) {
	c := oneVerdict(t, Compare([]Record{rec("BenchmarkHot", 100)},
		[]Record{rec("BenchmarkHot", 130)}, Options{}), VerdictInconclusive)
	if !math.IsNaN(c.P) {
		t.Errorf("p = %v, want NaN with n=1", c.P)
	}
	oneVerdict(t, Compare([]Record{rec("BenchmarkHot", 100)},
		[]Record{rec("BenchmarkHot", 210)}, Options{}), VerdictRegression)
	oneVerdict(t, Compare([]Record{rec("BenchmarkHot", 210)},
		[]Record{rec("BenchmarkHot", 100)}, Options{}), VerdictImprovement)
}

// TestCompareAllocRegression: allocation counts are deterministic, so
// 0→2 allocs/op is a regression even when timing is unchanged.
func TestCompareAllocRegression(t *testing.T) {
	old := recAlloc("BenchmarkHot", 0, 100, 101, 99, 100, 100)
	cur := recAlloc("BenchmarkHot", 2, 100, 101, 99, 100, 100)
	c := oneVerdict(t, Compare([]Record{old}, []Record{cur}, Options{}), VerdictRegression)
	if !c.AllocRegression || c.OldAllocs != 0 || c.NewAllocs != 2 {
		t.Errorf("alloc fields = %+v", c)
	}
}

func TestCompareAddedRemoved(t *testing.T) {
	old := rec("BenchmarkOld", 100, 100)
	cur := rec("BenchmarkNew", 50, 50)
	cmps := Compare([]Record{old}, []Record{cur}, Options{})
	if len(cmps) != 2 {
		t.Fatalf("comparisons = %+v", cmps)
	}
	got := map[string]Verdict{}
	for _, c := range cmps {
		got[c.Name] = c.Verdict
	}
	if got["BenchmarkOld"] != VerdictRemoved || got["BenchmarkNew"] != VerdictAdded {
		t.Errorf("verdicts = %v", got)
	}
}

// TestCompareNewestWins: in a history, a later record's measurement of
// the same benchmark replaces the earlier one.
func TestCompareNewestWins(t *testing.T) {
	older := rec("BenchmarkHot", 400, 401, 399, 400, 400) // stale slow baseline
	newer := rec("BenchmarkHot", 100, 101, 99, 100, 100)
	cur := rec("BenchmarkHot", 102, 100, 101, 99, 103)
	oneVerdict(t, Compare([]Record{older, newer}, []Record{cur}, Options{}), VerdictUnchanged)
}

func TestWriteComparisons(t *testing.T) {
	cmps := Compare([]Record{rec("BenchmarkHot", 100, 101, 99, 100, 100)},
		[]Record{rec("BenchmarkHot", 200, 202, 199, 201, 200)}, Options{})
	var sb strings.Builder
	if err := WriteComparisons(&sb, cmps); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "BenchmarkHot") || !strings.Contains(out, "regression") {
		t.Errorf("table output:\n%s", out)
	}
}

func TestMannWhitneyU(t *testing.T) {
	// Perfectly separated groups: smallest possible exact p for n=5+5 is
	// 2/C(10,5) ≈ 0.0079.
	p := MannWhitneyU([]float64{1, 2, 3, 4, 5}, []float64{10, 11, 12, 13, 14})
	if p > 0.01 {
		t.Errorf("separated p = %v, want ≤ 0.01", p)
	}
	// Identical samples: no evidence at all.
	p = MannWhitneyU([]float64{5, 5, 5}, []float64{5, 5, 5})
	if p < 0.99 {
		t.Errorf("identical p = %v, want ~1", p)
	}
	// Symmetry.
	a := []float64{1, 3, 5, 7, 9}
	b := []float64{2, 4, 6, 8, 20}
	if pab, pba := MannWhitneyU(a, b), MannWhitneyU(b, a); math.Abs(pab-pba) > 1e-12 {
		t.Errorf("asymmetric: p(a,b)=%v p(b,a)=%v", pab, pba)
	}
	// Empty input.
	if p := MannWhitneyU(nil, []float64{1}); !math.IsNaN(p) {
		t.Errorf("empty p = %v, want NaN", p)
	}
	// Large samples take the normal-approximation path and still detect
	// a clean separation.
	big1 := make([]float64, 40)
	big2 := make([]float64, 40)
	for i := range big1 {
		big1[i] = 100 + float64(i%7)
		big2[i] = 150 + float64(i%7)
	}
	if p := MannWhitneyU(big1, big2); p > 1e-6 {
		t.Errorf("large separated p = %v", p)
	}
	// All-identical large samples hit the sigma2 <= 0 branch.
	flat := make([]float64, 40)
	for i := range flat {
		flat[i] = 7
	}
	if p := MannWhitneyU(flat, flat); p != 1 {
		t.Errorf("flat large p = %v, want 1", p)
	}
}

func TestBinomial(t *testing.T) {
	if got := binomial(10, 5); got != 252 {
		t.Errorf("C(10,5) = %v", got)
	}
	if got := binomial(5, 0); got != 1 {
		t.Errorf("C(5,0) = %v", got)
	}
	if got := binomial(5, 7); got != 0 {
		t.Errorf("C(5,7) = %v", got)
	}
	// Large inputs saturate instead of overflowing (e.g. -count=100).
	if got := binomial(200, 100); got != 1e12 {
		t.Errorf("C(200,100) = %v, want saturation at 1e12", got)
	}
}
