package perf

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Options tune the comparison engine and the regression gate.
type Options struct {
	// Alpha is the two-sided significance threshold for the
	// Mann-Whitney U test (default 0.05).
	Alpha float64
	// MinDelta is the minimum |relative median delta| that counts as a
	// real change even when statistically significant (default 0.05 =
	// 5%) — the min-effect-size guard against flagging measurable but
	// meaningless drift on quiet benchmarks.
	MinDelta float64
	// FallbackDelta applies when either side has too few samples for a
	// rank test (n < 2): the change is flagged only when the median
	// moves by at least this fraction (default 0.5 = 50%). Single-shot
	// baselines thus still catch gross regressions without false-failing
	// on noise.
	FallbackDelta float64
}

// Defaults for unset Options fields.
const (
	DefaultAlpha         = 0.05
	DefaultMinDelta      = 0.05
	DefaultFallbackDelta = 0.50
)

func (o Options) withDefaults() Options {
	if o.Alpha <= 0 {
		o.Alpha = DefaultAlpha
	}
	if o.MinDelta <= 0 {
		o.MinDelta = DefaultMinDelta
	}
	if o.FallbackDelta <= 0 {
		o.FallbackDelta = DefaultFallbackDelta
	}
	return o
}

// Verdict classifies one benchmark's old-vs-new comparison.
type Verdict string

// Verdicts.
const (
	VerdictUnchanged    Verdict = "unchanged"    // no significant relevant change
	VerdictRegression   Verdict = "regression"   // significantly slower (or more allocs)
	VerdictImprovement  Verdict = "improvement"  // significantly faster
	VerdictInconclusive Verdict = "inconclusive" // too few samples to test, delta below fallback
	VerdictAdded        Verdict = "added"        // only in the new results
	VerdictRemoved      Verdict = "removed"      // only in the baseline
)

// Comparison is one benchmark's statistical old-vs-new result.
type Comparison struct {
	Pkg  string `json:"pkg,omitempty"`
	Name string `json:"name"`
	// Baseline provenance (date + CPU of the baseline record).
	Baseline string `json:"baseline,omitempty"`

	OldN      int     `json:"old_n,omitempty"`
	NewN      int     `json:"new_n,omitempty"`
	OldMedian float64 `json:"old_ns_per_op,omitempty"`
	NewMedian float64 `json:"new_ns_per_op,omitempty"`
	// Delta is the relative median change, (new-old)/old.
	Delta float64 `json:"delta,omitempty"`
	// P is the two-sided Mann-Whitney p-value; NaN (omitted in JSON as
	// 0) when either side has fewer than two samples.
	P float64 `json:"p,omitempty"`

	// Alloc medians (allocs/op) when -benchmem data exists on both
	// sides; AllocRegression marks a deterministic allocation increase.
	OldAllocs       float64 `json:"old_allocs_per_op,omitempty"`
	NewAllocs       float64 `json:"new_allocs_per_op,omitempty"`
	NewAllocsKnown  bool    `json:"-"`
	AllocRegression bool    `json:"alloc_regression,omitempty"`

	Verdict Verdict `json:"verdict"`
}

// significant reports whether the timing change is statistically
// significant AND large enough to matter.
func significant(p, delta float64, opt Options) bool {
	return !math.IsNaN(p) && p < opt.Alpha && math.Abs(delta) >= opt.MinDelta
}

// Compare runs the comparison engine over two record sets: for every
// benchmark present in both, a two-sided Mann-Whitney U test on the
// ns/op sample sets decides whether the medians differ significantly,
// and the min-delta guard decides whether the difference is big enough
// to matter. Benchmarks on one side only are reported as added/removed.
// Results are sorted: regressions first, then by key.
func Compare(baseline, current []Record, opt Options) []Comparison {
	opt = opt.withDefaults()
	oldSets := SampleSets(baseline)
	newSets := SampleSets(current)

	keys := map[string]bool{}
	for k := range oldSets {
		keys[k] = true
	}
	for k := range newSets {
		keys[k] = true
	}
	var out []Comparison
	for k := range keys {
		o, hasOld := oldSets[k]
		n, hasNew := newSets[k]
		switch {
		case !hasOld:
			out = append(out, Comparison{Pkg: n.Pkg, Name: n.Name, NewN: len(n.Samples),
				NewMedian: medianOf(nsSamples(n)), Verdict: VerdictAdded, P: math.NaN()})
		case !hasNew:
			out = append(out, Comparison{Pkg: o.Pkg, Name: o.Name, OldN: len(o.Samples),
				OldMedian: medianOf(nsSamples(o)), Verdict: VerdictRemoved, P: math.NaN()})
		default:
			out = append(out, compareOne(o, n, opt))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := out[i].Verdict == VerdictRegression, out[j].Verdict == VerdictRegression
		if ri != rj {
			return ri
		}
		if out[i].Pkg != out[j].Pkg {
			return out[i].Pkg < out[j].Pkg
		}
		return out[i].Name < out[j].Name
	})
	return out
}

func compareOne(o, n *SampleSet, opt Options) Comparison {
	oldNs, newNs := nsSamples(o), nsSamples(n)
	c := Comparison{
		Pkg: o.Pkg, Name: o.Name, Baseline: describeBaseline(o),
		OldN: len(oldNs), NewN: len(newNs),
		OldMedian: medianOf(oldNs), NewMedian: medianOf(newNs),
		P: math.NaN(),
	}
	if c.OldMedian != 0 {
		c.Delta = (c.NewMedian - c.OldMedian) / c.OldMedian
	}

	switch {
	case len(oldNs) >= 2 && len(newNs) >= 2:
		c.P = MannWhitneyU(oldNs, newNs)
		switch {
		case significant(c.P, c.Delta, opt) && c.Delta > 0:
			c.Verdict = VerdictRegression
		case significant(c.P, c.Delta, opt) && c.Delta < 0:
			c.Verdict = VerdictImprovement
		default:
			c.Verdict = VerdictUnchanged
		}
	case math.Abs(c.Delta) >= opt.FallbackDelta:
		// Too few samples for a rank test; only a gross median move
		// counts.
		if c.Delta > 0 {
			c.Verdict = VerdictRegression
		} else {
			c.Verdict = VerdictImprovement
		}
	default:
		c.Verdict = VerdictInconclusive
	}

	// Allocation counts are near-deterministic, so any increase beyond
	// the min-delta guard (and at least one whole alloc) is a
	// regression regardless of sample counts.
	if oa, ok := allocMedian(o); ok {
		if na, ok := allocMedian(n); ok {
			c.OldAllocs, c.NewAllocs, c.NewAllocsKnown = oa, na, true
			if na > oa && na-oa >= 1 && na-oa >= oa*opt.MinDelta {
				c.AllocRegression = true
				c.Verdict = VerdictRegression
			}
		}
	}
	return c
}

func medianOf(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return median(s)
}

// Regressions filters a comparison down to gate failures.
func Regressions(cmps []Comparison) []Comparison {
	var out []Comparison
	for _, c := range cmps {
		if c.Verdict == VerdictRegression {
			out = append(out, c)
		}
	}
	return out
}

// WriteComparisons renders a benchstat-style table.
func WriteComparisons(w io.Writer, cmps []Comparison) error {
	if _, err := fmt.Fprintf(w, "%-52s %14s %14s %9s %8s  %s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "p", "verdict"); err != nil {
		return err
	}
	for _, c := range cmps {
		name := c.Name
		if c.Pkg != "" {
			name = c.Pkg + " " + c.Name
		}
		p := "n/a"
		if !math.IsNaN(c.P) {
			p = fmt.Sprintf("%.4f", c.P)
		}
		verdict := string(c.Verdict)
		if c.AllocRegression {
			verdict += fmt.Sprintf(" (allocs %g→%g)", c.OldAllocs, c.NewAllocs)
		}
		if _, err := fmt.Fprintf(w, "%-52s %14.2f %14.2f %+8.1f%% %8s  %s\n",
			name, c.OldMedian, c.NewMedian, c.Delta*100, p, verdict); err != nil {
			return err
		}
	}
	return nil
}

// MannWhitneyU returns the two-sided p-value of the Mann-Whitney U
// (Wilcoxon rank-sum) test for samples a and b: the probability, under
// the null hypothesis that both come from the same distribution, of a
// rank split at least as extreme as the observed one. Small inputs
// (C(n1+n2, n1) ≤ 200000) use the exact permutation distribution over
// the observed (tie-averaged) ranks; larger inputs use the normal
// approximation with tie correction and continuity correction. Returns
// NaN when either sample is empty.
func MannWhitneyU(a, b []float64) float64 {
	n1, n2 := len(a), len(b)
	if n1 == 0 || n2 == 0 {
		return math.NaN()
	}
	ranks, tieTerm := rankAll(a, b)
	var r1 float64
	for i := 0; i < n1; i++ {
		r1 += ranks[i]
	}
	u1 := r1 - float64(n1)*float64(n1+1)/2
	mu := float64(n1) * float64(n2) / 2

	if binomial(n1+n2, n1) <= 200000 {
		return exactP(ranks, n1, math.Abs(u1-mu))
	}

	n := float64(n1 + n2)
	sigma2 := float64(n1) * float64(n2) / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	if sigma2 <= 0 {
		return 1 // all values identical: no evidence of difference
	}
	z := (math.Abs(u1-mu) - 0.5) / math.Sqrt(sigma2)
	if z < 0 {
		z = 0
	}
	return 2 * normCCDF(z)
}

// rankAll assigns average ranks to the concatenation a||b and returns
// them (first len(a) entries belong to a) plus the tie-correction term
// Σ(t³−t).
func rankAll(a, b []float64) ([]float64, float64) {
	n := len(a) + len(b)
	type iv struct {
		v   float64
		pos int
	}
	all := make([]iv, 0, n)
	for i, v := range a {
		all = append(all, iv{v, i})
	}
	for i, v := range b {
		all = append(all, iv{v, len(a) + i})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
	ranks := make([]float64, n)
	var tieTerm float64
	for i := 0; i < n; {
		j := i
		for j < n && all[j].v == all[i].v {
			j++
		}
		avg := (float64(i+1) + float64(j)) / 2 // ranks are 1-based
		for k := i; k < j; k++ {
			ranks[all[k].pos] = avg
		}
		if t := float64(j - i); t > 1 {
			tieTerm += t*t*t - t
		}
		i = j
	}
	return ranks, tieTerm
}

// exactP enumerates every n1-subset of the observed ranks and counts
// splits whose |U−µ| is at least the observed deviation — the exact
// permutation test, valid with ties because it conditions on the
// observed rank multiset.
func exactP(ranks []float64, n1 int, dev float64) float64 {
	n := len(ranks)
	mu := float64(n1) * float64(n-n1) / 2
	base := float64(n1) * float64(n1+1) / 2
	const eps = 1e-9
	var count, total int
	// Iterative combination walk over indices 0..n-1 choose n1.
	idx := make([]int, n1)
	for i := range idx {
		idx[i] = i
	}
	for {
		var r1 float64
		for _, i := range idx {
			r1 += ranks[i]
		}
		if math.Abs(r1-base-mu) >= dev-eps {
			count++
		}
		total++
		// Next combination.
		i := n1 - 1
		for i >= 0 && idx[i] == i+n-n1 {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for j := i + 1; j < n1; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
	return float64(count) / float64(total)
}

// binomial computes C(n, k) in float64, saturating early — it is only
// a feasibility check for the exact test, so precision past ~1e12 is
// irrelevant.
func binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1.0
	for i := 1; i <= k; i++ {
		c = c * float64(n-k+i) / float64(i)
		if c > 1e12 {
			return 1e12
		}
	}
	return c
}

// normCCDF is the standard normal upper-tail probability P(Z > z).
func normCCDF(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}
