package perf

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// RecordSchema is the canonical benchmark-result schema revision, stamped
// into every Record (BENCH_*.json documents and NDJSON history lines).
const RecordSchema = 1

// BenchSample is one parsed `go test -bench` result line: the iteration
// count and per-operation measurements. Multiple -count runs of the same
// benchmark produce multiple samples — the sample sets the statistical
// comparison needs.
type BenchSample struct {
	N           int64   `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	// HasMem reports whether the -benchmem columns (B/op, allocs/op)
	// were present on the line.
	HasMem bool `json:"has_mem,omitempty"`
}

// Benchmark is one benchmark's sample set within a Record. The name is
// the full benchmark identifier including sub-benchmarks
// ("BenchmarkCounterInc/enabled"), with the -GOMAXPROCS suffix
// stripped.
type Benchmark struct {
	Name    string        `json:"name"`
	Samples []BenchSample `json:"samples"`
}

// Record is one benchmark invocation over one package — the canonical
// result schema. Pretty-printed it is a BENCH_*.json document; one per
// line it is the append-only NDJSON history `pressbench run` grows.
type Record struct {
	Schema int `json:"schema"`
	// Date is the invocation time, RFC3339.
	Date string `json:"date,omitempty"`
	// Commit/Dirty are the VCS revision the results were measured at.
	Commit    string `json:"commit,omitempty"`
	Dirty     bool   `json:"dirty,omitempty"`
	GoVersion string `json:"go_version,omitempty"`
	Goos      string `json:"goos,omitempty"`
	Goarch    string `json:"goarch,omitempty"`
	CPU       string `json:"cpu,omitempty"`
	Pkg       string `json:"pkg,omitempty"`
	// Description is the human field: what this run measures and the
	// exact command that produced it.
	Description string      `json:"description,omitempty"`
	Benchmarks  []Benchmark `json:"benchmarks"`
}

// Benchmark returns the named benchmark's sample set, or nil.
func (r *Record) Benchmark(name string) *Benchmark {
	for i := range r.Benchmarks {
		if r.Benchmarks[i].Name == name {
			return &r.Benchmarks[i]
		}
	}
	return nil
}

// add appends one sample to the named benchmark, creating it on first
// use.
func (r *Record) add(name string, s BenchSample) {
	if b := r.Benchmark(name); b != nil {
		b.Samples = append(b.Samples, s)
		return
	}
	r.Benchmarks = append(r.Benchmarks, Benchmark{Name: name, Samples: []BenchSample{s}})
}

// ParseBench parses `go test -bench` text output into canonical
// records, one per package block (the goos/goarch/pkg/cpu headers the
// test binary prints). Result lines before any pkg header land in a
// record with an empty Pkg. Unknown measurement units, PASS/ok
// trailers, and unrelated output are ignored; a stream with no
// benchmark lines yields no records.
func ParseBench(r io.Reader) ([]Record, error) {
	var out []Record
	cur := Record{Schema: RecordSchema}
	flush := func() {
		if len(cur.Benchmarks) > 0 {
			out = append(out, cur)
		}
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			cur.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			cur.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			cur.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			// A new package block: emit the previous record, carrying the
			// environment header over (go test prints it once per binary).
			pkg := strings.TrimPrefix(line, "pkg: ")
			if cur.Pkg != "" && len(cur.Benchmarks) > 0 {
				flush()
				cur = Record{Schema: RecordSchema, Goos: cur.Goos, Goarch: cur.Goarch, CPU: cur.CPU}
			}
			cur.Pkg = pkg
		default:
			if name, s, ok := parseBenchLine(line); ok {
				cur.add(name, s)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flush()
	return out, nil
}

// parseBenchLine parses one "BenchmarkX-8  N  V unit  V unit ..." line.
func parseBenchLine(line string) (string, BenchSample, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", BenchSample{}, false
	}
	f := strings.Fields(line)
	// Shortest valid line: name, iterations, value, unit.
	if len(f) < 4 {
		return "", BenchSample{}, false
	}
	name := trimProcs(f[0])
	n, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil || n <= 0 {
		return "", BenchSample{}, false
	}
	s := BenchSample{N: n}
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return "", BenchSample{}, false
		}
		switch f[i+1] {
		case "ns/op":
			s.NsPerOp = v
			seen = true
		case "B/op":
			s.BytesPerOp = v
			s.HasMem = true
		case "allocs/op":
			s.AllocsPerOp = v
			s.HasMem = true
		case "MB/s":
			s.MBPerS = v
		default:
			// Custom metric (b.ReportMetric): ignored, not an error.
		}
	}
	if !seen {
		return "", BenchSample{}, false
	}
	return name, s, true
}

// trimProcs strips the trailing -GOMAXPROCS suffix go test appends to
// benchmark names ("BenchmarkX/sub-8" → "BenchmarkX/sub"). Only an
// all-digit suffix after the final dash of the final path segment is
// removed, so "BenchmarkFoo/cfg-2x" survives.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 || i == len(name)-1 {
		return name
	}
	for _, r := range name[i+1:] {
		if r < '0' || r > '9' {
			return name
		}
	}
	return name[:i]
}
