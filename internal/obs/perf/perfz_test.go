package perf

import (
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"press/internal/obs"
)

func TestPerfzHandler(t *testing.T) {
	dir := t.TempDir()
	rec := NewRecord("2026-08-06T00:00:00Z")
	rec.Pkg = "press/internal/obs"
	rec.Description = "demo baseline"
	rec.add("BenchmarkX", BenchSample{N: 100, NsPerOp: 5})
	if err := WriteRecordFile(filepath.Join(dir, "BENCH_demo.json"), rec); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(dir, "BENCH_bad.json"), []byte("not json"), 0o644)

	s := NewSampler(obs.NewRegistry(), nil, 250*time.Millisecond)
	s.SampleOnce()

	req := httptest.NewRequest(http.MethodGet, "/perfz", nil)
	rw := httptest.NewRecorder()
	PerfzHandler(s, dir)(rw, req)
	resp := rw.Result()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Errorf("Cache-Control = %q, want no-store", cc)
	}
	var doc PerfzDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Sampler.Enabled || doc.Sampler.Interval != "250ms" {
		t.Errorf("sampler section = %+v", doc.Sampler)
	}
	if doc.Sampler.Last.Goroutines == 0 {
		t.Errorf("sampler last = %+v", doc.Sampler.Last)
	}
	if len(doc.Baselines) != 2 {
		t.Fatalf("baselines = %+v", doc.Baselines)
	}
	// Sorted by file name: BENCH_bad (parse error reported) then BENCH_demo.
	if doc.Baselines[0].File != "BENCH_bad.json" || doc.Baselines[0].Error == "" {
		t.Errorf("bad baseline = %+v", doc.Baselines[0])
	}
	good := doc.Baselines[1]
	if good.File != "BENCH_demo.json" || good.Pkg != "press/internal/obs" ||
		good.Description != "demo baseline" || good.Benchmarks != 1 {
		t.Errorf("good baseline = %+v", good)
	}
}

// TestPerfzDisabled: without a sampler the endpoint still serves,
// reporting the radar off.
func TestPerfzDisabled(t *testing.T) {
	req := httptest.NewRequest(http.MethodGet, "/perfz", nil)
	rw := httptest.NewRecorder()
	PerfzHandler(nil, "")(rw, req)
	var doc PerfzDoc
	if err := json.NewDecoder(rw.Result().Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Sampler.Enabled || len(doc.Baselines) != 0 {
		t.Errorf("doc = %+v", doc)
	}
}

// TestPerfzGzip: /perfz honors Accept-Encoding like every JSON endpoint
// on the telemetry server.
func TestPerfzGzip(t *testing.T) {
	req := httptest.NewRequest(http.MethodGet, "/perfz", nil)
	req.Header.Set("Accept-Encoding", "gzip")
	rw := httptest.NewRecorder()
	PerfzHandler(nil, "")(rw, req)
	resp := rw.Result()
	if ce := resp.Header.Get("Content-Encoding"); ce != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", ce)
	}
	zr, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `"sampler"`) {
		t.Errorf("body: %s", body)
	}
}

// TestPerfzOnServer registers the route on a real telemetry server.
func TestPerfzOnServer(t *testing.T) {
	srv := obs.NewServer(obs.NewRegistry(), nil)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	RegisterRoutes(srv, nil, "")

	resp, err := http.Get("http://" + srv.Addr().String() + "/perfz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var doc PerfzDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Sampler.Enabled {
		t.Errorf("doc = %+v", doc)
	}
}
