// Package perf is the repository's performance-regression radar: a
// runtime-metrics sampler that mirrors the Go runtime's GC, heap, and
// scheduler state into the obs registry (and optionally the flight
// recorder), a parser and canonical schema for `go test -bench` output,
// an append-only NDJSON benchmark history, and a benchstat-style
// statistical comparison engine behind the `pressbench` command's
// regression gate.
//
// The sampler polls runtime/metrics — not runtime.ReadMemStats, which
// stops the world — so watching a long pressim sweep or controller
// session costs microseconds per tick. Everything follows the obs
// conventions: nil receivers are inert, and the layer is off unless a
// CLI flag turns it on.
package perf

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"

	"press/internal/obs"
	"press/internal/obs/flight"
)

// Runtime metric names the sampler polls (see runtime/metrics). Metrics
// a toolchain does not support are skipped at construction time.
const (
	metricHeapLive   = "/memory/classes/heap/objects:bytes"
	metricHeapGoal   = "/gc/heap/goal:bytes"
	metricGoroutines = "/sched/goroutines:goroutines"
	metricGCCycles   = "/gc/cycles/total:gc-cycles"
	metricHeapAllocs = "/gc/heap/allocs:bytes"
	metricGCPauses   = "/gc/pauses:seconds"
	metricSchedLat   = "/sched/latencies:seconds"
)

// Registry metric names the sampler maintains.
const (
	GaugeHeapLiveBytes    = "runtime_heap_live_bytes"
	GaugeHeapGoalBytes    = "runtime_heap_goal_bytes"
	GaugeGoroutines       = "runtime_goroutines"
	CounterGCCycles       = "runtime_gc_cycles_total"
	CounterHeapAllocBytes = "runtime_heap_allocs_bytes_total"
	HistGCPauseSeconds    = "runtime_gc_pause_seconds"
	HistSchedLatSeconds   = "runtime_sched_latency_seconds"
)

// RuntimeLatencyBuckets spans 1µs to ~262ms in powers of four — the
// range of GC pauses and scheduler latencies worth distinguishing.
var RuntimeLatencyBuckets = obs.ExponentialBuckets(1e-6, 4, 10)

// DefaultRuntimeInterval is the sampler cadence when the CLI flag is
// given without a value it can use.
const DefaultRuntimeInterval = time.Second

// Snapshot is one sampler reading — the live view /perfz serves and the
// payload of a flight RuntimeSample record.
type Snapshot struct {
	UnixMs        int64   `json:"unix_ms"`
	Ticks         uint64  `json:"ticks"`
	HeapLiveBytes uint64  `json:"heap_live_bytes"`
	HeapGoalBytes uint64  `json:"heap_goal_bytes"`
	Goroutines    uint64  `json:"goroutines"`
	GCCycles      uint64  `json:"gc_cycles"`
	GCPauseP50    float64 `json:"gc_pause_p50_s"`
	GCPauseP99    float64 `json:"gc_pause_p99_s"`
	SchedLatP99   float64 `json:"sched_latency_p99_s"`
}

// Sampler periodically reads runtime/metrics and mirrors the readings
// into an obs.Registry: instantaneous values as gauges, cumulative
// totals as counters, and the runtime's pause/latency distributions as
// registry histograms (bucket-count deltas folded in with ObserveN, so
// /metrics and /metrics.json expose them like any other histogram).
// When a flight recorder is attached, each tick also appends a
// RuntimeSample record, putting runtime health into `pressctl rundiff`.
//
// A nil *Sampler is inert. Construction registers the metric handles —
// re-registering on an already-instrumented registry is idempotent
// because the registry hands back the same handles by name.
type Sampler struct {
	reg      *obs.Registry
	rec      *flight.Recorder
	interval time.Duration

	mu      sync.Mutex
	samples []metrics.Sample
	// Indices into samples, -1 when the metric is unsupported.
	iHeapLive, iHeapGoal, iGoroutines, iGCCycles, iHeapAllocs, iPause, iSched int
	prevGC, prevAllocs                                                        uint64
	prevPause, prevSched                                                      []uint64
	ticks                                                                     uint64
	last                                                                      Snapshot

	gHeapLive, gHeapGoal, gGoroutines *obs.Gauge
	cGC, cAllocs                      *obs.Counter
	hPause, hSched                    *obs.Histogram

	life obs.Lifecycle
}

// NewSampler builds a sampler over reg (nil: registry mirroring off)
// and rec (nil: no flight records) ticking every interval (≤ 0 means
// DefaultRuntimeInterval). Call Start to begin sampling, or SampleOnce
// for a manual tick.
func NewSampler(reg *obs.Registry, rec *flight.Recorder, interval time.Duration) *Sampler {
	if interval <= 0 {
		interval = DefaultRuntimeInterval
	}
	s := &Sampler{
		reg:      reg,
		rec:      rec,
		interval: interval,

		gHeapLive:   reg.Gauge(GaugeHeapLiveBytes),
		gHeapGoal:   reg.Gauge(GaugeHeapGoalBytes),
		gGoroutines: reg.Gauge(GaugeGoroutines),
		cGC:         reg.Counter(CounterGCCycles),
		cAllocs:     reg.Counter(CounterHeapAllocBytes),
		hPause:      reg.Histogram(HistGCPauseSeconds, RuntimeLatencyBuckets),
		hSched:      reg.Histogram(HistSchedLatSeconds, RuntimeLatencyBuckets),
	}
	// Probe which metrics this toolchain supports; unsupported ones read
	// as KindBad and are dropped so a tick never branches on them again.
	names := []string{
		metricHeapLive, metricHeapGoal, metricGoroutines,
		metricGCCycles, metricHeapAllocs, metricGCPauses, metricSchedLat,
	}
	probe := make([]metrics.Sample, len(names))
	for i, n := range names {
		probe[i].Name = n
	}
	metrics.Read(probe)
	idx := [7]int{-1, -1, -1, -1, -1, -1, -1}
	for i := range probe {
		if probe[i].Value.Kind() == metrics.KindBad {
			continue
		}
		idx[i] = len(s.samples)
		s.samples = append(s.samples, metrics.Sample{Name: probe[i].Name})
	}
	s.iHeapLive, s.iHeapGoal, s.iGoroutines = idx[0], idx[1], idx[2]
	s.iGCCycles, s.iHeapAllocs, s.iPause, s.iSched = idx[3], idx[4], idx[5], idx[6]
	// Baseline the cumulative counters so the registry counts activity
	// since the sampler started, not since process start.
	metrics.Read(s.samples)
	if s.iGCCycles >= 0 {
		s.prevGC = s.samples[s.iGCCycles].Value.Uint64()
	}
	if s.iHeapAllocs >= 0 {
		s.prevAllocs = s.samples[s.iHeapAllocs].Value.Uint64()
	}
	if s.iPause >= 0 {
		s.prevPause = baselineHist(s.samples[s.iPause].Value.Float64Histogram())
	}
	if s.iSched >= 0 {
		s.prevSched = baselineHist(s.samples[s.iSched].Value.Float64Histogram())
	}
	return s
}

func baselineHist(h *metrics.Float64Histogram) []uint64 {
	prev := make([]uint64, len(h.Counts))
	copy(prev, h.Counts)
	return prev
}

// Interval returns the sampling cadence (0 for a nil sampler).
func (s *Sampler) Interval() time.Duration {
	if s == nil {
		return 0
	}
	return s.interval
}

// Start launches the background sampling goroutine, taking one sample
// immediately. Idempotent; safe on a nil sampler.
func (s *Sampler) Start() {
	if s == nil {
		return
	}
	s.life.Start(func() { s.SampleOnce() }, func(stop <-chan struct{}) {
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.SampleOnce()
			case <-stop:
				return
			}
		}
	})
}

// Stop halts sampling and waits for the goroutine to exit. Idempotent,
// safe without Start and on a nil sampler.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.life.Stop()
}

// Last returns the most recent snapshot (zero before the first tick or
// for a nil sampler).
func (s *Sampler) Last() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// SampleOnce takes one reading now: gauges and counters are updated,
// histogram deltas folded into the registry, and (when attached) a
// flight RuntimeSample appended. Safe for concurrent use and on a nil
// sampler. Steady-state it allocates nothing beyond what metrics.Read
// itself needs — histogram buffers are reused in place.
func (s *Sampler) SampleOnce() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	metrics.Read(s.samples)
	s.ticks++
	snap := Snapshot{UnixMs: time.Now().UnixMilli(), Ticks: s.ticks}
	if i := s.iHeapLive; i >= 0 {
		snap.HeapLiveBytes = s.samples[i].Value.Uint64()
		s.gHeapLive.Set(float64(snap.HeapLiveBytes))
	}
	if i := s.iHeapGoal; i >= 0 {
		snap.HeapGoalBytes = s.samples[i].Value.Uint64()
		s.gHeapGoal.Set(float64(snap.HeapGoalBytes))
	}
	if i := s.iGoroutines; i >= 0 {
		snap.Goroutines = s.samples[i].Value.Uint64()
		s.gGoroutines.Set(float64(snap.Goroutines))
	}
	if i := s.iGCCycles; i >= 0 {
		v := s.samples[i].Value.Uint64()
		snap.GCCycles = v
		if v >= s.prevGC {
			s.cGC.Add(int64(v - s.prevGC))
		}
		s.prevGC = v
	}
	if i := s.iHeapAllocs; i >= 0 {
		v := s.samples[i].Value.Uint64()
		if v >= s.prevAllocs {
			s.cAllocs.Add(int64(v - s.prevAllocs))
		}
		s.prevAllocs = v
	}
	if i := s.iPause; i >= 0 {
		h := s.samples[i].Value.Float64Histogram()
		s.prevPause = mirrorHist(s.hPause, h, s.prevPause)
		snap.GCPauseP50 = histQuantile(h, 0.50)
		snap.GCPauseP99 = histQuantile(h, 0.99)
	}
	if i := s.iSched; i >= 0 {
		h := s.samples[i].Value.Float64Histogram()
		s.prevSched = mirrorHist(s.hSched, h, s.prevSched)
		snap.SchedLatP99 = histQuantile(h, 0.99)
	}
	s.last = snap
	s.rec.RecordRuntime(flight.RuntimeSample{
		UnixNs:        snap.UnixMs * int64(time.Millisecond),
		HeapLiveBytes: snap.HeapLiveBytes,
		HeapGoalBytes: snap.HeapGoalBytes,
		Goroutines:    snap.Goroutines,
		GCCycles:      snap.GCCycles,
		GCPauseP50:    snap.GCPauseP50,
		GCPauseP99:    snap.GCPauseP99,
		SchedLatP99:   snap.SchedLatP99,
	})
	return snap
}

// mirrorHist folds the delta between a cumulative runtime histogram and
// its previous counts into dst, observing each bucket's representative
// value delta-many times. Returns the updated previous-counts slice
// (reallocated only if the runtime changed the bucket layout).
func mirrorHist(dst *obs.Histogram, src *metrics.Float64Histogram, prev []uint64) []uint64 {
	if len(prev) != len(src.Counts) {
		prev = make([]uint64, len(src.Counts))
	}
	for i, c := range src.Counts {
		if d := c - prev[i]; c >= prev[i] && d > 0 {
			dst.ObserveN(histBucketValue(src, i), int64(d))
		}
		prev[i] = c
	}
	return prev
}

// histBucketValue picks a representative value for bucket i of a
// runtime histogram: the midpoint, or the finite edge when the other is
// infinite.
func histBucketValue(h *metrics.Float64Histogram, i int) float64 {
	lo, hi := h.Buckets[i], h.Buckets[i+1]
	switch {
	case math.IsInf(lo, -1) && math.IsInf(hi, 1):
		return 0
	case math.IsInf(lo, -1):
		return hi
	case math.IsInf(hi, 1):
		return lo
	default:
		return lo + (hi-lo)/2
	}
}

// histQuantile reads quantile q off a cumulative runtime histogram,
// reporting the representative value of the bucket the quantile falls
// in (0 when the histogram is empty).
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			return histBucketValue(h, i)
		}
	}
	return histBucketValue(h, len(h.Counts)-1)
}
