package perf

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"press/internal/obs"
)

// NewRecord starts a canonical record stamped with the current date and
// the binary's build provenance. The caller fills Pkg/Description and
// the benchmarks.
func NewRecord(date string) Record {
	b := obs.ReadBuild()
	return Record{
		Schema:    RecordSchema,
		Date:      date,
		Commit:    b.Revision,
		Dirty:     b.Modified,
		GoVersion: b.GoVersion,
	}
}

// ReadHistory loads an append-only NDJSON history file: one Record per
// line, in append (chronological) order. Blank lines are skipped;
// records with an unknown newer schema are kept (fields we know still
// decode), but lines that fail to parse are an error — history is a
// curated, committed artifact.
func ReadHistory(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("perf: %s:%d: %w", path, line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// AppendHistory appends records as NDJSON lines to path, creating the
// file (and its directory) if missing. Each line is one compact JSON
// document; the file is opened O_APPEND so concurrent appenders
// interleave at line granularity.
func AppendHistory(path string, recs ...Record) error {
	if len(recs) == 0 {
		return nil
	}
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, rec := range recs {
		if rec.Schema == 0 {
			rec.Schema = RecordSchema
		}
		if err := enc.Encode(rec); err != nil {
			f.Close()
			return err
		}
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadRecordFile loads one canonical pretty-printed BENCH_*.json
// document.
func ReadRecordFile(path string) (Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Record{}, err
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return Record{}, fmt.Errorf("perf: %s: %w", path, err)
	}
	return rec, nil
}

// WriteRecordFile writes one canonical BENCH_*.json document, indented
// for human review in diffs.
func WriteRecordFile(path string, rec Record) error {
	if rec.Schema == 0 {
		rec.Schema = RecordSchema
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadResults loads benchmark records from path, accepting any of the
// three formats the toolchain produces: raw `go test -bench` text
// output, an NDJSON history file, or a single canonical JSON document.
// The format is sniffed from the first byte.
func LoadResults(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("perf: %s: empty input", path)
	}
	if trimmed[0] != '{' {
		return ParseBench(bytes.NewReader(data))
	}
	// JSON: a single indented document decodes as one record; otherwise
	// treat it as NDJSON.
	dec := json.NewDecoder(bytes.NewReader(trimmed))
	var first Record
	if err := dec.Decode(&first); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	recs := []Record{first}
	for dec.More() {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("perf: %s: %w", path, err)
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// SampleSet is one benchmark's ns/op (and allocation) samples resolved
// from a set of records — the unit the comparison engine works on.
type SampleSet struct {
	Pkg, Name string
	// Date is the source record's date — for baselines resolved from a
	// history file, the newest record that measured this benchmark.
	Date    string
	CPU     string
	Samples []BenchSample
}

// Key joins package and benchmark name into the comparison key.
func (s *SampleSet) Key() string { return s.Pkg + " " + s.Name }

// SampleSets resolves records into per-benchmark sample sets keyed by
// package + name. Records are scanned in order; a later record that
// measures the same benchmark replaces the earlier one (history files
// are append-only, so later = newer — the committed baseline is always
// the most recent measurement). Multiple -count samples within one
// record stay together as one set.
func SampleSets(recs []Record) map[string]*SampleSet {
	out := make(map[string]*SampleSet)
	for _, rec := range recs {
		for _, b := range rec.Benchmarks {
			if len(b.Samples) == 0 {
				continue
			}
			set := &SampleSet{
				Pkg: rec.Pkg, Name: b.Name, Date: rec.Date, CPU: rec.CPU,
				Samples: b.Samples,
			}
			out[set.Key()] = set
		}
	}
	return out
}

// SortedKeys returns the sample-set keys in deterministic order.
func SortedKeys(sets map[string]*SampleSet) []string {
	keys := make([]string, 0, len(sets))
	for k := range sets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// BaselineFiles globs the benchmark baseline artifacts under dir: the
// canonical BENCH_*.json documents (under bench/, with the repo root
// still honored for older layouts) plus the bench/history.ndjson store,
// sorted by name. Missing pieces are simply absent from the result.
func BaselineFiles(dir string) []string {
	files, _ := filepath.Glob(filepath.Join(dir, "bench", "BENCH_*.json"))
	rootFiles, _ := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	files = append(files, rootFiles...)
	sort.Strings(files)
	if hist := filepath.Join(dir, "bench", "history.ndjson"); fileExists(hist) {
		files = append(files, hist)
	}
	return files
}

func fileExists(path string) bool {
	st, err := os.Stat(path)
	return err == nil && !st.IsDir()
}

// nsSamples extracts the ns/op values of a sample set.
func nsSamples(set *SampleSet) []float64 {
	out := make([]float64, len(set.Samples))
	for i, s := range set.Samples {
		out[i] = s.NsPerOp
	}
	return out
}

// allocMedian returns the median allocs/op and whether -benchmem data
// is present in the set.
func allocMedian(set *SampleSet) (float64, bool) {
	var vals []float64
	for _, s := range set.Samples {
		if s.HasMem {
			vals = append(vals, s.AllocsPerOp)
		}
	}
	if len(vals) == 0 {
		return 0, false
	}
	sort.Float64s(vals)
	return median(vals), true
}

// median of an already-sorted slice.
func median(sorted []float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// describeBaseline renders a short provenance string for gate output.
func describeBaseline(set *SampleSet) string {
	parts := []string{}
	if set.Date != "" {
		parts = append(parts, set.Date)
	}
	if set.CPU != "" {
		parts = append(parts, set.CPU)
	}
	return strings.Join(parts, ", ")
}
