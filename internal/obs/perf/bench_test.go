package perf

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestParseBenchGolden parses a realistic two-package `go test -bench`
// stream (sub-benchmarks, -benchmem columns, MB/s, repeated -count
// lines, log noise) and checks the canonical records field by field.
func TestParseBenchGolden(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "bench_multi.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := ParseBench(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2 (one per pkg block)", len(recs))
	}

	obsRec := recs[0]
	if obsRec.Pkg != "press/internal/obs" || obsRec.Goos != "linux" ||
		obsRec.Goarch != "amd64" || obsRec.CPU != "AMD EPYC 7B13" {
		t.Errorf("record 0 header = %+v", obsRec)
	}
	if obsRec.Schema != RecordSchema {
		t.Errorf("schema = %d, want %d", obsRec.Schema, RecordSchema)
	}
	if len(obsRec.Benchmarks) != 4 {
		t.Fatalf("record 0 benchmarks = %d, want 4", len(obsRec.Benchmarks))
	}

	// -count=3 samples of a sub-benchmark stay together, -8 suffix gone.
	inc := obsRec.Benchmark("BenchmarkCounterInc/enabled")
	if inc == nil {
		t.Fatal("BenchmarkCounterInc/enabled not parsed")
	}
	if len(inc.Samples) != 3 {
		t.Fatalf("samples = %d, want 3", len(inc.Samples))
	}
	s := inc.Samples[0]
	if s.N != 95973364 || s.NsPerOp != 12.45 || !s.HasMem ||
		s.BytesPerOp != 0 || s.AllocsPerOp != 0 {
		t.Errorf("sample = %+v", s)
	}

	// A line without -benchmem columns parses with HasMem false.
	hist := obsRec.Benchmark("BenchmarkHistogramObserve")
	if hist == nil || len(hist.Samples) != 1 {
		t.Fatal("BenchmarkHistogramObserve not parsed")
	}
	if hist.Samples[0].HasMem || hist.Samples[0].NsPerOp != 28.70 {
		t.Errorf("no-benchmem sample = %+v", hist.Samples[0])
	}

	// MB/s column.
	js := obsRec.Benchmark("BenchmarkSnapshotJSON")
	if js == nil || js.Samples[0].MBPerS != 152.31 || js.Samples[0].AllocsPerOp != 31 {
		t.Errorf("MB/s sample = %+v", js)
	}

	flightRec := recs[1]
	if flightRec.Pkg != "press/internal/obs/flight" {
		t.Errorf("record 1 pkg = %q", flightRec.Pkg)
	}
	// Environment header carries over between package blocks.
	if flightRec.CPU != "AMD EPYC 7B13" || flightRec.Goos != "linux" {
		t.Errorf("record 1 did not inherit env header: %+v", flightRec)
	}
	if b := flightRec.Benchmark("BenchmarkRecordCSI/len64"); b == nil || len(b.Samples) != 2 {
		t.Errorf("BenchmarkRecordCSI/len64 = %+v", b)
	}
	// Only the all-digit GOMAXPROCS suffix is stripped; "cfg-2x" stays.
	if b := flightRec.Benchmark("BenchmarkFoo/cfg-2x"); b == nil {
		names := []string{}
		for _, bb := range flightRec.Benchmarks {
			names = append(names, bb.Name)
		}
		t.Errorf("BenchmarkFoo/cfg-2x not found in %v", names)
	}
}

func TestParseBenchEmpty(t *testing.T) {
	recs, err := ParseBench(strings.NewReader("PASS\nok  \tpress\t0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("records = %+v, want none", recs)
	}
}

func TestParseBenchLine(t *testing.T) {
	cases := []struct {
		line string
		ok   bool
		name string
		ns   float64
	}{
		{"BenchmarkX-8 100 5.5 ns/op", true, "BenchmarkX", 5.5},
		{"BenchmarkX 100 5.5 ns/op", true, "BenchmarkX", 5.5}, // no procs suffix
		{"BenchmarkX-8 100 7 B/op", false, "", 0},             // no ns/op
		{"BenchmarkX-8 bogus 5.5 ns/op", false, "", 0},
		{"Benchmark", false, "", 0},
		{"not a bench line", false, "", 0},
		{"BenchmarkX-8 100 5.5 ns/op 3.0 widgets/op", true, "BenchmarkX", 5.5}, // unknown unit ignored
	}
	for _, c := range cases {
		name, s, ok := parseBenchLine(c.line)
		if ok != c.ok {
			t.Errorf("parseBenchLine(%q) ok = %v, want %v", c.line, ok, c.ok)
			continue
		}
		if ok && (name != c.name || s.NsPerOp != c.ns) {
			t.Errorf("parseBenchLine(%q) = %q/%v", c.line, name, s)
		}
	}
}

func TestTrimProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkX-8":        "BenchmarkX",
		"BenchmarkX-128":      "BenchmarkX",
		"BenchmarkX/sub-8":    "BenchmarkX/sub",
		"BenchmarkX/cfg-2x-8": "BenchmarkX/cfg-2x",
		"BenchmarkX/cfg-2x":   "BenchmarkX/cfg-2x",
		"BenchmarkX":          "BenchmarkX",
		"BenchmarkX-":         "BenchmarkX-",
	}
	for in, want := range cases {
		if got := trimProcs(in); got != want {
			t.Errorf("trimProcs(%q) = %q, want %q", in, got, want)
		}
	}
}
