// Package obstest holds small helpers shared by the observability
// layer's tests. It imports nothing but the standard library, so every
// obs package (including obs itself) can use it without cycles.
package obstest

import (
	"testing"
	"time"
)

// WaitUntil polls cond roughly every millisecond until it reports true
// or the timeout elapses, replacing the hand-rolled
// `deadline := time.Now().Add(...)` poll loops that used to be
// copy-pasted across the obs test suites. cond is evaluated one final
// time at the deadline, so a condition that becomes true on the last
// iteration is never misreported. Returns whether cond held.
//
// cond may block (e.g. on a streaming read) — WaitUntil only bounds the
// number of iterations, one blocking step per call, like the loops it
// replaces.
func WaitUntil(t testing.TB, timeout time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return true
		}
		if !time.Now().Before(deadline) {
			return cond()
		}
		time.Sleep(time.Millisecond)
	}
}
