package scope

import (
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"press/internal/obs"
	"press/internal/obs/flight"
	"press/internal/obs/health"
)

func TestNilScopeAccessors(t *testing.T) {
	var s *Scope
	if s.ID() != "" || s.Registry() != nil || s.Logger() != nil ||
		s.Recorder() != nil || s.Health() != nil || s.Flight() != nil || s.Prof() != nil {
		t.Fatal("nil scope accessors must return zero values")
	}
	if s.CSIHook() != nil {
		t.Fatal("nil scope CSIHook must be nil")
	}
	// All of these must be no-ops, not panics.
	s.Registry().Counter("x").Inc()
	s.ObserveCondProfile([]float64{1, 2})
	s.RecordManifest(flight.NewManifest("t", "t", 1))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestScopeRollUp(t *testing.T) {
	parent := obs.NewRegistry()
	s, err := New("room-1", parent, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Registry().Counter("radio_csi_measurements_total").Add(7)
	if got := s.Registry().Counter("radio_csi_measurements_total").Value(); got != 7 {
		t.Fatalf("scoped counter = %d, want 7", got)
	}
	if got := parent.Counter("radio_csi_measurements_total").Value(); got != 7 {
		t.Fatalf("rolled-up counter = %d, want 7", got)
	}
}

func TestScopeOwnedComponents(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run-1")
	s, err := New("room-2", obs.NewRegistry(), Config{
		SampleInterval:  time.Hour,
		Health:          true,
		FlightDir:       dir,
		PhaseAccounting: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.start()
	if s.Recorder() == nil || s.Health() == nil || s.Flight() == nil || s.Prof() == nil {
		t.Fatal("owned components missing")
	}
	hook := s.CSIHook()
	if hook == nil {
		t.Fatal("CSIHook should be non-nil with health+flight")
	}
	hook([]float64{3, 4, 5})
	man := flight.NewManifest("test", "scenario", 42)
	s.RecordManifest(man)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	got, err := flight.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Session() != "room-2" {
		t.Fatalf("manifest session = %q, want room-2", got.Session())
	}
}

func TestAdoptedScopeDoesNotClose(t *testing.T) {
	reg := obs.NewRegistry()
	mon := health.NewMonitor(reg, nil, time.Hour, 0)
	mon.Start()
	defer mon.Stop()
	s := Adopt("cli", reg, nil, mon, nil, nil)
	if s.Registry() != reg || s.Health() != mon {
		t.Fatal("adopted components not exposed")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The monitor must still be usable after the adopted scope closes.
	mon.ObserveActuation()
	mon.Sample()
}

func TestSetLRUEviction(t *testing.T) {
	parent := obs.NewRegistry()
	set := NewSet(parent, 8)
	for i := 0; i < 20; i++ {
		if _, err := set.Open(sessionID(i), Config{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := set.Len(); got != 8 {
		t.Fatalf("live scopes = %d, want 8", got)
	}
	if got := parent.Counter(CounterScopesEvicted).Value(); got != 12 {
		t.Fatalf("evictions = %d, want 12", got)
	}
	if got := parent.Counter(CounterScopesOpened).Value(); got != 20 {
		t.Fatalf("opened = %d, want 20", got)
	}
	if got := parent.Gauge(GaugeScopesActive).Value(); got != 8 {
		t.Fatalf("active gauge = %v, want 8", got)
	}
	// Oldest 12 evicted, newest 8 remain.
	if set.Get(sessionID(0)) != nil {
		t.Fatal("session 0 should have been evicted")
	}
	if set.Get(sessionID(19)) == nil {
		t.Fatal("session 19 should be live")
	}

	// Touching a session via Get protects it from the next eviction.
	if set.Get(sessionID(12)) == nil {
		t.Fatal("session 12 should be live")
	}
	if _, err := set.Open("fresh", Config{}); err != nil {
		t.Fatal(err)
	}
	if set.Get(sessionID(12)) == nil {
		t.Fatal("recently touched session 12 was evicted")
	}
	if set.Get(sessionID(13)) != nil {
		t.Fatal("LRU session 13 should have been evicted")
	}

	// Evicted sessions' contributions persist in the parent totals.
	s := set.Get(sessionID(19))
	s.Registry().Counter("work_total").Add(5)
	set.Remove(sessionID(19))
	if got := parent.Counter("work_total").Value(); got != 5 {
		t.Fatalf("parent lost evicted session's counts: %d", got)
	}
	if err := set.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSetDuplicateOpen(t *testing.T) {
	set := NewSet(obs.NewRegistry(), 4)
	defer set.Close()
	if _, err := set.Open("dup", Config{}); err != nil {
		t.Fatal(err)
	}
	if _, err := set.Open("dup", Config{}); err == nil {
		t.Fatal("duplicate Open should error")
	}
}

func sessionID(i int) string {
	return "room-" + string(rune('A'+i/10)) + string(rune('0'+i%10))
}

func TestRoutes(t *testing.T) {
	parent := obs.NewRegistry()
	srv := obs.NewServer(parent, obs.NewRecorder(parent, time.Hour, 4))
	set := NewSet(parent, 16)
	if err := set.RegisterRoutes(srv); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr().String()

	s, err := set.Open("room-7", Config{SampleInterval: time.Hour, Health: true})
	if err != nil {
		t.Fatal(err)
	}
	s.Registry().Counter("evals_total").Add(3)

	get := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if cc := resp.Header.Get("Cache-Control"); resp.StatusCode == 200 &&
			strings.HasPrefix(path, "/sessions") && cc != "no-store" {
			t.Fatalf("%s: Cache-Control = %q, want no-store", path, cc)
		}
		return resp.StatusCode, string(b)
	}

	code, body := get("/sessions")
	if code != 200 {
		t.Fatalf("/sessions: %d", code)
	}
	var listing sessionsPayload
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatal(err)
	}
	if listing.Active != 1 || len(listing.Sessions) != 1 || listing.Sessions[0].ID != "room-7" {
		t.Fatalf("listing = %+v", listing)
	}

	code, body = get("/sessions/room-7/metrics.json")
	if code != 200 || !strings.Contains(body, "evals_total") {
		t.Fatalf("metrics.json: %d %s", code, body)
	}

	code, body = get("/sessions/room-7/metrics")
	if code != 200 || !strings.Contains(body, `evals_total{session="room-7"} 3`) {
		t.Fatalf("labeled metrics: %d %s", code, body)
	}

	code, body = get("/sessions/room-7/healthz")
	if code != 200 || !strings.Contains(body, `"ok": true`) {
		t.Fatalf("healthz: %d %s", code, body)
	}

	if code, _ = get("/sessions/nope/metrics.json"); code != 404 {
		t.Fatalf("unknown session: %d, want 404", code)
	}

	// The process /metrics endpoint reconciles with the scoped write.
	code, body = get("/metrics")
	if code != 200 || !strings.Contains(body, "evals_total 3") {
		t.Fatalf("process roll-up missing:\n%s", body)
	}
	if err := set.Close(); err != nil {
		t.Fatal(err)
	}
}
