// Package scope makes telemetry a per-session object. A Scope bundles
// everything PRs 1–6 built process-wide — metrics registry, sample
// recorder, channel-health monitor, flight recorder, and phase-cost
// accounting — behind one constructor, so a multi-room service can
// observe, alert on, record, and cost-attribute thousands of concurrent
// room sessions independently.
//
// Scoped metrics roll up hierarchically: a scope's registry is a child
// of the process registry (obs.NewRegistryWithParent), so every write
// through a scope also lands in the process-wide totals, and the
// process /metrics exposition stays the roll-up of all sessions.
// Per-session expositions (with a `session` label) are served by the
// routes Set.RegisterRoutes adds to the telemetry server.
//
// The disabled path keeps the repository's nil-safe convention: every
// accessor on a nil *Scope returns the nil form of its component, so
// producer code holds one scope pointer unconditionally and pays a
// pointer check when telemetry is off (bench-enforced at 0 allocs/op).
package scope

import (
	"fmt"
	"sync"
	"time"

	"press/internal/obs"
	"press/internal/obs/export"
	"press/internal/obs/flight"
	"press/internal/obs/health"
	"press/internal/obs/prof"
	"press/internal/obs/slo"
	"press/internal/obs/tsdb"
	"press/internal/stats"
)

// Config selects which telemetry components Open creates for a scope.
// The zero value creates just the child registry — the cheapest useful
// scope (counters/gauges/spans with roll-up).
type Config struct {
	// SampleInterval > 0 runs an obs.Recorder over the scope's registry
	// at that cadence (the per-session /events?session= time series).
	SampleInterval time.Duration
	// SampleCapacity is the recorder's ring size (≤ 0: recorder default).
	SampleCapacity int

	// Health enables the channel-health monitor; HealthRules (may be
	// empty) are its alert rules, HealthInterval its KPI cadence (≤ 0:
	// health default). Rules imply Health.
	Health         bool
	HealthRules    []health.Rule
	HealthInterval time.Duration

	// FlightDir, when non-empty, opens a per-session flight recorder in
	// that directory (the caller picks the layout — typically
	// <shared-flight-root>/<run-id>). FlightSegmentMB ≤ 0 takes the
	// flight default.
	FlightDir       string
	FlightSegmentMB int

	// PhaseAccounting creates a per-session prof.Collector so phase
	// costs are attributed to the session that spent them.
	PhaseAccounting bool

	// LoopTracing creates a per-session slo.Tracer scoring control-loop
	// iterations against LoopDeadline (the session's coherence budget;
	// 0 = trace without a deadline). A non-zero LoopDeadline implies
	// LoopTracing.
	LoopTracing  bool
	LoopDeadline time.Duration

	// Logger, when set, is shared into the scope (scopes do not own
	// loggers; log records carry the session via their fields).
	Logger *obs.Logger
}

// Scope is one session's telemetry: registry, optional sample recorder,
// health monitor, flight recorder, and phase-cost collector. All
// methods are safe on a nil scope.
type Scope struct {
	id  string
	reg *obs.Registry
	log *obs.Logger
	rec *obs.Recorder
	mon *health.Monitor
	fl  *flight.Recorder
	pc  *prof.Collector
	tr  *slo.Tracer
	srv *obs.Server
	exp *export.Exporter
	ts  *tsdb.Store

	// owned components were created by Open and are stopped by Close;
	// adopted ones (Adopt) belong to a CLI that will stop them itself.
	owned bool

	closeOnce sync.Once
	closeErr  error
}

// New builds an owned scope parented on parent (which may be nil: the
// scope then observes standalone, without roll-up). The id names the
// session everywhere it surfaces: the `session` metric label, the
// /sessions routes, SSE filtering, and flight-manifest tags.
func New(id string, parent *obs.Registry, cfg Config) (*Scope, error) {
	s := &Scope{
		id:    id,
		reg:   obs.NewRegistryWithParent(parent),
		log:   cfg.Logger,
		owned: true,
	}
	if cfg.SampleInterval > 0 {
		s.rec = obs.NewRecorder(s.reg, cfg.SampleInterval, cfg.SampleCapacity)
		s.rec.Start()
	}
	if cfg.Health || len(cfg.HealthRules) > 0 {
		s.mon = health.NewMonitor(s.reg, cfg.HealthRules, cfg.HealthInterval, 0)
		// Started by the caller (Set.Open wires Notify first) via start().
	}
	if cfg.FlightDir != "" {
		rec, err := flight.Open(cfg.FlightDir, cfg.FlightSegmentMB)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("scope %s: %w", id, err)
		}
		s.fl = rec
	}
	if cfg.PhaseAccounting {
		s.pc = prof.NewCollector()
	}
	if cfg.LoopTracing || cfg.LoopDeadline > 0 {
		s.tr = slo.NewTracer(s.reg, slo.Config{
			Deadline: cfg.LoopDeadline,
			Flight:   s.fl,
			Health:   s.mon,
		})
	}
	return s, nil
}

// start launches the deferred-start components (the health monitor,
// whose Notify hook must be set before its first sample).
func (s *Scope) start() {
	if s == nil {
		return
	}
	s.mon.Start()
}

// Adopt wraps already-running, externally owned telemetry components as
// a scope — how the one-shot CLIs (pressim, presssweep, pressctl) hand
// their flag-built process-wide stack to the producer layers through
// the same *Scope parameter a daemon would use per session. Closing an
// adopted scope stops nothing: the owning CLI's Finish does.
func Adopt(id string, reg *obs.Registry, log *obs.Logger, mon *health.Monitor, fl *flight.Recorder, pc *prof.Collector) *Scope {
	return &Scope{id: id, reg: reg, log: log, mon: mon, fl: fl, pc: pc}
}

// FromTelemetry adopts the full stack of a flag-built telemetry CLI
// (the tsdb.CLI at the top of the embedding chain) as one scope,
// including its live server when -telemetry-addr started one, its loop
// tracer when loop tracing is on, its push exporter when -export-url is
// set, and its metrics-history store when -tsdb-dir is set. A non-empty
// id also becomes the session label on the exporter's root batches, so
// a single-session CLI run ships batches — and persists history —
// stamped with its experiment name.
func FromTelemetry(id string, t *tsdb.CLI) *Scope {
	if t == nil {
		return nil
	}
	if id != "" {
		t.Exporter().SetRootSession(id)
	}
	return Adopt(id, t.Registry(), t.Logger(), t.Health(), t.Flight(), t.Prof()).
		WithServer(t.Server()).WithTracer(t.Tracer()).WithExporter(t.Exporter()).
		WithTSDB(t.Store())
}

// WithTracer attaches a control-loop deadline tracer to the scope (the
// adopted form; owned scopes get one via Config.LoopTracing). Returns
// s; a no-op on a nil scope.
func (s *Scope) WithTracer(t *slo.Tracer) *Scope {
	if s != nil {
		s.tr = t
	}
	return s
}

// Tracer returns the scope's control-loop deadline tracer (nil is valid
// and disabled).
func (s *Scope) Tracer() *slo.Tracer {
	if s == nil {
		return nil
	}
	return s.tr
}

// WithExporter attaches the process push exporter to the scope, so
// harnesses holding the scope can feed it per-session registries
// (Set.AttachExporter). Returns s; a no-op on a nil scope.
func (s *Scope) WithExporter(e *export.Exporter) *Scope {
	if s != nil {
		s.exp = e
	}
	return s
}

// Exporter returns the push exporter behind the scope's stack, or nil
// when exporting is off (or on a nil scope).
func (s *Scope) Exporter() *export.Exporter {
	if s == nil {
		return nil
	}
	return s.exp
}

// WithTSDB attaches the process metrics-history store to the scope, so
// harnesses holding the scope can route session retention through it
// (Set.AttachTSDB). Returns s; a no-op on a nil scope.
func (s *Scope) WithTSDB(ts *tsdb.Store) *Scope {
	if s != nil {
		s.ts = ts
	}
	return s
}

// TSDB returns the metrics-history store behind the scope's stack, or
// nil when durable history is off (or on a nil scope).
func (s *Scope) TSDB() *tsdb.Store {
	if s == nil {
		return nil
	}
	return s.ts
}

// WithServer records the live telemetry server this scope's stack
// serves on, so harnesses holding the scope can expose routes there
// (RunConcurrent registers its ScopeSet's /sessions routes on it).
// Returns s; a no-op on a nil scope.
func (s *Scope) WithServer(srv *obs.Server) *Scope {
	if s != nil {
		s.srv = srv
	}
	return s
}

// Server returns the live telemetry server behind the scope's stack,
// or nil when none is serving (or on a nil scope).
func (s *Scope) Server() *obs.Server {
	if s == nil {
		return nil
	}
	return s.srv
}

// ID returns the session ID ("" on a nil scope).
func (s *Scope) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// Registry returns the scope's metrics registry (nil on a nil scope —
// itself a valid, disabled registry).
func (s *Scope) Registry() *obs.Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Logger returns the scope's logger (nil is a valid, disabled logger).
func (s *Scope) Logger() *obs.Logger {
	if s == nil {
		return nil
	}
	return s.log
}

// Recorder returns the scope's sample recorder, nil when sampling is
// off.
func (s *Scope) Recorder() *obs.Recorder {
	if s == nil {
		return nil
	}
	return s.rec
}

// Health returns the scope's channel-health monitor (nil is valid and
// disabled).
func (s *Scope) Health() *health.Monitor {
	if s == nil {
		return nil
	}
	return s.mon
}

// Flight returns the scope's flight recorder (nil is valid and
// disabled).
func (s *Scope) Flight() *flight.Recorder {
	if s == nil {
		return nil
	}
	return s.fl
}

// Prof returns the scope's phase-cost collector (nil is valid and
// disabled).
func (s *Scope) Prof() *prof.Collector {
	if s == nil {
		return nil
	}
	return s.pc
}

// CSIHook returns the per-measurement CSI callback feeding the scope's
// health monitor and flight recorder — what scenario builders assign to
// radio.Link.OnCSI. Nil when the scope observes neither, so measurement
// stays zero-overhead.
func (s *Scope) CSIHook() func(snrDB []float64) {
	if s == nil {
		return nil
	}
	switch {
	case s.mon != nil && s.fl != nil:
		mon, fl := s.mon, s.fl
		return func(snrDB []float64) {
			mon.ObserveSNR(snrDB)
			fl.RecordCSI(snrDB)
		}
	case s.mon != nil:
		return s.mon.ObserveSNR
	case s.fl != nil:
		return s.fl.RecordCSI
	}
	return nil
}

// ObserveCondProfile fans a per-subcarrier MIMO condition-number
// profile (dB) out to the scope's health monitor and, as its median,
// the flight log. No-op on a nil scope or empty profile.
func (s *Scope) ObserveCondProfile(condDB []float64) {
	if s == nil {
		return
	}
	s.mon.ObserveCondProfile(condDB)
	if s.fl != nil && len(condDB) > 0 {
		s.fl.RecordKPI(flight.KPICondDBMedian, stats.Median(condDB))
	}
}

// RecordManifest tags m with the scope's session ID and writes it to
// the scope's flight log. No-op without a flight recorder.
func (s *Scope) RecordManifest(m *flight.Manifest) {
	if s == nil || s.fl == nil || m == nil {
		return
	}
	if s.id != "" {
		m.SetSession(s.id)
	}
	s.fl.RecordManifest(m)
}

// Close stops and releases the owned components — recorder, monitor,
// loop tracer, flight log — through their uniform obs.Lifecycle-backed
// Stop contract. Adopted components are left running for their owner.
// Idempotent; safe on a nil scope.
func (s *Scope) Close() error {
	if s == nil {
		return nil
	}
	s.closeOnce.Do(func() {
		if !s.owned {
			return
		}
		if s.rec != nil {
			s.rec.Stop()
		}
		s.mon.Stop()
		s.tr.Stop()
		if s.fl != nil {
			s.closeErr = s.fl.Close()
		}
	})
	return s.closeErr
}
