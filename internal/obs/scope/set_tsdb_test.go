package scope

import (
	"testing"
	"time"

	"press/internal/obs"
	"press/internal/obs/export"
	"press/internal/obs/tsdb"
)

// sessionCount reads how many sessions currently hold series budget in
// the store.
func sessionCount(t *testing.T, s *tsdb.Store) int {
	t.Helper()
	return s.State().Sessions
}

// TestSetReleasesTSDBSessions: removing or LRU-evicting a scope must
// release its per-session series budget in the attached history store,
// so session churn cannot exhaust the store's cardinality budget.
func TestSetReleasesTSDBSessions(t *testing.T) {
	parent := obs.NewRegistry()
	store, err := tsdb.Open(tsdb.Options{Dir: t.TempDir(), Reg: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	set := NewSet(parent, 2)
	set.AttachTSDB(store)
	defer set.Close()

	open := func(id string) {
		t.Helper()
		if _, err := set.Open(id, Config{}); err != nil {
			t.Fatal(err)
		}
		store.Offer(export.Batch{
			UnixMs:   time.Now().UnixMilli(),
			Session:  id,
			Counters: map[string]int64{"scoped_work_total": 1},
		})
	}
	open("a")
	open("b")
	waitSessions := func(want int) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for sessionCount(t, store) != want && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if got := sessionCount(t, store); got != want {
			t.Fatalf("store sessions = %d, want %d", got, want)
		}
	}
	waitSessions(2)

	// Deliberate removal releases the session's budget.
	if err := set.Remove("a"); err != nil {
		t.Fatal(err)
	}
	waitSessions(1)

	// Opening past the cap evicts LRU "b" and releases it too.
	open("c")
	open("d")
	waitSessions(2) // c and d live; b released
	if set.Get("b") != nil {
		t.Fatal("b still in set after eviction")
	}

	// Close releases everything.
	if err := set.Close(); err != nil {
		t.Fatal(err)
	}
	waitSessions(0)
}
