package scope

import (
	"testing"

	"press/internal/obs"
)

// BenchmarkNilScopeCounter is the disabled-path contract: telemetry off
// means one pointer check and 0 allocs/op on the producer hot path.
// Enforced in CI via BENCH_scope.json + `pressbench gate`.
func BenchmarkNilScopeCounter(b *testing.B) {
	var s *Scope
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Registry().Counter("bench_evals_total").Inc()
	}
}

// BenchmarkNilScopeCSIHook covers the other nil-scope producer path.
func BenchmarkNilScopeCSIHook(b *testing.B) {
	var s *Scope
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if hook := s.CSIHook(); hook != nil {
			b.Fatal("nil scope produced a hook")
		}
	}
}

// BenchmarkScopedCounterInc measures the roll-up tax: one extra atomic
// add per parent level over a root-registry increment.
func BenchmarkScopedCounterInc(b *testing.B) {
	parent := obs.NewRegistry()
	s, err := New("bench", parent, Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	c := s.Registry().Counter("bench_evals_total")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkRootCounterInc is the baseline the scoped increment is
// compared against.
func BenchmarkRootCounterInc(b *testing.B) {
	reg := obs.NewRegistry()
	c := reg.Counter("bench_evals_total")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkScopeOpenClose measures session churn: create a scope in a
// set (registry child only — the daemon's cheapest session shape) and
// tear it down.
func BenchmarkScopeOpenClose(b *testing.B) {
	parent := obs.NewRegistry()
	set := NewSet(parent, 4)
	defer set.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := set.Open("bench", Config{})
		if err != nil {
			b.Fatal(err)
		}
		s.Registry().Counter("bench_churn_total").Inc()
		if err := set.Remove("bench"); err != nil {
			b.Fatal(err)
		}
	}
}
