package scope

import (
	"encoding/json"
	"io"
	"net/http"

	"press/internal/obs"
	"press/internal/obs/health"
)

// sessionsPayload is the /sessions response body.
type sessionsPayload struct {
	Sessions []Info `json:"sessions"`
	Cap      int    `json:"cap"`
	Active   int    `json:"active"`
	Opened   int64  `json:"opened_total"`
	Evicted  int64  `json:"evicted_total"`
}

// healthzPayload is the /sessions/{id}/healthz response body.
type healthzPayload struct {
	Session string                 `json:"session"`
	OK      bool                   `json:"ok"`
	Firing  int                    `json:"firing"`
	Alerts  *health.AlertsSnapshot `json:"alerts,omitempty"`
}

// RegisterRoutes exposes the set on a telemetry server:
//
//	GET /sessions                     live-session listing + cap/eviction stats
//	GET /sessions/{id}/metrics.json   the session's registry as JSON
//	GET /sessions/{id}/metrics        Prometheus text with a session label
//	GET /sessions/{id}/healthz        the session's alert state
//	GET /sessions/{id}/tracez         the session's loop-deadline traces
//
// and installs the resolver behind session-filtered /events?session=
// streams. JSON routes share ServeJSON's contract (gzip when accepted,
// Cache-Control: no-store). Routes may be registered while the server
// is already serving.
func (t *Set) RegisterRoutes(srv *obs.Server) error {
	if t == nil || srv == nil {
		return nil
	}
	t.AttachServer(srv)
	srv.SetSessionResolver(func(id string) *obs.Recorder {
		return t.Get(id).Recorder()
	})
	if err := srv.TryHandle("/sessions", func(w http.ResponseWriter, r *http.Request) {
		obs.ServeJSON(w, r, func(out io.Writer) error {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			list := t.List()
			return enc.Encode(sessionsPayload{
				Sessions: list,
				Cap:      t.Cap(),
				Active:   len(list),
				Opened:   t.opened.Value(),
				Evicted:  t.evicted.Value(),
			})
		})
	}); err != nil {
		return err
	}
	handle := func(pattern string, f func(s *Scope, w http.ResponseWriter, r *http.Request)) error {
		return srv.TryHandle(pattern, func(w http.ResponseWriter, r *http.Request) {
			id := r.PathValue("id")
			s := t.Get(id)
			if s == nil {
				http.Error(w, "unknown session "+id, http.StatusNotFound)
				return
			}
			f(s, w, r)
		})
	}
	if err := handle("/sessions/{id}/metrics.json", func(s *Scope, w http.ResponseWriter, r *http.Request) {
		obs.ServeJSON(w, r, s.Registry().WriteJSON)
	}); err != nil {
		return err
	}
	if err := handle("/sessions/{id}/metrics", func(s *Scope, w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Header().Set("Cache-Control", "no-store")
		_ = s.Registry().WriteTextLabeled(w, "session", s.ID())
	}); err != nil {
		return err
	}
	if err := handle("/sessions/{id}/tracez", func(s *Scope, w http.ResponseWriter, r *http.Request) {
		s.Tracer().ServeTracez(w, r)
	}); err != nil {
		return err
	}
	return handle("/sessions/{id}/healthz", func(s *Scope, w http.ResponseWriter, r *http.Request) {
		obs.ServeJSON(w, r, func(out io.Writer) error {
			p := healthzPayload{Session: s.ID(), OK: true}
			if mon := s.Health(); mon != nil {
				alerts := mon.Alerts()
				p.Alerts = &alerts
				p.Firing = alerts.Firing
				p.OK = p.Firing == 0
			}
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			return enc.Encode(p)
		})
	})
}
