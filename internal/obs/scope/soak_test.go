package scope

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"press/internal/obs"
	"press/internal/obs/obstest"
)

// TestSoakConcurrentSessions is the tentpole's proof obligation: ≥100
// instrumented sessions live at once, written by concurrent producers,
// with per-session totals and the hierarchical roll-up reconciling
// exactly. The table crosses scope counts with producer goroutines per
// scope so -race sees single-writer, many-writer, and many-scope
// interleavings.
func TestSoakConcurrentSessions(t *testing.T) {
	cases := []struct {
		scopes, producers, writes int
	}{
		{scopes: 4, producers: 8, writes: 200},
		{scopes: 32, producers: 4, writes: 100},
		{scopes: 120, producers: 2, writes: 50},
	}
	if testing.Short() {
		cases = cases[:2]
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%dscopes_x_%dproducers", tc.scopes, tc.producers), func(t *testing.T) {
			parent := obs.NewRegistry()
			set := NewSet(parent, tc.scopes) // exact fit: no evictions
			defer set.Close()

			var wg sync.WaitGroup
			for i := 0; i < tc.scopes; i++ {
				s, err := set.Open(fmt.Sprintf("room-%03d", i), Config{})
				if err != nil {
					t.Fatal(err)
				}
				for p := 0; p < tc.producers; p++ {
					wg.Add(1)
					go func(s *Scope) {
						defer wg.Done()
						c := s.Registry().Counter("soak_evals_total")
						h := s.Registry().Histogram("soak_score", nil)
						for w := 0; w < tc.writes; w++ {
							c.Inc()
							h.Observe(float64(w % 10))
							s.Registry().Gauge("soak_best").Set(float64(w))
						}
					}(s)
				}
			}
			wg.Wait()

			perScope := int64(tc.producers * tc.writes)
			var sum int64
			for i := 0; i < tc.scopes; i++ {
				s := set.Get(fmt.Sprintf("room-%03d", i))
				if s == nil {
					t.Fatalf("scope %d missing", i)
				}
				got := s.Registry().Counter("soak_evals_total").Value()
				if got != perScope {
					t.Fatalf("scope %d counter = %d, want %d", i, got, perScope)
				}
				sum += got
			}
			if got := parent.Counter("soak_evals_total").Value(); got != sum {
				t.Fatalf("roll-up = %d, want sum of sessions %d", got, sum)
			}
			if got := parent.Histogram("soak_score", nil).Count(); got != sum {
				t.Fatalf("roll-up histogram count = %d, want %d", got, sum)
			}
		})
	}
}

// TestSoakEvictionUnderLoad drives more sessions than the cap while
// producers write, asserting the roll-up still accounts for evicted
// sessions and the eviction counters balance.
func TestSoakEvictionUnderLoad(t *testing.T) {
	parent := obs.NewRegistry()
	const cap, sessions, writes = 16, 100, 50
	set := NewSet(parent, cap)
	defer set.Close()

	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		s, err := set.Open(fmt.Sprintf("room-%03d", i), Config{})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(s *Scope) {
			defer wg.Done()
			for w := 0; w < writes; w++ {
				s.Registry().Counter("evict_evals_total").Inc()
			}
		}(s)
	}
	wg.Wait()

	if got := parent.Counter("evict_evals_total").Value(); got != sessions*writes {
		t.Fatalf("roll-up lost evicted sessions' writes: %d, want %d", got, sessions*writes)
	}
	if got := set.Len(); got != cap {
		t.Fatalf("live = %d, want %d", got, cap)
	}
	evicted := parent.Counter(CounterScopesEvicted).Value()
	opened := parent.Counter(CounterScopesOpened).Value()
	if opened != sessions || evicted != sessions-cap {
		t.Fatalf("opened=%d evicted=%d, want %d/%d", opened, evicted, sessions, sessions-cap)
	}
}

// TestSoakSSEFanOut exercises SSE subscribers on session-filtered and
// unfiltered streams while scopes publish concurrently — the fan-out
// half of the race table.
func TestSoakSSEFanOut(t *testing.T) {
	parent := obs.NewRegistry()
	rec := obs.NewRecorder(parent, time.Hour, 8)
	rec.Start()
	defer rec.Stop()
	srv := obs.NewServer(parent, rec)
	set := NewSet(parent, 32)
	defer set.Close()
	if err := set.RegisterRoutes(srv); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr().String()

	const scopes = 8
	for i := 0; i < scopes; i++ {
		if _, err := set.Open(fmt.Sprintf("room-%d", i), Config{SampleInterval: 5 * time.Millisecond}); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var pubWG sync.WaitGroup
	for i := 0; i < scopes; i++ {
		pubWG.Add(1)
		go func(i int) {
			defer pubWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
					srv.PublishSession(fmt.Sprintf("room-%d", i), "tick", map[string]int{"i": i})
					set.Get(fmt.Sprintf("room-%d", i)).Registry().Counter("sse_ticks").Inc()
				}
			}
		}(i)
	}

	var subWG sync.WaitGroup
	for i := 0; i < scopes; i++ {
		subWG.Add(1)
		go func(i int) {
			defer subWG.Done()
			url := fmt.Sprintf("%s/events?session=room-%d", base, i)
			if i%2 == 0 {
				url = base + "/events" // unfiltered
			}
			resp, err := http.Get(url)
			if err != nil {
				t.Errorf("subscriber %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			buf := make([]byte, 2048)
			var n int
			obstest.WaitUntil(t, 2*time.Second, func() bool {
				m, err := resp.Body.Read(buf)
				n += m
				if err != nil {
					if err != io.EOF {
						t.Errorf("subscriber %d read: %v", i, err)
					}
					return true
				}
				return n >= 4096
			})
		}(i)
	}
	subWG.Wait()
	close(stop)
	pubWG.Wait()
}
