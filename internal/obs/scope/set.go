package scope

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"press/internal/obs"
	"press/internal/obs/export"
	"press/internal/obs/names"
	"press/internal/obs/tsdb"
)

// DefaultMaxScopes bounds the number of live scopes (hence the
// cardinality of the `session` label and the per-scope memory) when the
// Set is built with cap ≤ 0.
const DefaultMaxScopes = 1024

// Metric names the Set maintains in the parent (process) registry —
// spellings owned by internal/obs/names.
const (
	CounterScopesOpened  = names.SessionsOpened
	CounterScopesEvicted = names.SessionsEvicted
	GaugeScopesActive    = names.SessionsActive
)

// Set is the process-level directory of live scopes: bounded
// cardinality with LRU eviction, a metrics budget the daemon arc can
// rely on. All methods are safe for concurrent use.
type Set struct {
	parent *obs.Registry
	srv    *obs.Server // optional: session events publish here
	cap    int

	opened  *obs.Counter
	evicted *obs.Counter
	active  *obs.Gauge

	mu     sync.Mutex
	seq    uint64
	scopes map[string]*entry
	exp    *export.Exporter
	ts     *tsdb.Store
}

type entry struct {
	scope   *Scope
	created time.Time
	lastUse uint64 // Set.seq stamp; smallest = least recently used
}

// NewSet builds a scope directory parented on parent (nil: scopes
// observe standalone) holding at most cap scopes (≤ 0:
// DefaultMaxScopes). Opening past the cap evicts the least recently
// used scope, closing it and counting the eviction in the parent
// registry.
func NewSet(parent *obs.Registry, cap int) *Set {
	if cap <= 0 {
		cap = DefaultMaxScopes
	}
	return &Set{
		parent:  parent,
		cap:     cap,
		opened:  parent.Counter(CounterScopesOpened),
		evicted: parent.Counter(CounterScopesEvicted),
		active:  parent.Gauge(GaugeScopesActive),
		scopes:  map[string]*entry{},
	}
}

// AttachServer points session telemetry at a live server: health events
// from scopes opened after this call publish as session-tagged SSE
// events, and RegisterRoutes' resolver work. Call before Open.
func (t *Set) AttachServer(srv *obs.Server) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.srv = srv
	t.mu.Unlock()
}

// AttachExporter feeds the set's live scopes to a push exporter: each
// export collection enumerates them via ForEachRegistry and ships one
// session-labeled delta batch per scope. Remove and Close force a final
// collection first, so a session's telemetry tail is captured before
// its registry goes away. A nil set or exporter is a no-op.
func (t *Set) AttachExporter(e *export.Exporter) {
	if t == nil || e == nil {
		return
	}
	t.mu.Lock()
	t.exp = e
	t.mu.Unlock()
	e.SetSessions(t.ForEachRegistry)
}

// AttachTSDB routes session retention through the metrics-history
// store: when a scope is removed or LRU-evicted, its per-session series
// budget is released after the final collection lands its telemetry
// tail, so a churning daemon cannot exhaust the store's session
// cardinality budget with dead sessions. A nil set or store is a no-op.
func (t *Set) AttachTSDB(ts *tsdb.Store) {
	if t == nil || ts == nil {
		return
	}
	t.mu.Lock()
	t.ts = ts
	t.mu.Unlock()
}

// ForEachRegistry calls emit once per live scope with its session ID
// and registry, in no particular order — the export.SessionSource shape.
// LRU order is not affected.
func (t *Set) ForEachRegistry(emit func(id string, reg *obs.Registry)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	type item struct {
		id  string
		reg *obs.Registry
	}
	items := make([]item, 0, len(t.scopes))
	for id, e := range t.scopes {
		items = append(items, item{id, e.scope.reg})
	}
	t.mu.Unlock()
	for _, it := range items {
		emit(it.id, it.reg)
	}
}

// Cap returns the scope cap.
func (t *Set) Cap() int {
	if t == nil {
		return 0
	}
	return t.cap
}

// Open creates, registers, and starts a new owned scope. A duplicate ID
// is an error (Get the existing scope instead). When the set is full
// the least recently used scope is closed and evicted first.
func (t *Set) Open(id string, cfg Config) (*Scope, error) {
	if t == nil {
		return nil, fmt.Errorf("scope: nil set")
	}
	if id == "" {
		return nil, fmt.Errorf("scope: empty session id")
	}
	s, err := New(id, t.parent, cfg)
	if err != nil {
		return nil, err
	}

	t.mu.Lock()
	if _, dup := t.scopes[id]; dup {
		t.mu.Unlock()
		closeDiscard(s)
		return nil, fmt.Errorf("scope: session %q already open", id)
	}
	type victimEntry struct {
		id    string
		scope *Scope
	}
	var evict []victimEntry
	for len(t.scopes) >= t.cap {
		victim := t.lruLocked()
		if victim == "" {
			break
		}
		evict = append(evict, victimEntry{victim, t.scopes[victim].scope})
		delete(t.scopes, victim)
	}
	t.seq++
	t.scopes[id] = &entry{scope: s, created: time.Now(), lastUse: t.seq}
	srv := t.srv
	ts := t.ts
	t.active.Set(float64(len(t.scopes)))
	t.mu.Unlock()

	t.opened.Inc()
	for _, v := range evict {
		t.evicted.Inc()
		_ = v.scope.Close()
		// Free the evicted session's series budget in the history store;
		// its segments stay on disk until retention expires them.
		ts.ReleaseSession(v.id)
	}

	// Wire session-tagged SSE before the monitor's first sample.
	if srv != nil && s.mon != nil {
		sid := id
		s.mon.Notify = func(event string, v any) {
			srv.PublishSession(sid, event, v)
		}
	}
	s.start()
	return s, nil
}

// lruLocked returns the least-recently-used scope ID ("" when empty).
func (t *Set) lruLocked() string {
	var victim string
	var oldest uint64
	for id, e := range t.scopes {
		if victim == "" || e.lastUse < oldest {
			victim, oldest = id, e.lastUse
		}
	}
	return victim
}

// closeDiscard closes a scope that never made it into the set.
func closeDiscard(s *Scope) { _ = s.Close() }

// Get returns the scope for id (nil when unknown) and marks it
// most-recently-used.
func (t *Set) Get(id string) *Scope {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.scopes[id]
	if e == nil {
		return nil
	}
	t.seq++
	e.lastUse = t.seq
	return e.scope
}

// Remove closes and deregisters the scope for id (a deliberate
// teardown, not counted as an eviction). Unknown IDs are a no-op.
func (t *Set) Remove(id string) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	exp := t.exp
	t.mu.Unlock()
	// Capture the departing session's telemetry tail while its registry
	// is still enumerable (CollectNow re-enters ForEachRegistry, so it
	// must run outside t.mu).
	exp.CollectNow()
	t.mu.Lock()
	e := t.scopes[id]
	delete(t.scopes, id)
	ts := t.ts
	t.active.Set(float64(len(t.scopes)))
	t.mu.Unlock()
	if e == nil {
		return nil
	}
	err := e.scope.Close()
	// The tail was collected above; the session's in-memory series
	// budget can go now (history on disk lives until retention).
	ts.ReleaseSession(id)
	return err
}

// Len returns the number of live scopes.
func (t *Set) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.scopes)
}

// Info describes one live scope in the /sessions listing.
type Info struct {
	ID            string `json:"id"`
	CreatedUnixMs int64  `json:"created_unix_ms"`
	Sampling      bool   `json:"sampling"`
	Health        bool   `json:"health"`
	Flight        bool   `json:"flight"`
	FlightDir     string `json:"flight_dir,omitempty"`
}

// List returns the live scopes sorted by ID.
func (t *Set) List() []Info {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Info, 0, len(t.scopes))
	for id, e := range t.scopes {
		s := e.scope
		out = append(out, Info{
			ID:            id,
			CreatedUnixMs: e.created.UnixMilli(),
			Sampling:      s.rec != nil,
			Health:        s.mon != nil,
			Flight:        s.fl != nil,
			FlightDir:     s.fl.Dir(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Close closes every scope and empties the set, after giving an
// attached exporter one last collection over the departing sessions.
func (t *Set) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	exp := t.exp
	t.exp = nil
	t.mu.Unlock()
	exp.CollectNow()
	exp.SetSessions(nil)
	t.mu.Lock()
	scopes := t.scopes
	t.scopes = map[string]*entry{}
	ts := t.ts
	t.active.Set(0)
	t.mu.Unlock()
	var first error
	for id, e := range scopes {
		if err := e.scope.Close(); err != nil && first == nil {
			first = err
		}
		ts.ReleaseSession(id)
	}
	return first
}
