package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, reg *Registry, rec *Recorder) *Server {
	t.Helper()
	s := NewServer(reg, rec)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestServerMetricsEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("controlplane_frames_sent_total").Add(7)
	reg.Gauge("search_best_objective").Set(33.25)
	s := newTestServer(t, reg, nil)
	base := "http://" + s.Addr().String()

	code, body, hdr := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(hdr.Get("Content-Type"), "text/plain") {
		t.Errorf("content type %q", hdr.Get("Content-Type"))
	}
	if !strings.Contains(body, "controlplane_frames_sent_total 7") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	code, body, hdr = get(t, base+"/metrics.json")
	if code != http.StatusOK || !strings.Contains(hdr.Get("Content-Type"), "application/json") {
		t.Fatalf("/metrics.json status %d type %q", code, hdr.Get("Content-Type"))
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json unparsable: %v", err)
	}
	if snap.Counters["controlplane_frames_sent_total"] != 7 {
		t.Errorf("snapshot counter = %d", snap.Counters["controlplane_frames_sent_total"])
	}

	code, body, _ = get(t, base+"/healthz")
	if code != http.StatusOK || !strings.HasPrefix(body, "ok\n") || !strings.Contains(body, "go go") {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, body, hdr = get(t, base+"/buildz")
	if code != http.StatusOK || hdr.Get("Content-Type") != "application/json" {
		t.Fatalf("/buildz status %d type %q", code, hdr.Get("Content-Type"))
	}
	var build Build
	if err := json.Unmarshal([]byte(body), &build); err != nil {
		t.Fatalf("/buildz unparsable: %v", err)
	}
	if build.GoVersion == "" {
		t.Error("/buildz missing go_version")
	}

	code, body, _ = get(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK || body == "" {
		t.Errorf("/debug/pprof/cmdline = %d (%d bytes)", code, len(body))
	}
}

func TestServerEventsStream(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("events_total").Inc()
	rec := NewRecorder(reg, 5*time.Millisecond, 16)
	rec.Start()
	defer rec.Stop()
	s := newTestServer(t, reg, rec)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+s.Addr().String()+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var sample Sample
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &sample); err != nil {
			t.Fatalf("event not JSON: %v in %q", err, line)
		}
		break
	}
	if err := sc.Err(); err != nil && sample.UnixMs == 0 {
		t.Fatal(err)
	}
	if sample.UnixMs == 0 || sample.Counters["events_total"] != 1 {
		t.Fatalf("sample = %+v", sample)
	}
}

func TestServerEventsWithoutRecorder(t *testing.T) {
	s := newTestServer(t, NewRegistry(), nil)
	code, _, _ := get(t, "http://"+s.Addr().String()+"/events")
	if code != http.StatusNotFound {
		t.Errorf("/events without recorder = %d, want 404", code)
	}
}

func TestServerNilRegistry(t *testing.T) {
	// A server over a nil registry serves empty-but-valid expositions.
	s := newTestServer(t, nil, nil)
	code, body, _ := get(t, "http://"+s.Addr().String()+"/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
}

func TestServerAddrBeforeStart(t *testing.T) {
	if addr := NewServer(NewRegistry(), nil).Addr(); addr != nil {
		t.Errorf("Addr before Start = %v", addr)
	}
}

// BenchmarkServerScrape measures end-to-end /metrics handler latency on
// a populated registry — the cost one Prometheus scrape imposes.
func BenchmarkServerScrape(b *testing.B) {
	reg := NewRegistry()
	for i := 0; i < 32; i++ {
		reg.Counter(fmt.Sprintf("counter_%d_total", i)).Add(int64(i))
		reg.Gauge(fmt.Sprintf("gauge_%d", i)).Set(float64(i))
	}
	for i := 0; i < 8; i++ {
		h := reg.Histogram(fmt.Sprintf("hist_%d_seconds", i), LatencyBuckets)
		for j := 0; j < 100; j++ {
			h.Observe(float64(j) / 1000)
		}
	}
	handler := NewServer(reg, nil).Handler()
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rw := httptest.NewRecorder()
		handler.ServeHTTP(rw, req)
		if rw.Code != http.StatusOK {
			b.Fatalf("status %d", rw.Code)
		}
	}
}

// BenchmarkRecorderSample measures one sampling tick — the steady-state
// overhead -telemetry-addr adds per interval.
func BenchmarkRecorderSample(b *testing.B) {
	reg := NewRegistry()
	for i := 0; i < 32; i++ {
		reg.Counter(fmt.Sprintf("counter_%d_total", i)).Inc()
		reg.Gauge(fmt.Sprintf("gauge_%d", i)).Set(float64(i))
	}
	rec := NewRecorder(reg, time.Hour, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.sampleOnce()
	}
}
