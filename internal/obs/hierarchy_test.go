package obs

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"press/internal/obs/obstest"
)

func TestRegistryParentChaining(t *testing.T) {
	parent := NewRegistry()
	a := NewRegistryWithParent(parent)
	b := NewRegistryWithParent(parent)

	a.Counter("evals_total").Add(3)
	b.Counter("evals_total").Inc()
	parent.Counter("evals_total").Inc() // direct process-level write

	if got := a.Counter("evals_total").Value(); got != 3 {
		t.Fatalf("child a counter = %d, want 3", got)
	}
	if got := b.Counter("evals_total").Value(); got != 1 {
		t.Fatalf("child b counter = %d, want 1", got)
	}
	if got := parent.Counter("evals_total").Value(); got != 5 {
		t.Fatalf("parent roll-up = %d, want 5 (3+1+1)", got)
	}

	a.Gauge("best_db").Set(7.5)
	if got := parent.Gauge("best_db").Value(); got != 7.5 {
		t.Fatalf("parent gauge = %v, want 7.5", got)
	}
	b.Gauge("best_db").Add(1) // 0 + 1 in b, mirrors onto parent's 7.5
	if got := b.Gauge("best_db").Value(); got != 1 {
		t.Fatalf("child b gauge = %v, want 1", got)
	}

	a.Histogram("lat", []float64{1, 10}).Observe(0.5)
	b.Histogram("lat", []float64{1, 10}).Observe(5)
	if got := parent.Histogram("lat", nil).Count(); got != 2 {
		t.Fatalf("parent histogram count = %d, want 2", got)
	}
	if got := parent.Histogram("lat", nil).Sum(); got != 5.5 {
		t.Fatalf("parent histogram sum = %v, want 5.5", got)
	}

	sp := StartSpan(a, "phase/solve")
	time.Sleep(time.Millisecond)
	sp.End()
	snap := parent.Snapshot()
	ss, ok := snap.Spans["phase/solve"]
	if !ok || ss.Count != 1 {
		t.Fatalf("parent span roll-up missing: %+v", snap.Spans)
	}
}

func TestRegistryParentChainingConcurrent(t *testing.T) {
	parent := NewRegistry()
	const children, writes = 8, 500
	var wg sync.WaitGroup
	for i := 0; i < children; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			child := NewRegistryWithParent(parent)
			for j := 0; j < writes; j++ {
				child.Counter("c").Inc()
				child.Histogram("h", nil).Observe(1)
			}
		}()
	}
	wg.Wait()
	if got := parent.Counter("c").Value(); got != children*writes {
		t.Fatalf("parent counter = %d, want %d", got, children*writes)
	}
	if got := parent.Histogram("h", nil).Count(); got != children*writes {
		t.Fatalf("parent histogram count = %d, want %d", got, children*writes)
	}
}

func TestWriteTextLabeled(t *testing.T) {
	r := NewRegistry()
	r.Counter("evals_total").Add(4)
	r.Gauge("best_db").Set(2.5)
	r.Histogram("lat", []float64{1}).Observe(0.5)
	var sb strings.Builder
	if err := r.WriteTextLabeled(&sb, "session", `room-"7"`); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"evals_total{session=\"room-\\\"7\\\"\"} 4\n",
		"best_db{session=\"room-\\\"7\\\"\"} 2.5\n",
		"lat_bucket{session=\"room-\\\"7\\\"\",le=\"1\"} 1\n",
		"lat_count{session=\"room-\\\"7\\\"\"} 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("labeled exposition missing %q:\n%s", want, out)
		}
	}
}

// TestHandleFuncAfterStartNoRace is the regression test for route
// registration racing the serving mux: routes keep arriving while
// requests are in flight; under -race this used to trip on the
// unsynchronized map writes inside the mux.
func TestHandleFuncAfterStartNoRace(t *testing.T) {
	reg := NewRegistry()
	srv := NewServer(reg, nil)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr().String()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(base + "/metrics")
				if err == nil {
					resp.Body.Close()
				}
			}
		}()
	}
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			srv.HandleFunc(fmt.Sprintf("/extra/%d", i), func(w http.ResponseWriter, r *http.Request) {
				w.WriteHeader(http.StatusOK)
			})
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()

	resp, err := http.Get(base + "/extra/0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("late-registered route returned %d", resp.StatusCode)
	}
}

func TestTryHandleDuplicate(t *testing.T) {
	srv := NewServer(NewRegistry(), nil)
	if err := srv.TryHandle("/x", func(http.ResponseWriter, *http.Request) {}); err != nil {
		t.Fatalf("first TryHandle: %v", err)
	}
	if err := srv.TryHandle("/x", func(http.ResponseWriter, *http.Request) {}); err == nil {
		t.Fatal("duplicate TryHandle should error")
	}
	if err := srv.TryHandle("/metrics", func(http.ResponseWriter, *http.Request) {}); err == nil {
		t.Fatal("duplicate of a built-in route should error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("HandleFunc on a duplicate pattern should panic")
		}
	}()
	srv.HandleFunc("/x", func(http.ResponseWriter, *http.Request) {})
}

func TestEventsSessionFilter(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(reg, time.Hour, 4)
	rec.Start()
	defer rec.Stop()
	srv := NewServer(reg, rec)

	sessReg := NewRegistryWithParent(reg)
	sessReg.Counter("session_hits").Inc()
	sessRec := NewRecorder(sessReg, time.Hour, 4)
	sessRec.Start()
	defer sessRec.Stop()
	srv.SetSessionResolver(func(id string) *Recorder {
		if id == "room-1" {
			return sessRec
		}
		return nil
	})

	// Unknown session: 404.
	rr := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/events?session=nope", nil)
	srv.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusNotFound {
		t.Fatalf("unknown session: got %d, want 404", rr.Code)
	}

	// Known session: the stream starts with that scope's backlog sample.
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr().String() + "/events?session=room-1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	go func() {
		// Give the subscriber a beat to register, then publish one event
		// for another session (must be filtered) and one for ours.
		time.Sleep(20 * time.Millisecond)
		srv.PublishSession("room-2", "alert", map[string]string{"who": "other"})
		srv.PublishSession("room-1", "alert", map[string]string{"who": "mine"})
	}()

	buf := make([]byte, 4096)
	var got strings.Builder
	obstest.WaitUntil(t, 5*time.Second, func() bool {
		n, err := resp.Body.Read(buf)
		got.Write(buf[:n])
		return strings.Contains(got.String(), `"who":"mine"`) || err != nil
	})
	out := got.String()
	if !strings.Contains(out, "session_hits") {
		t.Fatalf("session stream missing scope backlog sample:\n%s", out)
	}
	if !strings.Contains(out, `"who":"mine"`) {
		t.Fatalf("session stream missing own event:\n%s", out)
	}
	if strings.Contains(out, `"who":"other"`) {
		t.Fatalf("session stream leaked another session's event:\n%s", out)
	}
}
