package slo

import (
	"sort"
	"sync"
)

// Exemplar is one retained loop iteration: the tail-sampled span tree
// /tracez serves.
type Exemplar struct {
	Name         string     `json:"name"`
	TraceID      uint64     `json:"-"`
	Seq          uint64     `json:"seq"`
	StartUnixNs  int64      `json:"start_unix_ns"`
	LatencyNs    int64      `json:"latency_ns"`
	DeadlineNs   int64      `json:"deadline_ns,omitempty"`
	Missed       bool       `json:"missed,omitempty"`
	DroppedSpans int        `json:"dropped_spans,omitempty"`
	Spans        []SpanNode `json:"spans"`
}

// reservoir is the bounded tail sampler: the N slowest loops seen
// (linear min-replace — N is small) plus a ring of the most recent
// deadline misses, so every miss class stays inspectable no matter how
// many fast, healthy loops flow past.
type reservoir struct {
	mu       sync.Mutex
	slowN    int
	missN    int
	slow     []*Exemplar
	miss     []*Exemplar // ring, missNext is the next overwrite slot
	missNext int
}

func (r *reservoir) init(slowN, missN int) {
	if slowN <= 0 {
		slowN = DefaultSlowN
	}
	if missN <= 0 {
		missN = DefaultMissN
	}
	r.slowN, r.missN = slowN, missN
}

// offer takes ownership of ex (the loop is done; nothing mutates it).
func (r *reservoir) offer(ex *Exemplar) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ex.Missed {
		if len(r.miss) < r.missN {
			r.miss = append(r.miss, ex)
		} else {
			r.miss[r.missNext] = ex
			r.missNext = (r.missNext + 1) % r.missN
		}
	}
	if len(r.slow) < r.slowN {
		r.slow = append(r.slow, ex)
		return
	}
	minIdx := 0
	for i, s := range r.slow {
		if s.LatencyNs < r.slow[minIdx].LatencyNs {
			minIdx = i
		}
	}
	if ex.LatencyNs > r.slow[minIdx].LatencyNs {
		r.slow[minIdx] = ex
	}
}

// slowest returns the retained slowest loops, slowest first.
func (r *reservoir) slowest() []*Exemplar {
	r.mu.Lock()
	out := make([]*Exemplar, len(r.slow))
	copy(out, r.slow)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].LatencyNs > out[j].LatencyNs })
	return out
}

// misses returns the retained deadline misses, most recent first.
func (r *reservoir) misses() []*Exemplar {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Exemplar, 0, len(r.miss))
	for i := len(r.miss) - 1; i >= 0; i-- {
		out = append(out, r.miss[(r.missNext+i)%len(r.miss)])
	}
	return out
}
