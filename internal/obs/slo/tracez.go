package slo

import (
	"encoding/json"
	"io"
	"net/http"
	"time"

	"press/internal/obs"
)

// ExemplarJSON is one retained loop in the /tracez document: an
// Exemplar plus derived display fields.
type ExemplarJSON struct {
	*Exemplar
	TraceID   string  `json:"trace_id"`
	LatencyMs float64 `json:"latency_ms"`
	SlackMs   float64 `json:"slack_ms,omitempty"`
}

func exemplarJSON(ex *Exemplar) ExemplarJSON {
	j := ExemplarJSON{
		Exemplar:  ex,
		TraceID:   obs.FormatTraceID(ex.TraceID),
		LatencyMs: float64(ex.LatencyNs) / 1e6,
	}
	if ex.DeadlineNs > 0 {
		j.SlackMs = float64(ex.DeadlineNs-ex.LatencyNs) / 1e6
	}
	return j
}

// Report is the /tracez JSON document: loop/miss totals plus the
// tail-sampled exemplar span trees.
type Report struct {
	UnixMs        int64          `json:"unix_ms"`
	DeadlineMs    float64        `json:"deadline_ms,omitempty"`
	Loops         uint64         `json:"loops"`
	Misses        uint64         `json:"misses"`
	MissRatio     float64        `json:"miss_ratio"`
	Slowest       []ExemplarJSON `json:"slowest"`
	MissExemplars []ExemplarJSON `json:"miss_exemplars"`
}

// Snapshot freezes the tracer into a Report. Safe on a nil tracer.
func (t *Tracer) Snapshot() Report {
	rep := Report{
		UnixMs:        time.Now().UnixMilli(),
		Slowest:       []ExemplarJSON{},
		MissExemplars: []ExemplarJSON{},
	}
	if t == nil {
		return rep
	}
	rep.DeadlineMs = float64(t.deadlineNs.Load()) / 1e6
	rep.Loops = t.loops.Load()
	rep.Misses = t.misses.Load()
	if rep.Loops > 0 {
		rep.MissRatio = float64(rep.Misses) / float64(rep.Loops)
	}
	for _, ex := range t.res.slowest() {
		rep.Slowest = append(rep.Slowest, exemplarJSON(ex))
	}
	for _, ex := range t.res.misses() {
		rep.MissExemplars = append(rep.MissExemplars, exemplarJSON(ex))
	}
	return rep
}

// ServeTracez handles one /tracez request: the JSON Report by default,
// or the retained span trees as a Chrome trace-event file with
// ?format=chrome (load into chrome://tracing or Perfetto). Safe on a
// nil tracer (serves an empty report).
func (t *Tracer) ServeTracez(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "chrome" {
		tl := t.chromeTrace()
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Header().Set("Cache-Control", "no-store")
		_ = tl.WriteJSON(w)
		return
	}
	obs.ServeJSON(w, r, func(w io.Writer) error {
		return json.NewEncoder(w).Encode(t.Snapshot())
	})
}

// chromeTrace rebuilds the retained exemplars into a TraceLog, reusing
// its Chrome trace-event exporter. Misses come first so the worst loops
// lead the timeline file.
func (t *Tracer) chromeTrace() *obs.TraceLog {
	var exs []*Exemplar
	if t != nil {
		exs = append(t.res.misses(), t.res.slowest()...)
	}
	n := 0
	for _, ex := range exs {
		n += len(ex.Spans)
	}
	tl := obs.NewTraceLogCap(n + 1)
	seen := make(map[uint64]bool, len(exs))
	for _, ex := range exs {
		if seen[ex.TraceID] { // slowest may repeat a missed loop
			continue
		}
		seen[ex.TraceID] = true
		for _, sp := range ex.Spans {
			tl.Record("loop/"+ex.Name, sp.Name, ex.TraceID,
				time.Unix(0, sp.StartUnixNs), time.Duration(sp.DurNs), nil)
		}
	}
	return tl
}

// RegisterRoutes installs the process-wide /tracez endpoint.
func RegisterRoutes(srv *obs.Server, t *Tracer) {
	if srv == nil {
		return
	}
	srv.HandleFunc("/tracez", t.ServeTracez)
}
