package slo

import (
	"flag"
	"fmt"
	"io"
	"time"

	"press/internal/obs/prof"
)

// CLI extends prof.CLI with the control-loop deadline tracer: per-loop
// span trees scored against a coherence deadline (-loop-deadline), the
// tail-sampled /tracez endpoint, and KindLoop flight frames. Drop-in
// replacement for prof.CLI:
//
//	var tele slo.CLI
//	tele.Register(fs)
//	// after fs.Parse:
//	if err := tele.Start(os.Stderr); err != nil { ... }
//	defer tele.Finish(os.Stdout)
//
// The tracer is handed to the loop driver by the caller (via
// tele.Tracer()); a nil tracer keeps every hook a single pointer check.
type CLI struct {
	prof.CLI

	// LoopTrace enables the loop tracer explicitly (it is implied by
	// -flight-dir or -telemetry-addr, which give loop traces somewhere
	// to go).
	LoopTrace bool
	// LoopDeadline is the coherence deadline each iteration is scored
	// against. Zero means no deadline: loops are timed but never counted
	// as misses. Derive a physical value with `pressctl budget`.
	LoopDeadline time.Duration

	tracer *Tracer
}

// Register installs the prof telemetry flags plus the slo flags.
func (c *CLI) Register(fs *flag.FlagSet) {
	c.CLI.Register(fs)
	fs.BoolVar(&c.LoopTrace, "loop-trace", false,
		"trace control-loop iterations (span trees, deadline scoring, /tracez); implied by -flight-dir or -telemetry-addr")
	fs.DurationVar(&c.LoopDeadline, "loop-deadline", 0,
		"coherence deadline each control-loop iteration is scored against (0 = none; see `pressctl budget`)")
}

// Start brings up the prof/perf/flight/health/obs stack, then the loop
// tracer and its /tracez route.
func (c *CLI) Start(logw io.Writer) error {
	if c.LoopDeadline < 0 {
		return fmt.Errorf("slo: negative -loop-deadline %v", c.LoopDeadline)
	}
	if err := c.CLI.Start(logw); err != nil {
		return err
	}
	if c.LoopTrace || c.Flight() != nil || c.Server() != nil {
		c.tracer = NewTracer(c.Registry(), Config{
			Deadline: c.LoopDeadline,
			Flight:   c.Flight(),
			Health:   c.Health(),
		})
		RegisterRoutes(c.Server(), c.tracer)
	}
	return nil
}

// Tracer returns the loop tracer, nil when tracing is off — callers
// hand it to the loop driver unconditionally.
func (c *CLI) Tracer() *Tracer { return c.tracer }

// Finish freezes the loop tracer's reservoir, then tears down the
// telemetry stack.
func (c *CLI) Finish(stdout io.Writer) error {
	c.tracer.Stop()
	err := c.CLI.Finish(stdout)
	c.tracer = nil
	return err
}
