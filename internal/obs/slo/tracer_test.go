package slo

import (
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"press/internal/obs"
	"press/internal/obs/flight"
	"press/internal/obs/health"
)

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.SetDeadline(time.Second)
	if tr.Deadline() != 0 {
		t.Error("nil tracer has a deadline")
	}
	l := tr.StartLoop("loop")
	if l != nil || tr.Current() != nil {
		t.Fatal("nil tracer handed out a loop")
	}
	// Every method on the nil loop/span chain must no-op.
	sp := l.Phase("sense")
	sp.Child("x").End()
	sp.End()
	l.Child("y").End()
	if l.Trace() != 0 || l.Seq() != 0 || l.Deadline() != 0 {
		t.Error("nil loop leaks identity")
	}
	if st := l.End(); st != (Stats{}) {
		t.Errorf("nil loop End = %+v", st)
	}
	rep := tr.Snapshot()
	if rep.Loops != 0 || len(rep.Slowest) != 0 {
		t.Errorf("nil tracer snapshot = %+v", rep)
	}
	w := httptest.NewRecorder()
	tr.ServeTracez(w, httptest.NewRequest("GET", "/tracez", nil))
	if w.Code != 200 {
		t.Errorf("nil tracer /tracez status %d", w.Code)
	}
}

func TestLoopSpanTree(t *testing.T) {
	tr := NewTracer(obs.NewRegistry(), Config{Deadline: time.Minute})
	l := tr.StartLoop("iteration")
	if tr.Current() != l {
		t.Fatal("StartLoop did not become Current")
	}
	if l.Trace() == 0 || l.Seq() != 1 || l.Deadline() != time.Minute {
		t.Fatalf("loop identity: trace=%#x seq=%d deadline=%v", l.Trace(), l.Seq(), l.Deadline())
	}

	sense := l.Phase("sense")
	l.Child("measure").End() // attaches under the open sense phase
	sense.End()
	l.Child("orphan").End() // no open phase: attaches to the root
	act := l.Phase("actuate")
	ack := act.Child("ack") // explicit span parenting
	ack.End()
	act.End()

	st := l.End()
	if st.Missed || st.Latency <= 0 || st.Slack <= 0 {
		t.Errorf("fast loop misjudged: %+v", st)
	}
	if tr.Current() != nil {
		t.Error("ended loop still Current")
	}

	byName := map[string]SpanNode{}
	for _, sp := range l.spans {
		byName[sp.Name] = sp
	}
	wantParent := map[string]string{
		"sense": "iteration", "measure": "sense", "orphan": "iteration",
		"actuate": "iteration", "ack": "actuate",
	}
	for child, parent := range wantParent {
		c, ok := byName[child]
		if !ok {
			t.Fatalf("span %q missing from tree", child)
		}
		if byName[parent].ID != c.Parent {
			t.Errorf("span %q parent = #%d, want %q (#%d)", child, c.Parent, parent, byName[parent].ID)
		}
	}
	if byName["iteration"].ID != rootSpanID || byName["iteration"].Parent != 0 {
		t.Errorf("root span malformed: %+v", byName["iteration"])
	}
	if byName["iteration"].DurNs != int64(st.Latency) {
		t.Error("root span duration != loop latency")
	}
}

func TestLoopSpanCap(t *testing.T) {
	reg := obs.NewRegistry()
	tr := NewTracer(reg, Config{MaxSpans: 4})
	l := tr.StartLoop("loop")
	for i := 0; i < 10; i++ {
		l.Child("c").End()
	}
	l.End()
	if n := len(l.spans); n != 4 {
		t.Errorf("span tree has %d nodes, cap 4", n)
	}
	if v := reg.Counter("slo_spans_dropped_total").Value(); v != 7 {
		t.Errorf("slo_spans_dropped_total = %d, want 7", v)
	}
}

func TestLoopEndFansOut(t *testing.T) {
	reg := obs.NewRegistry()
	mon := health.NewMonitor(nil, nil, time.Hour, 8)
	dir := filepath.Join(t.TempDir(), "run-1")
	rec, err := flight.Open(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer(reg, Config{Deadline: time.Nanosecond, Flight: rec, Health: mon})

	l := tr.StartLoop("slow")
	l.Phase("search").End()
	time.Sleep(time.Millisecond)
	st := l.End()
	if !st.Missed {
		t.Fatalf("1ns deadline not missed: %+v", st)
	}

	if v := reg.Counter("slo_loops_total").Value(); v != 1 {
		t.Errorf("slo_loops_total = %d", v)
	}
	if v := reg.Counter("slo_deadline_miss_total").Value(); v != 1 {
		t.Errorf("slo_deadline_miss_total = %d", v)
	}
	// The latency histogram carries the loop's trace as an exemplar.
	_, trace, ok := reg.Histogram("slo_loop_latency_seconds", obs.LatencyBuckets).Exemplar()
	if !ok || trace != l.Trace() {
		t.Errorf("latency exemplar trace = %#x ok=%v, want %#x", trace, ok, l.Trace())
	}

	// Health: the loop KPIs appear on the next sample.
	mon.Sample()
	if pts := mon.Snapshot().Series[health.KPILoopMissRatio]; len(pts) != 1 || pts[0].Value != 1 {
		t.Errorf("loop_miss_ratio series = %+v", pts)
	}

	// Flight: the run decodes with one KindLoop frame.
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	run, err := flight.ReadRun(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Loops) != 1 {
		t.Fatalf("decoded %d loop records", len(run.Loops))
	}
	lr := run.Loops[0]
	if lr.TraceID != l.Trace() || !lr.Missed || lr.Name != "slow" || lr.Seq != 1 {
		t.Errorf("loop record = %+v", lr)
	}
	if len(lr.Phases) != 1 || lr.Phases[0].Name != "search" {
		t.Errorf("loop record phases = %+v", lr.Phases)
	}
}

func TestReservoirTailSampling(t *testing.T) {
	var r reservoir
	r.init(2, 2)
	mk := func(lat int64, missed bool) *Exemplar {
		return &Exemplar{LatencyNs: lat, Missed: missed, TraceID: uint64(lat)}
	}
	r.offer(mk(10, false))
	r.offer(mk(50, false))
	r.offer(mk(30, false)) // slower than nothing retained? no: 10 evicted
	r.offer(mk(5, false))  // too fast, dropped
	slow := r.slowest()
	if len(slow) != 2 || slow[0].LatencyNs != 50 || slow[1].LatencyNs != 30 {
		t.Errorf("slowest = %v, want [50 30]", []int64{slow[0].LatencyNs, slow[1].LatencyNs})
	}
	r.offer(mk(100, true))
	r.offer(mk(101, true))
	r.offer(mk(102, true)) // ring wraps: 100 evicted
	miss := r.misses()
	if len(miss) != 2 || miss[0].LatencyNs != 102 || miss[1].LatencyNs != 101 {
		t.Errorf("misses = %+v, want [102 101]", miss)
	}
}

// TestTracerStopFreezesReservoir: after Stop, ending loops still score
// (counters, health) but no longer replace retained exemplars, so a
// /tracez reader during teardown sees a quiescent set.
func TestTracerStopFreezesReservoir(t *testing.T) {
	reg := obs.NewRegistry()
	tr := NewTracer(reg, Config{Deadline: time.Nanosecond})
	l := tr.StartLoop("before")
	time.Sleep(50 * time.Microsecond)
	l.End()
	tr.Stop()
	l = tr.StartLoop("after")
	time.Sleep(50 * time.Microsecond)
	l.End()

	rep := tr.Snapshot()
	if rep.Loops != 2 {
		t.Errorf("Loops = %d, want 2 (scoring continues past Stop)", rep.Loops)
	}
	for _, ex := range append(rep.Slowest, rep.MissExemplars...) {
		if ex.Name == "after" {
			t.Errorf("reservoir accepted exemplar %q after Stop", ex.Name)
		}
	}
	tr.Stop() // idempotent
}

func TestTracezReport(t *testing.T) {
	tr := NewTracer(nil, Config{Deadline: time.Nanosecond})
	l := tr.StartLoop("loop")
	l.Phase("sense").End()
	time.Sleep(100 * time.Microsecond)
	l.End()

	rep := tr.Snapshot()
	if rep.Loops != 1 || rep.Misses != 1 || rep.MissRatio != 1 {
		t.Fatalf("report totals: %+v", rep)
	}
	if len(rep.MissExemplars) != 1 || len(rep.Slowest) != 1 {
		t.Fatalf("report exemplars: %+v", rep)
	}
	ex := rep.MissExemplars[0]
	if ex.TraceID != obs.FormatTraceID(l.Trace()) {
		t.Errorf("exemplar trace = %q", ex.TraceID)
	}
	if len(ex.Spans) != 2 {
		t.Errorf("exemplar spans = %+v", ex.Spans)
	}

	// The JSON endpoint round-trips, and the chrome export is a valid
	// trace-event document containing the phase span.
	w := httptest.NewRecorder()
	tr.ServeTracez(w, httptest.NewRequest("GET", "/tracez", nil))
	var decoded Report
	if err := json.Unmarshal(w.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("/tracez JSON: %v\n%s", err, w.Body.String())
	}
	if decoded.Misses != 1 || len(decoded.MissExemplars) != 1 {
		t.Errorf("decoded report: %+v", decoded)
	}

	w = httptest.NewRecorder()
	tr.ServeTracez(w, httptest.NewRequest("GET", "/tracez?format=chrome", nil))
	body := w.Body.String()
	if !strings.Contains(body, `"ph":"X"`) || !strings.Contains(body, `"sense"`) {
		t.Errorf("chrome export missing spans: %s", body)
	}
}

func TestTracerSetDeadline(t *testing.T) {
	tr := NewTracer(nil, Config{})
	if tr.Deadline() != 0 {
		t.Fatal("unset deadline non-zero")
	}
	// No deadline: loops are timed but never missed.
	l := tr.StartLoop("free")
	if st := l.End(); st.Missed || st.Slack != 0 {
		t.Errorf("deadline-free loop: %+v", st)
	}
	tr.SetDeadline(8 * time.Millisecond)
	if tr.Deadline() != 8*time.Millisecond {
		t.Fatal("SetDeadline lost")
	}
	if l := tr.StartLoop("bounded"); l.Deadline() != 8*time.Millisecond {
		t.Errorf("loop deadline = %v", l.Deadline())
	}
}

// BenchmarkNilTracerLoop is the disabled-path cost the repository's
// telemetry convention promises: pointer checks only, 0 allocs/op
// (gate-enforced via BENCH_slo.json).
func BenchmarkNilTracerLoop(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l := tr.StartLoop("loop")
		ph := l.Phase("sense")
		l.Child("measure").End()
		ph.End()
		l.End()
		if tr.Current() != nil {
			b.Fatal("nil tracer current")
		}
	}
}

// BenchmarkTracerLoop is the enabled-path reference cost.
func BenchmarkTracerLoop(b *testing.B) {
	tr := NewTracer(obs.NewRegistry(), Config{Deadline: time.Second})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l := tr.StartLoop("loop")
		ph := l.Phase("sense")
		l.Child("measure").End()
		ph.End()
		l.End()
	}
}
