package slo

import (
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"testing"
	"time"
)

func startCLI(t *testing.T, args ...string) *CLI {
	t.Helper()
	var c CLI
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	c.Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(io.Discard); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Finish(io.Discard) })
	return &c
}

func TestCLIDisabledByDefault(t *testing.T) {
	c := startCLI(t)
	if c.Tracer() != nil {
		t.Error("tracer on without any telemetry flag")
	}
}

func TestCLILoopTraceFlag(t *testing.T) {
	c := startCLI(t, "-loop-trace", "-loop-deadline", "8ms")
	tr := c.Tracer()
	if tr == nil {
		t.Fatal("-loop-trace did not create a tracer")
	}
	if tr.Deadline() != 8*time.Millisecond {
		t.Errorf("deadline = %v", tr.Deadline())
	}
}

func TestCLIImpliedByFlightDir(t *testing.T) {
	c := startCLI(t, "-flight-dir", t.TempDir())
	if c.Tracer() == nil {
		t.Error("flight recording did not imply loop tracing")
	}
}

func TestCLINegativeDeadlineRejected(t *testing.T) {
	var c CLI
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	c.Register(fs)
	if err := fs.Parse([]string{"-loop-deadline", "-1s"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(io.Discard); err == nil {
		_ = c.Finish(io.Discard)
		t.Fatal("negative -loop-deadline accepted")
	}
}

func TestCLITracezRoute(t *testing.T) {
	c := startCLI(t, "-telemetry-addr", "127.0.0.1:0", "-loop-deadline", "1ns")
	l := c.Tracer().StartLoop("served")
	time.Sleep(time.Millisecond)
	l.End()

	resp, err := http.Get("http://" + c.ServerAddr() + "/tracez")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Loops != 1 || rep.Misses != 1 || len(rep.MissExemplars) != 1 {
		t.Errorf("/tracez report: %+v", rep)
	}
}
