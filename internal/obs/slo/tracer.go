// Package slo traces control-loop iterations against their coherence
// deadline. Each iteration becomes a span tree — sense, search,
// per-measurement, actuate, ack — keyed by the control plane's 8-byte
// trace ID, stamped with the deadline the channel physics allows
// (CoherenceBudget at the scenario's endpoint speed), and scored as hit
// or miss. The tracer feeds four sinks: latency/slack histograms and
// miss counters in the registry (with exemplar trace IDs), KindLoop
// flight-recorder frames for replay comparison, the health monitor's
// loop_* KPIs behind the burn-rate alert, and a bounded tail-sampling
// reservoir serving exemplar span trees at /tracez.
//
// A nil *Tracer (and the nil *Loop and *Span it hands out) disables
// everything at the cost of a pointer check — the package-wide
// convention — so producers hold one unconditionally.
package slo

import (
	"sync"
	"sync/atomic"
	"time"

	"press/internal/obs"
	"press/internal/obs/flight"
	"press/internal/obs/health"
)

// Defaults for Config's tuning knobs.
const (
	// DefaultMaxSpans caps one loop's span tree; further spans are
	// counted as dropped rather than grown without bound.
	DefaultMaxSpans = 256
	// DefaultSlowN is the slowest-loop reservoir size.
	DefaultSlowN = 16
	// DefaultMissN is the deadline-miss exemplar ring size.
	DefaultMissN = 64
)

// SlackBuckets spans the slack histogram: negative buckets resolve how
// badly deadlines are missed, positive ones how much margin remains.
var SlackBuckets = []float64{
	-1, -0.25, -0.1, -0.025, -0.01, -0.0025, -0.001,
	0, 0.001, 0.0025, 0.01, 0.025, 0.1, 0.25, 1,
}

// Config tunes a Tracer.
type Config struct {
	// Deadline is the per-iteration coherence deadline (0 = none).
	// Derive it from the channel physics with press.CoherenceBudgetAtSpeed
	// or press.CoherenceTimeAtSpeed; adjustable later via SetDeadline.
	Deadline time.Duration
	// Flight, when set, persists every ended loop as a KindLoop frame,
	// so pressctl replay/rundiff can compare loop latency across runs.
	Flight *flight.Recorder
	// Health, when set, receives every ended loop as an ObserveLoop
	// observation — the feed behind the loop_* KPIs and the burn-rate
	// alert rule.
	Health *health.Monitor
	// MaxSpans, SlowN, MissN bound the span tree and the reservoir;
	// non-positive values take the defaults.
	MaxSpans int
	SlowN    int
	MissN    int
}

// Tracer assembles per-iteration span trees and scores them against the
// coherence deadline. Methods are safe for concurrent use; the expected
// shape is one loop at a time per tracer (one tracer per session scope).
type Tracer struct {
	reg      *obs.Registry
	rec      *flight.Recorder
	mon      *health.Monitor
	maxSpans int

	deadlineNs atomic.Int64
	seq        atomic.Uint64
	loops      atomic.Uint64
	misses     atomic.Uint64
	cur        atomic.Pointer[Loop]

	res reservoir

	// life is the shared obs.Lifecycle: the tracer collects from
	// construction, and Stop freezes the tail-sampling reservoir so a
	// teardown path (scope.Scope.Close, slo.CLI.Finish) can quiesce it
	// with the same idempotent contract every other obs component has.
	// Metrics and flight frames keep flowing after Stop — they belong
	// to the registry/recorder lifecycles, not the reservoir's.
	life obs.Lifecycle

	phaseMu    sync.Mutex
	phaseHists map[string]*obs.Histogram
}

// NewTracer builds a tracer recording into reg (nil disables the metric
// mirror but not the tracer) and the sinks in cfg.
func NewTracer(reg *obs.Registry, cfg Config) *Tracer {
	t := &Tracer{
		reg:        reg,
		rec:        cfg.Flight,
		mon:        cfg.Health,
		maxSpans:   cfg.MaxSpans,
		phaseHists: make(map[string]*obs.Histogram, 8),
	}
	if t.maxSpans <= 0 {
		t.maxSpans = DefaultMaxSpans
	}
	t.deadlineNs.Store(int64(cfg.Deadline))
	t.res.init(cfg.SlowN, cfg.MissN)
	t.life.Start(nil, nil) // sampling from birth; Stop freezes the reservoir
	return t
}

// Stop freezes the tail-sampling reservoir: loops ending afterwards
// still score against the registry, flight log, and health monitor, but
// no longer replace retained exemplars, so /tracez readers during
// teardown see a quiescent set. Idempotent; safe on a nil tracer.
func (t *Tracer) Stop() {
	if t == nil {
		return
	}
	t.life.Stop()
}

// SetDeadline changes the per-iteration coherence deadline (0 = none).
// Safe on a nil tracer.
func (t *Tracer) SetDeadline(d time.Duration) {
	if t == nil {
		return
	}
	t.deadlineNs.Store(int64(d))
}

// Deadline returns the current per-iteration deadline; 0 on a nil
// tracer or when none is set.
func (t *Tracer) Deadline() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.deadlineNs.Load())
}

// StartLoop opens a new loop iteration named name (the root span),
// assigns it a fresh control-plane trace ID, and makes it Current. A
// nil tracer returns a nil loop, on which every method no-ops.
func (t *Tracer) StartLoop(name string) *Loop {
	if t == nil {
		return nil
	}
	now := time.Now()
	l := &Loop{
		t:        t,
		trace:    obs.NewTraceID(),
		seq:      t.seq.Add(1),
		deadline: t.Deadline(),
		start:    now,
		spans:    make([]SpanNode, 1, 16),
		nextID:   2,
	}
	l.spans[0] = SpanNode{ID: rootSpanID, Name: name, StartUnixNs: now.UnixNano()}
	t.cur.Store(l)
	return l
}

// Current returns the loop in flight, so layers below the loop driver
// (searchers, the control plane) can attach child spans without
// threading the loop through every signature. Nil when no loop is open
// or on a nil tracer.
func (t *Tracer) Current() *Loop {
	if t == nil {
		return nil
	}
	return t.cur.Load()
}

// rootSpanID is the span ID of every loop's root.
const rootSpanID = 1

// SpanNode is one node of a loop's span tree. Parent is the parent
// span's ID; the root (ID 1) has Parent 0.
type SpanNode struct {
	ID          uint32 `json:"id"`
	Parent      uint32 `json:"parent"`
	Name        string `json:"name"`
	StartUnixNs int64  `json:"start_unix_ns"`
	DurNs       int64  `json:"dur_ns"`
}

// Loop is one control-loop iteration under construction. Phase and
// Child attach spans; End scores the iteration. Safe for concurrent
// span attachment; nil-safe throughout.
type Loop struct {
	t        *Tracer
	trace    uint64
	seq      uint64
	deadline time.Duration
	start    time.Time

	mu       sync.Mutex
	spans    []SpanNode
	nextID   uint32
	curPhase uint32 // open top-level phase (0 = none)
	dropped  int
	ended    bool
}

// Trace returns the loop's control-plane trace ID; 0 on nil.
func (l *Loop) Trace() uint64 {
	if l == nil {
		return 0
	}
	return l.trace
}

// Seq returns the loop's iteration number (1-based); 0 on nil.
func (l *Loop) Seq() uint64 {
	if l == nil {
		return 0
	}
	return l.seq
}

// Deadline returns the coherence deadline this iteration runs against.
func (l *Loop) Deadline() time.Duration {
	if l == nil {
		return 0
	}
	return l.deadline
}

// addSpan appends a node under parent, honoring the span cap.
func (l *Loop) addSpan(parent uint32, name string) *Span {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.ended || len(l.spans) >= l.t.maxSpans {
		if !l.ended {
			l.dropped++
		}
		return nil
	}
	id := l.nextID
	l.nextID++
	l.spans = append(l.spans, SpanNode{
		ID: id, Parent: parent, Name: name, StartUnixNs: time.Now().UnixNano(),
	})
	return &Span{l: l, id: id, start: time.Now()}
}

// Phase opens a top-level phase span (sense, search, actuate, ...):
// a child of the root that subsequent Child calls attach under, until
// it ends or the next Phase begins.
func (l *Loop) Phase(name string) *Span {
	if l == nil {
		return nil
	}
	sp := l.addSpan(rootSpanID, name)
	if sp != nil {
		l.mu.Lock()
		l.curPhase = sp.id
		l.mu.Unlock()
	}
	return sp
}

// Child opens a span under the currently open phase — or under the root
// when no phase is open. The per-measurement spans searchers attach use
// this form.
func (l *Loop) Child(name string) *Span {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	parent := l.curPhase
	l.mu.Unlock()
	if parent == 0 {
		parent = rootSpanID
	}
	return l.addSpan(parent, name)
}

// Span is an open span handle. End closes it; Child nests under it.
// Nil-safe.
type Span struct {
	l     *Loop
	id    uint32
	start time.Time
}

// Child opens a span explicitly parented under s (the ack span under
// the actuate span, say), independent of the loop's open phase.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.l.addSpan(s.id, name)
}

// End closes the span, fixing its duration. If it was the open phase,
// later Child calls fall back to the root.
func (s *Span) End() {
	if s == nil {
		return
	}
	dur := time.Since(s.start)
	s.l.mu.Lock()
	for i := range s.l.spans {
		if s.l.spans[i].ID == s.id {
			s.l.spans[i].DurNs = int64(dur)
			break
		}
	}
	if s.l.curPhase == s.id {
		s.l.curPhase = 0
	}
	s.l.mu.Unlock()
}

// Stats is End's verdict on one iteration.
type Stats struct {
	Latency  time.Duration
	Deadline time.Duration
	Slack    time.Duration // Deadline − Latency; 0 when no deadline
	Missed   bool
}

// End closes the iteration: fixes the root span, scores latency against
// the deadline, and fans the result out to the registry, the flight
// recorder, the health monitor, and the /tracez reservoir. Idempotent;
// a nil loop returns zero Stats.
func (l *Loop) End() Stats {
	if l == nil {
		return Stats{}
	}
	latency := time.Since(l.start)

	l.mu.Lock()
	if l.ended {
		l.mu.Unlock()
		return Stats{Latency: latency, Deadline: l.deadline}
	}
	l.ended = true
	l.spans[0].DurNs = int64(latency)
	spans := l.spans
	dropped := l.dropped
	l.mu.Unlock()

	st := Stats{Latency: latency, Deadline: l.deadline}
	if l.deadline > 0 {
		st.Slack = l.deadline - latency
		st.Missed = st.Slack < 0
	}

	t := l.t
	t.cur.CompareAndSwap(l, nil)
	t.loops.Add(1)
	if st.Missed {
		t.misses.Add(1)
	}

	if t.reg != nil {
		t.reg.Counter("slo_loops_total").Inc()
		if st.Missed {
			t.reg.Counter("slo_deadline_miss_total").Inc()
		}
		if dropped > 0 {
			t.reg.Counter("slo_spans_dropped_total").Add(int64(dropped))
		}
		t.reg.Histogram("slo_loop_latency_seconds", obs.LatencyBuckets).
			ObserveExemplar(latency.Seconds(), l.trace)
		if l.deadline > 0 {
			t.reg.Histogram("slo_loop_slack_seconds", SlackBuckets).
				ObserveExemplar(st.Slack.Seconds(), l.trace)
		}
	}

	phases := phaseTotals(spans)
	if t.reg != nil {
		for _, p := range phases {
			t.phaseHist(p.Name).ObserveExemplar(float64(p.Value)/1e9, l.trace)
		}
	}

	t.rec.RecordLoop(flight.LoopRecord{
		UnixNs:     l.start.UnixNano(),
		TraceID:    l.trace,
		Seq:        l.seq,
		Name:       spans[0].Name,
		DeadlineNs: int64(l.deadline),
		LatencyNs:  int64(latency),
		Missed:     st.Missed,
		Phases:     phases,
	})
	t.mon.ObserveLoop(latency, l.deadline, st.Missed, l.trace)

	if t.life.Stopped() {
		return st
	}
	t.res.offer(&Exemplar{
		Name:         spans[0].Name,
		TraceID:      l.trace,
		Seq:          l.seq,
		StartUnixNs:  l.start.UnixNano(),
		LatencyNs:    int64(latency),
		DeadlineNs:   int64(l.deadline),
		Missed:       st.Missed,
		DroppedSpans: dropped,
		Spans:        spans,
	})
	return st
}

// phaseHist returns (lazily creating) the per-phase latency histogram.
func (t *Tracer) phaseHist(phase string) *obs.Histogram {
	t.phaseMu.Lock()
	defer t.phaseMu.Unlock()
	h, ok := t.phaseHists[phase]
	if !ok {
		h = t.reg.Histogram("slo_phase_"+phase+"_seconds", obs.LatencyBuckets)
		t.phaseHists[phase] = h
	}
	return h
}

// phaseTotals sums top-level phase durations by name, in first-
// appearance order — the loop's critical-path breakdown.
func phaseTotals(spans []SpanNode) []flight.AuxCount {
	var out []flight.AuxCount
	for _, sp := range spans {
		if sp.Parent != rootSpanID {
			continue
		}
		found := false
		for i := range out {
			if out[i].Name == sp.Name {
				out[i].Value += sp.DurNs
				found = true
				break
			}
		}
		if !found {
			out = append(out, flight.AuxCount{Name: sp.Name, Value: sp.DurNs})
		}
	}
	return out
}
