package control

import (
	"fmt"
	"math"

	"press/internal/element"
	"press/internal/inverse"
)

// ModelGuided is a searcher that exploits a propagation model when one is
// available — §4.2's pruning idea taken to its limit: instead of blindly
// probing the M^N space over the air, solve the inverse problem offline
// (free: no measurements), start from that configuration, and spend the
// scarce measurement budget on local refinement around it. When the model
// is wrong the refinement still converges to a local optimum; when it is
// right, one measurement can suffice.
type ModelGuided struct {
	// Problem carries the model (environment, endpoints, array, grid).
	Problem *inverse.Problem
	// Target builds the desired channel from the model's baseline; nil
	// means "flatten at the baseline's RMS amplitude".
	Target func(baseline []complex128) []complex128
	// RefinePasses bounds the per-element measured refinement
	// (default 2).
	RefinePasses int
}

// Name implements Searcher.
func (ModelGuided) Name() string { return "model-guided" }

// Search implements Searcher. The inverse solve costs zero measurements;
// only the warm start's evaluation and the refinement touch eval.
func (m ModelGuided) Search(arr *element.Array, eval EvalFunc, budget int) (*Result, error) {
	if m.Problem == nil {
		return nil, fmt.Errorf("control: ModelGuided needs a Problem")
	}
	if m.Problem.Array != arr {
		return nil, fmt.Errorf("control: ModelGuided problem array differs from the searched array")
	}
	baseline := m.Problem.Baseline()
	target := m.targetFor(baseline)
	sol, err := inverse.Solve(m.Problem, target)
	if err != nil {
		return nil, fmt.Errorf("control: inverse solve: %w", err)
	}

	t := newTracker(eval, budget)
	score, err := t.measure(sol.Config)
	if err != nil {
		return finishOrFail(t, err)
	}

	passes := m.RefinePasses
	if passes < 1 {
		passes = 2
	}
	current := sol.Config.Clone()
	for pass := 0; pass < passes && !t.done(); pass++ {
		changed := false
		for i := 0; i < arr.N() && !t.done(); i++ {
			bestState, bestScore := current[i], score
			for si := 0; si < arr.Elements[i].NumStates() && !t.done(); si++ {
				if si == current[i] {
					continue
				}
				cand := current.Clone()
				cand[i] = si
				s, err := t.measure(cand)
				if err != nil {
					return finishOrFail(t, err)
				}
				if s > bestScore {
					bestState, bestScore = si, s
				}
			}
			if bestState != current[i] {
				current[i], score = bestState, bestScore
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return t.result(t.done())
}

// targetFor resolves the target channel.
func (m ModelGuided) targetFor(baseline []complex128) []complex128 {
	if m.Target != nil {
		return m.Target(baseline)
	}
	// Default: flatten at the RMS amplitude — the link-enhancement shape.
	var ss float64
	for _, h := range baseline {
		ss += real(h)*real(h) + imag(h)*imag(h)
	}
	rms := 0.0
	if len(baseline) > 0 {
		rms = math.Sqrt(ss / float64(len(baseline)))
	}
	return inverse.TargetFlat(baseline, rms)
}
