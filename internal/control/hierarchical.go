package control

import (
	"fmt"
	"math/rand/v2"

	"press/internal/element"
)

// Hierarchical implements the §4.1 multi-tier control idea ("we might
// divide the elements into groups ... analogous to how Hekaton groups
// antennas"): a coarse stage sets every element within a group to the
// same state (searching M^G instead of M^N), then a refinement stage
// runs per-element coordinate descent from the coarse winner. For large
// dense arrays this collapses the exponential search while keeping most
// of the gain — the coarse stage captures the group-level phase
// alignment, refinement recovers the per-element residue.
type Hierarchical struct {
	// Rng is used when groups disagree on state counts; required.
	Rng *rand.Rand
	// Groups partitions element indices; every element must appear in
	// exactly one group. Nil means contiguous groups of GroupSize.
	Groups [][]int
	// GroupSize is the default partition width (default 4).
	GroupSize int
	// RefinePasses bounds the per-element refinement (default 2 passes).
	RefinePasses int
}

// Name implements Searcher.
func (Hierarchical) Name() string { return "hierarchical" }

// groups resolves the partition for an array.
func (h Hierarchical) groups(n int) ([][]int, error) {
	if h.Groups != nil {
		seen := make([]bool, n)
		for gi, g := range h.Groups {
			if len(g) == 0 {
				return nil, fmt.Errorf("control: empty group %d", gi)
			}
			for _, e := range g {
				if e < 0 || e >= n {
					return nil, fmt.Errorf("control: group %d references element %d of %d", gi, e, n)
				}
				if seen[e] {
					return nil, fmt.Errorf("control: element %d in multiple groups", e)
				}
				seen[e] = true
			}
		}
		for e, ok := range seen {
			if !ok {
				return nil, fmt.Errorf("control: element %d in no group", e)
			}
		}
		return h.Groups, nil
	}
	size := h.GroupSize
	if size < 1 {
		size = 4
	}
	var out [][]int
	for start := 0; start < n; start += size {
		end := start + size
		if end > n {
			end = n
		}
		g := make([]int, 0, end-start)
		for e := start; e < end; e++ {
			g = append(g, e)
		}
		out = append(out, g)
	}
	return out, nil
}

// Search implements Searcher.
func (h Hierarchical) Search(arr *element.Array, eval EvalFunc, budget int) (*Result, error) {
	if h.Rng == nil {
		return nil, fmt.Errorf("control: Hierarchical needs an Rng")
	}
	groups, err := h.groups(arr.N())
	if err != nil {
		return nil, err
	}
	t := newTracker(eval, budget)

	// minStates per group: a group state must be valid for all members.
	minStates := make([]int, len(groups))
	for gi, g := range groups {
		m := arr.Elements[g[0]].NumStates()
		for _, e := range g[1:] {
			if s := arr.Elements[e].NumStates(); s < m {
				m = s
			}
		}
		minStates[gi] = m
	}

	// Coarse stage: coordinate descent over group states, all members of
	// a group sharing one state.
	cfg := make(element.Config, arr.N())
	groupState := make([]int, len(groups))
	apply := func() {
		for gi, g := range groups {
			for _, e := range g {
				cfg[e] = groupState[gi]
			}
		}
	}
	apply()
	score, err := t.measure(cfg)
	if err != nil {
		return finishOrFail(t, err)
	}
	improved := true
	for improved && !t.done() {
		improved = false
		for gi := range groups {
			bestState, bestScore := groupState[gi], score
			for si := 0; si < minStates[gi] && !t.done(); si++ {
				if si == groupState[gi] {
					continue
				}
				old := groupState[gi]
				groupState[gi] = si
				apply()
				s, err := t.measure(cfg)
				if err != nil {
					return finishOrFail(t, err)
				}
				if s > bestScore {
					bestState, bestScore = si, s
				}
				groupState[gi] = old
			}
			if bestState != groupState[gi] {
				groupState[gi], score = bestState, bestScore
				improved = true
			}
		}
	}
	apply()

	// Refinement stage: per-element coordinate descent from the coarse
	// winner.
	passes := h.RefinePasses
	if passes < 1 {
		passes = 2
	}
	current := cfg.Clone()
	for pass := 0; pass < passes && !t.done(); pass++ {
		changed := false
		for i := 0; i < arr.N() && !t.done(); i++ {
			bestState, bestScore := current[i], score
			for si := 0; si < arr.Elements[i].NumStates() && !t.done(); si++ {
				if si == current[i] {
					continue
				}
				cand := current.Clone()
				cand[i] = si
				s, err := t.measure(cand)
				if err != nil {
					return finishOrFail(t, err)
				}
				if s > bestScore {
					bestState, bestScore = si, s
				}
			}
			if bestState != current[i] {
				current[i], score = bestState, bestScore
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return t.result(t.done())
}

// Ensure interface compliance.
var _ Searcher = Hierarchical{}
