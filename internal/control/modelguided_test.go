package control

import (
	"errors"
	"testing"

	"press/internal/element"
	"press/internal/inverse"
	"press/internal/radio"
)

// modelProblem builds an inverse.Problem sharing a link's scene.
func modelProblem(link *radio.Link) *inverse.Problem {
	return &inverse.Problem{
		Env:   link.Env,
		TX:    link.TX.Node,
		RX:    link.RX.Node,
		Array: link.Array,
		Grid:  link.Grid,
	}
}

func TestModelGuidedBeatsBaseline(t *testing.T) {
	link := controlTestbed(t, 61)
	prob := modelProblem(link)

	ev := &LinkEvaluator{Link: link, Objective: MaxMinSNR{}}
	term, _ := link.Array.AllTerminated()
	baseline, err := ev.Eval(term)
	if err != nil {
		t.Fatal(err)
	}
	mg := ModelGuided{Problem: prob}
	res, err := mg.Search(link.Array, ev.Eval, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestScore < baseline-1 {
		t.Errorf("model-guided (%.2f) below baseline (%.2f)", res.BestScore, baseline)
	}
	// The warm start plus refinement must undercut the exhaustive 64.
	if res.Evaluations >= 64 {
		t.Errorf("model-guided used %d measurements; pruning is the point", res.Evaluations)
	}
}

func TestModelGuidedCompetitiveWithExhaustive(t *testing.T) {
	link := controlTestbed(t, 62)
	evEx := &LinkEvaluator{Link: link, Objective: MaxMinSNR{}}
	exact, err := (Exhaustive{}).Search(link.Array, evEx.Eval, 0)
	if err != nil {
		t.Fatal(err)
	}
	evMG := &LinkEvaluator{Link: link, Objective: MaxMinSNR{}}
	mg := ModelGuided{Problem: modelProblem(link)}
	res, err := mg.Search(link.Array, evMG.Eval, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestScore < exact.BestScore-6 {
		t.Errorf("model-guided %.2f far below exhaustive %.2f", res.BestScore, exact.BestScore)
	}
}

func TestModelGuidedCustomTarget(t *testing.T) {
	link := controlTestbed(t, 63)
	called := false
	mg := ModelGuided{
		Problem: modelProblem(link),
		Target: func(baseline []complex128) []complex128 {
			called = true
			return inverse.TargetNotch(baseline, 0, len(baseline)/2, 15)
		},
		RefinePasses: 1,
	}
	ev := &LinkEvaluator{Link: link, Objective: HalfBandContrast{PreferLower: false}}
	if _, err := mg.Search(link.Array, ev.Eval, 0); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Error("custom target not used")
	}
}

func TestModelGuidedValidation(t *testing.T) {
	link := controlTestbed(t, 64)
	ev := &LinkEvaluator{Link: link, Objective: MaxMinSNR{}}
	if _, err := (ModelGuided{}).Search(link.Array, ev.Eval, 0); err == nil {
		t.Error("missing Problem accepted")
	}
	other := element.NewArray(element.NewOmniElement(link.TX.Node.Pos))
	mg := ModelGuided{Problem: modelProblem(link)}
	if _, err := mg.Search(other, ev.Eval, 0); err == nil {
		t.Error("mismatched array accepted")
	}
}

func TestModelGuidedBudget(t *testing.T) {
	link := controlTestbed(t, 65)
	ev := &LinkEvaluator{Link: link, Objective: MaxMinSNR{}}
	mg := ModelGuided{Problem: modelProblem(link), RefinePasses: 5}
	res, err := mg.Search(link.Array, ev.Eval, 4)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v", err)
	}
	if res.Evaluations != 4 {
		t.Errorf("spent %d with budget 4", res.Evaluations)
	}
}
