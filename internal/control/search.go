package control

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"press/internal/element"
)

// EvalFunc measures one configuration and returns its objective score
// (higher is better). Every call typically costs one over-the-air
// measurement, which is why searchers account evaluations strictly.
type EvalFunc func(cfg element.Config) (float64, error)

// ErrBudgetExhausted reports that a searcher ran out of measurement
// budget before meeting its own stopping rule. The Result returned
// alongside it still holds the best configuration found.
var ErrBudgetExhausted = errors.New("control: measurement budget exhausted")

// Result is the outcome of one search run.
type Result struct {
	// Best is the best configuration found and BestScore its score.
	Best      element.Config
	BestScore float64
	// Evaluations counts the measurements spent.
	Evaluations int
	// Trace records the best-so-far score after each evaluation, for
	// convergence plots.
	Trace []float64
}

// Searcher navigates the configuration space with a bounded number of
// measurements — "the system must quickly navigate through an enormous
// search space of channel parameters" (§2).
type Searcher interface {
	// Name identifies the algorithm in reports and benches.
	Name() string
	// Search explores arr's configuration space through eval, spending at
	// most budget evaluations (budget ≤ 0 means unlimited).
	Search(arr *element.Array, eval EvalFunc, budget int) (*Result, error)
}

// tracker factors the budget/best-so-far bookkeeping all searchers share.
type tracker struct {
	eval   EvalFunc
	budget int
	res    Result
}

func newTracker(eval EvalFunc, budget int) *tracker {
	t := &tracker{eval: eval, budget: budget}
	t.res.BestScore = math.Inf(-1)
	return t
}

// measure evaluates cfg, updating the result. It returns
// ErrBudgetExhausted once the budget is spent.
func (t *tracker) measure(cfg element.Config) (float64, error) {
	if t.budget > 0 && t.res.Evaluations >= t.budget {
		return 0, ErrBudgetExhausted
	}
	score, err := t.eval(cfg)
	if err != nil {
		return 0, err
	}
	t.res.Evaluations++
	if score > t.res.BestScore {
		t.res.BestScore = score
		t.res.Best = cfg.Clone()
	}
	t.res.Trace = append(t.res.Trace, t.res.BestScore)
	return score, nil
}

// done reports whether the budget is exhausted.
func (t *tracker) done() bool {
	return t.budget > 0 && t.res.Evaluations >= t.budget
}

// result finalizes the run: if nothing was ever evaluated, that is an
// error; running out of budget mid-algorithm is reported as
// ErrBudgetExhausted with the partial result attached.
func (t *tracker) result(exhausted bool) (*Result, error) {
	if t.res.Evaluations == 0 {
		return nil, fmt.Errorf("control: no configurations evaluated")
	}
	if exhausted {
		return &t.res, ErrBudgetExhausted
	}
	return &t.res, nil
}

// Exhaustive measures every configuration — optimal, and exactly what the
// paper's 64-configuration study does, but exponential in array size.
type Exhaustive struct{}

// Name implements Searcher.
func (Exhaustive) Name() string { return "exhaustive" }

// Search implements Searcher.
func (Exhaustive) Search(arr *element.Array, eval EvalFunc, budget int) (*Result, error) {
	t := newTracker(eval, budget)
	var innerErr error
	exhausted := false
	arr.EachConfig(func(idx int, c element.Config) bool {
		if _, err := t.measure(c); err != nil {
			if errors.Is(err, ErrBudgetExhausted) {
				exhausted = true
			} else {
				innerErr = err
			}
			return false
		}
		return true
	})
	if innerErr != nil {
		return nil, innerErr
	}
	return t.result(exhausted)
}

// Greedy is per-element coordinate descent: sweep each element through
// all of its states while holding the others, keep the best, and repeat
// until a full pass improves nothing. Cost per pass is Σ M_i — linear in
// array size where exhaustive is exponential — at the price of local
// optima; Restarts independent starts mitigate that.
type Greedy struct {
	// Rng drives the random starting configurations; required.
	Rng *rand.Rand
	// Restarts is the number of independent starts (default 1).
	Restarts int
}

// Name implements Searcher.
func (Greedy) Name() string { return "greedy" }

// Search implements Searcher.
func (g Greedy) Search(arr *element.Array, eval EvalFunc, budget int) (*Result, error) {
	if g.Rng == nil {
		return nil, fmt.Errorf("control: Greedy needs an Rng")
	}
	restarts := g.Restarts
	if restarts < 1 {
		restarts = 1
	}
	t := newTracker(eval, budget)
	for r := 0; r < restarts && !t.done(); r++ {
		cfg := randomConfig(arr, g.Rng)
		score, err := t.measure(cfg)
		if err != nil {
			return finishOrFail(t, err)
		}
		improved := true
		for improved && !t.done() {
			improved = false
			for i := 0; i < arr.N() && !t.done(); i++ {
				bestState, bestScore := cfg[i], score
				for si := 0; si < arr.Elements[i].NumStates(); si++ {
					if si == cfg[i] {
						continue
					}
					cand := cfg.Clone()
					cand[i] = si
					s, err := t.measure(cand)
					if err != nil {
						return finishOrFail(t, err)
					}
					if s > bestScore {
						bestState, bestScore = si, s
					}
				}
				if bestState != cfg[i] {
					cfg[i], score = bestState, bestScore
					improved = true
				}
			}
		}
	}
	return t.result(t.done())
}

// HillClimb performs stochastic local search: single-element random
// mutations, accepted when they do not decrease the score, with random
// restarts.
type HillClimb struct {
	Rng *rand.Rand
	// Restarts is the number of independent starts (default 1).
	Restarts int
	// StepsPerRestart bounds each climb (default 50).
	StepsPerRestart int
}

// Name implements Searcher.
func (HillClimb) Name() string { return "hill-climb" }

// Search implements Searcher.
func (h HillClimb) Search(arr *element.Array, eval EvalFunc, budget int) (*Result, error) {
	if h.Rng == nil {
		return nil, fmt.Errorf("control: HillClimb needs an Rng")
	}
	restarts, steps := h.Restarts, h.StepsPerRestart
	if restarts < 1 {
		restarts = 1
	}
	if steps < 1 {
		steps = 50
	}
	t := newTracker(eval, budget)
	for r := 0; r < restarts && !t.done(); r++ {
		cfg := randomConfig(arr, h.Rng)
		score, err := t.measure(cfg)
		if err != nil {
			return finishOrFail(t, err)
		}
		for s := 0; s < steps && !t.done(); s++ {
			cand := mutate(arr, cfg, h.Rng)
			cs, err := t.measure(cand)
			if err != nil {
				return finishOrFail(t, err)
			}
			if cs >= score {
				cfg, score = cand, cs
			}
		}
	}
	return t.result(t.done())
}

// Anneal is simulated annealing over single-element moves — the classic
// escape hatch from the local optima coordinate descent falls into.
type Anneal struct {
	Rng *rand.Rand
	// T0 is the initial temperature in score units (default 3: accepts
	// ~3 dB-worse moves early); Alpha the geometric cooling rate
	// (default 0.95 per step).
	T0    float64
	Alpha float64
	// Steps bounds the walk (default 200).
	Steps int
}

// Name implements Searcher.
func (Anneal) Name() string { return "anneal" }

// Search implements Searcher.
func (a Anneal) Search(arr *element.Array, eval EvalFunc, budget int) (*Result, error) {
	if a.Rng == nil {
		return nil, fmt.Errorf("control: Anneal needs an Rng")
	}
	t0, alpha, steps := a.T0, a.Alpha, a.Steps
	if t0 <= 0 {
		t0 = 3
	}
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.95
	}
	if steps < 1 {
		steps = 200
	}
	t := newTracker(eval, budget)
	cfg := randomConfig(arr, a.Rng)
	score, err := t.measure(cfg)
	if err != nil {
		return finishOrFail(t, err)
	}
	temp := t0
	for s := 0; s < steps && !t.done(); s++ {
		cand := mutate(arr, cfg, a.Rng)
		cs, err := t.measure(cand)
		if err != nil {
			return finishOrFail(t, err)
		}
		if cs >= score || a.Rng.Float64() < math.Exp((cs-score)/temp) {
			cfg, score = cand, cs
		}
		temp *= alpha
	}
	return t.result(t.done())
}

// Genetic runs a small generational GA: tournament selection, uniform
// crossover, per-element mutation — the "machine learning techniques"
// avenue §4.2 gestures at, useful when the landscape has structure
// coordinate moves miss.
type Genetic struct {
	Rng *rand.Rand
	// Pop is the population size (default 12), Generations the count
	// (default 10), MutationRate the per-element mutation probability
	// (default 0.15).
	Pop          int
	Generations  int
	MutationRate float64
}

// Name implements Searcher.
func (Genetic) Name() string { return "genetic" }

// Search implements Searcher.
func (g Genetic) Search(arr *element.Array, eval EvalFunc, budget int) (*Result, error) {
	if g.Rng == nil {
		return nil, fmt.Errorf("control: Genetic needs an Rng")
	}
	pop, gens, mut := g.Pop, g.Generations, g.MutationRate
	if pop < 2 {
		pop = 12
	}
	if gens < 1 {
		gens = 10
	}
	if mut <= 0 || mut > 1 {
		mut = 0.15
	}
	t := newTracker(eval, budget)

	type indiv struct {
		cfg   element.Config
		score float64
	}
	population := make([]indiv, 0, pop)
	for i := 0; i < pop && !t.done(); i++ {
		cfg := randomConfig(arr, g.Rng)
		s, err := t.measure(cfg)
		if err != nil {
			return finishOrFail(t, err)
		}
		population = append(population, indiv{cfg, s})
	}
	tournament := func() indiv {
		a := population[g.Rng.IntN(len(population))]
		b := population[g.Rng.IntN(len(population))]
		if a.score >= b.score {
			return a
		}
		return b
	}
	for gen := 0; gen < gens && !t.done(); gen++ {
		next := make([]indiv, 0, pop)
		// Elitism: keep the best individual.
		best := population[0]
		for _, ind := range population[1:] {
			if ind.score > best.score {
				best = ind
			}
		}
		next = append(next, best)
		for len(next) < pop && !t.done() {
			p1, p2 := tournament(), tournament()
			child := p1.cfg.Clone()
			for i := range child {
				if g.Rng.Float64() < 0.5 {
					child[i] = p2.cfg[i]
				}
				if g.Rng.Float64() < mut {
					child[i] = g.Rng.IntN(arr.Elements[i].NumStates())
				}
			}
			s, err := t.measure(child)
			if err != nil {
				return finishOrFail(t, err)
			}
			next = append(next, indiv{child, s})
		}
		population = next
	}
	return t.result(t.done())
}

// Random samples configurations uniformly — the baseline every smarter
// searcher must beat measurement-for-measurement.
type Random struct {
	Rng *rand.Rand
	// Samples bounds the run when budget does not (default 64).
	Samples int
}

// Name implements Searcher.
func (Random) Name() string { return "random" }

// Search implements Searcher.
func (r Random) Search(arr *element.Array, eval EvalFunc, budget int) (*Result, error) {
	if r.Rng == nil {
		return nil, fmt.Errorf("control: Random needs an Rng")
	}
	n := r.Samples
	if n < 1 {
		n = 64
	}
	t := newTracker(eval, budget)
	for i := 0; i < n && !t.done(); i++ {
		if _, err := t.measure(randomConfig(arr, r.Rng)); err != nil {
			return finishOrFail(t, err)
		}
	}
	return t.result(t.done())
}

// randomConfig draws a uniform configuration.
func randomConfig(arr *element.Array, rng *rand.Rand) element.Config {
	c := make(element.Config, arr.N())
	for i := range c {
		c[i] = rng.IntN(arr.Elements[i].NumStates())
	}
	return c
}

// mutate returns cfg with one random element switched to a different
// random state.
func mutate(arr *element.Array, cfg element.Config, rng *rand.Rand) element.Config {
	out := cfg.Clone()
	if arr.N() == 0 {
		return out
	}
	i := rng.IntN(arr.N())
	m := arr.Elements[i].NumStates()
	if m < 2 {
		return out
	}
	ns := rng.IntN(m - 1)
	if ns >= out[i] {
		ns++
	}
	out[i] = ns
	return out
}

// finishOrFail converts a mid-algorithm error into the final return:
// budget exhaustion yields the partial result, anything else fails the
// search.
func finishOrFail(t *tracker, err error) (*Result, error) {
	if errors.Is(err, ErrBudgetExhausted) {
		return t.result(true)
	}
	return nil, err
}
