package control

import (
	"math/rand/v2"
	"testing"
	"time"

	"press/internal/element"
	"press/internal/geom"
	"press/internal/ofdm"
	"press/internal/propagation"
	"press/internal/radio"
	"press/internal/rfphys"
)

// controlTestbed builds a small NLoS link with a 3-element array.
func controlTestbed(t *testing.T, seed uint64) *radio.Link {
	t.Helper()
	env := propagation.NewEnvironment(6, 5, 3)
	env.AddScatterers(rand.New(rand.NewPCG(seed, 99)), 6, 30)
	env.Blockers = append(env.Blockers,
		geom.NewBlocker(geom.V(2.6, 2.2, 0), geom.V(2.9, 3.0, 2.2), 35))
	tx := &radio.Radio{
		Node:       propagation.Node{Pos: geom.V(1.5, 2.5, 1.5), Pattern: rfphys.Omni{PeakGainDBi: 2}},
		TxPowerDBm: 15, NoiseFigureDB: 6,
	}
	rx := &radio.Radio{
		Node:          propagation.Node{Pos: geom.V(4, 2.7, 1.3), Pattern: rfphys.Omni{PeakGainDBi: 2}},
		NoiseFigureDB: 6,
	}
	rng := rand.New(rand.NewPCG(seed, 7))
	pos, err := element.DefaultPlacement.Place(rng, env.Room, tx.Node.Pos, rx.Node.Pos, 3)
	if err != nil {
		t.Fatal(err)
	}
	arr := element.NewArray(
		element.NewParabolicElement(pos[0], rx.Node.Pos),
		element.NewParabolicElement(pos[1], rx.Node.Pos),
		element.NewParabolicElement(pos[2], rx.Node.Pos),
	)
	link, err := radio.NewLink(env, tx, rx, ofdm.WiFi20(), arr, seed)
	if err != nil {
		t.Fatal(err)
	}
	return link
}

func TestLinkEvaluatorEndToEnd(t *testing.T) {
	link := controlTestbed(t, 21)
	ev := &LinkEvaluator{Link: link, Objective: MaxMinSNR{}, Timing: radio.Timing{PerMeasurement: time.Millisecond}}

	res, err := (Exhaustive{}).Search(link.Array, ev.Eval, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 64 {
		t.Fatalf("evaluations = %d", res.Evaluations)
	}
	// The optimized configuration must beat the all-terminated baseline:
	// the whole point of PRESS.
	term, _ := link.Array.AllTerminated()
	base, err := ev.Eval(term)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestScore < base {
		t.Errorf("best config (%v dB) worse than terminated baseline (%v dB)", res.BestScore, base)
	}
	if ev.Elapsed() < 64*time.Millisecond {
		t.Errorf("evaluator elapsed %v; should account per-measurement time", ev.Elapsed())
	}
}

func TestGreedyCompetitiveOnRealChannel(t *testing.T) {
	link := controlTestbed(t, 22)
	evEx := &LinkEvaluator{Link: link, Objective: MaxMinSNR{}}
	exact, err := (Exhaustive{}).Search(link.Array, evEx.Eval, 0)
	if err != nil {
		t.Fatal(err)
	}
	// One restart: with measurement noise each greedy pass can "improve"
	// spuriously and trigger another pass, so multi-restart runs are not
	// guaranteed to undercut exhaustive on a space this small.
	evGr := &LinkEvaluator{Link: link, Objective: MaxMinSNR{}}
	greedy, err := (Greedy{Rng: rand.New(rand.NewPCG(1, 2)), Restarts: 1}).Search(link.Array, evGr.Eval, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Greedy should come within a few dB of exhaustive while spending
	// fewer measurements (measurement noise adds slack).
	if greedy.BestScore < exact.BestScore-6 {
		t.Errorf("greedy %v dB far below exhaustive %v dB", greedy.BestScore, exact.BestScore)
	}
	if greedy.Evaluations >= exact.Evaluations {
		t.Errorf("greedy used %d evaluations, exhaustive %d", greedy.Evaluations, exact.Evaluations)
	}
}

func TestCoherenceBudget(t *testing.T) {
	timing := radio.Timing{PerMeasurement: 70 * time.Millisecond, SwitchLatency: 8 * time.Millisecond}
	// 80 ms coherence with 78 ms per measurement: one shot.
	if got := CoherenceBudget(80*time.Millisecond, timing); got != 1 {
		t.Errorf("budget = %d, want 1", got)
	}
	// Fast control plane: 1 ms per measurement, 80 ms coherence: 80.
	fast := radio.Timing{PerMeasurement: time.Millisecond}
	if got := CoherenceBudget(80*time.Millisecond, fast); got != 80 {
		t.Errorf("budget = %d, want 80", got)
	}
	// Static room: unlimited.
	if got := CoherenceBudget(0, timing); got != 1 {
		t.Errorf("zero coherence budget = %d, want 1 (channel changes immediately)", got)
	}
	if got := CoherenceBudget(time.Hour, radio.Timing{}); got != 0 {
		t.Errorf("zero-cost timing budget = %d, want 0 (unlimited)", got)
	}
}

func TestCoherenceBudgetAtSpeed(t *testing.T) {
	timing := radio.Timing{PerMeasurement: time.Millisecond}
	// Walking pace at 2.462 GHz: Tc ≈ 100 ms → ≈100 measurements.
	slow := CoherenceBudgetAtSpeed(0.5, 2.462e9, timing)
	if slow < 50 || slow > 200 {
		t.Errorf("budget @0.5 mph = %d, want ≈100", slow)
	}
	// Running: Tc ≈ 8 ms → single digits.
	fast := CoherenceBudgetAtSpeed(6, 2.462e9, timing)
	if fast < 4 || fast > 20 {
		t.Errorf("budget @6 mph = %d, want ≈8", fast)
	}
	// Static: unlimited.
	if got := CoherenceBudgetAtSpeed(0, 2.462e9, timing); got != 0 {
		t.Errorf("static budget = %d, want 0", got)
	}
	// The paper's testbed at walking pace: budget collapses to 1 — the
	// §3.2 latency problem in one number.
	proto := CoherenceBudgetAtSpeed(0.5, 2.462e9, radio.PrototypeTiming)
	if proto != 1 {
		t.Errorf("prototype budget @0.5 mph = %d, want 1", proto)
	}
}

func TestMIMOEvaluator(t *testing.T) {
	env := propagation.NewEnvironment(14, 10, 3)
	env.AddScatterers(rand.New(rand.NewPCG(31, 99)), 10, 40)
	lambda := rfphys.Wavelength(2.462e9)
	omni := rfphys.Omni{PeakGainDBi: 2}
	txAnts := []propagation.Node{
		{Pos: geom.V(5.5, 5.0, 1.5), Pattern: omni},
		{Pos: geom.V(5.5, 5.0+lambda/2, 1.5), Pattern: omni},
	}
	rxAnts := []propagation.Node{
		{Pos: geom.V(8, 5.2, 1.3), Pattern: omni},
		{Pos: geom.V(8, 5.2+lambda/2, 1.3), Pattern: omni},
	}
	arr := element.NewArray(
		element.NewOmniElement(geom.V(5.5, 5.0+2*lambda, 1.5)),
		element.NewOmniElement(geom.V(5.5, 5.0+3*lambda, 1.5)),
	)
	ml, err := radio.NewMIMOLink(env, txAnts, rxAnts, ofdm.WiFi20(), arr, 31)
	if err != nil {
		t.Fatal(err)
	}
	ev := &MIMOEvaluator{Link: ml, Snapshots: 3}
	res, err := (Exhaustive{}).Search(arr, ev.Eval, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 16 {
		t.Errorf("evaluations = %d, want 16", res.Evaluations)
	}
	// Score is a negated condition number: must be finite and negative-ish.
	if res.BestScore > 0 {
		t.Errorf("best score %v; negated condition number cannot be positive", res.BestScore)
	}
}

func TestHarmonizeEvaluator(t *testing.T) {
	env := propagation.NewEnvironment(6, 5, 3)
	env.AddScatterers(rand.New(rand.NewPCG(41, 99)), 6, 30)
	mk := func(txPos, rxPos geom.Vec) (*radio.Radio, *radio.Radio) {
		return &radio.Radio{
				Node:       propagation.Node{Pos: txPos, Pattern: rfphys.Omni{PeakGainDBi: 2}},
				TxPowerDBm: 15, NoiseFigureDB: 6,
			}, &radio.Radio{
				Node:          propagation.Node{Pos: rxPos, Pattern: rfphys.Omni{PeakGainDBi: 2}},
				NoiseFigureDB: 6,
			}
	}
	txA, rxA := mk(geom.V(1.5, 2, 1.5), geom.V(4, 1.8, 1.3))
	txB, rxB := mk(geom.V(1.5, 3.2, 1.5), geom.V(4, 3.4, 1.3))
	arr := element.NewArray(
		&element.Element{Pos: geom.V(2.75, 1.2, 1.5), Pattern: rfphys.Omni{PeakGainDBi: 2}, LossDB: 1, States: element.FourPhaseStates()},
		&element.Element{Pos: geom.V(2.75, 3.9, 1.5), Pattern: rfphys.Omni{PeakGainDBi: 2}, LossDB: 1, States: element.FourPhaseStates()},
	)
	grid := ofdm.USRP102()
	linkA, err := radio.NewLink(env, txA, rxA, grid, arr, 1)
	if err != nil {
		t.Fatal(err)
	}
	linkB, err := radio.NewLink(env, txB, rxB, grid, arr, 2)
	if err != nil {
		t.Fatal(err)
	}
	ev := &HarmonizeEvaluator{LinkA: linkA, LinkB: linkB}
	res, err := (Exhaustive{}).Search(arr, ev.Eval, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 16 {
		t.Errorf("evaluations = %d, want 16", res.Evaluations)
	}
	if len(res.Best) != 2 {
		t.Error("no best configuration")
	}
}
