package control

import (
	"fmt"
	"time"

	"press/internal/element"
	"press/internal/radio"
	"press/internal/rfphys"
	"press/internal/stats"
)

// LinkEvaluator turns a radio.Link plus an Objective into the EvalFunc the
// searchers consume, advancing simulated time by the timing model per
// measurement so that searches experience the same channel drift the
// paper's testbed does.
type LinkEvaluator struct {
	Link      *radio.Link
	Objective Objective
	Timing    radio.Timing

	now time.Duration
}

// Eval measures cfg once and scores it.
func (e *LinkEvaluator) Eval(cfg element.Config) (float64, error) {
	csi, err := e.Link.MeasureCSI(cfg, e.now.Seconds())
	if err != nil {
		return 0, err
	}
	e.now += e.Timing.PerMeasurement + e.Timing.SwitchLatency
	return e.Objective.Score(csi), nil
}

// Elapsed returns the simulated wall-clock the evaluator has consumed.
func (e *LinkEvaluator) Elapsed() time.Duration { return e.now }

// ContinuousLinkEvaluator is LinkEvaluator for continuously-variable
// phase hardware (§4.1): it measures the link under arbitrary element
// phases.
type ContinuousLinkEvaluator struct {
	Link      *radio.Link
	Objective Objective
	Timing    radio.Timing

	now time.Duration
}

// Eval measures one continuous configuration and scores it.
func (e *ContinuousLinkEvaluator) Eval(phases element.ContinuousConfig) (float64, error) {
	csi, err := e.Link.MeasureCSIContinuous(phases, e.now.Seconds())
	if err != nil {
		return 0, err
	}
	e.now += e.Timing.PerMeasurement + e.Timing.SwitchLatency
	return e.Objective.Score(csi), nil
}

// Elapsed returns the simulated wall-clock consumed.
func (e *ContinuousLinkEvaluator) Elapsed() time.Duration { return e.now }

// HarmonizeEvaluator scores one PRESS configuration against *two* links
// sharing the array — the §3.2.2 goal: link A strong in the lower half
// band, link B strong in the upper half, so the networks can split the
// spectrum ("each one favors its own half of the band", Figure 7).
type HarmonizeEvaluator struct {
	LinkA, LinkB *radio.Link
	Timing       radio.Timing

	now time.Duration
}

// Eval measures both links under cfg and returns the combined contrast.
func (e *HarmonizeEvaluator) Eval(cfg element.Config) (float64, error) {
	csiA, err := e.LinkA.MeasureCSI(cfg, e.now.Seconds())
	if err != nil {
		return 0, fmt.Errorf("control: link A: %w", err)
	}
	csiB, err := e.LinkB.MeasureCSI(cfg, e.now.Seconds())
	if err != nil {
		return 0, fmt.Errorf("control: link B: %w", err)
	}
	e.now += e.Timing.PerMeasurement + e.Timing.SwitchLatency
	a := HalfBandContrast{PreferLower: true}.Score(csiA)
	b := HalfBandContrast{PreferLower: false}.Score(csiB)
	return a + b, nil
}

// MIMOEvaluator scores configurations by 2×2 (or larger) channel
// conditioning: the negated median per-subcarrier condition number in dB,
// so that higher is better — §3.2.3's goal.
type MIMOEvaluator struct {
	Link *radio.MIMOLink
	// Snapshots averaged per evaluation (default 1; Figure 8 uses 50).
	Snapshots int
	Timing    radio.Timing

	now time.Duration
}

// Eval measures cfg and returns −median(condition number dB).
func (e *MIMOEvaluator) Eval(cfg element.Config) (float64, error) {
	snaps := e.Snapshots
	if snaps < 1 {
		snaps = 1
	}
	ch, err := e.Link.MeasureAveraged(cfg, snaps, e.Timing, e.now)
	if err != nil {
		return 0, err
	}
	e.now += time.Duration(snaps) * (e.Timing.PerMeasurement + e.Timing.SwitchLatency)
	return -stats.Median(ch.CondProfileDB()), nil
}

// CoherenceBudget converts a channel coherence time and a per-measurement
// cost into the number of configurations a searcher may try before the
// channel has changed under it — the hard real-time constraint of §2.
// An infinite coherence time (static room) returns 0, meaning unlimited.
func CoherenceBudget(coherence time.Duration, timing radio.Timing) int {
	per := timing.PerMeasurement + timing.SwitchLatency
	if per <= 0 {
		return 0
	}
	if coherence <= 0 {
		return 1 // channel changes faster than we can ever measure
	}
	n := int(coherence / per)
	if n < 1 {
		return 1
	}
	return n
}

// CoherenceTimeAtSpeed returns the channel coherence time — the per-loop
// deadline of the §2 control problem — for an endpoint moving at the
// given speed (mph, the paper's unit) at carrier frequency fcHz. A zero
// return means the channel is effectively static: no deadline.
func CoherenceTimeAtSpeed(speedMph, fcHz float64) time.Duration {
	lambda := rfphys.Wavelength(fcHz)
	fd := rfphys.DopplerShiftHz(rfphys.MphToMps(speedMph), lambda)
	tc := rfphys.CoherenceTime(fd)
	if tc > 1e6 { // effectively static
		return 0
	}
	return time.Duration(tc * float64(time.Second))
}

// CoherenceBudgetAtSpeed is CoherenceBudget for an endpoint moving at the
// given speed (mph, the paper's unit) at carrier frequency fcHz.
func CoherenceBudgetAtSpeed(speedMph, fcHz float64, timing radio.Timing) int {
	tc := CoherenceTimeAtSpeed(speedMph, fcHz)
	if tc == 0 {
		return 0 // effectively static: unlimited
	}
	return CoherenceBudget(tc, timing)
}
