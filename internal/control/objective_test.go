package control

import (
	"math"
	"testing"

	"press/internal/ofdm"
)

func csiWith(snr []float64) *ofdm.CSI {
	return &ofdm.CSI{Grid: ofdm.WiFi20(), SNRdB: snr}
}

func flat(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestMaxMinSNR(t *testing.T) {
	snr := flat(52, 30)
	snr[17] = 12
	if got := (MaxMinSNR{}).Score(csiWith(snr)); got != 12 {
		t.Errorf("score = %v, want 12", got)
	}
}

func TestMaxMeanSNR(t *testing.T) {
	snr := []float64{10, 20, 30}
	if got := (MaxMeanSNR{}).Score(&ofdm.CSI{SNRdB: snr}); math.Abs(got-20) > 1e-12 {
		t.Errorf("score = %v, want 20", got)
	}
}

func TestFlatnessPrefersFlatChannels(t *testing.T) {
	flatCh := csiWith(flat(52, 30))
	bumpy := flat(52, 30)
	for i := 0; i < 10; i++ {
		bumpy[i] = 10
	}
	if (Flatness{}).Score(flatCh) <= (Flatness{}).Score(csiWith(bumpy)) {
		t.Error("flat channel should score higher")
	}
	// Between two flat channels, the stronger wins.
	weak := csiWith(flat(52, 20))
	if (Flatness{}).Score(flatCh) <= (Flatness{}).Score(weak) {
		t.Error("stronger flat channel should score higher")
	}
	if !math.IsInf((Flatness{}).Score(csiWith([]float64{30})), -1) {
		t.Error("single-subcarrier flatness should be -Inf")
	}
}

func TestThroughputObjective(t *testing.T) {
	good := csiWith(flat(52, 30))
	bad := csiWith(flat(52, 3))
	if (Throughput{}).Score(good) <= (Throughput{}).Score(bad) {
		t.Error("30 dB channel should out-throughput 3 dB channel")
	}
	if got := (Throughput{}).Score(bad); got != 0 {
		t.Errorf("3 dB channel throughput = %v, want 0", got)
	}
}

func TestBoostSubcarrier(t *testing.T) {
	snr := flat(52, 30)
	snr[7] = 11
	if got := (BoostSubcarrier{K: 7}).Score(csiWith(snr)); got != 11 {
		t.Errorf("score = %v, want 11", got)
	}
	if !math.IsInf((BoostSubcarrier{K: 99}).Score(csiWith(snr)), -1) {
		t.Error("out-of-range subcarrier should score -Inf")
	}
}

func TestHalfBandContrast(t *testing.T) {
	snr := make([]float64, 52)
	for i := range snr {
		if i < 26 {
			snr[i] = 40
		} else {
			snr[i] = 20
		}
	}
	lower := HalfBandContrast{PreferLower: true}.Score(csiWith(snr))
	upper := HalfBandContrast{PreferLower: false}.Score(csiWith(snr))
	if math.Abs(lower-20) > 1e-9 || math.Abs(upper+20) > 1e-9 {
		t.Errorf("contrast = %v / %v, want +20 / -20", lower, upper)
	}
	if (MaxMinSNR{}).Name() == "" || (HalfBandContrast{}).Name() == "" {
		t.Error("objectives must have names")
	}
}
