package control

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"

	"press/internal/element"
)

// phasorLandscape scores how well the element phases align a sum of unit
// phasors against a fixed target direction — a smooth multimodal
// landscape whose global optimum is all phases equal to `target`.
func phasorLandscape(target float64) ContinuousEvalFunc {
	return func(p element.ContinuousConfig) (float64, error) {
		var sum complex128
		for _, ph := range p {
			if math.IsNaN(ph) {
				continue
			}
			sum += cmplx.Exp(complex(0, ph-target))
		}
		return real(sum), nil
	}
}

func TestSPSAConvergesOnPhasorAlignment(t *testing.T) {
	arr := synthArray(5)
	s := SPSA{Rng: rand.New(rand.NewPCG(1, 2)), Iterations: 120, Restarts: 2}
	res, err := s.Search(arr, phasorLandscape(1.3), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Perfect alignment scores 5; SPSA should land close.
	if res.BestScore < 4.5 {
		t.Errorf("SPSA best = %v, want ≥4.5 of 5", res.BestScore)
	}
	for i, p := range res.Best {
		if math.IsNaN(p) || p < 0 || p >= 2*math.Pi {
			t.Errorf("phase %d = %v not wrapped into [0,2π)", i, p)
		}
	}
}

func TestSPSARespectsBudget(t *testing.T) {
	arr := synthArray(4)
	s := SPSA{Rng: rand.New(rand.NewPCG(3, 4)), Iterations: 1000, Restarts: 5}
	res, err := s.Search(arr, phasorLandscape(0), 37)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if res.Evaluations > 37 {
		t.Errorf("spent %d measurements with budget 37", res.Evaluations)
	}
	if len(res.Trace) != res.Evaluations {
		t.Errorf("trace length %d != evaluations %d", len(res.Trace), res.Evaluations)
	}
}

func TestSPSATraceMonotone(t *testing.T) {
	arr := synthArray(3)
	s := SPSA{Rng: rand.New(rand.NewPCG(5, 6)), Iterations: 40}
	res, err := s.Search(arr, phasorLandscape(2.2), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i] < res.Trace[i-1] {
			t.Fatalf("best-so-far decreased at %d", i)
		}
	}
}

func TestSPSAToleratesNoise(t *testing.T) {
	arr := synthArray(4)
	noise := rand.New(rand.NewPCG(7, 8))
	noisy := func(p element.ContinuousConfig) (float64, error) {
		v, _ := phasorLandscape(0.4)(p)
		return v + noise.NormFloat64()*0.2, nil
	}
	s := SPSA{Rng: rand.New(rand.NewPCG(9, 10)), Iterations: 150, Restarts: 2}
	res, err := s.Search(arr, noisy, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestScore < 3.2 { // 4 is perfect; noise adds ~0.2
		t.Errorf("noisy SPSA best = %v", res.BestScore)
	}
}

func TestSPSAValidation(t *testing.T) {
	arr := synthArray(2)
	if _, err := (SPSA{}).Search(arr, phasorLandscape(0), 0); err == nil {
		t.Error("missing Rng accepted")
	}
	empty := element.NewArray()
	if _, err := (SPSA{Rng: rand.New(rand.NewPCG(1, 1))}).Search(empty, phasorLandscape(0), 0); err == nil {
		t.Error("empty array accepted")
	}
	boom := errors.New("radio down")
	failing := func(element.ContinuousConfig) (float64, error) { return 0, boom }
	if _, err := (SPSA{Rng: rand.New(rand.NewPCG(1, 1))}).Search(arr, failing, 0); !errors.Is(err, boom) {
		t.Errorf("err = %v, want propagated eval error", err)
	}
}

func TestHierarchicalSolvesSeparable(t *testing.T) {
	arr := synthArray(8) // 4^8 = 65536
	h := Hierarchical{Rng: rand.New(rand.NewPCG(11, 12)), GroupSize: 4}
	res, err := h.Search(arr, separable, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Global optimum of the separable landscape is 3 per element = 24,
	// and the coarse stage alone finds it (all elements want state 2).
	if res.BestScore != 24 {
		t.Errorf("best = %v, want 24", res.BestScore)
	}
	// Far cheaper than the 65536-config exhaustive.
	if res.Evaluations > 200 {
		t.Errorf("hierarchical used %d evaluations", res.Evaluations)
	}
}

func TestHierarchicalRefinementHelps(t *testing.T) {
	// A landscape where the group optimum differs from per-element
	// optima: element 0 wants state 1, the rest want state 2.
	arr := synthArray(4)
	landscape := func(cfg element.Config) (float64, error) {
		var s float64
		for i, si := range cfg {
			want := 2
			if i == 0 {
				want = 1
			}
			if si == want {
				s += 5
			}
		}
		return s, nil
	}
	h := Hierarchical{Rng: rand.New(rand.NewPCG(13, 14)), GroupSize: 4}
	res, err := h.Search(arr, landscape, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestScore != 20 {
		t.Errorf("refinement missed the per-element optimum: %v of 20", res.BestScore)
	}
}

func TestHierarchicalExplicitGroups(t *testing.T) {
	arr := synthArray(6)
	h := Hierarchical{
		Rng:    rand.New(rand.NewPCG(15, 16)),
		Groups: [][]int{{0, 2, 4}, {1, 3, 5}},
	}
	res, err := h.Search(arr, separable, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestScore != 18 {
		t.Errorf("best = %v, want 18", res.BestScore)
	}
}

func TestHierarchicalGroupValidation(t *testing.T) {
	arr := synthArray(4)
	rng := rand.New(rand.NewPCG(17, 18))
	bad := []Hierarchical{
		{Rng: rng, Groups: [][]int{{0, 1}}},            // missing elements
		{Rng: rng, Groups: [][]int{{0, 1}, {1, 2, 3}}}, // duplicate
		{Rng: rng, Groups: [][]int{{0, 1, 2, 9}}},      // out of range
		{Rng: rng, Groups: [][]int{{}, {0, 1, 2, 3}}},  // empty group
	}
	for i, h := range bad {
		if _, err := h.Search(arr, separable, 0); err == nil {
			t.Errorf("case %d: invalid grouping accepted", i)
		}
	}
	if _, err := (Hierarchical{}).Search(arr, separable, 0); err == nil {
		t.Error("missing Rng accepted")
	}
}

func TestHierarchicalBudget(t *testing.T) {
	arr := synthArray(8)
	h := Hierarchical{Rng: rand.New(rand.NewPCG(19, 20)), GroupSize: 2}
	res, err := h.Search(arr, separable, 15)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v", err)
	}
	if res.Evaluations != 15 {
		t.Errorf("spent %d with budget 15", res.Evaluations)
	}
}
