package control

import (
	"errors"
	"math/rand/v2"
	"testing"

	"press/internal/element"
	"press/internal/geom"
)

// synthArray builds an n-element SP4T array (4 states each) at dummy
// positions; the synthetic landscapes below never touch the positions.
func synthArray(n int) *element.Array {
	elems := make([]*element.Element, n)
	for i := range elems {
		elems[i] = &element.Element{Pos: geom.V(float64(i), 1, 1), States: element.SP4TStates()}
	}
	return element.NewArray(elems...)
}

// separable is an easy landscape: score = Σ bonus[cfg[i]]; global optimum
// is all elements in state 2.
func separable(cfg element.Config) (float64, error) {
	bonus := []float64{0, 1, 3, 2}
	var s float64
	for _, si := range cfg {
		s += bonus[si]
	}
	return s, nil
}

// deceptive has a strong local optimum at all-0 and the global optimum at
// all-3: single-element moves away from all-0 always hurt.
func deceptive(cfg element.Config) (float64, error) {
	all0, all3 := true, true
	for _, si := range cfg {
		if si != 0 {
			all0 = false
		}
		if si != 3 {
			all3 = false
		}
	}
	switch {
	case all3:
		return 100, nil
	case all0:
		return 50, nil
	default:
		var s float64
		for _, si := range cfg {
			s -= float64(si)
		}
		return s, nil
	}
}

func TestExhaustiveFindsGlobalOptimum(t *testing.T) {
	arr := synthArray(3)
	res, err := Exhaustive{}.Search(arr, separable, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 64 {
		t.Errorf("evaluations = %d, want 64", res.Evaluations)
	}
	if res.BestScore != 9 || !res.Best.Equal(element.Config{2, 2, 2}) {
		t.Errorf("best = %v score %v, want {2,2,2} score 9", res.Best, res.BestScore)
	}
}

func TestExhaustiveBudget(t *testing.T) {
	arr := synthArray(3)
	res, err := Exhaustive{}.Search(arr, separable, 10)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if res == nil || res.Evaluations != 10 {
		t.Fatalf("partial result = %+v", res)
	}
	if len(res.Best) != 3 {
		t.Error("partial result lacks a best config")
	}
}

func TestGreedySolvesSeparableCheaply(t *testing.T) {
	arr := synthArray(6) // 4^6 = 4096 configs
	g := Greedy{Rng: rand.New(rand.NewPCG(1, 2))}
	res, err := g.Search(arr, separable, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestScore != 18 {
		t.Errorf("greedy best = %v, want 18 (global)", res.BestScore)
	}
	if res.Evaluations > 200 {
		t.Errorf("greedy used %d evaluations; coordinate descent should need ~tens", res.Evaluations)
	}
}

func TestGreedyStuckOnDeceptive(t *testing.T) {
	// Start a single greedy run enough times and it will sometimes land
	// on the all-0 local optimum; what matters here is that it never
	// reports a score that is not a local optimum's.
	arr := synthArray(4)
	g := Greedy{Rng: rand.New(rand.NewPCG(3, 4)), Restarts: 5}
	res, err := g.Search(arr, deceptive, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestScore != 100 && res.BestScore != 50 {
		t.Errorf("greedy best %v is not a local optimum of the deceptive landscape", res.BestScore)
	}
}

func TestHillClimbImproves(t *testing.T) {
	arr := synthArray(5)
	h := HillClimb{Rng: rand.New(rand.NewPCG(5, 6)), Restarts: 3, StepsPerRestart: 60}
	res, err := h.Search(arr, separable, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestScore < 12 {
		t.Errorf("hill climb best = %v; expected ≥12 on the separable landscape", res.BestScore)
	}
}

func TestAnnealEscapesLocalOptimum(t *testing.T) {
	// With temperature, annealing should find the all-3 global optimum of
	// the deceptive landscape in most seeds; we assert it at least ties
	// the local optimum and that some seed reaches the global.
	arr := synthArray(3)
	foundGlobal := false
	for seed := uint64(0); seed < 10; seed++ {
		a := Anneal{Rng: rand.New(rand.NewPCG(seed, seed+1)), Steps: 300, T0: 20}
		res, err := a.Search(arr, deceptive, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.BestScore >= 100 {
			foundGlobal = true
		}
		if res.BestScore < 50 && res.Evaluations > 100 {
			t.Errorf("seed %d: anneal best %v below the easy local optimum", seed, res.BestScore)
		}
	}
	if !foundGlobal {
		t.Error("no seed found the global optimum; annealing is not exploring")
	}
}

func TestGeneticFindsGoodConfigs(t *testing.T) {
	arr := synthArray(6)
	g := Genetic{Rng: rand.New(rand.NewPCG(7, 8)), Pop: 16, Generations: 15}
	res, err := g.Search(arr, separable, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestScore < 15 {
		t.Errorf("genetic best = %v; expected ≥15", res.BestScore)
	}
	if err := arr.Validate(res.Best); err != nil {
		t.Errorf("genetic returned invalid config: %v", err)
	}
}

func TestRandomBaseline(t *testing.T) {
	arr := synthArray(3)
	r := Random{Rng: rand.New(rand.NewPCG(9, 10)), Samples: 30}
	res, err := r.Search(arr, separable, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 30 {
		t.Errorf("evaluations = %d, want 30", res.Evaluations)
	}
	if res.BestScore < 4 {
		t.Errorf("random best = %v; suspiciously bad for 30 samples", res.BestScore)
	}
}

func TestTraceMonotone(t *testing.T) {
	arr := synthArray(4)
	searchers := []Searcher{
		Exhaustive{},
		Greedy{Rng: rand.New(rand.NewPCG(1, 1))},
		HillClimb{Rng: rand.New(rand.NewPCG(2, 2))},
		Anneal{Rng: rand.New(rand.NewPCG(3, 3))},
		Genetic{Rng: rand.New(rand.NewPCG(4, 4))},
		Random{Rng: rand.New(rand.NewPCG(5, 5))},
	}
	for _, s := range searchers {
		res, err := s.Search(arr, separable, 150)
		if err != nil && !errors.Is(err, ErrBudgetExhausted) {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(res.Trace) != res.Evaluations {
			t.Errorf("%s: trace length %d != evaluations %d", s.Name(), len(res.Trace), res.Evaluations)
		}
		for i := 1; i < len(res.Trace); i++ {
			if res.Trace[i] < res.Trace[i-1] {
				t.Fatalf("%s: best-so-far trace decreased at %d", s.Name(), i)
			}
		}
		if res.Trace[len(res.Trace)-1] != res.BestScore {
			t.Errorf("%s: trace end %v != best %v", s.Name(), res.Trace[len(res.Trace)-1], res.BestScore)
		}
	}
}

func TestSearchersRespectBudgetExactly(t *testing.T) {
	arr := synthArray(5)
	budget := 25
	searchers := []Searcher{
		Exhaustive{},
		Greedy{Rng: rand.New(rand.NewPCG(1, 9)), Restarts: 10},
		HillClimb{Rng: rand.New(rand.NewPCG(2, 9)), Restarts: 10, StepsPerRestart: 100},
		Anneal{Rng: rand.New(rand.NewPCG(3, 9)), Steps: 1000},
		Genetic{Rng: rand.New(rand.NewPCG(4, 9)), Pop: 20, Generations: 50},
		Random{Rng: rand.New(rand.NewPCG(5, 9)), Samples: 1000},
	}
	for _, s := range searchers {
		res, err := s.Search(arr, separable, budget)
		if !errors.Is(err, ErrBudgetExhausted) {
			t.Errorf("%s: err = %v, want ErrBudgetExhausted", s.Name(), err)
			continue
		}
		if res.Evaluations != budget {
			t.Errorf("%s: spent %d measurements with budget %d", s.Name(), res.Evaluations, budget)
		}
	}
}

func TestSearchersNeedRng(t *testing.T) {
	arr := synthArray(2)
	for _, s := range []Searcher{Greedy{}, HillClimb{}, Anneal{}, Genetic{}, Random{}} {
		if _, err := s.Search(arr, separable, 0); err == nil {
			t.Errorf("%s without Rng accepted", s.Name())
		}
	}
}

func TestMutateChangesExactlyOneElement(t *testing.T) {
	arr := synthArray(6)
	rng := rand.New(rand.NewPCG(11, 12))
	base := randomConfig(arr, rng)
	for trial := 0; trial < 200; trial++ {
		m := mutate(arr, base, rng)
		diff := 0
		for i := range base {
			if m[i] != base[i] {
				diff++
			}
		}
		if diff != 1 {
			t.Fatalf("mutate changed %d elements", diff)
		}
	}
}

func TestEvalErrorPropagates(t *testing.T) {
	arr := synthArray(2)
	boom := errors.New("radio exploded")
	failing := func(cfg element.Config) (float64, error) { return 0, boom }
	if _, err := (Exhaustive{}).Search(arr, failing, 0); !errors.Is(err, boom) {
		t.Errorf("err = %v, want the eval error", err)
	}
}
